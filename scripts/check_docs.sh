#!/usr/bin/env bash
# Contract check: every metric and span name defined in src/obs/metric_names.h
# must be documented in docs/OBSERVABILITY.md. Wired into ctest as
# `check_docs`; run standalone from anywhere:
#
#   scripts/check_docs.sh
#
# Exits non-zero listing the undocumented names, if any. This is what keeps
# the docs-first contract honest: adding a metric without documenting it
# fails the test suite.
set -u

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
names_header="$repo_root/src/obs/metric_names.h"
doc="$repo_root/docs/OBSERVABILITY.md"

if [[ ! -f "$names_header" ]]; then
  echo "check_docs: missing $names_header" >&2
  exit 1
fi
if [[ ! -f "$doc" ]]; then
  echo "check_docs: missing $doc" >&2
  exit 1
fi

# Pull every quoted name out of the constants header. Declarations are
# either one line (`... kFoo = "name";`) or wrapped by clang-format with the
# literal alone on a continuation line (`    "name";`).
names=$(sed -n \
  -e 's/.*std::string_view k[A-Za-z0-9]* *= *"\([^"]*\)".*/\1/p' \
  -e 's/^ *"\([^"]*\)"; *$/\1/p' \
  "$names_header")

if [[ -z "$names" ]]; then
  echo "check_docs: no names parsed from $names_header (format changed?)" >&2
  exit 1
fi

missing=0
count=0
while IFS= read -r name; do
  count=$((count + 1))
  if ! grep -qF "$name" "$doc"; then
    echo "check_docs: '$name' (src/obs/metric_names.h) is not documented" \
      "in docs/OBSERVABILITY.md" >&2
    missing=$((missing + 1))
  fi
done <<< "$names"

if [[ "$missing" -gt 0 ]]; then
  echo "check_docs: FAIL — $missing of $count names undocumented" >&2
  exit 1
fi
echo "check_docs: OK — all $count metric/span names documented"
