#!/usr/bin/env bash
# Contract check between src/obs/metric_names.h and docs/OBSERVABILITY.md,
# in BOTH directions:
#
#   forward — every metric and span name defined in the header must be
#             documented in the doc (adding a metric without documenting it
#             fails the suite);
#   reverse — every `pkb_*` metric name the doc mentions must exist in the
#             header (documenting a metric that was renamed or removed —
#             i.e. docs drifting ahead of or behind the code — also fails).
#
# Wired into ctest as `check_docs`; run standalone from anywhere:
#
#   scripts/check_docs.sh [names_header] [doc]
#
# The optional arguments override the default file paths so the negative
# fixtures in tests/check_docs_negative.sh can exercise both failure modes.
# Exits non-zero listing the offending names, if any.
set -u

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
names_header="${1:-$repo_root/src/obs/metric_names.h}"
doc="${2:-$repo_root/docs/OBSERVABILITY.md}"

if [[ ! -f "$names_header" ]]; then
  echo "check_docs: missing $names_header" >&2
  exit 1
fi
if [[ ! -f "$doc" ]]; then
  echo "check_docs: missing $doc" >&2
  exit 1
fi

# Pull every quoted name out of the constants header. Declarations are
# either one line (`... kFoo = "name";`) or wrapped by clang-format with the
# literal alone on a continuation line (`    "name";`).
names=$(sed -n \
  -e 's/.*std::string_view k[A-Za-z0-9]* *= *"\([^"]*\)".*/\1/p' \
  -e 's/^ *"\([^"]*\)"; *$/\1/p' \
  "$names_header")

if [[ -z "$names" ]]; then
  echo "check_docs: no names parsed from $names_header (format changed?)" >&2
  exit 1
fi

missing=0
count=0
while IFS= read -r name; do
  count=$((count + 1))
  if ! grep -qF "$name" "$doc"; then
    echo "check_docs: '$name' ($(basename "$names_header")) is not" \
      "documented in $(basename "$doc")" >&2
    missing=$((missing + 1))
  fi
done <<< "$names"

# Reverse direction: every backticked `pkb_*` name in the doc must be a name
# the header defines. Backticks scope the check to metric references (prose
# like example_pkb_cli stays exempt). Span names are deliberately excluded —
# they are generic words ("retrieve", "rerank") that prose uses freely.
doc_names=$(grep -oE '`pkb_[a-z0-9_]+`' "$doc" | tr -d '`' | sort -u)
stale=0
doc_count=0
while IFS= read -r name; do
  [[ -z "$name" ]] && continue
  doc_count=$((doc_count + 1))
  if ! grep -qF "\"$name\"" "$names_header"; then
    echo "check_docs: '$name' ($(basename "$doc")) does not exist in" \
      "$(basename "$names_header") — stale or misspelled doc entry" >&2
    stale=$((stale + 1))
  fi
done <<< "$doc_names"

if [[ "$missing" -gt 0 || "$stale" -gt 0 ]]; then
  echo "check_docs: FAIL — $missing of $count header names undocumented," \
    "$stale of $doc_count documented names unknown" >&2
  exit 1
fi
echo "check_docs: OK — all $count metric/span names documented," \
  "all $doc_count documented pkb_* names defined"
