#!/usr/bin/env bash
# Build with ThreadSanitizer (-DPKB_SANITIZE=thread) and run the
# concurrency-heavy tests: the serving layer, session manager + admission,
# history store, observability registry, thread-pool, and resilience/chaos
# suites. Usage, from anywhere:
#
#   scripts/run_tsan.sh [extra gtest filter]
#
# A separate build tree (build-tsan/) keeps the sanitized artifacts from
# polluting the normal build. Exits non-zero on any TSan report (halt on
# first error) or test failure.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="$repo_root/build-tsan"

filter="ServeServer*:BoundedQueue*:ShardedLruCache*:HistoryStore*:Metrics*:Tracer*:ThreadPool*:SimClock*:KnowledgeBase*:Ingest*:SnapshotPersist*:Resilience*:FaultPlan*:CircuitBreaker*:Chaos*:SimClockWait*:ShardRouter*:ShardEquivalence*:ShardChaos*:ShardKnowledgeBase*:ShardServe*:Kernels*:KernelsArena*:Quantize*:Hnsw*:Kmeans*:Pq*:AnnIndex*:AnnKnowledgeBase*:StageGraph*:StageParity*:TraceRecorder*:Replay*:Session*"
if [[ $# -ge 1 ]]; then
  filter="$filter:$1"
fi

cmake -B "$build_dir" -S "$repo_root" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DPKB_SANITIZE=thread
cmake --build "$build_dir" --target pkb_tests -j "$(nproc)"

TSAN_OPTIONS="halt_on_error=1${TSAN_OPTIONS:+:$TSAN_OPTIONS}" \
  "$build_dir/tests/pkb_tests" --gtest_filter="$filter"
echo "run_tsan: OK"
