#!/usr/bin/env bash
# One entry point for the full local verification matrix:
#
#   1. plain build + ctest (tier-1, what CI runs — includes the chaos and
#      resilience suites and the check_docs contract test)
#   2. bench smoke: tiny serve/ingest/chaos bench runs with JSON-shape and
#      chaos service-level gates, plus the replay regression over the
#      committed trace corpus in tests/data/traces (bench_smoke.sh)
#   3. ThreadSanitizer over the concurrency-heavy suites (run_tsan.sh)
#   4. AddressSanitizer over the full suite (run_asan.sh)
#
# Usage, from anywhere:  scripts/check_all.sh
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"

echo "== check_all: plain build + ctest =="
cmake -B "$repo_root/build" -S "$repo_root"
cmake --build "$repo_root/build" -j "$(nproc)"
ctest --test-dir "$repo_root/build" --output-on-failure -j "$(nproc)"

echo "== check_all: bench smoke =="
"$repo_root/scripts/bench_smoke.sh" "$repo_root/build"

echo "== check_all: ThreadSanitizer =="
"$repo_root/scripts/run_tsan.sh"

echo "== check_all: AddressSanitizer =="
"$repo_root/scripts/run_asan.sh"

echo "check_all: OK"
