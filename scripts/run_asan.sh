#!/usr/bin/env bash
# Build with AddressSanitizer (-DPKB_SANITIZE=address) and run the full test
# suite. The generational KnowledgeBase hands out snapshot pointers across
# threads and caches; ASan is what proves no stale generation is ever read
# after free. Usage, from anywhere:
#
#   scripts/run_asan.sh [gtest filter]
#
# A separate build tree (build-asan/) keeps the sanitized artifacts from
# polluting the normal build. Exits non-zero on any ASan report or test
# failure.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="$repo_root/build-asan"

filter="${1:-*}"

cmake -B "$build_dir" -S "$repo_root" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DPKB_SANITIZE=address
cmake --build "$build_dir" --target pkb_tests -j "$(nproc)"

ASAN_OPTIONS="detect_leaks=1${ASAN_OPTIONS:+:$ASAN_OPTIONS}" \
  "$build_dir/tests/pkb_tests" --gtest_filter="$filter"
echo "run_asan: OK"
