#!/usr/bin/env bash
# Bench smoke: run the serving-layer benches at tiny parameters and validate
# that each report contains its contract keys. This is not a performance
# gate — it proves the bench binaries still run end to end and still emit
# the JSON shape dashboards consume (chaos_serve additionally enforces its
# own service-level gate and exits nonzero when it fails). Wired into CI
# and scripts/check_all.sh; run standalone from anywhere:
#
#   scripts/bench_smoke.sh [build-dir] [report-dir]
#
# The build dir defaults to build/ and must already contain the bench
# binaries (cmake --build build). Reports land in report-dir when given
# (kept, e.g. for CI artifact upload), otherwise in a temp dir that is
# removed on exit.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
if [[ $# -ge 2 ]]; then
  out_dir="$2"
  mkdir -p "$out_dir"
else
  out_dir="$(mktemp -d)"
  trap 'rm -rf "$out_dir"' EXIT
fi

require_keys() {
  local file="$1"
  shift
  local key
  for key in "$@"; do
    if ! grep -q "\"$key\"" "$file"; then
      echo "bench_smoke: $(basename "$file") is missing key \"$key\"" >&2
      exit 1
    fi
  done
}

run() {
  local name="$1"
  shift
  if [[ ! -x "$build_dir/bench/$name" ]]; then
    echo "bench_smoke: $build_dir/bench/$name not built" >&2
    exit 1
  fi
  echo "== bench_smoke: $name =="
  "$build_dir/bench/$name" "$@"
}

run serve_throughput --workers 2 --requests 24 \
  --output "$out_dir/BENCH_serve.json"
require_keys "$out_dir/BENCH_serve.json" \
  config scaling caching workers_1 workers_n speedup qps p99_seconds

run ingest_swap --generations 2 --docs-per-gen 2 --workers 2 --requests 24 \
  --output "$out_dir/BENCH_ingest.json"
require_keys "$out_dir/BENCH_ingest.json" \
  config steady_state during_ingestion qps_ratio swap p99_seconds ingest

run chaos_serve --workers 2 --requests 24 \
  --output "$out_dir/BENCH_chaos.json"
require_keys "$out_dir/BENCH_chaos.json" \
  config clean chaos faults_injected answered_rate degradation_rate \
  deadline_violations qps p99_seconds budget_spent_max_seconds

run shard_scatter --docs 200 --dim 16 --queries 32 --threads 2 \
  --shards 1,2,4 --output "$out_dir/BENCH_shards.json"
require_keys "$out_dir/BENCH_shards.json" \
  config equivalent results shards clean one_dead qps p50_seconds \
  p99_seconds partial_rate answered_rate

# Tiny corpus but a full sweep: the exactness, recall, and PQ gates run for
# real (ef 64 covers the whole 300-doc store, so the recall floors hold even
# at smoke size) and a gate failure exits nonzero here.
run ann_frontier --docs 300 --dim 16 --queries 32 --ef 16,64 --nprobe 1,4 \
  --output "$out_dir/BENCH_ann.json"
require_keys "$out_dir/BENCH_ann.json" \
  config gates flat_exact default_recall pq_recall pq_memory build_speedup \
  ok results index quant param recall_at_k p50_seconds p99_seconds qps \
  build_seconds bytes_per_vector backend build ivf_pq_simd_seconds \
  scalar_reference_seconds speedup gate_applies

# Replay regression: re-execute the committed trace corpus and gate on zero
# unexplained drift (bit-identical from-Generate answers, full-pipeline
# match or explained corpus drift from Embed). Exits nonzero on drift.
run replay_regress --traces "$repo_root/tests/data/traces" \
  --output "$out_dir/BENCH_replay.json"
require_keys "$out_dir/BENCH_replay.json" \
  config traces_dir results gates traces generate_exact full_match \
  explained_diffs unexplained_diffs replay_seconds_mean record_seconds_mean \
  record_overhead_pct ok id unresolved_contexts generate_seconds full_seconds

# Session serving: tiny open-loop run over all four arrival modes. The
# bench's own admission gates run for real (it exits nonzero unless >= 99%
# of admitted turns are answered, nothing overdraws its deadline budget, and
# shedding rises monotonically across the overload rungs before p99
# collapses), so a smoke pass certifies the knee measurement end to end.
run session_load --lanes 2 --lane-queue 8 --sessions 8 \
  --requests-per-mode 48 --overload-window 0.3 \
  --output "$out_dir/BENCH_sessions.json"
require_keys "$out_dir/BENCH_sessions.json" \
  config modes overload gates capacity_qps_estimate offered_qps \
  sustained_qps p50_seconds p95_seconds p99_seconds arrivals admitted shed \
  shed_rate answered_rate budget_spent_max_seconds sessions rungs \
  knee_offered_qps knee_shed_rate knee_p99_seconds deadline_violations \
  shed_before_collapse monotone_shed ok

# Larger tier, build path only: 6000 docs is past the build_speedup gate's
# tiny-corpus guard, so the >= 2x parallel-SIMD-vs-scalar-reference check is
# actually enforced here (and auto-skipped on scalar-only hosts).
run ann_frontier --docs 6000 --dim 64 --build-only \
  --output "$out_dir/BENCH_ann_build.json"
require_keys "$out_dir/BENCH_ann_build.json" \
  config gates build_speedup ok build ivf_pq_simd_seconds \
  scalar_reference_seconds speedup gate_applies

echo "bench_smoke: OK"
