#!/usr/bin/env bash
# Portable local mirror of .github/workflows/ci.yml: runs the same
# {release, scalar, asan, tsan} matrix a CI runner would, so "green
# locally" means "green in CI".
#
#   release — plain build, full ctest (includes check_docs), bench smoke
#   scalar  — release rebuilt with -DPKB_FORCE_SCALAR=ON (SIMD kernels
#             compiled out), same ctest + bench smoke
#   asan    — AddressSanitizer build + full test suite (run_asan.sh)
#   tsan    — ThreadSanitizer build + concurrency/resilience suites
#             (run_tsan.sh)
#
# Usage, from anywhere:
#
#   scripts/ci_local.sh            # the whole matrix
#   scripts/ci_local.sh release    # one leg: release | scalar | asan | tsan
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
legs=("${@:-release}")
if [[ $# -eq 0 ]]; then
  legs=(release scalar asan tsan)
fi

run_release() {
  echo "== ci_local[release]: configure + build =="
  cmake -B "$repo_root/build" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release
  cmake --build "$repo_root/build" -j "$(nproc)"
  echo "== ci_local[release]: ctest (unit + chaos + check_docs) =="
  ctest --test-dir "$repo_root/build" --output-on-failure -j "$(nproc)"
  echo "== ci_local[release]: bench smoke =="
  "$repo_root/scripts/bench_smoke.sh" "$repo_root/build"
}

run_scalar() {
  echo "== ci_local[scalar]: configure + build (PKB_FORCE_SCALAR=ON) =="
  cmake -B "$repo_root/build-scalar" -S "$repo_root" \
    -DCMAKE_BUILD_TYPE=Release -DPKB_FORCE_SCALAR=ON
  cmake --build "$repo_root/build-scalar" -j "$(nproc)"
  echo "== ci_local[scalar]: ctest =="
  ctest --test-dir "$repo_root/build-scalar" --output-on-failure -j "$(nproc)"
  echo "== ci_local[scalar]: bench smoke =="
  "$repo_root/scripts/bench_smoke.sh" "$repo_root/build-scalar"
}

run_asan() {
  echo "== ci_local[asan]: sanitized build + full suite =="
  "$repo_root/scripts/run_asan.sh"
}

run_tsan() {
  echo "== ci_local[tsan]: sanitized build + concurrency suites =="
  "$repo_root/scripts/run_tsan.sh"
}

for leg in "${legs[@]}"; do
  case "$leg" in
    release) run_release ;;
    scalar) run_scalar ;;
    asan) run_asan ;;
    tsan) run_tsan ;;
    *)
      echo "ci_local: unknown leg '$leg'" \
        "(expected release | scalar | asan | tsan)" >&2
      exit 2
      ;;
  esac
done

echo "ci_local: OK (${legs[*]})"
