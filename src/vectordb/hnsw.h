#pragma once
// HNSW (hierarchical navigable small world) graph index over a VectorStore.
//
// Build: every vector becomes a graph node with a geometrically distributed
// top level (seeded RNG — builds are deterministic for a given store +
// options). Insertion greedily descends from the global entry point through
// the upper layers, then at each layer ≤ the node's level runs a beam
// search of width `ef_construction` and links the node bidirectionally to
// neighbors chosen by the paper's diversity heuristic (Algorithm 4: keep a
// candidate only if it is closer to the new node than to any already-kept
// neighbor — naive nearest-m linking collapses recall on high-dim data).
// Layer 0 allows 2m links, upper layers m; overful neighbor lists are
// re-selected with the same heuristic. Adjacency lists live in one
// util::Arena — fixed-capacity arrays, no per-node malloc.
//
// Search: greedy descent through the upper layers to a good entry, then a
// beam search of width ef (`ef_search`, overridable per call) on layer 0;
// the best k of the beam are returned. Scores on returned hits are computed
// with the store's fp32 kernels — the flat scan's exact expression — so
// hits carry flat-scan-identical scores; only membership is approximate.
// Cost is O(ef · log n) distance evaluations versus the flat scan's O(n).
//
// Optionally pass Int8Codes to traverse on quantized scores (≈4× less
// memory traffic per hop), or a PqCodebook + PqCodes pair to traverse on
// ADC lookup-table scores (≈16× less), with the returned beam re-ranked
// exactly either way — the HNSW × int8 and HNSW × pq cells of the
// bench/ann_frontier.cpp frontier.
//
// The index is immutable after construction; the store (and codes, when
// given) must outlive it. Concurrent search() calls are safe — all scratch
// is per-call.

#include <cstdint>

#include "util/arena.h"
#include "vectordb/pq.h"
#include "vectordb/quantize.h"
#include "vectordb/vector_store.h"

namespace pkb::vectordb {

/// HNSW build/search parameters.
struct HnswOptions {
  /// Max links per node on layers ≥ 1 (layer 0 allows 2m).
  std::size_t m = 32;
  /// Beam width during construction.
  std::size_t ef_construction = 128;
  /// Default beam width during search (≥ k for sensible recall).
  std::size_t ef_search = 64;
  /// RNG seed for level assignment.
  std::uint64_t seed = 42;

  bool operator==(const HnswOptions&) const = default;
};

/// Graph index bound to a VectorStore (which must outlive it and must not
/// grow after construction).
class HnswIndex {
 public:
  /// Build the graph. When `codes` is non-null, traversal scores are int8
  /// approximations; when `pq_book` + `pq_codes` are non-null, traversal
  /// scores are PQ/ADC approximations (at most one quantization may be
  /// given). The final beam is exactly re-ranked either way; codes must
  /// mirror `store` and outlive the index.
  explicit HnswIndex(const VectorStore& store, HnswOptions opts = {},
                     const Int8Codes* codes = nullptr,
                     const PqCodebook* pq_book = nullptr,
                     const PqCodes* pq_codes = nullptr);

  /// Approximate top-k using the default beam width (options().ef_search).
  [[nodiscard]] std::vector<SearchResult> search(const embed::Vector& query,
                                                 std::size_t k) const;

  /// Approximate top-k with an explicit beam width (clamped to ≥ k).
  [[nodiscard]] std::vector<SearchResult> search_ef(const embed::Vector& query,
                                                    std::size_t k,
                                                    std::size_t ef) const;

  /// Recall@k of this index vs exact search for the given queries.
  [[nodiscard]] double recall_at_k(const std::vector<embed::Vector>& queries,
                                   std::size_t k) const;

  [[nodiscard]] const HnswOptions& options() const { return opts_; }
  [[nodiscard]] std::size_t max_level() const { return max_level_; }
  /// Total directed links across all layers.
  [[nodiscard]] std::size_t edge_count() const;

 private:
  /// Fixed-capacity adjacency list for one node on one layer; `nbr` points
  /// into arena_.
  struct Links {
    std::uint32_t* nbr = nullptr;
    std::uint16_t count = 0;
    std::uint16_t cap = 0;
  };

  /// Per-query traversal context: the packed fp32 query always, plus the
  /// quantized query form when `approx` scoring is active (int8 codes or a
  /// PQ LUT — whichever quantization the index was built with).
  struct QueryCtx {
    const float* packed_query = nullptr;
    const std::int8_t* query_codes = nullptr;  ///< int8 traversal
    float query_scale = 0.0f;
    const float* lut = nullptr;  ///< PQ/ADC traversal
    bool approx = false;
  };

  void build();
  void insert(std::size_t node, std::size_t level,
              const float* packed_query);
  /// Fill `out` with up to `cap` diverse neighbors from a best-first
  /// candidate list (the paper's Algorithm-4 heuristic; scores in
  /// `candidates` are similarities to the base point).
  void select_neighbors(const std::vector<std::pair<float, std::uint32_t>>&
                            candidates,
                        std::size_t cap, Links& out) const;
  /// Beam search of width ef on `layer` from `entry`; returns (score, id)
  /// best-first. Scores are fp32 kernel scores during build and fp32
  /// search; int8 or PQ/ADC approximations when ctx.approx is set.
  [[nodiscard]] std::vector<std::pair<float, std::uint32_t>> search_layer(
      const QueryCtx& ctx, std::uint32_t entry, std::size_t ef,
      std::size_t layer) const;
  [[nodiscard]] float node_score(const QueryCtx& ctx, std::uint32_t id) const;

  const VectorStore& store_;
  HnswOptions opts_;
  const Int8Codes* codes_ = nullptr;
  const PqCodebook* pq_book_ = nullptr;
  const PqCodes* pq_codes_ = nullptr;
  util::Arena arena_;
  std::vector<std::vector<Links>> links_;  ///< per node, layers 0..level
  std::uint32_t entry_ = 0;
  std::size_t max_level_ = 0;
};

}  // namespace pkb::vectordb
