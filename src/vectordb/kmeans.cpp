#include "vectordb/kmeans.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <functional>
#include <future>
#include <limits>
#include <stdexcept>

#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "util/clock.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace pkb::vectordb {

namespace {

/// Chunk boundaries depend only on n — never on pool size — so partial
/// reductions merge in the same order no matter how many workers ran them.
constexpr std::size_t kMaxChunks = 256;
constexpr std::size_t kMinChunk = 1024;

std::size_t chunk_size_for(std::size_t n) {
  return std::max(kMinChunk, (n + kMaxChunks - 1) / kMaxChunks);
}

std::size_t chunk_count_for(std::size_t n) {
  const std::size_t chunk = chunk_size_for(n);
  return n == 0 ? 0 : (n + chunk - 1) / chunk;
}

/// Run fn(chunk_index, begin, end) over [0, n) on the pool; blocks until all
/// chunks finish. Single-chunk ranges run inline.
void run_chunks(
    util::ThreadPool& pool, std::size_t n,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  const std::size_t chunk = chunk_size_for(n);
  const std::size_t nchunks = chunk_count_for(n);
  if (nchunks <= 1) {
    if (n > 0) fn(0, 0, n);
    return;
  }
  std::vector<std::future<void>> futures;
  futures.reserve(nchunks);
  for (std::size_t c = 0; c < nchunks; ++c) {
    const std::size_t b = c * chunk;
    const std::size_t e = std::min(n, b + chunk);
    futures.push_back(pool.submit([&fn, c, b, e] { fn(c, b, e); }));
  }
  for (auto& f : futures) f.get();
}

bool row_equals(const float* a, const float* b, std::size_t dim) {
  return std::memcmp(a, b, dim * sizeof(float)) == 0;
}

bool row_matches_any(const float* row, const kernels::PackedF32& centroids) {
  for (std::size_t c = 0; c < centroids.rows(); ++c) {
    if (row_equals(row, centroids.row(c), centroids.dim())) return true;
  }
  return false;
}

}  // namespace

std::size_t find_fresh_row(const kernels::PackedF32& data,
                           const kernels::PackedF32& centroids,
                           std::uint64_t random_start) {
  const std::size_t n = data.rows();
  const std::size_t start = static_cast<std::size_t>(random_start % n);
  for (std::size_t off = 0; off < n; ++off) {
    const std::size_t i = (start + off) % n;
    if (!row_matches_any(data.row(i), centroids)) return i;
  }
  return start;  // every row duplicates a centroid; nothing better exists
}

KmeansResult kmeans_cluster(const kernels::PackedF32& data,
                            const KmeansOptions& opts_in) {
  const std::size_t n = data.rows();
  if (n == 0 || opts_in.k == 0) {
    throw std::invalid_argument("kmeans_cluster: empty input or k == 0");
  }
  pkb::util::Stopwatch watch;
  KmeansOptions opts = opts_in;
  opts.k = std::min(opts.k, n);
  util::ThreadPool& pool = opts.pool ? *opts.pool : util::global_pool();
  const std::size_t k = opts.k;
  const std::size_t dim = data.dim();
  const std::size_t stride = data.stride();
  const bool l2 = opts.metric == KmeansMetric::L2;
  util::Rng rng(opts.seed);
  const std::size_t nchunks = chunk_count_for(n);

  // --- k-means++ initialization -------------------------------------------
  // Seeding works on a deterministic evenly-strided subsample: every round
  // updates min-distances and walks a weighted draw over the whole pool,
  // and the draw is inherently sequential scalar work, so on the full
  // corpus it dominated PQ builds (k=256 rounds × m subs). The sample is a
  // pure function of n and k — determinism is untouched — and Lloyd below
  // refines on every row.
  const std::size_t seed_n = std::min(n, std::max<std::size_t>(2048, 8 * k));
  const auto sample_row = [n, seed_n](std::size_t i) {
    return i * n / seed_n;  // evenly strided, strictly increasing
  };
  const std::size_t seed_chunks = chunk_count_for(seed_n);

  // ‖x‖² per sampled row (L2 distances need it; padding lanes are zero so
  // the strided self-dot equals the unpadded one).
  std::vector<double> norm2(l2 ? seed_n : 0, 0.0);
  if (l2) {
    run_chunks(pool, seed_n, [&](std::size_t, std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) {
        const float* row = data.row(sample_row(i));
        norm2[i] = static_cast<double>(kernels::dot_f32(row, row, stride));
      }
    });
  }

  // Dimension-major copy of the sampled rows (data_trans[d * seed_n + i] =
  // sampled row i, dim d): one centroid scored against a chunk of rows is
  // then a dots_trans_f32 call with full lane occupancy — the row-major
  // layout pads small sub-dimensions to a 16-float stride and wastes most
  // of each lane.
  std::vector<float> data_trans(dim * seed_n);
  run_chunks(pool, seed_n, [&](std::size_t, std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      const float* row = data.row(sample_row(i));
      for (std::size_t d = 0; d < dim; ++d) {
        data_trans[d * seed_n + i] = row[d];
      }
    }
  });

  // Distance updates are chunked on the pool; the weighted draw itself is
  // sequential on this thread (one rng stream, fixed order). Zero-weight
  // rows (duplicates of already-chosen centroids) are skipped by the walk,
  // and a zero total falls back to a fresh-row probe over the full data —
  // both degenerate paths of the old in-line IVF k-means that could waste
  // a cluster.
  kernels::PackedF32 centroids(dim);
  centroids.append(data.row(rng.below(n)));
  std::vector<double> min_dist(
      seed_n, l2 ? std::numeric_limits<double>::infinity() : 2.0);
  std::vector<double> chunk_total(seed_chunks, 0.0);
  while (centroids.rows() < k) {
    const float* latest = centroids.row(centroids.rows() - 1);
    const double latest_norm2 =
        l2 ? static_cast<double>(kernels::dot_f32(latest, latest, stride))
           : 0.0;
    run_chunks(pool, seed_n, [&](std::size_t c, std::size_t b, std::size_t e) {
      // One transposed kernel pass per chunk: the new centroid against rows
      // [b, e) of the dimension-major copy, each dot bit-identical to the
      // scalar backend; per-row dispatch on the padded row-major layout
      // dominated at small sub-dimensions.
      std::vector<float> dots(e - b);
      kernels::dots_trans_f32(latest, data_trans.data() + b, dim, e - b,
                              seed_n, dots.data());
      double total = 0.0;
      for (std::size_t i = b; i < e; ++i) {
        const double dot = static_cast<double>(dots[i - b]);
        const double d =
            l2 ? std::max(0.0, norm2[i] - 2.0 * dot + latest_norm2)
               : std::max(0.0, 1.0 - dot);
        if (d < min_dist[i]) min_dist[i] = d;
        total += min_dist[i];
      }
      chunk_total[c] = total;
    });
    double total = 0.0;
    for (std::size_t c = 0; c < seed_chunks; ++c) total += chunk_total[c];

    std::size_t chosen;
    if (total <= 0.0) {
      chosen = find_fresh_row(data, centroids, rng.below(n));
    } else {
      double target = rng.uniform() * total;
      std::size_t last_positive = seed_n;
      for (std::size_t i = 0; i < seed_n; ++i) {
        if (min_dist[i] <= 0.0) continue;
        last_positive = i;
        target -= min_dist[i];
        if (target <= 0.0) break;
      }
      // total > 0 guarantees a positive-weight row.
      chosen = sample_row(last_positive);
    }
    centroids.append(data.row(chosen));
  }

  // --- Lloyd refinement ----------------------------------------------------
  KmeansResult res;
  res.assign.assign(n, 0);
  std::vector<std::uint32_t>& assign = res.assign;
  std::vector<std::uint32_t> counts(k, 0);

  // Assignment scores every row against every centroid — the build's hot
  // loop. It runs on the fused transposed kernel (nearest_trans_f32):
  // centroids in dimension-major order, SIMD lanes across centroids with the
  // running max kept in registers, so small sub-dimensions (PQ trains dim-2
  // slices) waste no padding lanes and no score buffer is materialized.
  //
  // Columns are padded to a multiple of 16 with copies of centroid 0 so the
  // kernel's widest vector loop covers every column (IVF's k = ⌈√n⌉ leaves
  // a scalar per-row tail otherwise). A duplicate of column 0 scores
  // bit-identically to column 0 and therefore can never win the argmax —
  // ties resolve to the lowest index — so padding never changes an
  // assignment.
  const std::size_t kpad = (k + 15) / 16 * 16;

  // argmin‖x−c‖² = argmax(x·c − ‖c‖²/2), so L2 assignment reuses the dot
  // kernels with a per-centroid offset (stored negated, the kernel adds it).
  std::vector<float> neg_half_cnorm(l2 ? kpad : 0, 0.0f);
  const auto refresh_half_cnorm = [&] {
    if (!l2) return;
    for (std::size_t c = 0; c < k; ++c) {
      const float* row = centroids.row(c);
      neg_half_cnorm[c] = -0.5f * kernels::dot_f32(row, row, stride);
    }
    for (std::size_t c = k; c < kpad; ++c) {
      neg_half_cnorm[c] = neg_half_cnorm[0];
    }
  };

  std::vector<float> trans(dim * kpad);
  const auto refresh_trans = [&] {
    for (std::size_t c = 0; c < k; ++c) {
      const float* row = centroids.row(c);
      for (std::size_t d = 0; d < dim; ++d) trans[d * kpad + c] = row[d];
    }
    const float* row0 = centroids.row(0);
    for (std::size_t c = k; c < kpad; ++c) {
      for (std::size_t d = 0; d < dim; ++d) trans[d * kpad + c] = row0[d];
    }
  };

  const float* adjust = l2 ? neg_half_cnorm.data() : nullptr;
  const auto assign_pass = [&] {
    run_chunks(pool, n, [&](std::size_t, std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) {
        assign[i] = static_cast<std::uint32_t>(kernels::nearest_trans_f32(
            data.row(i), trans.data(), dim, kpad, kpad, adjust));
      }
    });
  };

  // Per-chunk double partial sums, merged in ascending chunk order: the
  // accumulation order is a function of n alone, so centroid means are
  // byte-identical at any worker count.
  std::vector<double> sums;
  const auto reduce_pass = [&] {
    std::vector<std::vector<double>> part_sums(nchunks);
    std::vector<std::vector<std::uint32_t>> part_counts(nchunks);
    run_chunks(pool, n, [&](std::size_t c, std::size_t b, std::size_t e) {
      auto& ps = part_sums[c];
      auto& pc = part_counts[c];
      ps.assign(k * dim, 0.0);
      pc.assign(k, 0);
      for (std::size_t i = b; i < e; ++i) {
        const float* row = data.row(i);
        double* dst = ps.data() + assign[i] * dim;
        for (std::size_t d = 0; d < dim; ++d) dst[d] += row[d];
        ++pc[assign[i]];
      }
    });
    sums.assign(k * dim, 0.0);
    counts.assign(k, 0);
    for (std::size_t c = 0; c < nchunks; ++c) {
      for (std::size_t j = 0; j < k * dim; ++j) sums[j] += part_sums[c][j];
      for (std::size_t j = 0; j < k; ++j) counts[j] += part_counts[c][j];
    }
  };

  std::vector<float> tmp(dim);
  const auto update_pass = [&] {
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Lost every member — re-seed from a row that duplicates no current
        // centroid (including ones re-seeded earlier this pass).
        centroids.set_row(
            c, data.row(find_fresh_row(data, centroids, rng.below(n))));
        continue;
      }
      const double inv = 1.0 / static_cast<double>(counts[c]);
      const double* src = sums.data() + c * dim;
      if (l2) {
        for (std::size_t d = 0; d < dim; ++d) {
          tmp[d] = static_cast<float>(src[d] * inv);
        }
      } else {
        double norm = 0.0;
        for (std::size_t d = 0; d < dim; ++d) {
          const double v = src[d] * inv;
          norm += v * v;
        }
        norm = std::sqrt(norm);
        if (norm <= 0.0) {
          centroids.set_row(
              c, data.row(find_fresh_row(data, centroids, rng.below(n))));
          continue;
        }
        for (std::size_t d = 0; d < dim; ++d) {
          tmp[d] = static_cast<float>(src[d] * inv / norm);
        }
      }
      centroids.set_row(c, tmp.data());
    }
  };

  for (std::size_t iter = 0; iter < opts.iters; ++iter) {
    refresh_half_cnorm();
    refresh_trans();
    assign_pass();
    reduce_pass();
    update_pass();
  }

  // Final assignment. A centroid can still end up memberless here (it was
  // re-seeded after the last full pass, or lost a tie); give empties a few
  // fresh re-seed rounds so a cluster is only ever wasted when the data has
  // fewer distinct rows than k.
  for (std::size_t round = 0; round < 4; ++round) {
    refresh_half_cnorm();
    refresh_trans();
    assign_pass();
    counts.assign(k, 0);
    for (std::size_t i = 0; i < n; ++i) ++counts[assign[i]];
    bool fixed_one = false;
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] != 0) continue;
      const std::size_t fresh =
          find_fresh_row(data, centroids, rng.below(n));
      if (row_matches_any(data.row(fresh), centroids)) continue;  // no fix
      centroids.set_row(c, data.row(fresh));
      fixed_one = true;
    }
    if (!fixed_one) break;
  }

  res.centroids = std::move(centroids);
  res.counts = std::move(counts);
  obs::global_metrics()
      .histogram(obs::kAnnBuildKmeansSeconds)
      .observe(watch.seconds());
  return res;
}

KmeansResult kmeans_cluster_reference(const kernels::PackedF32& data,
                                      const KmeansOptions& opts_in) {
  const std::size_t n = data.rows();
  if (n == 0 || opts_in.k == 0) {
    throw std::invalid_argument(
        "kmeans_cluster_reference: empty input or k == 0");
  }
  KmeansOptions opts = opts_in;
  opts.k = std::min(opts.k, n);
  const std::size_t k = opts.k;
  const std::size_t dim = data.dim();
  const bool l2 = opts.metric == KmeansMetric::L2;
  util::Rng rng(opts.seed);

  const auto ref_dot = [dim](const float* a, const float* b) {
    double acc = 0.0;
    for (std::size_t d = 0; d < dim; ++d) {
      acc += static_cast<double>(a[d]) * b[d];
    }
    return acc;
  };

  // Same evenly-strided seeding subsample as kmeans_cluster (pure function
  // of n and k), so the two trainers run the same algorithm.
  const std::size_t seed_n = std::min(n, std::max<std::size_t>(2048, 8 * k));
  const auto sample_row = [n, seed_n](std::size_t i) {
    return i * n / seed_n;
  };

  std::vector<double> norm2(l2 ? seed_n : 0, 0.0);
  for (std::size_t i = 0; i < norm2.size(); ++i) {
    const float* row = data.row(sample_row(i));
    norm2[i] = ref_dot(row, row);
  }

  kernels::PackedF32 centroids(dim);
  centroids.append(data.row(rng.below(n)));
  std::vector<double> min_dist(
      seed_n, l2 ? std::numeric_limits<double>::infinity() : 2.0);
  while (centroids.rows() < k) {
    const float* latest = centroids.row(centroids.rows() - 1);
    const double latest_norm2 = l2 ? ref_dot(latest, latest) : 0.0;
    double total = 0.0;
    for (std::size_t i = 0; i < seed_n; ++i) {
      const double dot = ref_dot(latest, data.row(sample_row(i)));
      const double d = l2 ? std::max(0.0, norm2[i] - 2.0 * dot + latest_norm2)
                          : std::max(0.0, 1.0 - dot);
      if (d < min_dist[i]) min_dist[i] = d;
      total += min_dist[i];
    }
    std::size_t chosen;
    if (total <= 0.0) {
      chosen = find_fresh_row(data, centroids, rng.below(n));
    } else {
      double target = rng.uniform() * total;
      std::size_t last_positive = seed_n;
      for (std::size_t i = 0; i < seed_n; ++i) {
        if (min_dist[i] <= 0.0) continue;
        last_positive = i;
        target -= min_dist[i];
        if (target <= 0.0) break;
      }
      chosen = sample_row(last_positive);
    }
    centroids.append(data.row(chosen));
  }

  KmeansResult res;
  res.assign.assign(n, 0);
  std::vector<std::uint32_t> counts(k, 0);
  std::vector<double> half_cnorm(l2 ? k : 0, 0.0);
  std::vector<double> sums(k * dim, 0.0);
  std::vector<float> tmp(dim);

  const auto assign_pass = [&] {
    for (std::size_t c = 0; c < half_cnorm.size(); ++c) {
      half_cnorm[c] = 0.5 * ref_dot(centroids.row(c), centroids.row(c));
    }
    for (std::size_t i = 0; i < n; ++i) {
      const float* row = data.row(i);
      std::size_t arg = 0;
      double best = -std::numeric_limits<double>::infinity();
      for (std::size_t c = 0; c < k; ++c) {
        const double s =
            ref_dot(row, centroids.row(c)) - (l2 ? half_cnorm[c] : 0.0);
        if (s > best) {
          best = s;
          arg = c;
        }
      }
      res.assign[i] = static_cast<std::uint32_t>(arg);
    }
  };

  for (std::size_t iter = 0; iter < opts.iters; ++iter) {
    assign_pass();
    std::fill(sums.begin(), sums.end(), 0.0);
    counts.assign(k, 0);
    for (std::size_t i = 0; i < n; ++i) {
      const float* row = data.row(i);
      double* dst = sums.data() + res.assign[i] * dim;
      for (std::size_t d = 0; d < dim; ++d) dst[d] += row[d];
      ++counts[res.assign[i]];
    }
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        centroids.set_row(
            c, data.row(find_fresh_row(data, centroids, rng.below(n))));
        continue;
      }
      const double inv = 1.0 / static_cast<double>(counts[c]);
      const double* src = sums.data() + c * dim;
      double norm = 1.0;
      if (!l2) {
        norm = 0.0;
        for (std::size_t d = 0; d < dim; ++d) {
          const double v = src[d] * inv;
          norm += v * v;
        }
        norm = std::sqrt(norm);
        if (norm <= 0.0) {
          centroids.set_row(
              c, data.row(find_fresh_row(data, centroids, rng.below(n))));
          continue;
        }
      }
      for (std::size_t d = 0; d < dim; ++d) {
        tmp[d] = static_cast<float>(src[d] * inv / norm);
      }
      centroids.set_row(c, tmp.data());
    }
  }

  assign_pass();
  counts.assign(k, 0);
  for (std::size_t i = 0; i < n; ++i) ++counts[res.assign[i]];
  res.centroids = std::move(centroids);
  res.counts = std::move(counts);
  return res;
}

}  // namespace pkb::vectordb
