#pragma once
// Vector database — the Chroma equivalent of §III-A.
//
// Stores (document, embedding) pairs and answers top-k similarity queries.
// Exact search scans a packed SoA mirror of the vectors with the SIMD
// kernels in kernels.h (parallelized, partial-sort top-k); the IVF index in
// ivf.h and the HNSW graph in hnsw.h provide approximate fast paths, and
// quantize.h adds an int8 scan with exact re-rank. Collections persist to a
// simple binary format.

#include <functional>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "embed/embedder.h"
#include "resilience/fault_plan.h"
#include "text/document.h"
#include "vectordb/kernels.h"

namespace pkb::vectordb {

/// One search hit. `index` is the entry's position in the store.
struct SearchResult {
  std::size_t index = 0;
  float score = 0.0f;  ///< cosine similarity (vectors are unit norm)
  const text::Document* doc = nullptr;

  bool operator==(const SearchResult&) const = default;
};

/// Optional metadata predicate applied before scoring.
using MetadataFilter = std::function<bool(const text::Metadata&)>;

/// Flat (exact) vector store.
class VectorStore {
 public:
  VectorStore() = default;

  /// An empty store with its dimension fixed up front: add() and
  /// add_prenormalized() then reject any other dimension from the first
  /// entry on. The shard router builds slices this way so an underfull
  /// partition (fewer documents than shards) still validates queries.
  explicit VectorStore(std::size_t dim) : dim_(dim) {}

  /// Build a store by embedding every document with `embedder` (which must
  /// already be fitted). Mirrors Chroma.from_documents.
  static VectorStore from_documents(std::vector<text::Document> docs,
                                    const embed::Embedder& embedder);

  /// Add one entry. The vector is L2-normalized on insertion; its dimension
  /// must match existing entries.
  void add(text::Document doc, embed::Vector vec);

  /// Add one entry whose vector is already unit norm (copied from another
  /// store or read back by load()). Skipping the re-normalization keeps the
  /// vector bit-identical — the ingest delta-merge relies on this so old
  /// chunks score exactly as they did in the previous generation.
  void add_prenormalized(text::Document doc, embed::Vector vec);

  [[nodiscard]] std::size_t size() const { return docs_.size(); }
  [[nodiscard]] bool empty() const { return docs_.empty(); }
  [[nodiscard]] std::size_t dimension() const { return dim_; }

  /// Entry access.
  [[nodiscard]] const text::Document& doc(std::size_t i) const;
  [[nodiscard]] const embed::Vector& vec(std::size_t i) const;

  /// The packed SoA mirror of the stored vectors (64-byte-aligned rows,
  /// dimension padded to a lane multiple). Every scoring path — the flat
  /// scan here, IVF bucket scoring, HNSW traversal, the quantized re-rank —
  /// reads rows from this block through the same kernel, which is what
  /// keeps their scores mutually bit-identical.
  [[nodiscard]] const kernels::PackedF32& packed() const { return packed_; }

  /// Score one stored row against a packed query (kernels::PackedF32
  /// layout, stride() floats). This is THE scoring expression of the store:
  /// indexes call it so their hits carry exactly the scores the flat scan
  /// would produce.
  [[nodiscard]] float kernel_score(const float* packed_query,
                                   std::size_t i) const {
    return kernels::dot_f32(packed_query, packed_.row(i), packed_.stride());
  }

  /// Exact top-k by cosine similarity (descending). Ties break by lower
  /// index for determinism. `filter`, when given, drops entries before
  /// scoring.
  [[nodiscard]] std::vector<SearchResult> similarity_search(
      const embed::Vector& query, std::size_t k,
      const MetadataFilter* filter = nullptr) const;

  /// Batched exact top-k: one amortized pass over the stored vectors scores
  /// every query (the store's memory is read once per block instead of once
  /// per query). Returns one result list per query, each identical to what
  /// similarity_search would return for that query alone (same scores, same
  /// lower-index tie-break).
  [[nodiscard]] std::vector<std::vector<SearchResult>> similarity_search_batch(
      const std::vector<embed::Vector>& queries, std::size_t k,
      const MetadataFilter* filter = nullptr) const;

  /// Convenience: embed the query text with `embedder` then search.
  [[nodiscard]] std::vector<SearchResult> similarity_search_text(
      std::string_view query, std::size_t k,
      const embed::Embedder& embedder) const;

  /// Find the entry whose document id equals `id`; nullopt when absent.
  [[nodiscard]] std::optional<std::size_t> find_id(std::string_view id) const;

  /// Attach a chaos plan consulted (Stage::VectorSearch) at each
  /// similarity_search / similarity_search_batch entry: error decisions
  /// throw the matching resilience::FaultError (latency spikes are ignored —
  /// search time here is real, not simulated). Not persisted by save/load.
  /// Setup-time only — must not race in-flight searches. Stores pinned in
  /// rag snapshots are reached through const pointers, so the serving path
  /// injects at the retriever instead; this hook serves direct store users.
  void set_fault_plan(const pkb::resilience::FaultPlan* plan) {
    fault_plan_ = plan;
  }

  /// Persist to / restore from a binary file. Throws std::runtime_error on
  /// I/O errors or format mismatch: load() validates magic, version, counts
  /// and dimensions, and every read, so a truncated or corrupt file is a
  /// clear error instead of a garbage store.
  void save(const std::string& path) const;
  static VectorStore load(const std::string& path);

  /// Stream variants: the store blob embeds cleanly inside a larger file
  /// (rag::Snapshot persistence writes one as its vector section). load()
  /// consumes exactly the blob and leaves the stream positioned after it.
  void save(std::ostream& out) const;
  static VectorStore load(std::istream& in);

 private:
  /// Shared top-k selection over a precomputed score array — the single and
  /// batched searches must agree bit-for-bit, so both call this.
  [[nodiscard]] std::vector<SearchResult> select_top_k(
      const std::vector<float>& scores, std::size_t k,
      const MetadataFilter* filter) const;

  std::vector<text::Document> docs_;
  std::vector<embed::Vector> vecs_;
  kernels::PackedF32 packed_;  ///< SoA mirror of vecs_, scanned by kernels
  std::size_t dim_ = 0;
  const pkb::resilience::FaultPlan* fault_plan_ = nullptr;
};

}  // namespace pkb::vectordb
