#pragma once
// SIMD scoring kernels and packed SoA layouts — the raw-speed substrate of
// the vector hot path.
//
// Every similarity score the vector database produces (flat scan, batch
// scan, IVF buckets, HNSW traversal, int8 candidate generation) funnels
// through the two kernel families here:
//
//   * fp32 dot products with double accumulation — the exact scoring
//     contract `embed::dot` established (accumulate in double, round once
//     to float), which is what keeps top-k selection deterministic and the
//     shard/batch equivalence gates meaningful;
//   * int8 dot products with int32 accumulation — integer math is exact,
//     so the quantized scores are bit-identical across scalar/AVX2/NEON
//     backends by construction;
//   * ADC (asymmetric distance computation) table accumulation for product
//     quantization — per-query lookup tables are gathered per code byte and
//     accumulated in double, same rounding contract as the fp32 family.
//
// Backends are selected ONCE at first use (CPUID on x86: AVX2+FMA; NEON on
// aarch64; portable scalar otherwise) and never change for the process, so
// all scores within a process are mutually consistent — the property the
// bit-exactness gates (single vs batch, sharded vs monolithic, rerank vs
// flat) rely on. Building with -DPKB_FORCE_SCALAR=ON pins the scalar
// backend at compile time; CI runs that configuration to keep the fallback
// honest on every change.
//
// Layouts: `PackedF32` / `PackedI8` store vectors row-major in one
// cache-line-aligned buffer (util/arena.h) with the dimension padded to a
// lane multiple. Padding lanes are exact zeros and contribute exactly zero
// to every accumulator, so a padded scan equals the unpadded scan — see
// AlignedBuffer's zero-fill contract.

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "util/arena.h"

namespace pkb::vectordb::kernels {

/// fp32 lane multiple rows are padded to (16 floats = one cache line).
inline constexpr std::size_t kF32Pad = 16;
/// int8 lane multiple rows are padded to (64 bytes = one cache line).
inline constexpr std::size_t kI8Pad = 64;
/// PQ code rows are padded to this many bytes (keeps gather loads aligned).
inline constexpr std::size_t kPqPad = 8;
/// Centroids per PQ sub-quantizer: codes are one byte, LUTs are laid out
/// [m][kPqBook] floats regardless of how many centroids were trained
/// (untrained slots are zero).
inline constexpr std::size_t kPqBook = 256;

/// Name of the dispatched backend: "avx2", "neon", or "scalar". Forced to
/// "scalar" under -DPKB_FORCE_SCALAR=ON.
[[nodiscard]] std::string_view backend_name();

/// Dot product of two fp32 vectors of length `n`, accumulated in double and
/// rounded once to float — the `embed::dot` contract. No alignment
/// requirement (handles unpacked query vectors).
[[nodiscard]] float dot_f32(const float* a, const float* b, std::size_t n);

/// Score `rows` consecutive padded rows of a PackedF32 against one padded
/// query: out[r] = dot(query, row r). `stride` is the padded dimension;
/// both pointers must be 64-byte aligned (PackedF32 guarantees this).
void dots_f32(const float* query, const float* rows_base, std::size_t rows,
              std::size_t stride, float* out);

/// Transposed scoring for codebook training and PQ LUT expansion: `trans`
/// holds k columns in dimension-major (struct-of-arrays) order with leading
/// dimension `ld` — trans[d * ld + c] is dimension d of column c (ld = k
/// for a dense matrix; ld > k addresses a column sub-range). Computes
/// out[c] = Σ_d q[d] · trans[d*ld+c] with every product exact in double,
/// accumulated in ascending d, rounded once to float. SIMD backends
/// vectorize across c — the summation dimension stays sequential — so each
/// out[c] is bit-identical to the scalar backend (unlike the row-major dot,
/// whose lanes re-associate), and no padding lanes are wasted at small
/// dimensions.
void dots_trans_f32(const float* q, const float* trans, std::size_t dim,
                    std::size_t k, std::size_t ld, float* out);

/// Nearest column under the dot score: returns argmax_c of
/// Σ_d q[d] · trans[d*ld+c] (+ adjust[c] when `adjust` is non-null — pass
/// −‖c‖²/2 for L2 geometry), ties to the lowest c. Accumulation is single
/// precision — this is the k-means training / PQ-encode assignment
/// primitive, NOT part of the double-exact scoring contract: each backend
/// is internally deterministic (same inputs ⇒ same argmax in a process),
/// but backends may disagree on knife-edge assignments. Requires k ≥ 1.
[[nodiscard]] std::size_t nearest_trans_f32(const float* q, const float* trans,
                                            std::size_t dim, std::size_t k,
                                            std::size_t ld,
                                            const float* adjust);

/// Dot product of two int8 code vectors of length `n` (padded or not),
/// accumulated exactly in int32. Identical across backends.
[[nodiscard]] std::int32_t dot_i8(const std::int8_t* a, const std::int8_t* b,
                                  std::size_t n);

/// ADC score of one PQ-coded row: sum over the `m` sub-quantizers of
/// lut[s * kPqBook + codes[s]], accumulated in double and rounded once to
/// float. The AVX2 backend gathers 8 table entries per step
/// (_mm256_i32gather_ps) and widens to double accumulators; NEON and scalar
/// walk the table sequentially — the summands are identical floats, so the
/// result matches across backends exactly like the fp32 dot family.
[[nodiscard]] float adc_f32(const float* lut, const std::uint8_t* codes,
                            std::size_t m);

/// ADC scores of `rows` consecutive code rows: out[r] = adc_f32 of row r.
/// `stride` is the padded code-row width in bytes (PqCodes::stride()).
void adc_scores(const float* lut, const std::uint8_t* codes_base,
                std::size_t rows, std::size_t m, std::size_t stride,
                float* out);

/// Row-major fp32 matrix, 64-byte-aligned, dimension padded to kF32Pad with
/// zeros. This is the cache-blocked SoA layout the flat scan iterates: each
/// row is one contiguous aligned span, rows are adjacent, and a block of
/// rows is scored with one streaming pass (dots_f32).
class PackedF32 {
 public:
  PackedF32() = default;

  /// Fix the logical dimension; rows are appended with append().
  explicit PackedF32(std::size_t dim)
      : dim_(dim), stride_(util::align_up(dim == 0 ? 1 : dim, kF32Pad)) {}

  /// Append one row (length dim); tail lanes stay zero.
  void append(const float* row);

  /// Overwrite row r with `row` (length dim); tail lanes stay zero. Used by
  /// the k-means trainers to update centroids in place.
  void set_row(std::size_t r, const float* row);

  /// Pack a query into a padded aligned scratch buffer (tail zeroed).
  /// `scratch` must hold stride() floats.
  void pack_query(const float* query, float* scratch) const;

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t dim() const { return dim_; }
  [[nodiscard]] std::size_t stride() const { return stride_; }
  [[nodiscard]] const float* row(std::size_t r) const {
    return buf_.as<float>() + r * stride_;
  }

  /// Score rows [begin, end) against the padded query (stride() floats,
  /// aligned): out[r - begin] = dot(query, row r).
  void score_range(const float* packed_query, std::size_t begin,
                   std::size_t end, float* out) const;

 private:
  std::size_t dim_ = 0;
  std::size_t stride_ = 0;
  std::size_t rows_ = 0;
  util::AlignedBuffer buf_;
};

/// Row-major int8 code matrix with per-row dequantization scales, padded to
/// kI8Pad. Produced by quantize.h; scanned by the int8 kernels.
class PackedI8 {
 public:
  PackedI8() = default;
  explicit PackedI8(std::size_t dim)
      : dim_(dim), stride_(util::align_up(dim == 0 ? 1 : dim, kI8Pad)) {}

  /// Append one code row (length dim) and its dequantization scale.
  void append(const std::int8_t* codes, float scale);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t dim() const { return dim_; }
  [[nodiscard]] std::size_t stride() const { return stride_; }
  [[nodiscard]] const std::int8_t* row(std::size_t r) const {
    return buf_.as<std::int8_t>() + r * stride_;
  }
  [[nodiscard]] float scale(std::size_t r) const { return scales_[r]; }

  /// Approximate scores of rows [begin, end) against a quantized query:
  /// out[r - begin] = query_scale * scale(r) * dot_i8(query_codes, row r).
  /// `query_codes` must hold stride() bytes (tail zeroed).
  void score_range(const std::int8_t* query_codes, float query_scale,
                   std::size_t begin, std::size_t end, float* out) const;

 private:
  std::size_t dim_ = 0;
  std::size_t stride_ = 0;
  std::size_t rows_ = 0;
  util::AlignedBuffer buf_;
  std::vector<float> scales_;
};

}  // namespace pkb::vectordb::kernels
