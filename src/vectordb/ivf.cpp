#include "vectordb/ivf.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "util/clock.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace pkb::vectordb {

IvfIndex::IvfIndex(const VectorStore& store, IvfOptions opts)
    : store_(store), opts_(opts) {
  if (store_.empty()) {
    throw std::invalid_argument("IvfIndex: empty store");
  }
  if (opts_.clusters == 0) {
    opts_.clusters = static_cast<std::size_t>(
        std::ceil(std::sqrt(static_cast<double>(store_.size()))));
  }
  opts_.clusters = std::min(opts_.clusters, store_.size());
  opts_.nprobe = std::max<std::size_t>(1, std::min(opts_.nprobe, opts_.clusters));
  build();
}

void IvfIndex::build() {
  const std::size_t n = store_.size();
  const std::size_t k = opts_.clusters;
  const std::size_t dim = store_.dimension();
  pkb::util::Rng rng(opts_.seed);

  // k-means++ initialization on cosine distance (vectors are unit norm, so
  // distance = 1 - dot).
  centroids_.clear();
  centroids_.reserve(k);
  centroids_.push_back(store_.vec(rng.below(n)));
  std::vector<double> min_dist(n, 2.0);
  while (centroids_.size() < k) {
    const embed::Vector& latest = centroids_.back();
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double d = 1.0 - static_cast<double>(embed::dot(latest, store_.vec(i)));
      min_dist[i] = std::min(min_dist[i], std::max(0.0, d));
      total += min_dist[i];
    }
    if (total <= 0.0) {
      centroids_.push_back(store_.vec(rng.below(n)));
      continue;
    }
    double target = rng.uniform() * total;
    std::size_t chosen = n - 1;
    for (std::size_t i = 0; i < n; ++i) {
      target -= min_dist[i];
      if (target <= 0.0) {
        chosen = i;
        break;
      }
    }
    centroids_.push_back(store_.vec(chosen));
  }

  // Lloyd iterations.
  std::vector<std::size_t> assign(n, 0);
  for (std::size_t iter = 0; iter < opts_.kmeans_iters; ++iter) {
    pkb::util::parallel_for(0, n, [&](std::size_t i) {
      float best = -2.0f;
      std::size_t arg = 0;
      for (std::size_t c = 0; c < centroids_.size(); ++c) {
        const float s = embed::dot(centroids_[c], store_.vec(i));
        if (s > best) {
          best = s;
          arg = c;
        }
      }
      assign[i] = arg;
    });
    std::vector<embed::Vector> sums(centroids_.size(),
                                    embed::Vector(dim, 0.0f));
    std::vector<std::size_t> counts(centroids_.size(), 0);
    for (std::size_t i = 0; i < n; ++i) {
      const embed::Vector& v = store_.vec(i);
      embed::Vector& s = sums[assign[i]];
      for (std::size_t d = 0; d < dim; ++d) s[d] += v[d];
      ++counts[assign[i]];
    }
    for (std::size_t c = 0; c < centroids_.size(); ++c) {
      if (counts[c] == 0) {
        centroids_[c] = store_.vec(rng.below(n));  // re-seed empty cluster
        continue;
      }
      centroids_[c] = std::move(sums[c]);
      embed::l2_normalize(centroids_[c]);
    }
  }

  // Final assignment into buckets.
  buckets_.assign(centroids_.size(), {});
  for (std::size_t i = 0; i < n; ++i) {
    float best = -2.0f;
    std::size_t arg = 0;
    for (std::size_t c = 0; c < centroids_.size(); ++c) {
      const float s = embed::dot(centroids_[c], store_.vec(i));
      if (s > best) {
        best = s;
        arg = c;
      }
    }
    buckets_[arg].push_back(i);
  }
  obs::global_metrics()
      .gauge(obs::kIvfClusters)
      .set(static_cast<double>(centroids_.size()));
}

std::vector<std::size_t> IvfIndex::probe_candidates(
    const embed::Vector& normalized_query) const {
  // Rank clusters by centroid similarity (kernel dot over the unpadded
  // dimension — probe ORDER only; hit scores come from the store kernels).
  std::vector<std::size_t> cluster_order(centroids_.size());
  for (std::size_t c = 0; c < centroids_.size(); ++c) cluster_order[c] = c;
  std::vector<float> cscore(centroids_.size());
  for (std::size_t c = 0; c < centroids_.size(); ++c) {
    cscore[c] = kernels::dot_f32(normalized_query.data(),
                                 centroids_[c].data(), centroids_[c].size());
  }
  const std::size_t probes = std::min(opts_.nprobe, centroids_.size());
  std::partial_sort(cluster_order.begin(),
                    cluster_order.begin() + static_cast<std::ptrdiff_t>(probes),
                    cluster_order.end(), [&](std::size_t a, std::size_t b) {
                      if (cscore[a] != cscore[b]) return cscore[a] > cscore[b];
                      return a < b;
                    });

  std::vector<std::size_t> candidates;
  for (std::size_t p = 0; p < probes; ++p) {
    const auto& bucket = buckets_[cluster_order[p]];
    candidates.insert(candidates.end(), bucket.begin(), bucket.end());
  }
  return candidates;
}

std::vector<SearchResult> IvfIndex::search(const embed::Vector& query,
                                           std::size_t k) const {
  if (k == 0) return {};
  obs::MetricsRegistry& metrics = obs::global_metrics();
  metrics.counter(obs::kIvfSearchesTotal).inc();
  pkb::util::Stopwatch watch;
  embed::Vector q = query;
  embed::l2_normalize(q);

  const std::size_t probes = std::min(opts_.nprobe, centroids_.size());
  const std::vector<std::size_t> candidates = probe_candidates(q);

  // Score the probed entries with the store's packed kernels — the exact
  // flat-scan expression, so every hit's score is flat-scan-identical.
  const kernels::PackedF32& packed = store_.packed();
  pkb::util::AlignedBuffer qbuf(packed.stride() * sizeof(float));
  packed.pack_query(q.data(), qbuf.as<float>());
  std::vector<SearchResult> hits;
  hits.reserve(candidates.size());
  for (std::size_t i : candidates) {
    hits.push_back(
        SearchResult{i, store_.kernel_score(qbuf.as<float>(), i),
                     &store_.doc(i)});
  }
  std::sort(hits.begin(), hits.end(), [](const SearchResult& a,
                                         const SearchResult& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.index < b.index;
  });
  if (hits.size() > k) hits.resize(k);
  metrics.counter(obs::kIvfProbesTotal).inc(probes);
  metrics.histogram(obs::kIvfSearchSeconds).observe(watch.seconds());
  return hits;
}

double IvfIndex::recall_at_k(const std::vector<embed::Vector>& queries,
                             std::size_t k) const {
  if (queries.empty() || k == 0) return 1.0;
  std::size_t found = 0;
  std::size_t total = 0;
  for (const embed::Vector& q : queries) {
    const auto exact = store_.similarity_search(q, k);
    const auto approx = search(q, k);
    for (const SearchResult& e : exact) {
      ++total;
      for (const SearchResult& a : approx) {
        if (a.index == e.index) {
          ++found;
          break;
        }
      }
    }
  }
  return total == 0 ? 1.0 : static_cast<double>(found) / static_cast<double>(total);
}

}  // namespace pkb::vectordb
