#include "vectordb/ivf.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "util/clock.h"
#include "util/thread_pool.h"
#include "vectordb/kmeans.h"

namespace pkb::vectordb {

IvfIndex::IvfIndex(const VectorStore& store, IvfOptions opts,
                   util::ThreadPool* pool)
    : store_(store), opts_(opts) {
  if (store_.empty()) {
    throw std::invalid_argument("IvfIndex: empty store");
  }
  if (opts_.clusters == 0) {
    opts_.clusters = static_cast<std::size_t>(
        std::ceil(std::sqrt(static_cast<double>(store_.size()))));
  }
  opts_.clusters = std::min(opts_.clusters, store_.size());
  opts_.nprobe = std::max<std::size_t>(1, std::min(opts_.nprobe, opts_.clusters));
  build(pool);
}

void IvfIndex::build(util::ThreadPool* pool) {
  // The coarse quantizer is the shared deterministic parallel trainer
  // (vectordb/kmeans.h): packed SIMD kernels, chunked double reductions
  // merged in fixed order, fresh-row degenerate re-seeds. Cosine metric —
  // stored vectors are unit norm.
  KmeansOptions ko;
  ko.k = opts_.clusters;
  ko.iters = opts_.kmeans_iters;
  ko.seed = opts_.seed;
  ko.metric = KmeansMetric::Cosine;
  ko.pool = pool;
  const KmeansResult km = kmeans_cluster(store_.packed(), ko);

  const std::size_t dim = store_.dimension();
  centroids_.assign(km.centroids.rows(), embed::Vector(dim, 0.0f));
  for (std::size_t c = 0; c < centroids_.size(); ++c) {
    const float* row = km.centroids.row(c);
    std::copy(row, row + dim, centroids_[c].begin());
  }
  buckets_.assign(centroids_.size(), {});
  for (std::size_t i = 0; i < km.assign.size(); ++i) {
    buckets_[km.assign[i]].push_back(i);
  }
  obs::global_metrics()
      .gauge(obs::kIvfClusters)
      .set(static_cast<double>(centroids_.size()));
}

std::vector<std::size_t> IvfIndex::probe_candidates(
    const embed::Vector& normalized_query) const {
  // Rank clusters by centroid similarity (kernel dot over the unpadded
  // dimension — probe ORDER only; hit scores come from the store kernels).
  std::vector<std::size_t> cluster_order(centroids_.size());
  for (std::size_t c = 0; c < centroids_.size(); ++c) cluster_order[c] = c;
  std::vector<float> cscore(centroids_.size());
  for (std::size_t c = 0; c < centroids_.size(); ++c) {
    cscore[c] = kernels::dot_f32(normalized_query.data(),
                                 centroids_[c].data(), centroids_[c].size());
  }
  const std::size_t probes = std::min(opts_.nprobe, centroids_.size());
  std::partial_sort(cluster_order.begin(),
                    cluster_order.begin() + static_cast<std::ptrdiff_t>(probes),
                    cluster_order.end(), [&](std::size_t a, std::size_t b) {
                      if (cscore[a] != cscore[b]) return cscore[a] > cscore[b];
                      return a < b;
                    });

  std::vector<std::size_t> candidates;
  for (std::size_t p = 0; p < probes; ++p) {
    const auto& bucket = buckets_[cluster_order[p]];
    candidates.insert(candidates.end(), bucket.begin(), bucket.end());
  }
  return candidates;
}

std::vector<SearchResult> IvfIndex::search(const embed::Vector& query,
                                           std::size_t k) const {
  if (k == 0) return {};
  obs::MetricsRegistry& metrics = obs::global_metrics();
  metrics.counter(obs::kIvfSearchesTotal).inc();
  pkb::util::Stopwatch watch;
  embed::Vector q = query;
  embed::l2_normalize(q);

  const std::size_t probes = std::min(opts_.nprobe, centroids_.size());
  const std::vector<std::size_t> candidates = probe_candidates(q);

  // Score the probed entries with the store's packed kernels — the exact
  // flat-scan expression, so every hit's score is flat-scan-identical.
  const kernels::PackedF32& packed = store_.packed();
  pkb::util::AlignedBuffer qbuf(packed.stride() * sizeof(float));
  packed.pack_query(q.data(), qbuf.as<float>());
  std::vector<SearchResult> hits;
  hits.reserve(candidates.size());
  for (std::size_t i : candidates) {
    hits.push_back(
        SearchResult{i, store_.kernel_score(qbuf.as<float>(), i),
                     &store_.doc(i)});
  }
  std::sort(hits.begin(), hits.end(), [](const SearchResult& a,
                                         const SearchResult& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.index < b.index;
  });
  if (hits.size() > k) hits.resize(k);
  metrics.counter(obs::kIvfProbesTotal).inc(probes);
  metrics.histogram(obs::kIvfSearchSeconds).observe(watch.seconds());
  return hits;
}

double IvfIndex::recall_at_k(const std::vector<embed::Vector>& queries,
                             std::size_t k) const {
  if (queries.empty() || k == 0) return 1.0;
  std::size_t found = 0;
  std::size_t total = 0;
  for (const embed::Vector& q : queries) {
    const auto exact = store_.similarity_search(q, k);
    const auto approx = search(q, k);
    for (const SearchResult& e : exact) {
      ++total;
      for (const SearchResult& a : approx) {
        if (a.index == e.index) {
          ++found;
          break;
        }
      }
    }
  }
  return total == 0 ? 1.0 : static_cast<double>(found) / static_cast<double>(total);
}

}  // namespace pkb::vectordb
