#pragma once
// IVF (inverted file) approximate nearest-neighbor index over a VectorStore.
//
// K-means clusters the stored vectors; a query probes only the `nprobe`
// nearest clusters. Trades recall for speed — the micro benchmark
// bench/micro_vectordb sweeps the trade-off.

#include <cstdint>

#include "vectordb/vector_store.h"

namespace pkb::vectordb {

/// IVF build/search parameters.
struct IvfOptions {
  /// Number of clusters; 0 means ceil(sqrt(n)).
  std::size_t clusters = 0;
  /// K-means iterations.
  std::size_t kmeans_iters = 10;
  /// Clusters probed per query.
  std::size_t nprobe = 4;
  /// RNG seed for centroid initialization (k-means++).
  std::uint64_t seed = 42;
};

/// Approximate index bound to a VectorStore (which must outlive it and must
/// not grow after build()).
class IvfIndex {
 public:
  explicit IvfIndex(const VectorStore& store, IvfOptions opts = {});

  /// Number of clusters actually built.
  [[nodiscard]] std::size_t cluster_count() const { return centroids_.size(); }

  /// Approximate top-k: probes the `nprobe` nearest clusters.
  [[nodiscard]] std::vector<SearchResult> search(const embed::Vector& query,
                                                 std::size_t k) const;

  /// Recall@k of this index vs exact search for the given queries (fraction
  /// of exact top-k hits the index also returned).
  [[nodiscard]] double recall_at_k(const std::vector<embed::Vector>& queries,
                                   std::size_t k) const;

  [[nodiscard]] const IvfOptions& options() const { return opts_; }

 private:
  void build();

  const VectorStore& store_;
  IvfOptions opts_;
  std::vector<embed::Vector> centroids_;
  std::vector<std::vector<std::size_t>> buckets_;  ///< entry ids per cluster
};

}  // namespace pkb::vectordb
