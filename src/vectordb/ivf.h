#pragma once
// IVF (inverted file) approximate nearest-neighbor index over a VectorStore.
//
// Build: k-means++ seeds `clusters` centroids (seeded RNG — builds are
// deterministic for a given store + options), Lloyd iterations refine them,
// and every stored vector lands in the bucket of its nearest centroid. A
// query then ranks centroids by similarity and scans only the `nprobe`
// nearest buckets, trading recall for speed: cost drops from O(n) to
// roughly O(clusters + n·nprobe/clusters) per query.
//
// Scoring runs through the store's SIMD kernels (vectordb/kernels.h): the
// query is packed once and bucket entries are scored with the exact same
// expression the flat scan uses, so hits carry flat-scan-identical scores —
// only membership can differ (a true neighbor whose bucket was not probed).
// `probe_candidates()` exposes the probe set so quantize.h can compose IVF
// pruning with int8 scanning + exact re-rank; `recall_at_k()` measures the
// recall cost of a given `nprobe`, and bench/ann_frontier.cpp sweeps the
// whole frontier into BENCH_ann.json.
//
// The index is immutable after construction and holds a reference to its
// store, which must outlive it and must not grow after build — the
// generational KB satisfies both by rebuilding indexes per Snapshot
// (ingest/ingestor.cpp → rag::Snapshot::attach_indexes).

#include <cstdint>

#include "vectordb/vector_store.h"

namespace pkb::util {
class ThreadPool;
}

namespace pkb::vectordb {

/// IVF build/search parameters.
struct IvfOptions {
  /// Number of clusters; 0 means ceil(sqrt(n)).
  std::size_t clusters = 0;
  /// K-means iterations.
  std::size_t kmeans_iters = 10;
  /// Clusters probed per query.
  std::size_t nprobe = 4;
  /// RNG seed for centroid initialization (k-means++).
  std::uint64_t seed = 42;

  bool operator==(const IvfOptions&) const = default;
};

/// Approximate index bound to a VectorStore (which must outlive it and must
/// not grow after build()).
class IvfIndex {
 public:
  /// Build the index. The k-means runs on vectordb/kmeans.h — packed SIMD
  /// kernels over `pool` (nullptr = util::global_pool()); the build is
  /// deterministic for a given store + options at any worker count.
  explicit IvfIndex(const VectorStore& store, IvfOptions opts = {},
                    util::ThreadPool* pool = nullptr);

  /// Number of clusters actually built.
  [[nodiscard]] std::size_t cluster_count() const { return centroids_.size(); }

  /// Entry ids per cluster (exposed for build-quality tests).
  [[nodiscard]] const std::vector<std::vector<std::size_t>>& buckets() const {
    return buckets_;
  }

  /// Approximate top-k: probes the `nprobe` nearest clusters.
  [[nodiscard]] std::vector<SearchResult> search(const embed::Vector& query,
                                                 std::size_t k) const;

  /// Entry ids of the `nprobe` nearest buckets for an already-normalized
  /// query, in probe order (ids within a bucket keep store order). This is
  /// the candidate set search() scores; quantize.h feeds it to the int8
  /// scan so IVF pruning and quantized scoring compose.
  [[nodiscard]] std::vector<std::size_t> probe_candidates(
      const embed::Vector& normalized_query) const;

  /// Recall@k of this index vs exact search for the given queries (fraction
  /// of exact top-k hits the index also returned).
  [[nodiscard]] double recall_at_k(const std::vector<embed::Vector>& queries,
                                   std::size_t k) const;

  [[nodiscard]] const IvfOptions& options() const { return opts_; }

 private:
  void build(util::ThreadPool* pool);

  const VectorStore& store_;
  IvfOptions opts_;
  std::vector<embed::Vector> centroids_;
  std::vector<std::vector<std::size_t>> buckets_;  ///< entry ids per cluster
};

}  // namespace pkb::vectordb
