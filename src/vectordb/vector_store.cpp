#include "vectordb/vector_store.h"

#include <algorithm>
#include <cstdint>
#include <exception>
#include <fstream>
#include <mutex>
#include <stdexcept>

#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "util/binio.h"
#include "util/clock.h"
#include "util/thread_pool.h"

namespace pkb::vectordb {

VectorStore VectorStore::from_documents(std::vector<text::Document> docs,
                                        const embed::Embedder& embedder) {
  VectorStore store;
  std::vector<embed::Vector> vecs = embedder.embed_batch(docs);
  for (std::size_t i = 0; i < docs.size(); ++i) {
    store.add(std::move(docs[i]), std::move(vecs[i]));
  }
  return store;
}

void VectorStore::add(text::Document doc, embed::Vector vec) {
  embed::l2_normalize(vec);
  add_prenormalized(std::move(doc), std::move(vec));
}

void VectorStore::add_prenormalized(text::Document doc, embed::Vector vec) {
  if (dim_ == 0 && docs_.empty()) {
    dim_ = vec.size();
  } else if (vec.size() != dim_) {
    // Either a preset dimension (VectorStore(dim), an empty load()) or the
    // dimension fixed by the first entry.
    throw std::invalid_argument("VectorStore::add: dimension mismatch");
  }
  if (packed_.rows() == 0 && packed_.dim() != dim_) {
    packed_ = kernels::PackedF32(dim_);
  }
  packed_.append(vec.data());
  docs_.push_back(std::move(doc));
  vecs_.push_back(std::move(vec));
  obs::global_metrics()
      .gauge(obs::kVectordbEntries)
      .set(static_cast<double>(docs_.size()));
}

const text::Document& VectorStore::doc(std::size_t i) const {
  return docs_.at(i);
}

const embed::Vector& VectorStore::vec(std::size_t i) const {
  return vecs_.at(i);
}

std::vector<SearchResult> VectorStore::select_top_k(
    const std::vector<float>& scores, std::size_t k,
    const MetadataFilter* filter) const {
  std::vector<std::size_t> order;
  order.reserve(docs_.size());
  for (std::size_t i = 0; i < docs_.size(); ++i) {
    if (filter != nullptr && *filter && !(*filter)(docs_[i].metadata)) {
      continue;
    }
    order.push_back(i);
  }
  const std::size_t keep = std::min(k, order.size());
  std::partial_sort(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(keep),
                    order.end(), [&](std::size_t a, std::size_t b) {
                      if (scores[a] != scores[b]) return scores[a] > scores[b];
                      return a < b;
                    });
  order.resize(keep);

  std::vector<SearchResult> out;
  out.reserve(keep);
  for (std::size_t i : order) {
    out.push_back(SearchResult{i, scores[i], &docs_[i]});
  }
  return out;
}

std::vector<SearchResult> VectorStore::similarity_search(
    const embed::Vector& query, std::size_t k,
    const MetadataFilter* filter) const {
  if (k == 0 || docs_.empty()) return {};
  if (query.size() != dim_) {
    throw std::invalid_argument("similarity_search: dimension mismatch");
  }
  pkb::resilience::consult(fault_plan_,
                           pkb::resilience::Stage::VectorSearch);
  obs::MetricsRegistry& metrics = obs::global_metrics();
  metrics.counter(obs::kVectordbSearchesTotal).inc();
  pkb::util::Stopwatch watch;
  embed::Vector q = query;
  embed::l2_normalize(q);

  // Score the packed SoA block in parallel with the SIMD kernels, then
  // select top-k with a partial sort. The query is packed once (padded,
  // aligned) so every row dot runs over the same lane layout.
  pkb::util::AlignedBuffer qbuf(packed_.stride() * sizeof(float));
  packed_.pack_query(q.data(), qbuf.as<float>());
  const float* pq = qbuf.as<float>();
  std::vector<float> scores(docs_.size());
  pkb::util::parallel_for(
      0, docs_.size(),
      [&](std::size_t i) { scores[i] = kernel_score(pq, i); },
      /*min_block=*/256);

  std::vector<SearchResult> out = select_top_k(scores, k, filter);
  metrics.histogram(obs::kVectordbSearchSeconds).observe(watch.seconds());
  return out;
}

std::vector<std::vector<SearchResult>> VectorStore::similarity_search_batch(
    const std::vector<embed::Vector>& queries, std::size_t k,
    const MetadataFilter* filter) const {
  std::vector<std::vector<SearchResult>> out(queries.size());
  if (queries.empty()) return out;
  if (k == 0 || docs_.empty()) return out;
  for (const embed::Vector& q : queries) {
    if (q.size() != dim_) {
      throw std::invalid_argument("similarity_search_batch: dimension mismatch");
    }
  }
  // One fault draw per query — the same ordinal accounting as the single
  // path, so a configured fault rate is batch-size independent. All
  // ordinals are drawn even when an early one faults (the batch fails as a
  // unit), keeping FaultPlan::counts() identical to per-query scans.
  {
    std::exception_ptr fault;
    for (std::size_t qi = 0; qi < queries.size(); ++qi) {
      try {
        pkb::resilience::consult(fault_plan_,
                                 pkb::resilience::Stage::VectorSearch);
      } catch (const pkb::resilience::FaultError&) {
        if (!fault) fault = std::current_exception();
      }
    }
    if (fault) std::rethrow_exception(fault);
  }
  obs::MetricsRegistry& metrics = obs::global_metrics();
  metrics.counter(obs::kVectordbBatchSearchesTotal).inc();
  metrics.counter(obs::kVectordbBatchQueriesTotal).inc(queries.size());
  pkb::util::Stopwatch watch;

  std::vector<embed::Vector> qs = queries;
  for (embed::Vector& q : qs) embed::l2_normalize(q);

  // One blocked pass over the packed vectors: each block of rows is loaded
  // once and scored against every query, so memory traffic is amortized
  // across the batch instead of repeated per query. kernel_score(q, i) is
  // the exact expression the single search evaluates, so the score matrix
  // (and therefore the selection) is bit-identical to per-query scans.
  pkb::util::AlignedBuffer qbuf(qs.size() * packed_.stride() * sizeof(float));
  for (std::size_t qi = 0; qi < qs.size(); ++qi) {
    packed_.pack_query(qs[qi].data(),
                       qbuf.as<float>() + qi * packed_.stride());
  }
  std::vector<std::vector<float>> scores(qs.size());
  for (auto& row : scores) row.resize(docs_.size());
  pkb::util::parallel_for(
      0, docs_.size(),
      [&](std::size_t i) {
        for (std::size_t qi = 0; qi < qs.size(); ++qi) {
          scores[qi][i] = kernel_score(
              qbuf.as<float>() + qi * packed_.stride(), i);
        }
      },
      /*min_block=*/64);

  for (std::size_t qi = 0; qi < qs.size(); ++qi) {
    out[qi] = select_top_k(scores[qi], k, filter);
  }
  metrics.histogram(obs::kVectordbBatchSearchSeconds).observe(watch.seconds());
  return out;
}

std::vector<SearchResult> VectorStore::similarity_search_text(
    std::string_view query, std::size_t k,
    const embed::Embedder& embedder) const {
  return similarity_search(embedder.embed(query), k);
}

std::optional<std::size_t> VectorStore::find_id(std::string_view id) const {
  for (std::size_t i = 0; i < docs_.size(); ++i) {
    if (docs_[i].id == id) return i;
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Binary persistence.
//
// Format: magic "PKBV" | u32 version | u64 count | u64 dim | entries.
// Entry: id | text | metadata (u64 count, key/value strings) | dim floats.
// Strings: u64 length + bytes. Every read is checked: a short or garbage
// file throws std::runtime_error naming the field that failed instead of
// yielding a silently corrupt store.
// ---------------------------------------------------------------------------

namespace {

constexpr char kMagic[4] = {'P', 'K', 'B', 'V'};
constexpr std::uint32_t kVersion = 1;

}  // namespace

void VectorStore::save(std::ostream& out) const {
  namespace bin = pkb::util;
  out.write(kMagic, sizeof kMagic);
  bin::write_u32(out, kVersion);
  bin::write_u64(out, docs_.size());
  bin::write_u64(out, dim_);
  for (std::size_t i = 0; i < docs_.size(); ++i) {
    bin::write_str(out, docs_[i].id);
    bin::write_str(out, docs_[i].text);
    bin::write_u64(out, docs_[i].metadata.size());
    for (const auto& [k, v] : docs_[i].metadata) {
      bin::write_str(out, k);
      bin::write_str(out, v);
    }
    out.write(reinterpret_cast<const char*>(vecs_[i].data()),
              static_cast<std::streamsize>(dim_ * sizeof(float)));
  }
  if (!out) throw std::runtime_error("VectorStore::save: write failed");
}

VectorStore VectorStore::load(std::istream& in) {
  namespace bin = pkb::util;
  char magic[4] = {};
  bin::read_bytes(in, magic, sizeof magic, "vector store magic");
  if (std::string_view(magic, 4) != std::string_view(kMagic, 4)) {
    throw std::runtime_error("VectorStore::load: bad magic");
  }
  const std::uint32_t version = bin::read_u32(in, "vector store version");
  if (version != kVersion) {
    throw std::runtime_error("VectorStore::load: unsupported version " +
                             std::to_string(version));
  }
  const std::uint64_t count = bin::read_count(in, "entry count");
  const std::uint64_t dim =
      bin::read_count(in, "vector dimension", /*max=*/1ULL << 24);
  if (count > 0 && dim == 0) {
    throw std::runtime_error(
        "VectorStore::load: zero dimension with nonzero entry count");
  }
  VectorStore store;
  // Restore the header dimension even when the store is empty: a saved
  // dim-D empty store (e.g. an underfull shard slice) must reload as dim-D,
  // not as a dim-0 store that would accept vectors of any size.
  store.dim_ = static_cast<std::size_t>(dim);
  for (std::uint64_t i = 0; i < count; ++i) {
    text::Document doc;
    doc.id = bin::read_str(in, "entry id");
    doc.text = bin::read_str(in, "entry text");
    const std::uint64_t meta_count = bin::read_count(in, "metadata count");
    for (std::uint64_t m = 0; m < meta_count; ++m) {
      std::string key = bin::read_str(in, "metadata key");
      std::string value = bin::read_str(in, "metadata value");
      doc.metadata.emplace(std::move(key), std::move(value));
    }
    embed::Vector vec(dim);
    bin::read_bytes(in, reinterpret_cast<char*>(vec.data()),
                    dim * sizeof(float), "entry vector");
    store.add_prenormalized(std::move(doc), std::move(vec));
  }
  return store;
}

void VectorStore::save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("VectorStore::save: cannot open " + path);
  save(out);
}

VectorStore VectorStore::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("VectorStore::load: cannot open " + path);
  try {
    return load(in);
  } catch (const std::runtime_error& err) {
    throw std::runtime_error(std::string(err.what()) + " (file: " + path +
                             ")");
  }
}

}  // namespace pkb::vectordb
