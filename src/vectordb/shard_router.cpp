#include "vectordb/shard_router.h"

#include <algorithm>
#include <future>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/clock.h"
#include "util/thread_pool.h"

namespace pkb::vectordb {

namespace res = pkb::resilience;

ShardRouter::Shard ShardRouter::make_shard(VectorStore store) const {
  Shard shard;
  shard.store = std::make_shared<const VectorStore>(std::move(store));
  // Each shard gets its own index over its slice (null for the identity
  // spec). with_shard_replaced calls back in here for the replacement
  // shard only, so a rolling swap rebuilds exactly one index.
  shard.index = build_index(*shard.store, opts_.index);
  shard.breaker = std::make_shared<res::CircuitBreaker>(opts_.breaker,
                                                        opts_.breaker_clock);
  shard.dead = std::make_shared<std::atomic<bool>>(false);
  return shard;
}

void ShardRouter::rebuild_offsets() {
  offsets_.resize(shards_.size());
  total_ = 0;
  dim_ = 0;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    offsets_[i] = total_;
    total_ += shards_[i].store->size();
    if (dim_ == 0) dim_ = shards_[i].store->dimension();
  }
}

std::shared_ptr<ShardRouter> ShardRouter::partition(const VectorStore& store,
                                                    std::size_t shards,
                                                    ShardRouterOptions opts) {
  if (shards == 0) {
    throw std::invalid_argument("ShardRouter::partition: shards must be >= 1");
  }
  auto router = std::shared_ptr<ShardRouter>(new ShardRouter());
  router->opts_ = std::move(opts);

  // Contiguous balanced slices: shard i covers global indices
  // [offset, offset + size), sizes differing by at most one. Vectors are
  // copied pre-normalized so per-shard scores stay bit-identical.
  const std::size_t n = store.size();
  const std::size_t base = n / shards;
  const std::size_t rem = n % shards;
  std::size_t next = 0;
  router->shards_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    const std::size_t count = base + (s < rem ? 1 : 0);
    VectorStore slice(store.dimension());
    for (std::size_t i = next; i < next + count; ++i) {
      slice.add_prenormalized(store.doc(i), store.vec(i));
    }
    next += count;
    router->shards_.push_back(router->make_shard(std::move(slice)));
  }
  router->rebuild_offsets();

  std::size_t threads = router->opts_.scatter_threads;
  if (threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = std::min<std::size_t>(shards, hw == 0 ? 1 : hw);
  }
  router->pool_ = std::make_shared<util::ThreadPool>(threads);

  obs::global_metrics()
      .gauge(obs::kShardCount)
      .set(static_cast<double>(shards));
  return router;
}

std::shared_ptr<ShardRouter> ShardRouter::with_shard_replaced(
    std::size_t shard, VectorStore replacement) const {
  if (shard >= shards_.size()) {
    throw std::invalid_argument(
        "ShardRouter::with_shard_replaced: shard out of range");
  }
  if (!replacement.empty() && dim_ != 0 &&
      replacement.dimension() != dim_) {
    throw std::invalid_argument(
        "ShardRouter::with_shard_replaced: dimension mismatch");
  }
  auto router = std::shared_ptr<ShardRouter>(new ShardRouter());
  router->opts_ = opts_;
  router->pool_ = pool_;
  router->shards_ = shards_;  // shares untouched stores/breakers/dead flags
  router->shards_[shard] = make_shard(std::move(replacement));
  router->rebuild_offsets();
  return router;
}

const VectorStore& ShardRouter::shard(std::size_t i) const {
  return *shards_.at(i).store;
}

std::size_t ShardRouter::shard_offset(std::size_t i) const {
  return offsets_.at(i);
}

void ShardRouter::kill_shard(std::size_t i) {
  shards_.at(i).dead->store(true, std::memory_order_release);
}

void ShardRouter::revive_shard(std::size_t i) {
  shards_.at(i).dead->store(false, std::memory_order_release);
}

bool ShardRouter::shard_dead(std::size_t i) const {
  return shards_.at(i).dead->load(std::memory_order_acquire);
}

res::CircuitBreaker::State ShardRouter::breaker_state(std::size_t i) const {
  return shards_.at(i).breaker->state();
}

bool ShardRouter::scan_shard(std::size_t shard,
                             const std::vector<embed::Vector>& queries,
                             std::size_t k, const MetadataFilter* filter,
                             const ScatterOptions& sopts,
                             std::vector<std::vector<SearchResult>>& out)
    const {
  const Shard& sh = shards_[shard];
  obs::MetricsRegistry& metrics = obs::global_metrics();
  if (!sh.breaker->allow()) {
    metrics
        .counter(obs::kShardScanFailuresTotal, {{"reason", "breaker"}})
        .inc();
    return false;
  }
  for (std::uint32_t attempt = 0;; ++attempt) {
    metrics.counter(obs::kShardScansTotal).inc();
    try {
      if (sh.dead->load(std::memory_order_acquire)) {
        throw res::TransientError(
            res::Stage::VectorSearch,
            "shard " + std::to_string(shard) + " is dead");
      }
      // One fault draw per query per attempt — the same ordinal accounting
      // as the monolithic scan, so configured rates are batch-size
      // independent. All ordinals are drawn even when an early one faults
      // (the shard fails as a unit for the whole batch).
      {
        std::exception_ptr fault;
        for (std::size_t q = 0; q < queries.size(); ++q) {
          try {
            res::consult(sopts.plan, res::Stage::VectorSearch);
          } catch (const res::FaultError&) {
            if (!fault) fault = std::current_exception();
          }
        }
        if (fault) std::rethrow_exception(fault);
      }
      // Route through the shard's ANN index when one exists; metadata
      // filters force the exact scan (candidate sets are not filter-aware).
      std::vector<std::vector<SearchResult>> local;
      const bool filtered = filter != nullptr && *filter;
      if (sh.index != nullptr && !filtered) {
        if (queries.size() == 1) {
          local.push_back(sh.index->search(queries[0], k));
        } else {
          local = sh.index->search_batch(queries, k);
        }
      } else if (queries.size() == 1) {
        local.push_back(sh.store->similarity_search(queries[0], k, filter));
      } else {
        local = sh.store->similarity_search_batch(queries, k, filter);
      }
      sh.breaker->record_success();
      // Map shard-local hit indices back into the global index space; the
      // merge's (score desc, global index asc) order is then exactly the
      // monolithic select_top_k order.
      const std::size_t offset = offsets_[shard];
      out.resize(queries.size());
      for (std::size_t q = 0; q < local.size(); ++q) {
        for (SearchResult& hit : local[q]) {
          hit.index += offset;
        }
        out[q] = std::move(local[q]);
      }
      return true;
    } catch (const res::FaultError&) {
      sh.breaker->record_failure();
      if (attempt >= sopts.hedges) {
        metrics
            .counter(obs::kShardScanFailuresTotal, {{"reason", "fault"}})
            .inc();
        return false;
      }
      obs::Span span(obs::global_tracer(), obs::kSpanHedge);
      span.set_attr("stage", "shard_scan");
      span.set_attr("shard", shard);
      span.set_attr("attempt", static_cast<std::uint64_t>(attempt) + 1);
    }
  }
}

std::vector<Scatter> ShardRouter::search_batch(
    const std::vector<embed::Vector>& queries, std::size_t k,
    const MetadataFilter* filter, const ScatterOptions& sopts) const {
  std::vector<Scatter> out(queries.size());
  for (Scatter& sc : out) sc.shards_total = shards_.size();
  if (queries.empty()) return out;
  if (k == 0 || total_ == 0) return out;
  for (const embed::Vector& q : queries) {
    if (q.size() != dim_) {
      throw std::invalid_argument("ShardRouter::search: dimension mismatch");
    }
  }

  obs::MetricsRegistry& metrics = obs::global_metrics();
  metrics.counter(obs::kShardQueriesTotal).inc(queries.size());

  // --- scatter: every shard scans every query, in parallel. Shards 1..N-1
  // run on the dedicated scatter pool; shard 0 on the calling thread (the
  // same calling-thread-participates shape as util::parallel_for).
  pkb::util::Stopwatch watch;
  std::vector<std::vector<std::vector<SearchResult>>> per_shard(
      shards_.size());
  std::vector<char> shard_ok(shards_.size(), 0);
  {
    obs::Span span(obs::global_tracer(), obs::kSpanShardScatter);
    span.set_attr("shards", shards_.size());
    span.set_attr("queries", queries.size());
    span.set_attr("k", k);
    std::vector<std::future<void>> futures;
    futures.reserve(shards_.size() - 1);
    for (std::size_t s = 1; s < shards_.size(); ++s) {
      futures.push_back(pool_->submit([this, s, &queries, k, filter, &sopts,
                                       &per_shard, &shard_ok] {
        shard_ok[s] =
            scan_shard(s, queries, k, filter, sopts, per_shard[s]) ? 1 : 0;
      }));
    }
    shard_ok[0] =
        scan_shard(0, queries, k, filter, sopts, per_shard[0]) ? 1 : 0;
    for (std::future<void>& f : futures) f.get();
    std::size_t failed = 0;
    for (char ok : shard_ok) failed += ok == 0 ? 1 : 0;
    span.set_attr("failed", failed);
    for (Scatter& sc : out) sc.shards_failed = failed;
  }
  metrics.histogram(obs::kShardScatterSeconds).observe(watch.seconds());
  if (out[0].shards_failed > 0) {
    metrics.counter(obs::kShardPartialResultsTotal).inc(queries.size());
  }

  // --- gather: merge surviving shards' top-k lists per query with the
  // monolithic comparator and truncate to k. The global top-k is a subset
  // of the union of per-shard top-k lists, so this reproduces the
  // monolithic result bit-for-bit when no shard failed.
  watch.reset();
  {
    obs::Span span(obs::global_tracer(), obs::kSpanShardMerge);
    span.set_attr("queries", queries.size());
    for (std::size_t q = 0; q < queries.size(); ++q) {
      std::vector<SearchResult>& merged = out[q].hits;
      for (std::size_t s = 0; s < shards_.size(); ++s) {
        if (shard_ok[s] == 0 || per_shard[s].empty()) continue;
        merged.insert(merged.end(), per_shard[s][q].begin(),
                      per_shard[s][q].end());
      }
      std::sort(merged.begin(), merged.end(),
                [](const SearchResult& a, const SearchResult& b) {
                  if (a.score != b.score) return a.score > b.score;
                  return a.index < b.index;
                });
      if (merged.size() > k) merged.resize(k);
    }
  }
  metrics.histogram(obs::kShardMergeSeconds).observe(watch.seconds());
  return out;
}

Scatter ShardRouter::search(const embed::Vector& query, std::size_t k,
                            const MetadataFilter* filter,
                            const ScatterOptions& sopts) const {
  std::vector<embed::Vector> queries;
  queries.push_back(query);
  std::vector<Scatter> out = search_batch(queries, k, filter, sopts);
  return std::move(out[0]);
}

}  // namespace pkb::vectordb
