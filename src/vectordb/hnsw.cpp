#include "vectordb/hnsw.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <stdexcept>
#include <utility>

#include "util/rng.h"

namespace pkb::vectordb {

namespace {

/// Hard cap on graph height; levels are geometric so this is never reached
/// in practice, it just bounds the arena math.
constexpr std::size_t kMaxLevel = 24;

using Scored = std::pair<float, std::uint32_t>;

/// priority_queue comparator: top() = best (highest score, lowest id).
struct BestFirst {
  bool operator()(const Scored& a, const Scored& b) const {
    if (a.first != b.first) return a.first < b.first;
    return a.second > b.second;
  }
};

/// priority_queue comparator: top() = worst (lowest score, highest id) —
/// evicting the top keeps the lowest ids among score ties, matching the
/// flat scan's lower-index tie-break.
struct WorstFirst {
  bool operator()(const Scored& a, const Scored& b) const {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  }
};

void sort_best_first(std::vector<Scored>& v) {
  std::sort(v.begin(), v.end(), [](const Scored& a, const Scored& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
}

}  // namespace

HnswIndex::HnswIndex(const VectorStore& store, HnswOptions opts,
                     const Int8Codes* codes, const PqCodebook* pq_book,
                     const PqCodes* pq_codes)
    : store_(store),
      opts_(opts),
      codes_(codes),
      pq_book_(pq_book),
      pq_codes_(pq_codes) {
  if (store_.empty()) {
    throw std::invalid_argument("HnswIndex: empty store");
  }
  if (codes_ != nullptr && codes_->rows() != store_.size()) {
    throw std::invalid_argument("HnswIndex: stale codes");
  }
  if ((pq_book_ == nullptr) != (pq_codes_ == nullptr)) {
    throw std::invalid_argument("HnswIndex: PQ codebook and codes required");
  }
  if (pq_codes_ != nullptr &&
      (pq_codes_->rows() != store_.size() ||
       pq_codes_->m() != pq_book_->m())) {
    throw std::invalid_argument("HnswIndex: stale PQ codes");
  }
  if (codes_ != nullptr && pq_codes_ != nullptr) {
    throw std::invalid_argument("HnswIndex: pick one quantization");
  }
  opts_.m = std::max<std::size_t>(2, opts_.m);
  opts_.ef_construction = std::max(opts_.ef_construction, opts_.m + 1);
  opts_.ef_search = std::max<std::size_t>(1, opts_.ef_search);
  build();
}

float HnswIndex::node_score(const QueryCtx& ctx, std::uint32_t id) const {
  if (ctx.approx) {
    if (ctx.lut != nullptr) {
      return kernels::adc_f32(ctx.lut, pq_codes_->row(id), pq_codes_->m());
    }
    float s = 0.0f;
    codes_->packed().score_range(ctx.query_codes, ctx.query_scale, id, id + 1,
                                 &s);
    return s;
  }
  return store_.kernel_score(ctx.packed_query, id);
}

std::vector<Scored> HnswIndex::search_layer(const QueryCtx& ctx,
                                            std::uint32_t entry,
                                            std::size_t ef,
                                            std::size_t layer) const {
  std::vector<char> visited(store_.size(), 0);
  std::priority_queue<Scored, std::vector<Scored>, BestFirst> cand;
  std::priority_queue<Scored, std::vector<Scored>, WorstFirst> best;

  const float es = node_score(ctx, entry);
  visited[entry] = 1;
  cand.push({es, entry});
  best.push({es, entry});

  while (!cand.empty()) {
    const Scored c = cand.top();
    if (best.size() >= ef && c.first < best.top().first) break;
    cand.pop();
    const Links& links = links_[c.second][layer];
    for (std::uint16_t e = 0; e < links.count; ++e) {
      const std::uint32_t nb = links.nbr[e];
      if (visited[nb]) continue;
      visited[nb] = 1;
      const float s = node_score(ctx, nb);
      if (best.size() < ef || WorstFirst{}(Scored{s, nb}, best.top())) {
        cand.push({s, nb});
        best.push({s, nb});
        if (best.size() > ef) best.pop();
      }
    }
  }

  std::vector<Scored> out;
  out.reserve(best.size());
  while (!best.empty()) {
    out.push_back(best.top());
    best.pop();
  }
  sort_best_first(out);
  return out;
}

void HnswIndex::select_neighbors(const std::vector<Scored>& candidates,
                                 std::size_t cap, Links& out) const {
  // The HNSW paper's diversity heuristic (Algorithm 4): walk the
  // candidates best-first and keep one only if it is closer to the base
  // point than to every already-kept neighbor. Naive nearest-m selection
  // links redundant near-duplicates and recall collapses on high-dim data;
  // the heuristic keeps the links spread, which is what makes the graph
  // navigable. Rejected candidates backfill any spare capacity so nodes
  // are not left under-connected.
  const kernels::PackedF32& packed = store_.packed();
  out.count = 0;
  std::vector<std::uint32_t> rejected;
  for (const Scored& c : candidates) {
    if (out.count >= cap) break;
    bool diverse = true;
    for (std::uint16_t s = 0; s < out.count; ++s) {
      const float to_selected = kernels::dot_f32(
          packed.row(c.second), packed.row(out.nbr[s]), packed.stride());
      if (to_selected > c.first) {
        diverse = false;
        break;
      }
    }
    if (diverse) {
      out.nbr[out.count++] = c.second;
    } else {
      rejected.push_back(c.second);
    }
  }
  for (std::size_t r = 0; out.count < cap && r < rejected.size(); ++r) {
    out.nbr[out.count++] = rejected[r];
  }
}

void HnswIndex::insert(std::size_t node, std::size_t level,
                       const float* packed_query) {
  const auto id = static_cast<std::uint32_t>(node);
  if (node == 0) {
    entry_ = id;
    max_level_ = level;
    return;
  }

  QueryCtx ctx;
  ctx.packed_query = packed_query;

  std::uint32_t cur = entry_;
  // Greedy descent through layers above the node's level.
  for (std::size_t layer = max_level_; layer > level; --layer) {
    bool moved = true;
    float cur_score = node_score(ctx, cur);
    while (moved) {
      moved = false;
      const Links& links = links_[cur][layer];
      for (std::uint16_t e = 0; e < links.count; ++e) {
        const std::uint32_t nb = links.nbr[e];
        const float s = node_score(ctx, nb);
        if (s > cur_score) {
          cur_score = s;
          cur = nb;
          moved = true;
        }
      }
    }
  }

  // Beam search and bidirectional linking on layers min(level, max) .. 0.
  for (std::size_t layer = std::min(level, max_level_) + 1; layer-- > 0;) {
    const std::vector<Scored> beam =
        search_layer(ctx, cur, opts_.ef_construction, layer);
    Links& mine = links_[node][layer];
    select_neighbors(beam, mine.cap, mine);
    // Link back; prune overful neighbor lists with the same heuristic.
    const kernels::PackedF32& packed = store_.packed();
    for (std::uint16_t e = 0; e < mine.count; ++e) {
      const std::uint32_t nb = mine.nbr[e];
      Links& theirs = links_[nb][layer];
      if (theirs.count < theirs.cap) {
        theirs.nbr[theirs.count++] = id;
        continue;
      }
      std::vector<Scored> scored;
      scored.reserve(theirs.count + 1U);
      const float* nb_row = packed.row(nb);
      scored.push_back(
          {kernels::dot_f32(nb_row, packed.row(id), packed.stride()), id});
      for (std::uint16_t t = 0; t < theirs.count; ++t) {
        scored.push_back(
            {kernels::dot_f32(nb_row, packed.row(theirs.nbr[t]),
                              packed.stride()),
             theirs.nbr[t]});
      }
      sort_best_first(scored);
      select_neighbors(scored, theirs.cap, theirs);
    }
    if (!beam.empty()) cur = beam.front().second;
  }

  if (level > max_level_) {
    entry_ = id;
    max_level_ = level;
  }
}

void HnswIndex::build() {
  const std::size_t n = store_.size();
  const kernels::PackedF32& packed = store_.packed();
  util::Rng rng(opts_.seed);
  const double mult = 1.0 / std::log(static_cast<double>(opts_.m));

  // Assign levels and carve all adjacency lists up front (arena pointers
  // never move, so linking can run over partially built nodes).
  links_.resize(n);
  std::vector<std::size_t> levels(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double u = 1.0 - rng.uniform();  // (0, 1]
    const auto level = std::min(
        kMaxLevel, static_cast<std::size_t>(-std::log(u) * mult));
    levels[i] = level;
    links_[i].resize(level + 1);
    for (std::size_t layer = 0; layer <= level; ++layer) {
      const std::size_t cap = layer == 0 ? 2 * opts_.m : opts_.m;
      links_[i][layer].nbr = arena_.alloc_array<std::uint32_t>(cap);
      links_[i][layer].cap = static_cast<std::uint16_t>(cap);
    }
  }

  for (std::size_t i = 0; i < n; ++i) {
    insert(i, levels[i], packed.row(i));
  }
}

std::vector<SearchResult> HnswIndex::search(const embed::Vector& query,
                                            std::size_t k) const {
  return search_ef(query, k, opts_.ef_search);
}

std::vector<SearchResult> HnswIndex::search_ef(const embed::Vector& query,
                                               std::size_t k,
                                               std::size_t ef) const {
  if (k == 0) return {};
  if (query.size() != store_.dimension()) {
    throw std::invalid_argument("HnswIndex::search: dimension mismatch");
  }
  ef = std::max(ef, k);
  embed::Vector q = query;
  embed::l2_normalize(q);

  const kernels::PackedF32& packed = store_.packed();
  pkb::util::AlignedBuffer qbuf(packed.stride() * sizeof(float));
  packed.pack_query(q.data(), qbuf.as<float>());

  // Build the traversal context: exact fp32 by default, int8 codes or a
  // per-query ADC LUT when the index carries a quantization.
  QueryCtx ctx;
  ctx.packed_query = qbuf.as<float>();
  ctx.approx = codes_ != nullptr || pq_codes_ != nullptr;
  pkb::util::AlignedBuffer qcodes(codes_ != nullptr ? codes_->packed().stride()
                                                    : 1);
  std::vector<float> lut;
  if (codes_ != nullptr) {
    ctx.query_scale = codes_->quantize_query(q.data(), qcodes.as<std::int8_t>());
    ctx.query_codes = qcodes.as<std::int8_t>();
  } else if (pq_book_ != nullptr) {
    lut.resize(pq_book_->lut_size());
    pq_book_->build_lut(q.data(), lut.data());
    ctx.lut = lut.data();
  }

  // Greedy descent to layer 1, then a beam on layer 0.
  std::uint32_t cur = entry_;
  float cur_score = node_score(ctx, cur);
  for (std::size_t layer = max_level_; layer > 0; --layer) {
    bool moved = true;
    while (moved) {
      moved = false;
      const Links& links = links_[cur][layer];
      for (std::uint16_t e = 0; e < links.count; ++e) {
        const std::uint32_t nb = links.nbr[e];
        const float s = node_score(ctx, nb);
        if (s > cur_score) {
          cur_score = s;
          cur = nb;
          moved = true;
        }
      }
    }
  }
  const std::vector<Scored> beam = search_layer(ctx, cur, ef, 0);

  // Exact fp32 scores on the way out — hits carry the flat scan's scores
  // even when traversal ran on int8 or PQ/ADC approximations.
  std::vector<SearchResult> hits;
  hits.reserve(beam.size());
  for (const Scored& s : beam) {
    hits.push_back(SearchResult{s.second,
                                store_.kernel_score(ctx.packed_query, s.second),
                                &store_.doc(s.second)});
  }
  std::sort(hits.begin(), hits.end(),
            [](const SearchResult& a, const SearchResult& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.index < b.index;
            });
  if (hits.size() > k) hits.resize(k);
  return hits;
}

double HnswIndex::recall_at_k(const std::vector<embed::Vector>& queries,
                              std::size_t k) const {
  if (queries.empty() || k == 0) return 1.0;
  std::size_t found = 0;
  std::size_t total = 0;
  for (const embed::Vector& q : queries) {
    const auto exact = store_.similarity_search(q, k);
    const auto approx = search(q, k);
    for (const SearchResult& e : exact) {
      ++total;
      for (const SearchResult& a : approx) {
        if (a.index == e.index) {
          ++found;
          break;
        }
      }
    }
  }
  return total == 0 ? 1.0
                    : static_cast<double>(found) / static_cast<double>(total);
}

std::size_t HnswIndex::edge_count() const {
  std::size_t edges = 0;
  for (const auto& node : links_) {
    for (const Links& l : node) edges += l.count;
  }
  return edges;
}

}  // namespace pkb::vectordb
