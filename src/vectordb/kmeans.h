#pragma once
// Deterministic parallel k-means — the shared codebook trainer under every
// ANN build (IVF coarse clusters in ivf.cpp, PQ sub-quantizer codebooks in
// pq.cpp).
//
// The trainer runs entirely on the packed SIMD kernels (vectordb/kernels.h)
// and a util::ThreadPool, yet is bit-deterministic regardless of worker
// count: every parallel pass splits the rows into chunks whose boundaries
// depend only on n (never on pool size), each chunk accumulates its partial
// sums in double, and the partials are merged on the calling thread in
// ascending chunk order. RNG draws (k-means++ sampling, degenerate
// re-seeds) all happen sequentially on the calling thread. Same data + same
// options ⇒ byte-identical centroids and assignments at 1, 2, or 64
// workers, and across SIMD backends wherever the kernel contract holds
// (double-exact products, one rounding).
//
// k-means++ seeds on a deterministic evenly-strided subsample of at most
// max(2048, 8k) rows (a pure function of n and k, so determinism is
// untouched): seeding is O(k · sample) with an inherently sequential
// weighted draw per round, and on the full corpus that scalar walk — not
// the SIMD distance pass — dominated PQ builds (256 centroids × m subs).
// Lloyd refinement always runs on every row.
//
// Degenerate re-seeds (a k-means++ round with zero total weight, or a Lloyd
// cluster that lost all members) draw a random starting row and then probe
// forward for a row whose value differs from every current centroid, so a
// re-seed never wastes a cluster on a duplicate while fresh points exist —
// the failure mode the old in-line IVF k-means had. `find_fresh_row` is
// exposed for the regression test.
//
// `kmeans_cluster_reference` is the same algorithm as plain single-thread
// scalar loops (no kernels, no pool) — the honest baseline the
// bench/ann_frontier build-speedup gate compares against.

#include <cstdint>
#include <vector>

#include "vectordb/kernels.h"

namespace pkb::util {
class ThreadPool;
}

namespace pkb::vectordb {

/// Distance geometry of a clustering.
enum class KmeansMetric : std::uint8_t {
  /// Unit-norm points, distance 1 − dot; centroids re-normalized each
  /// iteration (IVF coarse quantizer).
  Cosine,
  /// Squared Euclidean; centroids are plain means (PQ sub-vectors, which
  /// are slices of unit vectors and not themselves unit).
  L2,
};

struct KmeansOptions {
  /// Cluster count; clamped to the number of rows.
  std::size_t k = 1;
  /// Lloyd iterations after k-means++ initialization.
  std::size_t iters = 10;
  /// Seed for k-means++ sampling and degenerate re-seeds.
  std::uint64_t seed = 42;
  KmeansMetric metric = KmeansMetric::Cosine;
  /// Pool for the chunked passes; nullptr = util::global_pool(). Worker
  /// count never changes the result.
  util::ThreadPool* pool = nullptr;
};

struct KmeansResult {
  /// k centroid rows (dim = input dim).
  kernels::PackedF32 centroids;
  /// Nearest centroid per input row (argmax score, lower index on ties).
  std::vector<std::uint32_t> assign;
  /// Members per centroid under `assign`.
  std::vector<std::uint32_t> counts;
};

/// Cluster the rows of `data`. Deterministic: same data + options yields
/// byte-identical centroids/assign/counts for any pool size. Throws
/// std::invalid_argument on an empty matrix or k == 0.
[[nodiscard]] KmeansResult kmeans_cluster(const kernels::PackedF32& data,
                                          const KmeansOptions& opts);

/// Single-thread scalar reference (plain double-accumulated loops, no SIMD
/// kernels, no pool). Same algorithm and RNG stream; exists as the honest
/// baseline for build-speed comparisons, not for bit-parity with
/// kmeans_cluster.
[[nodiscard]] KmeansResult kmeans_cluster_reference(
    const kernels::PackedF32& data, const KmeansOptions& opts);

/// Starting at a random row (one RNG draw), probe forward cyclically for a
/// row whose value differs from every centroid in `centroids`; returns the
/// drawn row when all rows duplicate some centroid. This is the degenerate
/// re-seed rule: it never picks a row already equal to a centroid while a
/// fresh row exists. Exposed for the re-seed regression test.
[[nodiscard]] std::size_t find_fresh_row(const kernels::PackedF32& data,
                                         const kernels::PackedF32& centroids,
                                         std::uint64_t random_start);

}  // namespace pkb::vectordb
