#include "vectordb/index.h"

#include <optional>
#include <utility>

#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/clock.h"

namespace pkb::vectordb {

std::string IndexSpec::name() const {
  std::string base;
  switch (kind) {
    case IndexKind::Flat:
      base = "flat";
      break;
    case IndexKind::Ivf:
      base = "ivf";
      break;
    case IndexKind::Hnsw:
      base = "hnsw";
      break;
  }
  if (int8) base += "_int8";
  return base;
}

std::vector<std::vector<SearchResult>> AnnIndex::search_batch(
    const std::vector<embed::Vector>& queries, std::size_t k) const {
  std::vector<std::vector<SearchResult>> out;
  out.reserve(queries.size());
  for (const embed::Vector& q : queries) out.push_back(search(q, k));
  return out;
}

namespace {

/// Shared instrumentation shell: counts searches, times them, and opens the
/// ann_search span around the concrete strategy.
class InstrumentedIndex : public AnnIndex {
 public:
  InstrumentedIndex(std::string name, std::size_t entries)
      : name_(std::move(name)), entries_(entries) {
    obs::global_metrics()
        .gauge(obs::kAnnIndexEntries)
        .set(static_cast<double>(entries_));
  }

  [[nodiscard]] std::string_view name() const final { return name_; }

  [[nodiscard]] std::vector<SearchResult> search(const embed::Vector& query,
                                                 std::size_t k) const final {
    obs::MetricsRegistry& metrics = obs::global_metrics();
    metrics.counter(obs::kAnnSearchesTotal).inc();
    pkb::util::Stopwatch watch;
    obs::Span span(obs::global_tracer(), obs::kSpanAnnSearch);
    span.set_attr("index", name_);
    span.set_attr("k", static_cast<std::uint64_t>(k));
    std::vector<SearchResult> hits = do_search(query, k);
    span.set_attr("hits", static_cast<std::uint64_t>(hits.size()));
    metrics.histogram(obs::kAnnSearchSeconds).observe(watch.seconds());
    return hits;
  }

 protected:
  [[nodiscard]] virtual std::vector<SearchResult> do_search(
      const embed::Vector& query, std::size_t k) const = 0;

 private:
  std::string name_;
  std::size_t entries_;
};

/// Flat scan over int8 codes with exact re-rank (kind=Flat, int8=true).
class FlatInt8Index final : public InstrumentedIndex {
 public:
  FlatInt8Index(const VectorStore& store, const IndexSpec& spec)
      : InstrumentedIndex(spec.name(), store.size()),
        store_(store),
        codes_(Int8Codes::build(store)),
        rerank_(spec.rerank_factor) {}

 private:
  [[nodiscard]] std::vector<SearchResult> do_search(
      const embed::Vector& query, std::size_t k) const override {
    return quantized_search(store_, codes_, query, k, rerank_);
  }

  const VectorStore& store_;
  Int8Codes codes_;
  std::size_t rerank_;
};

/// IVF probing; optionally scans the probe set on int8 codes with exact
/// re-rank instead of fp32.
class IvfAnnIndex final : public InstrumentedIndex {
 public:
  IvfAnnIndex(const VectorStore& store, const IndexSpec& spec)
      : InstrumentedIndex(spec.name(), store.size()),
        store_(store),
        ivf_(store, spec.ivf),
        rerank_(spec.rerank_factor) {
    if (spec.int8) codes_ = Int8Codes::build(store);
  }

 private:
  [[nodiscard]] std::vector<SearchResult> do_search(
      const embed::Vector& query, std::size_t k) const override {
    if (!codes_.has_value()) return ivf_.search(query, k);
    embed::Vector q = query;
    embed::l2_normalize(q);
    return quantized_search(store_, *codes_, q, k, rerank_,
                            ivf_.probe_candidates(q));
  }

  const VectorStore& store_;
  IvfIndex ivf_;
  std::optional<Int8Codes> codes_;
  std::size_t rerank_;
};

/// HNSW traversal; int8 mode traverses on codes and re-ranks the beam.
class HnswAnnIndex final : public InstrumentedIndex {
 public:
  HnswAnnIndex(const VectorStore& store, const IndexSpec& spec)
      : InstrumentedIndex(spec.name(), store.size()) {
    if (spec.int8) codes_ = std::make_unique<Int8Codes>(Int8Codes::build(store));
    hnsw_ = std::make_unique<HnswIndex>(store, spec.hnsw, codes_.get());
    obs::global_metrics()
        .gauge(obs::kAnnGraphEdges)
        .set(static_cast<double>(hnsw_->edge_count()));
  }

 private:
  [[nodiscard]] std::vector<SearchResult> do_search(
      const embed::Vector& query, std::size_t k) const override {
    return hnsw_->search(query, k);
  }

  std::unique_ptr<Int8Codes> codes_;  ///< must outlive hnsw_
  std::unique_ptr<HnswIndex> hnsw_;
};

}  // namespace

std::shared_ptr<const AnnIndex> build_index(const VectorStore& store,
                                            const IndexSpec& spec) {
  if (spec.is_flat_fp32() || store.empty()) return nullptr;
  pkb::util::Stopwatch watch;
  std::shared_ptr<const AnnIndex> index;
  switch (spec.kind) {
    case IndexKind::Flat:
      index = std::make_shared<FlatInt8Index>(store, spec);
      break;
    case IndexKind::Ivf:
      index = std::make_shared<IvfAnnIndex>(store, spec);
      break;
    case IndexKind::Hnsw:
      index = std::make_shared<HnswAnnIndex>(store, spec);
      break;
  }
  obs::global_metrics()
      .histogram(obs::kAnnBuildSeconds)
      .observe(watch.seconds());
  return index;
}

}  // namespace pkb::vectordb
