#include "vectordb/index.h"

#include <optional>
#include <utility>

#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/clock.h"

namespace pkb::vectordb {

std::string IndexSpec::name() const {
  std::string base;
  switch (kind) {
    case IndexKind::Flat:
      base = "flat";
      break;
    case IndexKind::Ivf:
      base = "ivf";
      break;
    case IndexKind::Hnsw:
      base = "hnsw";
      break;
  }
  switch (quant) {
    case Quantizer::None:
      break;
    case Quantizer::Int8:
      base += "_int8";
      break;
    case Quantizer::Pq:
      base += "_pq";
      break;
  }
  return base;
}

std::vector<std::vector<SearchResult>> AnnIndex::search_batch(
    const std::vector<embed::Vector>& queries, std::size_t k) const {
  std::vector<std::vector<SearchResult>> out;
  out.reserve(queries.size());
  for (const embed::Vector& q : queries) out.push_back(search(q, k));
  return out;
}

namespace {

/// Shared instrumentation shell: counts searches, times them, and opens the
/// ann_search span around the concrete strategy.
class InstrumentedIndex : public AnnIndex {
 public:
  InstrumentedIndex(std::string name, std::size_t entries)
      : name_(std::move(name)), entries_(entries) {
    obs::global_metrics()
        .gauge(obs::kAnnIndexEntries)
        .set(static_cast<double>(entries_));
  }

  [[nodiscard]] std::string_view name() const final { return name_; }

  [[nodiscard]] std::size_t scan_bytes_per_vector() const final {
    return scan_bytes_;
  }

  [[nodiscard]] std::vector<SearchResult> search(const embed::Vector& query,
                                                 std::size_t k) const final {
    obs::MetricsRegistry& metrics = obs::global_metrics();
    metrics.counter(obs::kAnnSearchesTotal).inc();
    pkb::util::Stopwatch watch;
    obs::Span span(obs::global_tracer(), obs::kSpanAnnSearch);
    span.set_attr("index", name_);
    span.set_attr("k", static_cast<std::uint64_t>(k));
    std::vector<SearchResult> hits = do_search(query, k);
    span.set_attr("hits", static_cast<std::uint64_t>(hits.size()));
    metrics.histogram(obs::kAnnSearchSeconds).observe(watch.seconds());
    return hits;
  }

 protected:
  [[nodiscard]] virtual std::vector<SearchResult> do_search(
      const embed::Vector& query, std::size_t k) const = 0;

  /// Derived ctors record the scan footprint once their codes exist.
  void set_scan_bytes(std::size_t bytes) { scan_bytes_ = bytes; }

 private:
  std::string name_;
  std::size_t entries_;
  std::size_t scan_bytes_ = 0;
};

std::size_t fp32_scan_bytes(const VectorStore& store) {
  return store.packed().stride() * sizeof(float);
}

std::size_t int8_scan_bytes(const Int8Codes& codes) {
  // Padded code row plus the per-row dequantization scale.
  return codes.packed().stride() + sizeof(float);
}

/// Shared quantization state for a spec: at most one of int8 / PQ.
struct QuantState {
  std::optional<Int8Codes> int8;
  std::optional<PqCodebook> pq_book;
  std::optional<PqCodes> pq_codes;

  static QuantState build(const VectorStore& store, const IndexSpec& spec) {
    QuantState q;
    switch (spec.quant) {
      case Quantizer::None:
        break;
      case Quantizer::Int8:
        q.int8 = Int8Codes::build(store);
        break;
      case Quantizer::Pq:
        q.pq_book = PqCodebook::train(store, spec.pq);
        q.pq_codes = PqCodes::encode(store, *q.pq_book);
        break;
    }
    return q;
  }

  [[nodiscard]] std::size_t scan_bytes(const VectorStore& store) const {
    if (int8) return int8_scan_bytes(*int8);
    if (pq_codes) return pq_codes->stride();
    return fp32_scan_bytes(store);
  }
};

/// Flat scan over quantized codes with exact re-rank (kind=Flat,
/// quant=Int8|Pq).
class FlatQuantIndex final : public InstrumentedIndex {
 public:
  FlatQuantIndex(const VectorStore& store, const IndexSpec& spec)
      : InstrumentedIndex(spec.name(), store.size()),
        store_(store),
        quant_(QuantState::build(store, spec)),
        rerank_(spec.rerank_factor) {
    set_scan_bytes(quant_.scan_bytes(store));
  }

 private:
  [[nodiscard]] std::vector<SearchResult> do_search(
      const embed::Vector& query, std::size_t k) const override {
    if (quant_.int8) {
      return quantized_search(store_, *quant_.int8, query, k, rerank_);
    }
    return pq_search(store_, *quant_.pq_book, *quant_.pq_codes, query, k,
                     rerank_);
  }

  const VectorStore& store_;
  QuantState quant_;
  std::size_t rerank_;
};

/// IVF probing; optionally scans the probe set on int8 or PQ codes with
/// exact re-rank instead of fp32.
class IvfAnnIndex final : public InstrumentedIndex {
 public:
  IvfAnnIndex(const VectorStore& store, const IndexSpec& spec)
      : InstrumentedIndex(spec.name(), store.size()),
        store_(store),
        ivf_(store, spec.ivf),
        quant_(QuantState::build(store, spec)),
        rerank_(spec.rerank_factor) {
    set_scan_bytes(quant_.scan_bytes(store));
  }

 private:
  [[nodiscard]] std::vector<SearchResult> do_search(
      const embed::Vector& query, std::size_t k) const override {
    if (!quant_.int8 && !quant_.pq_codes) return ivf_.search(query, k);
    // Normalize only for bucket probing; the quantized searches normalize
    // the raw query themselves, and handing them a pre-normalized copy
    // would re-normalize it — an ulp off the flat scan's query, breaking
    // exact-score parity with similarity_search.
    embed::Vector q = query;
    embed::l2_normalize(q);
    if (quant_.int8) {
      return quantized_search(store_, *quant_.int8, query, k, rerank_,
                              ivf_.probe_candidates(q));
    }
    return pq_search(store_, *quant_.pq_book, *quant_.pq_codes, query, k,
                     rerank_, ivf_.probe_candidates(q));
  }

  const VectorStore& store_;
  IvfIndex ivf_;
  QuantState quant_;
  std::size_t rerank_;
};

/// HNSW traversal; quantized modes traverse on int8 or ADC scores and
/// re-rank the beam exactly.
class HnswAnnIndex final : public InstrumentedIndex {
 public:
  HnswAnnIndex(const VectorStore& store, const IndexSpec& spec)
      : InstrumentedIndex(spec.name(), store.size()),
        quant_(QuantState::build(store, spec)) {
    set_scan_bytes(quant_.scan_bytes(store));
    hnsw_ = std::make_unique<HnswIndex>(
        store, spec.hnsw, quant_.int8 ? &*quant_.int8 : nullptr,
        quant_.pq_book ? &*quant_.pq_book : nullptr,
        quant_.pq_codes ? &*quant_.pq_codes : nullptr);
    obs::global_metrics()
        .gauge(obs::kAnnGraphEdges)
        .set(static_cast<double>(hnsw_->edge_count()));
  }

 private:
  [[nodiscard]] std::vector<SearchResult> do_search(
      const embed::Vector& query, std::size_t k) const override {
    return hnsw_->search(query, k);
  }

  QuantState quant_;  ///< must outlive hnsw_
  std::unique_ptr<HnswIndex> hnsw_;
};

}  // namespace

std::shared_ptr<const AnnIndex> build_index(const VectorStore& store,
                                            const IndexSpec& spec) {
  if (spec.is_flat_fp32() || store.empty()) return nullptr;
  pkb::util::Stopwatch watch;
  std::shared_ptr<const AnnIndex> index;
  switch (spec.kind) {
    case IndexKind::Flat:
      index = std::make_shared<FlatQuantIndex>(store, spec);
      break;
    case IndexKind::Ivf:
      index = std::make_shared<IvfAnnIndex>(store, spec);
      break;
    case IndexKind::Hnsw:
      index = std::make_shared<HnswAnnIndex>(store, spec);
      break;
  }
  obs::global_metrics()
      .histogram(obs::kAnnBuildSeconds)
      .observe(watch.seconds());
  return index;
}

}  // namespace pkb::vectordb
