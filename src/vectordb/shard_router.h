#pragma once
// Sharded scatter–gather retrieval — the horizontal-scaling layer of the
// vector database (ROADMAP: partition the store so the index scales past
// one scan's memory bandwidth).
//
// A ShardRouter holds N immutable VectorStore shards covering contiguous,
// disjoint global index ranges. Each query fans out across the shards in
// parallel (a dedicated scatter pool — NOT util::global_pool(), because the
// per-shard scans themselves run parallel_for on the global pool and nesting
// would deadlock; see util/thread_pool.h), then the per-shard top-k lists
// are merged with exactly the monolithic comparator (score descending,
// global index ascending). Because shard vectors are copied pre-normalized
// and scored with the same SIMD kernels (vectordb/kernels.h) the monolithic
// scan uses, the merged result is bit-identical to
// VectorStore::similarity_search on the unsharded store — indices, scores,
// and order.
//
// Partition tolerance reuses the resilience layer per shard: each shard has
// its own CircuitBreaker and a kill switch (kill_shard); a scan that faults
// (injected FaultPlan decision or dead shard) is hedged, and a shard lost
// past its hedges degrades the answer — the Scatter comes back `partial()`
// with that shard's documents missing — instead of failing the request.
// Everything is observable under pkb_shard_* and the shard_scatter /
// shard_merge spans (docs/OBSERVABILITY.md).
//
// Index composition: ShardRouterOptions::index carries an IndexSpec
// (index.h); each shard builds its own AnnIndex over its slice at
// construction, and scans route through it (per-shard ANN, merge
// unchanged). This composes because every index returns shard-local hit
// indices with flat-scan-exact fp32 scores — after the offset remap the
// merge comparator cannot tell indexed hits from scanned ones. The
// identity spec (flat fp32) builds no index and scans the stores directly.
// Metadata filters bypass per-shard indexes (ANN candidate sets are not
// filter-aware); filtered scatters use the exact scan.
//
// Generational use: rag::Snapshot owns at most one router, built from the
// snapshot's store at publish time. Routers are immutable in shape;
// with_shard_replaced() derives the next generation's router by swapping a
// single shard while *sharing* the untouched shard objects (stores, breakers,
// dead flags), so a rolling shard-by-shard rollout is N cheap snapshot
// publishes — and a reader's pinned snapshot pins every shard of its
// generation, never observing a mixed one.

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "resilience/fault_plan.h"
#include "resilience/policy.h"
#include "vectordb/index.h"
#include "vectordb/vector_store.h"

namespace pkb::util {
class ThreadPool;
}  // namespace pkb::util

namespace pkb::vectordb {

struct ShardRouterOptions {
  /// Per-shard circuit breaker configuration.
  resilience::BreakerOptions breaker;
  /// Breaker cooldown clock; defaults to resilience::mono_seconds. Tests
  /// inject a fake clock to drive open -> half-open deterministically.
  resilience::Clock breaker_clock;
  /// Scatter pool width; 0 = one thread per shard (capped to hardware).
  std::size_t scatter_threads = 0;
  /// ANN spec built per shard over its slice (index.h). The identity spec
  /// (flat fp32, the default) builds nothing and shards scan exactly.
  IndexSpec index;
};

/// Per-query knobs for one scatter, mirroring the Retriever's hedged search:
/// `plan` is consulted (Stage::VectorSearch) once per shard scan per query,
/// and a faulted shard scan is re-attempted up to `hedges` extra times
/// before the shard is declared lost for this query.
struct ScatterOptions {
  const resilience::FaultPlan* plan = nullptr;
  std::uint32_t hedges = 1;
};

/// One scatter–gather answer. `hits` is bit-identical to the monolithic
/// top-k when every shard answered; with failed shards it is the exact
/// top-k over the surviving shards' documents (partial, tagged).
struct Scatter {
  std::vector<SearchResult> hits;
  std::size_t shards_failed = 0;
  std::size_t shards_total = 0;
  [[nodiscard]] bool partial() const { return shards_failed > 0; }
};

class ShardRouter {
 public:
  /// Partition `store` into `shards` contiguous slices (sizes differ by at
  /// most one). Vectors are copied pre-normalized, so shard-local scores are
  /// bit-identical to the monolithic scan's. Requires shards >= 1.
  static std::shared_ptr<ShardRouter> partition(const VectorStore& store,
                                                std::size_t shards,
                                                ShardRouterOptions opts = {});

  /// Derive a router with shard `shard` replaced by `replacement` (same
  /// role in the global index space; its size may differ — offsets are
  /// recomputed). All other shard objects are shared with this router, so a
  /// rolling shard-by-shard swap allocates only the shard actually changing.
  [[nodiscard]] std::shared_ptr<ShardRouter> with_shard_replaced(
      std::size_t shard, VectorStore replacement) const;

  /// Scatter one query across every live shard and merge per-shard top-k
  /// into the global top-k (score descending, global index ascending — the
  /// exact select_top_k order). Throws std::invalid_argument on dimension
  /// mismatch; shard failures degrade the Scatter instead of throwing.
  [[nodiscard]] Scatter search(const embed::Vector& query, std::size_t k,
                               const MetadataFilter* filter = nullptr,
                               const ScatterOptions& sopts = {}) const;

  /// Batched scatter: every shard runs one amortized
  /// similarity_search_batch over all queries. Element i is identical to
  /// search(queries[i]) — same hits, same failure semantics (a shard lost
  /// past its hedges is lost for the whole batch). The fault plan is
  /// consulted once per query per shard attempt, matching the single path's
  /// ordinal accounting.
  [[nodiscard]] std::vector<Scatter> search_batch(
      const std::vector<embed::Vector>& queries, std::size_t k,
      const MetadataFilter* filter = nullptr,
      const ScatterOptions& sopts = {}) const;

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  /// Total documents across shards.
  [[nodiscard]] std::size_t size() const { return total_; }
  [[nodiscard]] std::size_t dimension() const { return dim_; }
  /// Shard `i`'s store and its global index offset (entry j of shard i is
  /// global index shard_offset(i) + j).
  [[nodiscard]] const VectorStore& shard(std::size_t i) const;
  [[nodiscard]] std::size_t shard_offset(std::size_t i) const;

  /// Chaos switches: a dead shard fails every scan (through the breaker, so
  /// sustained death trips it open) until revived. Thread-safe; shared with
  /// routers derived via with_shard_replaced (killing a shard kills it in
  /// every generation that shares the shard object).
  void kill_shard(std::size_t i);
  void revive_shard(std::size_t i);
  [[nodiscard]] bool shard_dead(std::size_t i) const;
  [[nodiscard]] resilience::CircuitBreaker::State breaker_state(
      std::size_t i) const;

 private:
  struct Shard {
    std::shared_ptr<const VectorStore> store;
    /// Per-shard ANN index (null for the identity spec); owned alongside
    /// the store so a derived router shares both or neither.
    std::shared_ptr<const AnnIndex> index;
    std::shared_ptr<resilience::CircuitBreaker> breaker;
    std::shared_ptr<std::atomic<bool>> dead;
  };

  ShardRouter() = default;
  void rebuild_offsets();
  [[nodiscard]] Shard make_shard(VectorStore store) const;

  /// One shard's scan for the whole scatter (single query or batch),
  /// breaker-gated and hedged. On success appends globally re-indexed hits
  /// to `out[q]` per query; returns false when the shard is lost.
  [[nodiscard]] bool scan_shard(std::size_t shard,
                                const std::vector<embed::Vector>& queries,
                                std::size_t k, const MetadataFilter* filter,
                                const ScatterOptions& sopts,
                                std::vector<std::vector<SearchResult>>& out)
      const;

  std::vector<Shard> shards_;
  std::vector<std::size_t> offsets_;  ///< global index base per shard
  std::size_t total_ = 0;
  std::size_t dim_ = 0;
  ShardRouterOptions opts_;
  /// Dedicated fan-out pool (see file comment); shared across derived
  /// routers so a rolling swap does not respawn threads.
  std::shared_ptr<util::ThreadPool> pool_;
};

}  // namespace pkb::vectordb
