#include "vectordb/quantize.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace pkb::vectordb {

namespace {

/// Quantize one fp32 row into `out` (length dim, caller zero-pads the
/// tail). Symmetric: scale = maxabs/127, codes clamped to [-127, 127].
/// An all-zero row gets scale 1 so dequantization stays exact (0 * 1 = 0).
float quantize_row(const float* row, std::size_t dim, std::int8_t* out) {
  float maxabs = 0.0f;
  for (std::size_t d = 0; d < dim; ++d) {
    maxabs = std::max(maxabs, std::fabs(row[d]));
  }
  const float scale = maxabs > 0.0f ? maxabs / 127.0f : 1.0f;
  const float inv = 1.0f / scale;
  for (std::size_t d = 0; d < dim; ++d) {
    const long q = std::lroundf(row[d] * inv);
    out[d] = static_cast<std::int8_t>(std::clamp(q, -127L, 127L));
  }
  return scale;
}

}  // namespace

Int8Codes Int8Codes::build(const VectorStore& store) {
  Int8Codes codes;
  codes.codes_ = kernels::PackedI8(store.dimension());
  std::vector<std::int8_t> row(store.dimension());
  for (std::size_t i = 0; i < store.size(); ++i) {
    const float scale =
        quantize_row(store.vec(i).data(), store.dimension(), row.data());
    codes.codes_.append(row.data(), scale);
  }
  return codes;
}

float Int8Codes::quantize_query(const float* query,
                                std::int8_t* codes_out) const {
  const float scale = quantize_row(query, codes_.dim(), codes_out);
  for (std::size_t d = codes_.dim(); d < codes_.stride(); ++d) {
    codes_out[d] = 0;
  }
  return scale;
}

std::vector<std::size_t> approx_top(const Int8Codes& codes,
                                    const std::int8_t* query_codes,
                                    float query_scale, std::size_t m,
                                    const std::vector<std::size_t>& candidates) {
  const kernels::PackedI8& packed = codes.packed();
  std::vector<std::size_t> order;
  std::vector<float> approx;
  if (candidates.empty()) {
    order.resize(packed.rows());
    for (std::size_t i = 0; i < packed.rows(); ++i) order[i] = i;
    approx.resize(packed.rows());
    packed.score_range(query_codes, query_scale, 0, packed.rows(),
                       approx.data());
  } else {
    order = candidates;
    approx.resize(packed.rows());
    for (std::size_t i : candidates) {
      packed.score_range(query_codes, query_scale, i, i + 1, &approx[i]);
    }
  }
  const std::size_t keep = std::min(m, order.size());
  std::partial_sort(order.begin(),
                    order.begin() + static_cast<std::ptrdiff_t>(keep),
                    order.end(), [&](std::size_t a, std::size_t b) {
                      if (approx[a] != approx[b]) return approx[a] > approx[b];
                      return a < b;
                    });
  order.resize(keep);
  return order;
}

std::vector<SearchResult> quantized_search(
    const VectorStore& store, const Int8Codes& codes,
    const embed::Vector& query, std::size_t k, std::size_t rerank_factor,
    const std::vector<std::size_t>& candidates) {
  if (k == 0 || store.empty()) return {};
  if (query.size() != store.dimension()) {
    throw std::invalid_argument("quantized_search: dimension mismatch");
  }
  if (codes.rows() != store.size()) {
    throw std::invalid_argument("quantized_search: stale codes");
  }
  rerank_factor = std::max<std::size_t>(1, rerank_factor);

  embed::Vector q = query;
  embed::l2_normalize(q);

  // Approximate pass over the int8 codes: pick the survivor set.
  pkb::util::AlignedBuffer qcodes(codes.packed().stride());
  const float qscale = codes.quantize_query(q.data(), qcodes.as<std::int8_t>());
  const std::vector<std::size_t> survivors = approx_top(
      codes, qcodes.as<std::int8_t>(), qscale, k * rerank_factor, candidates);

  // Exact fp32 re-rank of the survivors with the flat scan's kernel, so the
  // final scores (and selection) match VectorStore::similarity_search
  // whenever the survivors cover the true top-k.
  obs::Span span(obs::global_tracer(), obs::kSpanQuantizeRerank);
  span.set_attr("survivors", static_cast<std::uint64_t>(survivors.size()));
  span.set_attr("k", static_cast<std::uint64_t>(k));
  obs::global_metrics()
      .counter(obs::kAnnRerankCandidatesTotal)
      .inc(survivors.size());

  const kernels::PackedF32& packed = store.packed();
  pkb::util::AlignedBuffer qbuf(packed.stride() * sizeof(float));
  packed.pack_query(q.data(), qbuf.as<float>());
  std::vector<SearchResult> hits;
  hits.reserve(survivors.size());
  for (std::size_t i : survivors) {
    hits.push_back(SearchResult{i, store.kernel_score(qbuf.as<float>(), i),
                                &store.doc(i)});
  }
  std::sort(hits.begin(), hits.end(),
            [](const SearchResult& a, const SearchResult& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.index < b.index;
            });
  if (hits.size() > k) hits.resize(k);
  return hits;
}

}  // namespace pkb::vectordb
