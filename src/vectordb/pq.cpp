#include "vectordb/pq.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <future>
#include <limits>
#include <stdexcept>

#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/clock.h"
#include "util/thread_pool.h"
#include "vectordb/kmeans.h"

namespace pkb::vectordb {

namespace {

/// Resolve the auto sub-quantizer count: 2 dims per sub-vector, so the
/// kPqBook centroids tile each slice densely (recall@10 ≥ 0.90 on random
/// gaussians at dim 64 — the bench gate's worst case; dim/4 measured 0.88
/// there) while codes stay ≤ 0.125× fp32, clamped so every sub-vector has
/// at least one dimension.
std::size_t resolve_m(std::size_t requested, std::size_t dim) {
  if (requested != 0) return std::min(requested, dim);
  return std::max<std::size_t>(1, dim / 2);
}

/// Fixed chunking over rows: boundaries depend only on n, so per-row work
/// lands identically for any pool size.
void encode_chunks(
    util::ThreadPool& pool, std::size_t n,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  constexpr std::size_t kChunk = 2048;
  if (n <= kChunk) {
    if (n > 0) fn(0, n);
    return;
  }
  std::vector<std::future<void>> futures;
  for (std::size_t b = 0; b < n; b += kChunk) {
    const std::size_t e = std::min(n, b + kChunk);
    futures.push_back(pool.submit([&fn, b, e] { fn(b, e); }));
  }
  for (auto& f : futures) f.get();
}

}  // namespace

PqCodebook PqCodebook::train_impl(const VectorStore& store,
                                  const PqOptions& opts,
                                  util::ThreadPool* pool, bool reference) {
  if (store.empty()) {
    throw std::invalid_argument("PqCodebook::train: empty store");
  }
  PqCodebook book;
  book.dim_ = store.dimension();
  book.opts_ = opts;
  book.opts_.m = resolve_m(opts.m, book.dim_);
  book.centers_ = std::min(kernels::kPqBook, store.size());

  const std::size_t m = book.opts_.m;
  const std::size_t n = store.size();
  const std::size_t base = book.dim_ / m;
  const std::size_t rem = book.dim_ % m;

  std::size_t begin = 0;
  for (std::size_t s = 0; s < m; ++s) {
    Sub sub;
    sub.begin = begin;
    sub.dim = base + (s < rem ? 1 : 0);
    begin += sub.dim;

    // Slice the store's rows into this sub-vector's packed matrix.
    kernels::PackedF32 sub_data(sub.dim);
    for (std::size_t i = 0; i < n; ++i) {
      sub_data.append(store.vec(i).data() + sub.begin);
    }

    KmeansOptions ko;
    ko.k = book.centers_;
    ko.iters = book.opts_.kmeans_iters;
    ko.seed = book.opts_.seed + s;
    ko.metric = KmeansMetric::L2;
    ko.pool = pool;
    KmeansResult km = reference ? kmeans_cluster_reference(sub_data, ko)
                                : kmeans_cluster(sub_data, ko);
    sub.centroids = std::move(km.centroids);
    const std::size_t centers = sub.centroids.rows();
    sub.trans.resize(sub.dim * centers);
    sub.neg_half_norm.resize(centers);
    for (std::size_t c = 0; c < centers; ++c) {
      const float* row = sub.centroids.row(c);
      for (std::size_t d = 0; d < sub.dim; ++d) {
        sub.trans[d * centers + c] = row[d];
      }
      sub.neg_half_norm[c] =
          -0.5f * kernels::dot_f32(row, row, sub.centroids.stride());
    }
    book.sub_.push_back(std::move(sub));
  }
  return book;
}

PqCodebook PqCodebook::train(const VectorStore& store, const PqOptions& opts,
                             util::ThreadPool* pool) {
  pkb::util::Stopwatch watch;
  PqCodebook book = train_impl(store, opts, pool, /*reference=*/false);
  obs::MetricsRegistry& metrics = obs::global_metrics();
  metrics.histogram(obs::kAnnPqTrainSeconds).observe(watch.seconds());
  metrics.gauge(obs::kAnnPqSubquantizers)
      .set(static_cast<double>(book.m()));
  return book;
}

PqCodebook PqCodebook::train_reference(const VectorStore& store,
                                       const PqOptions& opts) {
  return train_impl(store, opts, nullptr, /*reference=*/true);
}

void PqCodebook::build_lut(const float* query, float* lut) const {
  std::fill(lut, lut + lut_size(), 0.0f);
  for (std::size_t s = 0; s < sub_.size(); ++s) {
    const Sub& sub = sub_[s];
    kernels::dots_trans_f32(query + sub.begin, sub.trans.data(), sub.dim,
                            centers_, centers_, lut + s * kernels::kPqBook);
  }
}

void PqCodebook::encode_into(const float* vec,
                             std::uint8_t* codes_out) const {
  for (std::size_t s = 0; s < sub_.size(); ++s) {
    const Sub& sub = sub_[s];
    codes_out[s] = static_cast<std::uint8_t>(kernels::nearest_trans_f32(
        vec + sub.begin, sub.trans.data(), sub.dim, centers_, centers_,
        sub.neg_half_norm.data()));
  }
}

void PqCodebook::encode(const float* vec, std::uint8_t* codes_out) const {
  encode_into(vec, codes_out);
}

PqCodes PqCodes::encode(const VectorStore& store, const PqCodebook& book,
                        util::ThreadPool* pool) {
  if (store.dimension() != book.dim()) {
    throw std::invalid_argument("PqCodes::encode: dimension mismatch");
  }
  util::ThreadPool& p = pool ? *pool : util::global_pool();
  PqCodes codes;
  codes.m_ = book.m();
  codes.stride_ = util::align_up(std::max<std::size_t>(1, book.m()),
                                 kernels::kPqPad);
  codes.rows_ = store.size();
  codes.buf_.resize(codes.rows_ * codes.stride_);  // zero-fills padding
  std::uint8_t* base = codes.buf_.as<std::uint8_t>();
  encode_chunks(p, codes.rows_, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      book.encode_into(store.vec(i).data(), base + i * codes.stride_);
    }
  });
  obs::global_metrics()
      .gauge(obs::kAnnPqCodeBytesPerVector)
      .set(static_cast<double>(codes.stride_));
  return codes;
}

PqCodes PqCodes::encode_reference(const VectorStore& store,
                                  const PqCodebook& book) {
  if (store.dimension() != book.dim()) {
    throw std::invalid_argument("PqCodes::encode_reference: dim mismatch");
  }
  PqCodes codes;
  codes.m_ = book.m();
  codes.stride_ = util::align_up(std::max<std::size_t>(1, book.m()),
                                 kernels::kPqPad);
  codes.rows_ = store.size();
  codes.buf_.resize(codes.rows_ * codes.stride_);  // zero-fills padding
  std::uint8_t* base = codes.buf_.as<std::uint8_t>();
  for (std::size_t i = 0; i < codes.rows_; ++i) {
    const float* vec = store.vec(i).data();
    std::uint8_t* out = base + i * codes.stride_;
    for (std::size_t s = 0; s < book.sub_.size(); ++s) {
      const PqCodebook::Sub& sub = book.sub_[s];
      std::size_t arg = 0;
      double best = -std::numeric_limits<double>::infinity();
      for (std::size_t c = 0; c < sub.centroids.rows(); ++c) {
        const float* cent = sub.centroids.row(c);
        double acc = static_cast<double>(sub.neg_half_norm[c]);
        for (std::size_t d = 0; d < sub.dim; ++d) {
          acc += static_cast<double>(vec[sub.begin + d]) * cent[d];
        }
        if (acc > best) {
          best = acc;
          arg = c;
        }
      }
      out[s] = static_cast<std::uint8_t>(arg);
    }
  }
  return codes;
}

std::vector<std::size_t> adc_top(const PqCodes& codes, const float* lut,
                                 std::size_t m,
                                 const std::vector<std::size_t>& candidates) {
  if (codes.rows() == 0) return {};
  std::vector<std::size_t> order;
  std::vector<float> approx;
  if (candidates.empty()) {
    order.resize(codes.rows());
    for (std::size_t i = 0; i < codes.rows(); ++i) order[i] = i;
    approx.resize(codes.rows());
    kernels::adc_scores(lut, codes.row(0), codes.rows(), codes.m(),
                        codes.stride(), approx.data());
  } else {
    order = candidates;
    approx.resize(codes.rows());
    for (std::size_t i : candidates) {
      approx[i] = kernels::adc_f32(lut, codes.row(i), codes.m());
    }
  }
  const std::size_t keep = std::min(m, order.size());
  std::partial_sort(order.begin(),
                    order.begin() + static_cast<std::ptrdiff_t>(keep),
                    order.end(), [&](std::size_t a, std::size_t b) {
                      if (approx[a] != approx[b]) return approx[a] > approx[b];
                      return a < b;
                    });
  order.resize(keep);
  return order;
}

std::vector<SearchResult> pq_search(const VectorStore& store,
                                    const PqCodebook& book,
                                    const PqCodes& codes,
                                    const embed::Vector& query, std::size_t k,
                                    std::size_t rerank_factor,
                                    const std::vector<std::size_t>& candidates) {
  if (k == 0 || store.empty()) return {};
  if (query.size() != store.dimension()) {
    throw std::invalid_argument("pq_search: dimension mismatch");
  }
  if (book.dim() != store.dimension() || codes.m() != book.m()) {
    throw std::invalid_argument("pq_search: stale codebook");
  }
  if (codes.rows() != store.size()) {
    throw std::invalid_argument("pq_search: stale codes");
  }
  rerank_factor = std::max<std::size_t>(1, rerank_factor);
  obs::global_metrics().counter(obs::kAnnPqSearchesTotal).inc();

  embed::Vector q = query;
  embed::l2_normalize(q);

  // ADC pass: expand the query into the LUT once, then pick the survivor
  // set by summed table entries.
  std::vector<float> lut(book.lut_size());
  book.build_lut(q.data(), lut.data());
  const std::vector<std::size_t> survivors =
      adc_top(codes, lut.data(), k * rerank_factor, candidates);

  // Exact fp32 re-rank of the survivors with the flat scan's kernel — same
  // contract as quantized_search: scores match VectorStore::similarity_search
  // whenever the survivors cover the true top-k.
  obs::Span span(obs::global_tracer(), obs::kSpanQuantizeRerank);
  span.set_attr("survivors", static_cast<std::uint64_t>(survivors.size()));
  span.set_attr("k", static_cast<std::uint64_t>(k));
  obs::global_metrics()
      .counter(obs::kAnnRerankCandidatesTotal)
      .inc(survivors.size());

  const kernels::PackedF32& packed = store.packed();
  pkb::util::AlignedBuffer qbuf(packed.stride() * sizeof(float));
  packed.pack_query(q.data(), qbuf.as<float>());
  std::vector<SearchResult> hits;
  hits.reserve(survivors.size());
  for (std::size_t i : survivors) {
    hits.push_back(SearchResult{i, store.kernel_score(qbuf.as<float>(), i),
                                &store.doc(i)});
  }
  std::sort(hits.begin(), hits.end(),
            [](const SearchResult& a, const SearchResult& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.index < b.index;
            });
  if (hits.size() > k) hits.resize(k);
  return hits;
}

}  // namespace pkb::vectordb
