#pragma once
// Product quantization with ADC lookup tables and exact fp32 re-rank.
//
// `PqCodebook` splits the vector dimension into m contiguous sub-vectors
// and trains an independent k-means codebook (≤ kernels::kPqBook centroids)
// per sub-vector on vectordb/kmeans.h — seeded, parallel, and
// bit-deterministic at any worker count. `PqCodes` then mirrors a
// VectorStore as one byte per sub-quantizer: 4·dim bytes/vector shrink to
// ~dim/2 (the bench gates ≤ 0.25× fp32), the memory rung int8's fixed 4×
// cannot reach.
//
// Search is ADC (asymmetric distance computation): the fp32 query is
// expanded once into an m × kPqBook lookup table of sub-dot-products
// (`build_lut`), and a row's approximate score is the sum of its m table
// entries — gathered by the kernels.h `adc_f32` family (AVX2 vgatherdps /
// scalar), double-accumulated like every fp32 kernel. As with int8, the
// approximation never reaches the caller: `pq_search` scans codes only to
// pick k × rerank_factor survivors, re-scores them with the store's exact
// fp32 kernel, and returns the top-k by exact score — bit-identical to the
// flat scan whenever the survivors cover the true top-k (property-tested in
// tests/ann_test.cpp; recall gated in bench/ann_frontier.cpp).
//
// Codebook and codes are immutable after build and hold no store reference;
// pair them with the store they were built from (the Snapshot pattern keeps
// the three consistent).

#include <cstdint>
#include <vector>

#include "vectordb/kernels.h"
#include "vectordb/vector_store.h"

namespace pkb::util {
class ThreadPool;
}

namespace pkb::vectordb {

/// PQ training parameters.
struct PqOptions {
  /// Sub-quantizer count; 0 = auto (dim/2, clamped to [1, dim]). When dim
  /// is not divisible, the first dim % m sub-vectors get one extra
  /// dimension.
  std::size_t m = 0;
  /// Lloyd iterations per sub-quantizer codebook.
  std::size_t kmeans_iters = 8;
  /// Base seed; sub-quantizer s trains with seed + s.
  std::uint64_t seed = 42;

  bool operator==(const PqOptions&) const = default;
};

/// Per-sub-vector k-means codebooks plus the query-side LUT expansion.
class PqCodebook {
 public:
  /// Train m codebooks on the store's vectors (kernels + pool; nullptr pool
  /// = util::global_pool()). Deterministic for a given store + options.
  /// Emits pkb_ann_pq_train_seconds and the pkb_ann_pq_subquantizers gauge.
  [[nodiscard]] static PqCodebook train(const VectorStore& store,
                                        const PqOptions& opts,
                                        util::ThreadPool* pool = nullptr);

  /// Single-thread scalar-loop twin of train() (reference k-means, no SIMD
  /// kernels, no pool) — the baseline for the bench build-speedup gate.
  [[nodiscard]] static PqCodebook train_reference(const VectorStore& store,
                                                  const PqOptions& opts);

  [[nodiscard]] std::size_t m() const { return sub_.size(); }
  [[nodiscard]] std::size_t dim() const { return dim_; }
  /// Centroids per sub-quantizer (min(kPqBook, store rows) at train time).
  [[nodiscard]] std::size_t centers() const { return centers_; }
  [[nodiscard]] const PqOptions& options() const { return opts_; }
  /// Floats a query LUT occupies: m() × kernels::kPqBook.
  [[nodiscard]] std::size_t lut_size() const {
    return m() * kernels::kPqBook;
  }

  /// Expand a normalized query (length dim) into the ADC lookup table:
  /// lut[s * kPqBook + c] = dot(query sub-vector s, centroid c of
  /// sub-quantizer s). Slots past centers() are zeroed. `lut` must hold
  /// lut_size() floats.
  void build_lut(const float* query, float* lut) const;

  /// Encode one vector (length dim) into m code bytes (nearest centroid per
  /// sub-vector, lower index on ties).
  void encode(const float* vec, std::uint8_t* codes_out) const;

 private:
  struct Sub {
    std::size_t begin = 0;  ///< first dimension of this sub-vector
    std::size_t dim = 0;    ///< sub-vector width
    kernels::PackedF32 centroids;
    /// Centroids transposed to dimension-major (trans[d * centers + c]) for
    /// the kernels.h transposed scoring shape — no padding-lane waste at
    /// sub-vector widths; LUT entries stay bit-identical across backends.
    std::vector<float> trans;
    /// −‖c‖²/2 per centroid — argmin L2 = argmax(dot + neg_half_norm), the
    /// nearest_trans_f32 `adjust` operand.
    std::vector<float> neg_half_norm;
  };

  void encode_into(const float* vec, std::uint8_t* codes_out) const;
  static PqCodebook train_impl(const VectorStore& store, const PqOptions& opts,
                               util::ThreadPool* pool, bool reference);

  std::vector<Sub> sub_;
  std::size_t dim_ = 0;
  std::size_t centers_ = 0;
  PqOptions opts_;

  friend class PqCodes;
};

/// Packed uint8 mirror of a store (one byte per sub-quantizer per vector,
/// rows padded to kernels::kPqPad).
class PqCodes {
 public:
  /// Encode every store row with the codebook (chunked on the pool; rows
  /// are independent, so the result is deterministic). Sets the
  /// pkb_ann_pq_code_bytes_per_vector gauge.
  [[nodiscard]] static PqCodes encode(const VectorStore& store,
                                      const PqCodebook& book,
                                      util::ThreadPool* pool = nullptr);

  /// Single-thread scalar-loop twin of encode() (plain double-accumulated
  /// argmax per sub-vector, no SIMD kernels, no pool) — together with
  /// PqCodebook::train_reference, the baseline side of the bench
  /// build-speedup gate.
  [[nodiscard]] static PqCodes encode_reference(const VectorStore& store,
                                                const PqCodebook& book);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t m() const { return m_; }
  /// Padded code-row width in bytes — the scan's bytes/vector footprint.
  [[nodiscard]] std::size_t stride() const { return stride_; }
  [[nodiscard]] const std::uint8_t* row(std::size_t r) const {
    return buf_.as<std::uint8_t>() + r * stride_;
  }

 private:
  std::size_t m_ = 0;
  std::size_t stride_ = 0;
  std::size_t rows_ = 0;
  util::AlignedBuffer buf_;
};

/// Indices of the top-`m` rows of `candidates` by ADC score (descending,
/// lower index breaking ties). Empty `candidates` means "all rows". `lut`
/// comes from PqCodebook::build_lut for the (normalized) query.
[[nodiscard]] std::vector<std::size_t> adc_top(
    const PqCodes& codes, const float* lut, std::size_t m,
    const std::vector<std::size_t>& candidates = {});

/// ADC candidate scan + exact fp32 re-rank: expands the query into a LUT,
/// scans `codes` (restricted to `candidates` when non-empty) for the top
/// k × rerank_factor survivors, re-scores them with the store's exact
/// kernel, and returns the top-k by exact score (flat-scan tie-break).
/// Emits the `quantize_rerank` span, pkb_ann_pq_searches_total and
/// pkb_ann_rerank_candidates_total. `query` need not be normalized.
[[nodiscard]] std::vector<SearchResult> pq_search(
    const VectorStore& store, const PqCodebook& book, const PqCodes& codes,
    const embed::Vector& query, std::size_t k, std::size_t rerank_factor,
    const std::vector<std::size_t>& candidates = {});

}  // namespace pkb::vectordb
