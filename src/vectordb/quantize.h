#pragma once
// Int8 scalar quantization with exact fp32 re-rank.
//
// `Int8Codes` mirrors a VectorStore as a packed int8 matrix: each vector is
// quantized symmetrically with its own scale (maxabs/127), so a dot product
// of two code rows times the two scales approximates the fp32 dot. The
// approximate scan runs ~4× less memory traffic than fp32 and uses the
// exact-integer kernels in kernels.h, so it is bit-identical across
// scalar/AVX2/NEON backends by construction.
//
// Approximation never reaches the caller: `quantized_search` scans codes
// only to pick k × rerank_factor survivors, then re-scores the survivors
// with the store's fp32 kernel (the flat scan's exact expression) and
// selects the final top-k from those exact scores. Whenever the survivor
// set covers the true top-k — which it does at any reasonable
// rerank_factor; bench/ann_frontier.cpp gates it — the result is
// bit-identical to `VectorStore::similarity_search`, scores included. The
// property test in tests/ann_test.cpp asserts this across seeds and
// dimensions.
//
// The codes are immutable after build() and hold no store reference; pair
// them with the store they were built from (the Snapshot pattern keeps the
// two consistent).

#include <cstdint>
#include <vector>

#include "vectordb/vector_store.h"

namespace pkb::vectordb {

/// Packed int8 mirror of a store's vectors.
class Int8Codes {
 public:
  /// Quantize every row of `store` (symmetric per-vector maxabs scaling).
  [[nodiscard]] static Int8Codes build(const VectorStore& store);

  /// Quantize one query into `codes_out` (must hold packed().stride()
  /// bytes; tail is zeroed) and return its dequantization scale.
  [[nodiscard]] float quantize_query(const float* query,
                                     std::int8_t* codes_out) const;

  [[nodiscard]] const kernels::PackedI8& packed() const { return codes_; }
  [[nodiscard]] std::size_t rows() const { return codes_.rows(); }
  [[nodiscard]] std::size_t dim() const { return codes_.dim(); }

 private:
  kernels::PackedI8 codes_;
};

/// Indices of the top-`m` rows of `candidates` by approximate int8 score
/// (descending, lower index breaking ties). Empty `candidates` means "all
/// rows". `query_codes`/`query_scale` come from Int8Codes::quantize_query.
[[nodiscard]] std::vector<std::size_t> approx_top(
    const Int8Codes& codes, const std::int8_t* query_codes, float query_scale,
    std::size_t m, const std::vector<std::size_t>& candidates = {});

/// Int8 candidate scan + exact fp32 re-rank: scans `codes` (restricted to
/// `candidates` when non-empty) for the top k × rerank_factor survivors,
/// re-scores them with the store's exact kernel, and returns the top-k by
/// exact score (flat-scan tie-break). Emits the `quantize_rerank` span and
/// pkb_ann_rerank_candidates_total. `query` need not be normalized.
[[nodiscard]] std::vector<SearchResult> quantized_search(
    const VectorStore& store, const Int8Codes& codes,
    const embed::Vector& query, std::size_t k, std::size_t rerank_factor,
    const std::vector<std::size_t>& candidates = {});

}  // namespace pkb::vectordb
