#pragma once
// Index selection — one handle over the ANN strategies in vectordb.
//
// `IndexSpec` names a point on the recall-vs-latency frontier: an index
// kind (flat scan, IVF, HNSW) crossed with a quantizer (none, int8, or PQ
// with ADC lookup tables — always with exact fp32 re-rank). `build_index`
// turns a spec into an immutable `AnnIndex`
// bound to a VectorStore; the generational KB stores a spec in
// `rag::KnowledgeBaseOptions::index`, builds the index per Snapshot
// (rebuilt on every ingest publish), and the retriever routes searches
// through it. The ShardRouter composes the same way — one index per shard,
// merge unchanged — because every index returns store-local hit indices
// with flat-scan-exact fp32 scores.
//
// Flat+fp32 is the identity spec: build_index returns nullptr and callers
// fall through to VectorStore::similarity_search, keeping the default
// configuration byte-for-byte the pre-index behavior.
//
// All search() calls are instrumented here (pkb_ann_* metrics, the
// `ann_search` span) so the strategies themselves stay mechanism-only.

#include <memory>
#include <string>

#include "vectordb/hnsw.h"
#include "vectordb/ivf.h"
#include "vectordb/pq.h"
#include "vectordb/quantize.h"
#include "vectordb/vector_store.h"

namespace pkb::vectordb {

/// Which ANN strategy serves a snapshot's searches.
enum class IndexKind : std::uint8_t {
  Flat = 0,  ///< exact scan (the default)
  Ivf = 1,   ///< inverted-file clusters (ivf.h)
  Hnsw = 2,  ///< navigable small-world graph (hnsw.h)
};

/// Which compressed representation the candidate scan reads (the re-rank is
/// always exact fp32).
enum class Quantizer : std::uint8_t {
  None = 0,  ///< scan fp32 rows
  Int8 = 1,  ///< scalar int8 codes (quantize.h), ~4× smaller
  Pq = 2,    ///< product-quantization ADC (pq.h), ~16× smaller
};

/// A point on the recall-vs-latency-vs-memory frontier. Persisted with
/// snapshots (rag snapshot format v4), so keep fields append-only.
struct IndexSpec {
  IndexKind kind = IndexKind::Flat;
  /// Scan quantized codes and exactly re-rank k × rerank_factor survivors.
  Quantizer quant = Quantizer::None;
  /// Survivor multiplier for the quantized re-rank (≥ 1).
  std::size_t rerank_factor = 4;
  IvfOptions ivf;
  HnswOptions hnsw;
  PqOptions pq;

  /// The identity spec — no index is built, callers use the flat scan.
  [[nodiscard]] bool is_flat_fp32() const {
    return kind == IndexKind::Flat && quant == Quantizer::None;
  }

  /// Stable label for metrics and bench output: "flat", "ivf_int8",
  /// "hnsw_pq", ...
  [[nodiscard]] std::string name() const;

  bool operator==(const IndexSpec&) const = default;
};

/// An immutable search index over one VectorStore. Implementations return
/// store-local indices with exact fp32 scores (the flat scan's expression),
/// which is what lets the ShardRouter merge hits from per-shard indexes
/// with the monolithic comparator.
class AnnIndex {
 public:
  virtual ~AnnIndex() = default;

  /// The spec's name() this index was built from.
  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Approximate top-k (query need not be normalized).
  [[nodiscard]] virtual std::vector<SearchResult> search(
      const embed::Vector& query, std::size_t k) const = 0;

  /// Batched search; default loops search(). Results per query are
  /// identical to the single-query path.
  [[nodiscard]] virtual std::vector<std::vector<SearchResult>> search_batch(
      const std::vector<embed::Vector>& queries, std::size_t k) const;

  /// Bytes of the per-vector representation the candidate scan reads (fp32
  /// rows, int8 codes, or PQ codes, padded strides included). The fp32
  /// store backing the exact re-rank is not counted — this is the metric
  /// the memory gate in bench/ann_frontier.cpp measures.
  [[nodiscard]] virtual std::size_t scan_bytes_per_vector() const = 0;
};

/// Build the index `spec` describes over `store`. Returns nullptr for the
/// identity spec (flat + fp32) and for an empty store — callers fall back
/// to the flat scan. The store must outlive the returned index. Emits
/// pkb_ann_build_seconds and the pkb_ann_index_entries / pkb_ann_graph_edges
/// gauges.
[[nodiscard]] std::shared_ptr<const AnnIndex> build_index(
    const VectorStore& store, const IndexSpec& spec);

}  // namespace pkb::vectordb
