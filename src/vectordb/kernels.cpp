#include "vectordb/kernels.h"

#include <cmath>
#include <limits>

#if defined(__x86_64__) && !defined(PKB_FORCE_SCALAR)
#include <immintrin.h>
#define PKB_KERNELS_X86 1
#elif defined(__aarch64__) && !defined(PKB_FORCE_SCALAR)
#include <arm_neon.h>
#define PKB_KERNELS_NEON 1
#endif

namespace pkb::vectordb::kernels {

namespace {

// ---------------------------------------------------------------------------
// Scalar backend — the portable reference. Sequential double accumulation is
// exactly the embed::dot contract; int32 accumulation is exact, so the int8
// kernel is the reference AND the specification for the SIMD backends.
// ---------------------------------------------------------------------------

float dot_f32_scalar(const float* a, const float* b, std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += static_cast<double>(a[i]) * b[i];
  }
  return static_cast<float>(acc);
}

void dots_trans_f32_scalar(const float* q, const float* trans,
                           std::size_t dim, std::size_t k, std::size_t ld,
                           float* out) {
  for (std::size_t c = 0; c < k; ++c) {
    double acc = 0.0;
    for (std::size_t d = 0; d < dim; ++d) {
      acc += static_cast<double>(q[d]) * trans[d * ld + c];
    }
    out[c] = static_cast<float>(acc);
  }
}

std::size_t nearest_trans_f32_scalar(const float* q, const float* trans,
                                     std::size_t dim, std::size_t k,
                                     std::size_t ld, const float* adjust) {
  std::size_t best_c = 0;
  float best = -std::numeric_limits<float>::infinity();
  for (std::size_t c = 0; c < k; ++c) {
    float acc = adjust ? adjust[c] : 0.0f;
    for (std::size_t d = 0; d < dim; ++d) {
      acc += q[d] * trans[d * ld + c];
    }
    if (acc > best) {
      best = acc;
      best_c = c;
    }
  }
  return best_c;
}

std::int32_t dot_i8_scalar(const std::int8_t* a, const std::int8_t* b,
                           std::size_t n) {
  std::int32_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += static_cast<std::int32_t>(a[i]) * b[i];
  }
  return acc;
}

float adc_f32_scalar(const float* lut, const std::uint8_t* codes,
                     std::size_t m) {
  double acc = 0.0;
  for (std::size_t s = 0; s < m; ++s) {
    acc += static_cast<double>(lut[s * kPqBook + codes[s]]);
  }
  return static_cast<float>(acc);
}

#if defined(PKB_KERNELS_X86)

// ---------------------------------------------------------------------------
// AVX2 backend. The fp32 kernel widens each 8-float step to two 4-double
// lanes and FMAs into double accumulators: float*float products are exact in
// double, so precision matches the scalar path (both round once, to float,
// at the end); only the association order differs, which top-k selection
// tolerates because every score in a process comes from this same kernel.
// The int8 kernel sign-extends to i16 and uses madd_epi16 (i16*i16 pairs
// summed into i32) — exact integer math, bit-identical to the scalar loop.
// ---------------------------------------------------------------------------

__attribute__((target("avx2,fma"))) float dot_f32_avx2(const float* a,
                                                       const float* b,
                                                       std::size_t n) {
  __m256d acc_lo = _mm256_setzero_pd();
  __m256d acc_hi = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 va = _mm256_loadu_ps(a + i);
    const __m256 vb = _mm256_loadu_ps(b + i);
    acc_lo = _mm256_fmadd_pd(_mm256_cvtps_pd(_mm256_castps256_ps128(va)),
                             _mm256_cvtps_pd(_mm256_castps256_ps128(vb)),
                             acc_lo);
    acc_hi = _mm256_fmadd_pd(_mm256_cvtps_pd(_mm256_extractf128_ps(va, 1)),
                             _mm256_cvtps_pd(_mm256_extractf128_ps(vb, 1)),
                             acc_hi);
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, _mm256_add_pd(acc_lo, acc_hi));
  double acc = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
  for (; i < n; ++i) {
    acc += static_cast<double>(a[i]) * b[i];
  }
  return static_cast<float>(acc);
}

__attribute__((target("avx2"))) std::int32_t dot_i8_avx2(const std::int8_t* a,
                                                         const std::int8_t* b,
                                                         std::size_t n) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const __m256i a_lo = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(va));
    const __m256i a_hi = _mm256_cvtepi8_epi16(_mm256_extracti128_si256(va, 1));
    const __m256i b_lo = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(vb));
    const __m256i b_hi = _mm256_cvtepi8_epi16(_mm256_extracti128_si256(vb, 1));
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(a_lo, b_lo));
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(a_hi, b_hi));
  }
  alignas(32) std::int32_t lanes[8];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  std::int32_t sum = 0;
  for (std::int32_t lane : lanes) sum += lane;
  for (; i < n; ++i) {
    sum += static_cast<std::int32_t>(a[i]) * b[i];
  }
  return sum;
}

// The transposed kernel runs 16 centroids per pass (four 4-double
// accumulators for ILP — a single chain would be FMA-latency-bound). Each
// lane's sum is the scalar sequential double accumulation exactly: products
// are exact in double and d advances in order, so out[] is bit-identical to
// dots_trans_f32_scalar.
__attribute__((target("avx2,fma"))) void dots_trans_f32_avx2(
    const float* q, const float* trans, std::size_t dim, std::size_t k,
    std::size_t ld, float* out) {
  std::size_t c = 0;
  for (; c + 16 <= k; c += 16) {
    __m256d a0 = _mm256_setzero_pd();
    __m256d a1 = _mm256_setzero_pd();
    __m256d a2 = _mm256_setzero_pd();
    __m256d a3 = _mm256_setzero_pd();
    for (std::size_t d = 0; d < dim; ++d) {
      const __m256d qd = _mm256_set1_pd(static_cast<double>(q[d]));
      const float* base = trans + d * ld + c;
      a0 = _mm256_fmadd_pd(qd, _mm256_cvtps_pd(_mm_loadu_ps(base)), a0);
      a1 = _mm256_fmadd_pd(qd, _mm256_cvtps_pd(_mm_loadu_ps(base + 4)), a1);
      a2 = _mm256_fmadd_pd(qd, _mm256_cvtps_pd(_mm_loadu_ps(base + 8)), a2);
      a3 = _mm256_fmadd_pd(qd, _mm256_cvtps_pd(_mm_loadu_ps(base + 12)), a3);
    }
    _mm_storeu_ps(out + c, _mm256_cvtpd_ps(a0));
    _mm_storeu_ps(out + c + 4, _mm256_cvtpd_ps(a1));
    _mm_storeu_ps(out + c + 8, _mm256_cvtpd_ps(a2));
    _mm_storeu_ps(out + c + 12, _mm256_cvtpd_ps(a3));
  }
  for (; c + 4 <= k; c += 4) {
    __m256d acc = _mm256_setzero_pd();
    for (std::size_t d = 0; d < dim; ++d) {
      acc = _mm256_fmadd_pd(_mm256_set1_pd(static_cast<double>(q[d])),
                            _mm256_cvtps_pd(_mm_loadu_ps(trans + d * ld + c)),
                            acc);
    }
    _mm_storeu_ps(out + c, _mm256_cvtpd_ps(acc));
  }
  for (; c < k; ++c) {
    double acc = 0.0;
    for (std::size_t d = 0; d < dim; ++d) {
      acc += static_cast<double>(q[d]) * trans[d * ld + c];
    }
    out[c] = static_cast<float>(acc);
  }
}

// Fused assignment: 8 single-precision scores per pass, running max and its
// column index kept in registers (strict-greater blend preserves the lowest
// index within each lane slot). The horizontal resolve picks the max lane,
// lowest index on ties, which reproduces the scalar first-index rule; the
// sub-8 tail merges after with the same strict-greater test, and its indices
// are always above every vector index.
__attribute__((target("avx2,fma"))) std::size_t nearest_trans_f32_avx2(
    const float* q, const float* trans, std::size_t dim, std::size_t k,
    std::size_t ld, const float* adjust) {
  std::size_t best_c = 0;
  float best = -std::numeric_limits<float>::infinity();
  std::size_t c = 0;
  if (k >= 16) {
    // Two independent running-max/index chains. The cmp→blend update is a
    // loop-carried dependency (several cycles), so one chain serializes the
    // whole column scan at small dim; interleaving two halves the critical
    // path. Chain 0 owns columns ≡ 0–7 (mod 16), chain 1 owns 8–15; the
    // final resolve applies the same strict-greater / lowest-index rule
    // across all 16 lane slots, so ties still go to the lowest column.
    __m256 vbest0 = _mm256_set1_ps(best);
    __m256 vbest1 = vbest0;
    __m256i vbidx0 = _mm256_setzero_si256();
    __m256i vbidx1 = _mm256_setzero_si256();
    __m256i vidx0 = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
    __m256i vidx1 = _mm256_setr_epi32(8, 9, 10, 11, 12, 13, 14, 15);
    const __m256i vstep = _mm256_set1_epi32(16);
    // Hoist query broadcasts out of the column loop at codebook-training
    // widths (PQ slices are dim 2) — set1 inside the loop re-issues per
    // 16-column block.
    __m256 qv_small[8];
    const std::size_t dh = dim <= 8 ? dim : 0;
    for (std::size_t d = 0; d < dh; ++d) qv_small[d] = _mm256_set1_ps(q[d]);
    for (; c + 16 <= k; c += 16) {
      __m256 acc0 =
          adjust ? _mm256_loadu_ps(adjust + c) : _mm256_setzero_ps();
      __m256 acc1 =
          adjust ? _mm256_loadu_ps(adjust + c + 8) : _mm256_setzero_ps();
      for (std::size_t d = 0; d < dim; ++d) {
        const __m256 qv = d < dh ? qv_small[d] : _mm256_set1_ps(q[d]);
        acc0 = _mm256_fmadd_ps(qv, _mm256_loadu_ps(trans + d * ld + c), acc0);
        acc1 =
            _mm256_fmadd_ps(qv, _mm256_loadu_ps(trans + d * ld + c + 8), acc1);
      }
      const __m256 gt0 = _mm256_cmp_ps(acc0, vbest0, _CMP_GT_OQ);
      const __m256 gt1 = _mm256_cmp_ps(acc1, vbest1, _CMP_GT_OQ);
      vbest0 = _mm256_blendv_ps(vbest0, acc0, gt0);
      vbest1 = _mm256_blendv_ps(vbest1, acc1, gt1);
      vbidx0 = _mm256_blendv_epi8(vbidx0, vidx0, _mm256_castps_si256(gt0));
      vbidx1 = _mm256_blendv_epi8(vbidx1, vidx1, _mm256_castps_si256(gt1));
      vidx0 = _mm256_add_epi32(vidx0, vstep);
      vidx1 = _mm256_add_epi32(vidx1, vstep);
    }
    // Branch-free resolve (the scalar 16-lane loop dominated per-call cost
    // at training widths): horizontal max of both chains, then the lowest
    // column index among max-equal lanes — non-max lanes are masked to
    // INT_MAX before a horizontal min, preserving the tie-to-lowest rule.
    const __m256 vm = _mm256_max_ps(vbest0, vbest1);
    __m128 m4 = _mm_max_ps(_mm256_castps256_ps128(vm),
                           _mm256_extractf128_ps(vm, 1));
    m4 = _mm_max_ps(m4, _mm_movehl_ps(m4, m4));
    m4 = _mm_max_ss(m4, _mm_shuffle_ps(m4, m4, 1));
    const float chain_best = _mm_cvtss_f32(m4);
    const __m256 vmax = _mm256_set1_ps(chain_best);
    const __m256i big = _mm256_set1_epi32(
        std::numeric_limits<std::int32_t>::max());
    const __m256i cand0 = _mm256_blendv_epi8(
        big, vbidx0,
        _mm256_castps_si256(_mm256_cmp_ps(vbest0, vmax, _CMP_EQ_OQ)));
    const __m256i cand1 = _mm256_blendv_epi8(
        big, vbidx1,
        _mm256_castps_si256(_mm256_cmp_ps(vbest1, vmax, _CMP_EQ_OQ)));
    const __m256i cmin = _mm256_min_epi32(cand0, cand1);
    __m128i c4 = _mm_min_epi32(_mm256_castsi256_si128(cmin),
                               _mm256_extracti128_si256(cmin, 1));
    c4 = _mm_min_epi32(c4, _mm_shuffle_epi32(c4, 0x4E));
    c4 = _mm_min_epi32(c4, _mm_shuffle_epi32(c4, 0xB1));
    best = chain_best;
    best_c = static_cast<std::size_t>(
        static_cast<std::uint32_t>(_mm_cvtsi128_si32(c4)));
  }
  if (c + 8 <= k) {
    // At most one 8-wide remainder block after the 16-wide loop.
    __m256 acc = adjust ? _mm256_loadu_ps(adjust + c) : _mm256_setzero_ps();
    for (std::size_t d = 0; d < dim; ++d) {
      acc = _mm256_fmadd_ps(_mm256_set1_ps(q[d]),
                            _mm256_loadu_ps(trans + d * ld + c), acc);
    }
    alignas(32) float lane_best[8];
    _mm256_store_ps(lane_best, acc);
    for (int l = 0; l < 8; ++l) {
      const std::size_t idx = c + static_cast<std::size_t>(l);
      if (lane_best[l] > best || (lane_best[l] == best && idx < best_c)) {
        best = lane_best[l];
        best_c = idx;
      }
    }
    c += 8;
  }
  for (; c < k; ++c) {
    float acc = adjust ? adjust[c] : 0.0f;
    for (std::size_t d = 0; d < dim; ++d) {
      acc += q[d] * trans[d * ld + c];
    }
    if (acc > best) {
      best = acc;
      best_c = c;
    }
  }
  return best_c;
}

// The ADC kernel gathers 8 LUT entries per step: 8 code bytes widen to i32
// lane indices, each offset by its sub-quantizer's table base (s * kPqBook),
// one vgatherdps pulls the floats, and the accumulation widens to the same
// two 4-double lanes as dot_f32_avx2. The gathered summands are the exact
// floats the scalar loop reads, so only association order differs.
__attribute__((target("avx2"))) float adc_f32_avx2(const float* lut,
                                                   const std::uint8_t* codes,
                                                   std::size_t m) {
  __m256d acc_lo = _mm256_setzero_pd();
  __m256d acc_hi = _mm256_setzero_pd();
  constexpr int kB = static_cast<int>(kPqBook);
  const __m256i lane_base = _mm256_setr_epi32(0, 1 * kB, 2 * kB, 3 * kB,
                                              4 * kB, 5 * kB, 6 * kB, 7 * kB);
  std::size_t s = 0;
  for (; s + 8 <= m; s += 8) {
    const __m128i raw =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(codes + s));
    const __m256i idx = _mm256_add_epi32(
        _mm256_cvtepu8_epi32(raw),
        _mm256_add_epi32(lane_base,
                         _mm256_set1_epi32(static_cast<int>(s * kPqBook))));
    const __m256 gathered = _mm256_i32gather_ps(lut, idx, 4);
    acc_lo = _mm256_add_pd(
        acc_lo, _mm256_cvtps_pd(_mm256_castps256_ps128(gathered)));
    acc_hi = _mm256_add_pd(
        acc_hi, _mm256_cvtps_pd(_mm256_extractf128_ps(gathered, 1)));
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, _mm256_add_pd(acc_lo, acc_hi));
  double acc = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
  for (; s < m; ++s) {
    acc += static_cast<double>(lut[s * kPqBook + codes[s]]);
  }
  return static_cast<float>(acc);
}

#elif defined(PKB_KERNELS_NEON)

// NEON backend (aarch64). float64x2 accumulation mirrors the AVX2 shape:
// widen 4-float steps to two 2-double lanes; int8 via vmull_s8 → i16 pairs
// accumulated with vpadalq into i32 (exact).

float dot_f32_neon(const float* a, const float* b, std::size_t n) {
  float64x2_t acc_lo = vdupq_n_f64(0.0);
  float64x2_t acc_hi = vdupq_n_f64(0.0);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float32x4_t va = vld1q_f32(a + i);
    const float32x4_t vb = vld1q_f32(b + i);
    acc_lo = vfmaq_f64(acc_lo, vcvt_f64_f32(vget_low_f32(va)),
                       vcvt_f64_f32(vget_low_f32(vb)));
    acc_hi = vfmaq_f64(acc_hi, vcvt_f64_f32(vget_high_f32(va)),
                       vcvt_f64_f32(vget_high_f32(vb)));
  }
  double acc = vaddvq_f64(acc_lo) + vaddvq_f64(acc_hi);
  for (; i < n; ++i) {
    acc += static_cast<double>(a[i]) * b[i];
  }
  return static_cast<float>(acc);
}

// 8 centroids per pass, four 2-double accumulators; like the AVX2 leg, each
// lane accumulates sequentially over d so results match the scalar kernel.
void dots_trans_f32_neon(const float* q, const float* trans, std::size_t dim,
                         std::size_t k, std::size_t ld, float* out) {
  std::size_t c = 0;
  for (; c + 8 <= k; c += 8) {
    float64x2_t a0 = vdupq_n_f64(0.0);
    float64x2_t a1 = vdupq_n_f64(0.0);
    float64x2_t a2 = vdupq_n_f64(0.0);
    float64x2_t a3 = vdupq_n_f64(0.0);
    for (std::size_t d = 0; d < dim; ++d) {
      const float64x2_t qd = vdupq_n_f64(static_cast<double>(q[d]));
      const float* base = trans + d * ld + c;
      a0 = vfmaq_f64(a0, qd, vcvt_f64_f32(vld1_f32(base)));
      a1 = vfmaq_f64(a1, qd, vcvt_f64_f32(vld1_f32(base + 2)));
      a2 = vfmaq_f64(a2, qd, vcvt_f64_f32(vld1_f32(base + 4)));
      a3 = vfmaq_f64(a3, qd, vcvt_f64_f32(vld1_f32(base + 6)));
    }
    vst1_f32(out + c, vcvt_f32_f64(a0));
    vst1_f32(out + c + 2, vcvt_f32_f64(a1));
    vst1_f32(out + c + 4, vcvt_f32_f64(a2));
    vst1_f32(out + c + 6, vcvt_f32_f64(a3));
  }
  for (; c < k; ++c) {
    double acc = 0.0;
    for (std::size_t d = 0; d < dim; ++d) {
      acc += static_cast<double>(q[d]) * trans[d * ld + c];
    }
    out[c] = static_cast<float>(acc);
  }
}

// Fused assignment, 4 single-precision scores per pass with in-register
// running max + index (strict-greater select keeps the lowest index per lane
// slot); horizontal resolve and tail merging follow the AVX2 leg's rule, so
// the scalar first-index tie-break is reproduced.
std::size_t nearest_trans_f32_neon(const float* q, const float* trans,
                                   std::size_t dim, std::size_t k,
                                   std::size_t ld, const float* adjust) {
  std::size_t best_c = 0;
  float best = -std::numeric_limits<float>::infinity();
  std::size_t c = 0;
  if (k >= 8) {
    // Two independent running-max chains, mirroring the AVX2 kernel: the
    // cmp→bsl update is loop-carried, so interleaving two chains halves the
    // critical path. The final resolve keeps the lowest column on ties.
    float32x4_t vbest0 = vdupq_n_f32(best);
    float32x4_t vbest1 = vdupq_n_f32(best);
    uint32x4_t vbidx0 = vdupq_n_u32(0);
    uint32x4_t vbidx1 = vdupq_n_u32(0);
    const uint32x4_t step = vdupq_n_u32(8);
    uint32x4_t vidx0 = {0u, 1u, 2u, 3u};
    uint32x4_t vidx1 = {4u, 5u, 6u, 7u};
    for (; c + 8 <= k; c += 8) {
      float32x4_t acc0 = adjust ? vld1q_f32(adjust + c) : vdupq_n_f32(0.0f);
      float32x4_t acc1 =
          adjust ? vld1q_f32(adjust + c + 4) : vdupq_n_f32(0.0f);
      for (std::size_t d = 0; d < dim; ++d) {
        acc0 = vfmaq_n_f32(acc0, vld1q_f32(trans + d * ld + c), q[d]);
        acc1 = vfmaq_n_f32(acc1, vld1q_f32(trans + d * ld + c + 4), q[d]);
      }
      const uint32x4_t gt0 = vcgtq_f32(acc0, vbest0);
      const uint32x4_t gt1 = vcgtq_f32(acc1, vbest1);
      vbest0 = vbslq_f32(gt0, acc0, vbest0);
      vbest1 = vbslq_f32(gt1, acc1, vbest1);
      vbidx0 = vbslq_u32(gt0, vidx0, vbidx0);
      vbidx1 = vbslq_u32(gt1, vidx1, vbidx1);
      vidx0 = vaddq_u32(vidx0, step);
      vidx1 = vaddq_u32(vidx1, step);
    }
    float lane_best[8];
    std::uint32_t lane_idx[8];
    vst1q_f32(lane_best, vbest0);
    vst1q_f32(lane_best + 4, vbest1);
    vst1q_u32(lane_idx, vbidx0);
    vst1q_u32(lane_idx + 4, vbidx1);
    for (int l = 0; l < 8; ++l) {
      const auto idx = static_cast<std::size_t>(lane_idx[l]);
      if (lane_best[l] > best || (lane_best[l] == best && idx < best_c)) {
        best = lane_best[l];
        best_c = idx;
      }
    }
  }
  if (c + 4 <= k) {
    // At most one 4-wide remainder block after the 8-wide loop.
    float32x4_t acc = adjust ? vld1q_f32(adjust + c) : vdupq_n_f32(0.0f);
    for (std::size_t d = 0; d < dim; ++d) {
      acc = vfmaq_n_f32(acc, vld1q_f32(trans + d * ld + c), q[d]);
    }
    float lane_best[4];
    vst1q_f32(lane_best, acc);
    for (int l = 0; l < 4; ++l) {
      const std::size_t idx = c + static_cast<std::size_t>(l);
      if (lane_best[l] > best || (lane_best[l] == best && idx < best_c)) {
        best = lane_best[l];
        best_c = idx;
      }
    }
    c += 4;
  }
  for (; c < k; ++c) {
    float acc = adjust ? adjust[c] : 0.0f;
    for (std::size_t d = 0; d < dim; ++d) {
      acc += q[d] * trans[d * ld + c];
    }
    if (acc > best) {
      best = acc;
      best_c = c;
    }
  }
  return best_c;
}

std::int32_t dot_i8_neon(const std::int8_t* a, const std::int8_t* b,
                         std::size_t n) {
  int32x4_t acc = vdupq_n_s32(0);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const int8x16_t va = vld1q_s8(a + i);
    const int8x16_t vb = vld1q_s8(b + i);
    acc = vpadalq_s16(acc, vmull_s8(vget_low_s8(va), vget_low_s8(vb)));
    acc = vpadalq_s16(acc, vmull_s8(vget_high_s8(va), vget_high_s8(vb)));
  }
  std::int32_t sum = vaddvq_s32(acc);
  for (; i < n; ++i) {
    sum += static_cast<std::int32_t>(a[i]) * b[i];
  }
  return sum;
}

#endif

// ---------------------------------------------------------------------------
// Dispatch: resolved once per process at first kernel use. All scores in a
// process therefore come from one backend — the invariant the bit-exactness
// gates (single vs batch, shard vs monolithic, rerank vs flat) rest on.
// ---------------------------------------------------------------------------

using DotF32Fn = float (*)(const float*, const float*, std::size_t);
using DotI8Fn = std::int32_t (*)(const std::int8_t*, const std::int8_t*,
                                 std::size_t);
using AdcF32Fn = float (*)(const float*, const std::uint8_t*, std::size_t);
using DotsTransF32Fn = void (*)(const float*, const float*, std::size_t,
                                std::size_t, std::size_t, float*);
using NearestTransF32Fn = std::size_t (*)(const float*, const float*,
                                          std::size_t, std::size_t,
                                          std::size_t, const float*);

struct Backend {
  DotF32Fn dot_f32;
  DotI8Fn dot_i8;
  AdcF32Fn adc_f32;
  DotsTransF32Fn dots_trans_f32;
  NearestTransF32Fn nearest_trans_f32;
  std::string_view name;
};

Backend select_backend() {
#if defined(PKB_KERNELS_X86)
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return Backend{dot_f32_avx2,        dot_i8_avx2,
                   adc_f32_avx2,        dots_trans_f32_avx2,
                   nearest_trans_f32_avx2, "avx2"};
  }
#elif defined(PKB_KERNELS_NEON)
  // aarch64 has no float gather; the table walk stays scalar (it is cheap —
  // m loads per row — and keeps the summand set identical).
  return Backend{dot_f32_neon,        dot_i8_neon,
                 adc_f32_scalar,      dots_trans_f32_neon,
                 nearest_trans_f32_neon, "neon"};
#endif
  return Backend{dot_f32_scalar,        dot_i8_scalar,
                 adc_f32_scalar,        dots_trans_f32_scalar,
                 nearest_trans_f32_scalar, "scalar"};
}

const Backend& backend() {
  static const Backend b = select_backend();
  return b;
}

}  // namespace

std::string_view backend_name() { return backend().name; }

float dot_f32(const float* a, const float* b, std::size_t n) {
  return backend().dot_f32(a, b, n);
}

void dots_f32(const float* query, const float* rows_base, std::size_t rows,
              std::size_t stride, float* out) {
  const DotF32Fn dot = backend().dot_f32;
  for (std::size_t r = 0; r < rows; ++r) {
    out[r] = dot(query, rows_base + r * stride, stride);
  }
}

void dots_trans_f32(const float* q, const float* trans, std::size_t dim,
                    std::size_t k, std::size_t ld, float* out) {
  backend().dots_trans_f32(q, trans, dim, k, ld, out);
}

std::size_t nearest_trans_f32(const float* q, const float* trans,
                              std::size_t dim, std::size_t k, std::size_t ld,
                              const float* adjust) {
  return backend().nearest_trans_f32(q, trans, dim, k, ld, adjust);
}

std::int32_t dot_i8(const std::int8_t* a, const std::int8_t* b,
                    std::size_t n) {
  return backend().dot_i8(a, b, n);
}

float adc_f32(const float* lut, const std::uint8_t* codes, std::size_t m) {
  return backend().adc_f32(lut, codes, m);
}

void adc_scores(const float* lut, const std::uint8_t* codes_base,
                std::size_t rows, std::size_t m, std::size_t stride,
                float* out) {
  const AdcF32Fn adc = backend().adc_f32;
  for (std::size_t r = 0; r < rows; ++r) {
    out[r] = adc(lut, codes_base + r * stride, m);
  }
}

// ---------------------------------------------------------------------------
// Packed layouts.
// ---------------------------------------------------------------------------

void PackedF32::append(const float* row) {
  buf_.resize((rows_ + 1) * stride_ * sizeof(float));
  float* dst = buf_.as<float>() + rows_ * stride_;
  for (std::size_t d = 0; d < dim_; ++d) dst[d] = row[d];
  // Tail lanes [dim_, stride_) are zero via AlignedBuffer's zero-fill.
  ++rows_;
}

void PackedF32::set_row(std::size_t r, const float* row) {
  float* dst = buf_.as<float>() + r * stride_;
  for (std::size_t d = 0; d < dim_; ++d) dst[d] = row[d];
}

void PackedF32::pack_query(const float* query, float* scratch) const {
  std::size_t d = 0;
  for (; d < dim_; ++d) scratch[d] = query[d];
  for (; d < stride_; ++d) scratch[d] = 0.0f;
}

void PackedF32::score_range(const float* packed_query, std::size_t begin,
                            std::size_t end, float* out) const {
  dots_f32(packed_query, row(begin), end - begin, stride_, out);
}

void PackedI8::append(const std::int8_t* codes, float scale) {
  buf_.resize((rows_ + 1) * stride_ * sizeof(std::int8_t));
  std::int8_t* dst = buf_.as<std::int8_t>() + rows_ * stride_;
  for (std::size_t d = 0; d < dim_; ++d) dst[d] = codes[d];
  scales_.push_back(scale);
  ++rows_;
}

void PackedI8::score_range(const std::int8_t* query_codes, float query_scale,
                           std::size_t begin, std::size_t end,
                           float* out) const {
  const DotI8Fn dot = backend().dot_i8;
  const std::int8_t* base = buf_.as<std::int8_t>();
  for (std::size_t r = begin; r < end; ++r) {
    out[r - begin] = query_scale * scales_[r] *
                     static_cast<float>(
                         dot(query_codes, base + r * stride_, stride_));
  }
}

}  // namespace pkb::vectordb::kernels
