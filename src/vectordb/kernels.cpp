#include "vectordb/kernels.h"

#include <cmath>

#if defined(__x86_64__) && !defined(PKB_FORCE_SCALAR)
#include <immintrin.h>
#define PKB_KERNELS_X86 1
#elif defined(__aarch64__) && !defined(PKB_FORCE_SCALAR)
#include <arm_neon.h>
#define PKB_KERNELS_NEON 1
#endif

namespace pkb::vectordb::kernels {

namespace {

// ---------------------------------------------------------------------------
// Scalar backend — the portable reference. Sequential double accumulation is
// exactly the embed::dot contract; int32 accumulation is exact, so the int8
// kernel is the reference AND the specification for the SIMD backends.
// ---------------------------------------------------------------------------

float dot_f32_scalar(const float* a, const float* b, std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += static_cast<double>(a[i]) * b[i];
  }
  return static_cast<float>(acc);
}

std::int32_t dot_i8_scalar(const std::int8_t* a, const std::int8_t* b,
                           std::size_t n) {
  std::int32_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += static_cast<std::int32_t>(a[i]) * b[i];
  }
  return acc;
}

#if defined(PKB_KERNELS_X86)

// ---------------------------------------------------------------------------
// AVX2 backend. The fp32 kernel widens each 8-float step to two 4-double
// lanes and FMAs into double accumulators: float*float products are exact in
// double, so precision matches the scalar path (both round once, to float,
// at the end); only the association order differs, which top-k selection
// tolerates because every score in a process comes from this same kernel.
// The int8 kernel sign-extends to i16 and uses madd_epi16 (i16*i16 pairs
// summed into i32) — exact integer math, bit-identical to the scalar loop.
// ---------------------------------------------------------------------------

__attribute__((target("avx2,fma"))) float dot_f32_avx2(const float* a,
                                                       const float* b,
                                                       std::size_t n) {
  __m256d acc_lo = _mm256_setzero_pd();
  __m256d acc_hi = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 va = _mm256_loadu_ps(a + i);
    const __m256 vb = _mm256_loadu_ps(b + i);
    acc_lo = _mm256_fmadd_pd(_mm256_cvtps_pd(_mm256_castps256_ps128(va)),
                             _mm256_cvtps_pd(_mm256_castps256_ps128(vb)),
                             acc_lo);
    acc_hi = _mm256_fmadd_pd(_mm256_cvtps_pd(_mm256_extractf128_ps(va, 1)),
                             _mm256_cvtps_pd(_mm256_extractf128_ps(vb, 1)),
                             acc_hi);
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, _mm256_add_pd(acc_lo, acc_hi));
  double acc = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
  for (; i < n; ++i) {
    acc += static_cast<double>(a[i]) * b[i];
  }
  return static_cast<float>(acc);
}

__attribute__((target("avx2"))) std::int32_t dot_i8_avx2(const std::int8_t* a,
                                                         const std::int8_t* b,
                                                         std::size_t n) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const __m256i a_lo = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(va));
    const __m256i a_hi = _mm256_cvtepi8_epi16(_mm256_extracti128_si256(va, 1));
    const __m256i b_lo = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(vb));
    const __m256i b_hi = _mm256_cvtepi8_epi16(_mm256_extracti128_si256(vb, 1));
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(a_lo, b_lo));
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(a_hi, b_hi));
  }
  alignas(32) std::int32_t lanes[8];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  std::int32_t sum = 0;
  for (std::int32_t lane : lanes) sum += lane;
  for (; i < n; ++i) {
    sum += static_cast<std::int32_t>(a[i]) * b[i];
  }
  return sum;
}

#elif defined(PKB_KERNELS_NEON)

// NEON backend (aarch64). float64x2 accumulation mirrors the AVX2 shape:
// widen 4-float steps to two 2-double lanes; int8 via vmull_s8 → i16 pairs
// accumulated with vpadalq into i32 (exact).

float dot_f32_neon(const float* a, const float* b, std::size_t n) {
  float64x2_t acc_lo = vdupq_n_f64(0.0);
  float64x2_t acc_hi = vdupq_n_f64(0.0);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float32x4_t va = vld1q_f32(a + i);
    const float32x4_t vb = vld1q_f32(b + i);
    acc_lo = vfmaq_f64(acc_lo, vcvt_f64_f32(vget_low_f32(va)),
                       vcvt_f64_f32(vget_low_f32(vb)));
    acc_hi = vfmaq_f64(acc_hi, vcvt_f64_f32(vget_high_f32(va)),
                       vcvt_f64_f32(vget_high_f32(vb)));
  }
  double acc = vaddvq_f64(acc_lo) + vaddvq_f64(acc_hi);
  for (; i < n; ++i) {
    acc += static_cast<double>(a[i]) * b[i];
  }
  return static_cast<float>(acc);
}

std::int32_t dot_i8_neon(const std::int8_t* a, const std::int8_t* b,
                         std::size_t n) {
  int32x4_t acc = vdupq_n_s32(0);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const int8x16_t va = vld1q_s8(a + i);
    const int8x16_t vb = vld1q_s8(b + i);
    acc = vpadalq_s16(acc, vmull_s8(vget_low_s8(va), vget_low_s8(vb)));
    acc = vpadalq_s16(acc, vmull_s8(vget_high_s8(va), vget_high_s8(vb)));
  }
  std::int32_t sum = vaddvq_s32(acc);
  for (; i < n; ++i) {
    sum += static_cast<std::int32_t>(a[i]) * b[i];
  }
  return sum;
}

#endif

// ---------------------------------------------------------------------------
// Dispatch: resolved once per process at first kernel use. All scores in a
// process therefore come from one backend — the invariant the bit-exactness
// gates (single vs batch, shard vs monolithic, rerank vs flat) rest on.
// ---------------------------------------------------------------------------

using DotF32Fn = float (*)(const float*, const float*, std::size_t);
using DotI8Fn = std::int32_t (*)(const std::int8_t*, const std::int8_t*,
                                 std::size_t);

struct Backend {
  DotF32Fn dot_f32;
  DotI8Fn dot_i8;
  std::string_view name;
};

Backend select_backend() {
#if defined(PKB_KERNELS_X86)
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return Backend{dot_f32_avx2, dot_i8_avx2, "avx2"};
  }
#elif defined(PKB_KERNELS_NEON)
  return Backend{dot_f32_neon, dot_i8_neon, "neon"};
#endif
  return Backend{dot_f32_scalar, dot_i8_scalar, "scalar"};
}

const Backend& backend() {
  static const Backend b = select_backend();
  return b;
}

}  // namespace

std::string_view backend_name() { return backend().name; }

float dot_f32(const float* a, const float* b, std::size_t n) {
  return backend().dot_f32(a, b, n);
}

void dots_f32(const float* query, const float* rows_base, std::size_t rows,
              std::size_t stride, float* out) {
  const DotF32Fn dot = backend().dot_f32;
  for (std::size_t r = 0; r < rows; ++r) {
    out[r] = dot(query, rows_base + r * stride, stride);
  }
}

std::int32_t dot_i8(const std::int8_t* a, const std::int8_t* b,
                    std::size_t n) {
  return backend().dot_i8(a, b, n);
}

// ---------------------------------------------------------------------------
// Packed layouts.
// ---------------------------------------------------------------------------

void PackedF32::append(const float* row) {
  buf_.resize((rows_ + 1) * stride_ * sizeof(float));
  float* dst = buf_.as<float>() + rows_ * stride_;
  for (std::size_t d = 0; d < dim_; ++d) dst[d] = row[d];
  // Tail lanes [dim_, stride_) are zero via AlignedBuffer's zero-fill.
  ++rows_;
}

void PackedF32::pack_query(const float* query, float* scratch) const {
  std::size_t d = 0;
  for (; d < dim_; ++d) scratch[d] = query[d];
  for (; d < stride_; ++d) scratch[d] = 0.0f;
}

void PackedF32::score_range(const float* packed_query, std::size_t begin,
                            std::size_t end, float* out) const {
  dots_f32(packed_query, row(begin), end - begin, stride_, out);
}

void PackedI8::append(const std::int8_t* codes, float scale) {
  buf_.resize((rows_ + 1) * stride_ * sizeof(std::int8_t));
  std::int8_t* dst = buf_.as<std::int8_t>() + rows_ * stride_;
  for (std::size_t d = 0; d < dim_; ++d) dst[d] = codes[d];
  scales_.push_back(scale);
  ++rows_;
}

void PackedI8::score_range(const std::int8_t* query_codes, float query_scale,
                           std::size_t begin, std::size_t end,
                           float* out) const {
  const DotI8Fn dot = backend().dot_i8;
  const std::int8_t* base = buf_.as<std::int8_t>();
  for (std::size_t r = begin; r < end; ++r) {
    out[r - begin] = query_scale * scales_[r] *
                     static_cast<float>(
                         dot(query_codes, base + r * stride_, stride_));
  }
}

}  // namespace pkb::vectordb::kernels
