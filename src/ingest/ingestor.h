#pragma once
// Live knowledge-base ingestion — the paper's central curation loop (§II,
// §V): resolved conversations and new documentation flow back into the
// corpus so the next question retrieves from a richer knowledge base,
// without a process restart.
//
// The Ingestor builds the *next* generation off to the side of serving
// traffic: it pins the current Snapshot as its base, chunks the incoming
// documents with the base's splitter options, merges them with the retained
// base chunks (upsert by "source": re-ingesting a source replaces its old
// chunks), embeds only what is new, rebuilds the symbol index, and publishes
// the result through KnowledgeBase::publish() — one atomic pointer swap.
//
// Embedder lifecycle: a delta build reuses the base's fitted embedder and
// copies retained vectors bit-identically (VectorStore::add_prenormalized),
// so existing chunks score exactly as before. When the chunk list has
// drifted more than `refit_drift_threshold` since the embedder was last
// fitted, the build refits on the full merged corpus and re-embeds
// everything — retrieval quality tracks the corpus at a bounded cost.
//
// Observable as the ingest_build span, the pkb_ingest_* counters and
// histogram, and the knowledge base's own generation gauge and kb_swap span
// (docs/OBSERVABILITY.md).

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "history/store.h"
#include "rag/knowledge_base.h"
#include "resilience/fault_plan.h"

namespace pkb::ingest {

struct IngestorOptions {
  /// Fractional chunk-count growth since the last embedder fit that
  /// triggers a full refit + re-embed instead of a delta merge.
  double refit_drift_threshold = 0.25;
  /// Minimum mean blind score (Table I rubric, 0..4) for a history record
  /// to qualify for ingest_vetted_history().
  double min_mean_score = 3.0;
  /// Also ingest unscored human-authored answers (model == "").
  bool trust_unscored_human = true;
};

/// Cumulative ingestion statistics (monotonic).
struct IngestStats {
  std::uint64_t builds = 0;        ///< generations built and published
  std::uint64_t docs = 0;          ///< source documents ingested
  std::uint64_t chunks_added = 0;  ///< new chunks embedded
  std::uint64_t refits = 0;        ///< builds that refitted the embedder
  std::uint64_t aborted_builds = 0;  ///< builds lost to injected faults
};

/// Builds and publishes knowledge-base generations. All entry points are
/// serialized internally, so concurrent callers (the chat bot's resolution
/// hook, a docs watcher) cannot race a build; readers of the KnowledgeBase
/// are never blocked.
class Ingestor {
 public:
  /// `kb` must outlive the ingestor.
  explicit Ingestor(rag::KnowledgeBase& kb, IngestorOptions opts = {});

  /// Ingest Markdown files: chunk, merge (upsert by path), publish. Returns
  /// the published snapshot, or nullptr when `files` is empty.
  rag::SnapshotPtr ingest_files(const text::VirtualDir& files);

  /// Ingest one resolved Q&A exchange as a synthetic Markdown document with
  /// path `source_id` (re-ingesting the same id updates it in place).
  rag::SnapshotPtr ingest_qa(std::string_view source_id,
                             std::string_view title, std::string_view question,
                             std::string_view answer);

  /// Ingest every vetted record of `store` (mean score >= min_mean_score,
  /// plus unscored human answers when trusted) that has not been ingested by
  /// this Ingestor before. One new generation for the whole batch; returns
  /// nullptr when nothing qualifies.
  rag::SnapshotPtr ingest_vetted_history(const history::HistoryStore& store);

  [[nodiscard]] IngestStats stats() const;
  /// Seconds spent inside each publish's swap critical section, in publish
  /// order (what bench/ingest_swap summarizes).
  [[nodiscard]] std::vector<double> swap_history() const;

  /// Attach a chaos plan (Stage::Ingest). A transient fault earns the build
  /// one immediate retry; a permanent or timeout fault aborts the build —
  /// the base generation stays published and the entry point returns
  /// nullptr (counted in stats().aborted_builds and
  /// pkb_resilience_ingest_aborts_total). Setup-time only; the plan must
  /// outlive the ingestor.
  void set_fault_plan(const resilience::FaultPlan* plan) {
    fault_plan_ = plan;
  }

  [[nodiscard]] const rag::KnowledgeBase& kb() const { return kb_; }
  [[nodiscard]] const IngestorOptions& options() const { return opts_; }

 private:
  /// Chunk `files`, merge with the pinned base, build + publish the next
  /// generation. Caller holds mu_.
  rag::SnapshotPtr build_and_publish_locked(const text::VirtualDir& files);

  rag::KnowledgeBase& kb_;
  IngestorOptions opts_;
  const resilience::FaultPlan* fault_plan_ = nullptr;
  mutable std::mutex mu_;  ///< serializes builds and guards the state below
  IngestStats stats_;
  std::vector<double> swap_seconds_;
  std::unordered_set<std::uint64_t> ingested_history_ids_;
};

}  // namespace pkb::ingest
