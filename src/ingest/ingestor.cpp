#include "ingest/ingestor.h"

#include <cmath>
#include <string>
#include <unordered_set>
#include <utility>

#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/clock.h"
#include "util/log.h"

namespace pkb::ingest {

Ingestor::Ingestor(rag::KnowledgeBase& kb, IngestorOptions opts)
    : kb_(kb), opts_(opts) {}

rag::SnapshotPtr Ingestor::ingest_files(const text::VirtualDir& files) {
  if (files.empty()) return nullptr;
  std::lock_guard<std::mutex> lock(mu_);
  return build_and_publish_locked(files);
}

rag::SnapshotPtr Ingestor::ingest_qa(std::string_view source_id,
                                     std::string_view title,
                                     std::string_view question,
                                     std::string_view answer) {
  text::VirtualFile file;
  file.path = std::string(source_id);
  file.content = "# " + std::string(title) + "\n\n## Question\n\n" +
                 std::string(question) + "\n\n## Answer\n\n" +
                 std::string(answer) + "\n";
  std::lock_guard<std::mutex> lock(mu_);
  return build_and_publish_locked({std::move(file)});
}

rag::SnapshotPtr Ingestor::ingest_vetted_history(
    const history::HistoryStore& store) {
  const std::vector<history::InteractionRecord> vetted =
      store.vetted_records(opts_.min_mean_score, opts_.trust_unscored_human);
  std::lock_guard<std::mutex> lock(mu_);
  text::VirtualDir files;
  for (const history::InteractionRecord& record : vetted) {
    if (ingested_history_ids_.contains(record.id)) continue;
    text::VirtualFile file;
    file.path = "history/qa-" + std::to_string(record.id) + ".md";
    std::string title = record.question.substr(0, 72);
    file.content = "# Resolved: " + title + "\n\n## Question\n\n" +
                   record.question + "\n\n## Answer\n\n" + record.response +
                   "\n";
    files.push_back(std::move(file));
    ingested_history_ids_.insert(record.id);
  }
  if (files.empty()) return nullptr;
  return build_and_publish_locked(files);
}

rag::SnapshotPtr Ingestor::build_and_publish_locked(
    const text::VirtualDir& files) {
  obs::MetricsRegistry& metrics = obs::global_metrics();

  // Chaos gate: a transient fault earns one immediate retry; a permanent or
  // timeout fault aborts this build — readers keep the base generation.
  if (fault_plan_ != nullptr) {
    const auto abort_build = [this](const char* reason) -> rag::SnapshotPtr {
      obs::global_metrics()
          .counter(obs::kResilienceIngestAbortsTotal, {{"reason", reason}})
          .inc();
      stats_.aborted_builds += 1;
      PKB_LOG(Warn, "ingest")
          << "build aborted (" << reason << " fault); base generation kept";
      return nullptr;
    };
    bool retried = false;
    for (;;) {
      try {
        resilience::consult(fault_plan_, resilience::Stage::Ingest);
        break;
      } catch (const resilience::TransientError&) {
        if (!retried) {
          retried = true;
          continue;
        }
        return abort_build("transient");
      } catch (const resilience::TimeoutError&) {
        return abort_build("timeout");
      } catch (const resilience::PermanentError&) {
        return abort_build("permanent");
      }
    }
  }

  const rag::SnapshotPtr base = kb_.snapshot();

  obs::Span span(obs::global_tracer(), obs::kSpanIngestBuild);
  span.set_attr("base_generation", base->generation);
  span.set_attr("files", files.size());
  pkb::util::Stopwatch watch;

  // Chunk the incoming documents exactly as the initial build did.
  const text::MarkdownLoader md_loader(text::MarkdownMode::Single,
                                       /*drop_headings=*/true);
  const std::vector<text::Document> docs = md_loader.load(files);
  const text::RecursiveCharacterTextSplitter splitter(base->opts.splitter);
  std::vector<text::Document> new_chunks = splitter.split_documents(docs);

  // Upsert semantics: a re-ingested source replaces its previous chunks.
  std::unordered_set<std::string_view> new_sources;
  for (const text::VirtualFile& file : files) new_sources.insert(file.path);

  auto next = std::make_shared<rag::Snapshot>();
  next->generation = base->generation + 1;
  next->opts = base->opts;

  std::vector<std::size_t> retained;
  retained.reserve(base->chunks.size());
  for (std::size_t i = 0; i < base->chunks.size(); ++i) {
    if (!new_sources.contains(base->chunks[i].meta("source"))) {
      retained.push_back(i);
    }
  }
  next->chunks.reserve(retained.size() + new_chunks.size());
  for (std::size_t i : retained) next->chunks.push_back(base->chunks[i]);
  for (text::Document& chunk : new_chunks) {
    next->chunks.push_back(std::move(chunk));
  }
  const std::size_t n_new = next->chunks.size() - retained.size();

  // Refit when the chunk list has drifted too far from the corpus the
  // embedder was fitted on; otherwise delta-merge with the base embedder.
  const double drift =
      base->chunks_at_fit == 0
          ? 1.0
          : std::abs(static_cast<double>(next->chunks.size()) -
                     static_cast<double>(base->chunks_at_fit)) /
                static_cast<double>(base->chunks_at_fit);
  const bool refit = drift > opts_.refit_drift_threshold;
  span.set_attr("refit", refit);
  if (refit) {
    std::unique_ptr<embed::Embedder> embedder =
        embed::make_embedder(next->opts.embedder);
    embedder->fit(next->chunks);
    next->store =
        vectordb::VectorStore::from_documents(next->chunks, *embedder);
    next->embedder = std::move(embedder);
    next->embedder_fit_generation = next->generation;
    next->chunks_at_fit = next->chunks.size();
    metrics.counter(obs::kIngestRefitsTotal).inc();
  } else {
    // Retained vectors are copied bit-identically — old chunks score
    // exactly as they did in the base generation.
    for (std::size_t i : retained) {
      next->store.add_prenormalized(base->store.doc(i), base->store.vec(i));
    }
    if (n_new > 0) {
      const std::vector<text::Document> fresh(next->chunks.end() - n_new,
                                              next->chunks.end());
      std::vector<embed::Vector> vecs = base->embedder->embed_batch(fresh);
      for (std::size_t i = 0; i < fresh.size(); ++i) {
        next->store.add(fresh[i], std::move(vecs[i]));
      }
    }
    next->embedder = base->embedder;
    next->embedder_fit_generation = base->embedder_fit_generation;
    next->chunks_at_fit = base->chunks_at_fit;
  }
  next->symbols = std::make_shared<lexical::SymbolIndex>(next->chunks);
  // Sharded serving: the new generation carries its own router (built
  // before publish, so no reader ever sees a snapshot without one).
  next->attach_indexes();

  std::unordered_set<std::string_view> sources;
  for (const text::Document& chunk : next->chunks) {
    sources.insert(chunk.meta("source"));
  }
  next->source_count = sources.size();

  const double build_seconds = watch.seconds();
  metrics.histogram(obs::kIngestBuildSeconds).observe(build_seconds);
  metrics.counter(obs::kIngestBuildsTotal).inc();
  metrics.counter(obs::kIngestDocsTotal).inc(docs.size());
  metrics.counter(obs::kIngestChunksTotal).inc(n_new);
  span.set_attr("generation", next->generation);
  span.set_attr("chunks", next->chunks.size());
  span.set_attr("new_chunks", n_new);

  const double swap_seconds = kb_.publish(next);
  swap_seconds_.push_back(swap_seconds);
  stats_.builds += 1;
  stats_.docs += docs.size();
  stats_.chunks_added += n_new;
  if (refit) stats_.refits += 1;

  PKB_LOG(Info, "ingest") << "published generation " << next->generation
                          << ": " << docs.size() << " docs, " << n_new
                          << " new chunks, " << next->chunks.size()
                          << " total" << (refit ? ", embedder refit" : "")
                          << " (build " << build_seconds << "s, swap "
                          << swap_seconds << "s)";
  return next;
}

IngestStats Ingestor::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::vector<double> Ingestor::swap_history() const {
  std::lock_guard<std::mutex> lock(mu_);
  return swap_seconds_;
}

}  // namespace pkb::ingest
