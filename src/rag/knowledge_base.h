#pragma once
// Generational retrieval substrate — the RCU-style successor of the old
// immutable RagDatabase.
//
// A `Snapshot` is one immutable generation of the knowledge base: chunked
// corpus + fitted embedder + vector store + symbol index, stamped with a
// monotonically increasing generation id. `KnowledgeBase` holds an atomic
// shared_ptr to the current snapshot: readers pin a generation with
// snapshot() (cheap, lock-free to them) and keep using it for as long as
// they hold the pointer, while the ingest subsystem (src/ingest/) builds
// the next generation off to the side and publish()es it with a single
// pointer swap. In-flight queries are never torn across generations and a
// publish never blocks readers.
//
// This is how the paper's central loop — resolved conversations curated
// back into the corpus so the next question retrieves from a richer KB
// (§II, §V) — runs without a process restart.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "embed/embedder.h"
#include "lexical/keyword_search.h"
#include "text/loader.h"
#include "text/splitter.h"
#include "vectordb/index.h"
#include "vectordb/vector_store.h"

namespace pkb::vectordb {
class ShardRouter;
}  // namespace pkb::vectordb

namespace pkb::rag {

/// Build configuration, shared by the initial build and every later
/// ingest-built generation (carried inside each Snapshot).
struct KnowledgeBaseOptions {
  /// Embedding model registry name.
  std::string embedder = "sim-embed-3-large";
  /// Glob selecting corpus files.
  std::string file_pattern = "**/*.md";
  /// Chunking parameters (LangChain-style defaults scaled to manual pages).
  text::SplitterOptions splitter = {.chunk_size = 700,
                                    .chunk_overlap = 100,
                                    .separators = {"\n\n", "\n", " ", ""},
                                    .keep_separator = false};
  /// Vector-store partitions for scatter–gather retrieval. 0 or 1 keeps the
  /// monolithic scan; >= 2 attaches a vectordb::ShardRouter to every
  /// published snapshot and the Retriever fans queries out across shards
  /// (bit-identical results; see vectordb/shard_router.h). The monolithic
  /// `store` stays authoritative — the router is a derived read path, so
  /// sharding costs one extra copy of the vectors.
  std::size_t shards = 0;
  /// ANN strategy for the snapshot's searches (vectordb/index.h): flat/IVF/
  /// HNSW × optional int8 quantization with exact re-rank. The default
  /// (flat fp32) builds no index and keeps the exact scan. Composes with
  /// `shards`: a sharded snapshot builds one index per shard and merges
  /// unchanged. Rebuilt per generation on every ingest publish.
  vectordb::IndexSpec index;
};

/// Compat alias: the pre-generational name, still used across benches and
/// examples.
using RagDatabaseOptions = KnowledgeBaseOptions;

/// One immutable generation: everything retrieval needs, bundled. Invariant:
/// `store` entry i is the embedding of `chunks[i]` (same document, same
/// order); `symbols` indexes into `chunks`. Never mutated after publish —
/// share freely across threads via SnapshotPtr.
struct Snapshot {
  /// Monotonic generation id; the initial build is generation 1.
  std::uint64_t generation = 0;
  KnowledgeBaseOptions opts;
  std::vector<text::Document> chunks;
  /// Fitted embedder. Shared between delta generations; replaced only by a
  /// full refit (see embedder_fit_generation).
  std::shared_ptr<const embed::Embedder> embedder;
  vectordb::VectorStore store;
  /// Scatter–gather partitions of `store` (null when opts.shards < 2). The
  /// pointee is internally synchronized (breakers, dead flags), so the
  /// chaos switches stay usable through a SnapshotPtr; the partition shape
  /// itself is immutable. A pinned snapshot pins every shard of its
  /// generation — a rolling shard swap publishes a new snapshot whose
  /// router shares the untouched shard objects, so no reader ever sees a
  /// mixed generation.
  std::shared_ptr<vectordb::ShardRouter> shards;
  /// ANN index over `store` per opts.index (null for the identity spec or
  /// when sharded — per-shard indexes live inside the router then). The
  /// retriever routes first-pass searches through it when present.
  std::shared_ptr<const vectordb::AnnIndex> ann;
  std::shared_ptr<const lexical::SymbolIndex> symbols;
  /// Number of source documents that contributed to `chunks`.
  std::size_t source_count = 0;
  /// Generation at which `embedder` was last fitted — the serve layer keys
  /// its embedding memo by this, so delta generations (same embedder) keep
  /// their memo hits and a refit invalidates them.
  std::uint64_t embedder_fit_generation = 0;
  /// Chunk count at the last embedder fit; the ingestor's drift check
  /// compares growth since then against its refit threshold.
  std::size_t chunks_at_fit = 0;

  /// Persist this generation so a cold start can skip the corpus rebuild
  /// (loaders, splitter, embed_batch). Format: versioned header + the
  /// VectorStore binary blob + chunk-id and symbol-index sections. The
  /// embedder is refitted from the chunks on load (fit is deterministic),
  /// not serialized. Throws std::runtime_error on I/O failure.
  void save(const std::string& path) const;
  static std::shared_ptr<const Snapshot> load(const std::string& path);

  /// (Re)build the derived read paths from `store`: the shard router per
  /// opts.shards (with per-shard ANN indexes per opts.index) and, when
  /// monolithic, the snapshot-level ANN index. Called by build(), load(),
  /// and the ingestor after assembling a new generation; clears both when
  /// not configured.
  void attach_indexes();
};

using SnapshotPtr = std::shared_ptr<const Snapshot>;

/// The generational knowledge base: an atomic current-snapshot pointer plus
/// the publish protocol. Readers are wait-free with respect to publishers;
/// a reader's pinned snapshot stays fully usable (and alive) across any
/// number of publishes.
///
/// Compat surface: the chunks()/store()/embedder()/symbols() accessors of
/// the old immutable RagDatabase delegate to the *current* snapshot. They
/// are safe in single-generation use (every bench and example); code that
/// runs concurrently with live ingestion must pin snapshot() instead.
class KnowledgeBase {
 public:
  /// Build generation 1 from an in-memory corpus tree.
  static KnowledgeBase build(const text::VirtualDir& corpus,
                             KnowledgeBaseOptions opts = {});

  /// Adopt an existing snapshot (e.g. Snapshot::load) as the current
  /// generation.
  explicit KnowledgeBase(SnapshotPtr snap);

  /// Movable (factory return, test fixtures); moving while other threads
  /// use the source is undefined, as for any container.
  KnowledgeBase(KnowledgeBase&& other) noexcept;
  KnowledgeBase& operator=(KnowledgeBase&& other) noexcept;
  KnowledgeBase(const KnowledgeBase&) = delete;
  KnowledgeBase& operator=(const KnowledgeBase&) = delete;

  /// Pin the current generation. The returned snapshot (and every pointer
  /// into it) stays valid for as long as the caller holds the SnapshotPtr,
  /// regardless of later publishes.
  [[nodiscard]] SnapshotPtr snapshot() const {
    return snap_.load(std::memory_order_acquire);
  }

  /// Current generation id without pinning (cheap staleness checks, e.g.
  /// the serve layer's cache validation).
  [[nodiscard]] std::uint64_t generation() const {
    return gen_.load(std::memory_order_acquire);
  }

  /// Publish `next` as the current generation: one atomic pointer swap.
  /// In-flight readers keep their pinned snapshot; new snapshot() calls see
  /// `next`. Requires next->generation > generation() (publishers are
  /// serialized internally; a stale build throws std::logic_error).
  /// Returns the seconds spent inside the swap critical section (what
  /// bench/ingest_swap reports as swap latency).
  double publish(SnapshotPtr next);

  // --- compat accessors (current generation; see class comment) -----------
  [[nodiscard]] const std::vector<text::Document>& chunks() const {
    return current().chunks;
  }
  [[nodiscard]] const vectordb::VectorStore& store() const {
    return current().store;
  }
  [[nodiscard]] const embed::Embedder& embedder() const {
    return *current().embedder;
  }
  [[nodiscard]] const lexical::SymbolIndex& symbols() const {
    return *current().symbols;
  }
  [[nodiscard]] const KnowledgeBaseOptions& options() const {
    return current().opts;
  }
  [[nodiscard]] std::size_t source_count() const {
    return current().source_count;
  }

 private:
  /// Reference into the current snapshot. The KnowledgeBase itself keeps
  /// the snapshot alive, so the reference is valid until the next publish.
  [[nodiscard]] const Snapshot& current() const {
    return *snap_.load(std::memory_order_acquire);
  }

  std::atomic<SnapshotPtr> snap_;
  std::atomic<std::uint64_t> gen_{0};
  mutable std::mutex publish_mu_;  ///< serializes publishers only
};

/// Compat alias: existing call sites (benches, examples, tests) keep
/// compiling against the generational substrate unchanged.
using RagDatabase = KnowledgeBase;

}  // namespace pkb::rag
