#pragma once
// RAG database construction (§III-A, the generation phase of RAG):
// corpus tree -> DirectoryLoader -> MarkdownLoader -> splitter -> embeddings
// -> vector store (+ the keyword SymbolIndex of §III-C).

#include <memory>
#include <string>

#include "embed/embedder.h"
#include "lexical/keyword_search.h"
#include "text/loader.h"
#include "text/splitter.h"
#include "vectordb/vector_store.h"

namespace pkb::rag {

/// Database-build configuration.
struct RagDatabaseOptions {
  /// Embedding model registry name.
  std::string embedder = "sim-embed-3-large";
  /// Glob selecting corpus files.
  std::string file_pattern = "**/*.md";
  /// Chunking parameters (LangChain-style defaults scaled to manual pages).
  text::SplitterOptions splitter = {.chunk_size = 700,
                                    .chunk_overlap = 100,
                                    .separators = {"\n\n", "\n", " ", ""},
                                    .keep_separator = false};
};

/// The built retrieval substrate: chunked corpus + fitted embedder + vector
/// store + symbol index. Immutable after build; shared by every pipeline arm
/// that uses the same embedding model.
class RagDatabase {
 public:
  /// Build from an in-memory corpus tree.
  static RagDatabase build(const text::VirtualDir& corpus,
                           RagDatabaseOptions opts = {});

  [[nodiscard]] const std::vector<text::Document>& chunks() const {
    return chunks_;
  }
  [[nodiscard]] const vectordb::VectorStore& store() const { return store_; }
  [[nodiscard]] const embed::Embedder& embedder() const { return *embedder_; }
  [[nodiscard]] const lexical::SymbolIndex& symbols() const {
    return *symbols_;
  }
  [[nodiscard]] const RagDatabaseOptions& options() const { return opts_; }

  /// Number of source documents the corpus contributed.
  [[nodiscard]] std::size_t source_count() const { return source_count_; }

 private:
  RagDatabaseOptions opts_;
  std::vector<text::Document> chunks_;
  std::unique_ptr<embed::Embedder> embedder_;
  vectordb::VectorStore store_;
  std::unique_ptr<lexical::SymbolIndex> symbols_;
  std::size_t source_count_ = 0;
};

}  // namespace pkb::rag
