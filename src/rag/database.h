#pragma once
// Compatibility shim. The immutable RagDatabase of §III-A grew into the
// generational rag::KnowledgeBase (knowledge_base.h): the same bundle of
// chunks + fitted embedder + vector store + symbol index, now one Snapshot
// of an atomically swappable sequence so the ingest subsystem can publish
// new generations while queries are in flight. `RagDatabase` and
// `RagDatabaseOptions` are aliases kept for the many single-generation
// call sites (benches, examples, tests).

#include "rag/knowledge_base.h"
