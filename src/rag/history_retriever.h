#pragma once
// Shared-history retrieval — the dotted blue arrow of Fig 3: "material from
// the shared history will also eventually be included in the RAG and
// reranking processing and passed to the LLM."
//
// Vetted past interactions (blind-review score >= a threshold, or answers
// written by human developers) become retrievable context: when a similar
// question arrives, the best past Q&A pairs are appended to the LLM's
// context list. This is how the system gets better from its own reviewed
// outputs without retraining anything.

#include <string>
#include <string_view>
#include <vector>

#include "history/store.h"
#include "lexical/bm25.h"
#include "llm/types.h"

namespace pkb::rag {

/// Configuration for history recall.
struct HistoryRetrieverOptions {
  /// Minimum mean blind-review score for a record to be trusted as context.
  double min_mean_score = 3.0;
  /// Records authored by humans (empty model field) are trusted even when
  /// unscored.
  bool trust_unscored_human_answers = true;
  /// Maximum past interactions injected per query.
  std::size_t max_contexts = 2;
  /// Minimum BM25 relevance for a past interaction to be injected.
  double min_relevance = 1.0;
};

/// Indexes the vetted subset of a HistoryStore for question-similarity
/// lookup. Call refresh() after the store changes.
class HistoryRetriever {
 public:
  /// The store must outlive the retriever.
  explicit HistoryRetriever(const history::HistoryStore* store,
                            HistoryRetrieverOptions opts = {});

  /// Rebuild the index over the currently vetted records.
  void refresh();

  /// Number of vetted records currently indexed.
  [[nodiscard]] std::size_t indexed() const { return record_ids_.size(); }

  /// Past Q&A contexts relevant to `question`, best first. Context ids are
  /// "history#<record-id>"; the text is "Q: ...\nVetted answer: ...".
  [[nodiscard]] std::vector<llm::ContextDoc> lookup(
      std::string_view question) const;

 private:
  const history::HistoryStore* store_;
  HistoryRetrieverOptions opts_;
  lexical::Bm25Index index_;
  std::vector<std::uint64_t> record_ids_;  ///< parallel to index docs
};

}  // namespace pkb::rag
