#pragma once
// The stage vocabulary of the Fig-3 pipeline and its serializable
// artifacts — the data half of the stage-graph refactor (the executable
// half lives in rag/stage_graph.h).
//
// Every ask() is the composition of six typed stages:
//
//   Embed -> Retrieve -> Rerank -> Prompt -> Generate -> Postprocess
//
// Each stage's output is an artifact plain enough to persist: no Document
// pointers, no snapshot handles — ids, scores, and strings only. A
// StageTrace bundles the artifacts of one request together with the
// pipeline configuration that produced them, which is exactly what the
// record/replay subsystem (src/replay/) persists and re-executes from:
// seeding the artifacts of stages [0, from) and running [from, end] gives
// time-travel debugging without redoing upstream work.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "embed/embedder.h"
#include "llm/types.h"

namespace pkb::rag {

/// The six stages, in pipeline order. Values are contiguous so ranges of
/// stages can be iterated ([Embed, Postprocess] is one full ask()).
enum class StageKind : int {
  Embed = 0,        ///< query embedding against the pinned snapshot
  Retrieve = 1,     ///< first-pass vector search + keyword augmentation
  Rerank = 2,       ///< cross-scoring K candidates down to L (or pass-through)
  Prompt = 3,       ///< LLM request assembly: contexts, history recall, render
  Generate = 4,     ///< the (resilient) LLM completion
  Postprocess = 5,  ///< box 4: markdown/JSON postprocessing of the response
};

inline constexpr int kStageCount = 6;

[[nodiscard]] std::string_view to_string(StageKind kind);

/// Parse a stage name ("embed", ..., "postprocess"); nullopt when unknown.
[[nodiscard]] std::optional<StageKind> stage_from_name(std::string_view name);

/// Output of EmbedStage: which embedder ran and the query vector it
/// produced.
struct EmbedArtifact {
  std::string embedder;
  embed::Vector query_vec;
};

/// One retrieved candidate by reference: the chunk id plus provenance, the
/// serializable shadow of RetrievedContext (replay resolves ids back to
/// documents against a pinned snapshot).
struct ContextRef {
  std::string id;
  double score = 0.0;
  std::string via;
  std::uint64_t first_pass_rank = 0;
};

/// Output of RetrieveStage: the first-pass candidate set (vector + keyword,
/// pre-rerank) and the scatter-gather accounting.
struct RetrieveArtifact {
  std::vector<ContextRef> candidates;
  std::uint64_t shards_failed = 0;
  std::uint64_t shards_total = 0;
};

/// Output of RerankStage: the final context list, best first.
struct RerankArtifact {
  std::vector<ContextRef> contexts;
  bool rerank_degraded = false;
};

/// Output of PromptStage: the fully assembled LLM request (document +
/// history contexts with their text, so replay needs no resolution) and the
/// rendered user prompt.
struct PromptArtifact {
  std::string system;
  std::vector<llm::ContextDoc> contexts;
  std::uint64_t max_attended = 4;
  std::string prompt;
};

/// Output of GenerateStage: the full LLM response.
struct GenerateArtifact {
  llm::LlmResponse response;
};

/// Output of PostprocessStage: the answer-facing summary of the processed
/// output (the full ProcessedOutput is derivable from the response text).
struct PostprocessArtifact {
  std::string plain_text;
  bool all_code_ok = true;
  std::uint64_t code_blocks = 0;
  std::vector<std::string> sources;
};

/// Per-turn session hooks threaded into PromptStage by the session serving
/// layer (serve/session.h). Multi-turn conversations ride the stage
/// graph's existing history path: prior turns are appended AFTER the
/// document contexts (exactly where shared-history recall puts its
/// contexts, competing for the tail of the attention window), and the
/// session's retrieval memory drops chunks the session has already seen
/// from the prompt. The retrieval stages still run in full — replay traces
/// and retrieval metrics are unaffected; only prompt assembly changes.
struct SessionPromptContext {
  // --- inputs (owned by the session layer, alive for the whole turn) ------
  /// Chunk ids already shown to this session. Null (or absent ids)
  /// disables dedup — the session layer passes null for a fresh memory so
  /// an empty set is never mistaken for a stale one.
  const std::unordered_set<std::string>* seen_context_ids = nullptr;
  /// KnowledgeBase generation the memory was recorded under. Dedup applies
  /// only while the turn's pinned generation matches: after a mid-session
  /// publish any chunk may carry re-ingested content, so "already seen" no
  /// longer holds and the full context list is shown again (`memory_stale`
  /// reports the mismatch so the session layer resets its memory).
  std::uint64_t memory_generation = 0;
  /// Prior conversation turns, oldest first; appended after the document
  /// contexts (and after shared-history recall).
  const std::vector<llm::ContextDoc>* history_contexts = nullptr;

  // --- outputs (filled by PromptStage) ------------------------------------
  std::size_t deduped = 0;           ///< document contexts dropped as seen
  std::size_t history_attached = 0;  ///< conversation contexts appended
  bool memory_stale = false;         ///< generation mismatch; dedup skipped
  /// Ids of the document contexts actually placed in the prompt — what the
  /// session layer records into its retrieval memory for the next turn.
  std::vector<std::string> attached_context_ids;
};

/// Everything one recorded request needs to be replayed from any stage:
/// the pipeline configuration header plus the six stage artifacts.
/// Persisted by replay::TraceRecorder (versioned binary, util/binio.h).
struct StageTrace {
  /// Request id, assigned by the recorder at persist time (0 = unsaved).
  std::uint64_t id = 0;

  // --- configuration header (what the workflow was built with) ------------
  std::string question;
  std::string arm;       ///< rag::to_string(PipelineArm)
  std::string model;     ///< llm::LlmConfig::name
  std::string reranker;  ///< RetrieverOptions::reranker ("" = plain RAG)
  std::uint64_t first_pass_k = 8;
  std::uint64_t final_l = 4;

  // --- outcome header -----------------------------------------------------
  std::uint64_t generation = 0;
  std::string degradation;  ///< resilience::to_string(DegradationLevel)
  std::uint64_t history_id = 0;
  double embed_seconds = 0.0;
  double search_seconds = 0.0;
  double rerank_seconds = 0.0;

  // --- per-stage artifacts ------------------------------------------------
  EmbedArtifact embed;
  RetrieveArtifact retrieve;
  RerankArtifact rerank;
  PromptArtifact prompt;
  GenerateArtifact generate;
  PostprocessArtifact post;
};

}  // namespace pkb::rag
