#include "rag/knowledge_base.h"

#include <fstream>
#include <stdexcept>
#include <utility>

#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/binio.h"
#include "util/clock.h"
#include "util/log.h"
#include "vectordb/shard_router.h"

namespace pkb::rag {

namespace {

void publish_kb_gauges(const Snapshot& snap) {
  obs::MetricsRegistry& metrics = obs::global_metrics();
  metrics.gauge(obs::kKbGeneration).set(static_cast<double>(snap.generation));
  metrics.gauge(obs::kKbChunks).set(static_cast<double>(snap.chunks.size()));
}

}  // namespace

KnowledgeBase KnowledgeBase::build(const text::VirtualDir& corpus,
                                   KnowledgeBaseOptions opts) {
  auto snap = std::make_shared<Snapshot>();
  snap->generation = 1;
  snap->opts = std::move(opts);

  const text::DirectoryLoader dir_loader(snap->opts.file_pattern);
  const text::MarkdownLoader md_loader(text::MarkdownMode::Single,
                                       /*drop_headings=*/true);
  const std::vector<text::Document> docs =
      md_loader.load(dir_loader.load(corpus));
  snap->source_count = docs.size();

  const text::RecursiveCharacterTextSplitter splitter(snap->opts.splitter);
  snap->chunks = splitter.split_documents(docs);

  std::unique_ptr<embed::Embedder> embedder =
      embed::make_embedder(snap->opts.embedder);
  embedder->fit(snap->chunks);
  snap->store = vectordb::VectorStore::from_documents(snap->chunks, *embedder);
  snap->embedder = std::move(embedder);
  snap->symbols = std::make_shared<lexical::SymbolIndex>(snap->chunks);
  snap->embedder_fit_generation = 1;
  snap->chunks_at_fit = snap->chunks.size();
  snap->attach_indexes();

  PKB_LOG(Info, "rag") << "knowledge base built: generation 1, "
                       << snap->source_count << " documents, "
                       << snap->chunks.size() << " chunks, embedder "
                       << snap->embedder->name() << " (dim "
                       << snap->embedder->dimension() << ")";
  return KnowledgeBase(std::move(snap));
}

KnowledgeBase::KnowledgeBase(SnapshotPtr snap) {
  if (snap == nullptr) {
    throw std::invalid_argument("KnowledgeBase: null snapshot");
  }
  gen_.store(snap->generation, std::memory_order_release);
  publish_kb_gauges(*snap);
  snap_.store(std::move(snap), std::memory_order_release);
}

KnowledgeBase::KnowledgeBase(KnowledgeBase&& other) noexcept {
  snap_.store(other.snap_.load(std::memory_order_acquire),
              std::memory_order_release);
  gen_.store(other.gen_.load(std::memory_order_acquire),
             std::memory_order_release);
}

KnowledgeBase& KnowledgeBase::operator=(KnowledgeBase&& other) noexcept {
  if (this != &other) {
    snap_.store(other.snap_.load(std::memory_order_acquire),
                std::memory_order_release);
    gen_.store(other.gen_.load(std::memory_order_acquire),
               std::memory_order_release);
  }
  return *this;
}

void Snapshot::attach_indexes() {
  if (opts.shards < 2) {
    shards = nullptr;
    // Monolithic: one snapshot-level index (null for the identity spec).
    ann = vectordb::build_index(store, opts.index);
    return;
  }
  // Sharded: per-shard indexes live inside the router; the snapshot-level
  // handle stays null so there is exactly one ANN path per configuration.
  ann = nullptr;
  vectordb::ShardRouterOptions ropts;
  ropts.index = opts.index;
  shards = vectordb::ShardRouter::partition(store, opts.shards,
                                            std::move(ropts));
}

double KnowledgeBase::publish(SnapshotPtr next) {
  if (next == nullptr) {
    throw std::invalid_argument("KnowledgeBase::publish: null snapshot");
  }
  std::lock_guard<std::mutex> lock(publish_mu_);
  const SnapshotPtr cur = snap_.load(std::memory_order_acquire);
  if (next->generation <= cur->generation) {
    throw std::logic_error(
        "KnowledgeBase::publish: generation must increase (current " +
        std::to_string(cur->generation) + ", got " +
        std::to_string(next->generation) + ")");
  }

  obs::Span span(obs::global_tracer(), obs::kSpanKbSwap);
  span.set_attr("from", cur->generation);
  span.set_attr("to", next->generation);
  pkb::util::Stopwatch watch;
  const std::uint64_t generation = next->generation;
  publish_kb_gauges(*next);
  snap_.store(std::move(next), std::memory_order_release);
  gen_.store(generation, std::memory_order_release);
  const double seconds = watch.seconds();
  obs::global_metrics().histogram(obs::kKbSwapSeconds).observe(seconds);
  return seconds;
}

// ---------------------------------------------------------------------------
// Snapshot persistence.
//
// Layout: magic "PKBS" | u32 version | u64 generation |
//         u64 embedder_fit_generation | u64 chunks_at_fit | u64 source_count
//         | options (embedder, file_pattern, splitter fields)
//         | VectorStore blob (its own magic/version, docs + vectors)
//         | chunk section "CHNK": per-entry ids revalidating store order
//         | symbol section "SYMS": symbol -> chunk indices.
//
// The chunks are reconstructed from the store's documents (entry i ==
// chunks[i] by invariant); the embedder is refitted from them — fit() is
// deterministic, so the reloaded generation embeds queries identically.
// ---------------------------------------------------------------------------

namespace {

constexpr char kSnapshotMagic[4] = {'P', 'K', 'B', 'S'};
constexpr char kChunkSectionMagic[4] = {'C', 'H', 'N', 'K'};
constexpr char kSymbolSectionMagic[4] = {'S', 'Y', 'M', 'S'};
// Version 2 appends opts.shards to the options block; version-1 files load
// with shards = 0 (monolithic). Version 3 appends the IndexSpec (kind,
// int8 flag, rerank_factor, IVF and HNSW options); older files load with
// the identity spec (flat fp32) — exactly their pre-index behavior.
// Version 4 generalizes the quantizer: the v3 int8 flag stays in place
// (written as quant == Int8 for old readers' field positions) and the
// block gains quant + PqOptions after hnsw.seed; v3 files load with the
// flag mapped to Quantizer::Int8/None and default PQ options.
constexpr std::uint32_t kSnapshotVersion = 4;

void read_magic(std::istream& in, const char (&expect)[4], const char* what) {
  char magic[4] = {};
  pkb::util::read_bytes(in, magic, sizeof magic, what);
  if (std::string_view(magic, 4) != std::string_view(expect, 4)) {
    throw std::runtime_error(std::string("Snapshot::load: bad magic for ") +
                             what);
  }
}

}  // namespace

void Snapshot::save(const std::string& path) const {
  namespace bin = pkb::util;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("Snapshot::save: cannot open " + path);
  }
  out.write(kSnapshotMagic, sizeof kSnapshotMagic);
  bin::write_u32(out, kSnapshotVersion);
  bin::write_u64(out, generation);
  bin::write_u64(out, embedder_fit_generation);
  bin::write_u64(out, chunks_at_fit);
  bin::write_u64(out, source_count);
  bin::write_str(out, opts.embedder);
  bin::write_str(out, opts.file_pattern);
  bin::write_u64(out, opts.splitter.chunk_size);
  bin::write_u64(out, opts.splitter.chunk_overlap);
  bin::write_u32(out, opts.splitter.keep_separator ? 1 : 0);
  bin::write_u64(out, opts.splitter.separators.size());
  for (const std::string& sep : opts.splitter.separators) {
    bin::write_str(out, sep);
  }
  bin::write_u64(out, opts.shards);
  bin::write_u32(out, static_cast<std::uint32_t>(opts.index.kind));
  bin::write_u32(out,
                 opts.index.quant == vectordb::Quantizer::Int8 ? 1 : 0);
  bin::write_u64(out, opts.index.rerank_factor);
  bin::write_u64(out, opts.index.ivf.clusters);
  bin::write_u64(out, opts.index.ivf.kmeans_iters);
  bin::write_u64(out, opts.index.ivf.nprobe);
  bin::write_u64(out, opts.index.ivf.seed);
  bin::write_u64(out, opts.index.hnsw.m);
  bin::write_u64(out, opts.index.hnsw.ef_construction);
  bin::write_u64(out, opts.index.hnsw.ef_search);
  bin::write_u64(out, opts.index.hnsw.seed);
  bin::write_u32(out, static_cast<std::uint32_t>(opts.index.quant));
  bin::write_u64(out, opts.index.pq.m);
  bin::write_u64(out, opts.index.pq.kmeans_iters);
  bin::write_u64(out, opts.index.pq.seed);

  store.save(out);

  out.write(kChunkSectionMagic, sizeof kChunkSectionMagic);
  bin::write_u64(out, chunks.size());
  for (const text::Document& chunk : chunks) {
    bin::write_str(out, chunk.id);
  }

  const std::vector<lexical::SymbolEntry> entries = symbols->entries();
  out.write(kSymbolSectionMagic, sizeof kSymbolSectionMagic);
  bin::write_u64(out, entries.size());
  for (const lexical::SymbolEntry& entry : entries) {
    bin::write_str(out, entry.symbol);
    bin::write_u64(out, entry.chunks.size());
    for (std::size_t index : entry.chunks) {
      bin::write_u64(out, index);
    }
  }
  if (!out) {
    throw std::runtime_error("Snapshot::save: write failed for " + path);
  }
}

SnapshotPtr Snapshot::load(const std::string& path) {
  namespace bin = pkb::util;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("Snapshot::load: cannot open " + path);
  }
  read_magic(in, kSnapshotMagic, "snapshot header");
  const std::uint32_t version = bin::read_u32(in, "snapshot version");
  if (version < 1 || version > kSnapshotVersion) {
    throw std::runtime_error("Snapshot::load: unsupported version " +
                             std::to_string(version));
  }
  auto snap = std::make_shared<Snapshot>();
  snap->generation = bin::read_u64(in, "generation");
  snap->embedder_fit_generation = bin::read_u64(in, "embedder_fit_generation");
  snap->chunks_at_fit = bin::read_count(in, "chunks_at_fit");
  snap->source_count = bin::read_count(in, "source_count");
  snap->opts.embedder = bin::read_str(in, "embedder name");
  snap->opts.file_pattern = bin::read_str(in, "file pattern");
  snap->opts.splitter.chunk_size = bin::read_count(in, "chunk_size");
  snap->opts.splitter.chunk_overlap = bin::read_count(in, "chunk_overlap");
  snap->opts.splitter.keep_separator =
      bin::read_u32(in, "keep_separator") != 0;
  const std::uint64_t n_separators =
      bin::read_count(in, "separator count", /*max=*/1024);
  snap->opts.splitter.separators.clear();
  for (std::uint64_t i = 0; i < n_separators; ++i) {
    snap->opts.splitter.separators.push_back(bin::read_str(in, "separator"));
  }
  snap->opts.shards =
      version >= 2 ? bin::read_count(in, "shard count", /*max=*/1 << 16) : 0;
  if (version >= 3) {
    const std::uint32_t kind = bin::read_u32(in, "index kind");
    if (kind > static_cast<std::uint32_t>(vectordb::IndexKind::Hnsw)) {
      throw std::runtime_error("Snapshot::load: unknown index kind " +
                               std::to_string(kind));
    }
    snap->opts.index.kind = static_cast<vectordb::IndexKind>(kind);
    const bool int8_flag = bin::read_u32(in, "index int8") != 0;
    snap->opts.index.quant =
        int8_flag ? vectordb::Quantizer::Int8 : vectordb::Quantizer::None;
    snap->opts.index.rerank_factor = bin::read_count(in, "rerank factor");
    snap->opts.index.ivf.clusters = bin::read_count(in, "ivf clusters");
    snap->opts.index.ivf.kmeans_iters = bin::read_count(in, "ivf iters");
    snap->opts.index.ivf.nprobe = bin::read_count(in, "ivf nprobe");
    snap->opts.index.ivf.seed = bin::read_u64(in, "ivf seed");
    snap->opts.index.hnsw.m = bin::read_count(in, "hnsw m");
    snap->opts.index.hnsw.ef_construction =
        bin::read_count(in, "hnsw ef_construction");
    snap->opts.index.hnsw.ef_search = bin::read_count(in, "hnsw ef_search");
    snap->opts.index.hnsw.seed = bin::read_u64(in, "hnsw seed");
  }
  if (version >= 4) {
    const std::uint32_t quant = bin::read_u32(in, "index quant");
    if (quant > static_cast<std::uint32_t>(vectordb::Quantizer::Pq)) {
      throw std::runtime_error("Snapshot::load: unknown quantizer " +
                               std::to_string(quant));
    }
    snap->opts.index.quant = static_cast<vectordb::Quantizer>(quant);
    snap->opts.index.pq.m = bin::read_count(in, "pq m");
    snap->opts.index.pq.kmeans_iters = bin::read_count(in, "pq iters");
    snap->opts.index.pq.seed = bin::read_u64(in, "pq seed");
  }

  snap->store = vectordb::VectorStore::load(in);

  read_magic(in, kChunkSectionMagic, "chunk section");
  const std::uint64_t chunk_count = bin::read_count(in, "chunk count");
  if (chunk_count != snap->store.size()) {
    throw std::runtime_error(
        "Snapshot::load: chunk section disagrees with vector store size");
  }
  snap->chunks.reserve(chunk_count);
  for (std::uint64_t i = 0; i < chunk_count; ++i) {
    const std::string id = bin::read_str(in, "chunk id");
    if (id != snap->store.doc(i).id) {
      throw std::runtime_error(
          "Snapshot::load: chunk id mismatch at index " + std::to_string(i));
    }
    snap->chunks.push_back(snap->store.doc(i));
  }

  read_magic(in, kSymbolSectionMagic, "symbol section");
  const std::uint64_t symbol_count = bin::read_count(in, "symbol count");
  std::vector<lexical::SymbolEntry> entries;
  entries.reserve(symbol_count);
  for (std::uint64_t i = 0; i < symbol_count; ++i) {
    lexical::SymbolEntry entry;
    entry.symbol = bin::read_str(in, "symbol name");
    const std::uint64_t n = bin::read_count(in, "symbol chunk count");
    entry.chunks.reserve(n);
    for (std::uint64_t c = 0; c < n; ++c) {
      const std::uint64_t index = bin::read_u64(in, "symbol chunk index");
      if (index >= chunk_count) {
        throw std::runtime_error(
            "Snapshot::load: symbol chunk index out of range");
      }
      entry.chunks.push_back(static_cast<std::size_t>(index));
    }
    entries.push_back(std::move(entry));
  }
  snap->symbols = std::make_shared<lexical::SymbolIndex>(
      lexical::SymbolIndex::from_entries(std::move(entries)));

  std::unique_ptr<embed::Embedder> embedder =
      embed::make_embedder(snap->opts.embedder);
  embedder->fit(snap->chunks);
  if (snap->embedder_fit_generation == snap->generation) {
    // The saved embedder was fitted on exactly this chunk list; refitting
    // reproduces it, so the stored vectors are kept bit-exact.
    if (!snap->chunks.empty() &&
        embedder->dimension() != snap->store.dimension()) {
      throw std::runtime_error(
          "Snapshot::load: refitted embedder dimension disagrees with "
          "stored vectors");
    }
  } else {
    // Delta generation: its embedder was fitted on an older chunk list that
    // the file does not carry. Reload as a refit generation — re-embed the
    // chunks with the freshly fitted embedder so store and queries agree.
    snap->store =
        vectordb::VectorStore::from_documents(snap->chunks, *embedder);
    snap->embedder_fit_generation = snap->generation;
    snap->chunks_at_fit = snap->chunks.size();
  }
  snap->embedder = std::move(embedder);
  snap->attach_indexes();

  PKB_LOG(Info, "rag") << "snapshot loaded: generation " << snap->generation
                       << ", " << snap->chunks.size() << " chunks from "
                       << path;
  return snap;
}

}  // namespace pkb::rag
