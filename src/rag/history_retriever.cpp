#include "rag/history_retriever.h"

#include <stdexcept>

namespace pkb::rag {

HistoryRetriever::HistoryRetriever(const history::HistoryStore* store,
                                   HistoryRetrieverOptions opts)
    : store_(store), opts_(opts) {
  if (store_ == nullptr) {
    throw std::invalid_argument("HistoryRetriever: null store");
  }
  refresh();
}

void HistoryRetriever::refresh() {
  record_ids_.clear();
  std::vector<text::Document> docs;
  for (const history::InteractionRecord& record : store_->records()) {
    const auto mean = store_->mean_score(record.id);
    const bool vetted_by_score =
        mean.has_value() && *mean >= opts_.min_mean_score;
    const bool human =
        record.model.empty() && opts_.trust_unscored_human_answers;
    if (!vetted_by_score && !human) continue;
    text::Document doc;
    doc.id = "history#" + std::to_string(record.id);
    doc.text = record.question + " " + record.response;
    docs.push_back(std::move(doc));
    record_ids_.push_back(record.id);
  }
  index_.build(std::move(docs));
}

std::vector<llm::ContextDoc> HistoryRetriever::lookup(
    std::string_view question) const {
  std::vector<llm::ContextDoc> out;
  for (const lexical::Bm25Result& hit :
       index_.search(question, opts_.max_contexts)) {
    if (hit.score < opts_.min_relevance) continue;
    const history::InteractionRecord* record =
        store_->get(record_ids_[hit.index]);
    llm::ContextDoc ctx;
    ctx.id = hit.doc->id;
    ctx.title = "";  // past interactions carry no page title
    ctx.text = "A previous vetted answer to a similar question (" +
               record->question + "): " + record->response;
    ctx.score = hit.score;
    out.push_back(std::move(ctx));
  }
  return out;
}

}  // namespace pkb::rag
