#pragma once
// The augmented PETSc LLM workflow — boxes 1-4 of Fig 3 wired together:
// retrieve (1) -> rerank (2) -> LLM (3) -> postprocess (4), with every
// interaction recorded into the shared history (§III-F).
//
// Since the stage-graph refactor the pipeline body is an explicit
// composition of six typed stages (rag/stage_graph.h): ask() pins a
// snapshot and runs Embed..Postprocess; ask_with_retrieval() seeds the
// retrieval artifacts and runs Prompt..Postprocess. Passing a StageTrace
// captures every stage's serializable artifact for the record/replay
// subsystem (src/replay/).

#include <memory>
#include <optional>
#include <string>

#include "history/store.h"
#include "llm/sim_llm.h"
#include "util/clock.h"
#include "post/postprocessor.h"
#include "rag/history_retriever.h"
#include "rag/retriever.h"
#include "resilience/resilience.h"

namespace pkb::rag {

struct StageTrace;           // rag/stages.h
struct StageState;           // rag/stage_graph.h
struct SessionPromptContext;  // rag/stages.h

/// Pipeline arm selector.
enum class PipelineArm {
  Baseline,    ///< no retrieval: parametric LLM only
  Rag,         ///< embedding retrieval + keyword augmentation
  RagRerank,   ///< retrieval + reranking (the paper's best configuration)
};

[[nodiscard]] std::string_view to_string(PipelineArm arm);

/// Inverse of to_string(); nullopt for an unknown name. (The replay engine
/// reconstructs workflows from recorded trace headers through this.)
[[nodiscard]] std::optional<PipelineArm> arm_from_string(
    std::string_view name);

/// The outcome of one question through the workflow.
struct WorkflowOutcome {
  llm::LlmResponse response;
  RetrievalResult retrieval;        ///< empty contexts for Baseline
  post::ProcessedOutput processed;  ///< box-4 postprocessing of the response
  std::string prompt;               ///< the full prompt sent to the model
  std::uint64_t history_id = 0;     ///< record id when history is attached
  /// How much of the full pipeline this answer reflects (the degradation
  /// ladder; Full when no resilience context was active or nothing failed).
  /// Callers — the serve layer's answer cache in particular — use this to
  /// distinguish full answers (cacheable at the normal TTL) from degraded
  /// ones (short TTL, so a transient outage cannot poison the cache).
  resilience::DegradationLevel degradation = resilience::DegradationLevel::Full;
  [[nodiscard]] bool degraded() const {
    return degradation != resilience::DegradationLevel::Full;
  }
  /// KnowledgeBase generation the answer was computed against (0 for the
  /// Baseline arm, which reads no corpus). Stamped in exactly one place —
  /// PromptStage — for both the ask() and precomputed-retrieval paths. The
  /// serve layer compares this to the live generation to detect stale
  /// cached answers; retrieval.snapshot keeps the generation's documents
  /// alive while the outcome is cached.
  std::uint64_t generation = 0;
};

/// Anything that can answer one question end to end: the workflow itself,
/// or a front end wrapped around it (serve::Server). Consumers like the
/// chat bot depend on this interface so they can be pointed at either.
class QuestionService {
 public:
  virtual ~QuestionService() = default;
  [[nodiscard]] virtual WorkflowOutcome answer(
      std::string_view question) const = 0;
};

/// One arm of the workflow: a retriever (or none) plus a model.
class AugmentedWorkflow : public QuestionService {
 public:
  /// `arm` selects retrieval behaviour; `retriever_opts.reranker` is
  /// overridden to "" for the Rag arm and kept for RagRerank. The knowledge
  /// base may keep publishing new generations; each ask() pins the
  /// then-current snapshot for its whole pipeline run.
  AugmentedWorkflow(const KnowledgeBase& kb, PipelineArm arm,
                    llm::LlmConfig model, RetrieverOptions retriever_opts = {});

  /// Attach a history store; subsequent ask() calls append records. The
  /// store must outlive the workflow. `clock` (optional) supplies record
  /// timestamps and advances by the simulated latency of each call.
  void attach_history(history::HistoryStore* store,
                      pkb::util::SimClock* clock = nullptr);

  /// Enable shared-history recall (the Fig 3 dotted arrow): relevant vetted
  /// past interactions are appended to the model's context list. The
  /// retriever must outlive the workflow; the caller controls when it
  /// refresh()es.
  void attach_history_retrieval(const HistoryRetriever* retriever);

  /// Attach a chaos plan: forwarded to the simulated LLM and the retriever
  /// (which hands it to its rerankers and consults it for vector search
  /// with `search_hedges` hedged re-attempts). Setup-time only.
  void set_fault_plan(const resilience::FaultPlan* plan,
                      std::uint32_t search_hedges = 1);

  /// Run one question end to end. With a non-null `ctx` (minted by a
  /// resilience::Resilience engine, which rides along in ctx->engine),
  /// stage costs are charged to the context's deadline budget and failures
  /// walk the degradation ladder instead of propagating — the outcome then
  /// carries ctx->level in `degradation` and an extractive or stub answer
  /// when the LLM stage was lost. A non-null `trace` captures every
  /// stage's artifact for the record/replay subsystem. A non-null `session`
  /// (the session serving layer's per-turn hooks) dedups already-seen
  /// contexts and appends conversation history during prompt assembly.
  [[nodiscard]] WorkflowOutcome ask(std::string_view question,
                                    resilience::RequestContext* ctx = nullptr,
                                    StageTrace* trace = nullptr,
                                    SessionPromptContext* session =
                                        nullptr) const;

  /// As ask(), but the retrieval stage was already computed by the caller
  /// (the serve layer's memoized/batched paths). Supplying exactly
  /// retriever()->retrieve(question) yields the same outcome content as
  /// ask(question) — including the budget charge, which is applied exactly
  /// once per RetrievalResult (see RetrievalResult::budget_charged). For
  /// the Baseline arm the retrieval is ignored.
  [[nodiscard]] WorkflowOutcome ask_with_retrieval(
      std::string_view question, RetrievalResult retrieval,
      resilience::RequestContext* ctx = nullptr,
      StageTrace* trace = nullptr,
      SessionPromptContext* session = nullptr) const;

  /// QuestionService: answer == ask. ask() is const and runs against an
  /// immutable pinned snapshot, so concurrent calls are safe even while
  /// ingestion publishes new generations (the history store, when attached,
  /// serializes its own appends).
  [[nodiscard]] WorkflowOutcome answer(
      std::string_view question) const override {
    return ask(question);
  }

  [[nodiscard]] PipelineArm arm() const { return arm_; }
  [[nodiscard]] const llm::LlmConfig& model() const { return llm_.config(); }
  [[nodiscard]] const Retriever* retriever() const { return retriever_.get(); }
  [[nodiscard]] const KnowledgeBase& kb() const { return kb_; }
  [[nodiscard]] const HistoryRetriever* history_retriever() const {
    return history_retriever_;
  }

 private:
  friend class EmbedStage;
  friend class RetrieveStage;
  friend class RerankStage;
  friend class PromptStage;
  friend class GenerateStage;
  friend class PostprocessStage;

  /// Stages Prompt..Postprocess plus history recording, shared by ask()
  /// and ask_with_retrieval(): `st.outcome.retrieval` is already populated
  /// (or intentionally empty).
  void run_tail(StageState& st) const;

  /// Append the finished request to the shared history (§III-F). Not a
  /// pipeline stage: replayed requests must never append (the replay
  /// engine builds workflows without a history store).
  void record_history(StageState& st) const;

  /// The LLM stage under the resilience policies: breaker gate, bounded
  /// retries with budget-charged backoff, virtual-latency deadline checks.
  /// On loss of the stage, returns the extractive (or stub) fallback answer
  /// and records the ladder level in `ctx`.
  [[nodiscard]] llm::LlmResponse complete_resilient(
      const llm::LlmRequest& request, resilience::RequestContext& ctx) const;

  const KnowledgeBase& kb_;
  PipelineArm arm_;
  llm::SimLlm llm_;
  std::unique_ptr<Retriever> retriever_;
  history::HistoryStore* history_ = nullptr;
  pkb::util::SimClock* clock_ = nullptr;
  const HistoryRetriever* history_retriever_ = nullptr;
};

}  // namespace pkb::rag
