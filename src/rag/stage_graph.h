#pragma once
// The executable stage graph over rag/stages.h: six Stage objects that,
// run in order against one StageState, reproduce AugmentedWorkflow::ask()
// content-identically (the parity suite in tests/stage_test.cpp gates
// this). The graph exists so the record/replay subsystem (src/replay/) can
// enter the pipeline at any cut point: seed the state with recorded
// artifacts for stages before `from`, then run_range(from, Postprocess).
//
// The stages are stateless (all per-request data lives in StageState), so
// one process-global graph serves every workflow and every thread.

#include <memory>
#include <optional>
#include <string_view>

#include "obs/trace.h"
#include "rag/stages.h"
#include "rag/workflow.h"

namespace pkb::rag {

/// The mutable state of one request moving through the graph. Everything a
/// stage reads or writes lives here; the workflow pointer supplies the
/// immutable configuration (retriever, model, history hooks).
struct StageState {
  const AugmentedWorkflow* wf = nullptr;
  std::string_view question;
  resilience::RequestContext* ctx = nullptr;

  /// The generation pinned by EmbedStage (or seeded by replay); documents
  /// referenced from `outcome` point into it.
  SnapshotPtr snapshot;
  WorkflowOutcome outcome;
  /// The LLM request assembled by PromptStage (kept here so history
  /// recording and trace capture can read the final context list).
  llm::LlmRequest request;

  /// The umbrella `retrieve` span covering Embed..Rerank. Held by pointer
  /// because obs::Span is RAII-only: EmbedStage opens it, RerankStage (or
  /// the fault handler in ask()) closes it. Replay runs with
  /// `open_retrieve_span = false` — each replayed stage gets its own
  /// `replay_stage` span instead, and an umbrella across separately
  /// wrapped stages would nest incorrectly.
  std::unique_ptr<obs::Span> retrieve_span;
  bool open_retrieve_span = true;

  /// Replay override for LlmRequest::max_attended_contexts (the context
  /// budget); applied by PromptStage after request assembly.
  std::optional<std::size_t> max_attended_override;

  /// Session hooks (serve/session.h): cross-turn context dedup and
  /// conversation-history append in PromptStage. Null for sessionless
  /// requests — the stage then behaves exactly as before.
  SessionPromptContext* session = nullptr;

  void close_retrieve_span() { retrieve_span.reset(); }
};

/// One pipeline stage: pure function of StageState (plus the workflow's
/// immutable configuration). run() may throw resilience::FaultError — the
/// caller owns degradation-ladder handling, exactly as ask() always has.
class Stage {
 public:
  virtual ~Stage() = default;
  [[nodiscard]] virtual StageKind kind() const = 0;
  virtual void run(StageState& st) const = 0;
};

/// The six stages in pipeline order. Stateless and immutable after
/// construction; access through global_stage_graph().
class StageGraph {
 public:
  StageGraph();
  [[nodiscard]] const Stage& stage(StageKind kind) const {
    return *stages_[static_cast<int>(kind)];
  }
  /// Run stages [first, last] in order. Stages guard themselves against
  /// configurations they don't apply to (Embed/Retrieve/Rerank are no-ops
  /// for a workflow without a retriever).
  void run_range(StageState& st, StageKind first, StageKind last) const;

 private:
  std::unique_ptr<Stage> stages_[kStageCount];
};

/// The process-global graph (stages are stateless, so one instance serves
/// every workflow).
[[nodiscard]] const StageGraph& global_stage_graph();

/// Shared-history recall (the Fig-3 dotted arrow), factored out of
/// PromptStage so the attention-window contract is testable in isolation:
/// history contexts are appended AFTER the document contexts (they compete
/// for the tail of the attention window), and a request that gains its
/// first contexts here is promoted from an empty system prompt to the QA
/// prompt. Emits the history_recall span.
void recall_history_contexts(const HistoryRetriever& retriever,
                             std::string_view question,
                             llm::LlmRequest& request);

/// The shared tail-append contract for recalled context (used by both
/// shared-history recall and session conversation history): contexts go
/// after whatever the request already holds, and a request that gains its
/// first contexts here is promoted from an empty system prompt to the QA
/// prompt.
void append_recalled_contexts(std::vector<llm::ContextDoc> contexts,
                              llm::LlmRequest& request);

/// Capture every artifact of a completed (or seeded) StageState into a
/// StageTrace: configuration header from the workflow, stage artifacts from
/// the state. Used by ask() when recording and by the replay engine to
/// describe the replayed run.
void capture_stage_trace(const StageState& st, StageTrace& trace);

}  // namespace pkb::rag
