#pragma once
// The prompt library (§I: "supported by processing scripts, prompt
// libraries, and agentic memory systems").

#include <string>
#include <string_view>
#include <vector>

#include "llm/types.h"

namespace pkb::rag {

/// Named system prompts for the assistant's roles.
class PromptLibrary {
 public:
  /// Answering user questions with retrieved context (the QA role).
  [[nodiscard]] static std::string qa_system_prompt();

  /// Answering without retrieval (the baseline arm).
  [[nodiscard]] static std::string baseline_system_prompt();

  /// Drafting replies to mailing-list emails (the Discord bot role).
  [[nodiscard]] static std::string email_reply_system_prompt();

  /// Proposing documentation updates (the doc-assistant role).
  [[nodiscard]] static std::string doc_update_system_prompt();

  /// Render the full user prompt: the question plus the numbered context
  /// passages with their source ids (what actually goes to the model, and
  /// what the interaction history records).
  [[nodiscard]] static std::string render_user_prompt(
      std::string_view question, const std::vector<llm::ContextDoc>& contexts);
};

}  // namespace pkb::rag
