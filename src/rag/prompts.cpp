#include "rag/prompts.h"

namespace pkb::rag {

std::string PromptLibrary::qa_system_prompt() {
  return "You are a PETSc expert assistant. Answer the user's question "
         "using the provided PETSc documentation passages. Prefer the "
         "passages over your own recollection; cite the source of any "
         "claim; if the passages do not contain the answer, say so rather "
         "than guessing. Use exact PETSc API names and runtime options.";
}

std::string PromptLibrary::baseline_system_prompt() {
  return "You are a PETSc expert assistant. Answer the user's question "
         "about the PETSc library precisely, using exact PETSc API names "
         "and runtime options.";
}

std::string PromptLibrary::email_reply_system_prompt() {
  return "You are drafting a reply to a message on the petsc-users mailing "
         "list on behalf of the PETSc developers. Be helpful, technically "
         "precise, and concise; ask for -ksp_view or -log_view output when "
         "the configuration is unclear; never invent API names. A human "
         "developer will review this draft before anything is sent.";
}

std::string PromptLibrary::doc_update_system_prompt() {
  return "You are improving PETSc documentation. Given a manual page and "
         "related discussion, draft an updated page that preserves the "
         "existing structure (Synopsis, Options Database Keys, Notes, "
         "Level, See Also) and adds the missing information. Output "
         "Markdown only.";
}

std::string PromptLibrary::render_user_prompt(
    std::string_view question, const std::vector<llm::ContextDoc>& contexts) {
  std::string prompt;
  if (!contexts.empty()) {
    prompt += "Context passages from the PETSc knowledge base:\n\n";
    for (std::size_t i = 0; i < contexts.size(); ++i) {
      prompt += "[" + std::to_string(i + 1) + "] (source: " + contexts[i].id +
                ")\n" + contexts[i].text + "\n\n";
    }
    prompt += "---\n\n";
  }
  prompt += "Question: ";
  prompt += question;
  return prompt;
}

}  // namespace pkb::rag
