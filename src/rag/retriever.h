#pragma once
// The retrieval phase (§III-B/C/D): embedding search (first pass, K
// candidates) + PETSc keyword augmentation + optional reranking down to L.

#include <memory>
#include <string>

#include "rag/database.h"
#include "rerank/reranker.h"

namespace pkb::rag {

/// Retrieval configuration. The paper's setting is K = 8, L = 4.
struct RetrieverOptions {
  std::size_t first_pass_k = 8;  ///< vector-search candidates
  std::size_t final_l = 4;       ///< contexts kept after reranking
  bool use_keyword_search = true;
  /// Reranker registry name; empty disables the rerank stage (plain RAG).
  std::string reranker = "sim-flashrank";
};

/// One retrieved context with provenance.
struct RetrievedContext {
  const text::Document* doc = nullptr;
  double score = 0.0;
  /// "vector", "keyword", or "vector+keyword" — how the candidate was found.
  std::string via;
  /// Rank in the first pass (0-based; keyword-only candidates rank after all
  /// vector candidates in arrival order).
  std::size_t first_pass_rank = 0;
};

/// Full retrieval outcome with stage timings (feeds Table II).
struct RetrievalResult {
  /// Final contexts, best first. Plain RAG: first-pass order; rerank arm:
  /// rerank order, truncated to L.
  std::vector<RetrievedContext> contexts;
  /// The first-pass candidates before reranking (for the case-study benches
  /// that diff the two arms' context sets).
  std::vector<RetrievedContext> first_pass;
  double embed_seconds = 0.0;    ///< query embedding
  double search_seconds = 0.0;   ///< vector search + keyword lookup
  double rerank_seconds = 0.0;   ///< rerank stage (0 when disabled)
  /// Total RAG processing time (embed + search + rerank).
  [[nodiscard]] double rag_seconds() const {
    return embed_seconds + search_seconds + rerank_seconds;
  }
};

/// Bound to a database; owns its reranker.
class Retriever {
 public:
  Retriever(const RagDatabase& db, RetrieverOptions opts = {});

  [[nodiscard]] RetrievalResult retrieve(std::string_view query) const;

  [[nodiscard]] const RetrieverOptions& options() const { return opts_; }
  [[nodiscard]] bool reranking_enabled() const { return reranker_ != nullptr; }

 private:
  const RagDatabase& db_;
  RetrieverOptions opts_;
  std::unique_ptr<rerank::Reranker> reranker_;
};

}  // namespace pkb::rag
