#pragma once
// The retrieval phase (§III-B/C/D): embedding search (first pass, K
// candidates) + PETSc keyword augmentation + optional reranking down to L.

#include <memory>
#include <string>

#include "rag/database.h"
#include "rerank/reranker.h"

namespace pkb::rag {

/// Retrieval configuration. The paper's setting is K = 8, L = 4.
struct RetrieverOptions {
  std::size_t first_pass_k = 8;  ///< vector-search candidates
  std::size_t final_l = 4;       ///< contexts kept after reranking
  bool use_keyword_search = true;
  /// Reranker registry name; empty disables the rerank stage (plain RAG).
  std::string reranker = "sim-flashrank";
};

/// One retrieved context with provenance.
struct RetrievedContext {
  const text::Document* doc = nullptr;
  double score = 0.0;
  /// "vector", "keyword", or "vector+keyword" — how the candidate was found.
  std::string via;
  /// Rank in the first pass (0-based; keyword-only candidates rank after all
  /// vector candidates in arrival order).
  std::size_t first_pass_rank = 0;
};

/// Full retrieval outcome with stage timings (feeds Table II).
struct RetrievalResult {
  /// Final contexts, best first. Plain RAG: first-pass order; rerank arm:
  /// rerank order, truncated to L.
  std::vector<RetrievedContext> contexts;
  /// The first-pass candidates before reranking (for the case-study benches
  /// that diff the two arms' context sets).
  std::vector<RetrievedContext> first_pass;
  double embed_seconds = 0.0;    ///< query embedding
  double search_seconds = 0.0;   ///< vector search + keyword lookup
  double rerank_seconds = 0.0;   ///< rerank stage (0 when disabled)
  /// Total RAG processing time (embed + search + rerank).
  [[nodiscard]] double rag_seconds() const {
    return embed_seconds + search_seconds + rerank_seconds;
  }
};

/// Bound to a database; owns its reranker. All retrieval entry points are
/// const and safe to call concurrently from many threads: the database is
/// immutable after build and the reranker's rerank() is const.
class Retriever {
 public:
  Retriever(const RagDatabase& db, RetrieverOptions opts = {});

  [[nodiscard]] RetrievalResult retrieve(std::string_view query) const;

  /// As retrieve(), but with the query embedding supplied by the caller
  /// (e.g. the serve layer's embedding memo cache). `query_vec` must equal
  /// db().embedder().embed(query) for the result to match retrieve();
  /// embed_seconds is reported as 0 (no embedding work happened here).
  [[nodiscard]] RetrievalResult retrieve_with_embedding(
      std::string_view query, const embed::Vector& query_vec) const;

  /// Batched retrieval: embeds every query, runs one amortized
  /// VectorStore::similarity_search_batch scan, then completes keyword
  /// augmentation and reranking per query. Element i is identical in
  /// content to retrieve(queries[i]).
  [[nodiscard]] std::vector<RetrievalResult> retrieve_batch(
      const std::vector<std::string>& queries) const;

  /// Batched retrieval with caller-supplied query embeddings (the serve
  /// layer's memo cache); `vecs` is parallel to `queries`. embed_seconds is
  /// reported as 0.
  [[nodiscard]] std::vector<RetrievalResult> retrieve_batch_with_embeddings(
      const std::vector<std::string>& queries,
      const std::vector<embed::Vector>& vecs) const;

  [[nodiscard]] const RetrieverOptions& options() const { return opts_; }
  [[nodiscard]] bool reranking_enabled() const { return reranker_ != nullptr; }
  [[nodiscard]] const RagDatabase& db() const { return db_; }

 private:
  /// Stages 2..4 of retrieval: keyword augmentation, provenance metrics,
  /// reranking. `vector_hits` are the first-pass hits for `query`;
  /// `result` carries the embed timing already accounted by the caller.
  void assemble_from_hits(std::string_view query,
                          const std::vector<vectordb::SearchResult>& vector_hits,
                          RetrievalResult& result) const;

  const RagDatabase& db_;
  RetrieverOptions opts_;
  std::unique_ptr<rerank::Reranker> reranker_;
};

}  // namespace pkb::rag
