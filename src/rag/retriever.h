#pragma once
// The retrieval phase (§III-B/C/D): embedding search (first pass, K
// candidates) + PETSc keyword augmentation + optional reranking down to L.
//
// Generational model: every retrieval runs against one pinned Snapshot and
// the result carries that SnapshotPtr, so the contexts' Document pointers
// stay valid even after the knowledge base publishes newer generations.
// Callers that already pinned a snapshot (the serve layer does, to keep its
// caches generation-consistent) pass it to the *_on entry points; the plain
// entry points pin the current generation themselves.

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "rag/knowledge_base.h"
#include "rerank/reranker.h"
#include "resilience/fault_plan.h"

namespace pkb::rag {

/// Retrieval configuration. The paper's setting is K = 8, L = 4.
struct RetrieverOptions {
  std::size_t first_pass_k = 8;  ///< vector-search candidates
  std::size_t final_l = 4;       ///< contexts kept after reranking
  bool use_keyword_search = true;
  /// Reranker registry name; empty disables the rerank stage (plain RAG).
  std::string reranker = "sim-flashrank";
};

/// One retrieved context with provenance. `doc` points into the snapshot
/// pinned by the owning RetrievalResult.
struct RetrievedContext {
  const text::Document* doc = nullptr;
  double score = 0.0;
  /// "vector", "keyword", or "vector+keyword" — how the candidate was found.
  std::string via;
  /// Rank in the first pass (0-based; keyword-only candidates rank after all
  /// vector candidates in arrival order).
  std::size_t first_pass_rank = 0;
};

/// Full retrieval outcome with stage timings (feeds Table II).
struct RetrievalResult {
  /// The generation this retrieval ran against. Owning this pointer is what
  /// keeps every `doc` pointer in `contexts` alive across later publishes.
  SnapshotPtr snapshot;
  /// Final contexts, best first. Plain RAG: first-pass order; rerank arm:
  /// rerank order, truncated to L.
  std::vector<RetrievedContext> contexts;
  /// The first-pass candidates before reranking (for the case-study benches
  /// that diff the two arms' context sets).
  std::vector<RetrievedContext> first_pass;
  double embed_seconds = 0.0;    ///< query embedding
  double search_seconds = 0.0;   ///< vector search + keyword lookup
  double rerank_seconds = 0.0;   ///< rerank stage (0 when disabled)
  /// The rerank stage failed (injected fault/timeout) and `contexts` is the
  /// unreranked first-pass order — the first rung of the degradation ladder.
  bool rerank_degraded = false;
  /// Scatter–gather shard accounting (0/0 on the monolithic path). A
  /// nonzero shards_failed tags the answer partial: the first pass covered
  /// only the surviving shards' documents. All shards failing raises a
  /// FaultError instead (degradation ladder: NoRetrieval), so shards_failed
  /// < shards_total whenever a result is returned.
  std::size_t shards_failed = 0;
  std::size_t shards_total = 0;
  /// The query embedding that produced the first pass (shared so copies of
  /// the result stay cheap). Carried for the record/replay subsystem: a
  /// trace of a precomputed-retrieval request still captures the Embed
  /// artifact. Null only for an empty (degraded) result.
  std::shared_ptr<const embed::Vector> query_embedding;
  /// Set once this retrieval's rag_seconds() has been charged to a request
  /// deadline budget (PromptStage). Guarantees a retrieval's wall time is
  /// charged exactly once however the result reaches the workflow — ask(),
  /// ask_with_retrieval(), or a batch path that pre-charged it.
  bool budget_charged = false;
  [[nodiscard]] bool partial() const { return shards_failed > 0; }
  /// Total RAG processing time (embed + search + rerank).
  [[nodiscard]] double rag_seconds() const {
    return embed_seconds + search_seconds + rerank_seconds;
  }
  /// Generation id of the pinned snapshot (0 when unset).
  [[nodiscard]] std::uint64_t generation() const {
    return snapshot ? snapshot->generation : 0;
  }
};

/// Bound to a KnowledgeBase; owns its reranker. All retrieval entry points
/// are const and safe to call concurrently from many threads: snapshots are
/// immutable and the reranker's rerank() is const. The reranker is refitted
/// lazily (under an internal mutex) when a retrieval first observes a new
/// generation, so its corpus statistics track the published chunk list.
class Retriever {
 public:
  Retriever(const KnowledgeBase& kb, RetrieverOptions opts = {});

  [[nodiscard]] RetrievalResult retrieve(std::string_view query) const;

  /// As retrieve(), but against an explicitly pinned generation. The serve
  /// layer pins once per request and passes the same snapshot to embedding
  /// and retrieval so the two can never straddle a publish.
  [[nodiscard]] RetrievalResult retrieve_on(const SnapshotPtr& snap,
                                            std::string_view query) const;

  /// As retrieve_on(), but with the query embedding supplied by the caller
  /// (e.g. the serve layer's embedding memo cache). `query_vec` must equal
  /// snap->embedder->embed(query) for the result to match retrieve_on();
  /// embed_seconds is reported as 0 (no embedding work happened here).
  [[nodiscard]] RetrievalResult retrieve_with_embedding(
      const SnapshotPtr& snap, std::string_view query,
      const embed::Vector& query_vec) const;

  /// Batched retrieval: embeds every query, runs one amortized
  /// VectorStore::similarity_search_batch scan, then completes keyword
  /// augmentation and reranking per query. Element i is identical in
  /// content to retrieve(queries[i]) on the same snapshot.
  [[nodiscard]] std::vector<RetrievalResult> retrieve_batch(
      const std::vector<std::string>& queries) const;

  /// Batched retrieval with caller-supplied query embeddings (the serve
  /// layer's memo cache); `vecs` is parallel to `queries`. embed_seconds is
  /// reported as 0.
  [[nodiscard]] std::vector<RetrievalResult> retrieve_batch_with_embeddings(
      const SnapshotPtr& snap, const std::vector<std::string>& queries,
      const std::vector<embed::Vector>& vecs) const;

  [[nodiscard]] const RetrieverOptions& options() const { return opts_; }
  [[nodiscard]] bool reranking_enabled() const {
    return !opts_.reranker.empty();
  }

  // --- stage-level entry points -------------------------------------------
  // The retrieval phase decomposed along the stage-graph cut points
  // (rag/stage_graph.h). retrieve_on() is exactly embed_stage ->
  // search_stage -> augment_stage -> rerank_stage; the stage graph and the
  // replay engine run the same pieces individually, so there is one
  // definition of each stage's behaviour. All are const and thread-safe.

  /// Embed `query` against `snap` (embed_query span, embed_seconds,
  /// result.query_embedding).
  void embed_stage(const Snapshot& snap, std::string_view query,
                   RetrievalResult& result) const;

  /// First-pass vector hits for an already-embedded query (vector_search
  /// span, search_seconds, shard accounting). Throws FaultError when the
  /// search is lost past its hedges.
  [[nodiscard]] std::vector<vectordb::SearchResult> search_stage(
      const Snapshot& snap, const embed::Vector& query_vec,
      RetrievalResult& result) const;

  /// Keyword augmentation + candidate assembly (keyword_augment span,
  /// provenance counters); fills result.first_pass.
  void augment_stage(const Snapshot& snap, std::string_view query,
                     const std::vector<vectordb::SearchResult>& vector_hits,
                     RetrievalResult& result) const;

  /// Rerank result.first_pass down to L into result.contexts (rerank span;
  /// a faulted rerank degrades to first-pass order), or pass first-pass
  /// order through when reranking is disabled.
  void rerank_stage(const Snapshot& snap, std::string_view query,
                    RetrievalResult& result) const;

  /// Observe the per-stage latency histograms for a completed retrieval.
  void observe_retrieval_metrics(const RetrievalResult& result) const;

  /// Attach a chaos plan. Vector-search decisions are consulted here (the
  /// snapshot's store is immutable, so the retriever is the injection
  /// point on the serving path) with up to `search_hedges` hedged
  /// re-attempts before the fault propagates; the plan is also handed to
  /// every reranker this retriever fits, whose rerank faults are caught in
  /// assemble_from_hits and degrade to first-pass order. Pass nullptr to
  /// detach. Setup-time only — must not race in-flight retrievals.
  void set_fault_plan(const pkb::resilience::FaultPlan* plan,
                      std::uint32_t search_hedges = 1);
  [[nodiscard]] const KnowledgeBase& kb() const { return kb_; }
  /// Compat name for the pre-generational accessor.
  [[nodiscard]] const KnowledgeBase& db() const { return kb_; }

 private:
  /// Stages 2..4 of retrieval: keyword augmentation, provenance metrics,
  /// reranking. `vector_hits` are the first-pass hits for `query` against
  /// `snap`; `result` carries the embed timing already accounted by the
  /// caller and has `result.snapshot` set.
  void assemble_from_hits(const Snapshot& snap, std::string_view query,
                          const std::vector<vectordb::SearchResult>& vector_hits,
                          RetrievalResult& result) const;

  /// The reranker fitted for `snap`'s generation, refitting if this is the
  /// first retrieval to observe it. Returns nullptr when reranking is off.
  [[nodiscard]] std::shared_ptr<const rerank::Reranker> reranker_for(
      const Snapshot& snap) const;

  /// Vector search with fault consultation and hedged re-attempts; the
  /// single-query and batched paths share the retry shape through the
  /// `search` callable.
  template <typename SearchFn>
  auto search_with_hedge(SearchFn&& search) const
      -> decltype(search());

  /// First-pass vector hits for one query: the snapshot's ShardRouter when
  /// sharding is on (per-shard hedging and breakers inside; shard losses
  /// tagged on `result`), the monolithic hedged scan otherwise. Throws a
  /// FaultError when no shard (or the single scan, past its hedges) could
  /// answer.
  [[nodiscard]] std::vector<vectordb::SearchResult> first_pass_hits(
      const Snapshot& snap, const embed::Vector& query_vec,
      RetrievalResult& result) const;

  const KnowledgeBase& kb_;
  RetrieverOptions opts_;
  mutable std::mutex rerank_mu_;
  mutable std::shared_ptr<rerank::Reranker> reranker_;
  mutable std::uint64_t reranker_generation_ = 0;
  const pkb::resilience::FaultPlan* fault_plan_ = nullptr;
  std::uint32_t search_hedges_ = 1;
};

}  // namespace pkb::rag
