#include "rag/database.h"

#include "util/log.h"

namespace pkb::rag {

RagDatabase RagDatabase::build(const text::VirtualDir& corpus,
                               RagDatabaseOptions opts) {
  RagDatabase db;
  db.opts_ = opts;

  const text::DirectoryLoader dir_loader(opts.file_pattern);
  const text::MarkdownLoader md_loader(text::MarkdownMode::Single,
                                       /*drop_headings=*/true);
  const std::vector<text::Document> docs =
      md_loader.load(dir_loader.load(corpus));
  db.source_count_ = docs.size();

  const text::RecursiveCharacterTextSplitter splitter(opts.splitter);
  db.chunks_ = splitter.split_documents(docs);

  db.embedder_ = embed::make_embedder(opts.embedder);
  db.embedder_->fit(db.chunks_);
  db.store_ = vectordb::VectorStore::from_documents(db.chunks_, *db.embedder_);
  db.symbols_ = std::make_unique<lexical::SymbolIndex>(db.chunks_);

  PKB_LOG(Info, "rag") << "database built: " << db.source_count_
                       << " documents, " << db.chunks_.size() << " chunks, "
                       << "embedder " << db.embedder_->name() << " (dim "
                       << db.embedder_->dimension() << ")";
  return db;
}

}  // namespace pkb::rag
