#include "rag/retriever.h"

#include <algorithm>
#include <unordered_map>

#include "util/clock.h"

namespace pkb::rag {

Retriever::Retriever(const RagDatabase& db, RetrieverOptions opts)
    : db_(db), opts_(std::move(opts)) {
  if (!opts_.reranker.empty()) {
    reranker_ = rerank::make_reranker(opts_.reranker);
    reranker_->fit(db_.chunks());
  }
}

RetrievalResult Retriever::retrieve(std::string_view query) const {
  RetrievalResult result;
  pkb::util::Stopwatch watch;

  // --- First pass 1/2: embedding search (box 1 of Fig 3). ---
  const embed::Vector query_vec = db_.embedder().embed(query);
  result.embed_seconds = watch.seconds();
  watch.reset();

  const auto vector_hits =
      db_.store().similarity_search(query_vec, opts_.first_pass_k);

  // --- First pass 2/2: PETSc keyword augmentation (§III-C). ---
  // Candidates dedup by chunk id: vector hits point into the store's copy
  // of the documents, keyword hits into the database's chunk list.
  std::vector<RetrievedContext> candidates;
  std::unordered_map<std::string_view, std::size_t> pos;
  for (const vectordb::SearchResult& hit : vector_hits) {
    RetrievedContext ctx;
    ctx.doc = hit.doc;
    ctx.score = hit.score;
    ctx.via = "vector";
    ctx.first_pass_rank = candidates.size();
    pos.emplace(hit.doc->id, candidates.size());
    candidates.push_back(std::move(ctx));
  }
  if (opts_.use_keyword_search) {
    for (const lexical::KeywordHit& hit : db_.symbols().lookup(query)) {
      for (std::size_t chunk_index : hit.chunks) {
        const text::Document* doc = &db_.chunks()[chunk_index];
        auto it = pos.find(std::string_view(doc->id));
        if (it != pos.end()) {
          candidates[it->second].via = "vector+keyword";
          continue;
        }
        RetrievedContext ctx;
        ctx.doc = doc;
        ctx.score = 0.0;  // keyword hits carry no embedding score
        ctx.via = "keyword";
        ctx.first_pass_rank = candidates.size();
        pos.emplace(std::string_view(doc->id), candidates.size());
        candidates.push_back(std::move(ctx));
      }
    }
  }
  result.search_seconds = watch.seconds();
  result.first_pass = candidates;

  // --- Second pass: reranking K (+ keyword extras) down to L (§III-D). ---
  if (reranker_ != nullptr) {
    watch.reset();
    std::vector<rerank::RerankCandidate> rc;
    rc.reserve(candidates.size());
    for (const RetrievedContext& ctx : candidates) {
      rc.push_back(rerank::RerankCandidate{
          ctx.doc, static_cast<float>(ctx.score)});
    }
    const auto reranked = reranker_->rerank(query, rc, opts_.final_l);
    result.contexts.clear();
    for (const rerank::RerankResult& rr : reranked) {
      RetrievedContext ctx = candidates[rr.original_rank];
      ctx.score = rr.score;
      result.contexts.push_back(std::move(ctx));
    }
    result.rerank_seconds = watch.seconds();
  } else {
    // Plain RAG: first-pass order, unreranked. All candidates are passed on;
    // the model's attention window (L) decides what is actually read.
    result.contexts = candidates;
  }
  return result;
}

}  // namespace pkb::rag
