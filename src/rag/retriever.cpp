#include "rag/retriever.h"

#include <algorithm>
#include <unordered_map>

#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/clock.h"
#include "util/thread_pool.h"
#include "vectordb/shard_router.h"

namespace pkb::rag {

void Retriever::observe_retrieval_metrics(const RetrievalResult& result) const {
  obs::MetricsRegistry& metrics = obs::global_metrics();
  metrics.histogram(obs::kRetrieveEmbedSeconds).observe(result.embed_seconds);
  metrics.histogram(obs::kRetrieveSearchSeconds)
      .observe(result.search_seconds);
  metrics.histogram(obs::kRetrieveRagSeconds).observe(result.rag_seconds());
}

Retriever::Retriever(const KnowledgeBase& kb, RetrieverOptions opts)
    : kb_(kb), opts_(std::move(opts)) {
  if (!opts_.reranker.empty()) {
    const SnapshotPtr snap = kb_.snapshot();
    std::unique_ptr<rerank::Reranker> reranker =
        rerank::make_reranker(opts_.reranker);
    reranker->fit(snap->chunks);
    reranker_ = std::move(reranker);
    reranker_generation_ = snap->generation;
  }
}

void Retriever::set_fault_plan(const pkb::resilience::FaultPlan* plan,
                               std::uint32_t search_hedges) {
  fault_plan_ = plan;
  search_hedges_ = search_hedges;
  std::lock_guard<std::mutex> lock(rerank_mu_);
  if (reranker_ != nullptr) reranker_->set_fault_plan(plan);
}

std::shared_ptr<const rerank::Reranker> Retriever::reranker_for(
    const Snapshot& snap) const {
  if (opts_.reranker.empty()) return nullptr;
  std::lock_guard<std::mutex> lock(rerank_mu_);
  if (reranker_ == nullptr || reranker_generation_ != snap.generation) {
    std::unique_ptr<rerank::Reranker> reranker =
        rerank::make_reranker(opts_.reranker);
    reranker->fit(snap.chunks);
    reranker->set_fault_plan(fault_plan_);
    reranker_ = std::move(reranker);
    reranker_generation_ = snap.generation;
  }
  return reranker_;
}

template <typename SearchFn>
auto Retriever::search_with_hedge(SearchFn&& search) const
    -> decltype(search()) {
  namespace res = pkb::resilience;
  for (std::uint32_t attempt = 0;; ++attempt) {
    try {
      res::consult(fault_plan_, res::Stage::VectorSearch);
      auto hits = search();
      if (attempt > 0) {
        obs::global_metrics()
            .counter(obs::kResilienceHedgeWinsTotal,
                     {{"stage", "vector_search"}})
            .inc();
      }
      return hits;
    } catch (const res::FaultError&) {
      if (attempt >= search_hedges_) throw;
      obs::global_metrics()
          .counter(obs::kResilienceHedgesTotal, {{"stage", "vector_search"}})
          .inc();
      obs::Span span(obs::global_tracer(), obs::kSpanHedge);
      span.set_attr("stage", "vector_search");
      span.set_attr("attempt", static_cast<std::uint64_t>(attempt) + 1);
    }
  }
}

std::vector<vectordb::SearchResult> Retriever::first_pass_hits(
    const Snapshot& snap, const embed::Vector& query_vec,
    RetrievalResult& result) const {
  namespace res = pkb::resilience;
  if (snap.shards != nullptr) {
    // Scatter–gather: hedging, fault consultation, and per-shard breakers
    // live inside the router, so no search_with_hedge wrapper here. A lost
    // shard degrades the result (partial, tagged); only every shard failing
    // escalates to the caller's degradation ladder.
    const vectordb::ScatterOptions sopts{fault_plan_, search_hedges_};
    vectordb::Scatter sc =
        snap.shards->search(query_vec, opts_.first_pass_k, nullptr, sopts);
    if (sc.shards_total > 0 && sc.shards_failed == sc.shards_total) {
      throw res::TransientError(res::Stage::VectorSearch,
                                "shard scatter: every shard failed");
    }
    result.shards_failed = sc.shards_failed;
    result.shards_total = sc.shards_total;
    return std::move(sc.hits);
  }
  if (snap.ann != nullptr) {
    // Monolithic ANN path (opts.index): same hedging as the exact scan.
    return search_with_hedge(
        [&] { return snap.ann->search(query_vec, opts_.first_pass_k); });
  }
  return search_with_hedge([&] {
    return snap.store.similarity_search(query_vec, opts_.first_pass_k);
  });
}

void Retriever::embed_stage(const Snapshot& snap, std::string_view query,
                            RetrievalResult& result) const {
  pkb::util::Stopwatch watch;
  auto vec = std::make_shared<embed::Vector>();
  {
    obs::Span embed_span(obs::global_tracer(), obs::kSpanEmbedQuery);
    *vec = snap.embedder->embed(query);
    embed_span.set_attr("embedder", snap.embedder->name());
    embed_span.set_attr("dim", vec->size());
  }
  result.query_embedding = std::move(vec);
  result.embed_seconds = watch.seconds();
}

std::vector<vectordb::SearchResult> Retriever::search_stage(
    const Snapshot& snap, const embed::Vector& query_vec,
    RetrievalResult& result) const {
  pkb::util::Stopwatch watch;
  std::vector<vectordb::SearchResult> vector_hits;
  {
    obs::Span search_span(obs::global_tracer(), obs::kSpanVectorSearch);
    vector_hits = first_pass_hits(snap, query_vec, result);
    search_span.set_attr("hits", vector_hits.size());
  }
  result.search_seconds = watch.seconds();
  return vector_hits;
}

void Retriever::augment_stage(
    const Snapshot& snap, std::string_view query,
    const std::vector<vectordb::SearchResult>& vector_hits,
    RetrievalResult& result) const {
  obs::MetricsRegistry& metrics = obs::global_metrics();
  pkb::util::Stopwatch watch;

  // --- First pass 2/2: PETSc keyword augmentation (§III-C). ---
  // Candidates dedup by chunk id: vector hits point into the store's copy
  // of the documents, keyword hits into the snapshot's chunk list.
  std::vector<RetrievedContext> candidates;
  std::unordered_map<std::string_view, std::size_t> pos;
  for (const vectordb::SearchResult& hit : vector_hits) {
    RetrievedContext ctx;
    ctx.doc = hit.doc;
    ctx.score = hit.score;
    ctx.via = "vector";
    ctx.first_pass_rank = candidates.size();
    pos.emplace(hit.doc->id, candidates.size());
    candidates.push_back(std::move(ctx));
  }
  if (opts_.use_keyword_search) {
    obs::Span keyword_span(obs::global_tracer(), obs::kSpanKeywordAugment);
    std::size_t added = 0;
    std::size_t merged = 0;
    for (const lexical::KeywordHit& hit : snap.symbols->lookup(query)) {
      for (std::size_t chunk_index : hit.chunks) {
        const text::Document* doc = &snap.chunks[chunk_index];
        auto it = pos.find(std::string_view(doc->id));
        if (it != pos.end()) {
          if (candidates[it->second].via == "vector") ++merged;
          candidates[it->second].via = "vector+keyword";
          continue;
        }
        RetrievedContext ctx;
        ctx.doc = doc;
        ctx.score = 0.0;  // keyword hits carry no embedding score
        ctx.via = "keyword";
        ctx.first_pass_rank = candidates.size();
        pos.emplace(std::string_view(doc->id), candidates.size());
        candidates.push_back(std::move(ctx));
        ++added;
      }
    }
    keyword_span.set_attr("added", added);
    keyword_span.set_attr("merged", merged);
  }
  result.search_seconds += watch.seconds();
  result.first_pass = candidates;

  // Candidate provenance counters (one registry lookup per label value).
  {
    std::size_t by_via[3] = {0, 0, 0};
    for (const RetrievedContext& ctx : candidates) {
      if (ctx.via == "vector") ++by_via[0];
      else if (ctx.via == "keyword") ++by_via[1];
      else ++by_via[2];
    }
    static constexpr std::string_view kVia[3] = {"vector", "keyword",
                                                 "vector+keyword"};
    for (int i = 0; i < 3; ++i) {
      if (by_via[i] > 0) {
        metrics
            .counter(obs::kRetrieveCandidatesTotal,
                     {{"via", std::string(kVia[i])}})
            .inc(by_via[i]);
      }
    }
  }
}

void Retriever::rerank_stage(const Snapshot& snap, std::string_view query,
                             RetrievalResult& result) const {
  // --- Second pass: reranking K (+ keyword extras) down to L (§III-D). ---
  const std::vector<RetrievedContext>& candidates = result.first_pass;
  const std::shared_ptr<const rerank::Reranker> reranker = reranker_for(snap);
  if (reranker != nullptr) {
    pkb::util::Stopwatch watch;
    obs::Span rerank_span(obs::global_tracer(), obs::kSpanRerank);
    rerank_span.set_attr("reranker", reranker->name());
    rerank_span.set_attr("in", candidates.size());
    std::vector<rerank::RerankCandidate> rc;
    rc.reserve(candidates.size());
    for (const RetrievedContext& ctx : candidates) {
      rc.push_back(rerank::RerankCandidate{
          ctx.doc, static_cast<float>(ctx.score)});
    }
    try {
      const auto reranked = reranker->rerank(query, rc, opts_.final_l);
      result.contexts.clear();
      for (const rerank::RerankResult& rr : reranked) {
        RetrievedContext ctx = candidates[rr.original_rank];
        ctx.score = rr.score;
        result.contexts.push_back(std::move(ctx));
      }
    } catch (const pkb::resilience::FaultError&) {
      // First rung of the degradation ladder: a failed/timed-out rerank
      // serves the first-pass order instead of failing the request.
      result.contexts = candidates;
      result.rerank_degraded = true;
      rerank_span.set_attr("degraded", true);
    }
    rerank_span.set_attr("out", result.contexts.size());
    result.rerank_seconds = watch.seconds();
  } else {
    // Plain RAG: first-pass order, unreranked. All candidates are passed on;
    // the model's attention window (L) decides what is actually read.
    result.contexts = candidates;
  }
}

RetrievalResult Retriever::retrieve(std::string_view query) const {
  return retrieve_on(kb_.snapshot(), query);
}

void Retriever::assemble_from_hits(
    const Snapshot& snap, std::string_view query,
    const std::vector<vectordb::SearchResult>& vector_hits,
    RetrievalResult& result) const {
  augment_stage(snap, query, vector_hits, result);
  rerank_stage(snap, query, result);
}

RetrievalResult Retriever::retrieve_on(const SnapshotPtr& snap,
                                       std::string_view query) const {
  obs::global_metrics().counter(obs::kRetrieveRequestsTotal).inc();
  obs::Span span(obs::global_tracer(), obs::kSpanRetrieve);
  span.set_attr("k", opts_.first_pass_k);
  span.set_attr("l", opts_.final_l);
  span.set_attr("generation", snap->generation);

  RetrievalResult result;
  result.snapshot = snap;

  // --- First pass 1/2: embedding search (box 1 of Fig 3). ---
  embed_stage(*snap, query, result);
  const std::vector<vectordb::SearchResult> vector_hits =
      search_stage(*snap, *result.query_embedding, result);
  assemble_from_hits(*snap, query, vector_hits, result);
  span.set_attr("candidates", result.first_pass.size());
  span.set_attr("kept", result.contexts.size());
  observe_retrieval_metrics(result);
  return result;
}

RetrievalResult Retriever::retrieve_with_embedding(
    const SnapshotPtr& snap, std::string_view query,
    const embed::Vector& query_vec) const {
  obs::global_metrics().counter(obs::kRetrieveRequestsTotal).inc();
  obs::Span span(obs::global_tracer(), obs::kSpanRetrieve);
  span.set_attr("k", opts_.first_pass_k);
  span.set_attr("l", opts_.final_l);
  span.set_attr("generation", snap->generation);

  RetrievalResult result;
  result.snapshot = snap;
  result.query_embedding = std::make_shared<embed::Vector>(query_vec);
  const std::vector<vectordb::SearchResult> vector_hits =
      search_stage(*snap, query_vec, result);
  assemble_from_hits(*snap, query, vector_hits, result);
  span.set_attr("candidates", result.first_pass.size());
  span.set_attr("kept", result.contexts.size());
  observe_retrieval_metrics(result);
  return result;
}

std::vector<RetrievalResult> Retriever::retrieve_batch(
    const std::vector<std::string>& queries) const {
  if (queries.empty()) return {};
  const SnapshotPtr snap = kb_.snapshot();
  // Embed every query in parallel (the embedder is thread-safe after fit).
  pkb::util::Stopwatch watch;
  std::vector<embed::Vector> vecs(queries.size());
  pkb::util::parallel_for(
      0, queries.size(),
      [&](std::size_t i) { vecs[i] = snap->embedder->embed(queries[i]); },
      /*min_block=*/1);
  const double embed_total = watch.seconds();

  std::vector<RetrievalResult> out =
      retrieve_batch_with_embeddings(snap, queries, vecs);
  // Attribute the shared embedding time evenly across the batch.
  const double share = embed_total / static_cast<double>(queries.size());
  for (RetrievalResult& r : out) r.embed_seconds = share;
  return out;
}

std::vector<RetrievalResult> Retriever::retrieve_batch_with_embeddings(
    const SnapshotPtr& snap, const std::vector<std::string>& queries,
    const std::vector<embed::Vector>& vecs) const {
  std::vector<RetrievalResult> out(queries.size());
  if (queries.empty()) return out;
  obs::MetricsRegistry& metrics = obs::global_metrics();
  metrics.counter(obs::kRetrieveRequestsTotal).inc(queries.size());

  // One amortized scan for the whole batch.
  pkb::util::Stopwatch watch;
  std::vector<std::vector<vectordb::SearchResult>> all_hits;
  std::size_t shards_failed = 0;
  std::size_t shards_total = 0;
  {
    obs::Span span(obs::global_tracer(), obs::kSpanVectorSearchBatch);
    span.set_attr("queries", queries.size());
    span.set_attr("k", opts_.first_pass_k);
    if (snap->shards != nullptr) {
      // Sharded: every shard runs one amortized batch scan; shard losses
      // are shared by the whole batch (see ShardRouter::search_batch).
      const vectordb::ScatterOptions sopts{fault_plan_, search_hedges_};
      std::vector<vectordb::Scatter> scatters =
          snap->shards->search_batch(vecs, opts_.first_pass_k, nullptr,
                                     sopts);
      shards_failed = scatters[0].shards_failed;
      shards_total = scatters[0].shards_total;
      if (shards_total > 0 && shards_failed == shards_total) {
        throw pkb::resilience::TransientError(
            pkb::resilience::Stage::VectorSearch,
            "shard scatter: every shard failed");
      }
      all_hits.reserve(scatters.size());
      for (vectordb::Scatter& sc : scatters) {
        all_hits.push_back(std::move(sc.hits));
      }
    } else if (snap->ann != nullptr) {
      all_hits = search_with_hedge([&] {
        return snap->ann->search_batch(vecs, opts_.first_pass_k);
      });
    } else {
      all_hits = search_with_hedge([&] {
        return snap->store.similarity_search_batch(vecs, opts_.first_pass_k);
      });
    }
  }
  const double search_total = watch.seconds();

  // Per-query completion: keyword augmentation + rerank. The shared scan
  // time is attributed evenly across the batch so per-query rag_seconds
  // still sums to the batch's true stage cost.
  const double n = static_cast<double>(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    obs::Span span(obs::global_tracer(), obs::kSpanRetrieve);
    span.set_attr("k", opts_.first_pass_k);
    span.set_attr("l", opts_.final_l);
    span.set_attr("generation", snap->generation);
    out[i].snapshot = snap;
    out[i].query_embedding = std::make_shared<embed::Vector>(vecs[i]);
    out[i].search_seconds = search_total / n;
    out[i].shards_failed = shards_failed;
    out[i].shards_total = shards_total;
    assemble_from_hits(*snap, queries[i], all_hits[i], out[i]);
    span.set_attr("candidates", out[i].first_pass.size());
    span.set_attr("kept", out[i].contexts.size());
    observe_retrieval_metrics(out[i]);
  }
  return out;
}

}  // namespace pkb::rag
