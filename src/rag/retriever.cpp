#include "rag/retriever.h"

#include <algorithm>
#include <unordered_map>

#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/clock.h"

namespace pkb::rag {

Retriever::Retriever(const RagDatabase& db, RetrieverOptions opts)
    : db_(db), opts_(std::move(opts)) {
  if (!opts_.reranker.empty()) {
    reranker_ = rerank::make_reranker(opts_.reranker);
    reranker_->fit(db_.chunks());
  }
}

RetrievalResult Retriever::retrieve(std::string_view query) const {
  obs::MetricsRegistry& metrics = obs::global_metrics();
  metrics.counter(obs::kRetrieveRequestsTotal).inc();
  obs::Span span(obs::global_tracer(), obs::kSpanRetrieve);
  span.set_attr("k", opts_.first_pass_k);
  span.set_attr("l", opts_.final_l);

  RetrievalResult result;
  pkb::util::Stopwatch watch;

  // --- First pass 1/2: embedding search (box 1 of Fig 3). ---
  embed::Vector query_vec;
  {
    obs::Span embed_span(obs::global_tracer(), obs::kSpanEmbedQuery);
    query_vec = db_.embedder().embed(query);
    embed_span.set_attr("embedder", db_.embedder().name());
    embed_span.set_attr("dim", query_vec.size());
  }
  result.embed_seconds = watch.seconds();
  watch.reset();

  std::vector<vectordb::SearchResult> vector_hits;
  {
    obs::Span search_span(obs::global_tracer(), obs::kSpanVectorSearch);
    vector_hits =
        db_.store().similarity_search(query_vec, opts_.first_pass_k);
    search_span.set_attr("hits", vector_hits.size());
  }

  // --- First pass 2/2: PETSc keyword augmentation (§III-C). ---
  // Candidates dedup by chunk id: vector hits point into the store's copy
  // of the documents, keyword hits into the database's chunk list.
  std::vector<RetrievedContext> candidates;
  std::unordered_map<std::string_view, std::size_t> pos;
  for (const vectordb::SearchResult& hit : vector_hits) {
    RetrievedContext ctx;
    ctx.doc = hit.doc;
    ctx.score = hit.score;
    ctx.via = "vector";
    ctx.first_pass_rank = candidates.size();
    pos.emplace(hit.doc->id, candidates.size());
    candidates.push_back(std::move(ctx));
  }
  if (opts_.use_keyword_search) {
    obs::Span keyword_span(obs::global_tracer(), obs::kSpanKeywordAugment);
    std::size_t added = 0;
    std::size_t merged = 0;
    for (const lexical::KeywordHit& hit : db_.symbols().lookup(query)) {
      for (std::size_t chunk_index : hit.chunks) {
        const text::Document* doc = &db_.chunks()[chunk_index];
        auto it = pos.find(std::string_view(doc->id));
        if (it != pos.end()) {
          if (candidates[it->second].via == "vector") ++merged;
          candidates[it->second].via = "vector+keyword";
          continue;
        }
        RetrievedContext ctx;
        ctx.doc = doc;
        ctx.score = 0.0;  // keyword hits carry no embedding score
        ctx.via = "keyword";
        ctx.first_pass_rank = candidates.size();
        pos.emplace(std::string_view(doc->id), candidates.size());
        candidates.push_back(std::move(ctx));
        ++added;
      }
    }
    keyword_span.set_attr("added", added);
    keyword_span.set_attr("merged", merged);
  }
  result.search_seconds = watch.seconds();
  result.first_pass = candidates;

  // Candidate provenance counters (one registry lookup per label value).
  {
    std::size_t by_via[3] = {0, 0, 0};
    for (const RetrievedContext& ctx : candidates) {
      if (ctx.via == "vector") ++by_via[0];
      else if (ctx.via == "keyword") ++by_via[1];
      else ++by_via[2];
    }
    static constexpr std::string_view kVia[3] = {"vector", "keyword",
                                                 "vector+keyword"};
    for (int i = 0; i < 3; ++i) {
      if (by_via[i] > 0) {
        metrics
            .counter(obs::kRetrieveCandidatesTotal,
                     {{"via", std::string(kVia[i])}})
            .inc(by_via[i]);
      }
    }
  }

  // --- Second pass: reranking K (+ keyword extras) down to L (§III-D). ---
  if (reranker_ != nullptr) {
    watch.reset();
    obs::Span rerank_span(obs::global_tracer(), obs::kSpanRerank);
    rerank_span.set_attr("reranker", reranker_->name());
    rerank_span.set_attr("in", candidates.size());
    std::vector<rerank::RerankCandidate> rc;
    rc.reserve(candidates.size());
    for (const RetrievedContext& ctx : candidates) {
      rc.push_back(rerank::RerankCandidate{
          ctx.doc, static_cast<float>(ctx.score)});
    }
    const auto reranked = reranker_->rerank(query, rc, opts_.final_l);
    result.contexts.clear();
    for (const rerank::RerankResult& rr : reranked) {
      RetrievedContext ctx = candidates[rr.original_rank];
      ctx.score = rr.score;
      result.contexts.push_back(std::move(ctx));
    }
    rerank_span.set_attr("out", result.contexts.size());
    result.rerank_seconds = watch.seconds();
  } else {
    // Plain RAG: first-pass order, unreranked. All candidates are passed on;
    // the model's attention window (L) decides what is actually read.
    result.contexts = candidates;
  }

  span.set_attr("candidates", candidates.size());
  span.set_attr("kept", result.contexts.size());
  metrics.histogram(obs::kRetrieveEmbedSeconds).observe(result.embed_seconds);
  metrics.histogram(obs::kRetrieveSearchSeconds)
      .observe(result.search_seconds);
  metrics.histogram(obs::kRetrieveRagSeconds).observe(result.rag_seconds());
  return result;
}

}  // namespace pkb::rag
