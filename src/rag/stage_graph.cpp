#include "rag/stage_graph.h"

#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "rag/prompts.h"

namespace pkb::rag {

namespace {

namespace res = pkb::resilience;

void count_degraded(res::DegradationLevel level) {
  obs::global_metrics()
      .counter(obs::kResilienceDegradedTotal,
               {{"level", std::string(res::to_string(level))}})
      .inc();
}

ContextRef to_ref(const RetrievedContext& ctx) {
  ContextRef ref;
  ref.id = ctx.doc->id;
  ref.score = ctx.score;
  ref.via = ctx.via;
  ref.first_pass_rank = ctx.first_pass_rank;
  return ref;
}

}  // namespace

std::string_view to_string(StageKind kind) {
  switch (kind) {
    case StageKind::Embed:
      return "embed";
    case StageKind::Retrieve:
      return "retrieve";
    case StageKind::Rerank:
      return "rerank";
    case StageKind::Prompt:
      return "prompt";
    case StageKind::Generate:
      return "generate";
    case StageKind::Postprocess:
      return "postprocess";
  }
  return "?";
}

std::optional<StageKind> stage_from_name(std::string_view name) {
  for (int i = 0; i < kStageCount; ++i) {
    const auto kind = static_cast<StageKind>(i);
    if (name == to_string(kind)) return kind;
  }
  return std::nullopt;
}

void append_recalled_contexts(std::vector<llm::ContextDoc> contexts,
                              llm::LlmRequest& request) {
  for (llm::ContextDoc& ctx : contexts) {
    request.contexts.push_back(std::move(ctx));
  }
  if (!request.contexts.empty() && request.system.empty()) {
    request.system = PromptLibrary::qa_system_prompt();
  }
}

void recall_history_contexts(const HistoryRetriever& retriever,
                             std::string_view question,
                             llm::LlmRequest& request) {
  obs::Span recall_span(obs::global_tracer(), obs::kSpanHistoryRecall);
  // Shared-history recall: past vetted answers join the context list
  // (after the document contexts, competing for the attention window).
  const std::size_t before = request.contexts.size();
  append_recalled_contexts(retriever.lookup(question), request);
  recall_span.set_attr("added", request.contexts.size() - before);
}

/// Pin the snapshot, open the umbrella `retrieve` span, embed the query.
class EmbedStage final : public Stage {
 public:
  [[nodiscard]] StageKind kind() const override { return StageKind::Embed; }
  void run(StageState& st) const override {
    const Retriever* retriever = st.wf->retriever_.get();
    if (retriever == nullptr) return;  // Baseline arm: no retrieval stages
    obs::global_metrics().counter(obs::kRetrieveRequestsTotal).inc();
    st.snapshot = retriever->kb().snapshot();
    if (st.open_retrieve_span) {
      st.retrieve_span = std::make_unique<obs::Span>(obs::global_tracer(),
                                                     obs::kSpanRetrieve);
      st.retrieve_span->set_attr("k", retriever->options().first_pass_k);
      st.retrieve_span->set_attr("l", retriever->options().final_l);
      st.retrieve_span->set_attr("generation", st.snapshot->generation);
    }
    st.outcome.retrieval.snapshot = st.snapshot;
    retriever->embed_stage(*st.snapshot, st.question, st.outcome.retrieval);
  }
};

/// First-pass vector search + keyword augmentation into `first_pass`.
class RetrieveStage final : public Stage {
 public:
  [[nodiscard]] StageKind kind() const override { return StageKind::Retrieve; }
  void run(StageState& st) const override {
    const Retriever* retriever = st.wf->retriever_.get();
    if (retriever == nullptr) return;
    RetrievalResult& result = st.outcome.retrieval;
    const std::vector<vectordb::SearchResult> hits = retriever->search_stage(
        *result.snapshot, *result.query_embedding, result);
    retriever->augment_stage(*result.snapshot, st.question, hits, result);
  }
};

/// Rerank first_pass down to the final context list; close the umbrella
/// `retrieve` span and observe the retrieval histograms.
class RerankStage final : public Stage {
 public:
  [[nodiscard]] StageKind kind() const override { return StageKind::Rerank; }
  void run(StageState& st) const override {
    const Retriever* retriever = st.wf->retriever_.get();
    if (retriever == nullptr) return;
    RetrievalResult& result = st.outcome.retrieval;
    retriever->rerank_stage(*result.snapshot, st.question, result);
    if (st.retrieve_span != nullptr) {
      st.retrieve_span->set_attr("candidates", result.first_pass.size());
      st.retrieve_span->set_attr("kept", result.contexts.size());
      st.close_retrieve_span();
    }
    retriever->observe_retrieval_metrics(result);
  }
};

/// Assemble the LLM request: generation stamp, budget charge, document
/// contexts, history recall, prompt render.
class PromptStage final : public Stage {
 public:
  [[nodiscard]] StageKind kind() const override { return StageKind::Prompt; }
  void run(StageState& st) const override {
    const AugmentedWorkflow& wf = *st.wf;
    WorkflowOutcome& outcome = st.outcome;
    // Stamp the generation the answer reflects — the one place this
    // happens, for the ask() and precomputed-retrieval paths alike.
    // Baseline outcomes read no corpus and stay 0: they can never go stale.
    outcome.generation = outcome.retrieval.generation();
    if (st.ctx != nullptr) {
      // Retrieval ran for real — its wall time comes off the budget, once:
      // a pre-charged result (batch paths) or one passed through the
      // workflow twice is never double-charged.
      if (!outcome.retrieval.budget_charged) {
        st.ctx->budget.charge(outcome.retrieval.rag_seconds());
        outcome.retrieval.budget_charged = true;
      }
      if (outcome.retrieval.rerank_degraded) {
        st.ctx->degrade(res::DegradationLevel::Unreranked);
      }
    }
    llm::LlmRequest& request = st.request;
    request.question = std::string(st.question);
    SessionPromptContext* session = st.session;
    if (wf.retriever_ != nullptr) {
      // Session retrieval memory: a chunk this session has already seen is
      // dropped from the prompt — but only while the memory's generation
      // matches the turn's pinned generation. A mid-session publish may
      // have re-ingested any chunk, so a mismatched memory is unsafe to
      // apply: dedup is skipped and memory_stale tells the session layer
      // to reset.
      bool dedup = false;
      if (session != nullptr && session->seen_context_ids != nullptr) {
        dedup = session->memory_generation == outcome.retrieval.generation();
        session->memory_stale = !dedup;
      }
      for (const RetrievedContext& ctx : outcome.retrieval.contexts) {
        if (dedup && session->seen_context_ids->count(ctx.doc->id) > 0) {
          ++session->deduped;
          continue;
        }
        request.contexts.push_back(
            llm::ContextDoc{ctx.doc->id, std::string(ctx.doc->meta("title")),
                            ctx.doc->text, ctx.score});
        if (session != nullptr) {
          session->attached_context_ids.push_back(ctx.doc->id);
        }
      }
      request.system = PromptLibrary::qa_system_prompt();
    } else {
      request.system = PromptLibrary::baseline_system_prompt();
    }
    if (wf.history_retriever_ != nullptr) {
      recall_history_contexts(*wf.history_retriever_, st.question, request);
    }
    if (session != nullptr && session->history_contexts != nullptr) {
      // Conversation history rides the same tail-append contract as
      // shared-history recall: after the documents, competing for the
      // attention window; first-context promotion to the QA prompt keeps
      // the Baseline arm conversational too.
      session->history_attached = session->history_contexts->size();
      append_recalled_contexts(*session->history_contexts, request);
    }
    if (st.max_attended_override.has_value()) {
      request.max_attended_contexts = *st.max_attended_override;
    }
    {
      obs::Span prompt_span(obs::global_tracer(), obs::kSpanPromptBuild);
      outcome.prompt =
          PromptLibrary::render_user_prompt(st.question, request.contexts);
      prompt_span.set_attr("contexts", request.contexts.size());
      prompt_span.set_attr("chars", outcome.prompt.size());
    }
  }
};

/// The (resilient) LLM completion.
class GenerateStage final : public Stage {
 public:
  [[nodiscard]] StageKind kind() const override { return StageKind::Generate; }
  void run(StageState& st) const override {
    const AugmentedWorkflow& wf = *st.wf;
    WorkflowOutcome& outcome = st.outcome;
    if (st.ctx != nullptr && st.ctx->engine != nullptr) {
      outcome.response = wf.complete_resilient(st.request, *st.ctx);
      outcome.degradation = st.ctx->level;
      if (st.ctx->degraded()) count_degraded(st.ctx->level);
      obs::global_metrics()
          .histogram(obs::kResilienceBudgetSpentSeconds)
          .observe(st.ctx->budget.spent_seconds());
    } else {
      outcome.response = wf.llm_.complete(st.request);
    }
  }
};

/// Box 4: postprocess the raw response.
class PostprocessStage final : public Stage {
 public:
  [[nodiscard]] StageKind kind() const override {
    return StageKind::Postprocess;
  }
  void run(StageState& st) const override {
    obs::Span post_span(obs::global_tracer(), obs::kSpanPostprocess);
    st.outcome.processed =
        post::postprocess_llm_output(st.outcome.response.text);
    post_span.set_attr("code_blocks",
                       st.outcome.processed.code_reports.size());
    post_span.set_attr("all_code_ok", st.outcome.processed.all_code_ok);
  }
};

StageGraph::StageGraph() {
  stages_[static_cast<int>(StageKind::Embed)] =
      std::make_unique<EmbedStage>();
  stages_[static_cast<int>(StageKind::Retrieve)] =
      std::make_unique<RetrieveStage>();
  stages_[static_cast<int>(StageKind::Rerank)] =
      std::make_unique<RerankStage>();
  stages_[static_cast<int>(StageKind::Prompt)] =
      std::make_unique<PromptStage>();
  stages_[static_cast<int>(StageKind::Generate)] =
      std::make_unique<GenerateStage>();
  stages_[static_cast<int>(StageKind::Postprocess)] =
      std::make_unique<PostprocessStage>();
}

void StageGraph::run_range(StageState& st, StageKind first,
                           StageKind last) const {
  for (int i = static_cast<int>(first); i <= static_cast<int>(last); ++i) {
    stages_[i]->run(st);
  }
}

const StageGraph& global_stage_graph() {
  static const StageGraph graph;
  return graph;
}

void capture_stage_trace(const StageState& st, StageTrace& trace) {
  const AugmentedWorkflow& wf = *st.wf;
  trace.question = std::string(st.question);
  trace.arm = std::string(to_string(wf.arm()));
  trace.model = wf.model().name;
  if (wf.retriever() != nullptr) {
    const RetrieverOptions& opts = wf.retriever()->options();
    trace.reranker = opts.reranker;
    trace.first_pass_k = opts.first_pass_k;
    trace.final_l = opts.final_l;
  }

  const RetrievalResult& retrieval = st.outcome.retrieval;
  trace.generation = st.outcome.generation;
  trace.degradation = std::string(res::to_string(st.outcome.degradation));
  trace.history_id = st.outcome.history_id;
  trace.embed_seconds = retrieval.embed_seconds;
  trace.search_seconds = retrieval.search_seconds;
  trace.rerank_seconds = retrieval.rerank_seconds;

  trace.embed.embedder =
      retrieval.snapshot != nullptr ? retrieval.snapshot->embedder->name() : "";
  trace.embed.query_vec = retrieval.query_embedding != nullptr
                              ? *retrieval.query_embedding
                              : embed::Vector{};

  trace.retrieve.candidates.clear();
  for (const RetrievedContext& ctx : retrieval.first_pass) {
    trace.retrieve.candidates.push_back(to_ref(ctx));
  }
  trace.retrieve.shards_failed = retrieval.shards_failed;
  trace.retrieve.shards_total = retrieval.shards_total;

  trace.rerank.contexts.clear();
  for (const RetrievedContext& ctx : retrieval.contexts) {
    trace.rerank.contexts.push_back(to_ref(ctx));
  }
  trace.rerank.rerank_degraded = retrieval.rerank_degraded;

  trace.prompt.system = st.request.system;
  trace.prompt.contexts = st.request.contexts;
  trace.prompt.max_attended = st.request.max_attended_contexts;
  trace.prompt.prompt = st.outcome.prompt;

  trace.generate.response = st.outcome.response;

  trace.post.plain_text = st.outcome.processed.plain_text;
  trace.post.all_code_ok = st.outcome.processed.all_code_ok;
  trace.post.code_blocks = st.outcome.processed.code_reports.size();
  trace.post.sources = st.outcome.processed.sources;
}

}  // namespace pkb::rag
