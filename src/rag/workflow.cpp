#include "rag/workflow.h"

#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rag/prompts.h"
#include "util/clock.h"

namespace pkb::rag {

std::string_view to_string(PipelineArm arm) {
  switch (arm) {
    case PipelineArm::Baseline:
      return "baseline";
    case PipelineArm::Rag:
      return "rag";
    case PipelineArm::RagRerank:
      return "rag+rerank";
  }
  return "?";
}

AugmentedWorkflow::AugmentedWorkflow(const KnowledgeBase& kb, PipelineArm arm,
                                     llm::LlmConfig model,
                                     RetrieverOptions retriever_opts)
    : kb_(kb), arm_(arm), llm_(std::move(model)) {
  if (arm_ != PipelineArm::Baseline) {
    if (arm_ == PipelineArm::Rag) {
      // Plain RAG is the vanilla LangChain-style pipeline: embedding
      // retrieval only. Keyword augmentation (§III-C) and reranking
      // (§III-D) are the PETSc-specific enhancements of the rerank arm.
      retriever_opts.reranker.clear();
      retriever_opts.use_keyword_search = false;
    }
    retriever_ = std::make_unique<Retriever>(kb_, std::move(retriever_opts));
  }
}

void AugmentedWorkflow::attach_history(history::HistoryStore* store,
                                       pkb::util::SimClock* clock) {
  history_ = store;
  clock_ = clock;
}

void AugmentedWorkflow::attach_history_retrieval(
    const HistoryRetriever* retriever) {
  history_retriever_ = retriever;
}

WorkflowOutcome AugmentedWorkflow::ask(std::string_view question) const {
  const std::string arm_name(to_string(arm_));
  obs::global_metrics()
      .counter(obs::kWorkflowRequestsTotal, {{"arm", arm_name}})
      .inc();
  pkb::util::Stopwatch ask_watch;
  obs::Span span(obs::global_tracer(), obs::kSpanAsk);
  span.set_attr("arm", arm_name);
  span.set_attr("model", llm_.config().name);

  WorkflowOutcome outcome;
  if (retriever_ != nullptr) {
    outcome.retrieval = retriever_->retrieve(question);
  }
  outcome = finish(question, std::move(outcome));
  obs::global_metrics()
      .histogram(obs::kWorkflowAskSeconds, {{"arm", arm_name}})
      .observe(ask_watch.seconds());
  return outcome;
}

WorkflowOutcome AugmentedWorkflow::ask_with_retrieval(
    std::string_view question, RetrievalResult retrieval) const {
  const std::string arm_name(to_string(arm_));
  obs::global_metrics()
      .counter(obs::kWorkflowRequestsTotal, {{"arm", arm_name}})
      .inc();
  pkb::util::Stopwatch ask_watch;
  obs::Span span(obs::global_tracer(), obs::kSpanAsk);
  span.set_attr("arm", arm_name);
  span.set_attr("model", llm_.config().name);
  span.set_attr("precomputed_retrieval", true);

  WorkflowOutcome outcome;
  if (retriever_ != nullptr) {
    outcome.retrieval = std::move(retrieval);
  }
  outcome = finish(question, std::move(outcome));
  obs::global_metrics()
      .histogram(obs::kWorkflowAskSeconds, {{"arm", arm_name}})
      .observe(ask_watch.seconds());
  return outcome;
}

WorkflowOutcome AugmentedWorkflow::finish(std::string_view question,
                                          WorkflowOutcome outcome) const {
  // Stamp the generation the answer reflects. Baseline outcomes read no
  // corpus and stay 0 — they can never go stale.
  outcome.generation = outcome.retrieval.generation();
  llm::LlmRequest request;
  request.question = std::string(question);
  if (retriever_ != nullptr) {
    for (const RetrievedContext& ctx : outcome.retrieval.contexts) {
      request.contexts.push_back(
          llm::ContextDoc{ctx.doc->id, std::string(ctx.doc->meta("title")),
                          ctx.doc->text, ctx.score});
    }
    request.system = PromptLibrary::qa_system_prompt();
  } else {
    request.system = PromptLibrary::baseline_system_prompt();
  }
  if (history_retriever_ != nullptr) {
    obs::Span recall_span(obs::global_tracer(), obs::kSpanHistoryRecall);
    // Shared-history recall: past vetted answers join the context list
    // (after the document contexts, competing for the attention window).
    const std::size_t before = request.contexts.size();
    for (llm::ContextDoc& ctx : history_retriever_->lookup(question)) {
      request.contexts.push_back(std::move(ctx));
    }
    recall_span.set_attr("added", request.contexts.size() - before);
    if (!request.contexts.empty() && request.system.empty()) {
      request.system = PromptLibrary::qa_system_prompt();
    }
  }
  {
    obs::Span prompt_span(obs::global_tracer(), obs::kSpanPromptBuild);
    outcome.prompt = PromptLibrary::render_user_prompt(question,
                                                       request.contexts);
    prompt_span.set_attr("contexts", request.contexts.size());
    prompt_span.set_attr("chars", outcome.prompt.size());
  }

  outcome.response = llm_.complete(request);
  {
    obs::Span post_span(obs::global_tracer(), obs::kSpanPostprocess);
    outcome.processed = post::postprocess_llm_output(outcome.response.text);
    post_span.set_attr("code_blocks", outcome.processed.code_reports.size());
    post_span.set_attr("all_code_ok", outcome.processed.all_code_ok);
  }

  if (history_ != nullptr) {
    obs::Span record_span(obs::global_tracer(), obs::kSpanHistoryRecord);
    history::InteractionRecord record;
    record.timestamp = clock_ != nullptr ? clock_->now() : 0.0;
    record.question = std::string(question);
    record.response = outcome.response.text;
    record.model = llm_.config().name;
    if (retriever_ != nullptr) {
      record.embedding_model = outcome.retrieval.snapshot != nullptr
                                   ? outcome.retrieval.snapshot->embedder->name()
                                   : kb_.embedder().name();
      record.reranker = retriever_->options().reranker;
    }
    record.pipeline = std::string(to_string(arm_));
    record.prompt = outcome.prompt;
    for (const llm::ContextDoc& ctx : request.contexts) {
      record.context_ids.push_back(ctx.id);
    }
    record.latency_seconds =
        outcome.retrieval.rag_seconds() + outcome.response.latency_seconds;
    outcome.history_id = history_->add(std::move(record));
    record_span.set_attr("record_id", outcome.history_id);
    if (clock_ != nullptr) {
      clock_->advance(outcome.retrieval.rag_seconds() +
                      outcome.response.latency_seconds);
    }
  }
  return outcome;
}

}  // namespace pkb::rag
