#include "rag/workflow.h"

#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rag/prompts.h"
#include "rag/stage_graph.h"
#include "text/tokenizer.h"
#include "util/clock.h"

namespace pkb::rag {

namespace {

namespace res = pkb::resilience;

/// The extractive fallback (ladder level Extractive): the lead sentence of
/// each attended context, stitched in retrieval order. No model involved,
/// so it works with the LLM stage entirely lost.
std::string extractive_answer(const llm::LlmRequest& request) {
  std::string text =
      "[degraded] The assistant is temporarily answering from retrieved "
      "documentation excerpts:";
  const std::size_t limit =
      std::min(request.contexts.size(), request.max_attended_contexts);
  for (std::size_t i = 0; i < limit; ++i) {
    const llm::ContextDoc& ctx = request.contexts[i];
    const auto sentences = text::split_sentences(ctx.text);
    text += "\n- ";
    if (!ctx.title.empty()) {
      text += ctx.title;
      text += ": ";
    }
    text += sentences.empty() ? std::string_view(ctx.text)
                              : sentences.front();
  }
  return text;
}

}  // namespace

std::string_view to_string(PipelineArm arm) {
  switch (arm) {
    case PipelineArm::Baseline:
      return "baseline";
    case PipelineArm::Rag:
      return "rag";
    case PipelineArm::RagRerank:
      return "rag+rerank";
  }
  return "?";
}

std::optional<PipelineArm> arm_from_string(std::string_view name) {
  if (name == "baseline") return PipelineArm::Baseline;
  if (name == "rag") return PipelineArm::Rag;
  if (name == "rag+rerank") return PipelineArm::RagRerank;
  return std::nullopt;
}

AugmentedWorkflow::AugmentedWorkflow(const KnowledgeBase& kb, PipelineArm arm,
                                     llm::LlmConfig model,
                                     RetrieverOptions retriever_opts)
    : kb_(kb), arm_(arm), llm_(std::move(model)) {
  if (arm_ != PipelineArm::Baseline) {
    if (arm_ == PipelineArm::Rag) {
      // Plain RAG is the vanilla LangChain-style pipeline: embedding
      // retrieval only. Keyword augmentation (§III-C) and reranking
      // (§III-D) are the PETSc-specific enhancements of the rerank arm.
      retriever_opts.reranker.clear();
      retriever_opts.use_keyword_search = false;
    }
    retriever_ = std::make_unique<Retriever>(kb_, std::move(retriever_opts));
  }
}

void AugmentedWorkflow::attach_history(history::HistoryStore* store,
                                       pkb::util::SimClock* clock) {
  history_ = store;
  clock_ = clock;
}

void AugmentedWorkflow::attach_history_retrieval(
    const HistoryRetriever* retriever) {
  history_retriever_ = retriever;
}

void AugmentedWorkflow::set_fault_plan(const resilience::FaultPlan* plan,
                                       std::uint32_t search_hedges) {
  llm_.set_fault_plan(plan);
  if (retriever_ != nullptr) retriever_->set_fault_plan(plan, search_hedges);
}

WorkflowOutcome AugmentedWorkflow::ask(std::string_view question,
                                       resilience::RequestContext* ctx,
                                       StageTrace* trace,
                                       SessionPromptContext* session) const {
  const std::string arm_name(to_string(arm_));
  obs::global_metrics()
      .counter(obs::kWorkflowRequestsTotal, {{"arm", arm_name}})
      .inc();
  pkb::util::Stopwatch ask_watch;
  obs::Span span(obs::global_tracer(), obs::kSpanAsk);
  span.set_attr("arm", arm_name);
  span.set_attr("model", llm_.config().name);

  StageState st;
  st.wf = this;
  st.question = question;
  st.ctx = ctx;
  st.session = session;
  const StageGraph& graph = global_stage_graph();
  if (ctx != nullptr) {
    try {
      graph.run_range(st, StageKind::Embed, StageKind::Rerank);
    } catch (const res::FaultError&) {
      // Second rung: retrieval lost entirely (hedges exhausted). The LLM
      // still answers, parametrically, from an empty context list. The
      // umbrella retrieve span must close here so the tail stages don't
      // nest under it.
      st.close_retrieve_span();
      ctx->degrade(res::DegradationLevel::NoRetrieval);
      st.outcome.retrieval = RetrievalResult{};
    }
  } else {
    graph.run_range(st, StageKind::Embed, StageKind::Rerank);
  }
  run_tail(st);
  if (trace != nullptr) capture_stage_trace(st, *trace);
  WorkflowOutcome outcome = std::move(st.outcome);
  obs::global_metrics()
      .histogram(obs::kWorkflowAskSeconds, {{"arm", arm_name}})
      .observe(ask_watch.seconds());
  return outcome;
}

WorkflowOutcome AugmentedWorkflow::ask_with_retrieval(
    std::string_view question, RetrievalResult retrieval,
    resilience::RequestContext* ctx, StageTrace* trace,
    SessionPromptContext* session) const {
  const std::string arm_name(to_string(arm_));
  obs::global_metrics()
      .counter(obs::kWorkflowRequestsTotal, {{"arm", arm_name}})
      .inc();
  pkb::util::Stopwatch ask_watch;
  obs::Span span(obs::global_tracer(), obs::kSpanAsk);
  span.set_attr("arm", arm_name);
  span.set_attr("model", llm_.config().name);
  span.set_attr("precomputed_retrieval", true);

  StageState st;
  st.wf = this;
  st.question = question;
  st.ctx = ctx;
  st.session = session;
  if (retriever_ != nullptr) {
    st.outcome.retrieval = std::move(retrieval);
    st.snapshot = st.outcome.retrieval.snapshot;
  }
  run_tail(st);
  if (trace != nullptr) capture_stage_trace(st, *trace);
  WorkflowOutcome outcome = std::move(st.outcome);
  obs::global_metrics()
      .histogram(obs::kWorkflowAskSeconds, {{"arm", arm_name}})
      .observe(ask_watch.seconds());
  return outcome;
}

void AugmentedWorkflow::run_tail(StageState& st) const {
  global_stage_graph().run_range(st, StageKind::Prompt,
                                 StageKind::Postprocess);
  record_history(st);
}

void AugmentedWorkflow::record_history(StageState& st) const {
  if (history_ == nullptr) return;
  WorkflowOutcome& outcome = st.outcome;
  obs::Span record_span(obs::global_tracer(), obs::kSpanHistoryRecord);
  history::InteractionRecord record;
  record.timestamp = clock_ != nullptr ? clock_->now() : 0.0;
  record.question = std::string(st.question);
  record.response = outcome.response.text;
  record.model = llm_.config().name;
  if (retriever_ != nullptr) {
    record.embedding_model = outcome.retrieval.snapshot != nullptr
                                 ? outcome.retrieval.snapshot->embedder->name()
                                 : kb_.embedder().name();
    record.reranker = retriever_->options().reranker;
  }
  record.pipeline = std::string(to_string(arm_));
  record.prompt = outcome.prompt;
  for (const llm::ContextDoc& ctx : st.request.contexts) {
    record.context_ids.push_back(ctx.id);
  }
  record.latency_seconds =
      outcome.retrieval.rag_seconds() + outcome.response.latency_seconds;
  outcome.history_id = history_->add(std::move(record));
  record_span.set_attr("record_id", outcome.history_id);
  if (clock_ != nullptr) {
    clock_->advance(outcome.retrieval.rag_seconds() +
                    outcome.response.latency_seconds);
  }
}

llm::LlmResponse AugmentedWorkflow::complete_resilient(
    const llm::LlmRequest& request, resilience::RequestContext& ctx) const {
  obs::MetricsRegistry& metrics = obs::global_metrics();
  res::CircuitBreaker& breaker = ctx.engine->breaker();
  const res::ResilienceOptions& opts = ctx.engine->options();
  std::string lost_reason;

  for (std::uint32_t attempt = 1;; ++attempt) {
    if (ctx.budget.exhausted()) {
      lost_reason = "deadline";
      ctx.deadline_exceeded = true;
      metrics
          .counter(obs::kResilienceDeadlineExceededTotal, {{"stage", "llm"}})
          .inc();
      break;
    }
    if (!breaker.allow()) {
      // Fail fast: the breaker is open, don't even attempt the stage.
      lost_reason = "breaker_open";
      ctx.breaker_short_circuit = true;
      break;
    }
    try {
      ++ctx.llm_attempts;
      llm::LlmResponse resp = llm_.complete(request);
      if (resp.latency_seconds > ctx.budget.remaining_seconds()) {
        // Natural timeout: the (virtual) completion would have landed past
        // the deadline, so the caller abandons it at the deadline.
        ctx.budget.exhaust();
        ctx.deadline_exceeded = true;
        lost_reason = "deadline";
        metrics
            .counter(obs::kResilienceDeadlineExceededTotal,
                     {{"stage", "llm"}})
            .inc();
        breaker.record_failure();
        break;
      }
      ctx.budget.charge(resp.latency_seconds);
      breaker.record_success();
      return resp;
    } catch (const res::TimeoutError&) {
      // An injected hang: the call sits on the wire until the request's
      // deadline fires, taking the whole remaining budget with it.
      breaker.record_failure();
      ctx.budget.exhaust();
      ctx.deadline_exceeded = true;
      lost_reason = "timeout";
      metrics
          .counter(obs::kResilienceDeadlineExceededTotal, {{"stage", "llm"}})
          .inc();
      break;
    } catch (const res::PermanentError&) {
      breaker.record_failure();
      lost_reason = "permanent_error";
      break;
    } catch (const res::TransientError&) {
      breaker.record_failure();
      if (attempt >= opts.llm_retry.max_attempts) {
        lost_reason = "retries_exhausted";
        break;
      }
      const double backoff =
          opts.llm_retry.backoff_seconds(attempt, ctx.jitter_seed);
      if (backoff > ctx.budget.remaining_seconds()) {
        ctx.budget.exhaust();
        ctx.deadline_exceeded = true;
        lost_reason = "deadline";
        metrics
            .counter(obs::kResilienceDeadlineExceededTotal,
                     {{"stage", "llm"}})
            .inc();
        break;
      }
      // The wait is virtual: charged to the budget, never slept.
      ctx.budget.charge(backoff);
      ++ctx.retries;
      metrics.counter(obs::kResilienceRetriesTotal, {{"stage", "llm"}}).inc();
      metrics.histogram(obs::kResilienceBackoffSeconds).observe(backoff);
      obs::Span retry_span(obs::global_tracer(), obs::kSpanRetry);
      retry_span.set_attr("stage", "llm");
      retry_span.set_attr("attempt", static_cast<std::uint64_t>(attempt));
      retry_span.set_attr("backoff_s", backoff);
    }
  }

  // The LLM stage is lost — walk the remaining ladder. With contexts in
  // hand the answer is stitched extractively; without, a stub.
  llm::LlmResponse resp;
  const bool have_contexts = !request.contexts.empty();
  if (have_contexts) {
    ctx.degrade(res::DegradationLevel::Extractive);
    resp.text = extractive_answer(request);
    resp.mode = "degraded-extractive";
    const std::size_t limit =
        std::min(request.contexts.size(), request.max_attended_contexts);
    for (std::size_t i = 0; i < limit; ++i) {
      resp.used_context_ids.push_back(request.contexts[i].id);
    }
  } else {
    ctx.degrade(res::DegradationLevel::Unavailable);
    resp.text =
        "[degraded] The assistant is temporarily unavailable; please retry "
        "shortly.";
    resp.mode = "degraded-unavailable";
  }
  resp.latency_seconds =
      std::min(opts.extractive_latency_seconds, ctx.budget.remaining_seconds());
  ctx.budget.charge(resp.latency_seconds);
  resp.completion_tokens = text::approx_llm_tokens(resp.text);

  obs::Span span(obs::global_tracer(), obs::kSpanDegradedAnswer);
  span.set_attr("level", res::to_string(ctx.level));
  span.set_attr("reason", lost_reason);
  span.set_attr("attempts", static_cast<std::uint64_t>(ctx.llm_attempts));
  return resp;
}

}  // namespace pkb::rag
