#include "llm/hallucination.h"

#include <array>

#include "util/strings.h"

namespace pkb::llm {

namespace {

constexpr std::array<std::string_view, 6> kMethodFamilies = {
    "a block version of the unpreconditioned Richardson iterative method",
    "a communication-avoiding variant of the restarted GMRES algorithm",
    "a two-level additive Schwarz smoother specialized for banded systems",
    "an adaptive-order Chebyshev iteration with automatic spectrum tracking",
    "a right-preconditioned conjugate residual method for shifted systems",
    "a deflation-accelerated BiCGStab variant for sequences of systems",
};

constexpr std::array<std::string_view, 5> kFakeSuffixes = {
    "Blocked", "Deflated", "Adaptive", "Fused", "Batched",
};

constexpr std::array<std::string_view, 4> kFakeOptionStems = {
    "-ksp_burb_factor", "-ksp_auto_restart_policy", "-ksp_spectrum_window",
    "-ksp_deflate_rank",
};

}  // namespace

std::string mint_fake_symbol(std::string_view base, pkb::util::Rng& rng) {
  std::string stem(base);
  // Strip trailing lowercase to keep the class prefix readable.
  if (stem.empty()) stem = "KSP";
  for (int attempt = 0; attempt < 8; ++attempt) {
    const std::string candidate =
        stem + std::string(kFakeSuffixes[rng.below(kFakeSuffixes.size())]);
    if (corpus::find_spec(candidate) == nullptr &&
        !corpus::is_known_symbol(candidate)) {
      return candidate;
    }
  }
  return stem + "Xq";  // astronomically unlikely fallback
}

std::string fabricate_symbol_answer(std::string_view symbol,
                                    pkb::util::Rng& rng) {
  const std::string_view family =
      kMethodFamilies[rng.below(kMethodFamilies.size())];
  const std::string_view fake_option =
      kFakeOptionStems[rng.below(kFakeOptionStems.size())];
  std::string out;
  out += std::string(symbol) +
         " is an implementation of a Krylov subspace method in PETSc used "
         "to solve systems of linear equations. Specifically, " +
         std::string(symbol) + " is " + std::string(family) +
         ". It is selected with -ksp_type " +
         pkb::util::to_lower(symbol.size() > 3 ? symbol.substr(3) : symbol) +
         " and tuned with the " + std::string(fake_option) +
         " option. It converges for any nonsingular matrix and is often "
         "faster than GMRES for large problems.";
  return out;
}

std::string fabricate_topic_answer(std::string_view question,
                                   const corpus::ApiSpec* nearby,
                                   pkb::util::Rng& rng) {
  (void)question;
  std::string anchor = nearby != nullptr ? nearby->name : "KSPSolve";
  const std::string fake = mint_fake_symbol(
      anchor.size() >= 3 && anchor[0] != '-' ? anchor : "KSP", rng);
  std::string out;
  out += "You can handle this directly with " + fake +
         ", which PETSc provides for exactly this situation. Call it "
         "before the solve";
  if (nearby != nullptr) {
    out += " (it works together with " + nearby->name + ")";
  }
  out += ". The default behavior is enabled automatically, so in most "
         "cases no further configuration is needed.";
  return out;
}

}  // namespace pkb::llm
