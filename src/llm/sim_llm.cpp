#include "llm/sim_llm.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "llm/hallucination.h"
#include "llm/parametric.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "text/tokenizer.h"
#include "util/json.h"
#include "util/rng.h"
#include "util/strings.h"

namespace pkb::llm {

namespace {

using pkb::util::Rng;

/// Content terms of the question: non-stopword tokens, with symbols kept
/// separately (they carry extra weight).
struct QueryTerms {
  std::vector<std::string> terms;    // lowercased content terms (distinct)
  std::vector<std::string> symbols;  // original-case API symbols
};

QueryTerms query_terms(std::string_view question) {
  QueryTerms out;
  const text::TokenizedText tt = text::tokenize(question);
  std::unordered_set<std::string> seen;
  for (const std::string& tok : tt.tokens) {
    if (text::stopwords().contains(tok) || tok.size() < 2) continue;
    if (seen.insert(tok).second) out.terms.push_back(tok);
  }
  out.symbols = tt.symbols;
  return out;
}

/// Per-request term weights: query terms are weighted by how discriminative
/// they are ACROSS the attended contexts (a term present in every context
/// separates nothing — the in-context analogue of attention sharpening).
struct TermWeights {
  std::unordered_map<std::string, double> weight;
};

TermWeights compute_term_weights(const QueryTerms& q,
                                 const LlmRequest& request,
                                 std::size_t attended) {
  TermWeights tw;
  auto df_of = [&](const std::string& needle, bool icase) {
    std::size_t df = 0;
    for (std::size_t c = 0; c < attended; ++c) {
      const bool hit =
          icase ? pkb::util::icontains(request.contexts[c].text, needle)
                : pkb::util::to_lower(request.contexts[c].text).find(needle) !=
                      std::string::npos;
      if (hit) ++df;
    }
    return df;
  };
  for (const std::string& term : q.terms) {
    const std::size_t df = df_of(term, false);
    tw.weight[term] = 1.0 / (0.5 + static_cast<double>(df));
  }
  for (const std::string& symbol : q.symbols) {
    const std::size_t df = df_of(symbol, true);
    tw.weight["\x01" + symbol] = 3.0 / (0.5 + static_cast<double>(df));
  }
  return tw;
}

/// Relevance of one sentence to the query.
double sentence_score(std::string_view sentence, const QueryTerms& q,
                      const TermWeights& tw) {
  const std::string lower = pkb::util::to_lower(sentence);
  double score = 0.0;
  for (const std::string& term : q.terms) {
    if (lower.find(term) != std::string::npos) {
      score += tw.weight.at(term);
    }
  }
  for (const std::string& symbol : q.symbols) {
    if (pkb::util::icontains(sentence, symbol)) {
      score += tw.weight.at("\x01" + symbol);
    }
  }
  // Mild length normalization: prefer focused sentences.
  const double words =
      static_cast<double>(pkb::util::split_ws(sentence).size());
  return score / (1.0 + 0.015 * words);
}

struct ScoredSentence {
  std::string text;
  double score = 0.0;
  std::size_t context_rank = 0;
  std::size_t position = 0;
  std::string context_id;
};

/// Token-set Jaccard similarity, used to suppress near-duplicate sentences
/// coming from different pages (option page vs function page often state
/// the same thing).
double jaccard(const std::vector<std::string>& a,
               const std::vector<std::string>& b) {
  if (a.empty() || b.empty()) return 0.0;
  std::unordered_set<std::string> sa(a.begin(), a.end());
  std::unordered_set<std::string> sb(b.begin(), b.end());
  std::size_t common = 0;
  for (const std::string& t : sa) {
    if (sb.contains(t)) ++common;
  }
  return static_cast<double>(common) /
         static_cast<double>(sa.size() + sb.size() - common);
}

std::string format_options_line(const corpus::ApiSpec& spec) {
  if (spec.options.empty()) return "";
  // "  -opt <v> : description" -> keep the first two entries verbatim.
  std::string out = "Relevant options: ";
  const std::size_t n = std::min<std::size_t>(2, spec.options.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (i != 0) out += "; ";
    out += spec.options[i];
  }
  out += ".";
  return out;
}

}  // namespace

SimLlm::SimLlm(LlmConfig config) : config_(std::move(config)) {}

SimLlm SimLlm::from_name(std::string_view name) {
  return SimLlm(model_config(name));
}

SimLlm::Draft SimLlm::answer_grounded(const LlmRequest& request,
                                      Rng& rng) const {
  Draft draft;
  const QueryTerms q = query_terms(request.question);
  const std::size_t attended =
      std::min(request.max_attended_contexts, request.contexts.size());

  // Which question symbols are covered by the attended contexts?
  std::vector<std::string> uncovered_symbols;
  for (const std::string& symbol : q.symbols) {
    bool covered = false;
    for (std::size_t c = 0; c < attended && !covered; ++c) {
      covered = pkb::util::icontains(request.contexts[c].text, symbol);
    }
    if (!covered) uncovered_symbols.push_back(symbol);
  }

  // Score every sentence of every attended context.
  const TermWeights tw = compute_term_weights(q, request, attended);
  std::vector<ScoredSentence> scored;
  for (std::size_t c = 0; c < attended; ++c) {
    const auto sentences = text::split_sentences(request.contexts[c].text);
    for (std::size_t s = 0; s < sentences.size(); ++s) {
      const double base = sentence_score(sentences[s], q, tw);
      if (base <= 0.0) continue;
      ScoredSentence ss;
      ss.text = std::string(sentences[s]);
      // Position bias: models attend most to the leading context and
      // progressively less to later ones ("lost in the middle"). This is
      // the mechanism that makes reranking matter — promoting the decisive
      // document to the front changes what the model actually uses.
      ss.score = base / (1.0 + config_.attention_decay * static_cast<double>(c));
      ss.context_rank = c;
      ss.position = s;
      ss.context_id = request.contexts[c].id;
      scored.push_back(std::move(ss));
    }
  }
  std::sort(scored.begin(), scored.end(),
            [](const ScoredSentence& a, const ScoredSentence& b) {
              if (a.score != b.score) return a.score > b.score;
              if (a.context_rank != b.context_rank) {
                return a.context_rank < b.context_rank;
              }
              return a.position < b.position;
            });

  // Select under a completion budget, with fidelity-controlled drops and
  // near-duplicate suppression (the same statement often exists on both an
  // option page and a function page).
  std::vector<const ScoredSentence*> selected;
  std::vector<std::vector<std::string>> selected_tokens;
  std::size_t budget_words = config_.completion_budget_words;
  for (const ScoredSentence& ss : scored) {
    if (selected.size() >= config_.max_answer_sentences || budget_words == 0) {
      break;
    }
    std::vector<std::string> toks = text::tokens_of(ss.text);
    bool duplicate = false;
    for (const auto& prev : selected_tokens) {
      if (jaccard(toks, prev) >= 0.4) {
        duplicate = true;
        break;
      }
    }
    if (duplicate) continue;
    if (!selected.empty() &&
        rng.uniform() > config_.grounding_fidelity) {
      continue;  // imperfect grounding: sentence dropped
    }
    const std::size_t words = pkb::util::split_ws(ss.text).size();
    selected.push_back(&ss);
    selected_tokens.push_back(std::move(toks));
    budget_words -= std::min(budget_words, words);
  }

  // Unknown-symbol caveat (the grounded KSPBurb behaviour): with no covering
  // context and sufficient model discipline, say so instead of guessing.
  std::string caveat;
  if (!uncovered_symbols.empty() && selected.size() <= 2) {
    if (rng.uniform() < config_.quality) {
      caveat = "It appears there may be a typo or misunderstanding: there "
               "is no PETSc function or object named " +
               uncovered_symbols.front() +
               " in the documentation available to me. ";
      if (corpus::find_spec_fuzzy(uncovered_symbols.front()) != nullptr) {
        caveat += "Did you mean " +
                  corpus::find_spec_fuzzy(uncovered_symbols.front())->name +
                  "? ";
      }
      draft.mode = "grounded-caveat";
    } else {
      draft.text = fabricate_symbol_answer(uncovered_symbols.front(), rng);
      draft.mode = "hallucination";
      return draft;
    }
  }

  if (selected.empty() && caveat.empty()) {
    // Nothing in the contexts helps; a disciplined model hedges, an
    // undisciplined one free-associates from memory.
    if (rng.uniform() < config_.quality) {
      draft.text =
          "The retrieved PETSc documentation does not directly address "
          "this; could you share the exact solver configuration (-ksp_view "
          "output) so I can be specific?";
      draft.mode = "grounded-weak";
    } else {
      const TopicMatch topic =
          ParametricMemory::instance().resolve(request.question);
      draft.text = fabricate_topic_answer(request.question, topic.spec, rng);
      draft.mode = "hallucination";
    }
    return draft;
  }

  // Lead with the entity the best-matching context documents: the model
  // names the API it is recommending (as the paper's example answers do:
  // "The pivotal solver for such cases in PETSc is KSPLSQR ...").
  std::string lead;
  if (!selected.empty()) {
    const std::size_t lead_rank = selected.front()->context_rank;
    const std::string& title = request.contexts[lead_rank].title;
    if (!title.empty() && text::looks_like_symbol(title)) {
      lead = "Use " + title + ". ";
    }
  }

  // Compose: keep document order within the selection for coherence.
  std::sort(selected.begin(), selected.end(),
            [](const ScoredSentence* a, const ScoredSentence* b) {
              if (a->context_rank != b->context_rank) {
                return a->context_rank < b->context_rank;
              }
              return a->position < b->position;
            });
  std::string body;
  std::unordered_set<std::string> used;
  for (const ScoredSentence* ss : selected) {
    if (!body.empty()) body += " ";
    body += ss->text;
    if (used.insert(ss->context_id).second) {
      draft.used_context_ids.push_back(ss->context_id);
    }
  }
  draft.text = caveat + lead + body;
  if (draft.mode.empty()) draft.mode = "grounded";
  return draft;
}

SimLlm::Draft SimLlm::answer_parametric(const LlmRequest& request,
                                        Rng& rng) const {
  Draft draft;
  const TopicMatch topic =
      ParametricMemory::instance().resolve(request.question);

  if (topic.spec == nullptr) {
    if (!topic.query_symbol.empty()) {
      // Asked about an entity with zero pretraining signal: mainstream
      // models pattern-match the naming convention and fabricate.
      draft.text = fabricate_symbol_answer(topic.query_symbol, rng);
      draft.mode = "hallucination";
    } else {
      draft.text =
          "This is difficult to answer in general; it depends on the "
          "problem, the discretization, and the machine. PETSc provides "
          "many options that may help.";
      draft.mode = "refusal";
    }
    return draft;
  }

  const corpus::ApiSpec& spec = *topic.spec;
  const double exposure = spec.popularity * config_.knowledge;
  const double effective = exposure + 0.1 * (rng.uniform() - 0.5);

  if (effective >= 0.48) {
    // Well-known topic: a full, correct recall of the entity. Overview
    // (Concept) pages are recalled in broad strokes only — a model knows
    // "what KSP is" far better than the specific details buried in the
    // page (that asymmetry is precisely why RAG helps).
    std::string out = "Use " + spec.name + ". " + spec.summary;
    if (!spec.notes.empty()) out += " " + spec.notes.front();
    if (effective >= 0.62 && spec.notes.size() > 1 &&
        spec.kind != corpus::ApiKind::Concept) {
      out += " " + spec.notes[1];
    }
    const std::string options_line = format_options_line(spec);
    if (!options_line.empty()) out += " " + options_line;
    draft.text = std::move(out);
    draft.mode = "parametric";
    return draft;
  }

  if (effective >= 0.27) {
    // Partially-known topic: the headline is right, the details are thin —
    // the model recalls the gist of the summary, not its fine print.
    const auto words = pkb::util::split_ws(spec.summary);
    std::string gist;
    for (std::size_t i = 0; i < words.size() && i < 11; ++i) {
      if (i != 0) gist += ' ';
      gist += words[i];
    }
    if (words.size() > 11) gist += " ...";
    draft.text = spec.name + " is the relevant functionality here: " + gist +
                 " Check the PETSc manual for the exact calling sequence "
                 "and the related runtime options.";
    draft.mode = "parametric-partial";
    return draft;
  }

  // Thin knowledge: confidently wrong.
  draft.text = fabricate_topic_answer(request.question, &spec, rng);
  draft.mode = "hallucination";
  return draft;
}

LlmResponse SimLlm::complete(const LlmRequest& request) const {
  obs::Span span(obs::global_tracer(), obs::kSpanLlm);
  span.set_attr("model", config_.name);

  // Chaos hook: throws for injected error/timeout decisions, returns extra
  // virtual latency for a spike (added to the latency model below).
  const double spike_seconds =
      pkb::resilience::consult(fault_plan_, pkb::resilience::Stage::Llm);

  Rng rng(pkb::util::seed_from(request.question, config_.seed));

  Draft draft = request.contexts.empty() ? answer_parametric(request, rng)
                                         : answer_grounded(request, rng);

  LlmResponse resp;
  resp.mode = draft.mode;
  resp.used_context_ids = draft.used_context_ids;

  // Token accounting.
  resp.prompt_tokens = text::approx_llm_tokens(request.system) +
                       text::approx_llm_tokens(request.question);
  for (const ContextDoc& ctx : request.contexts) {
    resp.prompt_tokens += text::approx_llm_tokens(ctx.text);
  }
  resp.completion_tokens = text::approx_llm_tokens(draft.text);

  // Output formatting.
  if (request.json_output) {
    pkb::util::Json obj = pkb::util::Json::object();
    obj.set("answer", draft.text);
    pkb::util::Json sources = pkb::util::Json::array();
    for (const std::string& id : draft.used_context_ids) sources.push_back(id);
    obj.set("sources", std::move(sources));
    obj.set("model", config_.name);
    resp.text = obj.dump();
  } else {
    resp.text = std::move(draft.text);
  }

  // Latency model: prefill + decode + base, with deterministic multiplicative
  // jitter (log-uniform in [1/(1+j), (1+j)]).
  const double prefill = static_cast<double>(resp.prompt_tokens) /
                         config_.prefill_tokens_per_second;
  const double decode = static_cast<double>(resp.completion_tokens) /
                        config_.decode_tokens_per_second;
  const double jitter_span = std::log1p(config_.latency_jitter);
  const double jitter =
      std::exp(rng.uniform(-jitter_span, jitter_span));
  resp.latency_seconds =
      (config_.latency_base_seconds + prefill + decode) * jitter +
      spike_seconds;

  span.set_attr("mode", resp.mode);
  span.set_attr("prompt_tokens", resp.prompt_tokens);
  span.set_attr("completion_tokens", resp.completion_tokens);
  span.set_attr("sim_latency_s", resp.latency_seconds);
  obs::MetricsRegistry& metrics = obs::global_metrics();
  const obs::LabelSet model_label{{"model", config_.name}};
  metrics.counter(obs::kLlmRequestsTotal, model_label).inc();
  metrics.counter(obs::kLlmModeTotal, {{"mode", resp.mode}}).inc();
  metrics.counter(obs::kLlmPromptTokensTotal, model_label)
      .inc(resp.prompt_tokens);
  metrics.counter(obs::kLlmCompletionTokensTotal, model_label)
      .inc(resp.completion_tokens);
  metrics.histogram(obs::kLlmSimLatencySeconds, model_label)
      .observe(resp.latency_seconds);
  return resp;
}

}  // namespace pkb::llm
