#pragma once
// The simulated LLM.
//
// SimLlm implements, explicitly and deterministically, the mechanisms that
// the paper's phenomena rest on:
//
//  * grounded mode (contexts supplied): extractive composition over the
//    attended contexts — answer quality is a function of whether the
//    decisive document made it into the attention window (top L = 4);
//  * caveat behaviour: a question about a symbol the contexts never mention
//    yields "there is no such function" (the RAG-side KSPBurb response);
//  * parametric mode (no contexts): popularity-gated recall of the spec
//    table — high-exposure topics answered well, mid-exposure partially,
//    low-exposure topics produce confident fabrications (the baseline-side
//    KSPBurb response);
//  * a calibrated token-rate latency model (no real time passes).
//
// Everything is deterministic given (model config, request).

#include "llm/model_config.h"
#include "llm/types.h"
#include "resilience/fault_plan.h"
#include "util/rng.h"

namespace pkb::llm {

class SimLlm {
 public:
  explicit SimLlm(LlmConfig config);

  /// Convenience: construct from a registry name.
  static SimLlm from_name(std::string_view name);

  [[nodiscard]] const LlmConfig& config() const { return config_; }

  /// Attach a chaos plan consulted (Stage::Llm) at each complete() entry:
  /// error decisions throw the matching resilience::FaultError, latency
  /// spikes inflate the response's simulated latency. Pass nullptr to
  /// detach. Setup-time only — must not race in-flight complete() calls.
  void set_fault_plan(const pkb::resilience::FaultPlan* plan) {
    fault_plan_ = plan;
  }

  /// Run one completion.
  [[nodiscard]] LlmResponse complete(const LlmRequest& request) const;

 private:
  struct Draft {
    std::string text;
    std::string mode;
    std::vector<std::string> used_context_ids;
  };

  [[nodiscard]] Draft answer_grounded(const LlmRequest& request,
                                      pkb::util::Rng& rng) const;
  [[nodiscard]] Draft answer_parametric(const LlmRequest& request,
                                        pkb::util::Rng& rng) const;

  LlmConfig config_;
  const pkb::resilience::FaultPlan* fault_plan_ = nullptr;
};

}  // namespace pkb::llm
