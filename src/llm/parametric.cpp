#include "llm/parametric.h"

#include "text/tokenizer.h"
#include "util/strings.h"

namespace pkb::llm {

namespace {

/// Minimum BM25 card score for a content match to be trusted as THE topic.
constexpr double kKeywordThreshold = 2.5;

/// One searchable "card" per spec: name + summary + notes (what a model
/// would have memorized about the entity).
std::vector<text::Document> build_cards() {
  std::vector<text::Document> cards;
  const auto& table = corpus::api_table();
  cards.reserve(table.size());
  for (std::size_t i = 0; i < table.size(); ++i) {
    const corpus::ApiSpec& spec = table[i];
    text::Document card;
    card.id = spec.name;
    card.text = spec.name + ". " + spec.summary;
    for (const std::string& note : spec.notes) {
      card.text += " ";
      card.text += note;
    }
    card.metadata["spec_index"] = std::to_string(i);
    cards.push_back(std::move(card));
  }
  return cards;
}

}  // namespace

ParametricMemory::ParametricMemory() { card_index_.build(build_cards()); }

TopicMatch ParametricMemory::resolve(std::string_view question) const {
  const text::TokenizedText tt = text::tokenize(question);

  // 1) Exact symbol match wins.
  for (const std::string& symbol : tt.symbols) {
    if (const corpus::ApiSpec* spec = corpus::find_spec(symbol)) {
      return TopicMatch{spec, "symbol", symbol, 10.0};
    }
  }
  // 2) Fuzzy symbol (typo) match.
  for (const std::string& symbol : tt.symbols) {
    if (const corpus::ApiSpec* spec = corpus::find_spec_fuzzy(symbol)) {
      return TopicMatch{spec, "fuzzy-symbol", symbol, 5.0};
    }
  }
  // 3) Content match over the spec cards. Only a decisive lexical match
  //    counts: stopwords are stripped so that interrogative words ("what",
  //    "does") cannot hijack the topic.
  std::string content_query;
  for (const std::string& tok : tt.tokens) {
    if (text::stopwords().contains(tok)) continue;
    content_query += tok;
    content_query += ' ';
  }
  const auto hits = card_index_.search(content_query, 2);
  const double second = hits.size() > 1 ? hits[1].score : 0.0;
  if (!hits.empty() && hits[0].score >= kKeywordThreshold &&
      hits[0].score > 1.15 * second) {
    const std::size_t spec_index = static_cast<std::size_t>(
        std::stoul(std::string(hits[0].doc->meta("spec_index"))));
    return TopicMatch{&corpus::api_table()[spec_index], "keyword", "",
                      hits[0].score};
  }
  // 4) A question that names an API-shaped symbol that resolved to nothing
  //    is about an unknown entity (the KSPBurb case).
  if (!tt.symbols.empty()) {
    TopicMatch miss;
    miss.query_symbol = tt.symbols.front();
    return miss;
  }
  // 5) Weak content match is better than nothing when no symbol is involved.
  if (!hits.empty() && hits[0].score > 0.5) {
    const std::size_t spec_index = static_cast<std::size_t>(
        std::stoul(std::string(hits[0].doc->meta("spec_index"))));
    return TopicMatch{&corpus::api_table()[spec_index], "keyword", "",
                      hits[0].score};
  }
  return TopicMatch{};
}

const ParametricMemory& ParametricMemory::instance() {
  static const ParametricMemory memory;
  return memory;
}

}  // namespace pkb::llm
