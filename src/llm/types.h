#pragma once
// Request/response types of the simulated LLM.

#include <cstdint>
#include <string>
#include <vector>

namespace pkb::llm {

/// One retrieved context document handed to the model.
struct ContextDoc {
  std::string id;     ///< chunk id (source path + chunk index)
  std::string title;  ///< source document title (manual-page symbol), may be ""
  std::string text;   ///< chunk text
  double score = 0.0; ///< retrieval/rerank score (informational)
};

/// A completion request.
struct LlmRequest {
  /// System prompt (from the prompt library).
  std::string system;
  /// The user's question.
  std::string question;
  /// Retrieved contexts in pipeline order (best first). Empty = no-RAG
  /// baseline: the model answers from parametric memory alone.
  std::vector<ContextDoc> contexts;
  /// The model attends to at most this many leading contexts (context-window
  /// budget; the paper's pipeline passes L = 4 documents).
  std::size_t max_attended_contexts = 4;
  /// When true, the response text is a JSON object (§III-E).
  bool json_output = false;
};

/// A completion response.
struct LlmResponse {
  std::string text;
  /// Simulated wall-clock latency in seconds (token-rate model; no real
  /// time passes).
  double latency_seconds = 0.0;
  std::size_t prompt_tokens = 0;
  std::size_t completion_tokens = 0;
  /// "grounded", "grounded-caveat", "parametric", "parametric-partial",
  /// "hallucination", or "refusal" — the internal path taken, exposed for
  /// the interaction-history database and for tests. A real deployment
  /// would not have this; nothing in the evaluation rubric reads it.
  std::string mode;
  /// Ids of the context documents actually used in the answer.
  std::vector<std::string> used_context_ids;
};

}  // namespace pkb::llm
