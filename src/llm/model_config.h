#pragma once
// Simulated-model configurations and registry.
//
// The paper evaluates OpenAI GPT-4 variants and Meta Llama3 variants and
// settles on GPT-4o. Our registry mirrors that sweep with four simulated
// models whose knobs control the mechanisms the paper's phenomena depend on.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace pkb::llm {

struct LlmConfig {
  std::string name;
  /// Overall answer-composition quality in [0,1]: sentence selection
  /// sharpness and caveat discipline.
  double quality = 0.9;
  /// Parametric-memory coverage multiplier in [0,1]: how much of the public
  /// PETSc knowledge the model absorbed in pretraining.
  double knowledge = 0.85;
  /// How faithfully supplied context is used in grounded mode, [0,1]; below
  /// 1.0 the model occasionally drops a relevant sentence.
  double grounding_fidelity = 0.95;
  /// Latency model: seconds = base + prompt/prefill_tps + completion/decode_tps,
  /// times a deterministic per-request jitter.
  double latency_base_seconds = 1.6;
  double prefill_tokens_per_second = 2600.0;
  double decode_tokens_per_second = 34.0;
  /// Relative jitter amplitude (0.3 = up to +-30%).
  double latency_jitter = 0.45;
  /// Positional attention decay across contexts: sentence relevance from
  /// context at rank c is discounted by 1/(1 + decay*c) ("lost in the
  /// middle"). Larger = stronger primacy bias.
  double attention_decay = 0.45;
  /// Completion budget in words for grounded answers.
  std::size_t completion_budget_words = 85;
  /// Maximum sentences composed into a grounded answer.
  std::size_t max_answer_sentences = 4;
  /// Stream seed so different models diverge deterministically.
  std::uint64_t seed = 1;
};

/// Registry: "sim-gpt-4o", "sim-gpt-4-turbo", "sim-llama3-70b",
/// "sim-llama3-8b". Throws std::invalid_argument for unknown names.
[[nodiscard]] LlmConfig model_config(std::string_view name);

/// All registry names, strongest first.
[[nodiscard]] std::vector<std::string> model_registry();

}  // namespace pkb::llm
