#include "llm/model_config.h"

#include <stdexcept>

namespace pkb::llm {

LlmConfig model_config(std::string_view name) {
  if (name == "sim-gpt-4o") {
    LlmConfig cfg;
    cfg.name = "sim-gpt-4o";
    cfg.quality = 0.96;
    cfg.knowledge = 0.75;
    cfg.grounding_fidelity = 0.96;
    cfg.latency_base_seconds = 1.8;
    cfg.prefill_tokens_per_second = 2600.0;
    cfg.decode_tokens_per_second = 15.0;
    cfg.seed = 40;
    return cfg;
  }
  if (name == "sim-gpt-4-turbo") {
    LlmConfig cfg;
    cfg.name = "sim-gpt-4-turbo";
    cfg.quality = 0.92;
    cfg.knowledge = 0.88;
    cfg.grounding_fidelity = 0.93;
    cfg.latency_base_seconds = 2.2;
    cfg.prefill_tokens_per_second = 1800.0;
    cfg.decode_tokens_per_second = 22.0;
    cfg.seed = 41;
    return cfg;
  }
  if (name == "sim-llama3-70b") {
    LlmConfig cfg;
    cfg.name = "sim-llama3-70b";
    cfg.quality = 0.86;
    cfg.knowledge = 0.72;
    cfg.grounding_fidelity = 0.88;
    cfg.latency_base_seconds = 1.9;
    cfg.prefill_tokens_per_second = 1500.0;
    cfg.decode_tokens_per_second = 26.0;
    cfg.latency_jitter = 0.5;
    cfg.attention_decay = 0.6;  // weaker models: stronger primacy bias
    cfg.seed = 42;
    return cfg;
  }
  if (name == "sim-llama3-8b") {
    LlmConfig cfg;
    cfg.name = "sim-llama3-8b";
    cfg.quality = 0.7;
    cfg.knowledge = 0.5;
    cfg.grounding_fidelity = 0.75;
    cfg.latency_base_seconds = 0.9;
    cfg.prefill_tokens_per_second = 4000.0;
    cfg.decode_tokens_per_second = 55.0;
    cfg.latency_jitter = 0.5;
    cfg.attention_decay = 0.8;
    cfg.completion_budget_words = 60;
    cfg.max_answer_sentences = 3;
    cfg.seed = 43;
    return cfg;
  }
  throw std::invalid_argument("unknown model: " + std::string(name));
}

std::vector<std::string> model_registry() {
  return {"sim-gpt-4o", "sim-gpt-4-turbo", "sim-llama3-70b", "sim-llama3-8b"};
}

}  // namespace pkb::llm
