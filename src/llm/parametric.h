#pragma once
// Parametric memory of the simulated LLM: the popularity-weighted slice of
// the PETSc knowledge base that a mainstream model plausibly absorbed during
// pretraining.
//
// The memory answers "which entity is this question about, and how well do I
// know it?" — the baseline (no-RAG) arm's entire knowledge source.

#include <optional>
#include <string>
#include <string_view>

#include "corpus/api_spec.h"
#include "lexical/bm25.h"

namespace pkb::llm {

/// The topic a question resolved to.
struct TopicMatch {
  const corpus::ApiSpec* spec = nullptr;  ///< nullptr = nothing matched
  /// How the topic was found: "symbol" (an API symbol in the question),
  /// "fuzzy-symbol", or "keyword" (content match).
  std::string how;
  /// The question symbol that triggered a symbol match (if any).
  std::string query_symbol;
  /// Lexical match strength (informational).
  double strength = 0.0;
};

/// Shared, immutable topic index over the spec table.
class ParametricMemory {
 public:
  ParametricMemory();

  /// Resolve a question to its most likely topic. A question containing an
  /// API-shaped symbol resolves by symbol (exact first, then fuzzy); symbols
  /// that resolve to nothing are reported with spec == nullptr and
  /// query_symbol set (the KSPBurb case). Otherwise the spec "cards" are
  /// searched lexically.
  [[nodiscard]] TopicMatch resolve(std::string_view question) const;

  /// The process-wide instance (construction is expensive: builds a BM25
  /// index over the spec cards).
  static const ParametricMemory& instance();

 private:
  lexical::Bm25Index card_index_;
};

}  // namespace pkb::llm
