#pragma once
// Plausible-nonsense synthesis: what a mainstream LLM produces when asked
// about an entity it has (almost) no training signal for. Reproduces the
// paper's §V-B observation:
//
//   "KSPBurb is an implementation of a Krylov subspace method in PETSc used
//    to solve systems of linear equations. Specifically, KSPBurb is a block
//    version of the unpreconditioned Richardson iterative method ..."
//
// The fabrications follow PETSc naming conventions (which is what makes them
// dangerous) and always contain at least one invented symbol or one wrong
// claim, so the rubric scorer can detect them the way the paper's human
// scorers did.

#include <string>
#include <string_view>

#include "corpus/api_spec.h"
#include "util/rng.h"

namespace pkb::llm {

/// Fabricate a confident, wrong answer about `symbol` (which may be a real
/// but unknown-to-the-model name, or a fictitious one like "KSPBurb").
/// Deterministic for a given (symbol, rng state).
[[nodiscard]] std::string fabricate_symbol_answer(std::string_view symbol,
                                                  pkb::util::Rng& rng);

/// Fabricate a confidently wrong answer for a topic question where the
/// model's knowledge is too thin: misattributes behaviour from a related
/// entity and mints a non-existent option or function name.
[[nodiscard]] std::string fabricate_topic_answer(std::string_view question,
                                                 const corpus::ApiSpec* nearby,
                                                 pkb::util::Rng& rng);

/// Mint a plausible but non-existent PETSc symbol related to `base`
/// ("KSPSolve" -> e.g. "KSPSolveBlocked"). Guaranteed to not collide with a
/// real spec name.
[[nodiscard]] std::string mint_fake_symbol(std::string_view base,
                                           pkb::util::Rng& rng);

}  // namespace pkb::llm
