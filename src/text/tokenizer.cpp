#include "text/tokenizer.h"

#include <algorithm>
#include <cctype>

#include "util/strings.h"

namespace pkb::text {

namespace {

bool is_symbol_char(char c) {
  return pkb::util::is_ident_char(c) || c == '-';
}

bool has_interior_upper(std::string_view tok) {
  for (std::size_t i = 1; i < tok.size(); ++i) {
    if (tok[i] >= 'A' && tok[i] <= 'Z') return true;
  }
  return false;
}

bool has_lower(std::string_view tok) {
  return std::any_of(tok.begin(), tok.end(),
                     [](char c) { return c >= 'a' && c <= 'z'; });
}

bool all_upper_or_digit(std::string_view tok) {
  return std::all_of(tok.begin(), tok.end(), [](char c) {
    return (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c == '_';
  });
}

}  // namespace

bool looks_like_symbol(std::string_view tok) {
  if (tok.size() < 3) return false;
  // Product/project names that match the CamelCase pattern but are not API
  // entities.
  static constexpr std::string_view kNotSymbols[] = {
      "PETSc", "PETSC", "MPI_Comm", "LangChain", "ChatGPT", "OpenAI",
      "GitLab", "GitHub", "JavaScript", "BiCGStab", "BiCG", "Gram-Schmidt",
      "Golub-Kahan", "Eisenstat-Walker", "Runge-Kutta", "Gauss-Seidel",
      "Newton-Krylov", "Lanczos"};
  for (std::string_view ns : kNotSymbols) {
    if (tok == ns) return false;
  }
  // A symbol is a single identifier-like token: no spaces or punctuation
  // beyond '-' and '_' (callers sometimes pass whole titles).
  for (char c : tok) {
    if (!pkb::util::is_ident_char(c) && c != '-') return false;
  }
  // Runtime option: -ksp_type, -pc_type, -info ...
  if (tok[0] == '-' && tok.size() >= 4) {
    const std::string_view body = tok.substr(1);
    return std::all_of(body.begin(), body.end(), [](char c) {
      return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_';
    });
  }
  if (!((tok[0] >= 'A' && tok[0] <= 'Z'))) return false;
  // ALLCAPS identifier (KSPGMRES, MATAIJ) of length >= 4.
  if (all_upper_or_digit(tok) && tok.size() >= 4) return true;
  // CamelCase with interior capital and some lowercase (KSPSolve, MatSetValues).
  return has_interior_upper(tok) && has_lower(tok);
}

TokenizedText tokenize(std::string_view s, const TokenizerOptions& opts) {
  TokenizedText out;
  std::unordered_set<std::string> seen_symbols;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && !is_symbol_char(s[i])) ++i;
    std::size_t start = i;
    while (i < s.size() && is_symbol_char(s[i])) ++i;
    if (i == start) continue;
    std::string_view raw = s.substr(start, i - start);
    // Strip leading '-' runs that are prose dashes (e.g. "--" separators) but
    // keep a single '-' when it forms a plausible runtime option.
    while (raw.size() > 1 && raw[0] == '-' && raw[1] == '-') raw.remove_prefix(1);
    if (raw == "-") continue;
    if (raw.size() < opts.min_token_len) continue;

    const bool symbol = looks_like_symbol(raw);
    if (symbol) {
      std::string original(raw);
      if (seen_symbols.insert(original).second) {
        out.symbols.push_back(original);
      }
    }
    std::string tok = opts.lowercase ? pkb::util::to_lower(raw)
                                     : std::string(raw);
    if (opts.drop_stopwords && !symbol && stopwords().contains(tok)) continue;
    out.tokens.push_back(std::move(tok));
  }
  return out;
}

std::vector<std::string> tokens_of(std::string_view s,
                                   const TokenizerOptions& opts) {
  return tokenize(s, opts).tokens;
}

std::vector<std::string_view> split_sentences(std::string_view s) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  auto is_abbrev_before = [&](std::size_t dot) {
    // Guard "e.g." / "i.e." / "cf." / single-letter initials.
    if (dot >= 1 && dot + 1 < s.size() && s[dot + 1] == 'g') return true;
    static constexpr std::string_view kAbbrevs[] = {"e.g", "i.e", "cf",
                                                    "etc", "vs", "Fig",
                                                    "fig", "Eq", "eq"};
    for (std::string_view a : kAbbrevs) {
      if (dot >= a.size() && s.substr(dot - a.size(), a.size()) == a) {
        return true;
      }
    }
    return false;
  };
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (c != '.' && c != '?' && c != '!') continue;
    if (c == '.' && is_abbrev_before(i)) continue;
    // Sentence end requires whitespace next (or end of text).
    std::size_t j = i + 1;
    if (j < s.size() && s[j] != ' ' && s[j] != '\n' && s[j] != '\t') continue;
    std::string_view sent = pkb::util::trim(s.substr(start, i + 1 - start));
    if (!sent.empty()) out.push_back(sent);
    while (j < s.size() && (s[j] == ' ' || s[j] == '\n' || s[j] == '\t')) ++j;
    start = j;
    i = j - 1;
  }
  std::string_view tail = pkb::util::trim(s.substr(start));
  if (!tail.empty()) out.push_back(tail);
  return out;
}

const std::unordered_set<std::string>& stopwords() {
  static const std::unordered_set<std::string> kStopwords = {
      "a",    "an",   "and",  "are",  "as",   "at",   "be",    "but",
      "by",   "can",  "do",   "does", "for",  "from", "has",   "have",
      "how",  "i",    "if",   "in",   "is",   "it",   "its",   "may",
      "must", "not",  "of",   "on",   "or",   "so",   "such",  "that",
      "the",  "then", "there", "these", "this", "to",  "was",  "we",
      "what", "when", "where", "which", "will", "with", "you",  "your"};
  return kStopwords;
}

std::size_t approx_llm_tokens(std::string_view s) {
  const std::size_t words = pkb::util::split_ws(s).size();
  return static_cast<std::size_t>(static_cast<double>(words) * 1.33) + 1;
}

}  // namespace pkb::text
