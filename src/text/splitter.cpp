#include "text/splitter.h"

#include <stdexcept>

#include "util/strings.h"

namespace pkb::text {

RecursiveCharacterTextSplitter::RecursiveCharacterTextSplitter(
    SplitterOptions opts)
    : opts_(std::move(opts)) {
  if (opts_.chunk_size == 0) {
    throw std::invalid_argument("splitter: chunk_size must be > 0");
  }
  if (opts_.chunk_overlap >= opts_.chunk_size) {
    throw std::invalid_argument(
        "splitter: chunk_overlap must be < chunk_size");
  }
  if (opts_.separators.empty()) {
    throw std::invalid_argument("splitter: need at least one separator");
  }
}

std::vector<std::string> RecursiveCharacterTextSplitter::split_text(
    std::string_view text) const {
  if (pkb::util::trim(text).empty()) return {};
  return split_recursive(text, 0);
}

std::vector<std::string> RecursiveCharacterTextSplitter::split_recursive(
    std::string_view text, std::size_t separator_index) const {
  const std::string& sep = opts_.separators[separator_index];
  const bool last_level = separator_index + 1 == opts_.separators.size();

  // Split on this separator ("" means per-character).
  std::vector<std::string> pieces;
  if (sep.empty()) {
    pieces.reserve(text.size());
    for (char c : text) pieces.emplace_back(1, c);
  } else {
    for (std::string_view piece : pkb::util::split(text, sep)) {
      pieces.emplace_back(piece);
    }
  }

  // Recurse into oversize pieces; collect good pieces for merging.
  std::vector<std::string> final_chunks;
  std::vector<std::string> pending;  // pieces small enough to merge
  auto flush_pending = [&] {
    if (pending.empty()) return;
    for (auto& merged : merge_pieces(pending, sep)) {
      final_chunks.push_back(std::move(merged));
    }
    pending.clear();
  };

  for (auto& piece : pieces) {
    if (piece.size() <= opts_.chunk_size) {
      if (!pkb::util::trim(piece).empty()) pending.push_back(std::move(piece));
      continue;
    }
    flush_pending();
    if (last_level) {
      // Cannot split further; emit as-is (unbreakable token).
      final_chunks.push_back(std::move(piece));
    } else {
      for (auto& sub : split_recursive(piece, separator_index + 1)) {
        final_chunks.push_back(std::move(sub));
      }
    }
  }
  flush_pending();
  return final_chunks;
}

std::vector<std::string> RecursiveCharacterTextSplitter::merge_pieces(
    const std::vector<std::string>& pieces, std::string_view separator) const {
  const std::string_view joiner = opts_.keep_separator ? "" : separator;
  std::vector<std::string> chunks;
  std::vector<std::string_view> window;  // current pieces being accumulated
  std::size_t window_len = 0;

  auto window_total = [&] {
    return window_len +
           (window.empty() ? 0 : joiner.size() * (window.size() - 1));
  };

  auto emit = [&] {
    if (window.empty()) return;
    std::string chunk = pkb::util::join(window, joiner);
    const std::string_view trimmed = pkb::util::trim(chunk);
    if (!trimmed.empty()) chunks.emplace_back(trimmed);
  };

  for (const std::string& piece : pieces) {
    if (!window.empty() &&
        window_total() + joiner.size() + piece.size() > opts_.chunk_size) {
      // Overflow: emit the window, then slide it forward keeping at most
      // `chunk_overlap` characters of tail context (LangChain semantics).
      emit();
      while (!window.empty() &&
             (window_total() > opts_.chunk_overlap ||
              window_total() + joiner.size() + piece.size() >
                  opts_.chunk_size)) {
        window_len -= window.front().size();
        window.erase(window.begin());
      }
    }
    window.push_back(piece);
    window_len += piece.size();
  }
  emit();
  return chunks;
}

std::vector<Document> RecursiveCharacterTextSplitter::split_documents(
    const std::vector<Document>& docs) const {
  std::vector<Document> out;
  for (const Document& doc : docs) {
    const std::vector<std::string> chunks = split_text(doc.text);
    for (std::size_t i = 0; i < chunks.size(); ++i) {
      Document chunk;
      chunk.id = doc.id + "#" + std::to_string(i);
      chunk.text = chunks[i];
      chunk.metadata = doc.metadata;
      chunk.metadata["chunk_index"] = std::to_string(i);
      if (!chunk.metadata.contains("source")) chunk.metadata["source"] = doc.id;
      out.push_back(std::move(chunk));
    }
  }
  return out;
}

}  // namespace pkb::text
