#pragma once
// The `Document` type flows through the whole pipeline: loaders produce
// documents, the splitter cuts them into chunk documents, the embedder and
// the vector store consume them, retrieval returns them, and the prompt
// builder pastes them into the LLM context.

#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace pkb::text {

/// Ordered key/value metadata. A std::map keeps serialization stable.
using Metadata = std::map<std::string, std::string>;

/// A piece of text plus provenance metadata.
struct Document {
  /// Stable identifier ("<source>#<chunk_index>" for chunks).
  std::string id;
  /// The text content (Markdown for loaded docs, plain text for chunks).
  std::string text;
  /// Provenance: at minimum "source" (path); chunks add "chunk_index",
  /// "section" and anything the loader attached.
  Metadata metadata;

  /// Metadata lookup with default.
  [[nodiscard]] std::string_view meta(std::string_view key,
                                      std::string_view def = "") const {
    auto it = metadata.find(std::string(key));
    return it == metadata.end() ? def : std::string_view(it->second);
  }

  bool operator==(const Document&) const = default;
};

/// A named in-memory file, the unit the loaders consume. The corpus generator
/// produces `VirtualFile`s directly; a disk adapter reads them from a real
/// directory tree.
struct VirtualFile {
  std::string path;     ///< POSIX-style relative path, e.g. "manualpages/KSP/KSPGMRES.md"
  std::string content;  ///< raw bytes (UTF-8 text for all our corpora)
};

/// An in-memory directory tree: just an ordered list of files.
using VirtualDir = std::vector<VirtualFile>;

}  // namespace pkb::text
