#pragma once
// Code-aware tokenization for scientific-software text.
//
// PETSc questions and docs are full of API symbols (`KSPSetType`), runtime
// options (`-ksp_monitor_true_residual`), and file paths. The tokenizer keeps
// these intact as single tokens, because they carry most of the retrieval
// signal; ordinary prose is lowercased and split on non-identifier characters.

#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

namespace pkb::text {

/// Tokenizer options.
struct TokenizerOptions {
  /// Lowercase prose tokens (API-symbol tokens keep their case in `symbols`
  /// but are lowercased in the main stream so query/doc matching is
  /// case-insensitive).
  bool lowercase = true;
  /// Drop tokens shorter than this many bytes (after splitting).
  std::size_t min_token_len = 1;
  /// Remove English stopwords from the prose stream.
  bool drop_stopwords = false;
};

/// Result of tokenizing: the flat token stream plus the API-ish symbols that
/// were seen (original case, deduplicated, in first-appearance order).
struct TokenizedText {
  std::vector<std::string> tokens;
  std::vector<std::string> symbols;
};

/// Tokenize `s` per `opts`.
[[nodiscard]] TokenizedText tokenize(std::string_view s,
                                     const TokenizerOptions& opts = {});

/// Convenience: just the token stream.
[[nodiscard]] std::vector<std::string> tokens_of(
    std::string_view s, const TokenizerOptions& opts = {});

/// True if `tok` looks like an API symbol: CamelCase with an internal capital
/// (KSPSolve), an ALLCAPS-prefixed identifier (KSPGMRES), or a runtime option
/// (-ksp_type).
[[nodiscard]] bool looks_like_symbol(std::string_view tok);

/// Split a string into sentences (period/question/exclamation followed by
/// whitespace + capital, with abbreviation guards like "e.g.").
[[nodiscard]] std::vector<std::string_view> split_sentences(std::string_view s);

/// The built-in English stopword set.
[[nodiscard]] const std::unordered_set<std::string>& stopwords();

/// Rough word-piece count used by the LLM latency model: whitespace tokens
/// times an empirical 1.33 subword expansion factor.
[[nodiscard]] std::size_t approx_llm_tokens(std::string_view s);

}  // namespace pkb::text
