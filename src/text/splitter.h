#pragma once
// RecursiveCharacterTextSplitter — a faithful reimplementation of the
// LangChain splitter the paper uses to chunk the PETSc documentation
// (§III-A): try the coarsest separator first ("\n\n"), and for any piece
// still exceeding `chunk_size`, recurse with the next separator ("\n", then
// " ", then ""). Adjacent small pieces are merged back up to `chunk_size`
// with `chunk_overlap` characters of overlap between consecutive chunks.

#include <string>
#include <string_view>
#include <vector>

#include "text/document.h"

namespace pkb::text {

/// Splitter configuration.
struct SplitterOptions {
  /// Maximum chunk length in characters (the "soft" limit: a single
  /// unbreakable token longer than this survives intact).
  std::size_t chunk_size = 1000;
  /// Characters of overlap carried from the end of one chunk into the next.
  /// Must be < chunk_size.
  std::size_t chunk_overlap = 150;
  /// Separator cascade, coarsest first. The final "" means character-level.
  std::vector<std::string> separators = {"\n\n", "\n", " ", ""};
  /// Keep the separator attached to the preceding piece (LangChain's
  /// keep_separator=False drops it; we default to dropping, as the paper's
  /// configuration does).
  bool keep_separator = false;
};

/// Recursive character splitter.
class RecursiveCharacterTextSplitter {
 public:
  explicit RecursiveCharacterTextSplitter(SplitterOptions opts = {});

  /// Split raw text into chunk strings.
  [[nodiscard]] std::vector<std::string> split_text(std::string_view text) const;

  /// Split each document into chunk documents. Chunk ids are
  /// "<doc.id>#<index>"; metadata is inherited plus "chunk_index".
  [[nodiscard]] std::vector<Document> split_documents(
      const std::vector<Document>& docs) const;

  [[nodiscard]] const SplitterOptions& options() const { return opts_; }

 private:
  [[nodiscard]] std::vector<std::string> split_recursive(
      std::string_view text, std::size_t separator_index) const;
  [[nodiscard]] std::vector<std::string> merge_pieces(
      const std::vector<std::string>& pieces, std::string_view separator) const;

  SplitterOptions opts_;
};

}  // namespace pkb::text
