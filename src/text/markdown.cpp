#include "text/markdown.h"

#include <cctype>

#include "util/strings.h"

namespace pkb::text {

using pkb::util::split;
using pkb::util::split_lines;
using pkb::util::starts_with;
using pkb::util::trim;

namespace {

int heading_level(std::string_view line) {
  std::size_t n = 0;
  while (n < line.size() && line[n] == '#') ++n;
  if (n == 0 || n > 6) return 0;
  if (n < line.size() && line[n] != ' ') return 0;
  return static_cast<int>(n);
}

bool is_hr(std::string_view line) {
  const std::string_view t = trim(line);
  if (t.size() < 3) return false;
  const char c = t[0];
  if (c != '-' && c != '*' && c != '_') return false;
  for (char ch : t) {
    if (ch != c && ch != ' ') return false;
  }
  return true;
}

bool is_bullet_item(std::string_view line, std::string_view* content) {
  const std::string_view t = util::trim_left(line);
  if (t.size() >= 2 && (t[0] == '-' || t[0] == '*' || t[0] == '+') &&
      t[1] == ' ') {
    // Avoid treating a horizontal rule as a bullet.
    if (is_hr(line)) return false;
    if (content != nullptr) *content = trim(t.substr(2));
    return true;
  }
  return false;
}

bool is_ordered_item(std::string_view line, std::string_view* content) {
  const std::string_view t = util::trim_left(line);
  std::size_t i = 0;
  while (i < t.size() && std::isdigit(static_cast<unsigned char>(t[i]))) ++i;
  if (i == 0 || i + 1 >= t.size()) return false;
  if (t[i] != '.' && t[i] != ')') return false;
  if (t[i + 1] != ' ') return false;
  if (content != nullptr) *content = trim(t.substr(i + 2));
  return true;
}

bool is_table_row(std::string_view line) {
  const std::string_view t = trim(line);
  return t.size() >= 2 && t.front() == '|' && t.back() == '|';
}

bool is_table_separator(std::string_view line) {
  if (!is_table_row(line)) return false;
  for (char c : trim(line)) {
    if (c != '|' && c != '-' && c != ':' && c != ' ') return false;
  }
  return true;
}

std::vector<std::string> parse_table_cells(std::string_view line) {
  std::string_view t = trim(line);
  t.remove_prefix(1);  // leading '|'
  t.remove_suffix(1);  // trailing '|'
  std::vector<std::string> cells;
  for (std::string_view cell : split(t, '|')) {
    cells.emplace_back(trim(cell));
  }
  return cells;
}

}  // namespace

std::string strip_inline(std::string_view line) {
  std::string out;
  out.reserve(line.size());
  std::size_t i = 0;
  while (i < line.size()) {
    const char c = line[i];
    if (c == '`') {
      // code span: copy content verbatim up to the closing backtick
      std::size_t close = line.find('`', i + 1);
      if (close == std::string_view::npos) {
        out += c;
        ++i;
        continue;
      }
      out.append(line.substr(i + 1, close - i - 1));
      i = close + 1;
      continue;
    }
    if (c == '[') {
      // [text](url) -> text
      const std::size_t close_bracket = line.find(']', i + 1);
      if (close_bracket != std::string_view::npos &&
          close_bracket + 1 < line.size() && line[close_bracket + 1] == '(') {
        const std::size_t close_paren = line.find(')', close_bracket + 2);
        if (close_paren != std::string_view::npos) {
          out.append(
              strip_inline(line.substr(i + 1, close_bracket - i - 1)));
          i = close_paren + 1;
          continue;
        }
      }
      out += c;
      ++i;
      continue;
    }
    if (c == '*' || c == '_') {
      // emphasis marker: drop (conservative — underscores inside identifiers
      // are preceded/followed by identifier chars and are kept)
      const bool prev_ident =
          i > 0 && pkb::util::is_ident_char(line[i - 1]);
      const bool next_ident =
          i + 1 < line.size() && pkb::util::is_ident_char(line[i + 1]);
      if (c == '_' && prev_ident && next_ident) {
        out += c;
        ++i;
        continue;
      }
      if (c == '_' && (prev_ident || next_ident) &&
          !(prev_ident && next_ident)) {
        // leading/trailing underscore of an identifier-ish token: treat as
        // emphasis only if doubled
        if (i + 1 < line.size() && line[i + 1] == '_') {
          i += 2;
          continue;
        }
        if (!prev_ident && next_ident) {
          ++i;  // opening emphasis before a word
          continue;
        }
        out += c;
        ++i;
        continue;
      }
      ++i;
      continue;
    }
    out += c;
    ++i;
  }
  return out;
}

std::vector<MdBlock> parse_markdown(std::string_view md) {
  std::vector<MdBlock> blocks;
  const auto lines = split_lines(md);
  std::size_t i = 0;

  while (i < lines.size()) {
    std::string_view line = lines[i];
    const std::string_view trimmed = trim(line);

    if (trimmed.empty()) {
      ++i;
      continue;
    }

    // Fenced code block.
    if (starts_with(trimmed, "```")) {
      MdBlock block;
      block.type = MdBlock::Type::CodeFence;
      block.language = std::string(trim(trimmed.substr(3)));
      ++i;
      std::string body;
      while (i < lines.size() && !starts_with(trim(lines[i]), "```")) {
        body.append(lines[i]);
        body += '\n';
        ++i;
      }
      if (i < lines.size()) ++i;  // closing fence
      if (!body.empty() && body.back() == '\n') body.pop_back();
      block.text = std::move(body);
      blocks.push_back(std::move(block));
      continue;
    }

    // Heading.
    if (const int level = heading_level(trimmed); level > 0) {
      MdBlock block;
      block.type = MdBlock::Type::Heading;
      block.level = level;
      block.text = std::string(
          trim(trimmed.substr(static_cast<std::size_t>(level))));
      blocks.push_back(std::move(block));
      ++i;
      continue;
    }

    // Horizontal rule.
    if (is_hr(trimmed)) {
      MdBlock block;
      block.type = MdBlock::Type::HorizontalRule;
      blocks.push_back(std::move(block));
      ++i;
      continue;
    }

    // Block quote.
    if (starts_with(trimmed, ">")) {
      MdBlock block;
      block.type = MdBlock::Type::BlockQuote;
      std::string body;
      while (i < lines.size() && starts_with(trim(lines[i]), ">")) {
        std::string_view q = trim(lines[i]);
        q.remove_prefix(1);
        if (!q.empty() && q.front() == ' ') q.remove_prefix(1);
        if (!body.empty()) body += '\n';
        body.append(q);
        ++i;
      }
      block.text = std::move(body);
      blocks.push_back(std::move(block));
      continue;
    }

    // Table.
    if (is_table_row(trimmed) && i + 1 < lines.size() &&
        is_table_separator(lines[i + 1])) {
      MdBlock block;
      block.type = MdBlock::Type::Table;
      block.rows.push_back(parse_table_cells(lines[i]));
      i += 2;  // skip separator
      while (i < lines.size() && is_table_row(trim(lines[i]))) {
        block.rows.push_back(parse_table_cells(lines[i]));
        ++i;
      }
      blocks.push_back(std::move(block));
      continue;
    }

    // List (bulleted or ordered).
    std::string_view item_content;
    const bool bullet = is_bullet_item(line, &item_content);
    const bool ordered = !bullet && is_ordered_item(line, &item_content);
    if (bullet || ordered) {
      MdBlock block;
      block.type = MdBlock::Type::List;
      block.ordered = ordered;
      while (i < lines.size()) {
        std::string_view content;
        const bool matches = ordered ? is_ordered_item(lines[i], &content)
                                     : is_bullet_item(lines[i], &content);
        if (!matches) {
          // Continuation line: indented non-blank text appends to the last
          // item.
          const std::string_view t = trim(lines[i]);
          if (!t.empty() && (lines[i].starts_with("  ")) &&
              !block.items.empty() && heading_level(t) == 0 &&
              !is_bullet_item(lines[i], nullptr) &&
              !is_ordered_item(lines[i], nullptr)) {
            block.items.back() += ' ';
            block.items.back().append(t);
            ++i;
            continue;
          }
          break;
        }
        block.items.emplace_back(content);
        ++i;
      }
      blocks.push_back(std::move(block));
      continue;
    }

    // Paragraph: contiguous non-blank, non-special lines.
    {
      MdBlock block;
      block.type = MdBlock::Type::Paragraph;
      std::string body;
      while (i < lines.size()) {
        const std::string_view t = trim(lines[i]);
        if (t.empty() || heading_level(t) > 0 || starts_with(t, "```") ||
            starts_with(t, ">") || is_hr(t) ||
            is_bullet_item(lines[i], nullptr) ||
            is_ordered_item(lines[i], nullptr) ||
            (is_table_row(t) && i + 1 < lines.size() &&
             is_table_separator(lines[i + 1]))) {
          break;
        }
        if (!body.empty()) body += ' ';
        body.append(t);
        ++i;
      }
      block.text = std::move(body);
      blocks.push_back(std::move(block));
      continue;
    }
  }
  return blocks;
}

std::string strip_markdown(std::string_view md, bool include_headings) {
  std::string out;
  for (const MdBlock& block : parse_markdown(md)) {
    std::string piece;
    switch (block.type) {
      case MdBlock::Type::Heading:
        if (!include_headings) continue;
        piece = strip_inline(block.text);
        break;
      case MdBlock::Type::Paragraph:
      case MdBlock::Type::BlockQuote:
        piece = strip_inline(block.text);
        break;
      case MdBlock::Type::CodeFence:
        piece = block.text;
        break;
      case MdBlock::Type::List: {
        std::vector<std::string> items;
        items.reserve(block.items.size());
        for (const std::string& item : block.items) {
          items.push_back(strip_inline(item));
        }
        piece = pkb::util::join(items, "\n");
        break;
      }
      case MdBlock::Type::Table: {
        std::vector<std::string> rows;
        for (const auto& row : block.rows) {
          std::vector<std::string> cells;
          cells.reserve(row.size());
          for (const std::string& cell : row) cells.push_back(strip_inline(cell));
          rows.push_back(pkb::util::join(cells, " "));
        }
        piece = pkb::util::join(rows, "\n");
        break;
      }
      case MdBlock::Type::HorizontalRule:
        continue;
    }
    if (piece.empty()) continue;
    if (!out.empty()) out += "\n\n";
    out += piece;
  }
  return out;
}

std::vector<MdLink> extract_links(std::string_view md) {
  std::vector<MdLink> links;
  std::size_t i = 0;
  while (i < md.size()) {
    const std::size_t open = md.find('[', i);
    if (open == std::string_view::npos) break;
    const std::size_t close = md.find(']', open + 1);
    if (close == std::string_view::npos) break;
    if (close + 1 < md.size() && md[close + 1] == '(') {
      const std::size_t end = md.find(')', close + 2);
      if (end != std::string_view::npos) {
        links.push_back(
            MdLink{std::string(md.substr(open + 1, close - open - 1)),
                   std::string(md.substr(close + 2, end - close - 2))});
        i = end + 1;
        continue;
      }
    }
    i = close + 1;
  }
  return links;
}

std::vector<MdSection> extract_sections(std::string_view md) {
  std::vector<MdSection> sections;
  MdSection current;  // preamble: empty title, level 0
  bool in_fence = false;

  auto flush = [&] {
    if (!current.title.empty() || !trim(current.body).empty()) {
      current.body = std::string(trim(current.body));
      sections.push_back(current);
    }
  };

  for (std::string_view line : split_lines(md)) {
    const std::string_view t = trim(line);
    if (starts_with(t, "```")) in_fence = !in_fence;
    const int level = in_fence ? 0 : heading_level(t);
    if (level > 0) {
      flush();
      current = MdSection{};
      current.title =
          std::string(trim(t.substr(static_cast<std::size_t>(level))));
      current.level = level;
    } else {
      current.body.append(line);
      current.body += '\n';
    }
  }
  flush();
  return sections;
}

std::string first_heading(std::string_view md) {
  for (std::string_view line : split_lines(md)) {
    const std::string_view t = trim(line);
    const int level = heading_level(t);
    if (level > 0) {
      return std::string(trim(t.substr(static_cast<std::size_t>(level))));
    }
  }
  return "";
}

}  // namespace pkb::text
