#include "text/loader.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "text/markdown.h"
#include "util/strings.h"
#include "util/log.h"

namespace pkb::text {

namespace fs = std::filesystem;

namespace {

// Classic per-segment glob ("*" and "?", neither crossing anything since a
// segment has no '/'). Iterative with last-star backtracking.
bool segment_match(std::string_view pat, std::string_view seg) {
  std::size_t p = 0;
  std::size_t s = 0;
  std::size_t star_p = std::string_view::npos;
  std::size_t star_s = 0;
  while (s < seg.size()) {
    if (p < pat.size() && pat[p] == '*') {
      // Collapse star runs ("**" inside a segment behaves like "*").
      while (p < pat.size() && pat[p] == '*') ++p;
      star_p = p;
      star_s = s;
      continue;
    }
    if (p < pat.size() && (pat[p] == seg[s] || pat[p] == '?')) {
      ++p;
      ++s;
      continue;
    }
    if (star_p != std::string_view::npos) {
      ++star_s;
      s = star_s;
      p = star_p;
      continue;
    }
    return false;
  }
  while (p < pat.size() && pat[p] == '*') ++p;
  return p == pat.size();
}

bool segments_match(const std::vector<std::string_view>& pat,
                    std::size_t pi,
                    const std::vector<std::string_view>& seg,
                    std::size_t si) {
  if (pi == pat.size()) return si == seg.size();
  if (pat[pi] == "**") {
    // "**" matches zero or more whole path segments.
    for (std::size_t skip = si; skip <= seg.size(); ++skip) {
      if (segments_match(pat, pi + 1, seg, skip)) return true;
    }
    return false;
  }
  if (si == seg.size()) return false;
  return segment_match(pat[pi], seg[si]) &&
         segments_match(pat, pi + 1, seg, si + 1);
}

}  // namespace

bool glob_match(std::string_view pattern, std::string_view path) {
  const auto pat = pkb::util::split(pattern, '/');
  const auto seg = pkb::util::split(path, '/');
  return segments_match(pat, 0, seg, 0);
}

DirectoryLoader::DirectoryLoader(std::string pattern)
    : pattern_(std::move(pattern)) {}

VirtualDir DirectoryLoader::load(const VirtualDir& tree) const {
  VirtualDir out;
  for (const VirtualFile& f : tree) {
    if (pattern_.empty() || glob_match(pattern_, f.path)) out.push_back(f);
  }
  return out;
}

VirtualDir DirectoryLoader::load_from_disk(const std::string& root) const {
  VirtualDir out;
  std::error_code ec;
  fs::recursive_directory_iterator it(root, ec);
  if (ec) {
    PKB_LOG(Warn, "loader") << "cannot open directory " << root << ": "
                            << ec.message();
    return out;
  }
  for (const auto& entry : it) {
    if (!entry.is_regular_file(ec) || ec) continue;
    const std::string rel =
        fs::relative(entry.path(), root, ec).generic_string();
    if (ec) continue;
    if (!pattern_.empty() && !glob_match(pattern_, rel)) continue;
    std::ifstream in(entry.path(), std::ios::binary);
    if (!in) continue;
    std::ostringstream content;
    content << in.rdbuf();
    out.push_back(VirtualFile{rel, content.str()});
  }
  // Directory iteration order is unspecified; sort for determinism.
  std::sort(out.begin(), out.end(),
            [](const VirtualFile& a, const VirtualFile& b) {
              return a.path < b.path;
            });
  return out;
}

MarkdownLoader::MarkdownLoader(MarkdownMode mode, bool drop_headings)
    : mode_(mode), drop_headings_(drop_headings) {}

std::vector<Document> MarkdownLoader::load_file(const VirtualFile& file) const {
  std::vector<Document> out;
  const std::string title = first_heading(file.content);
  if (mode_ == MarkdownMode::Single) {
    Document doc;
    doc.id = file.path;
    doc.text = strip_markdown(file.content, !drop_headings_);
    doc.metadata["source"] = file.path;
    if (!title.empty()) doc.metadata["title"] = title;
    out.push_back(std::move(doc));
    return out;
  }
  const std::vector<MdSection> sections = extract_sections(file.content);
  for (std::size_t i = 0; i < sections.size(); ++i) {
    Document doc;
    doc.id = file.path + "#" + std::to_string(i);
    doc.text = strip_markdown(sections[i].body, !drop_headings_);
    doc.metadata["source"] = file.path;
    if (!title.empty()) doc.metadata["title"] = title;
    if (!sections[i].title.empty()) {
      doc.metadata["section"] = sections[i].title;
    }
    if (doc.text.empty() && sections[i].title.empty()) continue;
    out.push_back(std::move(doc));
  }
  return out;
}

std::vector<Document> MarkdownLoader::load(const VirtualDir& files) const {
  std::vector<Document> out;
  for (const VirtualFile& f : files) {
    for (auto& doc : load_file(f)) out.push_back(std::move(doc));
  }
  return out;
}

void write_tree_to_disk(const VirtualDir& tree, const std::string& root) {
  for (const VirtualFile& f : tree) {
    const fs::path full = fs::path(root) / f.path;
    fs::create_directories(full.parent_path());
    std::ofstream out(full, std::ios::binary);
    out.write(f.content.data(),
              static_cast<std::streamsize>(f.content.size()));
  }
}

}  // namespace pkb::text
