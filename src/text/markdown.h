#pragma once
// Structural Markdown parser.
//
// The PETSc knowledge base is Markdown (processed by Sphinx in the paper);
// our loaders, the postprocessor (Markdown -> HTML, §III-E), and the
// doc-assistant example all need structure: headings, paragraphs, fenced
// code, lists, tables, block quotes, links.
//
// This is a block-level parser for the CommonMark subset the corpus uses; it
// is not a full CommonMark implementation (no nested lists-in-quotes, no
// setext headings, no HTML passthrough).

#include <string>
#include <string_view>
#include <vector>

namespace pkb::text {

/// One block-level element.
struct MdBlock {
  enum class Type {
    Heading,
    Paragraph,
    CodeFence,
    List,
    Table,
    BlockQuote,
    HorizontalRule,
  };

  Type type = Type::Paragraph;
  /// Heading level 1-6 (Heading only).
  int level = 0;
  /// Raw inline text: heading text, paragraph text, quote text, or the code
  /// body for CodeFence.
  std::string text;
  /// Info string of a code fence ("c", "console", ...).
  std::string language;
  /// True for ordered (numbered) lists.
  bool ordered = false;
  /// List items with inline markup preserved (List only).
  std::vector<std::string> items;
  /// Table rows including the header row, cells trimmed (Table only).
  std::vector<std::vector<std::string>> rows;

  bool operator==(const MdBlock&) const = default;
};

/// An inline hyperlink.
struct MdLink {
  std::string text;
  std::string url;
  bool operator==(const MdLink&) const = default;
};

/// A section: a heading plus everything until the next heading of the same or
/// shallower level.
struct MdSection {
  std::string title;
  int level = 0;
  /// Raw Markdown of the section body (heading line excluded).
  std::string body;
};

/// Parse into a list of blocks.
[[nodiscard]] std::vector<MdBlock> parse_markdown(std::string_view md);

/// Remove inline markup: emphasis markers dropped, `code` spans keep content,
/// [text](url) becomes "text". Block structure flattens to plain paragraphs
/// separated by blank lines; code fences keep their content verbatim.
/// With `include_headings` false, heading text is omitted entirely — useful
/// for RAG chunking, where structural headings ("Notes", "Synopsis") are
/// noise (the paper: "These steps allow us to remove irrelevant content").
[[nodiscard]] std::string strip_markdown(std::string_view md,
                                         bool include_headings = true);

/// Strip inline markup from a single line (no block handling).
[[nodiscard]] std::string strip_inline(std::string_view line);

/// All links in document order.
[[nodiscard]] std::vector<MdLink> extract_links(std::string_view md);

/// Split into heading-delimited sections. Text before the first heading
/// becomes a section with an empty title and level 0.
[[nodiscard]] std::vector<MdSection> extract_sections(std::string_view md);

/// First H1 title, or "" when absent.
[[nodiscard]] std::string first_heading(std::string_view md);

}  // namespace pkb::text
