#pragma once
// Document loaders — the equivalents of LangChain's DirectoryLoader and
// UnstructuredMarkdownLoader used in §III-A to ingest the PETSc docs.
//
// Loaders consume a `VirtualDir` (the corpus generator's output) or a real
// directory on disk, and produce `Document`s ready for splitting.

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "text/document.h"

namespace pkb::text {

/// Glob-style matcher supporting "*" (any run, not crossing '/'), "**" (any
/// run including '/'), and "?" (one char). Anchored at both ends.
[[nodiscard]] bool glob_match(std::string_view pattern, std::string_view path);

/// Loads files matching a glob from an in-memory tree or from disk.
class DirectoryLoader {
 public:
  /// `pattern` filters paths, e.g. "**/*.md". Empty pattern means all files.
  explicit DirectoryLoader(std::string pattern = "**/*.md");

  /// All matching files from an in-memory tree, in tree order.
  [[nodiscard]] VirtualDir load(const VirtualDir& tree) const;

  /// All matching files from a real directory (paths made relative to root).
  /// Files that cannot be read are skipped.
  [[nodiscard]] VirtualDir load_from_disk(const std::string& root) const;

 private:
  std::string pattern_;
};

/// How MarkdownLoader maps a file to documents.
enum class MarkdownMode {
  /// One document per file, markup stripped to plain text (LangChain
  /// "single" mode — what the paper's pipeline uses before splitting).
  Single,
  /// One document per heading-delimited section ("elements"-style mode);
  /// section titles land in metadata["section"].
  Sections,
};

/// Converts Markdown files into Documents.
class MarkdownLoader {
 public:
  /// `drop_headings` omits heading text from the document body (the titles
  /// survive in metadata) — removes structural noise ("Notes", "Synopsis")
  /// before chunking.
  explicit MarkdownLoader(MarkdownMode mode = MarkdownMode::Single,
                          bool drop_headings = false);

  /// Load one file. The document id is the path (plus "#<i>" per section in
  /// Sections mode); metadata gets "source" = path and "title" = first H1.
  [[nodiscard]] std::vector<Document> load_file(const VirtualFile& file) const;

  /// Load many files.
  [[nodiscard]] std::vector<Document> load(const VirtualDir& files) const;

 private:
  MarkdownMode mode_;
  bool drop_headings_;
};

/// Write a VirtualDir to a real directory tree (used by tests/examples that
/// exercise the disk path). Creates parent directories as needed.
void write_tree_to_disk(const VirtualDir& tree, const std::string& root);

}  // namespace pkb::text
