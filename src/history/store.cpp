#include "history/store.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/strings.h"

namespace pkb::history {

using pkb::util::Json;

HistoryStore::HistoryStore(HistoryStore&& other) noexcept {
  std::lock_guard<std::mutex> lock(other.mu_);
  records_ = std::move(other.records_);
  next_id_ = other.next_id_;
}

HistoryStore& HistoryStore::operator=(HistoryStore&& other) noexcept {
  if (this != &other) {
    std::scoped_lock lock(mu_, other.mu_);
    records_ = std::move(other.records_);
    next_id_ = other.next_id_;
  }
  return *this;
}

std::uint64_t HistoryStore::add(InteractionRecord record) {
  std::lock_guard<std::mutex> lock(mu_);
  record.id = next_id_++;
  records_.push_back(std::move(record));
  return records_.back().id;
}

std::size_t HistoryStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_.size();
}

const InteractionRecord* HistoryStore::get(std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const InteractionRecord& r : records_) {
    if (r.id == id) return &r;
  }
  return nullptr;
}

std::vector<const InteractionRecord*> HistoryStore::search(
    std::string_view needle) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<const InteractionRecord*> out;
  for (const InteractionRecord& r : records_) {
    if (pkb::util::icontains(r.question, needle) ||
        pkb::util::icontains(r.response, needle)) {
      out.push_back(&r);
    }
  }
  return out;
}

std::vector<const InteractionRecord*> HistoryStore::by_pipeline(
    std::string_view pipeline) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<const InteractionRecord*> out;
  for (const InteractionRecord& r : records_) {
    if (r.pipeline == pipeline) out.push_back(&r);
  }
  return out;
}

std::vector<BlindItem> HistoryStore::blind_batch(std::string_view pipeline,
                                                 std::uint64_t seed) const {
  std::vector<BlindItem> batch;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const InteractionRecord& r : records_) {
      if (!pipeline.empty() && r.pipeline != pipeline) continue;
      batch.push_back(BlindItem{r.id, r.question, r.response});
    }
  }
  pkb::util::Rng rng(seed);
  rng.shuffle(batch);
  return batch;
}

bool HistoryStore::record_score(std::uint64_t record_id, ScoreRecord score) {
  if (score.score < 0 || score.score > 4) return false;
  std::lock_guard<std::mutex> lock(mu_);
  for (InteractionRecord& r : records_) {
    if (r.id == record_id) {
      r.scores.push_back(std::move(score));
      return true;
    }
  }
  return false;
}

std::optional<double> HistoryStore::mean_score(std::uint64_t record_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const InteractionRecord& r : records_) {
    if (r.id != record_id) continue;
    if (r.scores.empty()) return std::nullopt;
    double sum = 0.0;
    for (const ScoreRecord& s : r.scores) sum += s.score;
    return sum / static_cast<double>(r.scores.size());
  }
  return std::nullopt;
}

std::vector<InteractionRecord> HistoryStore::vetted_records(
    double min_mean_score, bool trust_unscored_human) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<InteractionRecord> out;
  for (const InteractionRecord& r : records_) {
    if (r.response.empty()) continue;
    if (r.scores.empty()) {
      if (trust_unscored_human && r.model.empty()) out.push_back(r);
      continue;
    }
    double sum = 0.0;
    for (const ScoreRecord& s : r.scores) sum += s.score;
    if (sum / static_cast<double>(r.scores.size()) >= min_mean_score) {
      out.push_back(r);
    }
  }
  return out;
}

Json HistoryStore::to_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  Json records = Json::array();
  for (const InteractionRecord& r : records_) {
    Json rec = Json::object();
    rec.set("id", static_cast<std::int64_t>(r.id));
    rec.set("timestamp", r.timestamp);
    rec.set("question", r.question);
    rec.set("response", r.response);
    rec.set("model", r.model);
    rec.set("embedding_model", r.embedding_model);
    rec.set("reranker", r.reranker);
    rec.set("pipeline", r.pipeline);
    rec.set("prompt", r.prompt);
    Json ctx = Json::array();
    for (const std::string& id : r.context_ids) ctx.push_back(id);
    rec.set("context_ids", std::move(ctx));
    rec.set("latency_seconds", r.latency_seconds);
    Json scores = Json::array();
    for (const ScoreRecord& s : r.scores) {
      Json sj = Json::object();
      sj.set("scorer", s.scorer);
      sj.set("score", s.score);
      sj.set("notes", s.notes);
      scores.push_back(std::move(sj));
    }
    rec.set("scores", std::move(scores));
    records.push_back(std::move(rec));
  }
  Json root = Json::object();
  root.set("version", 1);
  root.set("next_id", static_cast<std::int64_t>(next_id_));
  root.set("records", std::move(records));
  return root;
}

HistoryStore HistoryStore::from_json(const Json& j) {
  HistoryStore store;
  store.next_id_ =
      static_cast<std::uint64_t>(j.get_int("next_id", 1));
  for (const Json& rec : j.at("records").as_array()) {
    InteractionRecord r;
    r.id = static_cast<std::uint64_t>(rec.get_int("id"));
    r.timestamp = rec.get_number("timestamp");
    r.question = rec.get_string("question");
    r.response = rec.get_string("response");
    r.model = rec.get_string("model");
    r.embedding_model = rec.get_string("embedding_model");
    r.reranker = rec.get_string("reranker");
    r.pipeline = rec.get_string("pipeline");
    r.prompt = rec.get_string("prompt");
    if (const Json* ctx = rec.find("context_ids")) {
      for (const Json& id : ctx->as_array()) {
        r.context_ids.push_back(id.as_string());
      }
    }
    r.latency_seconds = rec.get_number("latency_seconds");
    if (const Json* scores = rec.find("scores")) {
      for (const Json& sj : scores->as_array()) {
        ScoreRecord s;
        s.scorer = sj.get_string("scorer");
        s.score = static_cast<int>(sj.get_int("score", -1));
        s.notes = sj.get_string("notes");
        r.scores.push_back(std::move(s));
      }
    }
    store.records_.push_back(std::move(r));
  }
  return store;
}

void HistoryStore::save(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("HistoryStore::save: cannot open " + path);
  out << to_json().dump(2) << "\n";
}

HistoryStore HistoryStore::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("HistoryStore::load: cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return from_json(Json::parse(buf.str()));
}

}  // namespace pkb::history
