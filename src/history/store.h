#pragma once
// Interaction-history database (§III-F of the paper): "a detailed,
// manipulatable, searchable database of all interactions with all the LLMs".
//
// Stores every question/response with the models used, the generated
// prompts, timestamps, and latencies, and implements the blind-scoring
// workflow: scorers see anonymized responses (no model/pipeline fields) in a
// shuffled order and assign rubric scores, which are recorded back.

#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/json.h"
#include "util/rng.h"

namespace pkb::history {

/// One rubric score assigned by one scorer.
struct ScoreRecord {
  std::string scorer;
  int score = -1;  ///< 0..4 per Table I
  std::string notes;
};

/// One LLM (or human-developer) interaction.
struct InteractionRecord {
  std::uint64_t id = 0;           ///< assigned by the store
  double timestamp = 0.0;         ///< simulation seconds
  std::string question;
  std::string response;
  std::string model;              ///< continuation model name ("" = human)
  std::string embedding_model;    ///< "" when no RAG
  std::string reranker;           ///< "" when no reranking
  std::string pipeline;           ///< "baseline" | "rag" | "rag+rerank" | ...
  std::string prompt;             ///< the full generated prompt
  std::vector<std::string> context_ids;
  double latency_seconds = 0.0;
  std::vector<ScoreRecord> scores;
};

/// An anonymized item handed to a blind scorer: no model/pipeline fields.
struct BlindItem {
  std::uint64_t record_id = 0;
  std::string question;
  std::string response;
};

/// The interaction database.
///
/// Thread-safety: every method is guarded by one internal mutex, so
/// concurrent serving workers can append to a shared store. Records live in
/// a deque: a pointer returned by get()/search()/by_pipeline() stays valid
/// across later add() calls (appends never relocate existing records).
/// Reading *through* such a pointer while another thread scores the same
/// record is still a race — hold results, not live views, across threads.
class HistoryStore {
 public:
  HistoryStore() = default;

  /// Movable (for load()/from_json() factories); not copyable. Moving while
  /// other threads use the source is undefined, as for any container.
  HistoryStore(HistoryStore&& other) noexcept;
  HistoryStore& operator=(HistoryStore&& other) noexcept;
  HistoryStore(const HistoryStore&) = delete;
  HistoryStore& operator=(const HistoryStore&) = delete;

  /// Append a record; returns its assigned id.
  std::uint64_t add(InteractionRecord record);

  [[nodiscard]] std::size_t size() const;

  /// All records in insertion order. The reference is only stable while no
  /// other thread mutates the store; prefer the query methods under
  /// concurrency.
  [[nodiscard]] const std::deque<InteractionRecord>& records() const {
    return records_;
  }

  /// Record by id; nullptr when absent.
  [[nodiscard]] const InteractionRecord* get(std::uint64_t id) const;

  /// Case-insensitive substring search over questions and responses.
  [[nodiscard]] std::vector<const InteractionRecord*> search(
      std::string_view needle) const;

  /// All records of a pipeline (e.g. "rag+rerank").
  [[nodiscard]] std::vector<const InteractionRecord*> by_pipeline(
      std::string_view pipeline) const;

  /// Build a blind-scoring batch: all records matching `pipeline` ("" = all),
  /// anonymized and shuffled deterministically by `seed`.
  [[nodiscard]] std::vector<BlindItem> blind_batch(std::string_view pipeline,
                                                   std::uint64_t seed) const;

  /// Record a scorer's verdict on a record. Returns false for unknown ids or
  /// out-of-range scores.
  bool record_score(std::uint64_t record_id, ScoreRecord score);

  /// Mean score of a record across scorers; nullopt when unscored.
  [[nodiscard]] std::optional<double> mean_score(std::uint64_t record_id) const;

  /// Records vetted for knowledge-base ingestion (the paper's curation
  /// loop): every record with a non-empty response whose mean score is >=
  /// `min_mean_score`. When `trust_unscored_human` is set, unscored records
  /// whose model is "" (human-authored answers) also qualify. Returns
  /// copies, not live views — safe to use while workers keep appending.
  [[nodiscard]] std::vector<InteractionRecord> vetted_records(
      double min_mean_score, bool trust_unscored_human = false) const;

  /// JSON round-trip for persistence.
  [[nodiscard]] pkb::util::Json to_json() const;
  static HistoryStore from_json(const pkb::util::Json& j);

  /// File persistence (JSON, pretty-printed).
  void save(const std::string& path) const;
  static HistoryStore load(const std::string& path);

 private:
  mutable std::mutex mu_;
  std::deque<InteractionRecord> records_;
  std::uint64_t next_id_ = 1;
};

}  // namespace pkb::history
