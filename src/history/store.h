#pragma once
// Interaction-history database (§III-F of the paper): "a detailed,
// manipulatable, searchable database of all interactions with all the LLMs".
//
// Stores every question/response with the models used, the generated
// prompts, timestamps, and latencies, and implements the blind-scoring
// workflow: scorers see anonymized responses (no model/pipeline fields) in a
// shuffled order and assign rubric scores, which are recorded back.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/json.h"
#include "util/rng.h"

namespace pkb::history {

/// One rubric score assigned by one scorer.
struct ScoreRecord {
  std::string scorer;
  int score = -1;  ///< 0..4 per Table I
  std::string notes;
};

/// One LLM (or human-developer) interaction.
struct InteractionRecord {
  std::uint64_t id = 0;           ///< assigned by the store
  double timestamp = 0.0;         ///< simulation seconds
  std::string question;
  std::string response;
  std::string model;              ///< continuation model name ("" = human)
  std::string embedding_model;    ///< "" when no RAG
  std::string reranker;           ///< "" when no reranking
  std::string pipeline;           ///< "baseline" | "rag" | "rag+rerank" | ...
  std::string prompt;             ///< the full generated prompt
  std::vector<std::string> context_ids;
  double latency_seconds = 0.0;
  std::vector<ScoreRecord> scores;
};

/// An anonymized item handed to a blind scorer: no model/pipeline fields.
struct BlindItem {
  std::uint64_t record_id = 0;
  std::string question;
  std::string response;
};

/// The interaction database.
class HistoryStore {
 public:
  /// Append a record; returns its assigned id.
  std::uint64_t add(InteractionRecord record);

  [[nodiscard]] std::size_t size() const { return records_.size(); }

  /// All records in insertion order.
  [[nodiscard]] const std::vector<InteractionRecord>& records() const {
    return records_;
  }

  /// Record by id; nullptr when absent.
  [[nodiscard]] const InteractionRecord* get(std::uint64_t id) const;

  /// Case-insensitive substring search over questions and responses.
  [[nodiscard]] std::vector<const InteractionRecord*> search(
      std::string_view needle) const;

  /// All records of a pipeline (e.g. "rag+rerank").
  [[nodiscard]] std::vector<const InteractionRecord*> by_pipeline(
      std::string_view pipeline) const;

  /// Build a blind-scoring batch: all records matching `pipeline` ("" = all),
  /// anonymized and shuffled deterministically by `seed`.
  [[nodiscard]] std::vector<BlindItem> blind_batch(std::string_view pipeline,
                                                   std::uint64_t seed) const;

  /// Record a scorer's verdict on a record. Returns false for unknown ids or
  /// out-of-range scores.
  bool record_score(std::uint64_t record_id, ScoreRecord score);

  /// Mean score of a record across scorers; nullopt when unscored.
  [[nodiscard]] std::optional<double> mean_score(std::uint64_t record_id) const;

  /// JSON round-trip for persistence.
  [[nodiscard]] pkb::util::Json to_json() const;
  static HistoryStore from_json(const pkb::util::Json& j);

  /// File persistence (JSON, pretty-printed).
  void save(const std::string& path) const;
  static HistoryStore load(const std::string& path);

 private:
  std::vector<InteractionRecord> records_;
  std::uint64_t next_id_ = 1;
};

}  // namespace pkb::history
