#include "lexical/bm25.h"

#include <algorithm>
#include <cmath>

#include "text/tokenizer.h"

namespace pkb::lexical {

Bm25Index::Bm25Index(Bm25Options opts) : opts_(opts) {}

void Bm25Index::build(std::vector<text::Document> docs) {
  docs_ = std::move(docs);
  doc_len_.assign(docs_.size(), 0.0);
  postings_.clear();

  double total_len = 0.0;
  for (std::size_t i = 0; i < docs_.size(); ++i) {
    std::unordered_map<std::string, std::uint32_t> tf;
    for (std::string& tok : text::tokens_of(docs_[i].text)) {
      ++tf[std::move(tok)];
    }
    double len = 0.0;
    for (const auto& [term, count] : tf) {
      postings_[term].push_back(Posting{i, count});
      len += count;
    }
    doc_len_[i] = len;
    total_len += len;
  }
  avg_len_ = docs_.empty() ? 0.0 : total_len / static_cast<double>(docs_.size());
}

const text::Document& Bm25Index::doc(std::size_t i) const {
  return docs_.at(i);
}

double Bm25Index::idf(std::string_view term) const {
  auto it = postings_.find(std::string(term));
  if (it == postings_.end()) return 0.0;
  const double n = static_cast<double>(docs_.size());
  const double df = static_cast<double>(it->second.size());
  // BM25+ style floor at 0 via the +1 inside the log.
  return std::log(1.0 + (n - df + 0.5) / (df + 0.5));
}

double Bm25Index::score_posting(double idf, double tf, double doc_len) const {
  const double denom =
      tf + opts_.k1 * (1.0 - opts_.b + opts_.b * doc_len /
                                           std::max(avg_len_, 1e-9));
  return idf * tf * (opts_.k1 + 1.0) / denom;
}

std::vector<Bm25Result> Bm25Index::search(std::string_view query,
                                          std::size_t k) const {
  if (k == 0 || docs_.empty()) return {};
  std::vector<double> scores(docs_.size(), 0.0);
  for (const std::string& term : text::tokens_of(query)) {
    auto it = postings_.find(term);
    if (it == postings_.end()) continue;
    const double term_idf = idf(term);
    for (const Posting& p : it->second) {
      scores[p.doc] += score_posting(term_idf, p.tf, doc_len_[p.doc]);
    }
  }
  std::vector<std::size_t> order;
  order.reserve(docs_.size());
  for (std::size_t i = 0; i < docs_.size(); ++i) {
    if (scores[i] > 0.0) order.push_back(i);
  }
  const std::size_t keep = std::min(k, order.size());
  std::partial_sort(order.begin(),
                    order.begin() + static_cast<std::ptrdiff_t>(keep),
                    order.end(), [&](std::size_t a, std::size_t b) {
                      if (scores[a] != scores[b]) return scores[a] > scores[b];
                      return a < b;
                    });
  order.resize(keep);
  std::vector<Bm25Result> out;
  out.reserve(keep);
  for (std::size_t i : order) {
    out.push_back(Bm25Result{i, scores[i], &docs_[i]});
  }
  return out;
}

double Bm25Index::score_one(std::string_view query, std::size_t i) const {
  double score = 0.0;
  for (const std::string& term : text::tokens_of(query)) {
    auto it = postings_.find(term);
    if (it == postings_.end()) continue;
    for (const Posting& p : it->second) {
      if (p.doc == i) {
        score += score_posting(idf(term), p.tf, doc_len_[i]);
        break;
      }
    }
  }
  return score;
}

}  // namespace pkb::lexical
