#pragma once
// Inverted index with BM25 ranking.
//
// Used (a) by the keyword-search augmentation of §III-C, (b) as a scoring
// signal inside the FlashRanker, and (c) as a lexical baseline in the
// retrieval benches.

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "text/document.h"

namespace pkb::lexical {

/// One BM25 hit.
struct Bm25Result {
  std::size_t index = 0;  ///< document position in the indexed collection
  double score = 0.0;
  const text::Document* doc = nullptr;
};

/// BM25 parameters (standard Okapi defaults).
struct Bm25Options {
  double k1 = 1.2;   ///< term-frequency saturation
  double b = 0.75;   ///< length normalization strength
};

/// Immutable-after-build inverted index.
class Bm25Index {
 public:
  explicit Bm25Index(Bm25Options opts = {});

  /// Index a collection (replaces any previous contents). Documents are
  /// stored by value; the index owns them.
  void build(std::vector<text::Document> docs);

  [[nodiscard]] std::size_t size() const { return docs_.size(); }
  [[nodiscard]] const text::Document& doc(std::size_t i) const;

  /// Top-k by BM25 (descending; ties by lower index). Query terms absent
  /// from the index contribute nothing.
  [[nodiscard]] std::vector<Bm25Result> search(std::string_view query,
                                               std::size_t k) const;

  /// BM25 score of one specific document for a query (0 when no overlap).
  [[nodiscard]] double score_one(std::string_view query, std::size_t i) const;

  /// Smoothed IDF of a term under the BM25 formula (0 when unknown).
  [[nodiscard]] double idf(std::string_view term) const;

 private:
  struct Posting {
    std::size_t doc = 0;
    std::uint32_t tf = 0;
  };

  [[nodiscard]] double score_posting(double idf, double tf,
                                     double doc_len) const;

  Bm25Options opts_;
  std::vector<text::Document> docs_;
  std::vector<double> doc_len_;
  double avg_len_ = 0.0;
  std::unordered_map<std::string, std::vector<Posting>> postings_;
};

}  // namespace pkb::lexical
