#pragma once
// PETSc-specific keyword-search augmentation (§III-C of the paper):
// "Whenever a word in the query has a PETSc manual page associated with it,
//  for example KSPSolve, the manual page is added to the material that RAG
//  has found."
//
// SymbolIndex maps API symbols (exact or fuzzy) found in a query to the
// manual-page documents of the chunked corpus.

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "text/document.h"

namespace pkb::lexical {

/// One keyword hit: a query symbol resolved to manual-page chunks.
struct KeywordHit {
  std::string symbol;             ///< the symbol as written in the query
  std::string resolved;           ///< the canonical symbol it resolved to
  std::string page;               ///< manual page path
  std::vector<std::size_t> chunks;  ///< chunk indices in the collection
};

/// One serialized index entry: a canonical symbol and its chunk indices.
/// entries()/from_entries round-trip the index through Snapshot persistence.
struct SymbolEntry {
  std::string symbol;
  std::vector<std::size_t> chunks;
};

/// Maps API symbols to the corpus chunks of their manual pages.
class SymbolIndex {
 public:
  /// `chunks` is the chunked corpus; a chunk belongs to a symbol's page when
  /// its metadata["source"] equals the symbol's manual-page path.
  /// Symbol->page mapping comes from the corpus ApiSpec table.
  explicit SymbolIndex(const std::vector<text::Document>& chunks);

  /// Rebuild an index from serialized entries (Snapshot::load). Chunk-index
  /// validity against the owning chunk list is the caller's responsibility.
  [[nodiscard]] static SymbolIndex from_entries(
      std::vector<SymbolEntry> entries);

  /// The index contents, sorted by symbol for deterministic serialization.
  [[nodiscard]] std::vector<SymbolEntry> entries() const;

  /// Extract API-shaped symbols from `query` and resolve each to manual-page
  /// chunks. Unknown symbols resolve to no page but are still reported (the
  /// LLM needs to know the user asked about something nonexistent).
  /// `fuzzy` enables edit-distance-2 resolution of typos.
  [[nodiscard]] std::vector<KeywordHit> lookup(std::string_view query,
                                               bool fuzzy = true) const;

  /// All chunk indices for one canonical symbol (empty when unknown).
  [[nodiscard]] std::vector<std::size_t> chunks_of(
      std::string_view symbol) const;

  /// Number of symbols with at least one chunk.
  [[nodiscard]] std::size_t symbol_count() const { return by_symbol_.size(); }

 private:
  SymbolIndex() = default;  ///< used by from_entries

  std::unordered_map<std::string, std::vector<std::size_t>> by_symbol_;
};

}  // namespace pkb::lexical
