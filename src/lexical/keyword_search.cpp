#include "lexical/keyword_search.h"

#include <algorithm>
#include <utility>

#include "corpus/api_spec.h"
#include "text/tokenizer.h"

namespace pkb::lexical {

SymbolIndex::SymbolIndex(const std::vector<text::Document>& chunks) {
  // Map manual-page path -> chunk indices.
  std::unordered_map<std::string, std::vector<std::size_t>> by_source;
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    by_source[std::string(chunks[i].meta("source"))].push_back(i);
  }
  for (const corpus::ApiSpec& spec : corpus::api_table()) {
    auto it = by_source.find(corpus::manual_page_path(spec));
    if (it == by_source.end()) continue;
    by_symbol_.emplace(spec.name, it->second);
  }
}

SymbolIndex SymbolIndex::from_entries(std::vector<SymbolEntry> entries) {
  SymbolIndex index;
  for (SymbolEntry& entry : entries) {
    index.by_symbol_.emplace(std::move(entry.symbol), std::move(entry.chunks));
  }
  return index;
}

std::vector<SymbolEntry> SymbolIndex::entries() const {
  std::vector<SymbolEntry> out;
  out.reserve(by_symbol_.size());
  for (const auto& [symbol, chunks] : by_symbol_) {
    out.push_back(SymbolEntry{symbol, chunks});
  }
  std::sort(out.begin(), out.end(),
            [](const SymbolEntry& a, const SymbolEntry& b) {
              return a.symbol < b.symbol;
            });
  return out;
}

std::vector<KeywordHit> SymbolIndex::lookup(std::string_view query,
                                            bool fuzzy) const {
  std::vector<KeywordHit> hits;
  const text::TokenizedText tt = text::tokenize(query);
  for (const std::string& symbol : tt.symbols) {
    KeywordHit hit;
    hit.symbol = symbol;
    const corpus::ApiSpec* spec = corpus::find_spec(symbol);
    if (spec == nullptr && fuzzy) {
      spec = corpus::find_spec_fuzzy(symbol);
    }
    if (spec != nullptr) {
      hit.resolved = spec->name;
      hit.page = corpus::manual_page_path(*spec);
      auto it = by_symbol_.find(spec->name);
      if (it != by_symbol_.end()) hit.chunks = it->second;
    }
    hits.push_back(std::move(hit));
  }
  return hits;
}

std::vector<std::size_t> SymbolIndex::chunks_of(std::string_view symbol) const {
  auto it = by_symbol_.find(std::string(symbol));
  return it == by_symbol_.end() ? std::vector<std::size_t>{} : it->second;
}

}  // namespace pkb::lexical
