#include "rerank/reranker.h"

#include <stdexcept>

#include "rerank/cross_score.h"
#include "rerank/flashranker.h"

namespace pkb::rerank {

std::unique_ptr<Reranker> make_reranker(std::string_view name) {
  if (name == "sim-flashrank") return std::make_unique<FlashRanker>();
  if (name == "sim-nv-cross") return std::make_unique<CrossScoreReranker>();
  throw std::invalid_argument("unknown reranker: " + std::string(name));
}

std::vector<std::string> reranker_registry() {
  return {"sim-flashrank", "sim-nv-cross"};
}

}  // namespace pkb::rerank
