#include "rerank/flashranker.h"

#include <algorithm>
#include <unordered_set>

#include "text/tokenizer.h"
#include "util/strings.h"

namespace pkb::rerank {

FlashRanker::FlashRanker(FlashRankerOptions opts) : opts_(opts) {}

void FlashRanker::fit(const std::vector<text::Document>& corpus) {
  index_.build(corpus);  // copy: the index owns its documents
}

double FlashRanker::score_pair(std::string_view query,
                               const text::Document& doc) const {
  const text::TokenizedText q = text::tokenize(query);
  const std::string doc_lower = pkb::util::to_lower(doc.text);

  // IDF-weighted coverage of distinct query terms.
  std::unordered_set<std::string> doc_terms;
  for (std::string& tok : text::tokens_of(doc.text)) {
    doc_terms.insert(std::move(tok));
  }
  double coverage = 0.0;
  double total_idf = 0.0;
  std::unordered_set<std::string> seen;
  for (const std::string& term : q.tokens) {
    if (!seen.insert(term).second) continue;
    if (text::stopwords().contains(term)) continue;
    const double w = std::max(0.1, index_.idf(term));
    total_idf += w;
    if (doc_terms.contains(term)) coverage += w;
  }
  double score = total_idf > 0.0
                     ? opts_.coverage_weight * coverage / total_idf
                     : 0.0;

  // Exact API-symbol matches (case-sensitive surface form in the raw text).
  for (const std::string& symbol : q.symbols) {
    if (doc.text.find(symbol) != std::string::npos) {
      score += opts_.symbol_bonus * std::max(0.2, index_.idf(
                   pkb::util::to_lower(symbol)));
    }
  }

  // Query bigrams appearing verbatim (lowercased) in the document.
  for (std::size_t i = 0; i + 1 < q.tokens.size(); ++i) {
    if (text::stopwords().contains(q.tokens[i]) &&
        text::stopwords().contains(q.tokens[i + 1])) {
      continue;
    }
    const std::string bigram = q.tokens[i] + " " + q.tokens[i + 1];
    if (doc_lower.find(bigram) != std::string::npos) {
      score += opts_.bigram_bonus;
    }
  }

  // Title hits, IDF-weighted: rare query terms matching the page symbol are
  // near-decisive.
  const std::string title = pkb::util::to_lower(doc.meta("title"));
  if (!title.empty()) {
    for (const std::string& term : seen) {
      if (text::stopwords().contains(term)) continue;
      if (title.find(term) != std::string::npos) {
        score += opts_.title_weight * std::max(0.2, index_.idf(term));
      }
    }
    for (const std::string& symbol : q.symbols) {
      if (pkb::util::iequals(symbol, doc.meta("title"))) {
        score += opts_.title_symbol_bonus;
      }
    }
  }

  // BM25 against the fitted corpus statistics: approximate by scoring the
  // candidate text directly (per-term idf * saturated tf).
  double bm25 = 0.0;
  for (const std::string& term : seen) {
    if (!doc_terms.contains(term)) continue;
    const double tf = static_cast<double>(
        pkb::util::count_occurrences(doc_lower, term));
    bm25 += index_.idf(term) * (tf * 2.2) / (tf + 1.2);
  }
  score += opts_.bm25_weight * bm25 / 10.0;

  return score;
}

std::vector<RerankResult> FlashRanker::rerank(
    std::string_view query, const std::vector<RerankCandidate>& candidates,
    std::size_t top_l) const {
  consult_fault_plan();
  std::vector<RerankResult> out;
  out.reserve(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    out.push_back(RerankResult{candidates[i].doc,
                               score_pair(query, *candidates[i].doc), i});
  }
  std::sort(out.begin(), out.end(),
            [](const RerankResult& a, const RerankResult& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.original_rank < b.original_rank;
            });
  if (out.size() > top_l) out.resize(top_l);
  return out;
}

}  // namespace pkb::rerank
