#pragma once
// The heavy reranker (NVIDIA cross-encoder analogue): an all-pairs soft
// alignment between query and document terms with positional proximity
// weighting — O(|query| * |doc|) per pair, an order of magnitude more work
// than FlashRanker's set operations.

#include "lexical/bm25.h"
#include "rerank/reranker.h"

namespace pkb::rerank {

struct CrossScoreOptions {
  /// Gaussian width (in token positions) of the proximity kernel: query
  /// terms matching close together in the document score more.
  double proximity_sigma = 12.0;
  /// Weight of the proximity-weighted alignment vs plain coverage.
  double alignment_weight = 1.0;
  double coverage_weight = 0.8;
  /// Character-trigram soft matching threshold for near-miss terms
  /// (handles morphology: "restarting" ~ "restart").
  double soft_match_threshold = 0.55;
};

class CrossScoreReranker final : public Reranker {
 public:
  explicit CrossScoreReranker(CrossScoreOptions opts = {});

  [[nodiscard]] std::string name() const override { return "sim-nv-cross"; }
  void fit(const std::vector<text::Document>& corpus) override;
  [[nodiscard]] std::vector<RerankResult> rerank(
      std::string_view query, const std::vector<RerankCandidate>& candidates,
      std::size_t top_l) const override;

  /// Score one pair; exposed for tests and the comparison bench.
  [[nodiscard]] double score_pair(std::string_view query,
                                  const text::Document& doc) const;

 private:
  CrossScoreOptions opts_;
  lexical::Bm25Index index_;
};

}  // namespace pkb::rerank
