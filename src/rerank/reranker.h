#pragma once
// Reranking-enhanced retrieval (§III-D, Fig 4 of the paper).
//
// The first-pass retriever returns K candidates quickly; the reranker
// re-scores each (query, document) pair with a more expensive model and
// keeps the best L. We provide two rerankers mirroring the paper's pair:
//
//  * FlashRanker       — the Flashrank analogue: lightweight CPU scoring
//                        (IDF-weighted term coverage + exact-symbol and
//                        bigram bonuses). Fast.
//  * CrossScoreReranker — the NVIDIA-reranker analogue: a cross-attention-
//                        style alignment score computed over all (query
//                        term, document term) pairs with positional
//                        proximity weighting. More expensive per pair,
//                        similar accuracy on this corpus (reproduced by
//                        bench/reranker_comparison).

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "resilience/fault_plan.h"
#include "text/document.h"

namespace pkb::rerank {

/// A first-pass candidate entering the reranker.
struct RerankCandidate {
  const text::Document* doc = nullptr;
  /// First-pass (embedding or keyword) score, informational only.
  float retrieval_score = 0.0f;
};

/// A reranked document.
struct RerankResult {
  const text::Document* doc = nullptr;
  double score = 0.0;
  /// Position in the candidate list before reranking (0-based).
  std::size_t original_rank = 0;
};

/// Common interface. fit() learns corpus statistics (IDF); rerank() scores
/// candidates and returns the best `top_l` in descending score order.
class Reranker {
 public:
  virtual ~Reranker() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Learn corpus statistics used for term weighting.
  virtual void fit(const std::vector<text::Document>& corpus) = 0;

  /// Score and reorder; returns min(top_l, candidates.size()) results,
  /// descending score, ties broken by original rank. Deterministic.
  [[nodiscard]] virtual std::vector<RerankResult> rerank(
      std::string_view query, const std::vector<RerankCandidate>& candidates,
      std::size_t top_l) const = 0;

  /// Attach a chaos plan consulted (Stage::Rerank) at each rerank() entry:
  /// error/timeout decisions throw the matching resilience::FaultError,
  /// which the retrieval layer catches to fall back to first-pass order.
  /// Setup-time only — must not race in-flight rerank() calls.
  void set_fault_plan(const pkb::resilience::FaultPlan* plan) {
    fault_plan_ = plan;
  }

 protected:
  /// Implementations call this first thing in rerank().
  void consult_fault_plan() const {
    pkb::resilience::consult(fault_plan_, pkb::resilience::Stage::Rerank);
  }

 private:
  const pkb::resilience::FaultPlan* fault_plan_ = nullptr;
};

/// Registry: "sim-flashrank" or "sim-nv-cross". Throws on unknown names.
[[nodiscard]] std::unique_ptr<Reranker> make_reranker(std::string_view name);

/// All registry names.
[[nodiscard]] std::vector<std::string> reranker_registry();

}  // namespace pkb::rerank
