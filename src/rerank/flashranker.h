#pragma once
// The lightweight CPU reranker (Flashrank analogue).

#include "lexical/bm25.h"
#include "rerank/reranker.h"

namespace pkb::rerank {

/// Scoring weights of the FlashRanker blend.
struct FlashRankerOptions {
  double coverage_weight = 1.0;  ///< IDF-weighted query-term coverage
  double bm25_weight = 0.35;     ///< BM25 score contribution
  double symbol_bonus = 1.5;     ///< per exact API-symbol match (x IDF)
  double bigram_bonus = 0.3;     ///< per matched query bigram
  /// Weight of IDF-weighted query terms found in the document title — a
  /// rare query term matching the manual-page symbol ("richardson" in
  /// "KSPRICHARDSON") is close to decisive.
  double title_weight = 0.22;
  /// Extra bonus when a query API symbol IS the document title.
  double title_symbol_bonus = 2.0;
};

class FlashRanker final : public Reranker {
 public:
  explicit FlashRanker(FlashRankerOptions opts = {});

  [[nodiscard]] std::string name() const override { return "sim-flashrank"; }
  void fit(const std::vector<text::Document>& corpus) override;
  [[nodiscard]] std::vector<RerankResult> rerank(
      std::string_view query, const std::vector<RerankCandidate>& candidates,
      std::size_t top_l) const override;

  /// Score one (query, document) pair; exposed for tests and ablations.
  [[nodiscard]] double score_pair(std::string_view query,
                                  const text::Document& doc) const;

 private:
  FlashRankerOptions opts_;
  lexical::Bm25Index index_;
};

}  // namespace pkb::rerank
