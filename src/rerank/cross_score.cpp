#include "rerank/cross_score.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "text/tokenizer.h"
#include "util/thread_pool.h"

namespace pkb::rerank {

namespace {

/// Dice coefficient over character trigram multisets — cheap soft term
/// similarity for morphological near-misses.
double trigram_similarity(const std::string& a, const std::string& b) {
  if (a == b) return 1.0;
  if (a.size() < 3 || b.size() < 3) return 0.0;
  std::unordered_set<std::string> ta;
  for (std::size_t i = 0; i + 3 <= a.size(); ++i) ta.insert(a.substr(i, 3));
  std::size_t common = 0;
  std::size_t nb = 0;
  std::unordered_set<std::string> counted;
  for (std::size_t i = 0; i + 3 <= b.size(); ++i) {
    const std::string g = b.substr(i, 3);
    ++nb;
    if (ta.contains(g) && counted.insert(g).second) ++common;
  }
  const double denom = static_cast<double>(ta.size() + nb);
  return denom == 0.0 ? 0.0 : 2.0 * static_cast<double>(common) / denom;
}

}  // namespace

CrossScoreReranker::CrossScoreReranker(CrossScoreOptions opts) : opts_(opts) {}

void CrossScoreReranker::fit(const std::vector<text::Document>& corpus) {
  index_.build(corpus);
}

double CrossScoreReranker::score_pair(std::string_view query,
                                      const text::Document& doc) const {
  const std::vector<std::string> q = text::tokens_of(query);
  const std::vector<std::string> d = text::tokens_of(doc.text);
  if (q.empty() || d.empty()) return 0.0;

  // For each content query term, find its best (soft) match position(s) in
  // the document; alignment rewards matches, proximity rewards clusters.
  struct Match {
    double strength = 0.0;  // 0..1 soft match quality
    std::size_t pos = 0;
    double idf = 0.0;
  };
  std::vector<Match> best;
  double total_idf = 0.0;

  for (std::size_t qi = 0; qi < q.size(); ++qi) {
    const std::string& term = q[qi];
    if (text::stopwords().contains(term) || term.size() < 2) continue;
    const double idf = std::max(0.1, index_.idf(term));
    total_idf += idf;
    Match m;
    m.idf = idf;
    for (std::size_t di = 0; di < d.size(); ++di) {
      double s = 0.0;
      if (d[di] == term) {
        s = 1.0;
      } else {
        const double t = trigram_similarity(term, d[di]);
        s = t >= opts_.soft_match_threshold ? 0.7 * t : 0.0;
      }
      if (s > m.strength) {
        m.strength = s;
        m.pos = di;
      }
    }
    if (m.strength > 0.0) best.push_back(m);
  }
  if (best.empty() || total_idf <= 0.0) return 0.0;

  // Coverage: IDF-weighted fraction of query terms matched.
  double coverage = 0.0;
  for (const Match& m : best) coverage += m.idf * m.strength;
  coverage /= total_idf;

  // Alignment: pairwise proximity of the matched positions — matched terms
  // that sit near each other in the document indicate a passage that
  // actually discusses the query topic rather than scattered mentions.
  double alignment = 0.0;
  double pair_weight = 0.0;
  for (std::size_t i = 0; i < best.size(); ++i) {
    for (std::size_t j = i + 1; j < best.size(); ++j) {
      const double gap = std::fabs(static_cast<double>(best[i].pos) -
                                   static_cast<double>(best[j].pos));
      const double prox =
          std::exp(-(gap * gap) /
                   (2.0 * opts_.proximity_sigma * opts_.proximity_sigma));
      const double w = best[i].idf * best[j].idf *
                       best[i].strength * best[j].strength;
      alignment += w * prox;
      pair_weight += w;
    }
  }
  if (pair_weight > 0.0) alignment /= pair_weight;

  return opts_.coverage_weight * coverage +
         opts_.alignment_weight * alignment * coverage;
}

std::vector<RerankResult> CrossScoreReranker::rerank(
    std::string_view query, const std::vector<RerankCandidate>& candidates,
    std::size_t top_l) const {
  consult_fault_plan();
  // Each (query, document) pair costs O(|query| * |doc|); score them across
  // the pool. Writes go to distinct slots and score_pair is const, so the
  // loop is race-free; the subsequent sort makes the output order identical
  // to the serial loop's.
  std::vector<RerankResult> out(candidates.size());
  pkb::util::parallel_for(
      0, candidates.size(),
      [&](std::size_t i) {
        out[i] = RerankResult{candidates[i].doc,
                              score_pair(query, *candidates[i].doc), i};
      },
      /*min_block=*/2);
  std::sort(out.begin(), out.end(),
            [](const RerankResult& a, const RerankResult& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.original_rank < b.original_rank;
            });
  if (out.size() > top_l) out.resize(top_l);
  return out;
}

}  // namespace pkb::rerank
