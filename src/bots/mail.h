#pragma once
// Mail substrate: the petsc-users mailing list, subscriber mailboxes with
// unread flags (the Gmail account of §IV), and email text cleanup (quote
// stripping, URL-defense reversal).

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/clock.h"

namespace pkb::bots {

/// One email.
struct Email {
  std::uint64_t id = 0;
  std::string from;
  std::string to;       ///< list address
  std::string subject;  ///< thread key ("Re: " prefixes are normalized away)
  std::string body;
  std::vector<std::string> attachments;
  double timestamp = 0.0;
  bool read = false;  ///< per-mailbox flag (set on the mailbox copy)
};

/// A subscriber's mailbox.
class Mailbox {
 public:
  explicit Mailbox(std::string address) : address_(std::move(address)) {}

  [[nodiscard]] const std::string& address() const { return address_; }

  /// Deliver a copy (arrives unread).
  void deliver(Email email);

  /// All messages, oldest first.
  [[nodiscard]] const std::vector<Email>& all() const { return inbox_; }

  /// Unread messages, oldest first.
  [[nodiscard]] std::vector<const Email*> unread() const;
  [[nodiscard]] bool has_unread() const;

  /// Mark one message read; false when the id is unknown.
  bool mark_read(std::uint64_t id);

 private:
  std::string address_;
  std::vector<Email> inbox_;
};

/// The mailing list: posts fan out to every subscriber's mailbox and into
/// the public archive.
class MailingList {
 public:
  MailingList(std::string address, pkb::util::SimClock* clock);

  [[nodiscard]] const std::string& address() const { return address_; }

  /// Subscribe a mailbox (held by pointer; caller owns it).
  void subscribe(Mailbox* mailbox);

  /// Post to the list; the email is stamped, archived, and delivered.
  /// Returns the assigned id.
  std::uint64_t post(std::string_view from, std::string_view subject,
                     std::string_view body,
                     std::vector<std::string> attachments = {});

  /// Public archive, oldest first (petsc-users has 20 years of these).
  [[nodiscard]] const std::vector<Email>& archive() const { return archive_; }

 private:
  std::string address_;
  pkb::util::SimClock* clock_;
  std::vector<Mailbox*> subscribers_;
  std::vector<Email> archive_;
  std::uint64_t next_id_ = 1;
};

/// Normalize a subject to its thread key: strips any number of leading
/// "Re:" / "RE:" / "Fwd:" markers and trims.
[[nodiscard]] std::string thread_key(std::string_view subject);

/// Remove quoted reply lines ("> ..." and "On ... wrote:" headers) — the
/// paper: "We lightly parse email bodies to remove quotes commonly seen in
/// email replies."
[[nodiscard]] std::string strip_quoted_lines(std::string_view body);

/// Revert url-defense mangled links:
/// "https://urldefense.us/v3/__<real>__;!!token$" -> "<real>".
[[nodiscard]] std::string revert_url_defense(std::string_view body);

}  // namespace pkb::bots
