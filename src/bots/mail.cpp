#include "bots/mail.h"

#include <stdexcept>

#include "util/strings.h"

namespace pkb::bots {

using pkb::util::split_lines;
using pkb::util::starts_with;
using pkb::util::trim;

void Mailbox::deliver(Email email) {
  email.read = false;
  inbox_.push_back(std::move(email));
}

std::vector<const Email*> Mailbox::unread() const {
  std::vector<const Email*> out;
  for (const Email& email : inbox_) {
    if (!email.read) out.push_back(&email);
  }
  return out;
}

bool Mailbox::has_unread() const {
  for (const Email& email : inbox_) {
    if (!email.read) return true;
  }
  return false;
}

bool Mailbox::mark_read(std::uint64_t id) {
  for (Email& email : inbox_) {
    if (email.id == id) {
      email.read = true;
      return true;
    }
  }
  return false;
}

MailingList::MailingList(std::string address, pkb::util::SimClock* clock)
    : address_(std::move(address)), clock_(clock) {
  if (clock_ == nullptr) {
    throw std::invalid_argument("MailingList: clock must not be null");
  }
}

void MailingList::subscribe(Mailbox* mailbox) {
  if (mailbox == nullptr) {
    throw std::invalid_argument("MailingList: null mailbox");
  }
  subscribers_.push_back(mailbox);
}

std::uint64_t MailingList::post(std::string_view from,
                                std::string_view subject,
                                std::string_view body,
                                std::vector<std::string> attachments) {
  Email email;
  email.id = next_id_++;
  email.from = std::string(from);
  email.to = address_;
  email.subject = std::string(subject);
  email.body = std::string(body);
  email.attachments = std::move(attachments);
  email.timestamp = clock_->now();
  archive_.push_back(email);
  for (Mailbox* mailbox : subscribers_) {
    mailbox->deliver(email);
  }
  return email.id;
}

std::string thread_key(std::string_view subject) {
  std::string_view s = trim(subject);
  while (true) {
    bool stripped = false;
    for (std::string_view prefix : {"Re:", "RE:", "re:", "Fwd:", "FWD:",
                                    "fwd:", "Fw:"}) {
      if (starts_with(s, prefix)) {
        s = trim(s.substr(prefix.size()));
        stripped = true;
      }
    }
    if (!stripped) break;
  }
  return std::string(s);
}

std::string strip_quoted_lines(std::string_view body) {
  std::string out;
  for (std::string_view line : split_lines(body)) {
    const std::string_view t = trim(line);
    if (starts_with(t, ">")) continue;
    // "On <date>, <someone> wrote:" reply headers.
    if (starts_with(t, "On ") && t.ends_with("wrote:")) continue;
    out.append(line);
    out += '\n';
  }
  // Trim trailing blank lines.
  while (out.size() >= 2 && out[out.size() - 1] == '\n' &&
         out[out.size() - 2] == '\n') {
    out.pop_back();
  }
  return out;
}

std::string revert_url_defense(std::string_view body) {
  std::string out;
  std::size_t i = 0;
  constexpr std::string_view kPrefix = "https://urldefense.us/v3/__";
  while (i < body.size()) {
    const std::size_t start = body.find(kPrefix, i);
    if (start == std::string_view::npos) {
      out.append(body.substr(i));
      break;
    }
    out.append(body.substr(i, start - i));
    const std::size_t inner = start + kPrefix.size();
    const std::size_t end = body.find("__;", inner);
    if (end == std::string_view::npos) {
      out.append(body.substr(start));
      break;
    }
    out.append(body.substr(inner, end - inner));
    // Skip past the token: "__;<base64ish>$" — ends at the first '$'.
    std::size_t after = body.find('$', end);
    i = after == std::string_view::npos ? body.size() : after + 1;
  }
  return out;
}

}  // namespace pkb::bots
