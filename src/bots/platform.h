#pragma once
// In-process simulation of the Discord-like messaging platform (§IV).
//
// The paper's integration runs on real Discord (channels, forum channels
// with posts, webhooks, bots); this module implements the same primitives as
// a deterministic in-process state machine so every arc of Fig 5 is
// executable and testable.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/clock.h"

namespace pkb::bots {

/// One message in a channel or forum post.
struct Message {
  std::uint64_t id = 0;
  std::string author;
  std::string content;
  double timestamp = 0.0;
  std::vector<std::string> attachments;
  /// Free-form tags ("status" = draft/sent/discarded, "signed-by", ...).
  std::map<std::string, std::string> tags;
};

/// Channel kinds: plain text channels and forum channels made of posts.
enum class ChannelKind { Text, Forum };

/// A forum post: a titled thread of messages.
struct ForumPost {
  std::uint64_t id = 0;
  std::string title;
  std::vector<Message> messages;
};

/// A channel.
struct Channel {
  std::string name;
  ChannelKind kind = ChannelKind::Text;
  bool is_private = false;           ///< visible to developers only
  std::vector<Message> messages;     ///< Text channels
  std::vector<ForumPost> posts;      ///< Forum channels
};

/// A registered webhook: an HTTP-callback stand-in that posts into its bound
/// channel.
struct Webhook {
  std::string url;      ///< opaque token, e.g. "webhook://petsc/1"
  std::string channel;  ///< target channel name
};

/// The server: channels, members, webhooks. All mutation is explicit and
/// deterministic; time comes from the shared SimClock.
class DiscordServer {
 public:
  explicit DiscordServer(pkb::util::SimClock* clock);

  /// Create a channel; returns false if the name is taken.
  bool create_channel(std::string_view name, ChannelKind kind,
                      bool is_private = false);

  /// Look up a channel (nullptr when absent).
  [[nodiscard]] const Channel* channel(std::string_view name) const;

  /// Membership (users and bot identities).
  void join(std::string_view user, bool is_developer = false);
  [[nodiscard]] bool is_member(std::string_view user) const;
  [[nodiscard]] bool is_developer(std::string_view user) const;
  [[nodiscard]] std::size_t member_count() const { return members_.size(); }

  /// Post to a text channel; returns the message id. Throws on unknown or
  /// wrong-kind channels, and on private channels for non-developers
  /// (webhook/bot authors are allowed).
  std::uint64_t post_message(std::string_view channel, std::string_view author,
                             std::string_view content,
                             std::vector<std::string> attachments = {});

  /// Create a post in a forum channel; returns the post id.
  std::uint64_t create_post(std::string_view channel, std::string_view title);

  /// Append a message to a forum post; returns the message id.
  std::uint64_t add_to_post(std::string_view channel, std::uint64_t post_id,
                            std::string_view author, std::string_view content,
                            std::vector<std::string> attachments = {});

  /// Find a forum post by title (nullptr when absent).
  [[nodiscard]] const ForumPost* find_post(std::string_view channel,
                                           std::string_view title) const;
  [[nodiscard]] const ForumPost* post(std::string_view channel,
                                      std::uint64_t post_id) const;

  /// Mutable access for bots that edit their own messages (tags, deletion).
  Message* find_message(std::string_view channel, std::uint64_t message_id);
  /// Delete a message from a forum post or text channel; false when absent.
  bool delete_message(std::string_view channel, std::uint64_t message_id);

  /// Webhooks.
  [[nodiscard]] std::string create_webhook(std::string_view channel);
  /// Post through a webhook url; returns the message id, or nullopt for an
  /// unknown webhook.
  std::optional<std::uint64_t> post_via_webhook(std::string_view url,
                                                std::string_view content);

  [[nodiscard]] const pkb::util::SimClock& clock() const { return *clock_; }

 private:
  Channel* channel_mut(std::string_view name);

  pkb::util::SimClock* clock_;
  std::vector<Channel> channels_;
  std::map<std::string, bool> members_;  ///< name -> is_developer
  std::vector<Webhook> webhooks_;
  std::uint64_t next_id_ = 1;
};

}  // namespace pkb::bots
