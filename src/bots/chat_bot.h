#pragma once
// The PETSc chat bot (arcs 4-7 of Fig 5, adapted from llmcord in the paper):
//
//  * a developer invokes /reply on a forum post -> the bot builds the
//    conversation context and asks the augmented LLM for a draft,
//  * the draft appears in the post with three buttons: send / discard /
//    revise,
//  * send mails the draft to petsc-users signed by the clicking developer,
//  * discard deletes it, revise regenerates it with developer guidance,
//  * users may also direct-message the bot (private, unvetted — the mode
//    the paper warns "may expose the user to unvetted hallucinations").
//
// Safety invariant (tested): nothing the LLM wrote ever reaches the mailing
// list without a developer pressing send.

#include <map>
#include <optional>
#include <string>

#include "bots/mail.h"
#include "bots/platform.h"
#include "rag/workflow.h"

namespace pkb::ingest {
class Ingestor;
}

namespace pkb::bots {

/// Outcome of a button press.
enum class ButtonResult {
  Ok,
  UnknownDraft,
  NotADeveloper,
  AlreadyResolved,
};

[[nodiscard]] std::string_view to_string(ButtonResult result);

class ChatBot {
 public:
  /// `service` generates the drafts — either an AugmentedWorkflow directly
  /// (typically the rag+rerank arm) or a serve::Server front end wrapping
  /// one; `list` is where send() posts; `server` hosts the forum channel.
  ChatBot(const rag::QuestionService* service, DiscordServer* server,
          MailingList* list, std::string forum_channel,
          std::string bot_email_address);

  /// A developer invokes /reply on a forum post: build the context from the
  /// post's title and messages, draft a reply, and attach it to the post
  /// with status=draft. Returns the draft message id, or nullopt when the
  /// post is unknown or the invoker is not a developer.
  std::optional<std::uint64_t> handle_reply_command(std::uint64_t post_id,
                                                    std::string_view developer);

  /// Buttons.
  ButtonResult press_send(std::uint64_t draft_id, std::string_view developer);
  ButtonResult press_discard(std::uint64_t draft_id,
                             std::string_view developer);
  /// Revise regenerates the draft including the developer's guidance; the
  /// old draft message is replaced (same post, new message id returned via
  /// `new_draft_id`).
  ButtonResult press_revise(std::uint64_t draft_id, std::string_view developer,
                            std::string_view guidance,
                            std::uint64_t* new_draft_id);

  /// Private direct message: answered immediately, no vetting. Returns the
  /// bot's reply text.
  [[nodiscard]] std::string direct_message(std::string_view user,
                                           std::string_view text);

  /// Number of emails this bot has sent to the list.
  [[nodiscard]] std::size_t emails_sent() const { return emails_sent_; }

  /// Close the paper's curation loop: when an ingestor is attached, every
  /// developer-approved send also ingests the resolved Q&A into the live
  /// knowledge base (one new generation per send), so the next question can
  /// retrieve this thread's answer. The ingestor must outlive the bot.
  void attach_ingestor(ingest::Ingestor* ingestor) { ingestor_ = ingestor; }

  /// Resolved threads ingested via the attached ingestor.
  [[nodiscard]] std::size_t threads_ingested() const {
    return threads_ingested_;
  }

 private:
  struct DraftInfo {
    std::uint64_t post_id = 0;
    std::string subject;
    std::string question_context;
    bool resolved = false;  ///< sent or discarded
  };

  [[nodiscard]] std::string build_context(const ForumPost& post) const;
  std::uint64_t attach_draft(std::uint64_t post_id, std::string_view subject,
                             std::string_view context,
                             std::string_view extra_guidance);

  const rag::QuestionService* service_;
  DiscordServer* server_;
  MailingList* list_;
  std::string forum_channel_;
  std::string bot_email_address_;
  std::map<std::uint64_t, DraftInfo> drafts_;  ///< draft message id -> info
  std::size_t emails_sent_ = 0;
  ingest::Ingestor* ingestor_ = nullptr;
  std::size_t threads_ingested_ = 0;
};

}  // namespace pkb::bots
