#include "bots/chat_bot.h"

#include <stdexcept>

#include "ingest/ingestor.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"

namespace pkb::bots {

std::string_view to_string(ButtonResult result) {
  switch (result) {
    case ButtonResult::Ok:
      return "ok";
    case ButtonResult::UnknownDraft:
      return "unknown draft";
    case ButtonResult::NotADeveloper:
      return "not a developer";
    case ButtonResult::AlreadyResolved:
      return "already resolved";
  }
  return "?";
}

ChatBot::ChatBot(const rag::QuestionService* service, DiscordServer* server,
                 MailingList* list, std::string forum_channel,
                 std::string bot_email_address)
    : service_(service),
      server_(server),
      list_(list),
      forum_channel_(std::move(forum_channel)),
      bot_email_address_(std::move(bot_email_address)) {
  if (service_ == nullptr || server_ == nullptr || list_ == nullptr) {
    throw std::invalid_argument("ChatBot: null dependency");
  }
}

std::string ChatBot::build_context(const ForumPost& post) const {
  std::string context = "Subject: " + post.title + "\n";
  for (const Message& msg : post.messages) {
    // Skip the bot's own drafts when rebuilding context.
    if (msg.tags.contains("status")) continue;
    context += msg.content;
    context += "\n";
    for (const std::string& attachment : msg.attachments) {
      context += "[attachment: " + attachment + "]\n";
    }
  }
  return context;
}

std::uint64_t ChatBot::attach_draft(std::uint64_t post_id,
                                    std::string_view subject,
                                    std::string_view context,
                                    std::string_view extra_guidance) {
  std::string question(context);
  if (!extra_guidance.empty()) {
    question += "\nDeveloper guidance for the reply: ";
    question += extra_guidance;
  }
  const rag::WorkflowOutcome outcome = service_->answer(question);

  const std::uint64_t draft_id = server_->add_to_post(
      forum_channel_, post_id, "petsc-chatbot",
      outcome.response.text + "\n\n[buttons: send | discard | revise]");
  Message* msg = server_->find_message(forum_channel_, draft_id);
  msg->tags["status"] = "draft";
  obs::global_metrics().counter(obs::kBotsRepliesTotal).inc();

  DraftInfo info;
  info.post_id = post_id;
  info.subject = std::string(subject);
  info.question_context = std::string(context);
  drafts_[draft_id] = std::move(info);
  return draft_id;
}

std::optional<std::uint64_t> ChatBot::handle_reply_command(
    std::uint64_t post_id, std::string_view developer) {
  if (!server_->is_developer(developer)) return std::nullopt;
  const ForumPost* post = server_->post(forum_channel_, post_id);
  if (post == nullptr) return std::nullopt;
  return attach_draft(post_id, post->title, build_context(*post), "");
}

ButtonResult ChatBot::press_send(std::uint64_t draft_id,
                                 std::string_view developer) {
  obs::global_metrics()
      .counter(obs::kBotsButtonPressesTotal, {{"button", "send"}})
      .inc();
  auto it = drafts_.find(draft_id);
  if (it == drafts_.end()) return ButtonResult::UnknownDraft;
  if (!server_->is_developer(developer)) return ButtonResult::NotADeveloper;
  if (it->second.resolved) return ButtonResult::AlreadyResolved;

  Message* msg = server_->find_message(forum_channel_, draft_id);
  if (msg == nullptr) return ButtonResult::UnknownDraft;

  // Send to the list with the developer's signature (the paper: "with a
  // signature of the name of the developer who clicked the button").
  std::string body = msg->content;
  const std::size_t buttons = body.find("\n\n[buttons:");
  if (buttons != std::string::npos) body.resize(buttons);
  body += "\n\n-- sent on behalf of the PETSc team by ";
  body += developer;
  list_->post(bot_email_address_, "Re: " + it->second.subject, body);
  ++emails_sent_;

  msg->tags["status"] = "sent";
  msg->tags["signed-by"] = std::string(developer);
  msg->tags["sent-at"] = server_->clock().timestamp();
  it->second.resolved = true;

  // Developer approval is the vetting step: a sent answer is trusted
  // knowledge, so feed the resolved thread back into the live KB (§II).
  if (ingestor_ != nullptr) {
    ingestor_->ingest_qa(
        "resolved/thread-" + std::to_string(it->second.post_id) + ".md",
        it->second.subject, it->second.question_context, body);
    ++threads_ingested_;
  }
  return ButtonResult::Ok;
}

ButtonResult ChatBot::press_discard(std::uint64_t draft_id,
                                    std::string_view developer) {
  obs::global_metrics()
      .counter(obs::kBotsButtonPressesTotal, {{"button", "discard"}})
      .inc();
  auto it = drafts_.find(draft_id);
  if (it == drafts_.end()) return ButtonResult::UnknownDraft;
  if (!server_->is_developer(developer)) return ButtonResult::NotADeveloper;
  if (it->second.resolved) return ButtonResult::AlreadyResolved;
  server_->delete_message(forum_channel_, draft_id);
  it->second.resolved = true;
  return ButtonResult::Ok;
}

ButtonResult ChatBot::press_revise(std::uint64_t draft_id,
                                   std::string_view developer,
                                   std::string_view guidance,
                                   std::uint64_t* new_draft_id) {
  obs::global_metrics()
      .counter(obs::kBotsButtonPressesTotal, {{"button", "revise"}})
      .inc();
  auto it = drafts_.find(draft_id);
  if (it == drafts_.end()) return ButtonResult::UnknownDraft;
  if (!server_->is_developer(developer)) return ButtonResult::NotADeveloper;
  if (it->second.resolved) return ButtonResult::AlreadyResolved;

  const DraftInfo info = it->second;
  server_->delete_message(forum_channel_, draft_id);
  it->second.resolved = true;

  const std::uint64_t fresh = attach_draft(info.post_id, info.subject,
                                           info.question_context, guidance);
  if (new_draft_id != nullptr) *new_draft_id = fresh;
  return ButtonResult::Ok;
}

std::string ChatBot::direct_message(std::string_view user,
                                    std::string_view text) {
  (void)user;  // private conversation; no recording, no vetting
  return service_->answer(text).response.text;
}

}  // namespace pkb::bots
