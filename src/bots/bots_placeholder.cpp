namespace pkb::bots {
// placeholder translation unit; real sources replace this module.
}
