#include "bots/email_bot.h"

#include <stdexcept>

namespace pkb::bots {

GmailPoller::GmailPoller(Mailbox* mailbox, DiscordServer* server,
                         std::string notification_webhook_url,
                         std::string chatbot_address)
    : mailbox_(mailbox),
      server_(server),
      webhook_url_(std::move(notification_webhook_url)),
      chatbot_address_(std::move(chatbot_address)) {
  if (mailbox_ == nullptr || server_ == nullptr) {
    throw std::invalid_argument("GmailPoller: null dependency");
  }
}

bool GmailPoller::poll() {
  ++polls_;
  // Ignore (and mark read) the chat bot's own emails so its replies to the
  // list are not mirrored back into Discord.
  bool any_foreign_unread = false;
  for (const Email* email : mailbox_->unread()) {
    if (email->from == chatbot_address_) {
      mailbox_->mark_read(email->id);
    } else {
      any_foreign_unread = true;
    }
  }
  if (!any_foreign_unread) return false;
  const auto id = server_->post_via_webhook(
      webhook_url_, "New petsc-users email available");
  if (!id.has_value()) return false;
  ++sent_;
  return true;
}

EmailBot::EmailBot(Mailbox* mailbox, DiscordServer* server,
                   std::string notification_channel, std::string forum_channel)
    : mailbox_(mailbox),
      server_(server),
      notification_channel_(std::move(notification_channel)),
      forum_channel_(std::move(forum_channel)) {
  if (mailbox_ == nullptr || server_ == nullptr) {
    throw std::invalid_argument("EmailBot: null dependency");
  }
}

std::size_t EmailBot::process_notifications() {
  const Channel* notifications = server_->channel(notification_channel_);
  if (notifications == nullptr) return 0;
  if (notifications->messages.size() <= seen_notifications_) return 0;
  seen_notifications_ = notifications->messages.size();

  std::size_t mirrored = 0;
  for (const Email* email : mailbox_->unread()) {
    const std::string key = thread_key(email->subject);
    std::string body = strip_quoted_lines(email->body);
    body = revert_url_defense(body);
    const std::string content = "From: " + email->from + "\n" + body;

    const ForumPost* post = server_->find_post(forum_channel_, key);
    std::uint64_t post_id = 0;
    if (post == nullptr) {
      post_id = server_->create_post(forum_channel_, key);
    } else {
      post_id = post->id;
    }
    server_->add_to_post(forum_channel_, post_id, "email-bot", content,
                         email->attachments);
    mailbox_->mark_read(email->id);
    ++mirrored;
  }
  return mirrored;
}

}  // namespace pkb::bots
