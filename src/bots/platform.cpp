#include "bots/platform.h"

#include <stdexcept>

#include "obs/metric_names.h"
#include "obs/metrics.h"

namespace pkb::bots {

DiscordServer::DiscordServer(pkb::util::SimClock* clock) : clock_(clock) {
  if (clock_ == nullptr) {
    throw std::invalid_argument("DiscordServer: clock must not be null");
  }
}

bool DiscordServer::create_channel(std::string_view name, ChannelKind kind,
                                   bool is_private) {
  if (channel(name) != nullptr) return false;
  Channel ch;
  ch.name = std::string(name);
  ch.kind = kind;
  ch.is_private = is_private;
  channels_.push_back(std::move(ch));
  return true;
}

const Channel* DiscordServer::channel(std::string_view name) const {
  for (const Channel& ch : channels_) {
    if (ch.name == name) return &ch;
  }
  return nullptr;
}

Channel* DiscordServer::channel_mut(std::string_view name) {
  for (Channel& ch : channels_) {
    if (ch.name == name) return &ch;
  }
  return nullptr;
}

void DiscordServer::join(std::string_view user, bool is_developer) {
  members_[std::string(user)] = is_developer;
}

bool DiscordServer::is_member(std::string_view user) const {
  return members_.contains(std::string(user));
}

bool DiscordServer::is_developer(std::string_view user) const {
  auto it = members_.find(std::string(user));
  return it != members_.end() && it->second;
}

std::uint64_t DiscordServer::post_message(std::string_view channel_name,
                                          std::string_view author,
                                          std::string_view content,
                                          std::vector<std::string> attachments) {
  Channel* ch = channel_mut(channel_name);
  if (ch == nullptr) {
    throw std::invalid_argument("unknown channel: " + std::string(channel_name));
  }
  if (ch->kind != ChannelKind::Text) {
    throw std::invalid_argument("not a text channel: " + std::string(channel_name));
  }
  const bool privileged =
      is_developer(author) || author.find("bot") != std::string_view::npos ||
      author == "webhook";
  if (ch->is_private && !privileged) {
    throw std::invalid_argument("private channel: " + std::string(channel_name));
  }
  Message msg;
  msg.id = next_id_++;
  msg.author = std::string(author);
  msg.content = std::string(content);
  msg.timestamp = clock_->now();
  msg.attachments = std::move(attachments);
  ch->messages.push_back(std::move(msg));
  obs::global_metrics()
      .counter(obs::kBotsMessagesTotal, {{"kind", "text"}})
      .inc();
  return ch->messages.back().id;
}

std::uint64_t DiscordServer::create_post(std::string_view channel_name,
                                         std::string_view title) {
  Channel* ch = channel_mut(channel_name);
  if (ch == nullptr || ch->kind != ChannelKind::Forum) {
    throw std::invalid_argument("not a forum channel: " +
                                std::string(channel_name));
  }
  ForumPost post;
  post.id = next_id_++;
  post.title = std::string(title);
  ch->posts.push_back(std::move(post));
  return ch->posts.back().id;
}

std::uint64_t DiscordServer::add_to_post(std::string_view channel_name,
                                         std::uint64_t post_id,
                                         std::string_view author,
                                         std::string_view content,
                                         std::vector<std::string> attachments) {
  Channel* ch = channel_mut(channel_name);
  if (ch == nullptr || ch->kind != ChannelKind::Forum) {
    throw std::invalid_argument("not a forum channel: " +
                                std::string(channel_name));
  }
  for (ForumPost& post : ch->posts) {
    if (post.id == post_id) {
      Message msg;
      msg.id = next_id_++;
      msg.author = std::string(author);
      msg.content = std::string(content);
      msg.timestamp = clock_->now();
      msg.attachments = std::move(attachments);
      post.messages.push_back(std::move(msg));
      obs::global_metrics()
          .counter(obs::kBotsMessagesTotal, {{"kind", "forum"}})
          .inc();
      return post.messages.back().id;
    }
  }
  throw std::invalid_argument("unknown post id");
}

const ForumPost* DiscordServer::find_post(std::string_view channel_name,
                                          std::string_view title) const {
  const Channel* ch = channel(channel_name);
  if (ch == nullptr) return nullptr;
  for (const ForumPost& post : ch->posts) {
    if (post.title == title) return &post;
  }
  return nullptr;
}

const ForumPost* DiscordServer::post(std::string_view channel_name,
                                     std::uint64_t post_id) const {
  const Channel* ch = channel(channel_name);
  if (ch == nullptr) return nullptr;
  for (const ForumPost& post : ch->posts) {
    if (post.id == post_id) return &post;
  }
  return nullptr;
}

Message* DiscordServer::find_message(std::string_view channel_name,
                                     std::uint64_t message_id) {
  Channel* ch = channel_mut(channel_name);
  if (ch == nullptr) return nullptr;
  for (Message& msg : ch->messages) {
    if (msg.id == message_id) return &msg;
  }
  for (ForumPost& post : ch->posts) {
    for (Message& msg : post.messages) {
      if (msg.id == message_id) return &msg;
    }
  }
  return nullptr;
}

bool DiscordServer::delete_message(std::string_view channel_name,
                                   std::uint64_t message_id) {
  Channel* ch = channel_mut(channel_name);
  if (ch == nullptr) return false;
  auto erase_from = [message_id](std::vector<Message>& messages) {
    for (auto it = messages.begin(); it != messages.end(); ++it) {
      if (it->id == message_id) {
        messages.erase(it);
        return true;
      }
    }
    return false;
  };
  if (erase_from(ch->messages)) return true;
  for (ForumPost& post : ch->posts) {
    if (erase_from(post.messages)) return true;
  }
  return false;
}

std::string DiscordServer::create_webhook(std::string_view channel_name) {
  if (channel(channel_name) == nullptr) {
    throw std::invalid_argument("unknown channel: " + std::string(channel_name));
  }
  Webhook hook;
  hook.url = "webhook://petsc/" + std::to_string(next_id_++);
  hook.channel = std::string(channel_name);
  webhooks_.push_back(hook);
  return webhooks_.back().url;
}

std::optional<std::uint64_t> DiscordServer::post_via_webhook(
    std::string_view url, std::string_view content) {
  for (const Webhook& hook : webhooks_) {
    if (hook.url == url) {
      return post_message(hook.channel, "webhook", content);
    }
  }
  return std::nullopt;
}

}  // namespace pkb::bots
