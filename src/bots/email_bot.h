#pragma once
// The Gmail poller and the email bot (arcs 1-3 of Fig 5):
//
//   petsc-users email -> petscbot@gmail.com (unread) -> Apps-Script poller
//   -> webhook -> #petsc-users-notification -> email bot fetches unread mail
//   -> posts each thread as a forum post in #petsc-users-emails.

#include <string>

#include "bots/mail.h"
#include "bots/platform.h"

namespace pkb::bots {

/// The Apps-Script stand-in: checks the bot mailbox for unread mail and, if
/// any, pings the notification webhook. Emails FROM the chat bot itself are
/// marked read and ignored (so bot replies are not re-posted).
class GmailPoller {
 public:
  GmailPoller(Mailbox* mailbox, DiscordServer* server,
              std::string notification_webhook_url,
              std::string chatbot_address);

  /// One poll cycle; returns true when a notification was sent.
  bool poll();

  [[nodiscard]] std::size_t polls() const { return polls_; }
  [[nodiscard]] std::size_t notifications_sent() const { return sent_; }

 private:
  Mailbox* mailbox_;
  DiscordServer* server_;
  std::string webhook_url_;
  std::string chatbot_address_;
  std::size_t polls_ = 0;
  std::size_t sent_ = 0;
};

/// The email bot: watches the notification channel and mirrors unread mail
/// into the forum channel, one post per thread, cleaning the bodies.
class EmailBot {
 public:
  EmailBot(Mailbox* mailbox, DiscordServer* server,
           std::string notification_channel, std::string forum_channel);

  /// Process any new notification: fetch unread emails, mark them read, and
  /// post them into the forum. Returns the number of emails mirrored.
  std::size_t process_notifications();

  [[nodiscard]] const std::string& forum_channel() const {
    return forum_channel_;
  }

 private:
  Mailbox* mailbox_;
  DiscordServer* server_;
  std::string notification_channel_;
  std::string forum_channel_;
  std::size_t seen_notifications_ = 0;
};

}  // namespace pkb::bots
