#include "replay/replay.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "llm/model_config.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rag/stage_graph.h"
#include "util/clock.h"

namespace pkb::replay {

namespace {

using rag::StageKind;

/// The earliest stage each override invalidates: replay must re-run from
/// there even when the caller asked for a later cut.
StageKind effective_from(const ReplayOverrides& ov) {
  StageKind from = ov.from;
  const auto pull = [&from](StageKind k) {
    if (static_cast<int>(k) < static_cast<int>(from)) from = k;
  };
  if (ov.first_pass_k.has_value()) pull(StageKind::Retrieve);
  if (ov.final_l.has_value() || ov.reranker.has_value()) {
    pull(StageKind::Rerank);
  }
  if (ov.max_attended.has_value()) pull(StageKind::Prompt);
  if (ov.model.has_value()) pull(StageKind::Generate);
  return from;
}

std::vector<std::string> context_ids(
    const std::vector<llm::ContextDoc>& docs) {
  std::vector<std::string> ids;
  ids.reserve(docs.size());
  for (const llm::ContextDoc& doc : docs) ids.push_back(doc.id);
  return ids;
}

}  // namespace

std::string ReplayDiff::summary() const {
  std::ostringstream out;
  if (!any()) {
    out << "no differences: the replay reproduced the recorded run";
    if (!unresolved_contexts.empty()) {
      out << " (" << unresolved_contexts.size()
          << " recorded context(s) no longer in the live generation)";
    }
    return out.str();
  }
  if (generation_changed) out << "generation: changed since the recording\n";
  for (const std::string& id : contexts_added) {
    out << "context +" << id << "\n";
  }
  for (const std::string& id : contexts_removed) {
    out << "context -" << id << "\n";
  }
  if (context_order_changed) out << "context order: changed\n";
  for (const std::string& id : unresolved_contexts) {
    out << "context ?" << id << " (not in live generation)\n";
  }
  if (prompt_changed) out << "prompt: changed\n";
  if (mode_changed) {
    out << "mode: \"" << recorded_mode << "\" -> \"" << replayed_mode
        << "\"\n";
  }
  if (answer_changed) {
    out << "answer: changed\n--- recorded ---\n"
        << recorded_answer << "\n--- replayed ---\n"
        << replayed_answer << "\n";
  } else {
    out << "answer: identical\n";
  }
  return out.str();
}

ReplayEngine::ReplayEngine(const rag::KnowledgeBase& kb) : kb_(kb) {}

void ReplayEngine::set_fault_plan(const resilience::FaultPlan* plan,
                                  std::uint32_t search_hedges) {
  std::lock_guard<std::mutex> lock(mu_);
  fault_plan_ = plan;
  search_hedges_ = search_hedges;
  for (auto& [key, wf] : workflows_) {
    wf->set_fault_plan(plan, search_hedges);
  }
}

const rag::AugmentedWorkflow& ReplayEngine::workflow_for(
    const rag::StageTrace& recorded, const ReplayOverrides& ov) const {
  const std::string model = ov.model.value_or(recorded.model);
  const std::string reranker = ov.reranker.value_or(recorded.reranker);
  const std::size_t k = ov.first_pass_k.value_or(
      static_cast<std::size_t>(recorded.first_pass_k));
  const std::size_t l =
      ov.final_l.value_or(static_cast<std::size_t>(recorded.final_l));
  std::string key = recorded.arm;
  key += '|';
  key += model;
  key += '|';
  key += reranker;
  key += '|';
  key += std::to_string(k);
  key += '|';
  key += std::to_string(l);

  std::lock_guard<std::mutex> lock(mu_);
  auto it = workflows_.find(key);
  if (it != workflows_.end()) return *it->second;

  const std::optional<rag::PipelineArm> arm = rag::arm_from_string(
      recorded.arm);
  if (!arm.has_value()) {
    throw std::runtime_error("trace has unknown pipeline arm: " +
                             recorded.arm);
  }
  rag::RetrieverOptions opts;
  opts.first_pass_k = k;
  opts.final_l = l;
  opts.reranker = reranker;
  auto wf = std::make_unique<rag::AugmentedWorkflow>(
      kb_, *arm, llm::model_config(model), std::move(opts));
  if (fault_plan_ != nullptr) wf->set_fault_plan(fault_plan_, search_hedges_);
  return *workflows_.emplace(std::move(key), std::move(wf)).first->second;
}

ReplayResult ReplayEngine::replay(const rag::StageTrace& recorded,
                                  const ReplayOverrides& overrides) const {
  obs::MetricsRegistry& metrics = obs::global_metrics();
  metrics.counter(obs::kReplayReplaysTotal).inc();
  pkb::util::Stopwatch watch;

  const rag::AugmentedWorkflow& wf = workflow_for(recorded, overrides);
  const StageKind from = effective_from(overrides);

  ReplayResult result;
  result.from = from;

  rag::StageState st;
  st.wf = &wf;
  st.question = recorded.question;
  st.open_retrieve_span = false;  // each stage gets its own replay_stage span
  st.max_attended_override = overrides.max_attended.has_value()
                                 ? *overrides.max_attended
                                 : static_cast<std::size_t>(
                                       recorded.prompt.max_attended);

  // --- seed the artifacts of every stage upstream of the cut --------------
  const bool has_retriever = wf.retriever() != nullptr;
  if (has_retriever && from > StageKind::Embed && from <= StageKind::Prompt) {
    // Retrieval artifacts are resolved against the *live* generation: a
    // recorded chunk id that no longer exists is reported, not fabricated.
    st.snapshot = kb_.snapshot();
    st.outcome.retrieval.snapshot = st.snapshot;
    std::unordered_map<std::string_view, const text::Document*> by_id;
    by_id.reserve(st.snapshot->chunks.size());
    for (const text::Document& chunk : st.snapshot->chunks) {
      by_id.emplace(chunk.id, &chunk);
    }
    const auto resolve = [&](const std::vector<rag::ContextRef>& refs,
                             std::vector<rag::RetrievedContext>& out) {
      for (const rag::ContextRef& ref : refs) {
        const auto it = by_id.find(ref.id);
        if (it == by_id.end()) {
          result.diff.unresolved_contexts.push_back(ref.id);
          continue;
        }
        out.push_back(rag::RetrievedContext{
            it->second, ref.score, ref.via,
            static_cast<std::size_t>(ref.first_pass_rank)});
      }
    };
    st.outcome.retrieval.query_embedding =
        std::make_shared<embed::Vector>(recorded.embed.query_vec);
    st.outcome.retrieval.embed_seconds = recorded.embed_seconds;
    if (from > StageKind::Retrieve) {
      resolve(recorded.retrieve.candidates, st.outcome.retrieval.first_pass);
      st.outcome.retrieval.search_seconds = recorded.search_seconds;
      st.outcome.retrieval.shards_failed = recorded.retrieve.shards_failed;
      st.outcome.retrieval.shards_total = recorded.retrieve.shards_total;
    }
    if (from > StageKind::Rerank) {
      resolve(recorded.rerank.contexts, st.outcome.retrieval.contexts);
      st.outcome.retrieval.rerank_degraded = recorded.rerank.rerank_degraded;
      st.outcome.retrieval.rerank_seconds = recorded.rerank_seconds;
    }
  }
  if (from > StageKind::Prompt) {
    // The fully assembled request is recorded verbatim — no snapshot needed
    // at all, which is what makes replay-from-Generate zero-retrieval.
    st.request.system = recorded.prompt.system;
    st.request.question = recorded.question;
    st.request.contexts = recorded.prompt.contexts;
    st.request.max_attended_contexts =
        static_cast<std::size_t>(recorded.prompt.max_attended);
    st.outcome.prompt = recorded.prompt.prompt;
    st.outcome.generation = recorded.generation;
  }
  if (from > StageKind::Generate) {
    st.outcome.response = recorded.generate.response;
  }

  // --- run [from, Postprocess] through the production stage graph ---------
  const rag::StageGraph& graph = rag::global_stage_graph();
  for (int i = 0; i < static_cast<int>(from); ++i) {
    metrics
        .counter(obs::kReplayStagesSkippedTotal,
                 {{"stage",
                   std::string(to_string(static_cast<StageKind>(i)))}})
        .inc();
  }
  for (int i = static_cast<int>(from);
       i <= static_cast<int>(StageKind::Postprocess); ++i) {
    const auto kind = static_cast<StageKind>(i);
    const std::string name(to_string(kind));
    obs::Span span(obs::global_tracer(), obs::kSpanReplayStage);
    span.set_attr("stage", name);
    span.set_attr("trace_id", recorded.id);
    graph.stage(kind).run(st);
    metrics.counter(obs::kReplayStagesRunTotal, {{"stage", name}}).inc();
  }

  rag::capture_stage_trace(st, result.trace);
  result.trace.id = recorded.id;

  // --- diff what the replay recomputed against the recording --------------
  ReplayDiff& diff = result.diff;
  diff.recorded_answer = recorded.generate.response.text;
  diff.replayed_answer = st.outcome.response.text;
  diff.answer_changed = diff.recorded_answer != diff.replayed_answer;
  diff.recorded_mode = recorded.generate.response.mode;
  diff.replayed_mode = st.outcome.response.mode;
  diff.mode_changed = diff.recorded_mode != diff.replayed_mode;
  if (from <= StageKind::Prompt) {
    diff.prompt_changed = recorded.prompt.prompt != st.outcome.prompt;
    diff.generation_changed = recorded.generation != st.outcome.generation;
    const std::vector<std::string> rec = context_ids(recorded.prompt.contexts);
    const std::vector<std::string> rep = context_ids(st.request.contexts);
    const std::unordered_set<std::string> rec_set(rec.begin(), rec.end());
    const std::unordered_set<std::string> rep_set(rep.begin(), rep.end());
    for (const std::string& id : rep) {
      if (rec_set.count(id) == 0) diff.contexts_added.push_back(id);
    }
    for (const std::string& id : rec) {
      if (rep_set.count(id) == 0) diff.contexts_removed.push_back(id);
    }
    diff.context_order_changed = diff.contexts_added.empty() &&
                                 diff.contexts_removed.empty() && rec != rep;
  }
  if (diff.any()) metrics.counter(obs::kReplayDiffsTotal).inc();

  result.outcome = std::move(st.outcome);
  metrics.histogram(obs::kReplayReplaySeconds).observe(watch.seconds());
  return result;
}

}  // namespace pkb::replay
