#pragma once
// The time-travel half of the record/replay subsystem: re-execute a
// recorded request (replay/trace.h) from any stage cut point, optionally
// with overridden pipeline parameters, without redoing the work upstream of
// the cut.
//
// The engine seeds a rag::StageState with the recorded artifacts of every
// stage before `from`, then runs [from, Postprocess] through the same
// global stage graph the live pipeline uses — so a replayed stage is the
// production code path, not a reimplementation. Replaying from
// GenerateStage performs zero embed/retrieve/rerank work and, because the
// simulated LLM is a pure function of (config, request), reproduces the
// recorded answer bit for bit; overriding a parameter (say first_pass_k)
// moves the effective cut upstream to the earliest stage the override
// invalidates and the diff report shows what changed downstream.

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "rag/stages.h"
#include "rag/workflow.h"

namespace pkb::replay {

/// What to change relative to the recorded run. Each override pulls the
/// effective start stage upstream at least to the stage it invalidates:
/// first_pass_k -> Retrieve; final_l / reranker -> Rerank; max_attended ->
/// Prompt; model -> Generate.
struct ReplayOverrides {
  /// Requested cut point: stages before it are seeded from the recording.
  rag::StageKind from = rag::StageKind::Generate;
  std::optional<std::size_t> first_pass_k;
  std::optional<std::size_t> final_l;
  std::optional<std::string> reranker;   ///< "" disables reranking
  std::optional<std::size_t> max_attended;
  std::optional<std::string> model;      ///< llm::model_config registry name
};

/// What changed between the recorded run and the replay. Sections upstream
/// of the effective cut are seeded from the recording and never diff; the
/// flags only compare what the replay actually recomputed.
struct ReplayDiff {
  std::vector<std::string> contexts_added;    ///< ids new in the replay
  std::vector<std::string> contexts_removed;  ///< recorded ids now absent
  bool context_order_changed = false;  ///< same set, different order
  bool prompt_changed = false;
  bool answer_changed = false;
  bool mode_changed = false;
  bool generation_changed = false;  ///< KB moved on since the recording
  /// Recorded context ids that no longer resolve against the live snapshot
  /// (the chunk was dropped by a later generation) — these explain context
  /// diffs, so tooling treats them as expected drift.
  std::vector<std::string> unresolved_contexts;
  std::string recorded_answer;
  std::string replayed_answer;
  std::string recorded_mode;
  std::string replayed_mode;

  [[nodiscard]] bool any() const {
    return !contexts_added.empty() || !contexts_removed.empty() ||
           context_order_changed || prompt_changed || answer_changed ||
           mode_changed || generation_changed;
  }
  /// Multi-line human-readable report (the pkb_cli `:rdiff` output).
  [[nodiscard]] std::string summary() const;
};

/// One replay's outcome.
struct ReplayResult {
  rag::WorkflowOutcome outcome;
  /// Full stage trace of the replayed run (same shape as the recording, so
  /// a replay can itself be saved and re-replayed).
  rag::StageTrace trace;
  /// The effective cut point (<= overrides.from when an override moved it).
  rag::StageKind from = rag::StageKind::Generate;
  ReplayDiff diff;
};

/// Re-executes recorded traces against a knowledge base. Thread-safe; the
/// workflows it builds (one per distinct trace-header + override
/// configuration) are cached and have no history store attached — replays
/// never append to the shared history.
class ReplayEngine {
 public:
  explicit ReplayEngine(const rag::KnowledgeBase& kb);

  /// Chaos plan handed to every workflow the engine builds (tests use plan
  /// call counts to prove skipped stages really never ran). Setup-time only.
  void set_fault_plan(const resilience::FaultPlan* plan,
                      std::uint32_t search_hedges = 1);

  /// Replay `recorded` from `overrides.from` (pulled upstream as overrides
  /// require). Emits pkb_replay_replays_total / stages_run / stages_skipped
  /// / diffs_total and a replay_stage span per executed stage. Throws
  /// std::runtime_error for an unknown arm/stage name in the trace header;
  /// propagates resilience::FaultError from injected faults.
  [[nodiscard]] ReplayResult replay(const rag::StageTrace& recorded,
                                    const ReplayOverrides& overrides = {}) const;

 private:
  [[nodiscard]] const rag::AugmentedWorkflow& workflow_for(
      const rag::StageTrace& recorded, const ReplayOverrides& ov) const;

  const rag::KnowledgeBase& kb_;
  const resilience::FaultPlan* fault_plan_ = nullptr;
  std::uint32_t search_hedges_ = 1;
  mutable std::mutex mu_;
  mutable std::map<std::string, std::unique_ptr<rag::AugmentedWorkflow>>
      workflows_;
};

}  // namespace pkb::replay
