#pragma once
// Trace persistence for the time-travel debugger: StageTraces (rag/stages.h)
// written to and read from disk in a versioned binary format ('PKBT' v1,
// util/binio.h conventions — every read length-checked, truncation throws).
//
// TraceRecorder is the serving-path half: wired into serve::Server behind a
// sampling knob, it persists every sampled request's per-stage artifacts
// keyed by a monotonically assigned request id. The files are what
// ReplayEngine (replay/replay.h), the pkb_cli `:replay` command and
// bench/replay_regress re-execute.

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "rag/stages.h"

namespace pkb::replay {

/// Recorder configuration.
struct RecorderOptions {
  /// Directory receiving trace files (created on first record).
  std::string dir = "pkb_traces";
  /// Record every Nth pipeline request (1 = all). The serve layer calls
  /// sample() per request and records only when it returns true; skipped
  /// requests cost one atomic increment (see PERFORMANCE.md).
  std::uint64_t sample_every = 1;
};

/// Thread-safe trace sink. sample() and record() may be called from many
/// serve workers concurrently; ids are unique and files are written whole
/// (tmp + rename is unnecessary — each id is written exactly once).
class TraceRecorder {
 public:
  explicit TraceRecorder(RecorderOptions opts = {});

  /// Sampling decision for the next pipeline request. False counts into
  /// pkb_replay_sampled_out_total.
  [[nodiscard]] bool sample();

  /// Assign the next id, persist the trace under dir(), return the id.
  /// Emits the trace_record span and the pkb_replay_records_total /
  /// record_bytes / record_seconds series. Throws std::runtime_error on
  /// I/O failure.
  std::uint64_t record(rag::StageTrace trace);

  [[nodiscard]] const RecorderOptions& options() const { return opts_; }

  /// Number of traces this recorder has persisted.
  [[nodiscard]] std::uint64_t recorded() const {
    return records_.load(std::memory_order_relaxed);
  }

  // --- file-level API (static: the replay side needs no recorder) ---------
  /// `dir`/trace_NNNNNN.pkbt for id NNNNNN.
  [[nodiscard]] static std::string trace_path(const std::string& dir,
                                              std::uint64_t id);
  static void save(const rag::StageTrace& trace, const std::string& path);
  [[nodiscard]] static rag::StageTrace load(const std::string& path);
  /// Ids of every trace file in `dir`, ascending. Missing dir = empty.
  [[nodiscard]] static std::vector<std::uint64_t> list(const std::string& dir);

 private:
  RecorderOptions opts_;
  std::atomic<std::uint64_t> ordinal_{0};  ///< sampling counter
  std::atomic<std::uint64_t> next_id_{1};
  std::atomic<std::uint64_t> records_{0};
  std::mutex dir_mu_;  ///< serializes first-use directory creation
  bool dir_ready_ = false;
};

}  // namespace pkb::replay
