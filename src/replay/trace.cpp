#include "replay/trace.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/binio.h"
#include "util/clock.h"

namespace pkb::replay {

namespace {

namespace fs = std::filesystem;
namespace bin = pkb::util;

constexpr std::uint32_t kTraceMagic = 0x54424B50;  // "PKBT" little-endian
constexpr std::uint32_t kTraceVersion = 1;

void write_context_refs(std::ostream& out,
                        const std::vector<rag::ContextRef>& refs) {
  bin::write_u64(out, refs.size());
  for (const rag::ContextRef& ref : refs) {
    bin::write_str(out, ref.id);
    bin::write_f64(out, ref.score);
    bin::write_str(out, ref.via);
    bin::write_u64(out, ref.first_pass_rank);
  }
}

std::vector<rag::ContextRef> read_context_refs(std::istream& in,
                                               const char* what) {
  const std::uint64_t n = bin::read_count(in, what);
  std::vector<rag::ContextRef> refs(n);
  for (rag::ContextRef& ref : refs) {
    ref.id = bin::read_str(in, what);
    ref.score = bin::read_f64(in, what);
    ref.via = bin::read_str(in, what);
    ref.first_pass_rank = bin::read_u64(in, what);
  }
  return refs;
}

void write_string_list(std::ostream& out,
                       const std::vector<std::string>& list) {
  bin::write_u64(out, list.size());
  for (const std::string& s : list) bin::write_str(out, s);
}

std::vector<std::string> read_string_list(std::istream& in, const char* what) {
  const std::uint64_t n = bin::read_count(in, what);
  std::vector<std::string> list(n);
  for (std::string& s : list) s = bin::read_str(in, what);
  return list;
}

}  // namespace

TraceRecorder::TraceRecorder(RecorderOptions opts) : opts_(std::move(opts)) {
  // Resume id assignment past any traces already on disk, so a restarted
  // server never overwrites an earlier session's recordings.
  const std::vector<std::uint64_t> existing = list(opts_.dir);
  if (!existing.empty()) {
    next_id_.store(existing.back() + 1, std::memory_order_relaxed);
  }
}

bool TraceRecorder::sample() {
  if (opts_.sample_every == 0) return false;
  const std::uint64_t n = ordinal_.fetch_add(1, std::memory_order_relaxed);
  if (n % opts_.sample_every == 0) return true;
  obs::global_metrics().counter(obs::kReplaySampledOutTotal).inc();
  return false;
}

std::uint64_t TraceRecorder::record(rag::StageTrace trace) {
  pkb::util::Stopwatch watch;
  obs::Span span(obs::global_tracer(), obs::kSpanTraceRecord);
  {
    std::lock_guard<std::mutex> lock(dir_mu_);
    if (!dir_ready_) {
      fs::create_directories(opts_.dir);
      dir_ready_ = true;
    }
  }
  trace.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  const std::string path = trace_path(opts_.dir, trace.id);
  save(trace, path);
  records_.fetch_add(1, std::memory_order_relaxed);

  std::error_code ec;
  const std::uint64_t bytes = fs::file_size(path, ec);
  obs::MetricsRegistry& metrics = obs::global_metrics();
  metrics.counter(obs::kReplayRecordsTotal).inc();
  if (!ec) metrics.counter(obs::kReplayRecordBytesTotal).inc(bytes);
  metrics.histogram(obs::kReplayRecordSeconds).observe(watch.seconds());
  span.set_attr("id", trace.id);
  span.set_attr("bytes", bytes);
  return trace.id;
}

std::string TraceRecorder::trace_path(const std::string& dir,
                                      std::uint64_t id) {
  char name[32];
  std::snprintf(name, sizeof name, "trace_%06llu.pkbt",
                static_cast<unsigned long long>(id));
  return (fs::path(dir) / name).string();
}

void TraceRecorder::save(const rag::StageTrace& trace,
                         const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("cannot open trace file: " + path);

  bin::write_u32(out, kTraceMagic);
  bin::write_u32(out, kTraceVersion);
  bin::write_u64(out, trace.id);

  bin::write_str(out, trace.question);
  bin::write_str(out, trace.arm);
  bin::write_str(out, trace.model);
  bin::write_str(out, trace.reranker);
  bin::write_u64(out, trace.first_pass_k);
  bin::write_u64(out, trace.final_l);

  bin::write_u64(out, trace.generation);
  bin::write_str(out, trace.degradation);
  bin::write_u64(out, trace.history_id);
  bin::write_f64(out, trace.embed_seconds);
  bin::write_f64(out, trace.search_seconds);
  bin::write_f64(out, trace.rerank_seconds);

  bin::write_str(out, trace.embed.embedder);
  bin::write_f32_array(out, trace.embed.query_vec);

  write_context_refs(out, trace.retrieve.candidates);
  bin::write_u64(out, trace.retrieve.shards_failed);
  bin::write_u64(out, trace.retrieve.shards_total);

  bin::write_u8(out, trace.rerank.rerank_degraded ? 1 : 0);
  write_context_refs(out, trace.rerank.contexts);

  bin::write_str(out, trace.prompt.system);
  bin::write_u64(out, trace.prompt.contexts.size());
  for (const llm::ContextDoc& doc : trace.prompt.contexts) {
    bin::write_str(out, doc.id);
    bin::write_str(out, doc.title);
    bin::write_str(out, doc.text);
    bin::write_f64(out, doc.score);
  }
  bin::write_u64(out, trace.prompt.max_attended);
  bin::write_str(out, trace.prompt.prompt);

  const llm::LlmResponse& resp = trace.generate.response;
  bin::write_str(out, resp.text);
  bin::write_f64(out, resp.latency_seconds);
  bin::write_u64(out, resp.prompt_tokens);
  bin::write_u64(out, resp.completion_tokens);
  bin::write_str(out, resp.mode);
  write_string_list(out, resp.used_context_ids);

  bin::write_str(out, trace.post.plain_text);
  bin::write_u8(out, trace.post.all_code_ok ? 1 : 0);
  bin::write_u64(out, trace.post.code_blocks);
  write_string_list(out, trace.post.sources);

  out.flush();
  if (!out) throw std::runtime_error("short write on trace file: " + path);
}

rag::StageTrace TraceRecorder::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open trace file: " + path);

  if (bin::read_u32(in, "trace magic") != kTraceMagic) {
    throw std::runtime_error("not a PKBT trace file: " + path);
  }
  const std::uint32_t version = bin::read_u32(in, "trace version");
  if (version != kTraceVersion) {
    throw std::runtime_error("unsupported trace version " +
                             std::to_string(version) + ": " + path);
  }

  rag::StageTrace trace;
  trace.id = bin::read_u64(in, "trace id");

  trace.question = bin::read_str(in, "question");
  trace.arm = bin::read_str(in, "arm");
  trace.model = bin::read_str(in, "model");
  trace.reranker = bin::read_str(in, "reranker");
  trace.first_pass_k = bin::read_u64(in, "first_pass_k");
  trace.final_l = bin::read_u64(in, "final_l");

  trace.generation = bin::read_u64(in, "generation");
  trace.degradation = bin::read_str(in, "degradation");
  trace.history_id = bin::read_u64(in, "history_id");
  trace.embed_seconds = bin::read_f64(in, "embed_seconds");
  trace.search_seconds = bin::read_f64(in, "search_seconds");
  trace.rerank_seconds = bin::read_f64(in, "rerank_seconds");

  trace.embed.embedder = bin::read_str(in, "embedder");
  trace.embed.query_vec = bin::read_f32_array(in, "query_vec");

  trace.retrieve.candidates = read_context_refs(in, "candidates");
  trace.retrieve.shards_failed = bin::read_u64(in, "shards_failed");
  trace.retrieve.shards_total = bin::read_u64(in, "shards_total");

  trace.rerank.rerank_degraded = bin::read_u8(in, "rerank_degraded") != 0;
  trace.rerank.contexts = read_context_refs(in, "contexts");

  trace.prompt.system = bin::read_str(in, "system prompt");
  const std::uint64_t prompt_ctx = bin::read_count(in, "prompt contexts");
  trace.prompt.contexts.resize(prompt_ctx);
  for (llm::ContextDoc& doc : trace.prompt.contexts) {
    doc.id = bin::read_str(in, "prompt context id");
    doc.title = bin::read_str(in, "prompt context title");
    doc.text = bin::read_str(in, "prompt context text");
    doc.score = bin::read_f64(in, "prompt context score");
  }
  trace.prompt.max_attended = bin::read_u64(in, "max_attended");
  trace.prompt.prompt = bin::read_str(in, "prompt");

  llm::LlmResponse& resp = trace.generate.response;
  resp.text = bin::read_str(in, "response text");
  resp.latency_seconds = bin::read_f64(in, "response latency");
  resp.prompt_tokens = bin::read_u64(in, "prompt_tokens");
  resp.completion_tokens = bin::read_u64(in, "completion_tokens");
  resp.mode = bin::read_str(in, "response mode");
  resp.used_context_ids = read_string_list(in, "used_context_ids");

  trace.post.plain_text = bin::read_str(in, "plain_text");
  trace.post.all_code_ok = bin::read_u8(in, "all_code_ok") != 0;
  trace.post.code_blocks = bin::read_u64(in, "code_blocks");
  trace.post.sources = read_string_list(in, "sources");

  return trace;
}

std::vector<std::uint64_t> TraceRecorder::list(const std::string& dir) {
  std::vector<std::uint64_t> ids;
  std::error_code ec;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    unsigned long long id = 0;
    if (std::sscanf(name.c_str(), "trace_%llu.pkbt", &id) == 1) {
      ids.push_back(id);
    }
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

}  // namespace pkb::replay
