#pragma once
// The observability contract's stable identifiers: every metric name and
// span name used by the instrumentation, in one place. Instrumented code
// refers to these constants, never to string literals, so that
// scripts/check_docs.sh can verify each name is documented in
// docs/OBSERVABILITY.md (the ctest `check_docs` target). Names here are
// append-only — see the stability promise in that document.

#include <string_view>

namespace pkb::obs {

// --- counters -------------------------------------------------------------
inline constexpr std::string_view kWorkflowRequestsTotal =
    "pkb_workflow_requests_total";
inline constexpr std::string_view kRetrieveRequestsTotal =
    "pkb_retrieve_requests_total";
inline constexpr std::string_view kRetrieveCandidatesTotal =
    "pkb_retrieve_candidates_total";
inline constexpr std::string_view kRerankRequestsTotal =
    "pkb_rerank_requests_total";
inline constexpr std::string_view kRerankCandidatesTotal =
    "pkb_rerank_candidates_total";
inline constexpr std::string_view kEmbedBatchDocsTotal =
    "pkb_embed_batch_docs_total";
inline constexpr std::string_view kVectordbSearchesTotal =
    "pkb_vectordb_searches_total";
inline constexpr std::string_view kVectordbBatchSearchesTotal =
    "pkb_vectordb_batch_searches_total";
inline constexpr std::string_view kVectordbBatchQueriesTotal =
    "pkb_vectordb_batch_queries_total";
inline constexpr std::string_view kIvfSearchesTotal = "pkb_ivf_searches_total";
inline constexpr std::string_view kIvfProbesTotal = "pkb_ivf_probes_total";
inline constexpr std::string_view kAnnSearchesTotal = "pkb_ann_searches_total";
inline constexpr std::string_view kAnnRerankCandidatesTotal =
    "pkb_ann_rerank_candidates_total";
inline constexpr std::string_view kAnnPqSearchesTotal =
    "pkb_ann_pq_searches_total";
inline constexpr std::string_view kLlmRequestsTotal = "pkb_llm_requests_total";
inline constexpr std::string_view kLlmModeTotal = "pkb_llm_mode_total";
inline constexpr std::string_view kLlmPromptTokensTotal =
    "pkb_llm_prompt_tokens_total";
inline constexpr std::string_view kLlmCompletionTokensTotal =
    "pkb_llm_completion_tokens_total";
inline constexpr std::string_view kBotsMessagesTotal =
    "pkb_bots_messages_total";
inline constexpr std::string_view kBotsRepliesTotal = "pkb_bots_replies_total";
inline constexpr std::string_view kBotsButtonPressesTotal =
    "pkb_bots_button_presses_total";
inline constexpr std::string_view kServeRequestsTotal =
    "pkb_serve_requests_total";
inline constexpr std::string_view kServeBatchesTotal =
    "pkb_serve_batches_total";
inline constexpr std::string_view kServeAnswerCacheHitsTotal =
    "pkb_serve_answer_cache_hits_total";
inline constexpr std::string_view kServeAnswerCacheMissesTotal =
    "pkb_serve_answer_cache_misses_total";
inline constexpr std::string_view kServeEmbedCacheHitsTotal =
    "pkb_serve_embed_cache_hits_total";
inline constexpr std::string_view kServeEmbedCacheMissesTotal =
    "pkb_serve_embed_cache_misses_total";
inline constexpr std::string_view kServeCacheEvictionsTotal =
    "pkb_serve_cache_evictions_total";
inline constexpr std::string_view kServeRejectedTotal =
    "pkb_serve_rejected_total";
inline constexpr std::string_view kServeCacheStaleTotal =
    "pkb_serve_cache_stale_total";
inline constexpr std::string_view kSessionTurnsTotal =
    "pkb_session_turns_total";
inline constexpr std::string_view kSessionShedTotal =
    "pkb_session_shed_total";
inline constexpr std::string_view kSessionCreatedTotal =
    "pkb_session_created_total";
inline constexpr std::string_view kSessionEvictedTotal =
    "pkb_session_evicted_total";
inline constexpr std::string_view kSessionDedupDroppedTotal =
    "pkb_session_dedup_dropped_total";
inline constexpr std::string_view kSessionMemoryInvalidationsTotal =
    "pkb_session_memory_invalidations_total";
inline constexpr std::string_view kSessionHistoryContextsTotal =
    "pkb_session_history_contexts_total";
inline constexpr std::string_view kShardQueriesTotal =
    "pkb_shard_queries_total";
inline constexpr std::string_view kShardScansTotal = "pkb_shard_scans_total";
inline constexpr std::string_view kShardScanFailuresTotal =
    "pkb_shard_scan_failures_total";
inline constexpr std::string_view kShardPartialResultsTotal =
    "pkb_shard_partial_results_total";
inline constexpr std::string_view kIngestBuildsTotal =
    "pkb_ingest_builds_total";
inline constexpr std::string_view kIngestDocsTotal = "pkb_ingest_docs_total";
inline constexpr std::string_view kIngestChunksTotal =
    "pkb_ingest_chunks_total";
inline constexpr std::string_view kIngestRefitsTotal =
    "pkb_ingest_refits_total";
inline constexpr std::string_view kResilienceFaultsInjectedTotal =
    "pkb_resilience_faults_injected_total";
inline constexpr std::string_view kResilienceRetriesTotal =
    "pkb_resilience_retries_total";
inline constexpr std::string_view kResilienceHedgesTotal =
    "pkb_resilience_hedges_total";
inline constexpr std::string_view kResilienceHedgeWinsTotal =
    "pkb_resilience_hedge_wins_total";
inline constexpr std::string_view kResilienceBreakerTransitionsTotal =
    "pkb_resilience_breaker_transitions_total";
inline constexpr std::string_view kResilienceBreakerShortCircuitsTotal =
    "pkb_resilience_breaker_short_circuits_total";
inline constexpr std::string_view kResilienceDegradedTotal =
    "pkb_resilience_degraded_total";
inline constexpr std::string_view kResilienceDeadlineExceededTotal =
    "pkb_resilience_deadline_exceeded_total";
inline constexpr std::string_view kResilienceIngestAbortsTotal =
    "pkb_resilience_ingest_aborts_total";
inline constexpr std::string_view kReplayRecordsTotal =
    "pkb_replay_records_total";
inline constexpr std::string_view kReplayRecordBytesTotal =
    "pkb_replay_record_bytes_total";
inline constexpr std::string_view kReplaySampledOutTotal =
    "pkb_replay_sampled_out_total";
inline constexpr std::string_view kReplayReplaysTotal =
    "pkb_replay_replays_total";
inline constexpr std::string_view kReplayStagesRunTotal =
    "pkb_replay_stages_run_total";
inline constexpr std::string_view kReplayStagesSkippedTotal =
    "pkb_replay_stages_skipped_total";
inline constexpr std::string_view kReplayDiffsTotal =
    "pkb_replay_diffs_total";

// --- gauges ---------------------------------------------------------------
inline constexpr std::string_view kVectordbEntries = "pkb_vectordb_entries";
inline constexpr std::string_view kIvfClusters = "pkb_ivf_clusters";
inline constexpr std::string_view kAnnIndexEntries = "pkb_ann_index_entries";
inline constexpr std::string_view kAnnGraphEdges = "pkb_ann_graph_edges";
inline constexpr std::string_view kAnnPqSubquantizers =
    "pkb_ann_pq_subquantizers";
inline constexpr std::string_view kAnnPqCodeBytesPerVector =
    "pkb_ann_pq_code_bytes_per_vector";
inline constexpr std::string_view kServeQueueDepth = "pkb_serve_queue_depth";
inline constexpr std::string_view kServeWorkers = "pkb_serve_workers";
inline constexpr std::string_view kServeInflight = "pkb_serve_inflight";
inline constexpr std::string_view kSessionActive = "pkb_session_active";
inline constexpr std::string_view kSessionLaneDepth =
    "pkb_session_lane_depth";
inline constexpr std::string_view kSessionInflight = "pkb_session_inflight";
inline constexpr std::string_view kShardCount = "pkb_shard_count";
inline constexpr std::string_view kKbGeneration = "pkb_kb_generation";
inline constexpr std::string_view kKbChunks = "pkb_kb_chunks";
inline constexpr std::string_view kResilienceBreakerState =
    "pkb_resilience_breaker_state";

// --- histograms (seconds) -------------------------------------------------
inline constexpr std::string_view kWorkflowAskSeconds =
    "pkb_workflow_ask_seconds";
inline constexpr std::string_view kRetrieveRagSeconds =
    "pkb_retrieve_rag_seconds";
inline constexpr std::string_view kRetrieveEmbedSeconds =
    "pkb_retrieve_embed_seconds";
inline constexpr std::string_view kRetrieveSearchSeconds =
    "pkb_retrieve_search_seconds";
inline constexpr std::string_view kRerankSeconds = "pkb_rerank_seconds";
inline constexpr std::string_view kVectordbSearchSeconds =
    "pkb_vectordb_search_seconds";
inline constexpr std::string_view kIvfSearchSeconds = "pkb_ivf_search_seconds";
inline constexpr std::string_view kAnnSearchSeconds = "pkb_ann_search_seconds";
inline constexpr std::string_view kAnnBuildSeconds = "pkb_ann_build_seconds";
inline constexpr std::string_view kAnnBuildKmeansSeconds =
    "pkb_ann_build_kmeans_seconds";
inline constexpr std::string_view kAnnPqTrainSeconds =
    "pkb_ann_pq_train_seconds";
inline constexpr std::string_view kEmbedBatchSeconds =
    "pkb_embed_batch_seconds";
inline constexpr std::string_view kLlmSimLatencySeconds =
    "pkb_llm_sim_latency_seconds";
inline constexpr std::string_view kVectordbBatchSearchSeconds =
    "pkb_vectordb_batch_search_seconds";
inline constexpr std::string_view kServeRequestSeconds =
    "pkb_serve_request_seconds";
inline constexpr std::string_view kServeQueueWaitSeconds =
    "pkb_serve_queue_wait_seconds";
inline constexpr std::string_view kServePipelineSeconds =
    "pkb_serve_pipeline_seconds";
inline constexpr std::string_view kSessionTurnSeconds =
    "pkb_session_turn_seconds";
inline constexpr std::string_view kSessionQueueWaitSeconds =
    "pkb_session_queue_wait_seconds";
inline constexpr std::string_view kSessionTurnsPerSession =
    "pkb_session_turns_per_session";
inline constexpr std::string_view kShardScatterSeconds =
    "pkb_shard_scatter_seconds";
inline constexpr std::string_view kShardMergeSeconds =
    "pkb_shard_merge_seconds";
inline constexpr std::string_view kKbSwapSeconds = "pkb_kb_swap_seconds";
inline constexpr std::string_view kIngestBuildSeconds =
    "pkb_ingest_build_seconds";
inline constexpr std::string_view kResilienceBudgetSpentSeconds =
    "pkb_resilience_budget_spent_seconds";
inline constexpr std::string_view kResilienceBackoffSeconds =
    "pkb_resilience_backoff_seconds";
inline constexpr std::string_view kReplayRecordSeconds =
    "pkb_replay_record_seconds";
inline constexpr std::string_view kReplayReplaySeconds =
    "pkb_replay_replay_seconds";

// --- span names -----------------------------------------------------------
inline constexpr std::string_view kSpanAsk = "ask";
inline constexpr std::string_view kSpanRetrieve = "retrieve";
inline constexpr std::string_view kSpanEmbedQuery = "embed_query";
inline constexpr std::string_view kSpanVectorSearch = "vector_search";
inline constexpr std::string_view kSpanKeywordAugment = "keyword_augment";
inline constexpr std::string_view kSpanRerank = "rerank";
inline constexpr std::string_view kSpanHistoryRecall = "history_recall";
inline constexpr std::string_view kSpanPromptBuild = "prompt_build";
inline constexpr std::string_view kSpanLlm = "llm";
inline constexpr std::string_view kSpanPostprocess = "postprocess";
inline constexpr std::string_view kSpanHistoryRecord = "history_record";
inline constexpr std::string_view kSpanServeRequest = "serve_request";
inline constexpr std::string_view kSpanSessionTurn = "session_turn";
inline constexpr std::string_view kSpanAdmission = "admission";
inline constexpr std::string_view kSpanServeBatch = "serve_batch";
inline constexpr std::string_view kSpanVectorSearchBatch =
    "vector_search_batch";
inline constexpr std::string_view kSpanShardScatter = "shard_scatter";
inline constexpr std::string_view kSpanShardMerge = "shard_merge";
inline constexpr std::string_view kSpanIngestBuild = "ingest_build";
inline constexpr std::string_view kSpanKbSwap = "kb_swap";
inline constexpr std::string_view kSpanRetry = "retry";
inline constexpr std::string_view kSpanHedge = "hedge";
inline constexpr std::string_view kSpanBreakerState = "breaker_state";
inline constexpr std::string_view kSpanDegradedAnswer = "degraded_answer";
inline constexpr std::string_view kSpanAnnSearch = "ann_search";
inline constexpr std::string_view kSpanQuantizeRerank = "quantize_rerank";
inline constexpr std::string_view kSpanTraceRecord = "trace_record";
inline constexpr std::string_view kSpanReplayStage = "replay_stage";

}  // namespace pkb::obs
