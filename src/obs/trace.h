#pragma once
// Span tracer — the per-request half of the observability layer
// (docs/OBSERVABILITY.md documents the span tree one ask() produces).
//
// RAII `Span` objects form trees: a Span opened while another Span is open
// on the same thread becomes its child; when the outermost span on a thread
// closes, the finished trace is pushed into a bounded ring (oldest evicted).
// Durations are real wall microseconds relative to the tracer's epoch
// (`util::Stopwatch` semantics). An optional `util::SimClock` stamps each
// trace root with a `sim_start` attribute so simulated workflows keep their
// virtual timeline visible in exports.
//
// Thread-safety: open/close and all Tracer queries are serialized by one
// mutex. Span::set_attr must be called from the thread that created the
// span (the normal RAII usage); attribute writes are then unsynchronized by
// construction because no other thread can reach an open span.
//
// Usage:
//   obs::Span span(obs::global_tracer(), obs::kSpanRetrieve);
//   span.set_attr("k", opts_.first_pass_k);
//   ...  // nested Spans become children
//   // span closes at scope exit; the root's close records the trace

#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "util/clock.h"

namespace pkb::obs {

/// One recorded span. Children are stored inline, in open order.
struct SpanData {
  std::string name;
  double start_us = 0.0;  ///< relative to the tracer's epoch
  double dur_us = 0.0;
  std::vector<std::pair<std::string, std::string>> attrs;
  std::vector<SpanData> children;
};

/// One finished per-request span tree.
struct Trace {
  std::uint64_t id = 0;
  SpanData root;
};

class Span;

/// Collects finished traces into a bounded ring.
class Tracer {
 public:
  explicit Tracer(std::size_t capacity = 64);

  /// When disabled, Spans become inert no-ops (nothing is recorded).
  void set_enabled(bool on);
  [[nodiscard]] bool enabled() const;

  /// Attach a simulation clock: each subsequently opened trace root gets a
  /// `sim_start` attribute with the clock's formatted timestamp. Pass
  /// nullptr to detach. The clock must outlive the tracer or be detached.
  void set_sim_clock(const pkb::util::SimClock* clock);

  /// Drop all retained traces (open spans are unaffected).
  void clear();

  [[nodiscard]] std::size_t trace_count() const;

  /// Copies of the retained traces, oldest first.
  [[nodiscard]] std::vector<Trace> traces() const;

  /// The most recently finished trace, if any.
  [[nodiscard]] std::optional<Trace> latest() const;

  /// All retained traces in the Chrome trace-event format (complete "X"
  /// events; ts/dur in microseconds; tid = trace id). Load the output in
  /// chrome://tracing or Perfetto.
  [[nodiscard]] std::string chrome_trace_json(int indent = 0) const;

 private:
  friend class Span;

  /// Returns nullptr when disabled; otherwise the opened span's storage.
  SpanData* open_span(std::string_view name);
  void close_span(SpanData* span);
  [[nodiscard]] double now_us() const;

  struct ThreadState {
    std::unique_ptr<SpanData> root;  ///< owns the tree while it is open
    std::vector<SpanData*> stack;    ///< open spans, outermost first
  };

  mutable std::mutex mu_;
  bool enabled_ = true;
  std::size_t capacity_;
  std::chrono::steady_clock::time_point epoch_;
  const pkb::util::SimClock* sim_clock_ = nullptr;
  std::uint64_t next_trace_id_ = 1;
  std::deque<Trace> done_;
  std::map<std::thread::id, ThreadState> active_;
};

/// RAII handle for one span. Not copyable or movable: open and close happen
/// on the same thread, in scope order.
class Span {
 public:
  Span(Tracer& tracer, std::string_view name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attach a key/value attribute. No-ops when the tracer was disabled at
  /// construction. Numeric overloads render with shortest-%g / decimal.
  void set_attr(std::string_view key, std::string_view value);
  void set_attr(std::string_view key, const char* value);
  void set_attr(std::string_view key, double value);
  void set_attr(std::string_view key, std::uint64_t value);
  void set_attr(std::string_view key, int value);
  void set_attr(std::string_view key, bool value);

 private:
  Tracer* tracer_ = nullptr;  ///< null when inert
  SpanData* data_ = nullptr;
};

/// Render one span tree as an indented ASCII tree (the pkb_cli `:trace`
/// view): name, duration, and attributes per line.
[[nodiscard]] std::string render_tree(const SpanData& root);

/// The process-wide tracer all instrumentation writes to.
Tracer& global_tracer();

}  // namespace pkb::obs
