#pragma once
// Metrics registry — the always-on, queryable half of the observability
// layer (docs/OBSERVABILITY.md is the contract: names, labels, units).
//
// Three metric kinds:
//   * Counter   — monotonically increasing event count (atomic).
//   * Gauge     — last-set value (atomic double).
//   * Histogram — fixed-bucket latency distribution that also tracks exact
//                 min/max/sum/count, so min/max/avg read from a histogram
//                 equals the same statistic over the raw samples (the
//                 property bench/table2_latency relies on). Percentiles are
//                 bucket-interpolated, `util::Summary`-style in spirit but
//                 O(buckets) memory instead of retaining every sample.
//
// Thread-safety: registry lookups are serialized by one mutex; Counter and
// Gauge updates are lock-free atomics; each Histogram has its own mutex.
// References returned by counter()/gauge()/histogram() stay valid for the
// registry's lifetime — reset() zeroes values in place, it never removes a
// registered series.
//
// Usage (hot path — look up, then bump):
//   obs::global_metrics()
//       .counter(obs::kLlmRequestsTotal, {{"model", config_.name}})
//       .inc();

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/json.h"

namespace pkb::obs {

/// Label key/value pairs identifying one series within a metric family.
/// Order does not matter at the call site; the registry sorts by key.
using LabelSet = std::vector<std::pair<std::string, std::string>>;

/// Monotonic event counter.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-set value.
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  void add(double d) { v_.fetch_add(d, std::memory_order_relaxed); }
  [[nodiscard]] double value() const {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Default histogram bucket upper bounds in seconds (10 µs .. 25 s,
/// roughly 1-2.5-5 per decade). A final +Inf bucket is implicit.
[[nodiscard]] std::vector<double> default_latency_buckets();

/// Fixed-bucket histogram with exact min/max/sum/count.
class Histogram {
 public:
  /// `bounds` are the strictly increasing bucket upper bounds; a sample x
  /// lands in the first bucket with x <= bound, or the implicit +Inf bucket.
  explicit Histogram(std::vector<double> bounds);

  void observe(double x);

  /// A consistent point-in-time copy of the histogram state.
  struct Snapshot {
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;  ///< exact smallest observation; 0 when empty
    double max = 0.0;  ///< exact largest observation; 0 when empty
    std::vector<double> bounds;          ///< upper bounds (no +Inf entry)
    std::vector<std::uint64_t> buckets;  ///< per-bucket counts; size
                                         ///< bounds.size()+1, last is +Inf

    [[nodiscard]] double mean() const;
    /// Bucket-interpolated percentile, q in [0, 100], clamped to [min, max].
    [[nodiscard]] double percentile(double q) const;
  };
  [[nodiscard]] Snapshot snapshot() const;

  void reset();

 private:
  mutable std::mutex mu_;
  Snapshot data_;
};

/// The process-wide metric store. Series identity is (name, sorted labels);
/// the first caller for a name fixes its kind, and a later call with the
/// same name but a different kind throws std::logic_error.
class MetricsRegistry {
 public:
  Counter& counter(std::string_view name, LabelSet labels = {});
  Gauge& gauge(std::string_view name, LabelSet labels = {});
  /// `bounds` empty means default_latency_buckets(); bounds are fixed by the
  /// first call for a name and ignored afterwards.
  Histogram& histogram(std::string_view name, LabelSet labels = {},
                       std::vector<double> bounds = {});

  /// Number of registered series across all families.
  [[nodiscard]] std::size_t series_count() const;

  /// Prometheus text exposition format (docs/OBSERVABILITY.md shows the
  /// shape). Families and label sets are emitted in sorted order, so the
  /// output is deterministic.
  [[nodiscard]] std::string prometheus_text() const;

  /// JSON snapshot: {"counters": [...], "gauges": [...], "histograms": [...]}.
  [[nodiscard]] pkb::util::Json json() const;

  /// Zero every metric in place. Registered series (and references to them)
  /// survive; only the values reset.
  void reset();

 private:
  enum class Kind { Counter, Gauge, Histogram };
  struct Series {
    LabelSet labels;  ///< sorted by key
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Family {
    Kind kind = Kind::Counter;
    std::map<std::string, Series> series;  ///< rendered label string -> series
  };

  Series& find_or_create(std::string_view name, LabelSet labels, Kind kind,
                         std::vector<double> bounds);

  mutable std::mutex mu_;
  std::map<std::string, Family> families_;
};

/// The process-wide registry all instrumentation writes to.
MetricsRegistry& global_metrics();

}  // namespace pkb::obs
