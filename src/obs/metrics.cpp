#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace pkb::obs {

namespace {

/// Shortest %g rendering — round-trips typical latency values and prints
/// integers without a trailing ".0" (Prometheus-friendly).
std::string render_number(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

/// Escape a label value for the Prometheus text format.
std::string escape_label_value(std::string_view v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    if (c == '\\' || c == '"') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

/// Render a sorted label set as `{k="v",...}`; empty labels render as "".
/// `extra` appends one more pair (used for histogram `le`).
std::string render_labels(const LabelSet& labels,
                          const std::pair<std::string, std::string>* extra =
                              nullptr) {
  if (labels.empty() && extra == nullptr) return "";
  std::string out = "{";
  bool first = true;
  auto append = [&](const std::string& k, const std::string& v) {
    if (!first) out += ",";
    first = false;
    out += k;
    out += "=\"";
    out += escape_label_value(v);
    out += "\"";
  };
  for (const auto& [k, v] : labels) append(k, v);
  if (extra != nullptr) append(extra->first, extra->second);
  out += "}";
  return out;
}

}  // namespace

std::vector<double> default_latency_buckets() {
  return {1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 0.01,
          0.025, 0.05,  0.1,  0.25, 0.5,    1.0,  2.5,  5.0,    10.0, 25.0};
}

Histogram::Histogram(std::vector<double> bounds) {
  if (bounds.empty()) {
    throw std::invalid_argument("Histogram: need at least one bucket bound");
  }
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    if (!(bounds[i] > bounds[i - 1])) {
      throw std::invalid_argument("Histogram: bounds must strictly increase");
    }
  }
  data_.bounds = std::move(bounds);
  data_.buckets.assign(data_.bounds.size() + 1, 0);
}

void Histogram::observe(double x) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it =
      std::lower_bound(data_.bounds.begin(), data_.bounds.end(), x);
  const std::size_t bucket =
      static_cast<std::size_t>(it - data_.bounds.begin());
  ++data_.buckets[bucket];
  if (data_.count == 0 || x < data_.min) data_.min = x;
  if (data_.count == 0 || x > data_.max) data_.max = x;
  data_.sum += x;
  ++data_.count;
}

Histogram::Snapshot Histogram::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return data_;
}

void Histogram::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  data_.count = 0;
  data_.sum = data_.min = data_.max = 0.0;
  std::fill(data_.buckets.begin(), data_.buckets.end(), 0);
}

double Histogram::Snapshot::mean() const {
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

double Histogram::Snapshot::percentile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 100.0);
  const double target = q / 100.0 * static_cast<double>(count);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const std::uint64_t prev = cum;
    cum += buckets[i];
    if (static_cast<double>(cum) >= target && buckets[i] > 0) {
      // Linear interpolation within the bucket that crosses the target.
      const double lo = i == 0 ? std::min(min, bounds[0]) : bounds[i - 1];
      const double hi = i < bounds.size() ? bounds[i] : max;
      const double frac =
          (target - static_cast<double>(prev)) /
          static_cast<double>(buckets[i]);
      return std::clamp(lo + (hi - lo) * std::clamp(frac, 0.0, 1.0), min, max);
    }
  }
  return max;
}

MetricsRegistry::Series& MetricsRegistry::find_or_create(
    std::string_view name, LabelSet labels, Kind kind,
    std::vector<double> bounds) {
  std::sort(labels.begin(), labels.end());
  const std::string key = render_labels(labels);

  std::lock_guard<std::mutex> lock(mu_);
  auto [fit, family_inserted] = families_.try_emplace(std::string(name));
  Family& family = fit->second;
  if (family_inserted) {
    family.kind = kind;
  } else if (family.kind != kind) {
    throw std::logic_error("metric '" + std::string(name) +
                           "' already registered with a different kind");
  }
  auto [sit, series_inserted] = family.series.try_emplace(key);
  Series& series = sit->second;
  if (series_inserted) {
    series.labels = std::move(labels);
    switch (kind) {
      case Kind::Counter:
        series.counter = std::make_unique<Counter>();
        break;
      case Kind::Gauge:
        series.gauge = std::make_unique<Gauge>();
        break;
      case Kind::Histogram:
        series.histogram = std::make_unique<Histogram>(
            bounds.empty() ? default_latency_buckets() : std::move(bounds));
        break;
    }
  }
  return series;
}

Counter& MetricsRegistry::counter(std::string_view name, LabelSet labels) {
  return *find_or_create(name, std::move(labels), Kind::Counter, {}).counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name, LabelSet labels) {
  return *find_or_create(name, std::move(labels), Kind::Gauge, {}).gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name, LabelSet labels,
                                      std::vector<double> bounds) {
  return *find_or_create(name, std::move(labels), Kind::Histogram,
                         std::move(bounds))
              .histogram;
}

std::size_t MetricsRegistry::series_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& [name, family] : families_) n += family.series.size();
  return n;
}

std::string MetricsRegistry::prometheus_text() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, family] : families_) {
    out += "# TYPE " + name + " ";
    switch (family.kind) {
      case Kind::Counter:
        out += "counter\n";
        break;
      case Kind::Gauge:
        out += "gauge\n";
        break;
      case Kind::Histogram:
        out += "histogram\n";
        break;
    }
    for (const auto& [key, series] : family.series) {
      switch (family.kind) {
        case Kind::Counter:
          out += name + key + " " +
                 std::to_string(series.counter->value()) + "\n";
          break;
        case Kind::Gauge:
          out += name + key + " " + render_number(series.gauge->value()) +
                 "\n";
          break;
        case Kind::Histogram: {
          const Histogram::Snapshot snap = series.histogram->snapshot();
          std::uint64_t cum = 0;
          for (std::size_t i = 0; i < snap.buckets.size(); ++i) {
            cum += snap.buckets[i];
            const std::pair<std::string, std::string> le{
                "le", i < snap.bounds.size() ? render_number(snap.bounds[i])
                                             : "+Inf"};
            out += name + "_bucket" + render_labels(series.labels, &le) +
                   " " + std::to_string(cum) + "\n";
          }
          out += name + "_sum" + key + " " + render_number(snap.sum) + "\n";
          out += name + "_count" + key + " " + std::to_string(snap.count) +
                 "\n";
          break;
        }
      }
    }
  }
  return out;
}

pkb::util::Json MetricsRegistry::json() const {
  using pkb::util::Json;
  std::lock_guard<std::mutex> lock(mu_);
  Json counters = Json::array();
  Json gauges = Json::array();
  Json histograms = Json::array();
  for (const auto& [name, family] : families_) {
    for (const auto& [key, series] : family.series) {
      Json entry = Json::object();
      entry.set("name", name);
      Json labels = Json::object();
      for (const auto& [k, v] : series.labels) labels.set(k, v);
      entry.set("labels", std::move(labels));
      switch (family.kind) {
        case Kind::Counter:
          entry.set("value", series.counter->value());
          counters.push_back(std::move(entry));
          break;
        case Kind::Gauge:
          entry.set("value", series.gauge->value());
          gauges.push_back(std::move(entry));
          break;
        case Kind::Histogram: {
          const Histogram::Snapshot snap = series.histogram->snapshot();
          entry.set("count", snap.count);
          entry.set("sum", snap.sum);
          entry.set("min", snap.min);
          entry.set("max", snap.max);
          entry.set("mean", snap.mean());
          entry.set("p50", snap.percentile(50));
          entry.set("p90", snap.percentile(90));
          entry.set("p99", snap.percentile(99));
          Json buckets = Json::array();
          std::uint64_t cum = 0;
          for (std::size_t i = 0; i < snap.buckets.size(); ++i) {
            cum += snap.buckets[i];
            Json b = Json::object();
            if (i < snap.bounds.size()) {
              b.set("le", snap.bounds[i]);
            } else {
              b.set("le", "+Inf");
            }
            b.set("count", cum);
            buckets.push_back(std::move(b));
          }
          entry.set("buckets", std::move(buckets));
          histograms.push_back(std::move(entry));
          break;
        }
      }
    }
  }
  Json out = Json::object();
  out.set("counters", std::move(counters));
  out.set("gauges", std::move(gauges));
  out.set("histograms", std::move(histograms));
  return out;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, family] : families_) {
    for (auto& [key, series] : family.series) {
      if (series.counter) series.counter->reset();
      if (series.gauge) series.gauge->reset();
      if (series.histogram) series.histogram->reset();
    }
  }
}

MetricsRegistry& global_metrics() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never freed
  return *registry;
}

}  // namespace pkb::obs
