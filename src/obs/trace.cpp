#include "obs/trace.h"

#include <cstdio>

#include "util/json.h"

namespace pkb::obs {

namespace {

std::string render_number(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

}  // namespace

Tracer::Tracer(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity),
      epoch_(std::chrono::steady_clock::now()) {}

void Tracer::set_enabled(bool on) {
  std::lock_guard<std::mutex> lock(mu_);
  enabled_ = on;
}

bool Tracer::enabled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return enabled_;
}

void Tracer::set_sim_clock(const pkb::util::SimClock* clock) {
  std::lock_guard<std::mutex> lock(mu_);
  sim_clock_ = clock;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  done_.clear();
}

std::size_t Tracer::trace_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return done_.size();
}

std::vector<Trace> Tracer::traces() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {done_.begin(), done_.end()};
}

std::optional<Trace> Tracer::latest() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (done_.empty()) return std::nullopt;
  return done_.back();
}

double Tracer::now_us() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

SpanData* Tracer::open_span(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!enabled_) return nullptr;
  ThreadState& state = active_[std::this_thread::get_id()];
  SpanData* span = nullptr;
  if (state.stack.empty()) {
    state.root = std::make_unique<SpanData>();
    span = state.root.get();
    if (sim_clock_ != nullptr) {
      span->attrs.emplace_back("sim_start", sim_clock_->timestamp());
    }
  } else {
    // Strict nesting: only the innermost open span gains children, so the
    // pointers held in `stack` (into ancestors' children vectors) are never
    // invalidated by this push_back.
    state.stack.back()->children.emplace_back();
    span = &state.stack.back()->children.back();
  }
  span->name = std::string(name);
  span->start_us = now_us();
  state.stack.push_back(span);
  return span;
}

void Tracer::close_span(SpanData* span) {
  std::lock_guard<std::mutex> lock(mu_);
  span->dur_us = now_us() - span->start_us;
  const auto it = active_.find(std::this_thread::get_id());
  if (it == active_.end()) return;
  ThreadState& state = it->second;
  if (state.stack.empty() || state.stack.back() != span) return;
  state.stack.pop_back();
  if (state.stack.empty()) {
    done_.push_back(Trace{next_trace_id_++, std::move(*state.root)});
    active_.erase(it);
    while (done_.size() > capacity_) done_.pop_front();
  }
}

namespace {

void append_chrome_events(const SpanData& span, std::uint64_t tid,
                          pkb::util::Json& events) {
  pkb::util::Json event = pkb::util::Json::object();
  event.set("name", span.name);
  event.set("ph", "X");
  event.set("pid", 1);
  event.set("tid", tid);
  event.set("ts", span.start_us);
  event.set("dur", span.dur_us);
  if (!span.attrs.empty()) {
    pkb::util::Json args = pkb::util::Json::object();
    for (const auto& [k, v] : span.attrs) args.set(k, v);
    event.set("args", std::move(args));
  }
  events.push_back(std::move(event));
  for (const SpanData& child : span.children) {
    append_chrome_events(child, tid, events);
  }
}

void render_tree_node(const SpanData& span, const std::string& prefix,
                      bool last, bool root, std::string& out) {
  if (!root) {
    out += prefix + (last ? "└─ " : "├─ ");
  }
  out += span.name + " " + render_number(span.dur_us) + "us";
  for (const auto& [k, v] : span.attrs) {
    out += " " + k + "=" + v;
  }
  out += "\n";
  const std::string child_prefix =
      root ? "" : prefix + (last ? "   " : "│  ");
  for (std::size_t i = 0; i < span.children.size(); ++i) {
    render_tree_node(span.children[i], child_prefix,
                     i + 1 == span.children.size(), false, out);
  }
}

}  // namespace

std::string Tracer::chrome_trace_json(int indent) const {
  pkb::util::Json events = pkb::util::Json::array();
  for (const Trace& trace : traces()) {
    append_chrome_events(trace.root, trace.id, events);
  }
  pkb::util::Json out = pkb::util::Json::object();
  out.set("traceEvents", std::move(events));
  return out.dump(indent);
}

std::string render_tree(const SpanData& root) {
  std::string out;
  render_tree_node(root, "", true, true, out);
  return out;
}

Span::Span(Tracer& tracer, std::string_view name) {
  data_ = tracer.open_span(name);
  if (data_ != nullptr) tracer_ = &tracer;
}

Span::~Span() {
  if (tracer_ != nullptr) tracer_->close_span(data_);
}

void Span::set_attr(std::string_view key, std::string_view value) {
  if (data_ == nullptr) return;
  data_->attrs.emplace_back(std::string(key), std::string(value));
}

void Span::set_attr(std::string_view key, const char* value) {
  set_attr(key, std::string_view(value));
}

void Span::set_attr(std::string_view key, double value) {
  set_attr(key, std::string_view(render_number(value)));
}

void Span::set_attr(std::string_view key, std::uint64_t value) {
  set_attr(key, std::string_view(std::to_string(value)));
}

void Span::set_attr(std::string_view key, int value) {
  set_attr(key, std::string_view(std::to_string(value)));
}

void Span::set_attr(std::string_view key, bool value) {
  set_attr(key, std::string_view(value ? "true" : "false"));
}

Tracer& global_tracer() {
  static Tracer* tracer = new Tracer();  // never freed
  return *tracer;
}

}  // namespace pkb::obs
