#include "embed/blend.h"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace pkb::embed {

BlendEmbedder::BlendEmbedder(std::size_t lsa_rank, std::size_t hash_dim,
                             double lexical_weight, std::uint64_t seed)
    : lsa_(lsa_rank, /*iterations=*/6, seed),
      hash_(hash_dim),
      lexical_weight_(lexical_weight) {
  if (lexical_weight_ < 0.0 || lexical_weight_ > 1.0) {
    throw std::invalid_argument("BlendEmbedder: lexical_weight in [0,1]");
  }
}

std::string BlendEmbedder::name() const {
  char buf[64];
  std::snprintf(buf, sizeof buf, "sim-blend-%zu-%zu-w%02d", lsa_.dimension(),
                hash_.dimension(),
                static_cast<int>(lexical_weight_ * 100.0 + 0.5));
  return buf;
}

void BlendEmbedder::fit(const std::vector<text::Document>& docs) {
  lsa_.fit(docs);
  hash_.fit(docs);
}

Vector BlendEmbedder::embed(std::string_view text) const {
  Vector sem = lsa_.embed(text);    // unit norm (or zero)
  Vector lex = hash_.embed(text);   // unit norm (or zero)
  const float ws = static_cast<float>(std::sqrt(1.0 - lexical_weight_));
  const float wl = static_cast<float>(std::sqrt(lexical_weight_));
  Vector out;
  out.reserve(sem.size() + lex.size());
  for (float v : sem) out.push_back(ws * v);
  for (float v : lex) out.push_back(wl * v);
  l2_normalize(out);  // exact unit norm even if one side was zero
  return out;
}

}  // namespace pkb::embed
