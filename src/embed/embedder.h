#pragma once
// Embedding models.
//
// The paper evaluates several embedding models (OpenAI text-embedding-3-large
// performing best). We hand-roll four families spanning the same
// quality/speed/semantics trade-off space, all behind one interface:
//
//   * TfidfEmbedder     — sparse-in-spirit lexical embedding (exact terms)
//   * HashEmbedder      — hashing-trick bag of words, fixed dimension
//   * LsaEmbedder       — dense semantic embedding via truncated SVD of the
//                         TF-IDF matrix (the "neural-like" model: lossy,
//                         captures topical similarity, misses exact terms)
//   * CharNgramEmbedder — hashed character n-grams (robust to typos and
//                         API-symbol morphology)
//
// All embedders L2-normalize their output so inner product == cosine.

#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "text/document.h"

namespace pkb::embed {

/// Dense embedding vector.
using Vector = std::vector<float>;

/// Inner product of two equal-length vectors.
[[nodiscard]] float dot(const Vector& a, const Vector& b);

/// Euclidean norm.
[[nodiscard]] float norm(const Vector& v);

/// Scale to unit norm (no-op on the zero vector).
void l2_normalize(Vector& v);

/// Cosine similarity in [-1, 1]; 0 if either vector is zero.
[[nodiscard]] float cosine(const Vector& a, const Vector& b);

/// Common interface. Lifecycle: construct -> fit(corpus) -> embed(text).
/// fit() may be a no-op for models without corpus statistics.
class Embedder {
 public:
  virtual ~Embedder() = default;

  /// Stable model identifier, e.g. "sim-tfidf".
  [[nodiscard]] virtual std::string name() const = 0;

  /// Output dimensionality (valid after fit()).
  [[nodiscard]] virtual std::size_t dimension() const = 0;

  /// Learn corpus statistics (vocabulary, IDF, SVD basis, ...).
  virtual void fit(const std::vector<text::Document>& docs) = 0;

  /// Embed one text. Must be called after fit(). Thread-safe.
  [[nodiscard]] virtual Vector embed(std::string_view text) const = 0;

  /// Embed many texts in parallel (uses the global thread pool).
  [[nodiscard]] std::vector<Vector> embed_batch(
      std::span<const text::Document> docs) const;
};

/// Create an embedder by registry name:
///   "sim-tfidf", "sim-hash-512", "sim-lsa-64", "sim-charngram-512",
/// plus the paper-flavored aliases
///   "sim-embed-3-large" (= tfidf: the strongest retrieval model here),
///   "sim-embed-3-small" (= lsa-64),
///   "sim-embed-ada"     (= hash-512).
/// Throws std::invalid_argument for unknown names.
[[nodiscard]] std::unique_ptr<Embedder> make_embedder(std::string_view name);

/// All registry names (canonical ones first, then aliases).
[[nodiscard]] std::vector<std::string> embedder_registry();

}  // namespace pkb::embed
