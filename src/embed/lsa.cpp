#include "embed/lsa.h"

#include <cmath>
#include <stdexcept>

#include "util/rng.h"
#include "util/thread_pool.h"

namespace pkb::embed {

namespace {

using SparseVec = std::vector<std::pair<std::size_t, float>>;

/// y[d] = sum_t A[d][t] * x[t]  for every document d (A given sparsely).
void mat_vec(const std::vector<SparseVec>& rows, const std::vector<float>& x,
             std::vector<float>& y) {
  pkb::util::parallel_for(0, rows.size(), [&](std::size_t d) {
    double acc = 0.0;
    for (const auto& [t, w] : rows[d]) acc += static_cast<double>(w) * x[t];
    y[d] = static_cast<float>(acc);
  });
}

/// x[t] += sum_d A[d][t] * y[d] (transpose product, serial: scatter writes).
void mat_t_vec(const std::vector<SparseVec>& rows, const std::vector<float>& y,
               std::vector<float>& x) {
  std::fill(x.begin(), x.end(), 0.0f);
  for (std::size_t d = 0; d < rows.size(); ++d) {
    const float yd = y[d];
    if (yd == 0.0f) continue;
    for (const auto& [t, w] : rows[d]) x[t] += w * yd;
  }
}

/// Modified Gram-Schmidt over `k` column vectors of length `n`, stored
/// column-major in `q` (q[c] is the c-th vector). Degenerate columns are
/// re-seeded deterministically.
void orthonormalize(std::vector<std::vector<float>>& q, pkb::util::Rng& rng) {
  for (std::size_t c = 0; c < q.size(); ++c) {
    for (std::size_t prev = 0; prev < c; ++prev) {
      double proj = 0.0;
      for (std::size_t i = 0; i < q[c].size(); ++i) {
        proj += static_cast<double>(q[prev][i]) * q[c][i];
      }
      for (std::size_t i = 0; i < q[c].size(); ++i) {
        q[c][i] -= static_cast<float>(proj) * q[prev][i];
      }
    }
    double nrm = 0.0;
    for (float v : q[c]) nrm += static_cast<double>(v) * v;
    nrm = std::sqrt(nrm);
    if (nrm < 1e-10) {
      for (float& v : q[c]) v = static_cast<float>(rng.normal());
      double nn = 0.0;
      for (float v : q[c]) nn += static_cast<double>(v) * v;
      nrm = std::sqrt(nn);
    }
    const float inv = static_cast<float>(1.0 / nrm);
    for (float& v : q[c]) v *= inv;
  }
}

}  // namespace

LsaEmbedder::LsaEmbedder(std::size_t rank, std::size_t iterations,
                         std::uint64_t seed)
    : rank_(rank), iterations_(iterations), seed_(seed) {
  if (rank_ == 0 || iterations_ == 0) {
    throw std::invalid_argument("LsaEmbedder: rank/iterations must be > 0");
  }
}

std::string LsaEmbedder::name() const {
  return "sim-lsa-" + std::to_string(rank_);
}

void LsaEmbedder::fit(const std::vector<text::Document>& docs) {
  vocab_.fit(docs, /*min_df=*/1);
  vocab_size_ = vocab_.size();
  const std::size_t k = std::min(rank_, vocab_size_);

  std::vector<SparseVec> rows;
  rows.reserve(docs.size());
  for (const text::Document& doc : docs) rows.push_back(vocab_.tfidf(doc.text));

  // Subspace iteration on A^T A: Q <- orth((A^T A) Q).
  pkb::util::Rng rng(seed_);
  std::vector<std::vector<float>> q(k, std::vector<float>(vocab_size_));
  for (auto& col : q) {
    for (float& v : col) v = static_cast<float>(rng.normal());
  }
  orthonormalize(q, rng);

  std::vector<float> ax(rows.size());
  for (std::size_t iter = 0; iter < iterations_; ++iter) {
    for (auto& col : q) {
      mat_vec(rows, col, ax);
      mat_t_vec(rows, ax, col);
    }
    orthonormalize(q, rng);
  }

  basis_.assign(rank_ * vocab_size_, 0.0f);
  for (std::size_t c = 0; c < k; ++c) {
    std::copy(q[c].begin(), q[c].end(), basis_.begin() + c * vocab_size_);
  }
}

Vector LsaEmbedder::embed(std::string_view text) const {
  if (vocab_size_ == 0) {
    throw std::logic_error("LsaEmbedder::embed called before fit()");
  }
  const SparseVec sparse = vocab_.tfidf(text);
  Vector out(rank_, 0.0f);
  for (std::size_t c = 0; c < rank_; ++c) {
    const float* row = basis_.data() + c * vocab_size_;
    double acc = 0.0;
    for (const auto& [t, w] : sparse) acc += static_cast<double>(w) * row[t];
    out[c] = static_cast<float>(acc);
  }
  l2_normalize(out);
  return out;
}

}  // namespace pkb::embed
