#pragma once
// Latent Semantic Analysis embedder: dense low-rank embedding obtained from
// a truncated SVD of the corpus TF-IDF matrix, computed with randomized
// subspace iteration (hand-rolled; no LAPACK).
//
// This is the "semantic" model of the registry: it captures topical
// similarity between texts that share no exact terms, at the price of losing
// exact-term precision — exactly the failure mode the paper's reranking
// stage repairs (decisive document at embedding rank 5-8).

#include "embed/tfidf.h"

namespace pkb::embed {

class LsaEmbedder final : public Embedder {
 public:
  /// `rank`: embedding dimension (number of singular vectors kept).
  /// `iterations`: subspace-iteration sweeps (more = closer to exact SVD).
  /// `seed`: RNG seed for the random start basis.
  explicit LsaEmbedder(std::size_t rank = 64, std::size_t iterations = 6,
                       std::uint64_t seed = 0xC0FFEE);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::size_t dimension() const override { return rank_; }
  void fit(const std::vector<text::Document>& docs) override;
  [[nodiscard]] Vector embed(std::string_view text) const override;

  /// The fitted vocabulary (valid after fit()).
  [[nodiscard]] const Vocabulary& vocabulary() const { return vocab_; }

 private:
  std::size_t rank_;
  std::size_t iterations_;
  std::uint64_t seed_;
  Vocabulary vocab_;
  /// Row-major rank_ x vocab-size projection (right singular vectors).
  std::vector<float> basis_;
  std::size_t vocab_size_ = 0;
};

}  // namespace pkb::embed
