#include "embed/hashing.h"

#include <cmath>
#include <stdexcept>
#include <unordered_map>

#include "text/tokenizer.h"
#include "util/rng.h"
#include "util/strings.h"

namespace pkb::embed {

HashEmbedder::HashEmbedder(std::size_t dim) : dim_(dim) {
  if (dim_ == 0) throw std::invalid_argument("HashEmbedder: dim must be > 0");
}

std::string HashEmbedder::name() const {
  return "sim-hash-" + std::to_string(dim_);
}

void HashEmbedder::fit(const std::vector<text::Document>& docs) {
  (void)docs;  // stateless model
}

Vector HashEmbedder::embed(std::string_view text) const {
  std::unordered_map<std::string, float> tf;
  for (std::string& tok : text::tokens_of(text)) tf[std::move(tok)] += 1.0f;
  Vector v(dim_, 0.0f);
  for (const auto& [term, count] : tf) {
    const std::uint64_t h = pkb::util::fnv1a64(term);
    const std::size_t bucket = h % dim_;
    const float sign = ((h >> 32) & 1u) != 0 ? 1.0f : -1.0f;
    v[bucket] += sign * (1.0f + std::log(count));
  }
  l2_normalize(v);
  return v;
}

CharNgramEmbedder::CharNgramEmbedder(std::size_t dim, std::size_t lo,
                                     std::size_t hi)
    : dim_(dim), lo_(lo), hi_(hi) {
  if (dim_ == 0 || lo_ == 0 || hi_ < lo_) {
    throw std::invalid_argument("CharNgramEmbedder: bad parameters");
  }
}

std::string CharNgramEmbedder::name() const {
  return "sim-charngram-" + std::to_string(dim_);
}

void CharNgramEmbedder::fit(const std::vector<text::Document>& docs) {
  (void)docs;  // stateless model
}

Vector CharNgramEmbedder::embed(std::string_view text) const {
  Vector v(dim_, 0.0f);
  for (const std::string& tok : text::tokens_of(text)) {
    // Boundary markers make prefixes/suffixes distinctive.
    const std::string padded = "^" + tok + "$";
    for (std::size_t n = lo_; n <= hi_ && n <= padded.size(); ++n) {
      for (std::size_t i = 0; i + n <= padded.size(); ++i) {
        const std::uint64_t h =
            pkb::util::fnv1a64(std::string_view(padded).substr(i, n)) ^
            (0x9e3779b97f4a7c15ULL * n);
        const std::size_t bucket = h % dim_;
        const float sign = ((h >> 32) & 1u) != 0 ? 1.0f : -1.0f;
        v[bucket] += sign;
      }
    }
  }
  l2_normalize(v);
  return v;
}

}  // namespace pkb::embed
