#pragma once
// TF-IDF embedding and the shared vocabulary/IDF statistics.

#include <string>
#include <unordered_map>
#include <vector>

#include "embed/embedder.h"

namespace pkb::embed {

/// Corpus vocabulary with document frequencies; shared by TfidfEmbedder and
/// LsaEmbedder and reused by the rerankers for IDF weighting.
class Vocabulary {
 public:
  /// Build from tokenized corpus documents. Tokens below `min_df` documents
  /// are dropped (noise control).
  void fit(const std::vector<text::Document>& docs, std::size_t min_df = 1);

  /// Number of terms.
  [[nodiscard]] std::size_t size() const { return terms_.size(); }

  /// Number of documents seen by fit().
  [[nodiscard]] std::size_t doc_count() const { return doc_count_; }

  /// Term id, or npos when unknown.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  [[nodiscard]] std::size_t id_of(const std::string& term) const;

  /// Smoothed inverse document frequency: log((1+N)/(1+df)) + 1.
  [[nodiscard]] float idf(std::size_t term_id) const;

  /// IDF by term (0 for unknown terms).
  [[nodiscard]] float idf_of(const std::string& term) const;

  /// The term string for an id.
  [[nodiscard]] const std::string& term(std::size_t id) const;

  /// Sparse TF-IDF of a text: (term_id, weight) pairs, L2-normalized.
  [[nodiscard]] std::vector<std::pair<std::size_t, float>> tfidf(
      std::string_view text) const;

 private:
  std::vector<std::string> terms_;
  std::vector<std::size_t> doc_freq_;
  std::unordered_map<std::string, std::size_t> index_;
  std::size_t doc_count_ = 0;
};

/// Dense TF-IDF embedding: dimension == vocabulary size.
class TfidfEmbedder final : public Embedder {
 public:
  /// `min_df`: minimum document frequency for vocabulary inclusion.
  explicit TfidfEmbedder(std::size_t min_df = 1) : min_df_(min_df) {}

  [[nodiscard]] std::string name() const override { return "sim-tfidf"; }
  [[nodiscard]] std::size_t dimension() const override {
    return vocab_.size();
  }
  void fit(const std::vector<text::Document>& docs) override;
  [[nodiscard]] Vector embed(std::string_view text) const override;

  /// The fitted vocabulary (valid after fit()).
  [[nodiscard]] const Vocabulary& vocabulary() const { return vocab_; }

 private:
  std::size_t min_df_;
  Vocabulary vocab_;
};

}  // namespace pkb::embed
