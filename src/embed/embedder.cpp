#include "embed/embedder.h"

#include <cmath>
#include <stdexcept>

#include "embed/blend.h"
#include "embed/hashing.h"
#include "embed/lsa.h"
#include "embed/tfidf.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "util/clock.h"
#include "util/strings.h"
#include "util/thread_pool.h"

namespace pkb::embed {

float dot(const Vector& a, const Vector& b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("dot: dimension mismatch");
  }
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += static_cast<double>(a[i]) * b[i];
  }
  return static_cast<float>(acc);
}

float norm(const Vector& v) {
  double acc = 0.0;
  for (float x : v) acc += static_cast<double>(x) * x;
  return static_cast<float>(std::sqrt(acc));
}

void l2_normalize(Vector& v) {
  const float n = norm(v);
  if (n <= 0.0f) return;
  const float inv = 1.0f / n;
  for (float& x : v) x *= inv;
}

float cosine(const Vector& a, const Vector& b) {
  const float na = norm(a);
  const float nb = norm(b);
  if (na <= 0.0f || nb <= 0.0f) return 0.0f;
  return dot(a, b) / (na * nb);
}

std::vector<Vector> Embedder::embed_batch(
    std::span<const text::Document> docs) const {
  pkb::util::Stopwatch watch;
  std::vector<Vector> out(docs.size());
  pkb::util::parallel_for(
      0, docs.size(), [&](std::size_t i) { out[i] = embed(docs[i].text); },
      /*min_block=*/4);
  obs::MetricsRegistry& metrics = obs::global_metrics();
  const obs::LabelSet model_label{{"model", name()}};
  metrics.counter(obs::kEmbedBatchDocsTotal, model_label).inc(docs.size());
  metrics.histogram(obs::kEmbedBatchSeconds, model_label)
      .observe(watch.seconds());
  return out;
}

namespace {

/// Parse the numeric suffix of "sim-lsa-64" style names; 0 when malformed.
std::size_t parse_suffix(std::string_view name, std::string_view prefix) {
  if (!name.starts_with(prefix)) return 0;
  const std::string_view digits = name.substr(prefix.size());
  if (digits.empty()) return 0;
  std::size_t value = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return 0;
    value = value * 10 + static_cast<std::size_t>(c - '0');
  }
  return value;
}

}  // namespace

std::unique_ptr<Embedder> make_embedder(std::string_view name) {
  if (name == "sim-tfidf") return std::make_unique<TfidfEmbedder>();
  // Paper-flavored aliases: "3-large" is the strongest semantic model of the
  // sweep (dense semantics + exact-term residual), "3-small" a
  // lower-capacity one, "ada" the legacy model.
  if (name == "sim-embed-3-large") {
    return std::make_unique<BlendEmbedder>(32, 256, 0.10);
  }
  if (name == "sim-embed-3-small") {
    return std::make_unique<BlendEmbedder>(16, 128, 0.2);
  }
  if (name == "sim-embed-ada") return std::make_unique<HashEmbedder>(256);
  if (name.starts_with("sim-blend-")) {
    // "sim-blend-<rank>-<dim>-w<pct>", e.g. "sim-blend-32-256-w25".
    const auto parts = pkb::util::split(name, '-');
    if (parts.size() == 5 && parts[4].size() > 1 && parts[4][0] == 'w') {
      auto to_num = [](std::string_view digits) -> std::size_t {
        std::size_t value = 0;
        for (char c : digits) {
          if (c < '0' || c > '9') return 0;
          value = value * 10 + static_cast<std::size_t>(c - '0');
        }
        return value;
      };
      const std::size_t rank = to_num(parts[2]);
      const std::size_t dim = to_num(parts[3]);
      const std::size_t pct = to_num(parts[4].substr(1));
      if (rank > 0 && dim > 0 && pct <= 100) {
        return std::make_unique<BlendEmbedder>(
            rank, dim, static_cast<double>(pct) / 100.0);
      }
    }
    throw std::invalid_argument("bad blend spec: " + std::string(name));
  }
  if (const std::size_t rank = parse_suffix(name, "sim-lsa-"); rank > 0) {
    return std::make_unique<LsaEmbedder>(rank);
  }
  if (const std::size_t dim = parse_suffix(name, "sim-hash-"); dim > 0) {
    return std::make_unique<HashEmbedder>(dim);
  }
  if (const std::size_t dim = parse_suffix(name, "sim-charngram-"); dim > 0) {
    return std::make_unique<CharNgramEmbedder>(dim);
  }
  throw std::invalid_argument("unknown embedder: " + std::string(name));
}

std::vector<std::string> embedder_registry() {
  return {"sim-tfidf",         "sim-hash-512",      "sim-hash-256",
          "sim-lsa-64",        "sim-lsa-128",       "sim-charngram-512",
          "sim-embed-3-large", "sim-embed-3-small", "sim-embed-ada"};
}

}  // namespace pkb::embed
