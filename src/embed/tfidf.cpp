#include "embed/tfidf.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

#include "text/tokenizer.h"

namespace pkb::embed {

void Vocabulary::fit(const std::vector<text::Document>& docs,
                     std::size_t min_df) {
  terms_.clear();
  doc_freq_.clear();
  index_.clear();
  doc_count_ = docs.size();

  std::unordered_map<std::string, std::size_t> df;
  for (const text::Document& doc : docs) {
    std::unordered_set<std::string> seen;
    for (std::string& tok : text::tokens_of(doc.text)) {
      seen.insert(std::move(tok));
    }
    for (const std::string& term : seen) ++df[term];
  }
  // Sort terms for bit-for-bit determinism of term ids across runs.
  std::vector<std::pair<std::string, std::size_t>> kept;
  kept.reserve(df.size());
  for (auto& [term, count] : df) {
    if (count >= min_df) kept.emplace_back(term, count);
  }
  std::sort(kept.begin(), kept.end());
  terms_.reserve(kept.size());
  doc_freq_.reserve(kept.size());
  for (auto& [term, count] : kept) {
    index_.emplace(term, terms_.size());
    terms_.push_back(term);
    doc_freq_.push_back(count);
  }
}

std::size_t Vocabulary::id_of(const std::string& term) const {
  auto it = index_.find(term);
  return it == index_.end() ? npos : it->second;
}

float Vocabulary::idf(std::size_t term_id) const {
  const double n = static_cast<double>(doc_count_);
  const double df = static_cast<double>(doc_freq_.at(term_id));
  return static_cast<float>(std::log((1.0 + n) / (1.0 + df)) + 1.0);
}

float Vocabulary::idf_of(const std::string& term) const {
  const std::size_t id = id_of(term);
  return id == npos ? 0.0f : idf(id);
}

const std::string& Vocabulary::term(std::size_t id) const {
  return terms_.at(id);
}

std::vector<std::pair<std::size_t, float>> Vocabulary::tfidf(
    std::string_view text) const {
  std::unordered_map<std::size_t, float> tf;
  for (const std::string& tok : text::tokens_of(text)) {
    const std::size_t id = id_of(tok);
    if (id != npos) tf[id] += 1.0f;
  }
  std::vector<std::pair<std::size_t, float>> out;
  out.reserve(tf.size());
  double norm_sq = 0.0;
  for (const auto& [id, count] : tf) {
    // Sublinear term frequency damps long documents.
    const float w = (1.0f + std::log(count)) * idf(id);
    out.emplace_back(id, w);
    norm_sq += static_cast<double>(w) * w;
  }
  if (norm_sq > 0.0) {
    const float inv = static_cast<float>(1.0 / std::sqrt(norm_sq));
    for (auto& [id, w] : out) w *= inv;
  }
  return out;
}

void TfidfEmbedder::fit(const std::vector<text::Document>& docs) {
  vocab_.fit(docs, min_df_);
}

Vector TfidfEmbedder::embed(std::string_view text) const {
  if (vocab_.size() == 0) {
    throw std::logic_error("TfidfEmbedder::embed called before fit()");
  }
  Vector v(vocab_.size(), 0.0f);
  for (const auto& [id, w] : vocab_.tfidf(text)) v[id] = w;
  return v;  // tfidf() already L2-normalizes
}

}  // namespace pkb::embed
