#pragma once
// Hashing-trick embedders: fixed-dimension bag-of-words and character
// n-grams. No fit() statistics required (dimension fixed at construction),
// which models embedding APIs that work out of the box.

#include "embed/embedder.h"

namespace pkb::embed {

/// Hashed bag-of-words with signed hashing (each term hashes to a bucket and
/// a +-1 sign, which unbiases collisions).
class HashEmbedder final : public Embedder {
 public:
  explicit HashEmbedder(std::size_t dim = 512);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::size_t dimension() const override { return dim_; }
  void fit(const std::vector<text::Document>& docs) override;
  [[nodiscard]] Vector embed(std::string_view text) const override;

 private:
  std::size_t dim_;
};

/// Hashed character n-grams (n in [lo, hi]) over the lowercased text with
/// word-boundary markers. Tolerant of typos and of API-symbol morphology
/// ("KSPGmres" ~ "KSPGMRES").
class CharNgramEmbedder final : public Embedder {
 public:
  CharNgramEmbedder(std::size_t dim = 512, std::size_t lo = 3,
                    std::size_t hi = 5);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::size_t dimension() const override { return dim_; }
  void fit(const std::vector<text::Document>& docs) override;
  [[nodiscard]] Vector embed(std::string_view text) const override;

 private:
  std::size_t dim_;
  std::size_t lo_;
  std::size_t hi_;
};

}  // namespace pkb::embed
