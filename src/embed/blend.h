#pragma once
// Blended embedding: a dense semantic component (LSA) concatenated with a
// scaled lexical component (hashed bag-of-words).
//
// This is the most faithful stand-in for a modern neural text embedding:
// strong topical similarity with a residual of exact-term signal. Cosine of
// the blend decomposes as (1-w)*cos_semantic + w*cos_lexical because both
// parts are unit-normalized before scaling.

#include "embed/hashing.h"
#include "embed/lsa.h"

namespace pkb::embed {

class BlendEmbedder final : public Embedder {
 public:
  /// `lexical_weight` w in [0,1]: 0 = pure LSA, 1 = pure hashed BoW.
  BlendEmbedder(std::size_t lsa_rank = 32, std::size_t hash_dim = 256,
                double lexical_weight = 0.25, std::uint64_t seed = 0xC0FFEE);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::size_t dimension() const override {
    return lsa_.dimension() + hash_.dimension();
  }
  void fit(const std::vector<text::Document>& docs) override;
  [[nodiscard]] Vector embed(std::string_view text) const override;

 private:
  LsaEmbedder lsa_;
  HashEmbedder hash_;
  double lexical_weight_;
};

}  // namespace pkb::embed
