#pragma once
// Deterministic, seed-driven fault injection — the chaos half of the
// resilience layer.
//
// A FaultPlan decides, for the n-th call on each pipeline stage, whether
// that call proceeds, errors (transient/permanent), times out, or takes a
// latency spike. Decisions are a pure function of (seed, stage, n), so a
// chaos test or bench that replays the same request stream against the same
// plan sees the same fault sequence — per stage, the *multiset* of outcomes
// is identical across runs even when concurrent workers race for ordinals.
// Tests that need call-exact schedules (the circuit-breaker transition
// tests) script the leading outcomes explicitly with script(); scripted
// entries are consumed in call order, after which the rate-driven draw
// resumes.
//
// Components consume the plan through consult(): it draws the decision,
// counts pkb_resilience_faults_injected_total{stage,kind}, throws the
// matching FaultError for error kinds, and returns the extra virtual
// seconds to charge for a latency spike. A null plan is a no-op, so
// instrumented components cost nothing when chaos is off.

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "resilience/fault.h"

namespace pkb::resilience {

/// Per-stage fault probabilities. Rates are evaluated in the order
/// transient, permanent, timeout, spike over one uniform draw, so their sum
/// must be <= 1; the remainder is the no-fault probability.
struct StageFaultSpec {
  double transient_rate = 0.0;
  double permanent_rate = 0.0;
  double timeout_rate = 0.0;
  double spike_rate = 0.0;
  /// Extra virtual seconds a LatencySpike adds to the stage's latency.
  double spike_seconds = 5.0;
};

struct FaultPlanOptions {
  std::uint64_t seed = 1;
  StageFaultSpec vector_search;
  StageFaultSpec rerank;
  StageFaultSpec llm;
  StageFaultSpec ingest;
};

/// What one stage call should do.
struct FaultDecision {
  FaultKind kind = FaultKind::None;
  double extra_latency_seconds = 0.0;  ///< nonzero only for LatencySpike
};

class FaultPlan {
 public:
  explicit FaultPlan(FaultPlanOptions opts = {});

  /// Pin the outcome of the first `outcomes.size()` calls on `stage`
  /// (consumed in call order); later calls fall back to the rate draw.
  /// Setup-time only: must not race decide().
  void script(Stage stage, std::vector<FaultKind> outcomes);

  /// Decision for the next call on `stage`. Thread-safe; deterministic in
  /// the per-stage call ordinal.
  [[nodiscard]] FaultDecision decide(Stage stage) const;

  /// Monotonic per-stage outcome counts (for tests and the chaos bench).
  struct StageCounts {
    std::uint64_t calls = 0;
    std::uint64_t transient = 0;
    std::uint64_t permanent = 0;
    std::uint64_t timeout = 0;
    std::uint64_t spike = 0;
    [[nodiscard]] std::uint64_t faults() const {
      return transient + permanent + timeout + spike;
    }
  };
  [[nodiscard]] StageCounts counts(Stage stage) const;

  [[nodiscard]] const FaultPlanOptions& options() const { return opts_; }
  [[nodiscard]] const StageFaultSpec& spec(Stage stage) const;

 private:
  struct StageState {
    std::atomic<std::uint64_t> seq{0};
    std::atomic<std::uint64_t> transient{0};
    std::atomic<std::uint64_t> permanent{0};
    std::atomic<std::uint64_t> timeout{0};
    std::atomic<std::uint64_t> spike{0};
  };

  FaultPlanOptions opts_;
  std::array<std::vector<FaultKind>, kStageCount> script_;
  mutable std::array<StageState, kStageCount> state_;
};

/// Consult `plan` (nullable) for one call on `stage`: throws
/// TransientError / PermanentError / TimeoutError for error decisions,
/// returns the extra virtual seconds to charge for a LatencySpike (0
/// otherwise), and counts every injected fault under
/// pkb_resilience_faults_injected_total{stage,kind}.
double consult(const FaultPlan* plan, Stage stage);

}  // namespace pkb::resilience
