#include "resilience/resilience.h"

namespace pkb::resilience {

std::string_view to_string(DegradationLevel level) {
  switch (level) {
    case DegradationLevel::Full:
      return "full";
    case DegradationLevel::Unreranked:
      return "unreranked";
    case DegradationLevel::NoRetrieval:
      return "no_retrieval";
    case DegradationLevel::Extractive:
      return "extractive";
    case DegradationLevel::Unavailable:
      return "unavailable";
  }
  return "?";
}

Resilience::Resilience(ResilienceOptions opts, Clock clock)
    : opts_(opts), breaker_(opts.breaker, std::move(clock)) {}

RequestContext Resilience::make_context() {
  RequestContext ctx;
  ctx.engine = this;
  ctx.budget = DeadlineBudget(opts_.request_deadline_seconds);
  const std::uint64_t n =
      next_ordinal_.fetch_add(1, std::memory_order_relaxed);
  ctx.jitter_seed = opts_.seed ^ (n * 0xd1342543de82ef95ULL);
  return ctx;
}

}  // namespace pkb::resilience
