#pragma once
// The per-request resilience contract threaded through the Fig-3 pipeline:
// serve::Server mints a RequestContext from the shared Resilience engine and
// hands it down through rag::AugmentedWorkflow to the retriever, reranker,
// and LLM stages. Stages charge the context's deadline budget, consult the
// shared circuit breaker, and record how far down the degradation ladder
// the request fell. The engine itself owns only cross-request state (the
// breaker and the request ordinal counter); everything per-request lives in
// the context, so contexts need no locking.

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

#include "resilience/policy.h"

namespace pkb::resilience {

/// How much of the full pipeline a response reflects. Levels are ordered:
/// a request's final level is the worst (highest) level any stage recorded.
enum class DegradationLevel : int {
  Full = 0,         ///< full retrieve -> rerank -> LLM pipeline
  Unreranked = 1,   ///< reranker failed/timed out; first-pass order served
  NoRetrieval = 2,  ///< retrieval failed entirely; parametric-only answer
  Extractive = 3,   ///< LLM failed/breaker open; stitched from top contexts
  Unavailable = 4,  ///< nothing usable; apologetic stub answer
};

[[nodiscard]] std::string_view to_string(DegradationLevel level);

struct ResilienceOptions {
  /// Virtual-seconds deadline for one request; <= 0 disables deadlines.
  double request_deadline_seconds = 60.0;
  /// Retry policy for transient LLM failures.
  RetryPolicy llm_retry;
  /// Breaker around the LLM stage (shared across workers).
  CircuitBreaker::Options breaker;
  /// Max hedged re-attempts for a failed vector search.
  std::uint32_t search_hedges = 1;
  /// Virtual cost charged for composing an extractive fallback answer.
  double extractive_latency_seconds = 0.05;
  /// Seed for deterministic backoff jitter (mixed with request ordinal).
  std::uint64_t seed = 1;
};

class Resilience;

/// Per-request resilience state. Created by Resilience::make_context(),
/// owned and mutated by exactly one request — no locking (the engine
/// pointer leads back to the shared, internally-synchronized state).
struct RequestContext {
  /// The engine that minted this context (breaker + policy options);
  /// non-owning, must outlive the request.
  Resilience* engine = nullptr;
  DeadlineBudget budget;
  /// Seed for this request's backoff jitter (derived from engine seed and
  /// request ordinal, so concurrent requests draw decorrelated jitter).
  std::uint64_t jitter_seed = 0;

  DegradationLevel level = DegradationLevel::Full;
  std::uint32_t llm_attempts = 0;
  std::uint32_t retries = 0;
  std::uint32_t hedges = 0;
  bool breaker_short_circuit = false;
  bool deadline_exceeded = false;

  /// Ladder moves are one-way: record `to` only if it is worse than the
  /// current level.
  void degrade(DegradationLevel to) {
    if (static_cast<int>(to) > static_cast<int>(level)) level = to;
  }
  [[nodiscard]] bool degraded() const {
    return level != DegradationLevel::Full;
  }
};

/// Cross-request resilience state shared by all serving workers: the LLM
/// circuit breaker, the request ordinal counter, and the policy options.
/// Thread-safe.
class Resilience {
 public:
  /// `clock` feeds the breaker's open-state cooldown; defaults to real
  /// monotonic time (tests pass a SimClock-backed callable).
  explicit Resilience(ResilienceOptions opts = {}, Clock clock = {});

  /// A fresh context carrying a full deadline budget and a per-request
  /// jitter seed.
  [[nodiscard]] RequestContext make_context();

  [[nodiscard]] CircuitBreaker& breaker() { return breaker_; }
  [[nodiscard]] const ResilienceOptions& options() const { return opts_; }

 private:
  ResilienceOptions opts_;
  CircuitBreaker breaker_;
  std::atomic<std::uint64_t> next_ordinal_{0};
};

}  // namespace pkb::resilience
