#pragma once
// Resilience policies: per-request deadline budgets, bounded retries with
// exponential backoff + deterministic jitter, and a circuit breaker.
//
// Deadlines are *virtual*: a request carries a budget in pipeline seconds
// and every stage charges what it consumed — real wall time for the stages
// we genuinely execute (retrieval, reranking), simulated latency for the
// LLM stage, and backoff waits for retries. A stage whose cost would exceed
// the remaining budget is abandoned (the budget is exhausted and the
// degradation ladder takes over), so a request can never "hang" past its
// deadline no matter what the fault plan injects — and tests assert that
// invariant without a single real-time sleep (the SimClock wait hooks in
// util/clock.h cover the cases that do need cross-thread time).
//
// The circuit breaker takes its cooldown clock as an injectable callable so
// tests drive open->half-open transitions off a SimClock deterministically.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <mutex>
#include <vector>

namespace pkb::resilience {

/// Monotonic seconds for breaker cooldowns; injectable for tests.
using Clock = std::function<double()>;

/// Default real-time clock (steady_clock seconds).
[[nodiscard]] double mono_seconds();

/// A request's virtual-seconds deadline budget. Not thread-safe: owned by
/// exactly one request.
class DeadlineBudget {
 public:
  /// Unlimited budget.
  DeadlineBudget() = default;
  /// `budget_seconds` <= 0 means unlimited.
  explicit DeadlineBudget(double budget_seconds);

  [[nodiscard]] bool unlimited() const { return budget_ <= 0.0; }
  [[nodiscard]] double budget_seconds() const { return budget_; }
  [[nodiscard]] double spent_seconds() const { return spent_; }
  [[nodiscard]] double remaining_seconds() const {
    if (unlimited()) return std::numeric_limits<double>::infinity();
    return budget_ > spent_ ? budget_ - spent_ : 0.0;
  }
  [[nodiscard]] bool exhausted() const {
    return !unlimited() && spent_ >= budget_;
  }

  /// Charge `seconds` (clamped to the remaining budget: callers check
  /// affordability *before* taking a cost, so an overrun can only be the
  /// final abandoned stage, which by definition consumed the rest).
  void charge(double seconds);

  /// Timeout semantics: the in-flight stage would not have returned before
  /// the deadline, so the whole remainder is gone.
  void exhaust();

 private:
  double budget_ = 0.0;  ///< <= 0 = unlimited
  double spent_ = 0.0;
};

/// Bounded retries with exponential backoff and deterministic jitter.
struct RetryPolicy {
  /// Total attempts including the first; 1 disables retries.
  std::uint32_t max_attempts = 3;
  double base_backoff_seconds = 0.25;
  double multiplier = 2.0;
  double max_backoff_seconds = 5.0;
  /// Multiplicative jitter fraction: the wait is scaled by a deterministic
  /// factor in [1 - jitter, 1 + jitter] drawn from (seed, retry).
  double jitter = 0.2;

  /// Backoff before the `retry`-th retry (1-based). Deterministic given
  /// (policy, seed, retry); charged to the deadline budget, never slept.
  [[nodiscard]] double backoff_seconds(std::uint32_t retry,
                                       std::uint64_t seed) const;
};

/// Classic closed / open / half-open circuit breaker over a sliding outcome
/// window. Thread-safe: one breaker is shared by every serving worker.
///
///   Closed    — calls pass; outcomes fill a ring of the last `window`
///               results. Failure rate >= `failure_threshold` over at least
///               `min_samples` outcomes trips to Open.
///   Open      — allow() fails fast until `open_seconds` of clock time have
///               passed, then the next allow() moves to HalfOpen.
///   HalfOpen  — up to `half_open_probes` calls pass; any failure re-opens
///               (re-arming the cooldown), `half_open_probes` successes
///               close and reset the window.
///
/// Transitions are observable: pkb_resilience_breaker_transitions_total{to}
/// counters, the pkb_resilience_breaker_state gauge (0 closed / 1 open /
/// 2 half-open), and a breaker_state span per transition.
struct BreakerOptions {
  std::size_t window = 32;
  std::size_t min_samples = 8;
  double failure_threshold = 0.5;
  double open_seconds = 30.0;
  std::size_t half_open_probes = 2;
};

class CircuitBreaker {
 public:
  enum class State : int { Closed = 0, Open = 1, HalfOpen = 2 };

  using Options = BreakerOptions;

  explicit CircuitBreaker(Options opts = {}, Clock clock = {});

  /// May this call proceed? Open -> HalfOpen happens lazily here once the
  /// cooldown has elapsed. A rejected call counts
  /// pkb_resilience_breaker_short_circuits_total.
  [[nodiscard]] bool allow();

  void record_success();
  void record_failure();

  /// Raw state: cooldown expiry is only realized by the next allow().
  [[nodiscard]] State state() const;

 private:
  void transition_locked(State to);
  void push_outcome_locked(bool failure);

  Options opts_;
  Clock clock_;
  mutable std::mutex mu_;
  State state_ = State::Closed;
  std::vector<char> ring_;   ///< 1 = failure
  std::size_t ring_next_ = 0;
  std::size_t count_ = 0;    ///< outcomes recorded (<= window)
  std::size_t failures_ = 0;
  double open_until_ = 0.0;
  std::size_t probes_allowed_ = 0;
  std::size_t probe_successes_ = 0;
};

[[nodiscard]] std::string_view to_string(CircuitBreaker::State state);

}  // namespace pkb::resilience
