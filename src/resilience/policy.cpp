#include "resilience/policy.h"

#include <algorithm>
#include <chrono>
#include <string>

#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/rng.h"

namespace pkb::resilience {

double mono_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

DeadlineBudget::DeadlineBudget(double budget_seconds)
    : budget_(budget_seconds > 0.0 ? budget_seconds : 0.0) {}

void DeadlineBudget::charge(double seconds) {
  if (seconds <= 0.0) return;
  if (unlimited()) {
    spent_ += seconds;
    return;
  }
  spent_ = std::min(budget_, spent_ + seconds);
}

void DeadlineBudget::exhaust() {
  if (unlimited()) return;
  spent_ = budget_;
}

double RetryPolicy::backoff_seconds(std::uint32_t retry,
                                    std::uint64_t seed) const {
  if (retry == 0) return 0.0;
  double wait = base_backoff_seconds;
  for (std::uint32_t i = 1; i < retry; ++i) {
    wait *= multiplier;
    if (wait >= max_backoff_seconds) break;
  }
  wait = std::min(wait, max_backoff_seconds);
  if (jitter > 0.0) {
    pkb::util::Rng rng(seed ^ (static_cast<std::uint64_t>(retry) *
                               0x94d049bb133111ebULL));
    wait *= 1.0 + jitter * (2.0 * rng.uniform() - 1.0);
  }
  return wait;
}

std::string_view to_string(CircuitBreaker::State state) {
  switch (state) {
    case CircuitBreaker::State::Closed:
      return "closed";
    case CircuitBreaker::State::Open:
      return "open";
    case CircuitBreaker::State::HalfOpen:
      return "half_open";
  }
  return "?";
}

CircuitBreaker::CircuitBreaker(Options opts, Clock clock)
    : opts_(opts), clock_(clock ? std::move(clock) : Clock(&mono_seconds)) {
  opts_.window = std::max<std::size_t>(1, opts_.window);
  opts_.min_samples = std::max<std::size_t>(1, opts_.min_samples);
  opts_.half_open_probes = std::max<std::size_t>(1, opts_.half_open_probes);
  ring_.assign(opts_.window, 0);
  obs::global_metrics().gauge(obs::kResilienceBreakerState).set(0.0);
}

bool CircuitBreaker::allow() {
  std::lock_guard<std::mutex> lk(mu_);
  switch (state_) {
    case State::Closed:
      return true;
    case State::Open:
      if (clock_() >= open_until_) {
        transition_locked(State::HalfOpen);
        --probes_allowed_;
        return true;
      }
      obs::global_metrics()
          .counter(obs::kResilienceBreakerShortCircuitsTotal)
          .inc();
      return false;
    case State::HalfOpen:
      if (probes_allowed_ > 0) {
        --probes_allowed_;
        return true;
      }
      obs::global_metrics()
          .counter(obs::kResilienceBreakerShortCircuitsTotal)
          .inc();
      return false;
  }
  return true;
}

void CircuitBreaker::record_success() {
  std::lock_guard<std::mutex> lk(mu_);
  if (state_ == State::HalfOpen) {
    if (++probe_successes_ >= opts_.half_open_probes) {
      transition_locked(State::Closed);
    }
    return;
  }
  push_outcome_locked(false);
}

void CircuitBreaker::record_failure() {
  std::lock_guard<std::mutex> lk(mu_);
  if (state_ == State::HalfOpen) {
    transition_locked(State::Open);
    return;
  }
  if (state_ == State::Open) return;
  push_outcome_locked(true);
  if (count_ >= opts_.min_samples &&
      static_cast<double>(failures_) >=
          opts_.failure_threshold * static_cast<double>(count_)) {
    transition_locked(State::Open);
  }
}

CircuitBreaker::State CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lk(mu_);
  return state_;
}

void CircuitBreaker::push_outcome_locked(bool failure) {
  if (count_ == opts_.window) {
    failures_ -= static_cast<std::size_t>(ring_[ring_next_]);
  } else {
    ++count_;
  }
  ring_[ring_next_] = failure ? 1 : 0;
  if (failure) ++failures_;
  ring_next_ = (ring_next_ + 1) % opts_.window;
}

void CircuitBreaker::transition_locked(State to) {
  const State from = state_;
  state_ = to;
  switch (to) {
    case State::Open:
      open_until_ = clock_() + opts_.open_seconds;
      break;
    case State::HalfOpen:
      probes_allowed_ = opts_.half_open_probes;
      probe_successes_ = 0;
      break;
    case State::Closed:
      std::fill(ring_.begin(), ring_.end(), 0);
      ring_next_ = 0;
      count_ = 0;
      failures_ = 0;
      break;
  }
  auto& m = obs::global_metrics();
  m.counter(obs::kResilienceBreakerTransitionsTotal,
            {{"to", std::string(to_string(to))}})
      .inc();
  m.gauge(obs::kResilienceBreakerState).set(static_cast<double>(to));
  obs::Span span(obs::global_tracer(), obs::kSpanBreakerState);
  span.set_attr("from", to_string(from));
  span.set_attr("to", to_string(to));
}

}  // namespace pkb::resilience
