#pragma once
// The fault model of the serving pipeline: which stages can fail, how they
// can fail, and the exception types a failing stage surfaces. The paper's
// deployment (§III-E) is a long-running user-facing service whose latency is
// dominated by the LLM stage (Table II); production traffic will see every
// one of these failure shapes, so the simulation models them explicitly —
// deterministically, via resilience::FaultPlan (fault_plan.h).

#include <stdexcept>
#include <string>
#include <string_view>

namespace pkb::resilience {

/// Pipeline stages that can have faults injected. The numeric values index
/// the FaultPlan's per-stage state, so they are stable.
enum class Stage : int {
  VectorSearch = 0,  ///< first-pass embedding search (vectordb)
  Rerank = 1,        ///< second-pass reranking (rerank)
  Llm = 2,           ///< the (simulated) LLM completion (llm)
  Ingest = 3,        ///< a knowledge-base generation build (ingest)
};
inline constexpr int kStageCount = 4;

[[nodiscard]] std::string_view to_string(Stage stage);

/// How one stage call misbehaves.
enum class FaultKind : int {
  None = 0,          ///< the call proceeds normally
  Transient = 1,     ///< retryable error (network blip, 429, …)
  Permanent = 2,     ///< non-retryable error (bad request, quota revoked)
  Timeout = 3,       ///< the call never returns before any deadline
  LatencySpike = 4,  ///< the call succeeds but takes extra (virtual) seconds
};

[[nodiscard]] std::string_view to_string(FaultKind kind);

/// Base class of every injected (or deadline-derived) stage failure. The
/// resilience policies dispatch on the concrete type: Transient retries,
/// Permanent does not, Timeout consumes the remaining deadline budget.
class FaultError : public std::runtime_error {
 public:
  FaultError(Stage stage, const std::string& what)
      : std::runtime_error(what), stage_(stage) {}
  [[nodiscard]] Stage stage() const { return stage_; }

 private:
  Stage stage_;
};

class TransientError : public FaultError {
 public:
  using FaultError::FaultError;
};

class PermanentError : public FaultError {
 public:
  using FaultError::FaultError;
};

class TimeoutError : public FaultError {
 public:
  using FaultError::FaultError;
};

}  // namespace pkb::resilience
