#include "resilience/fault_plan.h"

#include <string>

#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "util/rng.h"

namespace pkb::resilience {

std::string_view to_string(Stage stage) {
  switch (stage) {
    case Stage::VectorSearch:
      return "vector_search";
    case Stage::Rerank:
      return "rerank";
    case Stage::Llm:
      return "llm";
    case Stage::Ingest:
      return "ingest";
  }
  return "?";
}

std::string_view to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::None:
      return "none";
    case FaultKind::Transient:
      return "transient";
    case FaultKind::Permanent:
      return "permanent";
    case FaultKind::Timeout:
      return "timeout";
    case FaultKind::LatencySpike:
      return "latency_spike";
  }
  return "?";
}

FaultPlan::FaultPlan(FaultPlanOptions opts) : opts_(opts) {}

const StageFaultSpec& FaultPlan::spec(Stage stage) const {
  switch (stage) {
    case Stage::VectorSearch:
      return opts_.vector_search;
    case Stage::Rerank:
      return opts_.rerank;
    case Stage::Llm:
      return opts_.llm;
    case Stage::Ingest:
      return opts_.ingest;
  }
  return opts_.llm;  // unreachable
}

void FaultPlan::script(Stage stage, std::vector<FaultKind> outcomes) {
  script_[static_cast<int>(stage)] = std::move(outcomes);
}

FaultDecision FaultPlan::decide(Stage stage) const {
  const int s = static_cast<int>(stage);
  StageState& st = state_[s];
  const std::uint64_t n = st.seq.fetch_add(1, std::memory_order_relaxed);

  FaultDecision d;
  const StageFaultSpec& spec = this->spec(stage);
  if (n < script_[s].size()) {
    d.kind = script_[s][n];
  } else {
    // One uniform draw, fully determined by (seed, stage, ordinal): mix the
    // three through SplitMix64 (the Rng constructor) so nearby ordinals are
    // uncorrelated.
    pkb::util::Rng rng(opts_.seed ^ (static_cast<std::uint64_t>(s + 1) *
                                     0x9e3779b97f4a7c15ULL) ^
                       (n * 0xbf58476d1ce4e5b9ULL));
    const double u = rng.uniform();
    double edge = spec.transient_rate;
    if (u < edge) {
      d.kind = FaultKind::Transient;
    } else if (u < (edge += spec.permanent_rate)) {
      d.kind = FaultKind::Permanent;
    } else if (u < (edge += spec.timeout_rate)) {
      d.kind = FaultKind::Timeout;
    } else if (u < (edge += spec.spike_rate)) {
      d.kind = FaultKind::LatencySpike;
    }
  }
  switch (d.kind) {
    case FaultKind::None:
      break;
    case FaultKind::Transient:
      st.transient.fetch_add(1, std::memory_order_relaxed);
      break;
    case FaultKind::Permanent:
      st.permanent.fetch_add(1, std::memory_order_relaxed);
      break;
    case FaultKind::Timeout:
      st.timeout.fetch_add(1, std::memory_order_relaxed);
      break;
    case FaultKind::LatencySpike:
      st.spike.fetch_add(1, std::memory_order_relaxed);
      d.extra_latency_seconds = spec.spike_seconds;
      break;
  }
  return d;
}

FaultPlan::StageCounts FaultPlan::counts(Stage stage) const {
  const StageState& st = state_[static_cast<int>(stage)];
  StageCounts c;
  c.calls = st.seq.load(std::memory_order_relaxed);
  c.transient = st.transient.load(std::memory_order_relaxed);
  c.permanent = st.permanent.load(std::memory_order_relaxed);
  c.timeout = st.timeout.load(std::memory_order_relaxed);
  c.spike = st.spike.load(std::memory_order_relaxed);
  return c;
}

double consult(const FaultPlan* plan, Stage stage) {
  if (plan == nullptr) return 0.0;
  const FaultDecision d = plan->decide(stage);
  if (d.kind == FaultKind::None) return 0.0;

  obs::global_metrics()
      .counter(obs::kResilienceFaultsInjectedTotal,
               {{"stage", std::string(to_string(stage))},
                {"kind", std::string(to_string(d.kind))}})
      .inc();
  const std::string what = "injected " + std::string(to_string(d.kind)) +
                           " fault on stage " +
                           std::string(to_string(stage));
  switch (d.kind) {
    case FaultKind::Transient:
      throw TransientError(stage, what);
    case FaultKind::Permanent:
      throw PermanentError(stage, what);
    case FaultKind::Timeout:
      throw TimeoutError(stage, what);
    case FaultKind::LatencySpike:
      return d.extra_latency_seconds;
    case FaultKind::None:
      break;
  }
  return 0.0;
}

}  // namespace pkb::resilience
