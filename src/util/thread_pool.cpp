#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>

namespace pkb::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> wrapped(std::move(task));
  std::future<void> fut = wrapped.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push(std::move(wrapped));
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::worker_loop() {
  while (true) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();  // packaged_task captures exceptions into the future
  }
}

ThreadPool& global_pool() {
  static ThreadPool pool;
  return pool;
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t min_block) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  ThreadPool& pool = global_pool();
  const std::size_t max_chunks = pool.size() + 1;
  const std::size_t block =
      std::max(min_block, (n + max_chunks - 1) / max_chunks);
  if (n <= block || pool.size() == 1) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }

  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex err_mu;

  auto run_block = [&](std::size_t lo, std::size_t hi) {
    try {
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(err_mu);
      if (!failed.exchange(true)) first_error = std::current_exception();
    }
  };

  std::vector<std::future<void>> futures;
  std::size_t lo = begin + block;  // first block runs on the calling thread
  while (lo < end) {
    const std::size_t hi = std::min(end, lo + block);
    futures.push_back(pool.submit([=] { run_block(lo, hi); }));
    lo = hi;
  }
  run_block(begin, std::min(end, begin + block));
  for (auto& f : futures) f.get();
  if (failed.load()) std::rethrow_exception(first_error);
}

}  // namespace pkb::util
