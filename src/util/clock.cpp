#include "util/clock.h"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace pkb::util {

void SimClock::advance(double seconds) {
  if (seconds < 0.0) {
    throw std::invalid_argument("SimClock::advance: negative duration");
  }
  // CAS loop: fetch_add on atomic<double> needs libstdc++ opt-in; this is
  // equivalent and portable.
  double cur = now_.load(std::memory_order_relaxed);
  while (!now_.compare_exchange_weak(cur, cur + seconds,
                                     std::memory_order_relaxed)) {
  }
}

void SimClock::advance_to(double abs_seconds) {
  double cur = now_.load(std::memory_order_relaxed);
  while (cur < abs_seconds &&
         !now_.compare_exchange_weak(cur, abs_seconds,
                                     std::memory_order_relaxed)) {
  }
}

std::string SimClock::timestamp() const { return format(now()); }

std::string SimClock::format(double abs_seconds) {
  const double s = std::max(0.0, abs_seconds);
  const auto total = static_cast<std::uint64_t>(s);
  const std::uint64_t day = total / 86400;
  const std::uint64_t hh = (total % 86400) / 3600;
  const std::uint64_t mm = (total % 3600) / 60;
  const std::uint64_t ss = total % 60;
  char buf[48];
  std::snprintf(buf, sizeof buf, "day %llu %02llu:%02llu:%02llu",
                static_cast<unsigned long long>(day),
                static_cast<unsigned long long>(hh),
                static_cast<unsigned long long>(mm),
                static_cast<unsigned long long>(ss));
  return buf;
}

}  // namespace pkb::util
