#include "util/clock.h"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace pkb::util {

void SimClock::advance(double seconds) {
  if (seconds < 0.0) {
    throw std::invalid_argument("SimClock::advance: negative duration");
  }
  {
    std::lock_guard<std::mutex> lk(wait_mu_);
    // CAS loop: fetch_add on atomic<double> needs libstdc++ opt-in; this is
    // equivalent and portable. now_ stays atomic so now() readers skip the
    // mutex; the lock here pairs with wait_until's predicate check.
    double cur = now_.load(std::memory_order_relaxed);
    while (!now_.compare_exchange_weak(cur, cur + seconds,
                                       std::memory_order_relaxed)) {
    }
  }
  wait_cv_.notify_all();
}

void SimClock::advance_to(double abs_seconds) {
  bool moved = false;
  {
    std::lock_guard<std::mutex> lk(wait_mu_);
    double cur = now_.load(std::memory_order_relaxed);
    while (cur < abs_seconds) {
      if (now_.compare_exchange_weak(cur, abs_seconds,
                                     std::memory_order_relaxed)) {
        moved = true;
        break;
      }
    }
  }
  if (moved) wait_cv_.notify_all();
}

bool SimClock::wait_until(double abs_seconds, double real_timeout_seconds) {
  std::unique_lock<std::mutex> lk(wait_mu_);
  return wait_cv_.wait_for(
      lk, std::chrono::duration<double>(real_timeout_seconds),
      [&] { return now_.load(std::memory_order_relaxed) >= abs_seconds; });
}

bool SimClock::wait_for(double seconds, double real_timeout_seconds) {
  return wait_until(now() + seconds, real_timeout_seconds);
}

std::string SimClock::timestamp() const { return format(now()); }

std::string SimClock::format(double abs_seconds) {
  const double s = std::max(0.0, abs_seconds);
  const auto total = static_cast<std::uint64_t>(s);
  const std::uint64_t day = total / 86400;
  const std::uint64_t hh = (total % 86400) / 3600;
  const std::uint64_t mm = (total % 3600) / 60;
  const std::uint64_t ss = total % 60;
  char buf[48];
  std::snprintf(buf, sizeof buf, "day %llu %02llu:%02llu:%02llu",
                static_cast<unsigned long long>(day),
                static_cast<unsigned long long>(hh),
                static_cast<unsigned long long>(mm),
                static_cast<unsigned long long>(ss));
  return buf;
}

}  // namespace pkb::util
