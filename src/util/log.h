#pragma once
// Leveled logging to stderr.
//
// Default level is Warn so tests stay quiet; examples raise it to Info to
// narrate workflows. Thread-safe: the level is an atomic and emission takes a
// single mutex, so interleaved messages never tear.
//
// Logging vs. metrics (src/obs/): logs are for humans reading a narrative of
// one run ("built 188 chunks"); metrics are for aggregation across many
// requests (counters, latency histograms). Instrumented code uses both — a
// PKB_LOG line where a person would want to watch, an obs:: counter or
// histogram where a dashboard would. Never parse log text to compute a
// number; record it in the metrics registry instead (docs/OBSERVABILITY.md).
//
// Disabled statements are free: PKB_LOG(Trace, "hot") << expensive() checks
// the level before constructing the stream buffer, so `expensive()` and all
// formatting are skipped when Trace is below the threshold.
//
// Usage:
//   PKB_LOG(Info, "rag") << "built " << n << " chunks";
//   set_log_level(LogLevel::Debug);   // widen for a noisy section

#include <optional>
#include <sstream>
#include <string>
#include <string_view>

namespace pkb::util {

enum class LogLevel { Trace = 0, Debug, Info, Warn, Error, Off };

/// Current global threshold; messages below it are discarded.
[[nodiscard]] LogLevel log_level();

/// Set the global threshold.
void set_log_level(LogLevel level);

/// Would a message at `level` be emitted right now? Cheap (one relaxed
/// atomic load) — this is the hot-path short-circuit.
[[nodiscard]] inline bool log_enabled(LogLevel level) {
  const LogLevel threshold = log_level();
  return level >= threshold && threshold != LogLevel::Off;
}

/// Emit one message at `level` from component `tag`.
void log_message(LogLevel level, std::string_view tag, std::string_view msg);

/// Stream-style helper: PKB_LOG(Info, "rag") << "built " << n << " chunks";
///
/// The level check happens once, at construction. When the statement is
/// below the threshold no ostringstream is ever created and operator<<
/// never formats its argument, so disabled logging costs one atomic load.
class LogStream {
 public:
  LogStream(LogLevel level, std::string_view tag)
      : level_(level), tag_(tag) {
    if (log_enabled(level_)) buf_.emplace();
  }
  ~LogStream() {
    if (buf_.has_value()) log_message(level_, tag_, buf_->str());
  }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& v) {
    if (buf_.has_value()) *buf_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string tag_;
  std::optional<std::ostringstream> buf_;
};

}  // namespace pkb::util

#define PKB_LOG(level, tag) \
  ::pkb::util::LogStream(::pkb::util::LogLevel::level, (tag))
