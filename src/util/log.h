#pragma once
// Leveled logging to stderr.
//
// Default level is Warn so tests stay quiet; examples raise it to Info to
// narrate workflows. Thread-safe (a single mutex around emission).

#include <sstream>
#include <string>
#include <string_view>

namespace pkb::util {

enum class LogLevel { Trace = 0, Debug, Info, Warn, Error, Off };

/// Current global threshold; messages below it are discarded.
[[nodiscard]] LogLevel log_level();

/// Set the global threshold.
void set_log_level(LogLevel level);

/// Emit one message at `level` from component `tag`.
void log_message(LogLevel level, std::string_view tag, std::string_view msg);

/// Stream-style helper: PKB_LOG(Info, "rag") << "built " << n << " chunks";
class LogStream {
 public:
  LogStream(LogLevel level, std::string_view tag) : level_(level), tag_(tag) {}
  ~LogStream() { log_message(level_, tag_, stream_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string tag_;
  std::ostringstream stream_;
};

}  // namespace pkb::util

#define PKB_LOG(level, tag) \
  ::pkb::util::LogStream(::pkb::util::LogLevel::level, (tag))
