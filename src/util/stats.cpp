#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "util/strings.h"

namespace pkb::util {

void Summary::add(double x) {
  samples_.push_back(x);
  sum_ += x;
  sum_sq_ += x * x;
}

double Summary::min() const {
  if (samples_.empty()) return 0.0;
  return *std::min_element(samples_.begin(), samples_.end());
}

double Summary::max() const {
  if (samples_.empty()) return 0.0;
  return *std::max_element(samples_.begin(), samples_.end());
}

double Summary::mean() const {
  if (samples_.empty()) return 0.0;
  return sum_ / static_cast<double>(samples_.size());
}

double Summary::stddev() const {
  const auto n = static_cast<double>(samples_.size());
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  const double var = (sum_sq_ - n * m * m) / (n - 1.0);
  return var > 0.0 ? std::sqrt(var) : 0.0;
}

double Summary::percentile(double q) const {
  if (samples_.empty()) return 0.0;
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  const double clamped = std::clamp(q, 0.0, 100.0);
  const double rank = clamped / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - std::floor(rank);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

std::string Summary::min_max_avg(int digits) const {
  return format_double(min(), digits) + " / " + format_double(max(), digits) +
         " / " + format_double(mean(), digits);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (!(hi > lo) || bins == 0) {
    throw std::invalid_argument("Histogram: need hi > lo and bins > 0");
  }
}

void Histogram::add(double x) {
  const double t = (x - lo_) / (hi_ - lo_);
  auto bin = static_cast<std::ptrdiff_t>(
      std::floor(t * static_cast<double>(counts_.size())));
  bin = std::clamp<std::ptrdiff_t>(
      bin, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

std::size_t Histogram::count(std::size_t bin) const {
  if (bin >= counts_.size()) throw std::out_of_range("Histogram::count");
  return counts_[bin];
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

std::string Histogram::render(std::size_t width) const {
  const std::size_t peak =
      counts_.empty()
          ? 0
          : *std::max_element(counts_.begin(), counts_.end());
  std::string out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    char label[32];
    std::snprintf(label, sizeof label, "%8.2f | ", bin_lo(i));
    out += label;
    const std::size_t bar =
        peak == 0 ? 0 : counts_[i] * width / std::max<std::size_t>(peak, 1);
    out.append(bar, '#');
    out += "  (" + std::to_string(counts_[i]) + ")\n";
  }
  return out;
}

}  // namespace pkb::util
