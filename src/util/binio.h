#pragma once
// Checked little-endian binary I/O shared by the persistence code
// (vectordb/vector_store.cpp, rag/knowledge_base.cpp). Every read validates
// the stream state and throws std::runtime_error naming the field that
// failed, so a truncated or corrupt file surfaces as a clear error instead
// of a garbage in-memory structure.

#include <cstdint>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>
#include <vector>

namespace pkb::util {

/// Upper bound accepted for any serialized string or array length. Files
/// claiming more are corrupt (the whole corpus is far smaller).
inline constexpr std::uint64_t kBinioMaxLength = 1ULL << 30;

inline void write_u8(std::ostream& out, std::uint8_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof v);
}

inline void write_u32(std::ostream& out, std::uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof v);
}

inline void write_u64(std::ostream& out, std::uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof v);
}

inline void write_f64(std::ostream& out, double v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof v);
}

inline void write_str(std::ostream& out, const std::string& s) {
  write_u64(out, s.size());
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

/// Counted float array (embedding vectors): length + raw IEEE-754 payload.
inline void write_f32_array(std::ostream& out, const std::vector<float>& v) {
  write_u64(out, v.size());
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(float)));
}

inline void read_bytes(std::istream& in, void* dst, std::size_t n,
                       const char* what) {
  in.read(static_cast<char*>(dst), static_cast<std::streamsize>(n));
  if (!in || in.gcount() != static_cast<std::streamsize>(n)) {
    throw std::runtime_error(std::string("truncated read: ") + what);
  }
}

[[nodiscard]] inline std::uint8_t read_u8(std::istream& in, const char* what) {
  std::uint8_t v = 0;
  read_bytes(in, &v, sizeof v, what);
  return v;
}

[[nodiscard]] inline std::uint32_t read_u32(std::istream& in,
                                            const char* what) {
  std::uint32_t v = 0;
  read_bytes(in, &v, sizeof v, what);
  return v;
}

[[nodiscard]] inline std::uint64_t read_u64(std::istream& in,
                                            const char* what) {
  std::uint64_t v = 0;
  read_bytes(in, &v, sizeof v, what);
  return v;
}

/// Length-checked counted read: a corrupt length fails before allocation.
[[nodiscard]] inline std::uint64_t read_count(
    std::istream& in, const char* what,
    std::uint64_t max = kBinioMaxLength) {
  const std::uint64_t n = read_u64(in, what);
  if (n > max) {
    throw std::runtime_error(std::string("implausible count for ") + what);
  }
  return n;
}

[[nodiscard]] inline double read_f64(std::istream& in, const char* what) {
  double v = 0.0;
  read_bytes(in, &v, sizeof v, what);
  return v;
}

[[nodiscard]] inline std::vector<float> read_f32_array(
    std::istream& in, const char* what,
    std::uint64_t max_len = kBinioMaxLength) {
  const std::uint64_t len = read_count(in, what, max_len);
  std::vector<float> v(len);
  if (len > 0) read_bytes(in, v.data(), len * sizeof(float), what);
  return v;
}

[[nodiscard]] inline std::string read_str(std::istream& in, const char* what,
                                          std::uint64_t max_len =
                                              kBinioMaxLength) {
  const std::uint64_t len = read_count(in, what, max_len);
  std::string s(len, '\0');
  if (len > 0) read_bytes(in, s.data(), len, what);
  return s;
}

}  // namespace pkb::util
