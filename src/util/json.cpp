#include "util/json.h"

#include <cmath>
#include <cstdio>

namespace pkb::util {

bool Json::as_bool() const {
  if (type_ != Type::Bool) throw JsonError("not a bool");
  return bool_;
}

double Json::as_number() const {
  if (type_ != Type::Number) throw JsonError("not a number");
  return num_;
}

std::int64_t Json::as_int() const {
  if (type_ != Type::Number) throw JsonError("not a number");
  return static_cast<std::int64_t>(num_);
}

const std::string& Json::as_string() const {
  if (type_ != Type::String) throw JsonError("not a string");
  return str_;
}

const Json::Array& Json::as_array() const {
  if (type_ != Type::Array) throw JsonError("not an array");
  return arr_;
}

Json::Array& Json::as_array() {
  if (type_ != Type::Array) throw JsonError("not an array");
  return arr_;
}

const Json::Object& Json::as_object() const {
  if (type_ != Type::Object) throw JsonError("not an object");
  return obj_;
}

Json::Object& Json::as_object() {
  if (type_ != Type::Object) throw JsonError("not an object");
  return obj_;
}

const Json& Json::at(std::size_t i) const {
  const Array& a = as_array();
  if (i >= a.size()) throw JsonError("array index out of range");
  return a[i];
}

const Json* Json::find(std::string_view key) const {
  const Object& o = as_object();
  for (const auto& [k, v] : o) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Json& Json::at(std::string_view key) const {
  const Json* p = find(key);
  if (p == nullptr) throw JsonError("missing key: " + std::string(key));
  return *p;
}

std::string Json::get_string(std::string_view key, std::string_view def) const {
  const Json* p = find(key);
  return (p != nullptr && p->is_string()) ? p->as_string() : std::string(def);
}

double Json::get_number(std::string_view key, double def) const {
  const Json* p = find(key);
  return (p != nullptr && p->is_number()) ? p->as_number() : def;
}

std::int64_t Json::get_int(std::string_view key, std::int64_t def) const {
  const Json* p = find(key);
  return (p != nullptr && p->is_number()) ? p->as_int() : def;
}

bool Json::get_bool(std::string_view key, bool def) const {
  const Json* p = find(key);
  return (p != nullptr && p->is_bool()) ? p->as_bool() : def;
}

Json& Json::set(std::string key, Json value) {
  Object& o = as_object();
  for (auto& [k, v] : o) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  o.emplace_back(std::move(key), std::move(value));
  return *this;
}

Json& Json::push_back(Json value) {
  as_array().push_back(std::move(value));
  return *this;
}

std::size_t Json::size() const {
  switch (type_) {
    case Type::Array:
      return arr_.size();
    case Type::Object:
      return obj_.size();
    default:
      return 0;
  }
}

bool Json::operator==(const Json& other) const {
  if (type_ != other.type_) return false;
  switch (type_) {
    case Type::Null:
      return true;
    case Type::Bool:
      return bool_ == other.bool_;
    case Type::Number:
      return num_ == other.num_;
    case Type::String:
      return str_ == other.str_;
    case Type::Array:
      return arr_ == other.arr_;
    case Type::Object:
      return obj_ == other.obj_;
  }
  return false;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

namespace {
void append_number(std::string& out, double v) {
  if (std::isnan(v) || std::isinf(v)) {
    out += "null";  // JSON has no NaN/Inf; null is the conventional fallback
    return;
  }
  // Integers within the exact double range print without a decimal point.
  if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
    out += buf;
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}
}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
  const bool pretty = indent > 0;
  auto newline = [&](int d) {
    if (pretty) {
      out += '\n';
      out.append(static_cast<std::size_t>(indent) * d, ' ');
    }
  };
  switch (type_) {
    case Type::Null:
      out += "null";
      break;
    case Type::Bool:
      out += bool_ ? "true" : "false";
      break;
    case Type::Number:
      append_number(out, num_);
      break;
    case Type::String:
      out += '"';
      out += json_escape(str_);
      out += '"';
      break;
    case Type::Array: {
      if (arr_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i != 0) out += ',';
        newline(depth + 1);
        arr_[i].dump_to(out, indent, depth + 1);
      }
      newline(depth);
      out += ']';
      break;
    }
    case Type::Object: {
      if (obj_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        if (i != 0) out += ',';
        newline(depth + 1);
        out += '"';
        out += json_escape(obj_[i].first);
        out += pretty ? "\": " : "\":";
        obj_[i].second.dump_to(out, indent, depth + 1);
      }
      newline(depth);
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    skip_ws();
    Json v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const {
    throw JsonError("JSON parse error at offset " + std::to_string(pos_) +
                    ": " + msg);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  char peek() const {
    if (pos_ >= text_.size()) throw JsonError("unexpected end of input");
    return text_[pos_];
  }

  char next() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (next() != c) {
      --pos_;
      fail(std::string("expected '") + c + "'");
    }
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  Json parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return Json(parse_string());
      case 't':
        if (consume_literal("true")) return Json(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return Json(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return Json(nullptr);
        fail("invalid literal");
      default:
        return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json obj = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      Json value = parse_value();
      obj.as_object().emplace_back(std::move(key), std::move(value));
      skip_ws();
      const char c = next();
      if (c == '}') return obj;
      if (c != ',') {
        --pos_;
        fail("expected ',' or '}' in object");
      }
    }
  }

  Json parse_array() {
    expect('[');
    Json arr = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      const char c = next();
      if (c == ']') return arr;
      if (c != ',') {
        --pos_;
        fail("expected ',' or ']' in array");
      }
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = next();
      if (c == '"') return out;
      if (c == '\\') {
        const char esc = next();
        switch (esc) {
          case '"':
            out += '"';
            break;
          case '\\':
            out += '\\';
            break;
          case '/':
            out += '/';
            break;
          case 'b':
            out += '\b';
            break;
          case 'f':
            out += '\f';
            break;
          case 'n':
            out += '\n';
            break;
          case 'r':
            out += '\r';
            break;
          case 't':
            out += '\t';
            break;
          case 'u': {
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = next();
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code += static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code += static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code += static_cast<unsigned>(h - 'A' + 10);
              } else {
                fail("invalid \\u escape");
              }
            }
            append_utf8(out, code);
            break;
          }
          default:
            fail("invalid escape");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      } else {
        out += c;
      }
    }
  }

  static void append_utf8(std::string& out, unsigned code) {
    // Surrogate pairs are not combined (BMP-only \u escapes); each half is
    // encoded independently, which round-trips our own output.
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           ((text_[pos_] >= '0' && text_[pos_] <= '9') || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("invalid value");
    const std::string token(text_.substr(start, pos_ - start));
    char* endp = nullptr;
    const double v = std::strtod(token.c_str(), &endp);
    if (endp == nullptr || *endp != '\0') {
      pos_ = start;
      fail("invalid number: " + token);
    }
    return Json(v);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace pkb::util
