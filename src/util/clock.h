#pragma once
// Time sources.
//
// Two clocks coexist in the system:
//  * `Stopwatch` measures real wall time for stages we genuinely execute
//    (retrieval, reranking, embedding) — used by the Table II benchmark.
//  * `SimClock` is a virtual clock used by the simulated LLM and the Discord
//    workflow simulation, so that "a 9.6 second LLM response" and "poll email
//    every 5 minutes" cost nothing at test time yet produce faithful
//    timestamps and latency accounting.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>

namespace pkb::util {

/// Wall-clock stopwatch with nanosecond resolution.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}

  /// Restart timing from now.
  void reset() { start_ = std::chrono::steady_clock::now(); }

  /// Elapsed seconds since construction or last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

  /// Elapsed milliseconds.
  [[nodiscard]] double millis() const { return seconds() * 1e3; }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Virtual simulation clock. Time only moves when advanced explicitly.
/// Epoch is an arbitrary "simulation day zero". Thread-safe: advances are
/// atomic read-modify-writes, so concurrent serving workers sharing one
/// clock never lose time (the clock is always held by pointer/reference;
/// it is not copyable).
///
/// Blocking waits: a thread that must not proceed until simulated time
/// reaches T calls wait_until(T, real_timeout). Advances notify waiters, so
/// a test thread advancing the clock deterministically releases waiters —
/// no real-time sleeps, no polling. The real-seconds timeout is a backstop
/// against a test that forgets to advance: the wait returns false instead
/// of hanging the suite.
class SimClock {
 public:
  SimClock() = default;
  explicit SimClock(double start_seconds) : now_(start_seconds) {}

  SimClock(const SimClock&) = delete;
  SimClock& operator=(const SimClock&) = delete;

  /// Current simulated time in seconds since the simulation epoch.
  [[nodiscard]] double now() const {
    return now_.load(std::memory_order_relaxed);
  }

  /// Advance by `seconds` (must be >= 0). Wakes wait_until/wait_for waiters.
  void advance(double seconds);

  /// Advance to an absolute time, if it is in the future; otherwise no-op.
  /// Wakes wait_until/wait_for waiters.
  void advance_to(double abs_seconds);

  /// Block until now() >= abs_seconds (some other thread advances the
  /// clock), or until `real_timeout_seconds` of wall time pass. Returns
  /// true when simulated time reached the target, false on the real-time
  /// backstop. Returns immediately when the target is already in the past.
  bool wait_until(double abs_seconds, double real_timeout_seconds = 5.0);

  /// wait_until(now() + seconds, real_timeout_seconds).
  bool wait_for(double seconds, double real_timeout_seconds = 5.0);

  /// Render `now()` as "day D HH:MM:SS" for human-readable event traces.
  [[nodiscard]] std::string timestamp() const;

  /// Render an arbitrary sim time in the same format.
  [[nodiscard]] static std::string format(double abs_seconds);

 private:
  // now_ stays atomic so now() is lock-free on hot paths; the mutex only
  // serializes the advance/wait handshake (advance takes it before
  // notifying so a waiter cannot check the clock, miss the update, and
  // sleep through the notify).
  std::atomic<double> now_{0.0};
  std::mutex wait_mu_;
  std::condition_variable wait_cv_;
};

}  // namespace pkb::util
