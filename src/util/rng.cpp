#include "util/rng.h"

#include <cmath>

namespace pkb::util {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& lane : s_) lane = splitmix64(sm);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  // Lemire's nearly-divisionless method with rejection for exactness.
  __uint128_t m = static_cast<__uint128_t>((*this)()) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0ULL - bound) % bound;
    while (lo < threshold) {
      m = static_cast<__uint128_t>((*this)()) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(below(span));
}

double Rng::uniform() {
  // 53 high bits -> [0,1) with full double precision.
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.14159265358979323846 * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

bool Rng::chance(double p) { return uniform() < p; }

Rng Rng::fork() {
  // Mix two raw draws into a new seed; streams are decorrelated in practice.
  const std::uint64_t a = (*this)();
  const std::uint64_t b = (*this)();
  return Rng(a ^ rotl(b, 31));
}

std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t seed_from(std::string_view label, std::uint64_t salt) {
  return fnv1a64(label) ^ (salt * 0x9e3779b97f4a7c15ULL + 0x632be59bd9b4e019ULL);
}

}  // namespace pkb::util
