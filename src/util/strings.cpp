#include "util/strings.h"

#include <algorithm>
#include <cctype>
#include <cstdio>

namespace pkb::util {

namespace {
constexpr bool is_space(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
         c == '\v';
}
constexpr char ascii_lower(char c) {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}
constexpr char ascii_upper(char c) {
  return (c >= 'a' && c <= 'z') ? static_cast<char>(c - 'a' + 'A') : c;
}
}  // namespace

std::string_view trim_left(std::string_view s) {
  std::size_t i = 0;
  while (i < s.size() && is_space(s[i])) ++i;
  return s.substr(i);
}

std::string_view trim_right(std::string_view s) {
  std::size_t n = s.size();
  while (n > 0 && is_space(s[n - 1])) --n;
  return s.substr(0, n);
}

std::string_view trim(std::string_view s) { return trim_right(trim_left(s)); }

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string_view> split(std::string_view s, std::string_view sep) {
  std::vector<std::string_view> out;
  if (sep.empty()) {
    out.push_back(s);
    return out;
  }
  std::size_t start = 0;
  while (true) {
    std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + sep.size();
  }
}

std::vector<std::string_view> split_ws(std::string_view s) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && is_space(s[i])) ++i;
    std::size_t start = i;
    while (i < s.size() && !is_space(s[i])) ++i;
    if (i > start) out.push_back(s.substr(start, i - start));
  }
  return out;
}

std::vector<std::string_view> split_lines(std::string_view s) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\n') {
      std::size_t end = i;
      if (end > start && s[end - 1] == '\r') --end;
      out.push_back(s.substr(start, end - start));
      start = i + 1;
    }
  }
  if (start < s.size()) {
    std::string_view last = s.substr(start);
    if (!last.empty() && last.back() == '\r') last.remove_suffix(1);
    out.push_back(last);
  }
  return out;
}

namespace {
template <typename Range>
std::string join_impl(const Range& parts, std::string_view sep) {
  std::string out;
  std::size_t total = 0;
  for (const auto& p : parts) total += p.size() + sep.size();
  out.reserve(total);
  bool first = true;
  for (const auto& p : parts) {
    if (!first) out.append(sep);
    out.append(p);
    first = false;
  }
  return out;
}
}  // namespace

std::string join(const std::vector<std::string_view>& parts,
                 std::string_view sep) {
  return join_impl(parts, sep);
}
std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  return join_impl(parts, sep);
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), ascii_lower);
  return out;
}

std::string to_upper(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), ascii_upper);
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string replace_all(std::string_view s, std::string_view from,
                        std::string_view to) {
  if (from.empty()) return std::string(s);
  std::string out;
  out.reserve(s.size());
  std::size_t start = 0;
  while (true) {
    std::size_t pos = s.find(from, start);
    if (pos == std::string_view::npos) {
      out.append(s.substr(start));
      return out;
    }
    out.append(s.substr(start, pos - start));
    out.append(to);
    start = pos + from.size();
  }
}

bool contains(std::string_view s, std::string_view needle) {
  return s.find(needle) != std::string_view::npos;
}

bool icontains(std::string_view s, std::string_view needle) {
  if (needle.empty()) return true;
  if (needle.size() > s.size()) return false;
  for (std::size_t i = 0; i + needle.size() <= s.size(); ++i) {
    bool match = true;
    for (std::size_t j = 0; j < needle.size(); ++j) {
      if (ascii_lower(s[i + j]) != ascii_lower(needle[j])) {
        match = false;
        break;
      }
    }
    if (match) return true;
  }
  return false;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (ascii_lower(a[i]) != ascii_lower(b[i])) return false;
  }
  return true;
}

std::size_t edit_distance(std::string_view a, std::string_view b) {
  if (a.size() > b.size()) std::swap(a, b);
  std::vector<std::size_t> prev(a.size() + 1);
  std::vector<std::size_t> cur(a.size() + 1);
  for (std::size_t i = 0; i <= a.size(); ++i) prev[i] = i;
  for (std::size_t j = 1; j <= b.size(); ++j) {
    cur[0] = j;
    for (std::size_t i = 1; i <= a.size(); ++i) {
      std::size_t sub = prev[i - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[i] = std::min({prev[i] + 1, cur[i - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[a.size()];
}

std::size_t count_occurrences(std::string_view s, std::string_view needle) {
  if (needle.empty()) return 0;
  std::size_t count = 0;
  std::size_t pos = 0;
  while ((pos = s.find(needle, pos)) != std::string_view::npos) {
    ++count;
    pos += needle.size();
  }
  return count;
}

std::string repeat(std::string_view s, std::size_t n) {
  std::string out;
  out.reserve(s.size() * n);
  for (std::size_t i = 0; i < n; ++i) out.append(s);
  return out;
}

std::string ellipsize(std::string_view s, std::size_t max_len) {
  if (s.size() <= max_len) return std::string(s);
  if (max_len <= 3) return std::string(s.substr(0, max_len));
  return std::string(s.substr(0, max_len - 3)) + "...";
}

std::string format_double(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, v);
  return buf;
}

}  // namespace pkb::util
