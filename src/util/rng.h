#pragma once
// Deterministic pseudo-random number generation.
//
// Every stochastic component in the system (corpus generation, the simulated
// LLM's sampling noise, latency jitter, k-means init) draws from an explicitly
// seeded `Rng` so that tests, examples, and benchmarks are reproducible
// bit-for-bit across runs. Never use std::random_device or wall-clock seeding.

#include <cstdint>
#include <string_view>
#include <vector>

namespace pkb::util {

/// xoshiro256** 1.0 — small, fast, high-quality 64-bit generator.
/// Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit lanes from `seed` via SplitMix64, which guarantees
  /// a non-zero state for every seed (including 0).
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// Next raw 64-bit value.
  result_type operator()();

  /// Uniform integer in [0, bound). `bound` must be > 0. Uses rejection
  /// sampling (Lemire-style) to avoid modulo bias.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal via Box-Muller (cached second value).
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Bernoulli trial with probability `p` of true.
  bool chance(double p);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Uniformly pick one element; `v` must be non-empty.
  template <typename T>
  const T& pick(const std::vector<T>& v) {
    return v[static_cast<std::size_t>(below(v.size()))];
  }

  /// Derive a child generator whose stream is decorrelated from this one.
  /// Useful for giving each parallel task its own deterministic stream.
  Rng fork();

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

/// 64-bit FNV-1a hash of a byte string. Deterministic across platforms; used
/// for hashed embeddings and for deriving stable per-entity seeds.
[[nodiscard]] std::uint64_t fnv1a64(std::string_view s);

/// Stable seed derived from a string label and a numeric salt.
[[nodiscard]] std::uint64_t seed_from(std::string_view label,
                                      std::uint64_t salt = 0);

}  // namespace pkb::util
