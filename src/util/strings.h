#pragma once
// String utilities shared by every module.
//
// All functions are pure and allocation-conscious: views in, owned strings out
// only where ownership is required.

#include <string>
#include <string_view>
#include <vector>

namespace pkb::util {

/// Remove leading and trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view s);

/// Remove leading ASCII whitespace.
[[nodiscard]] std::string_view trim_left(std::string_view s);

/// Remove trailing ASCII whitespace.
[[nodiscard]] std::string_view trim_right(std::string_view s);

/// Split `s` on the single character `sep`. Empty fields are kept, so
/// `split("a,,b", ',')` yields {"a", "", "b"}.
[[nodiscard]] std::vector<std::string_view> split(std::string_view s, char sep);

/// Split `s` on the multi-character separator `sep` (must be non-empty).
[[nodiscard]] std::vector<std::string_view> split(std::string_view s,
                                                  std::string_view sep);

/// Split into non-empty whitespace-delimited fields.
[[nodiscard]] std::vector<std::string_view> split_ws(std::string_view s);

/// Split into lines; the trailing newline does not produce an empty line,
/// but interior blank lines are preserved.
[[nodiscard]] std::vector<std::string_view> split_lines(std::string_view s);

/// Join `parts` with `sep`.
[[nodiscard]] std::string join(const std::vector<std::string_view>& parts,
                               std::string_view sep);
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view sep);

/// ASCII lowercase copy.
[[nodiscard]] std::string to_lower(std::string_view s);

/// ASCII uppercase copy.
[[nodiscard]] std::string to_upper(std::string_view s);

/// True if `s` starts with / ends with the given prefix/suffix.
[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix);
[[nodiscard]] bool ends_with(std::string_view s, std::string_view suffix);

/// Replace every occurrence of `from` (non-empty) with `to`.
[[nodiscard]] std::string replace_all(std::string_view s, std::string_view from,
                                      std::string_view to);

/// True if `s` contains `needle`.
[[nodiscard]] bool contains(std::string_view s, std::string_view needle);

/// Case-insensitive containment test (ASCII).
[[nodiscard]] bool icontains(std::string_view s, std::string_view needle);

/// Case-insensitive equality (ASCII).
[[nodiscard]] bool iequals(std::string_view a, std::string_view b);

/// Levenshtein edit distance; O(|a|*|b|) with O(min) memory. Used for fuzzy
/// API-symbol matching ("KSPGmres" -> "KSPGMRES").
[[nodiscard]] std::size_t edit_distance(std::string_view a, std::string_view b);

/// Count non-overlapping occurrences of `needle` (non-empty) in `s`.
[[nodiscard]] std::size_t count_occurrences(std::string_view s,
                                            std::string_view needle);

/// Repeat `s` `n` times.
[[nodiscard]] std::string repeat(std::string_view s, std::size_t n);

/// Truncate to at most `max_len` bytes, appending "..." when truncated.
/// `max_len` counts the ellipsis, so the result never exceeds `max_len`.
[[nodiscard]] std::string ellipsize(std::string_view s, std::size_t max_len);

/// Format a double with `digits` places after the decimal point.
[[nodiscard]] std::string format_double(double v, int digits);

/// True if `c` is an identifier character [A-Za-z0-9_].
[[nodiscard]] constexpr bool is_ident_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

}  // namespace pkb::util
