#pragma once
// Aligned arena allocation for vector storage.
//
// The SIMD kernels (vectordb/kernels.h) load rows with aligned vector
// instructions, so the packed SoA blocks they scan must start on a cache
// line. `AlignedBuffer` is a growable, cache-line-aligned byte buffer —
// the allocation primitive under every packed fp32/int8 matrix — and
// `Arena` is a bump allocator over large aligned slabs for callers that
// carve many small aligned pieces (per-level HNSW adjacency lists) without
// one malloc per piece.
//
// Neither is thread-safe; confine an instance to its owning structure and
// publish that structure immutably (the Snapshot pattern) for shared reads.

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <new>
#include <vector>

namespace pkb::util {

/// Cache-line alignment used by every arena allocation. 64 bytes covers one
/// x86 cache line and a full AVX-512 register; NEON and AVX2 loads are
/// satisfied a fortiori.
inline constexpr std::size_t kArenaAlignment = 64;

/// Round `n` up to the next multiple of `align` (a power of two).
[[nodiscard]] constexpr std::size_t align_up(std::size_t n,
                                             std::size_t align) {
  return (n + align - 1) & ~(align - 1);
}

/// A growable byte buffer whose data() is always 64-byte aligned. Unlike
/// std::vector, reallocation keeps the alignment guarantee; contents are
/// preserved across grow() calls. Zero-initializes new bytes so padded SIMD
/// lanes read exact zeros (a zero contributes nothing to a dot product,
/// which is what keeps padded scans bit-equal to unpadded ones).
class AlignedBuffer {
 public:
  AlignedBuffer() = default;
  explicit AlignedBuffer(std::size_t bytes) { resize(bytes); }

  AlignedBuffer(const AlignedBuffer& other) { *this = other; }
  AlignedBuffer& operator=(const AlignedBuffer& other) {
    if (this != &other) {
      resize(other.size_);
      if (size_ > 0) std::memcpy(data_.get(), other.data_.get(), size_);
    }
    return *this;
  }
  AlignedBuffer(AlignedBuffer&&) noexcept = default;
  AlignedBuffer& operator=(AlignedBuffer&&) noexcept = default;

  /// Grow or shrink to `bytes`; existing contents up to min(old, new) are
  /// kept, new bytes are zero. Amortized doubling keeps append loops O(n).
  void resize(std::size_t bytes) {
    if (bytes > capacity_) {
      std::size_t cap = capacity_ == 0 ? 1024 : capacity_;
      while (cap < bytes) cap *= 2;
      auto grown = allocate(cap);
      if (size_ > 0) std::memcpy(grown.get(), data_.get(), size_);
      std::memset(grown.get() + size_, 0, cap - size_);
      data_ = std::move(grown);
      capacity_ = cap;
    } else if (bytes > size_) {
      std::memset(data_.get() + size_, 0, bytes - size_);
    }
    size_ = bytes;
  }

  [[nodiscard]] std::byte* data() { return data_.get(); }
  [[nodiscard]] const std::byte* data() const { return data_.get(); }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  /// Typed views; the buffer must be sized in whole elements by the caller.
  template <typename T>
  [[nodiscard]] T* as() {
    return reinterpret_cast<T*>(data_.get());
  }
  template <typename T>
  [[nodiscard]] const T* as() const {
    return reinterpret_cast<const T*>(data_.get());
  }

 private:
  struct Free {
    void operator()(std::byte* p) const { ::operator delete[](
        p, std::align_val_t{kArenaAlignment}); }
  };
  using Ptr = std::unique_ptr<std::byte[], Free>;

  static Ptr allocate(std::size_t bytes) {
    return Ptr(static_cast<std::byte*>(::operator new[](
        bytes, std::align_val_t{kArenaAlignment})));
  }

  Ptr data_;
  std::size_t size_ = 0;
  std::size_t capacity_ = 0;
};

/// Bump allocator over aligned slabs. alloc() never moves earlier
/// allocations (pointers stay valid for the arena's lifetime), so graph
/// structures can hold raw pointers into it. No per-piece free — the arena
/// releases everything at once on destruction, which matches the immutable
/// index lifecycle (build once, publish, drop with the snapshot).
class Arena {
 public:
  /// `slab_bytes` is the granularity of the backing allocations; oversized
  /// requests get a dedicated slab.
  explicit Arena(std::size_t slab_bytes = 1 << 20) : slab_bytes_(slab_bytes) {}

  /// 64-byte-aligned, zero-initialized allocation of `bytes`.
  [[nodiscard]] std::byte* alloc(std::size_t bytes) {
    const std::size_t need = align_up(bytes == 0 ? 1 : bytes, kArenaAlignment);
    if (slabs_.empty() || used_ + need > slabs_.back().size()) {
      slabs_.emplace_back(std::max(need, slab_bytes_));
      used_ = 0;
    }
    std::byte* p = slabs_.back().data() + used_;
    used_ += need;
    return p;
  }

  /// Typed array allocation (zeroed).
  template <typename T>
  [[nodiscard]] T* alloc_array(std::size_t count) {
    return reinterpret_cast<T*>(alloc(count * sizeof(T)));
  }

  /// Total bytes held by the arena's slabs.
  [[nodiscard]] std::size_t footprint() const {
    std::size_t total = 0;
    for (const AlignedBuffer& s : slabs_) total += s.size();
    return total;
  }

 private:
  std::size_t slab_bytes_;
  std::vector<AlignedBuffer> slabs_;
  std::size_t used_ = 0;
};

}  // namespace pkb::util
