#pragma once
// Minimal work-stealing-free thread pool plus a blocking parallel_for.
//
// The embedding generator and vector-store search are the hot paths; both use
// `parallel_for` over contiguous index ranges. The pool is created once and
// reused (threads are expensive); `global_pool()` provides a lazily
// constructed process-wide instance sized to the hardware.
//
// Thread-safety: `submit` and `parallel_for` may be called from any thread,
// including concurrently. Do NOT call `parallel_for` from inside a pool
// task (i.e. from `fn`): the inner call blocks a worker on futures that
// need a free worker to run, which can deadlock when the pool is saturated.
//
// Usage:
//   std::vector<float> scores(n);
//   parallel_for(0, n, [&](std::size_t i) { scores[i] = score(i); },
//                /*min_block=*/256);

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace pkb::util {

/// Fixed-size FIFO thread pool.
class ThreadPool {
 public:
  /// Spawns `threads` workers; `threads == 0` means hardware concurrency
  /// (at least 1).
  explicit ThreadPool(std::size_t threads = 0);

  /// Joins all workers; outstanding tasks are completed first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Enqueue a task; returns a future for its completion.
  std::future<void> submit(std::function<void()> task);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Process-wide pool sized to hardware concurrency.
ThreadPool& global_pool();

/// Run `fn(i)` for every i in [begin, end) across the pool, blocking until all
/// iterations finish. The range is split into contiguous blocks (one per
/// worker plus the calling thread, which also participates). `fn` must be safe
/// to call concurrently for distinct i. Exceptions from `fn` propagate: the
/// first one observed is rethrown after all blocks complete.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t min_block = 64);

}  // namespace pkb::util
