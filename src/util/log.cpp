#include "util/log.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace pkb::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Warn};
std::mutex g_emit_mu;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Trace:
      return "TRACE";
    case LogLevel::Debug:
      return "DEBUG";
    case LogLevel::Info:
      return "INFO";
    case LogLevel::Warn:
      return "WARN";
    case LogLevel::Error:
      return "ERROR";
    case LogLevel::Off:
      return "OFF";
  }
  return "?";
}
}  // namespace

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

void log_message(LogLevel level, std::string_view tag, std::string_view msg) {
  if (level < log_level() || log_level() == LogLevel::Off) return;
  std::lock_guard<std::mutex> lock(g_emit_mu);
  std::fprintf(stderr, "[%s] %.*s: %.*s\n", level_name(level),
               static_cast<int>(tag.size()), tag.data(),
               static_cast<int>(msg.size()), msg.data());
}

}  // namespace pkb::util
