#pragma once
// Streaming summary statistics (min/max/mean/stddev/percentiles).
//
// Used by the Table II latency benchmark and by the evaluation aggregates.
// These are single-run, single-thread accumulators; the cross-request,
// thread-safe counterpart is the metrics registry in src/obs/metrics.h,
// whose histograms report the same min/max/avg over the same samples
// (docs/OBSERVABILITY.md). Not thread-safe — confine each instance to one
// thread or guard it externally.
//
// Usage:
//   Summary latencies;
//   for (double s : run()) latencies.add(s);
//   std::printf("%s\n", latencies.min_max_avg(2).c_str());

#include <cstddef>
#include <string>
#include <vector>

namespace pkb::util {

/// Accumulates samples and reports summary statistics. Percentiles retain all
/// samples (fine at benchmark scale).
class Summary {
 public:
  /// Add one observation.
  void add(double x);

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }

  /// Smallest / largest observation; 0 when empty.
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

  /// Arithmetic mean; 0 when empty.
  [[nodiscard]] double mean() const;

  /// Sample standard deviation (n-1 denominator); 0 for fewer than 2 samples.
  [[nodiscard]] double stddev() const;

  /// Sum of all samples.
  [[nodiscard]] double sum() const { return sum_; }

  /// Linear-interpolated percentile, q in [0, 100]; 0 when empty.
  [[nodiscard]] double percentile(double q) const;

  /// Median (50th percentile).
  [[nodiscard]] double median() const { return percentile(50.0); }

  /// "min/max/avg" rendered with `digits` decimals — the format of Table II.
  [[nodiscard]] std::string min_max_avg(int digits = 2) const;

  /// All samples in insertion order.
  [[nodiscard]] const std::vector<double>& samples() const { return samples_; }

 private:
  std::vector<double> samples_;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
};

/// Histogram with fixed-width bins over [lo, hi); out-of-range samples clamp
/// to the edge bins. Used for score-distribution displays (distinct from
/// obs::Histogram, whose log-spaced buckets serve latency aggregation).
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  /// Record one sample into its bin.
  void add(double x);

  [[nodiscard]] std::size_t bin_count() const { return counts_.size(); }
  [[nodiscard]] std::size_t count(std::size_t bin) const;
  [[nodiscard]] std::size_t total() const { return total_; }

  /// Lower edge of bin `i`.
  [[nodiscard]] double bin_lo(std::size_t i) const;

  /// ASCII bar chart, one row per bin.
  [[nodiscard]] std::string render(std::size_t width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace pkb::util
