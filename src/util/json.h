#pragma once
// Hand-rolled JSON value, parser, and serializer.
//
// The interaction-history database (§III-F of the paper) is persisted as
// JSON, and the LLM supports a JSON output mode (§III-E: "LLMs are now making
// it possible to return their output in JSON, making postprocessing easier").
// No third-party JSON library is used.
//
// Object key order is preserved (insertion order), which keeps serialized
// output stable and diffs readable.

#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace pkb::util {

class Json;

/// Error thrown by the parser on malformed input and by typed accessors on
/// type mismatch.
class JsonError : public std::runtime_error {
 public:
  explicit JsonError(const std::string& what) : std::runtime_error(what) {}
};

/// A JSON value: null, bool, number (double), string, array, or object.
class Json {
 public:
  enum class Type { Null, Bool, Number, String, Array, Object };

  using Array = std::vector<Json>;
  using Member = std::pair<std::string, Json>;
  using Object = std::vector<Member>;

  /// Constructs null.
  Json() = default;
  Json(std::nullptr_t) {}
  Json(bool b) : type_(Type::Bool), bool_(b) {}
  Json(int v) : type_(Type::Number), num_(v) {}
  Json(std::int64_t v) : type_(Type::Number), num_(static_cast<double>(v)) {}
  Json(std::size_t v) : type_(Type::Number), num_(static_cast<double>(v)) {}
  Json(double v) : type_(Type::Number), num_(v) {}
  Json(const char* s) : type_(Type::String), str_(s) {}
  Json(std::string s) : type_(Type::String), str_(std::move(s)) {}
  Json(std::string_view s) : type_(Type::String), str_(s) {}
  Json(Array a) : type_(Type::Array), arr_(std::move(a)) {}
  Json(Object o) : type_(Type::Object), obj_(std::move(o)) {}

  /// Factory helpers for clarity at call sites.
  static Json array() { return Json(Array{}); }
  static Json object() { return Json(Object{}); }

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool is_null() const { return type_ == Type::Null; }
  [[nodiscard]] bool is_bool() const { return type_ == Type::Bool; }
  [[nodiscard]] bool is_number() const { return type_ == Type::Number; }
  [[nodiscard]] bool is_string() const { return type_ == Type::String; }
  [[nodiscard]] bool is_array() const { return type_ == Type::Array; }
  [[nodiscard]] bool is_object() const { return type_ == Type::Object; }

  /// Typed accessors; throw JsonError on type mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] std::int64_t as_int() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] Array& as_array();
  [[nodiscard]] const Object& as_object() const;
  [[nodiscard]] Object& as_object();

  /// Array element access (throws if not an array or out of range).
  [[nodiscard]] const Json& at(std::size_t i) const;

  /// Object member lookup; returns nullptr when absent (throws if not an
  /// object).
  [[nodiscard]] const Json* find(std::string_view key) const;

  /// Object member lookup; throws JsonError when absent.
  [[nodiscard]] const Json& at(std::string_view key) const;

  /// Convenience typed lookups with defaults (object only; absent -> default).
  [[nodiscard]] std::string get_string(std::string_view key,
                                       std::string_view def = "") const;
  [[nodiscard]] double get_number(std::string_view key, double def = 0) const;
  [[nodiscard]] std::int64_t get_int(std::string_view key,
                                     std::int64_t def = 0) const;
  [[nodiscard]] bool get_bool(std::string_view key, bool def = false) const;

  /// Insert or overwrite an object member (throws if not an object).
  Json& set(std::string key, Json value);

  /// Append to an array (throws if not an array).
  Json& push_back(Json value);

  /// Number of elements (array) or members (object); 0 otherwise.
  [[nodiscard]] std::size_t size() const;

  /// Serialize. `indent` <= 0 produces compact single-line output; > 0
  /// pretty-prints with that many spaces per level.
  [[nodiscard]] std::string dump(int indent = 0) const;

  /// Parse a complete JSON document. Throws JsonError with a byte offset on
  /// malformed input; trailing non-whitespace is an error.
  static Json parse(std::string_view text);

  bool operator==(const Json& other) const;

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_ = Type::Null;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  Array arr_;
  Object obj_;
};

/// Escape a string for embedding in JSON (without surrounding quotes).
[[nodiscard]] std::string json_escape(std::string_view s);

}  // namespace pkb::util
