#include "serve/server.h"

#include <chrono>
#include <stdexcept>
#include <unordered_map>

#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rag/stages.h"
#include "replay/trace.h"
#include "util/clock.h"

namespace pkb::serve {

Server::Server(const rag::AugmentedWorkflow& workflow, ServerOptions opts)
    : workflow_(workflow),
      opts_(std::move(opts)),
      queue_(opts_.queue_capacity),
      answer_cache_(LruCacheOptions{opts_.answer_cache_capacity,
                                    opts_.cache_shards,
                                    opts_.answer_ttl_seconds,
                                    opts_.cache_clock}),
      embedding_cache_(LruCacheOptions{opts_.embedding_cache_capacity,
                                       opts_.cache_shards,
                                       /*ttl_seconds=*/0.0,
                                       opts_.cache_clock}) {
  if (opts_.workers == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    opts_.workers = hw == 0 ? 1 : hw;
  }
  obs::global_metrics()
      .gauge(obs::kServeWorkers)
      .set(static_cast<double>(opts_.workers));
  workers_.reserve(opts_.workers);
  for (std::size_t i = 0; i < opts_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

Server::~Server() { stop(); }

void Server::stop() {
  if (stopped_.exchange(true)) return;
  queue_.close();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  publish_queue_gauges();
}

void Server::publish_queue_gauges() {
  obs::global_metrics()
      .gauge(obs::kServeQueueDepth)
      .set(static_cast<double>(queue_.size()));
}

std::future<rag::WorkflowOutcome> Server::submit(std::string question) {
  obs::MetricsRegistry& metrics = obs::global_metrics();
  metrics.counter(obs::kServeRequestsTotal, {{"source", "single"}}).inc();

  std::promise<rag::WorkflowOutcome> promise;
  std::future<rag::WorkflowOutcome> future = promise.get_future();

  // Fast path: answer already cached and still current — resolve on the
  // caller's thread without touching the queue.
  if (std::optional<rag::WorkflowOutcome> hit = answer_cache_.get(question)) {
    if (outcome_fresh(*hit)) {
      metrics.counter(obs::kServeAnswerCacheHitsTotal).inc();
      submitted_.fetch_add(1, std::memory_order_relaxed);
      promise.set_value(std::move(*hit));
      return future;
    }
  }

  Request req;
  req.question = std::move(question);
  req.promise = std::move(promise);
  req.enqueue_seconds = steady_seconds();
  if (!queue_.push(std::move(req))) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    metrics.counter(obs::kServeRejectedTotal).inc();
    // req was not consumed by the closed queue; fail its promise.
    std::promise<rag::WorkflowOutcome> failed;
    future = failed.get_future();
    failed.set_exception(std::make_exception_ptr(
        std::runtime_error("serve::Server is stopped")));
    return future;
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
  publish_queue_gauges();
  return future;
}

rag::WorkflowOutcome Server::ask(std::string question) {
  return submit(std::move(question)).get();
}

rag::WorkflowOutcome Server::answer(std::string_view question) const {
  // All mutable state is internally synchronized; the const interface
  // mirrors AugmentedWorkflow::answer for QuestionService consumers.
  return const_cast<Server*>(this)->ask(std::string(question));
}

std::vector<rag::WorkflowOutcome> Server::ask_batch(
    const std::vector<std::string>& questions) {
  obs::MetricsRegistry& metrics = obs::global_metrics();
  metrics.counter(obs::kServeBatchesTotal).inc();
  metrics.counter(obs::kServeRequestsTotal, {{"source", "batch"}})
      .inc(questions.size());

  std::vector<rag::WorkflowOutcome> out(questions.size());
  if (questions.empty()) return out;

  obs::Span span(obs::global_tracer(), obs::kSpanServeBatch);
  span.set_attr("questions", questions.size());

  // Partition: cache hits resolve immediately; the rest are deduplicated so
  // each unique question is retrieved and answered once.
  std::vector<std::size_t> unique_slots;   // first slot per unique question
  std::unordered_map<std::string_view, std::size_t> first_of;
  std::vector<std::size_t> dup_of(questions.size(), SIZE_MAX);
  std::size_t cache_hits = 0;
  for (std::size_t i = 0; i < questions.size(); ++i) {
    auto it = first_of.find(std::string_view(questions[i]));
    if (it != first_of.end()) {
      dup_of[i] = it->second;
      continue;
    }
    std::optional<rag::WorkflowOutcome> hit = answer_cache_.get(questions[i]);
    if (hit && outcome_fresh(*hit)) {
      metrics.counter(obs::kServeAnswerCacheHitsTotal).inc();
      out[i] = std::move(*hit);
      dup_of[i] = i;  // duplicates of i copy from out[i]
      first_of.emplace(std::string_view(questions[i]), i);
      ++cache_hits;
      continue;
    }
    first_of.emplace(std::string_view(questions[i]), i);
    unique_slots.push_back(i);
  }
  span.set_attr("cache_hits", cache_hits);
  span.set_attr("unique_misses", unique_slots.size());
  // Cache hits and in-batch duplicates are accepted right here; enqueued
  // requests are counted one by one as their push succeeds, so a mid-batch
  // queue close cannot overcount submissions.
  submitted_.fetch_add(questions.size() - unique_slots.size(),
                       std::memory_order_relaxed);

  // One amortized vector scan for every uncached unique question (Baseline
  // arm has no retriever — workers run the plain pipeline instead). The
  // whole batch runs against one pinned snapshot: embeddings, scan and
  // per-question completion can never straddle a publish.
  const rag::Retriever* retriever = workflow_.retriever();
  std::vector<std::future<rag::WorkflowOutcome>> futures;
  futures.reserve(unique_slots.size());
  if (retriever != nullptr && !unique_slots.empty()) {
    const rag::SnapshotPtr snap = retriever->kb().snapshot();
    span.set_attr("generation", snap->generation);
    std::vector<std::string> unique_questions;
    unique_questions.reserve(unique_slots.size());
    for (std::size_t slot : unique_slots) {
      unique_questions.push_back(questions[slot]);
    }
    std::vector<embed::Vector> vecs(unique_questions.size());
    for (std::size_t i = 0; i < unique_questions.size(); ++i) {
      vecs[i] = embed_memoized(*snap, unique_questions[i]);
    }
    std::vector<rag::RetrievalResult> retrievals;
    bool batch_scan_ok = true;
    try {
      retrievals = retriever->retrieve_batch_with_embeddings(
          snap, unique_questions, vecs);
    } catch (const pkb::resilience::FaultError&) {
      // The shared scan was lost past its hedges. Fall back to unbatched
      // requests: each worker retries retrieval individually (fresh fault
      // decisions), so one bad scan doesn't degrade the whole batch.
      if (opts_.resilience == nullptr) throw;
      batch_scan_ok = false;
    }
    for (std::size_t i = 0; i < unique_slots.size(); ++i) {
      Request req;
      req.question = unique_questions[i];
      if (batch_scan_ok) {
        req.retrieval = std::make_unique<rag::RetrievalResult>(
            std::move(retrievals[i]));
      }
      enqueue(std::move(req), futures);
    }
  } else {
    for (std::size_t slot : unique_slots) {
      Request req;
      req.question = questions[slot];
      enqueue(std::move(req), futures);
    }
  }
  publish_queue_gauges();

  for (std::size_t i = 0; i < unique_slots.size(); ++i) {
    out[unique_slots[i]] = futures[i].get();
  }
  // Fill duplicate slots from their representative.
  for (std::size_t i = 0; i < questions.size(); ++i) {
    if (dup_of[i] != SIZE_MAX && dup_of[i] != i) out[i] = out[dup_of[i]];
  }
  return out;
}

bool Server::outcome_fresh(const rag::WorkflowOutcome& outcome) const {
  if (outcome.generation == 0) return true;  // Baseline: no corpus read
  if (outcome.generation == workflow_.kb().generation()) return true;
  obs::global_metrics()
      .counter(obs::kServeCacheStaleTotal, {{"cache", "answer"}})
      .inc();
  return false;
}

embed::Vector Server::embed_memoized(const rag::Snapshot& snap,
                                     const std::string& question) {
  obs::MetricsRegistry& metrics = obs::global_metrics();
  if (std::optional<MemoVector> hit = embedding_cache_.get(question)) {
    if (hit->fit_generation == snap.embedder_fit_generation) {
      metrics.counter(obs::kServeEmbedCacheHitsTotal).inc();
      return std::move(hit->vec);
    }
    // Memoized under an embedder that has since been refitted.
    metrics.counter(obs::kServeCacheStaleTotal, {{"cache", "embedding"}})
        .inc();
  }
  metrics.counter(obs::kServeEmbedCacheMissesTotal).inc();
  embed::Vector vec = snap.embedder->embed(question);
  embedding_cache_.put(question,
                       MemoVector{snap.embedder_fit_generation, vec});
  return vec;
}

void Server::enqueue(Request req,
                     std::vector<std::future<rag::WorkflowOutcome>>& futures) {
  std::promise<rag::WorkflowOutcome> promise;
  futures.push_back(promise.get_future());
  req.promise = std::move(promise);
  req.enqueue_seconds = steady_seconds();
  if (!queue_.push(std::move(req))) {
    // The closed queue consumed the request (and its promise); replace this
    // slot's future with a cleanly failed one. Earlier requests of the same
    // batch stay queued and are drained normally — a mid-batch close fails
    // only the slots that were never accepted, never with broken_promise.
    rejected_.fetch_add(1, std::memory_order_relaxed);
    obs::global_metrics().counter(obs::kServeRejectedTotal).inc();
    std::promise<rag::WorkflowOutcome> failed;
    failed.set_exception(std::make_exception_ptr(
        std::runtime_error("serve::Server is stopped")));
    futures.back() = failed.get_future();
    return;
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
}

void Server::worker_loop() {
  while (std::optional<Request> req = queue_.pop()) {
    process(*req);
  }
}

void Server::process(Request& req) {
  obs::MetricsRegistry& metrics = obs::global_metrics();
  const double start = steady_seconds();
  const double queue_wait = start - req.enqueue_seconds;
  metrics.histogram(obs::kServeQueueWaitSeconds).observe(queue_wait);
  metrics.gauge(obs::kServeInflight).add(1.0);
  publish_queue_gauges();

  obs::Span span(obs::global_tracer(), obs::kSpanServeRequest);
  span.set_attr("batched", req.retrieval != nullptr);
  try {
    // Re-check the cache: an identical question may have been answered
    // between submit() and now (duplicate suppression under concurrency).
    rag::WorkflowOutcome outcome;
    std::optional<rag::WorkflowOutcome> hit = answer_cache_.get(req.question);
    if (hit && outcome_fresh(*hit)) {
      metrics.counter(obs::kServeAnswerCacheHitsTotal).inc();
      span.set_attr("cache", "hit");
      outcome = std::move(*hit);
    } else {
      metrics.counter(obs::kServeAnswerCacheMissesTotal).inc();
      span.set_attr("cache", "miss");
      pkb::resilience::RequestContext ctx;
      pkb::resilience::RequestContext* ctxp = nullptr;
      if (opts_.resilience != nullptr) {
        ctx = opts_.resilience->make_context();
        // Time already spent waiting in the queue comes off the budget.
        ctx.budget.charge(queue_wait);
        ctxp = &ctx;
      }
      outcome = run_pipeline(req.question, std::move(req.retrieval), ctxp);
      if (outcome.retrieval.shards_failed > 0) {
        // Scatter–gather answered without every shard: the answer is
        // usable but tagged partial (see rag::RetrievalResult).
        partial_.fetch_add(1, std::memory_order_relaxed);
        span.set_attr("partial_shards", outcome.retrieval.shards_failed);
      }
      std::size_t evicted = 0;
      if (outcome.degraded()) {
        degraded_.fetch_add(1, std::memory_order_relaxed);
        span.set_attr("degraded",
                      pkb::resilience::to_string(outcome.degradation));
        // Degraded answers get a short life (or none): the next ask should
        // retry the full pipeline once the fault clears, not inherit a
        // transient outage at the normal TTL.
        if (opts_.degraded_answer_ttl_seconds > 0.0) {
          evicted = answer_cache_.put_with_ttl(
              req.question, outcome, opts_.degraded_answer_ttl_seconds);
        }
      } else {
        evicted = answer_cache_.put(req.question, outcome);
      }
      if (evicted > 0) {
        metrics.counter(obs::kServeCacheEvictionsTotal).inc(evicted);
      }
    }
    req.promise.set_value(std::move(outcome));
  } catch (...) {
    req.promise.set_exception(std::current_exception());
  }

  metrics.gauge(obs::kServeInflight).add(-1.0);
  metrics.histogram(obs::kServeRequestSeconds)
      .observe(steady_seconds() - req.enqueue_seconds);
}

rag::WorkflowOutcome Server::run_session_turn(
    const std::string& question, rag::SessionPromptContext& session,
    double queue_wait_seconds) {
  pkb::resilience::RequestContext ctx;
  pkb::resilience::RequestContext* ctxp = nullptr;
  if (opts_.resilience != nullptr) {
    ctx = opts_.resilience->make_context();
    // Real time spent queued in the session lane comes off the budget,
    // mirroring the worker path's queue-wait charge.
    ctx.budget.charge(queue_wait_seconds);
    ctxp = &ctx;
  }
  rag::WorkflowOutcome outcome =
      run_pipeline(question, nullptr, ctxp, &session);
  if (outcome.degraded()) degraded_.fetch_add(1, std::memory_order_relaxed);
  if (outcome.retrieval.shards_failed > 0) {
    partial_.fetch_add(1, std::memory_order_relaxed);
  }
  return outcome;
}

rag::WorkflowOutcome Server::run_pipeline(
    const std::string& question,
    std::unique_ptr<rag::RetrievalResult> retrieval,
    pkb::resilience::RequestContext* ctx,
    rag::SessionPromptContext* session) {
  obs::MetricsRegistry& metrics = obs::global_metrics();
  pkb::util::Stopwatch watch;

  // Record/replay sampling: a sampled request threads a StageTrace through
  // the workflow and persists it after the pipeline completes.
  rag::StageTrace trace_storage;
  rag::StageTrace* trace = nullptr;
  if (opts_.recorder != nullptr && opts_.recorder->sample()) {
    trace = &trace_storage;
  }

  rag::WorkflowOutcome outcome;
  const rag::Retriever* retriever = workflow_.retriever();
  if (retrieval != nullptr) {
    outcome = workflow_.ask_with_retrieval(question, std::move(*retrieval),
                                           ctx, trace, session);
  } else if (retriever != nullptr) {
    // Single path: pin one snapshot for the whole request, memoize the
    // query embedding against it, then retrieve on it.
    const rag::SnapshotPtr snap = retriever->kb().snapshot();
    const embed::Vector vec = embed_memoized(*snap, question);
    if (ctx != nullptr) {
      try {
        rag::RetrievalResult result =
            retriever->retrieve_with_embedding(snap, question, vec);
        outcome = workflow_.ask_with_retrieval(question, std::move(result),
                                               ctx, trace, session);
      } catch (const pkb::resilience::FaultError&) {
        // Retrieval lost past its hedges: answer parametrically.
        ctx->degrade(pkb::resilience::DegradationLevel::NoRetrieval);
        outcome = workflow_.ask_with_retrieval(
            question, rag::RetrievalResult{}, ctx, trace, session);
      }
    } else {
      outcome = workflow_.ask_with_retrieval(
          question, retriever->retrieve_with_embedding(snap, question, vec),
          nullptr, trace, session);
    }
  } else {
    // Baseline arm: no retrieval stage.
    outcome = workflow_.ask(question, ctx, trace, session);
  }
  computed_.fetch_add(1, std::memory_order_relaxed);
  if (trace != nullptr) opts_.recorder->record(std::move(trace_storage));

  // Realize a slice of the simulated LLM latency as real wall time so that
  // multi-worker overlap (and cache hits skipping this stall) are
  // measurable — see ServerOptions::llm_latency_scale.
  if (opts_.llm_latency_scale > 0.0 &&
      outcome.response.latency_seconds > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(
        outcome.response.latency_seconds * opts_.llm_latency_scale));
  }

  metrics.histogram(obs::kServePipelineSeconds).observe(watch.seconds());
  return outcome;
}

Server::Stats Server::stats() const {
  Stats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.computed = computed_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.degraded = degraded_.load(std::memory_order_relaxed);
  s.partial = partial_.load(std::memory_order_relaxed);
  s.answer_cache = answer_cache_.stats();
  s.embedding_cache = embedding_cache_.stats();
  s.queue_depth = queue_.size();
  s.workers = workers_.size();
  return s;
}

}  // namespace pkb::serve
