#pragma once
// Bounded MPMC queue with blocking backpressure and graceful shutdown — the
// spine of the serving layer (serve/server.h). Producers block in push()
// while the queue is full (backpressure toward clients); consumers block in
// pop() while it is empty. close() wakes everyone: pending items are still
// drained, then pop() returns nullopt and push() returns false, which is
// how worker threads learn to exit.
//
// This is the standard worker-pool shape of the HPC repos the serving layer
// is modeled on: one mutex, two condition variables (not-full / not-empty),
// FIFO order.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace pkb::serve {

template <typename T>
class BoundedQueue {
 public:
  /// `capacity` must be >= 1: the queue holds at most that many items.
  explicit BoundedQueue(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Block until there is room (backpressure), then enqueue. Returns false
  /// without enqueuing when the queue was closed first.
  bool push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Enqueue only if there is room right now; never blocks. Returns false
  /// when full or closed (load-shedding entry point).
  bool try_push(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Block until an item is available or the queue is closed AND drained;
  /// nullopt signals shutdown.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;  // closed and drained
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Close the queue: subsequent push() calls fail, queued items remain
  /// poppable, and blocked threads wake. Idempotent.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  /// Current queue depth (racy by nature; for gauges and tests).
  [[nodiscard]] std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace pkb::serve
