#pragma once
// Concurrent query-serving front end over the Fig-3 workflow — the
// production shape of the paper's one-question-at-a-time Discord deployment
// (§III-E): a bounded MPMC request queue with backpressure feeding N worker
// threads that each run the full retrieve → rerank → LLM → postprocess
// pipeline against a pinned generation of the shared rag::KnowledgeBase
// (ingestion may publish new generations at any moment; see
// rag/knowledge_base.h).
//
// Two caches short-circuit repeated traffic:
//  * answer cache   — question → WorkflowOutcome (sharded LRU, TTL +
//    capacity eviction): an exact repeat skips the whole pipeline;
//  * embedding memo — question → query embedding: a repeat that misses the
//    answer cache (e.g. expired TTL) still skips the embed stage.
//
// Both caches are generation-aware so live ingestion never serves stale
// content: a cached answer is only a hit while its stamped KnowledgeBase
// generation is still current (stale entries count pkb_serve_cache_stale
// and are lazily overwritten by the recompute), and the embedding memo is
// keyed by the embedder's fit generation, so delta generations (same
// embedder) keep their memo hits while a full refit invalidates them.
//
// ask_batch() additionally amortizes the vector scan: all uncached
// questions in a batch share one VectorStore::similarity_search_batch pass,
// then fan out across the workers for the per-question stages.
//
// Results are deterministic: cached, batched, and uncached answers carry
// the same content a serial AugmentedWorkflow::ask() would produce (only
// wall-clock timing fields and history ids differ — cache hits do not
// re-append to history).
//
// Everything is observable under the pkb_serve_* metric namespace and the
// serve_request / serve_batch spans (docs/OBSERVABILITY.md).

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "rag/workflow.h"
#include "serve/bounded_queue.h"
#include "serve/lru_cache.h"

namespace pkb::replay {
class TraceRecorder;
}  // namespace pkb::replay

namespace pkb::serve {

struct ServerOptions {
  /// Worker threads running the pipeline. 0 means one per hardware thread.
  std::size_t workers = 4;
  /// Bounded request-queue capacity; full queue blocks submitters
  /// (backpressure).
  std::size_t queue_capacity = 64;

  /// Total answer-cache entries across shards; 0 disables the cache.
  std::size_t answer_cache_capacity = 256;
  /// Lock shards for both caches.
  std::size_t cache_shards = 8;
  /// Answer TTL in seconds; 0 = entries never expire.
  double answer_ttl_seconds = 0.0;
  /// Total embedding-memo entries; 0 disables the memo.
  std::size_t embedding_cache_capacity = 512;

  /// When > 0, each uncached answer's *simulated* LLM latency is realized
  /// as real wait time scaled by this factor (e.g. 0.005 turns a 9.6 s
  /// simulated response into a 48 ms stall). In deployment the LLM call is
  /// network I/O that concurrent workers overlap; this knob makes the
  /// simulated serving pipeline exhibit the same behaviour so throughput
  /// benches measure something real. 0 (default) = off.
  double llm_latency_scale = 0.0;

  /// Test hook: time source for cache TTLs (defaults to steady_seconds).
  CacheClock cache_clock;

  /// Shared resilience engine (policies + circuit breaker). Non-null
  /// enables the full treatment per request: a deadline budget charged with
  /// queue wait, retrieval wall time, and simulated LLM latency; bounded
  /// LLM retries; the breaker; and the degradation ladder (see
  /// resilience/resilience.h). Not owned — must outlive the server.
  resilience::Resilience* resilience = nullptr;
  /// TTL for cached *degraded* answers, so a transient outage cannot poison
  /// the long-lived answer cache. 0 = never cache degraded answers.
  double degraded_answer_ttl_seconds = 2.0;

  /// Trace recorder for the record/replay subsystem (replay/trace.h).
  /// Non-null records every Nth computed request's per-stage artifacts (the
  /// recorder's sample_every knob); cache hits record nothing (no pipeline
  /// ran). Not owned — must outlive the server.
  replay::TraceRecorder* recorder = nullptr;
};

/// Multi-worker serving layer. Construct, submit()/ask()/ask_batch() from
/// any number of client threads, stop() (or destroy) to shut down
/// gracefully — queued requests are drained first.
class Server final : public rag::QuestionService {
 public:
  /// The workflow (and everything it references) must outlive the server.
  explicit Server(const rag::AugmentedWorkflow& workflow,
                  ServerOptions opts = {});
  ~Server() override;

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Enqueue one question; blocks only while the queue is full. The future
  /// resolves to the outcome (or to std::runtime_error after stop()).
  [[nodiscard]] std::future<rag::WorkflowOutcome> submit(std::string question);

  /// Blocking convenience: submit and wait.
  [[nodiscard]] rag::WorkflowOutcome ask(std::string question);

  /// QuestionService entry (the chat bot's hook): all internal mutation is
  /// synchronized, so the const interface is honest to share.
  [[nodiscard]] rag::WorkflowOutcome answer(
      std::string_view question) const override;

  /// Batch submission: answers come back in input order. Uncached questions
  /// share one batched vector scan, then complete concurrently on the
  /// workers. Duplicate questions within the batch are computed once.
  [[nodiscard]] std::vector<rag::WorkflowOutcome> ask_batch(
      const std::vector<std::string>& questions);

  /// Run one session turn through the pipeline on the caller's thread —
  /// the session serving layer's entry point (serve/session.h calls this
  /// from its affinity lanes; it owns its own queues and admission
  /// control, so the server's request queue is not involved). The answer
  /// cache is bypassed in both directions: a session prompt depends on the
  /// session's retrieval memory and conversation history, so its outcome
  /// is neither reusable by nor reusable from sessionless traffic. The
  /// embedding memo, resilience treatment (with `queue_wait_seconds`
  /// charged to the budget), trace recorder, and latency realization are
  /// all shared with the normal paths.
  [[nodiscard]] rag::WorkflowOutcome run_session_turn(
      const std::string& question, rag::SessionPromptContext& session,
      double queue_wait_seconds);

  /// Graceful shutdown: stop accepting, drain the queue, join the workers.
  /// Idempotent; called by the destructor.
  void stop();

  /// Point-in-time serving statistics.
  struct Stats {
    std::uint64_t submitted = 0;       ///< requests accepted (single + batch)
    std::uint64_t computed = 0;        ///< full pipeline executions
    std::uint64_t rejected = 0;        ///< submissions after stop()
    std::uint64_t degraded = 0;        ///< computed answers below Full
    std::uint64_t partial = 0;         ///< answers missing >= 1 shard
    CacheStats answer_cache;
    CacheStats embedding_cache;
    std::size_t queue_depth = 0;
    std::size_t workers = 0;
  };
  [[nodiscard]] Stats stats() const;

  [[nodiscard]] const ServerOptions& options() const { return opts_; }

 private:
  struct Request {
    std::string question;
    std::promise<rag::WorkflowOutcome> promise;
    double enqueue_seconds = 0.0;  ///< steady_seconds() at submit time
    /// Retrieval precomputed by the batched path; null on the single path.
    std::unique_ptr<rag::RetrievalResult> retrieval;
  };

  /// One memoized query embedding, stamped with the fit generation of the
  /// embedder that produced it (Snapshot::embedder_fit_generation). A hit
  /// is only valid against a snapshot with the same fit generation.
  struct MemoVector {
    std::uint64_t fit_generation = 0;
    embed::Vector vec;
  };

  /// Finish wiring `req` (promise + enqueue stamp) and push it. On a closed
  /// queue the request's future is replaced by one failing with
  /// std::runtime_error — the slot fails cleanly; requests already queued in
  /// the same batch are unaffected. Only actually-enqueued requests count
  /// toward `submitted_`.
  void enqueue(Request req,
               std::vector<std::future<rag::WorkflowOutcome>>& futures);
  void worker_loop();
  void process(Request& req);
  /// True when a cached outcome still reflects the current KnowledgeBase
  /// generation (Baseline outcomes, generation 0, never go stale). Counts
  /// pkb_serve_cache_stale_total when false.
  [[nodiscard]] bool outcome_fresh(const rag::WorkflowOutcome& outcome) const;
  /// Memoized query embedding for `snap`, or compute-and-memoize.
  [[nodiscard]] embed::Vector embed_memoized(const rag::Snapshot& snap,
                                             const std::string& question);
  /// Run the full pipeline for a cache miss (embedding memo + retrieval +
  /// LLM + postprocess + optional latency realization). `ctx`, when
  /// non-null, is the request's resilience context; retrieval faults that
  /// escape the retriever's hedging degrade to a parametric answer here.
  [[nodiscard]] rag::WorkflowOutcome run_pipeline(
      const std::string& question,
      std::unique_ptr<rag::RetrievalResult> retrieval,
      resilience::RequestContext* ctx,
      rag::SessionPromptContext* session = nullptr);
  void publish_queue_gauges();

  const rag::AugmentedWorkflow& workflow_;
  ServerOptions opts_;
  BoundedQueue<Request> queue_;
  ShardedLruCache<std::string, rag::WorkflowOutcome> answer_cache_;
  ShardedLruCache<std::string, MemoVector> embedding_cache_;
  std::vector<std::thread> workers_;
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> computed_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> degraded_{0};
  std::atomic<std::uint64_t> partial_{0};
  std::atomic<bool> stopped_{false};
};

}  // namespace pkb::serve
