#pragma once
// Sharded LRU cache with TTL — the answer and query-embedding caches of the
// serving layer. Keys hash to one of S independent shards, each guarded by
// its own mutex, so concurrent workers mostly touch disjoint locks (the
// sharded read-mostly-state pattern of the related HPC repos).
//
// Eviction: the total capacity is distributed across shards so per-shard
// capacities sum to exactly `capacity` (the first capacity % shards shards
// hold one extra entry; a capacity smaller than the shard count reduces the
// shard count so every shard holds at least one entry — the cache never
// silently provisions more or fewer entries than asked for). A full shard
// evicts its least-recently-used entry; a TTL (seconds, 0 = never) expires
// entries lazily at lookup time. The time source is injectable so tests can
// drive expiry deterministically.

#include <cstddef>
#include <cstdint>
#include <chrono>
#include <functional>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace pkb::serve {

/// Monotonic seconds used for TTL stamps.
using CacheClock = std::function<double()>;

[[nodiscard]] inline double steady_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct LruCacheOptions {
  std::size_t capacity = 256;   ///< total entries across all shards
  std::size_t shards = 8;       ///< independent lock domains
  double ttl_seconds = 0.0;     ///< 0 = entries never expire
  CacheClock clock;             ///< defaults to steady_seconds
};

/// Point-in-time counters (monotonic since construction).
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;     ///< includes TTL-expired lookups
  std::uint64_t evictions = 0;  ///< capacity evictions + TTL expirations
  std::uint64_t entries = 0;    ///< current resident entries
};

template <typename K, typename V, typename Hash = std::hash<K>>
class ShardedLruCache {
 public:
  explicit ShardedLruCache(LruCacheOptions opts = {})
      : opts_(std::move(opts)) {
    if (opts_.shards == 0) opts_.shards = 1;
    if (!opts_.clock) opts_.clock = steady_seconds;
    // Distribute the total capacity exactly: base entries per shard plus
    // one extra for the first `capacity % shards` shards. When the
    // capacity cannot give every shard an entry, shrink the shard count to
    // the capacity instead of over-provisioning — the invariant is
    // sum(shard capacities) == capacity <= max(capacity, shards).
    if (opts_.capacity > 0 && opts_.capacity < opts_.shards) {
      opts_.shards = opts_.capacity;
    }
    shards_ = std::vector<Shard>(opts_.shards);
    const std::size_t base = opts_.capacity / opts_.shards;
    const std::size_t extra = opts_.capacity % opts_.shards;
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      shards_[i].capacity = base + (i < extra ? 1 : 0);
    }
  }

  /// Whole-cache enable check: capacity 0 disables caching entirely (every
  /// get misses, put is a no-op) so callers need no branching.
  [[nodiscard]] bool enabled() const { return opts_.capacity > 0; }

  /// Look up and refresh recency. Expired entries are dropped and count as
  /// both a miss and an eviction.
  [[nodiscard]] std::optional<V> get(const K& key) {
    if (!enabled()) return std::nullopt;
    Shard& shard = shard_for(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it == shard.index.end()) {
      ++shard.stats.misses;
      return std::nullopt;
    }
    const double ttl =
        it->second->ttl_seconds > 0.0 ? it->second->ttl_seconds
                                      : opts_.ttl_seconds;
    if (ttl > 0.0 && opts_.clock() - it->second->stamp > ttl) {
      shard.order.erase(it->second);
      shard.index.erase(it);
      ++shard.stats.misses;
      ++shard.stats.evictions;
      return std::nullopt;
    }
    // Move to the front (most recently used).
    shard.order.splice(shard.order.begin(), shard.order, it->second);
    ++shard.stats.hits;
    return it->second->value;
  }

  /// Insert or overwrite; refreshes the TTL stamp. Returns the number of
  /// entries evicted to make room (0 or 1).
  std::size_t put(const K& key, V value) {
    return put_with_ttl(key, std::move(value), 0.0);
  }

  /// put() with a per-entry TTL override: `ttl_seconds` > 0 expires this
  /// entry after that long regardless of the cache-wide TTL — the serving
  /// layer gives degraded answers a short life so a transient outage never
  /// poisons the long-TTL cache. 0 keeps the cache-wide policy.
  std::size_t put_with_ttl(const K& key, V value, double ttl_seconds) {
    if (!enabled()) return 0;
    Shard& shard = shard_for(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    const double now = opts_.clock();
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      it->second->value = std::move(value);
      it->second->stamp = now;
      it->second->ttl_seconds = ttl_seconds;
      shard.order.splice(shard.order.begin(), shard.order, it->second);
      return 0;
    }
    std::size_t evicted = 0;
    if (shard.order.size() >= shard.capacity) {
      const Entry& lru = shard.order.back();
      shard.index.erase(lru.key);
      shard.order.pop_back();
      ++shard.stats.evictions;
      evicted = 1;
    }
    shard.order.push_front(Entry{key, std::move(value), now, ttl_seconds});
    shard.index.emplace(key, shard.order.begin());
    return evicted;
  }

  /// Drop every entry (stats are retained).
  void clear() {
    for (Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      shard.order.clear();
      shard.index.clear();
    }
  }

  [[nodiscard]] std::size_t size() const {
    std::size_t n = 0;
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      n += shard.order.size();
    }
    return n;
  }

  /// Aggregated counters across shards.
  [[nodiscard]] CacheStats stats() const {
    CacheStats total;
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      total.hits += shard.stats.hits;
      total.misses += shard.stats.misses;
      total.evictions += shard.stats.evictions;
      total.entries += shard.order.size();
    }
    return total;
  }

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  /// Capacity of shard `i`; shard capacities sum to total_capacity().
  [[nodiscard]] std::size_t shard_capacity(std::size_t i) const {
    return shards_.at(i).capacity;
  }
  /// Exactly the configured capacity (never rounded up or down).
  [[nodiscard]] std::size_t total_capacity() const {
    std::size_t total = 0;
    for (const Shard& shard : shards_) total += shard.capacity;
    return total;
  }

 private:
  struct Entry {
    K key;
    V value;
    double stamp = 0.0;        ///< insertion/refresh time for TTL
    double ttl_seconds = 0.0;  ///< per-entry override; 0 = cache-wide TTL
  };
  struct Shard {
    mutable std::mutex mu;
    std::size_t capacity = 0;
    std::list<Entry> order;  ///< front = most recently used
    std::unordered_map<K, typename std::list<Entry>::iterator> index;
    CacheStats stats;
  };

  Shard& shard_for(const K& key) {
    return shards_[Hash{}(key) % shards_.size()];
  }
  const Shard& shard_for(const K& key) const {
    return shards_[Hash{}(key) % shards_.size()];
  }

  LruCacheOptions opts_;
  std::vector<Shard> shards_;
};

}  // namespace pkb::serve
