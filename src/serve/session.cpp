#include "serve/session.h"

#include <algorithm>
#include <functional>
#include <utility>

#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace pkb::serve {

std::string_view to_string(Admission admission) {
  switch (admission) {
    case Admission::Admitted:
      return "admitted";
    case Admission::ShedSessionInflight:
      return "session_inflight";
    case Admission::ShedQueueFull:
      return "queue_full";
    case Admission::ShedNewSession:
      return "new_session";
    case Admission::ShedDeadline:
      return "deadline";
  }
  return "?";
}

SessionManager::SessionManager(Server& server, SessionOptions opts)
    : server_(server), opts_(std::move(opts)) {
  if (opts_.lanes == 0) opts_.lanes = 1;
  if (opts_.lane_queue_capacity == 0) opts_.lane_queue_capacity = 1;
  if (opts_.max_sessions == 0) opts_.max_sessions = 1;
  if (opts_.max_inflight_per_session == 0) opts_.max_inflight_per_session = 1;
  if (!opts_.clock) opts_.clock = steady_seconds;
  lanes_.reserve(opts_.lanes);
  for (std::size_t i = 0; i < opts_.lanes; ++i) {
    lanes_.push_back(std::make_unique<Lane>(opts_.lane_queue_capacity));
  }
  for (std::size_t i = 0; i < opts_.lanes; ++i) {
    Lane& lane = *lanes_[i];
    lane.index = i;
    lane.worker = std::thread([this, &lane] { lane_loop(lane); });
  }
}

SessionManager::~SessionManager() { stop(); }

void SessionManager::stop() {
  if (stopped_.exchange(true)) return;
  for (auto& lane : lanes_) lane->queue.close();
  for (auto& lane : lanes_) {
    if (lane->worker.joinable()) lane->worker.join();
  }
  // Final per-session turn counts for the distribution histogram (evicted
  // sessions were observed at eviction time).
  obs::MetricsRegistry& metrics = obs::global_metrics();
  std::lock_guard<std::mutex> lock(sessions_mu_);
  for (const auto& [id, session] : sessions_) {
    metrics.histogram(obs::kSessionTurnsPerSession)
        .observe(static_cast<double>(
            session->turns.load(std::memory_order_relaxed)));
  }
}

std::size_t SessionManager::lane_of(const std::string& session_id) const {
  return std::hash<std::string>{}(session_id) % lanes_.size();
}

double SessionManager::now_seconds() const { return opts_.clock(); }

std::future<TurnOutcome> SessionManager::submit(const std::string& session_id,
                                                std::string question) {
  obs::MetricsRegistry& metrics = obs::global_metrics();
  metrics.counter(obs::kSessionTurnsTotal).inc();
  submitted_.fetch_add(1, std::memory_order_relaxed);

  obs::Span span(obs::global_tracer(), obs::kSpanAdmission);
  span.set_attr("session", session_id);
  const double now = now_seconds();
  // A stopped manager sheds instead of throwing: submit() never blocks and
  // never fails a future, even racing shutdown.
  if (stopped_.load(std::memory_order_relaxed)) {
    span.set_attr("decision", to_string(Admission::ShedQueueFull));
    return shed_turn(session_id, Admission::ShedQueueFull);
  }
  sweep_idle(now);

  bool created = false;
  std::shared_ptr<Session> session =
      lookup_session(session_id, /*create_if_missing=*/false, created);
  const bool is_new = session == nullptr;
  const std::size_t lane_idx = lane_of(session_id);
  Lane& lane = *lanes_[lane_idx];
  const std::size_t depth = lane.queue.size();
  span.set_attr("lane", static_cast<std::uint64_t>(lane_idx));
  span.set_attr("depth", static_cast<std::uint64_t>(depth));
  span.set_attr("new_session", is_new);

  // Admission, in shed order: a runaway session first, hard lane capacity
  // second, new-before-in-flight at the watermark third, and the
  // estimated-wait deadline last.
  Admission decision = Admission::Admitted;
  if (session != nullptr && session->inflight.load(std::memory_order_relaxed)
                                >= opts_.max_inflight_per_session) {
    decision = Admission::ShedSessionInflight;
  } else if (depth >= lane.queue.capacity()) {
    decision = Admission::ShedQueueFull;
  } else if (is_new && opts_.new_session_shed_fraction > 0.0 &&
             static_cast<double>(depth) >=
                 opts_.new_session_shed_fraction *
                     static_cast<double>(lane.queue.capacity())) {
    decision = Admission::ShedNewSession;
  } else if (opts_.admission_deadline_seconds > 0.0) {
    double estimate = lane.ema_turn_seconds.load(std::memory_order_relaxed);
    if (estimate <= 0.0) estimate = opts_.initial_turn_seconds_estimate;
    if (estimate * static_cast<double>(depth + 1) >
        opts_.admission_deadline_seconds) {
      decision = Admission::ShedDeadline;
    }
  }
  if (decision != Admission::Admitted) {
    span.set_attr("decision", to_string(decision));
    return shed_turn(session_id, decision);
  }

  if (session == nullptr) {
    session = lookup_session(session_id, /*create_if_missing=*/true, created);
  }
  session->last_active_seconds.store(now, std::memory_order_relaxed);
  session->inflight.fetch_add(1, std::memory_order_relaxed);

  Turn turn;
  turn.session = session;
  turn.question = std::move(question);
  turn.submit_seconds = now;
  std::promise<TurnOutcome> promise;
  std::future<TurnOutcome> future = promise.get_future();
  turn.promise = std::move(promise);
  if (!lane.queue.try_push(std::move(turn))) {
    // Raced to full (or closed) between the depth check and the push.
    session->inflight.fetch_sub(1, std::memory_order_relaxed);
    span.set_attr("decision", to_string(Admission::ShedQueueFull));
    return shed_turn(session_id, Admission::ShedQueueFull);
  }
  admitted_.fetch_add(1, std::memory_order_relaxed);
  span.set_attr("decision", to_string(Admission::Admitted));
  publish_gauges();
  return future;
}

TurnOutcome SessionManager::ask(const std::string& session_id,
                                std::string question) {
  return submit(session_id, std::move(question)).get();
}

std::future<TurnOutcome> SessionManager::shed_turn(
    const std::string& session_id, Admission reason) {
  shed_.fetch_add(1, std::memory_order_relaxed);
  switch (reason) {
    case Admission::ShedSessionInflight:
      shed_session_inflight_.fetch_add(1, std::memory_order_relaxed);
      break;
    case Admission::ShedQueueFull:
      shed_queue_full_.fetch_add(1, std::memory_order_relaxed);
      break;
    case Admission::ShedNewSession:
      shed_new_session_.fetch_add(1, std::memory_order_relaxed);
      break;
    case Admission::ShedDeadline:
      shed_deadline_.fetch_add(1, std::memory_order_relaxed);
      break;
    case Admission::Admitted:
      break;
  }
  obs::global_metrics()
      .counter(obs::kSessionShedTotal,
               {{"reason", std::string(to_string(reason))}})
      .inc();

  // The typed Overload answer: the bottom rung of the degradation ladder,
  // resolved on the caller's thread — a shed turn never occupies a lane.
  TurnOutcome out;
  out.admission = reason;
  out.session_id = session_id;
  out.outcome.degradation = resilience::DegradationLevel::Unavailable;
  out.outcome.response.mode = "shed-overload";
  out.outcome.response.text =
      "[overload] The assistant is shedding load (" +
      std::string(to_string(reason)) + "); please retry shortly.";
  out.outcome.processed.plain_text = out.outcome.response.text;
  std::promise<TurnOutcome> promise;
  promise.set_value(std::move(out));
  return promise.get_future();
}

std::shared_ptr<SessionManager::Session> SessionManager::lookup_session(
    const std::string& session_id, bool create_if_missing, bool& created) {
  created = false;
  std::lock_guard<std::mutex> lock(sessions_mu_);
  auto it = sessions_.find(session_id);
  if (it != sessions_.end()) {
    // Touch: most recently active moves to the back of the LRU list.
    lru_.splice(lru_.end(), lru_, it->second->lru_pos);
    return it->second;
  }
  if (!create_if_missing) return nullptr;
  while (sessions_.size() >= opts_.max_sessions && !lru_.empty()) {
    evict_locked(lru_.front());
  }
  auto session = std::make_shared<Session>();
  session->id = session_id;
  session->last_active_seconds.store(now_seconds(),
                                     std::memory_order_relaxed);
  lru_.push_back(session_id);
  session->lru_pos = std::prev(lru_.end());
  sessions_.emplace(session_id, session);
  created = true;
  sessions_created_.fetch_add(1, std::memory_order_relaxed);
  obs::MetricsRegistry& metrics = obs::global_metrics();
  metrics.counter(obs::kSessionCreatedTotal).inc();
  metrics.gauge(obs::kSessionActive)
      .set(static_cast<double>(sessions_.size()));
  return session;
}

void SessionManager::evict_locked(const std::string& session_id) {
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) return;
  obs::MetricsRegistry& metrics = obs::global_metrics();
  metrics.histogram(obs::kSessionTurnsPerSession)
      .observe(static_cast<double>(
          it->second->turns.load(std::memory_order_relaxed)));
  // An in-flight turn keeps the Session alive through its shared_ptr and
  // completes against the orphaned state; only the id mapping goes away.
  lru_.erase(it->second->lru_pos);
  sessions_.erase(it);
  sessions_evicted_.fetch_add(1, std::memory_order_relaxed);
  metrics.counter(obs::kSessionEvictedTotal).inc();
  metrics.gauge(obs::kSessionActive)
      .set(static_cast<double>(sessions_.size()));
}

void SessionManager::sweep_idle(double now) {
  if (opts_.session_idle_ttl_seconds <= 0.0) return;
  std::lock_guard<std::mutex> lock(sessions_mu_);
  while (!lru_.empty()) {
    auto it = sessions_.find(lru_.front());
    if (it == sessions_.end()) {
      lru_.pop_front();
      continue;
    }
    const double idle =
        now - it->second->last_active_seconds.load(std::memory_order_relaxed);
    if (idle < opts_.session_idle_ttl_seconds) break;
    evict_locked(lru_.front());
  }
}

void SessionManager::publish_gauges() {
  std::size_t depth = 0;
  for (const auto& lane : lanes_) depth += lane->queue.size();
  obs::global_metrics()
      .gauge(obs::kSessionLaneDepth)
      .set(static_cast<double>(depth));
}

void SessionManager::lane_loop(Lane& lane) {
  while (std::optional<Turn> turn = lane.queue.pop()) {
    process_turn(lane, *turn);
  }
}

void SessionManager::process_turn(Lane& lane, Turn& turn) {
  obs::MetricsRegistry& metrics = obs::global_metrics();
  const double start = now_seconds();
  const double wait = std::max(0.0, start - turn.submit_seconds);
  metrics.histogram(obs::kSessionQueueWaitSeconds).observe(wait);
  metrics.gauge(obs::kSessionInflight).add(1.0);
  publish_gauges();

  Session& session = *turn.session;
  obs::Span span(obs::global_tracer(), obs::kSpanSessionTurn);
  span.set_attr("session", session.id);
  span.set_attr("lane", static_cast<std::uint64_t>(lane.index));

  // Session state below is touched without a lock: affinity makes this
  // lane's worker the only writer of this session's memory and history.
  rag::SessionPromptContext prompt_ctx;
  if (!session.seen_context_ids.empty()) {
    prompt_ctx.seen_context_ids = &session.seen_context_ids;
    prompt_ctx.memory_generation = session.memory_generation;
  }
  std::vector<llm::ContextDoc> history(session.history.begin(),
                                       session.history.end());
  if (!history.empty()) prompt_ctx.history_contexts = &history;

  TurnOutcome out;
  out.session_id = session.id;
  out.queue_wait_seconds = wait;
  out.turn = session.turns.fetch_add(1, std::memory_order_relaxed) + 1;
  span.set_attr("turn", out.turn);
  try {
    out.outcome = server_.run_session_turn(turn.question, prompt_ctx, wait);
    out.deduped_contexts = prompt_ctx.deduped;
    out.history_contexts = prompt_ctx.history_attached;

    if (prompt_ctx.memory_stale) {
      // The knowledge base swapped generations mid-session: every memory
      // entry may have been re-ingested, so the whole memory resets and
      // restamps at the turn's generation.
      session.seen_context_ids.clear();
      session.seen_order.clear();
      memory_invalidations_.fetch_add(1, std::memory_order_relaxed);
      metrics.counter(obs::kSessionMemoryInvalidationsTotal).inc();
    }
    session.memory_generation = out.outcome.generation;
    for (std::string& id : prompt_ctx.attached_context_ids) {
      if (session.seen_context_ids.insert(id).second) {
        session.seen_order.push_back(std::move(id));
        if (session.seen_order.size() > opts_.max_memory_entries) {
          session.seen_context_ids.erase(session.seen_order.front());
          session.seen_order.pop_front();
        }
      }
    }
    if (opts_.max_history_turns > 0) {
      llm::ContextDoc doc;
      doc.id = "session:" + session.id + ":turn:" + std::to_string(out.turn);
      doc.title = "Earlier in this conversation";
      doc.text = "Q: " + turn.question + "\nA: " +
                 (out.outcome.processed.plain_text.empty()
                      ? out.outcome.response.text
                      : out.outcome.processed.plain_text);
      session.history.push_back(std::move(doc));
      while (session.history.size() > opts_.max_history_turns) {
        session.history.pop_front();
      }
    }

    if (prompt_ctx.deduped > 0) {
      dedup_dropped_.fetch_add(prompt_ctx.deduped,
                               std::memory_order_relaxed);
      metrics.counter(obs::kSessionDedupDroppedTotal)
          .inc(prompt_ctx.deduped);
    }
    if (prompt_ctx.history_attached > 0) {
      metrics.counter(obs::kSessionHistoryContextsTotal)
          .inc(prompt_ctx.history_attached);
    }
    span.set_attr("deduped",
                  static_cast<std::uint64_t>(prompt_ctx.deduped));
    span.set_attr("history",
                  static_cast<std::uint64_t>(prompt_ctx.history_attached));
    span.set_attr("degradation",
                  resilience::to_string(out.outcome.degradation));

    out.turn_seconds = std::max(0.0, now_seconds() - turn.submit_seconds);
    completed_.fetch_add(1, std::memory_order_relaxed);
    metrics.histogram(obs::kSessionTurnSeconds).observe(out.turn_seconds);
    turn.promise.set_value(std::move(out));
  } catch (...) {
    turn.promise.set_exception(std::current_exception());
  }

  const double end = now_seconds();
  const double service = std::max(0.0, end - start);
  const double prev = lane.ema_turn_seconds.load(std::memory_order_relaxed);
  lane.ema_turn_seconds.store(prev <= 0.0 ? service
                                          : 0.8 * prev + 0.2 * service,
                              std::memory_order_relaxed);
  session.last_active_seconds.store(end, std::memory_order_relaxed);
  session.inflight.fetch_sub(1, std::memory_order_relaxed);
  metrics.gauge(obs::kSessionInflight).add(-1.0);
  publish_gauges();
}

SessionManager::Stats SessionManager::stats() const {
  Stats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.admitted = admitted_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  s.shed_session_inflight =
      shed_session_inflight_.load(std::memory_order_relaxed);
  s.shed_queue_full = shed_queue_full_.load(std::memory_order_relaxed);
  s.shed_new_session = shed_new_session_.load(std::memory_order_relaxed);
  s.shed_deadline = shed_deadline_.load(std::memory_order_relaxed);
  s.sessions_created = sessions_created_.load(std::memory_order_relaxed);
  s.sessions_evicted = sessions_evicted_.load(std::memory_order_relaxed);
  s.dedup_dropped = dedup_dropped_.load(std::memory_order_relaxed);
  s.memory_invalidations =
      memory_invalidations_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    s.active_sessions = sessions_.size();
  }
  for (const auto& lane : lanes_) s.queue_depth += lane->queue.size();
  return s;
}

}  // namespace pkb::serve
