#pragma once
// Agentic multi-turn sessions over the serving layer — the production shape
// of the coding-agent workload: bursts of dependent, session-affine queries
// instead of independent one-shot questions.
//
// A SessionManager keys conversation state by session id and routes every
// turn of a session to the same lane (worker thread + bounded queue, picked
// by hashing the id), so a session's turns execute in order on a warm path:
// the lane reuses the server's embedding memo, and the session's own
// retrieval memory dedups context chunks the conversation has already seen
// (rag::SessionPromptContext). Prior turns are appended to the prompt
// through the stage graph's history path, after the document contexts.
//
// Admission control is open-loop friendly: submit() NEVER blocks. A turn
// that cannot be served within bounds is shed immediately with a typed
// Overload answer (degradation rung Unavailable — the bottom of the
// existing five-rung ladder), in shed order:
//
//   1. per-session inflight cap      (one runaway agent cannot monopolize)
//   2. lane queue full               (hard capacity)
//   3. new sessions at high watermark (shed new before in-flight sessions)
//   4. estimated wait past the admission deadline (EMA of lane service time)
//
// Session state is single-writer by construction: only the owning lane's
// worker thread touches a session's memory and history, so no per-session
// lock is needed; the manager's map/LRU mutex covers lookup, creation, and
// eviction (capacity + idle TTL). Evicting a session mid-turn is safe — the
// in-flight turn holds a shared_ptr and completes against the orphaned
// state.
//
// Everything is observable under pkb_session_* and the session_turn /
// admission spans (docs/OBSERVABILITY.md).

#include <atomic>
#include <cstdint>
#include <deque>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "rag/stages.h"
#include "serve/bounded_queue.h"
#include "serve/lru_cache.h"
#include "serve/server.h"

namespace pkb::serve {

struct SessionOptions {
  /// Affinity lanes: worker threads, each with its own bounded turn queue.
  std::size_t lanes = 4;
  /// Per-lane queue capacity; a full lane sheds (never blocks).
  std::size_t lane_queue_capacity = 16;
  /// Max turns of one session queued-or-running at once; excess is shed.
  std::size_t max_inflight_per_session = 4;
  /// Max live sessions; the least recently active is evicted beyond this.
  std::size_t max_sessions = 1024;
  /// Idle eviction: sessions inactive this long are evicted on the next
  /// submit. 0 = never.
  double session_idle_ttl_seconds = 0.0;
  /// Conversation turns replayed into the prompt (most recent kept).
  std::size_t max_history_turns = 2;
  /// Retrieval-memory entries per session (oldest forgotten beyond this).
  std::size_t max_memory_entries = 512;
  /// Deadline-aware admission: shed when estimated wait (lane depth x EMA
  /// turn seconds) would exceed this. 0 = disabled.
  double admission_deadline_seconds = 0.0;
  /// Seed for the lane service-time EMA before any turn has completed
  /// (lets deadline admission act from the first burst). 0 = learn only.
  double initial_turn_seconds_estimate = 0.0;
  /// New-session watermark: when a lane's queue depth reaches this fraction
  /// of its capacity, turns that would CREATE a session are shed while
  /// turns of existing sessions are still admitted (shed order: new before
  /// in-flight).
  double new_session_shed_fraction = 0.5;
  /// Test hook: time source for waits, EMA, and idle TTL (defaults to
  /// steady_seconds).
  CacheClock clock;
};

/// The admission decision for one submitted turn, in shed order.
enum class Admission : int {
  Admitted = 0,
  ShedSessionInflight,  ///< the session is over its inflight cap
  ShedQueueFull,        ///< the lane queue is at capacity
  ShedNewSession,       ///< new session at the high watermark
  ShedDeadline,         ///< estimated wait past the admission deadline
};

[[nodiscard]] std::string_view to_string(Admission admission);

/// One completed (or shed) turn. A shed turn resolves immediately with a
/// typed Overload answer: degradation Unavailable, response mode
/// "shed-overload" — callers distinguish shed from served via shed() or
/// the admission field, never by blocking.
struct TurnOutcome {
  rag::WorkflowOutcome outcome;
  Admission admission = Admission::Admitted;
  std::string session_id;
  std::uint64_t turn = 0;  ///< 1-based turn number within the session
  std::size_t deduped_contexts = 0;   ///< dropped by the retrieval memory
  std::size_t history_contexts = 0;   ///< conversation contexts in prompt
  double queue_wait_seconds = 0.0;
  double turn_seconds = 0.0;  ///< submit -> completion (0 when shed)
  [[nodiscard]] bool shed() const { return admission != Admission::Admitted; }
};

/// Multi-turn session front end. Construct over a Server, submit() turns
/// from any thread, stop() (or destroy) to drain and join the lanes.
class SessionManager {
 public:
  /// The server (and its workflow) must outlive the manager. The manager
  /// runs turns on its own lane threads via Server::run_session_turn — the
  /// server's request queue and workers are not involved.
  explicit SessionManager(Server& server, SessionOptions opts = {});
  ~SessionManager();

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Submit one turn. Never blocks: the future is either pending on the
  /// session's lane or already resolved with a shed TurnOutcome.
  [[nodiscard]] std::future<TurnOutcome> submit(const std::string& session_id,
                                                std::string question);

  /// Blocking convenience: submit and wait.
  [[nodiscard]] TurnOutcome ask(const std::string& session_id,
                                std::string question);

  /// Close the lane queues, drain queued turns, join the lane threads.
  /// Idempotent; called by the destructor.
  void stop();

  /// The lane a session's turns are routed to (stable for the manager's
  /// lifetime; exposed for affinity tests).
  [[nodiscard]] std::size_t lane_of(const std::string& session_id) const;

  /// Point-in-time session-serving statistics.
  struct Stats {
    std::uint64_t submitted = 0;
    std::uint64_t admitted = 0;
    std::uint64_t completed = 0;
    std::uint64_t shed = 0;
    std::uint64_t shed_session_inflight = 0;
    std::uint64_t shed_queue_full = 0;
    std::uint64_t shed_new_session = 0;
    std::uint64_t shed_deadline = 0;
    std::uint64_t sessions_created = 0;
    std::uint64_t sessions_evicted = 0;
    std::uint64_t dedup_dropped = 0;
    std::uint64_t memory_invalidations = 0;
    std::size_t active_sessions = 0;
    std::size_t queue_depth = 0;  ///< sum across lanes
  };
  [[nodiscard]] Stats stats() const;

  [[nodiscard]] const SessionOptions& options() const { return opts_; }

 private:
  /// Conversation state for one session id. The retrieval memory and
  /// history are written only by the owning lane's worker (affinity =
  /// single writer); the atomics are read cross-thread by admission and
  /// stats.
  struct Session {
    std::string id;
    std::atomic<std::uint64_t> inflight{0};
    std::atomic<std::uint64_t> turns{0};
    std::atomic<double> last_active_seconds{0.0};
    /// Position in the manager's LRU list (guarded by sessions_mu_).
    std::list<std::string>::iterator lru_pos;

    // --- lane-thread-only state -------------------------------------------
    std::unordered_set<std::string> seen_context_ids;
    std::deque<std::string> seen_order;  ///< FIFO forget beyond the cap
    std::uint64_t memory_generation = 0;
    std::deque<llm::ContextDoc> history;  ///< last N turns, oldest first
  };

  struct Turn {
    std::shared_ptr<Session> session;
    std::string question;
    std::promise<TurnOutcome> promise;
    double submit_seconds = 0.0;
  };

  struct Lane {
    explicit Lane(std::size_t capacity) : queue(capacity) {}
    std::size_t index = 0;
    BoundedQueue<Turn> queue;
    std::thread worker;
    /// EMA of turn service seconds, the deadline-admission estimator.
    std::atomic<double> ema_turn_seconds{0.0};
  };

  void lane_loop(Lane& lane);
  void process_turn(Lane& lane, Turn& turn);
  /// Find-or-create under sessions_mu_; `created` reports creation.
  /// Returns null without creating when `create_if_missing` is false.
  std::shared_ptr<Session> lookup_session(const std::string& session_id,
                                          bool create_if_missing,
                                          bool& created);
  /// Build the immediately-resolved future for a shed turn.
  std::future<TurnOutcome> shed_turn(const std::string& session_id,
                                     Admission reason);
  /// Evict one session (sessions_mu_ held).
  void evict_locked(const std::string& session_id);
  /// Idle-TTL sweep from the LRU front (takes sessions_mu_).
  void sweep_idle(double now);
  void publish_gauges();
  [[nodiscard]] double now_seconds() const;

  Server& server_;
  SessionOptions opts_;
  std::vector<std::unique_ptr<Lane>> lanes_;

  mutable std::mutex sessions_mu_;
  std::unordered_map<std::string, std::shared_ptr<Session>> sessions_;
  /// Least recently active at the front (touched on submit).
  std::list<std::string> lru_;

  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> admitted_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> shed_session_inflight_{0};
  std::atomic<std::uint64_t> shed_queue_full_{0};
  std::atomic<std::uint64_t> shed_new_session_{0};
  std::atomic<std::uint64_t> shed_deadline_{0};
  std::atomic<std::uint64_t> sessions_created_{0};
  std::atomic<std::uint64_t> sessions_evicted_{0};
  std::atomic<std::uint64_t> dedup_dropped_{0};
  std::atomic<std::uint64_t> memory_invalidations_{0};
  std::atomic<bool> stopped_{false};
};

}  // namespace pkb::serve
