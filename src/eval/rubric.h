#pragma once
// The Table I rubric, made computable.
//
//   0: Nonsensical answer
//   1: Incorrect or inaccurate statements (hallucinations) in the answer
//   2: Correct material with only minor inaccuracies
//   3: Answer is clear and correct
//   4: Ideal answer, close to what an expert would respond
//
// With the generated corpus we know each question's required and ideal
// facts, and the full universe of real API symbols — so hallucinations are
// detectable exactly (any API-shaped symbol in the answer that names no real
// entity and was not part of the question itself).

#include <string>
#include <string_view>
#include <vector>

#include "corpus/questions.h"

namespace pkb::eval {

/// The scored verdict for one answer.
struct RubricVerdict {
  int score = 0;  ///< 0..4
  /// Facts (from required/ideal) that the answer was missing.
  std::vector<std::string> missing_required;
  std::vector<std::string> missing_ideal;
  /// API-shaped symbols in the answer that name no real PETSc entity.
  std::vector<std::string> fabricated_symbols;
  /// One-line human-readable justification (mirrors the paper's scorer
  /// justifications in Figs 7/8).
  std::string justification;
};

/// True when `fact` (a '|'-separated alternative list) occurs in `answer`
/// (case-insensitive substring on any alternative).
[[nodiscard]] bool fact_present(std::string_view answer, std::string_view fact);

/// Score one answer against one question's key.
[[nodiscard]] RubricVerdict score_answer(const corpus::BenchmarkQuestion& q,
                                         std::string_view answer);

}  // namespace pkb::eval
