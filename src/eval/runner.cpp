#include "eval/runner.h"

#include <cstdio>

#include "util/strings.h"

namespace pkb::eval {

std::size_t ArmReport::count_with_score(int score) const {
  std::size_t n = 0;
  for (const QuestionOutcome& o : outcomes) {
    if (o.verdict.score == score) ++n;
  }
  return n;
}

BenchmarkRunner::BenchmarkRunner(const rag::RagDatabase& db,
                                 llm::LlmConfig model,
                                 rag::RetrieverOptions retriever_opts)
    : db_(db), model_(std::move(model)),
      retriever_opts_(std::move(retriever_opts)) {}

ArmReport BenchmarkRunner::run(
    rag::PipelineArm arm,
    const std::vector<corpus::BenchmarkQuestion>& questions) const {
  ArmReport report;
  report.arm = std::string(rag::to_string(arm));
  report.model = model_.name;
  if (arm != rag::PipelineArm::Baseline) {
    report.embedder = db_.embedder().name();
    if (arm == rag::PipelineArm::RagRerank) {
      report.reranker = retriever_opts_.reranker;
    }
  }

  const rag::AugmentedWorkflow workflow(db_, arm, model_, retriever_opts_);
  for (const corpus::BenchmarkQuestion& q : questions) {
    const rag::WorkflowOutcome outcome = workflow.ask(q.question);
    QuestionOutcome result;
    result.question_id = q.id;
    result.question = q.question;
    result.answer = outcome.response.text;
    result.mode = outcome.response.mode;
    result.verdict = score_answer(q, outcome.response.text);
    result.rag_seconds = outcome.retrieval.rag_seconds();
    result.rerank_seconds = outcome.retrieval.rerank_seconds;
    result.llm_seconds = outcome.response.latency_seconds;
    for (const auto& ctx : outcome.retrieval.contexts) {
      result.context_ids.push_back(ctx.doc->id);
    }
    report.scores.add(result.verdict.score);
    if (arm != rag::PipelineArm::Baseline) {
      report.rag_times.add(result.rag_seconds);
    }
    report.llm_times.add(result.llm_seconds);
    report.outcomes.push_back(std::move(result));
  }
  return report;
}

ArmComparison compare_arms(const ArmReport& from, const ArmReport& to) {
  ArmComparison cmp;
  cmp.from = from.arm;
  cmp.to = to.arm;
  const std::size_t n = std::min(from.outcomes.size(), to.outcomes.size());
  for (std::size_t i = 0; i < n; ++i) {
    const int delta =
        to.outcomes[i].verdict.score - from.outcomes[i].verdict.score;
    cmp.deltas.push_back(delta);
    if (delta > 0) {
      ++cmp.improved;
      cmp.max_gain = std::max(cmp.max_gain, delta);
    } else if (delta < 0) {
      ++cmp.degraded;
    } else {
      ++cmp.unchanged;
    }
  }
  return cmp;
}

std::string render_comparison_table(const ArmReport& from,
                                    const ArmReport& to) {
  std::string out;
  char line[160];
  std::snprintf(line, sizeof line, "%4s  %-12s %-12s %6s   %s\n", "Q#",
                from.arm.c_str(), to.arm.c_str(), "delta", "question");
  out += line;
  const std::size_t n = std::min(from.outcomes.size(), to.outcomes.size());
  for (std::size_t i = 0; i < n; ++i) {
    const int a = from.outcomes[i].verdict.score;
    const int b = to.outcomes[i].verdict.score;
    std::snprintf(line, sizeof line, "%4d  %-12d %-12d %+6d   %s\n",
                  from.outcomes[i].question_id, a, b, b - a,
                  pkb::util::ellipsize(from.outcomes[i].question, 58).c_str());
    out += line;
  }
  const ArmComparison cmp = compare_arms(from, to);
  std::snprintf(line, sizeof line,
                "improved: %zu   degraded: %zu   unchanged: %zu   "
                "max gain: +%d\n",
                cmp.improved, cmp.degraded, cmp.unchanged, cmp.max_gain);
  out += line;
  return out;
}

std::string render_score_distribution(const ArmReport& report) {
  std::string out = report.arm + " (" + report.model;
  if (!report.embedder.empty()) out += ", " + report.embedder;
  if (!report.reranker.empty()) out += ", " + report.reranker;
  out += ")\n";
  for (int score = 4; score >= 0; --score) {
    const std::size_t count = report.count_with_score(score);
    out += "  score " + std::to_string(score) + ": " +
           pkb::util::repeat("#", count) + "  (" + std::to_string(count) +
           ")\n";
  }
  out += "  mean: " + pkb::util::format_double(report.scores.mean(), 2) + "\n";
  return out;
}

}  // namespace pkb::eval
