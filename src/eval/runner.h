#pragma once
// Benchmark runner: executes the 37-question Krylov benchmark through a
// pipeline arm, scores every answer with the rubric, and aggregates the
// statistics the paper's figures and Table II report.

#include <string>
#include <vector>

#include "corpus/questions.h"
#include "eval/rubric.h"
#include "rag/workflow.h"
#include "util/stats.h"

namespace pkb::eval {

/// One question's outcome under one arm.
struct QuestionOutcome {
  int question_id = 0;
  std::string question;
  std::string answer;
  std::string mode;  ///< SimLlm internal path (diagnostic)
  RubricVerdict verdict;
  double rag_seconds = 0.0;     ///< measured retrieval(+rerank) wall time
  double rerank_seconds = 0.0;  ///< measured rerank share
  double llm_seconds = 0.0;     ///< simulated LLM latency
  std::vector<std::string> context_ids;
};

/// Everything one arm produced over the benchmark.
struct ArmReport {
  std::string arm;       ///< "baseline" | "rag" | "rag+rerank"
  std::string model;
  std::string embedder;  ///< "" for baseline
  std::string reranker;  ///< "" unless reranking
  std::vector<QuestionOutcome> outcomes;
  pkb::util::Summary scores;
  pkb::util::Summary rag_times;
  pkb::util::Summary llm_times;

  /// Count of outcomes with the given score.
  [[nodiscard]] std::size_t count_with_score(int score) const;
};

/// Pairwise comparison of two arms over the same questions (the content of
/// Figs 6a/6b/6c).
struct ArmComparison {
  std::string from;
  std::string to;
  std::size_t improved = 0;
  std::size_t degraded = 0;
  std::size_t unchanged = 0;
  /// Per-question score delta (to - from), indexed like the outcomes.
  std::vector<int> deltas;
  /// Largest single-question improvement.
  int max_gain = 0;
};

/// Runs arms against one shared database.
class BenchmarkRunner {
 public:
  BenchmarkRunner(const rag::RagDatabase& db, llm::LlmConfig model,
                  rag::RetrieverOptions retriever_opts = {});

  /// Run one arm over `questions` (defaults to the 37-question benchmark).
  [[nodiscard]] ArmReport run(
      rag::PipelineArm arm,
      const std::vector<corpus::BenchmarkQuestion>& questions =
          corpus::krylov_benchmark()) const;

  [[nodiscard]] const rag::RagDatabase& database() const { return db_; }

 private:
  const rag::RagDatabase& db_;
  llm::LlmConfig model_;
  rag::RetrieverOptions retriever_opts_;
};

/// Compare two reports question by question (they must cover the same
/// questions in the same order).
[[nodiscard]] ArmComparison compare_arms(const ArmReport& from,
                                         const ArmReport& to);

/// Render a per-question score table for two arms (the textual equivalent of
/// the Fig 6 bar charts): one row per question, both scores, and the delta.
[[nodiscard]] std::string render_comparison_table(const ArmReport& from,
                                                  const ArmReport& to);

/// Render an arm's score distribution (how many 0s/1s/2s/3s/4s).
[[nodiscard]] std::string render_score_distribution(const ArmReport& report);

}  // namespace pkb::eval
