#include "eval/rubric.h"

#include "corpus/api_spec.h"
#include "text/tokenizer.h"
#include "util/strings.h"

namespace pkb::eval {

bool fact_present(std::string_view answer, std::string_view fact) {
  for (std::string_view alt : pkb::util::split(fact, '|')) {
    if (pkb::util::icontains(answer, pkb::util::trim(alt))) return true;
  }
  return false;
}

RubricVerdict score_answer(const corpus::BenchmarkQuestion& q,
                           std::string_view answer) {
  RubricVerdict v;

  // 0: nonsensical / empty.
  if (pkb::util::trim(answer).size() < 30) {
    v.score = 0;
    v.justification = "Empty or nonsensical answer.";
    return v;
  }

  // Hallucination detection: API-shaped symbols that name nothing real and
  // did not come from the question itself.
  const text::TokenizedText at = text::tokenize(answer);
  for (const std::string& symbol : at.symbols) {
    if (corpus::is_known_symbol(symbol)) continue;
    if (pkb::util::icontains(q.question, symbol)) continue;
    v.fabricated_symbols.push_back(symbol);
  }

  // Fact coverage.
  std::size_t required_present = 0;
  for (const std::string& fact : q.required_facts) {
    if (fact_present(answer, fact)) {
      ++required_present;
    } else {
      v.missing_required.push_back(fact);
    }
  }
  for (const std::string& fact : q.ideal_facts) {
    if (!fact_present(answer, fact)) v.missing_ideal.push_back(fact);
  }
  const bool all_required = v.missing_required.empty();
  const bool all_ideal = v.missing_ideal.empty();

  if (!v.fabricated_symbols.empty()) {
    v.score = 1;
    v.justification = "Hallucination: the answer invents '" +
                      v.fabricated_symbols.front() +
                      "', which does not exist in PETSc.";
    return v;
  }
  if (all_required && all_ideal) {
    v.score = 4;
    v.justification =
        "Ideal: recommends the right functionality with the key details an "
        "expert would add.";
    return v;
  }
  if (all_required) {
    v.score = 3;
    v.justification = "Clear and correct; missing expert detail (" +
                      pkb::util::ellipsize(v.missing_ideal.front(), 40) + ").";
    return v;
  }
  const bool half_required =
      required_present * 2 >= q.required_facts.size() && required_present > 0;
  if (half_required) {
    v.score = 2;
    v.justification = "Partially correct; does not state " +
                      pkb::util::ellipsize(v.missing_required.front(), 40) +
                      ".";
    return v;
  }
  v.score = 1;
  v.justification = "Does not answer the question: missing " +
                    pkb::util::ellipsize(v.missing_required.empty()
                                             ? std::string("the key facts")
                                             : v.missing_required.front(),
                                         40) +
                    ".";
  return v;
}

}  // namespace pkb::eval
