#include "corpus/api_spec.h"

#include <unordered_map>
#include <unordered_set>

#include "corpus/api_table_detail.h"
#include "corpus/generator.h"
#include "text/tokenizer.h"
#include "util/strings.h"

namespace pkb::corpus {

namespace {

std::vector<ApiSpec> build_table() {
  std::vector<ApiSpec> table;
  for (auto builder :
       {detail::ksp_type_specs, detail::pc_type_specs, detail::function_specs,
        detail::option_specs, detail::concept_specs,
        detail::outer_library_specs}) {
    for (auto& spec : builder()) table.push_back(std::move(spec));
  }
  return table;
}

const std::unordered_map<std::string, std::size_t>& name_index() {
  static const auto* index = [] {
    auto* map = new std::unordered_map<std::string, std::size_t>();
    const auto& table = api_table();
    for (std::size_t i = 0; i < table.size(); ++i) {
      map->emplace(table[i].name, i);
    }
    return map;
  }();
  return *index;
}

}  // namespace

const std::vector<ApiSpec>& api_table() {
  static const std::vector<ApiSpec> table = build_table();
  return table;
}

const ApiSpec* find_spec(std::string_view name) {
  const auto& index = name_index();
  auto it = index.find(std::string(name));
  if (it == index.end()) return nullptr;
  return &api_table()[it->second];
}

const ApiSpec* find_spec_fuzzy(std::string_view name) {
  if (const ApiSpec* exact = find_spec(name)) return exact;
  // Users often write the bare algorithm/type name ("GMRES", "LSQR",
  // "JACOBI"): try the canonical class prefixes before edit distance.
  const std::string upper = pkb::util::to_upper(name);
  for (std::string_view prefix : {"KSP", "PC"}) {
    if (const ApiSpec* hit = find_spec(std::string(prefix) + upper)) {
      return hit;
    }
  }
  const std::string lowered = pkb::util::to_lower(name);
  const ApiSpec* best = nullptr;
  std::size_t best_dist = 3;  // accept distance <= 2
  for (const ApiSpec& spec : api_table()) {
    const std::string cand = pkb::util::to_lower(spec.name);
    // Cheap length gate before the O(nm) distance.
    const std::size_t len_gap = cand.size() > lowered.size()
                                    ? cand.size() - lowered.size()
                                    : lowered.size() - cand.size();
    if (len_gap >= best_dist) continue;
    const std::size_t dist = pkb::util::edit_distance(lowered, cand);
    if (dist < best_dist) {
      best_dist = dist;
      best = &spec;
    }
  }
  return best;
}

bool is_known_symbol(std::string_view symbol) {
  if (find_spec(symbol) != nullptr) return true;
  // The full ground-truth universe: every API-shaped symbol occurring in the
  // spec table (names, see-also references, option keys, and the symbol
  // tokens of every text field). Collected once.
  static const auto* universe = [] {
    auto* set = new std::unordered_set<std::string>();
    auto absorb = [set](std::string_view text) {
      for (std::string& sym : pkb::text::tokenize(text).symbols) {
        set->insert(std::move(sym));
      }
    };
    for (const ApiSpec& spec : api_table()) {
      set->insert(spec.name);
      for (const std::string& ref : spec.see_also) set->insert(ref);
      for (const std::string& opt : spec.options) {
        const auto fields = pkb::util::split_ws(opt);
        if (!fields.empty()) set->insert(std::string(fields[0]));
        absorb(opt);
      }
      absorb(spec.summary);
      absorb(spec.synopsis);
      for (const std::string& note : spec.notes) absorb(note);
    }
    // The prose chapters/FAQ/tutorial mention a few symbols beyond the spec
    // table (storage formats, helper routines); absorb the whole generated
    // corpus so the universe is exactly "everything the knowledge base says".
    for (const pkb::text::VirtualFile& file : generate_corpus()) {
      absorb(file.content);
    }
    return set;
  }();
  return universe->contains(std::string(symbol));
}

std::string manual_page_path(const ApiSpec& spec) {
  std::string dir;
  switch (spec.kind) {
    case ApiKind::SolverType:
      dir = "manualpages/KSP";
      break;
    case ApiKind::PcType:
      dir = "manualpages/PC";
      break;
    case ApiKind::Function: {
      if (pkb::util::starts_with(spec.name, "KSP")) {
        dir = "manualpages/KSP";
      } else if (pkb::util::starts_with(spec.name, "PC")) {
        dir = "manualpages/PC";
      } else if (pkb::util::starts_with(spec.name, "Mat")) {
        dir = "manualpages/Mat";
      } else if (pkb::util::starts_with(spec.name, "Vec")) {
        dir = "manualpages/Vec";
      } else if (pkb::util::starts_with(spec.name, "SNES")) {
        dir = "manualpages/SNES";
      } else if (pkb::util::starts_with(spec.name, "TS")) {
        dir = "manualpages/TS";
      } else if (pkb::util::starts_with(spec.name, "DM")) {
        dir = "manualpages/DM";
      } else {
        dir = "manualpages/Sys";
      }
      break;
    }
    case ApiKind::Option:
      dir = "manualpages/Options";
      break;
    case ApiKind::Concept:
      dir = "manualpages/Concepts";
      break;
  }
  // Option names keep their dash in the symbol but not in the filename.
  std::string file(spec.name);
  if (!file.empty() && file[0] == '-') file.erase(0, 1);
  return dir + "/" + file + ".md";
}

std::string_view to_string(ApiKind kind) {
  switch (kind) {
    case ApiKind::SolverType:
      return "KSP Type";
    case ApiKind::PcType:
      return "PC Type";
    case ApiKind::Function:
      return "Function";
    case ApiKind::Option:
      return "Runtime Option";
    case ApiKind::Concept:
      return "Concept";
  }
  return "?";
}

std::string_view to_string(ApiLevel level) {
  switch (level) {
    case ApiLevel::Beginner:
      return "beginner";
    case ApiLevel::Intermediate:
      return "intermediate";
    case ApiLevel::Advanced:
      return "advanced";
    case ApiLevel::Developer:
      return "developer";
  }
  return "?";
}

}  // namespace pkb::corpus
