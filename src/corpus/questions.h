#pragma once
// The 37-question Krylov-methods benchmark (§V-A of the paper) with
// computable ground truth.
//
// The paper's benchmark is 37 questions on the use of Krylov methods within
// PETSc, blind-scored by human experts on the 0-4 rubric of Table I. Our
// generated corpus gives us the luxury the paper did not have: we know
// exactly which facts a correct answer must contain, so the rubric becomes a
// deterministic function (see eval/rubric.h).
//
// Fact syntax: each entry is a '|'-separated list of alternatives; the fact
// counts as present if ANY alternative occurs (case-insensitively) in the
// answer.

#include <string>
#include <vector>

namespace pkb::corpus {

/// One benchmark question with its scoring key.
struct BenchmarkQuestion {
  int id = 0;
  /// The user's question, phrased as users phrase things (sometimes with
  /// the official terminology, sometimes with application-domain wording
  /// that does not match the docs — those are the retrieval-hard cases).
  std::string question;
  /// Facts that must ALL be present for a score of 3 ("clear and correct").
  std::vector<std::string> required_facts;
  /// Additional facts that must ALL be present (on top of required) for a
  /// score of 4 ("ideal answer, close to what an expert would respond").
  std::vector<std::string> ideal_facts;
  /// The API entity whose manual page decides the question.
  std::string decisive_symbol;
  /// Pretraining-exposure proxy for this topic in [0,1]; drives how well the
  /// no-RAG baseline can answer from parametric memory.
  double popularity = 0.5;
};

/// The 37 benchmark questions in stable order (ids 1..37).
[[nodiscard]] const std::vector<BenchmarkQuestion>& krylov_benchmark();

/// The adversarial out-of-benchmark question from §V-B: a fictitious solver
/// name following the KSP naming convention.
[[nodiscard]] const BenchmarkQuestion& kspburb_question();

}  // namespace pkb::corpus
