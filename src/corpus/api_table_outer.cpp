// The wider PETSc library surface: nonlinear solvers (SNES), time steppers
// (TS), data management (DM), and additional Mat/Vec/Sys entries. These
// pages share heavy vocabulary with the Krylov pages ("tolerances",
// "monitor", "converged reason", "set from options"), which is exactly what
// makes retrieval over the real PETSc docs nontrivial.
#include "corpus/api_table_detail.h"

namespace pkb::corpus::detail {

std::vector<ApiSpec> outer_library_specs() {
  std::vector<ApiSpec> specs;
  auto add = [&specs](ApiSpec spec) { specs.push_back(std::move(spec)); };

  // ---------------------------------------------------------------- SNES
  add(ApiSpec{
      "SNES",
      ApiKind::Concept,
      ApiLevel::Beginner,
      "The abstraction for nonlinear solvers: Newton-type methods, "
      "quasi-Newton, nonlinear Gauss-Seidel, and composed nonlinear "
      "preconditioning.",
      "",
      {"SNES solves F(x) = 0. Newton's method with line search "
       "(SNESNEWTONLS) is the default; each Newton step solves a linear "
       "system with the inner KSP, reachable through SNESGetKSP and "
       "configured with the usual -ksp_ and -pc_ options. The Jacobian may "
       "be assembled, matrix-free (-snes_mf), or finite-difference colored "
       "(-snes_fd_color).",
       "Globalization options include line search variants (-snes_linesearch_"
       "type bt,l2,cp) and trust region (SNESNEWTONTR). Convergence is "
       "monitored with -snes_monitor and diagnosed with "
       "-snes_converged_reason."},
      {"-snes_type", "-snes_monitor", "-snes_rtol"},
      {"SNESCreate", "SNESSolve", "SNESGetKSP"},
      0.72,
  });

  add(ApiSpec{
      "SNESCreate",
      ApiKind::Function,
      ApiLevel::Beginner,
      "Creates a nonlinear solver (SNES) context.",
      "PetscErrorCode SNESCreate(MPI_Comm comm, SNES *snes);",
      {"The lifecycle mirrors KSP: SNESCreate, SNESSetFunction, "
       "SNESSetJacobian, SNESSetFromOptions, SNESSolve, SNESDestroy. The "
       "inner linear solver is owned by the SNES and configured through "
       "its options prefix."},
      {},
      {"SNESSolve", "SNESSetFunction", "SNESGetKSP"},
      0.62,
  });

  add(ApiSpec{
      "SNESSolve",
      ApiKind::Function,
      ApiLevel::Beginner,
      "Runs the nonlinear solve F(x) = 0 from an initial guess.",
      "PetscErrorCode SNESSolve(SNES snes, Vec b, Vec x);",
      {"Each nonlinear iteration evaluates the residual, optionally "
       "rebuilds the Jacobian, solves the linearized system with the inner "
       "KSP, and applies globalization. Diagnose failures with "
       "-snes_converged_reason: SNES_DIVERGED_LINE_SEARCH and "
       "SNES_DIVERGED_LINEAR_SOLVE are the most common; the latter points "
       "at the inner Krylov solve, so add -ksp_converged_reason too.",
       "The nonlinear tolerances are set with SNESSetTolerances "
       "(-snes_rtol, -snes_atol, -snes_stol, -snes_max_it)."},
      {"-snes_monitor : print the function norm each nonlinear iteration",
       "-snes_converged_reason : print why the nonlinear solve stopped"},
      {"SNESSetTolerances", "SNESGetConvergedReason", "KSPSolve"},
      0.64,
  });

  add(ApiSpec{
      "SNESSetFunction",
      ApiKind::Function,
      ApiLevel::Beginner,
      "Sets the callback that evaluates the nonlinear residual F(x).",
      "PetscErrorCode SNESSetFunction(SNES snes, Vec r, PetscErrorCode "
      "(*f)(SNES, Vec, Vec, void*), void *ctx);",
      {"The residual callback is the heart of a SNES application. The "
       "vector r is owned by the caller and reused across evaluations. "
       "The callback must not change x. For debugging, -snes_test_jacobian "
       "compares the hand-coded Jacobian against finite differences of "
       "this function."},
      {},
      {"SNESSetJacobian", "SNESSolve"},
      0.55,
  });

  add(ApiSpec{
      "SNESSetJacobian",
      ApiKind::Function,
      ApiLevel::Intermediate,
      "Sets the callback that assembles the Jacobian (and the matrix used "
      "to build the preconditioner).",
      "PetscErrorCode SNESSetJacobian(SNES snes, Mat Amat, Mat Pmat, "
      "PetscErrorCode (*J)(SNES, Vec, Mat, Mat, void*), void *ctx);",
      {"As with KSPSetOperators, Amat defines the operator and Pmat the "
       "preconditioning matrix; supplying a matrix-free Amat with an "
       "assembled Pmat is common. Lagging the Jacobian "
       "(-snes_lag_jacobian) amortizes assembly over several Newton "
       "steps, typically paired with KSPSetReusePreconditioner."},
      {"-snes_lag_jacobian <n> : rebuild the Jacobian every n iterations"},
      {"SNESSetFunction", "KSPSetOperators", "MatCreateSNESMF"},
      0.42,
  });

  add(ApiSpec{
      "SNESGetKSP",
      ApiKind::Function,
      ApiLevel::Beginner,
      "Returns the inner linear solver (KSP) of a nonlinear solver.",
      "PetscErrorCode SNESGetKSP(SNES snes, KSP *ksp);",
      {"Use it to configure the linear solve inside Newton's method from "
       "code; from the command line the inner solver responds to the "
       "ordinary -ksp_ and -pc_ options. Inexact Newton methods "
       "deliberately solve the inner system loosely (see "
       "-snes_ksp_ew for Eisenstat-Walker adaptive tolerances)."},
      {"-snes_ksp_ew : adaptive inner tolerances (Eisenstat-Walker)"},
      {"SNESSolve", "KSPSetTolerances"},
      0.48,
  });

  add(ApiSpec{
      "SNESGetConvergedReason",
      ApiKind::Function,
      ApiLevel::Intermediate,
      "Returns why the nonlinear iteration stopped.",
      "PetscErrorCode SNESGetConvergedReason(SNES snes, "
      "SNESConvergedReason *reason);",
      {"Positive reasons mean the nonlinear solve converged "
       "(SNES_CONVERGED_FNORM_RELATIVE, SNES_CONVERGED_SNORM_RELATIVE); "
       "negative mean failure: SNES_DIVERGED_MAX_IT, "
       "SNES_DIVERGED_LINE_SEARCH, SNES_DIVERGED_LINEAR_SOLVE (the inner "
       "KSP failed — check -ksp_converged_reason), SNES_DIVERGED_FNORM_NAN "
       "(a NaN in the residual, often a bad initial guess or a bug in the "
       "function). The runtime shortcut is -snes_converged_reason."},
      {"-snes_converged_reason"},
      {"SNESSolve", "KSPGetConvergedReason"},
      0.38,
  });

  // ------------------------------------------------------------------ TS
  add(ApiSpec{
      "TS",
      ApiKind::Concept,
      ApiLevel::Beginner,
      "The abstraction for time integration of ODEs and time-dependent "
      "PDEs: explicit, implicit, and IMEX methods with adaptive stepping.",
      "",
      {"TS integrates u_t = G(u,t) (explicit), F(t,u,u_t) = 0 (implicit), "
       "or the IMEX combination. Families include TSEULER, TSBEULER, "
       "TSTHETA, TSRK (explicit Runge-Kutta), TSARKIMEX (IMEX), and "
       "TSBDF. Implicit methods solve a nonlinear system per step through "
       "an inner SNES, which in turn uses a KSP — so a stiff transient run "
       "composes all three solver layers.",
       "Adaptive time stepping is controlled with -ts_adapt_type and the "
       "tolerances -ts_rtol/-ts_atol; monitor progress with -ts_monitor."},
      {"-ts_type", "-ts_monitor", "-ts_dt"},
      {"TSCreate", "TSSolve", "SNES"},
      0.58,
  });

  add(ApiSpec{
      "TSSolve",
      ApiKind::Function,
      ApiLevel::Beginner,
      "Integrates the ODE/DAE system over the requested time interval.",
      "PetscErrorCode TSSolve(TS ts, Vec u);",
      {"Steps from the current time until TSSetMaxTime or TSSetMaxSteps is "
       "reached, adapting the step when an adapter is active. For stiff "
       "problems with implicit methods, the per-step cost is dominated by "
       "the inner SNES/KSP solves; reuse strategies "
       "(KSPSetReusePreconditioner, -snes_lag_jacobian) matter greatly."},
      {"-ts_monitor : print time step information",
       "-ts_adapt_type <none,basic,dsp> : step adaptivity"},
      {"TSCreate", "SNESSolve"},
      0.47,
  });

  add(ApiSpec{
      "TSSetIFunction",
      ApiKind::Function,
      ApiLevel::Intermediate,
      "Sets the implicit residual callback F(t, u, u_t) for implicit and "
      "IMEX time integration.",
      "PetscErrorCode TSSetIFunction(TS ts, Vec r, TSIFunctionFn f, void "
      "*ctx);",
      {"The implicit form covers DAEs and stiff terms. The shifted "
       "Jacobian dF/du + a dF/du_t is supplied with TSSetIJacobian, where "
       "the shift a is provided by the integrator at each stage."},
      {},
      {"TSSetIJacobian", "TSSolve"},
      0.25,
  });

  // ------------------------------------------------------------------ DM
  add(ApiSpec{
      "DMDA",
      ApiKind::Concept,
      ApiLevel::Beginner,
      "Structured-grid data management: distributed Cartesian grids with "
      "ghost regions, used to generate vectors, matrices, and multigrid "
      "hierarchies.",
      "",
      {"DMDA manages the parallel decomposition of 1/2/3-dimensional "
       "structured grids: it creates layout-compatible vectors "
       "(DMCreateGlobalVector), preallocated matrices (DMCreateMatrix), "
       "and ghost updates (DMGlobalToLocal). Attached to a KSP or SNES "
       "with KSPSetDM/SNESSetDM, it enables geometric multigrid by "
       "refinement/coarsening of the grid hierarchy.",
       "The stencil width and type (box or star) determine the ghost "
       "pattern and the matrix sparsity DMCreateMatrix preallocates — "
       "matrices from DMCreateMatrix never need manual preallocation."},
      {"-da_grid_x <n> : grid points in x", "-da_refine <k> : refinements"},
      {"DMCreateMatrix", "DMCreateGlobalVector", "PCMG"},
      0.46,
  });

  add(ApiSpec{
      "DMPlex",
      ApiKind::Concept,
      ApiLevel::Advanced,
      "Unstructured-mesh data management: topology, labels, and "
      "discretization support for finite element and finite volume "
      "methods.",
      "",
      {"DMPlex represents arbitrary cell complexes, supports parallel "
       "distribution and redistribution, mesh import (Gmsh, ExodusII), "
       "adaptive refinement, and — with PetscFE/PetscFV — automatic "
       "assembly of residuals and Jacobians from pointwise physics "
       "callbacks. Like DMDA it plugs into SNES/TS/KSP through "
       "SNESSetDM."},
      {"-dm_plex_box_faces <n,m> : built-in box meshes",
       "-dm_refine <k> : uniform refinements"},
      {"DMDA", "SNES"},
      0.33,
  });

  add(ApiSpec{
      "DMCreateMatrix",
      ApiKind::Function,
      ApiLevel::Intermediate,
      "Creates a correctly preallocated matrix matching a DM's layout and "
      "sparsity.",
      "PetscErrorCode DMCreateMatrix(DM dm, Mat *A);",
      {"Matrices obtained from a DM are fully preallocated from the mesh "
       "stencil/topology, so assembly triggers no mallocs (verifiable "
       "with -info) and no manual preallocation calls are needed. This is "
       "the recommended way to create matrices whenever a DM describes "
       "the problem layout."},
      {},
      {"DMDA", "MatSetValues", "MatXAIJSetPreallocation"},
      0.28,
  });

  // ---------------------------------------------------------- Mat extras
  add(ApiSpec{
      "MatXAIJSetPreallocation",
      ApiKind::Function,
      ApiLevel::Intermediate,
      "Unified preallocation call for AIJ-family matrices (sequential, "
      "MPI, blocked): sets the expected nonzeros per row.",
      "PetscErrorCode MatXAIJSetPreallocation(Mat A, PetscInt bs, const "
      "PetscInt dnnz[], const PetscInt onnz[], const PetscInt dnnzu[], "
      "const PetscInt onnzu[]);",
      {"Preallocation tells the matrix how many nonzeros each row will "
       "hold in the diagonal and off-diagonal blocks, eliminating the "
       "reallocate-and-copy cost that otherwise dominates assembly. "
       "Verify sufficiency with -info (look for 'Number of mallocs during "
       "MatSetValues() is 0'). Overestimating slightly is cheap; "
       "underestimating is very expensive.",
       "When the sparsity pattern is hard to predict, assemble once "
       "through a MatPreallocator matrix and replay."},
      {},
      {"MatSetValues", "MatPreallocator", "DMCreateMatrix"},
      0.35,
  });

  add(ApiSpec{
      "MatMultTranspose",
      ApiKind::Function,
      ApiLevel::Intermediate,
      "Computes the transpose product y = A^T x.",
      "PetscErrorCode MatMultTranspose(Mat mat, Vec x, Vec y);",
      {"Required by Krylov methods that iterate with both A and A^T "
       "(KSPBICG) and used internally by KSPLSQR and KSPCGNE for the "
       "normal equations. Matrix-free shells must register "
       "MATOP_MULT_TRANSPOSE to support these methods. For complex "
       "matrices the Hermitian variant is MatMultHermitianTranspose."},
      {},
      {"MatMult", "KSPBICG", "KSPLSQR"},
      0.31,
  });

  add(ApiSpec{
      "MatCreateVecs",
      ApiKind::Function,
      ApiLevel::Beginner,
      "Creates vectors compatible with a matrix's row and column layouts.",
      "PetscErrorCode MatCreateVecs(Mat mat, Vec *right, Vec *left);",
      {"Returns a right vector (compatible with A x) and a left vector "
       "(compatible with A^T y / the range). For rectangular matrices the "
       "two differ — exactly the situation in least squares solves with "
       "KSPLSQR, where the solution vector matches the columns and the "
       "right-hand side matches the rows."},
      {},
      {"VecCreate", "KSPSolve", "KSPLSQR"},
      0.36,
  });

  add(ApiSpec{
      "MatGetOwnershipRange",
      ApiKind::Function,
      ApiLevel::Beginner,
      "Returns the range of rows owned by this process.",
      "PetscErrorCode MatGetOwnershipRange(Mat mat, PetscInt *rstart, "
      "PetscInt *rend);",
      {"PETSc matrices are distributed by contiguous row blocks. Each "
       "process should set values primarily in its own rows for assembly "
       "efficiency, though setting off-process values is legal (they are "
       "communicated during assembly)."},
      {},
      {"MatSetValues", "MatAssemblyBegin"},
      0.44,
  });

  add(ApiSpec{
      "MatNorm",
      ApiKind::Function,
      ApiLevel::Beginner,
      "Computes a matrix norm (Frobenius, 1-norm, or infinity norm).",
      "PetscErrorCode MatNorm(Mat mat, NormType type, PetscReal *nrm);",
      {"NORM_FROBENIUS, NORM_1, and NORM_INFINITY are supported for "
       "assembled formats. The 2-norm is not directly available (it "
       "requires a singular value computation; use SLEPc for that)."},
      {},
      {"VecNorm", "MatMult"},
      0.27,
  });

  add(ApiSpec{
      "MatZeroRowsColumns",
      ApiKind::Function,
      ApiLevel::Intermediate,
      "Zeros rows and columns of a matrix and fixes the diagonal — the "
      "standard way to impose Dirichlet boundary conditions while keeping "
      "symmetry.",
      "PetscErrorCode MatZeroRowsColumns(Mat mat, PetscInt n, const "
      "PetscInt rows[], PetscScalar diag, Vec x, Vec b);",
      {"Unlike MatZeroRows, zeroing the columns as well preserves "
       "symmetry, so SPD problems stay SPD and KSPCG remains applicable. "
       "The right-hand side is adjusted using the supplied solution "
       "values so the eliminated unknowns take their boundary values."},
      {},
      {"MatSetValues", "KSPCG"},
      0.22,
  });

  // ---------------------------------------------------------- Vec extras
  add(ApiSpec{
      "VecDot",
      ApiKind::Function,
      ApiLevel::Beginner,
      "Computes the (conjugated) inner product of two vectors.",
      "PetscErrorCode VecDot(Vec x, Vec y, PetscScalar *val);",
      {"A global reduction in parallel — together with VecNorm these "
       "reductions are the scalability bottleneck of Krylov methods, "
       "motivating pipelined variants (KSPPIPECG) and single-reduction "
       "formulations (-ksp_cg_single_reduction). For multiple inner "
       "products at once use VecMDot, which amortizes the reduction."},
      {},
      {"VecNorm", "VecMDot", "KSPPIPECG"},
      0.49,
  });

  add(ApiSpec{
      "VecSetValues",
      ApiKind::Function,
      ApiLevel::Beginner,
      "Inserts or adds values into a vector at global indices.",
      "PetscErrorCode VecSetValues(Vec x, PetscInt ni, const PetscInt "
      "ix[], const PetscScalar y[], InsertMode iora);",
      {"Like MatSetValues, the insertions are cached and require "
       "VecAssemblyBegin/VecAssemblyEnd before the vector can be used. "
       "Values may target off-process entries; assembly routes them to "
       "their owners."},
      {},
      {"VecAssemblyBegin", "MatSetValues"},
      0.50,
  });

  add(ApiSpec{
      "VecGhostUpdateBegin",
      ApiKind::Function,
      ApiLevel::Advanced,
      "Begins updating the ghost values of a ghosted vector.",
      "PetscErrorCode VecGhostUpdateBegin(Vec g, InsertMode im, "
      "ScatterMode sm);",
      {"Ghosted vectors store local copies of selected off-process "
       "entries; the begin/end update pair refreshes them, overlapping "
       "communication with computation. DM-based codes usually use "
       "DMGlobalToLocal instead."},
      {},
      {"VecCreateGhost", "DMDA"},
      0.15,
  });

  add(ApiSpec{
      "VecScatterCreate",
      ApiKind::Function,
      ApiLevel::Advanced,
      "Creates a generalized gather/scatter between two vector layouts.",
      "PetscErrorCode VecScatterCreate(Vec x, IS ix, Vec y, IS iy, "
      "VecScatter *ctx);",
      {"VecScatter (now implemented over PetscSF) expresses arbitrary "
       "communication patterns between distributed vectors. It underlies "
       "ghost updates, subvector extraction, and the parallel matrix "
       "off-diagonal products."},
      {},
      {"VecGhostUpdateBegin", "MatMult"},
      0.18,
  });

  // ---------------------------------------------------------- Sys extras
  add(ApiSpec{
      "PetscOptionsGetInt",
      ApiKind::Function,
      ApiLevel::Beginner,
      "Reads an integer from the options database.",
      "PetscErrorCode PetscOptionsGetInt(PetscOptions options, const char "
      "pre[], const char name[], PetscInt *ivalue, PetscBool *set);",
      {"Applications use the options database for their own parameters "
       "too, inheriting PETSc's runtime-configuration style. Related "
       "getters exist for reals, strings, bools, and arrays; "
       "PetscOptionsBegin/End groups them for -help output."},
      {},
      {"PetscInitialize", "PetscOptionsSetValue"},
      0.34,
  });

  add(ApiSpec{
      "PetscOptionsSetValue",
      ApiKind::Function,
      ApiLevel::Intermediate,
      "Programmatically inserts an option into the options database.",
      "PetscErrorCode PetscOptionsSetValue(PetscOptions options, const "
      "char name[], const char value[]);",
      {"Lets an application hardwire defaults (before the objects' "
       "SetFromOptions calls) while still allowing command-line "
       "overrides. Options set this way are indistinguishable from "
       "command-line options, including for -options_left accounting."},
      {},
      {"PetscOptionsGetInt", "KSPSetFromOptions"},
      0.23,
  });

  add(ApiSpec{
      "PetscLogStageRegister",
      ApiKind::Function,
      ApiLevel::Intermediate,
      "Registers a named logging stage for the -log_view performance "
      "summary.",
      "PetscErrorCode PetscLogStageRegister(const char name[], "
      "PetscLogStage *stage);",
      {"Stages partition the -log_view report: wrap phases of the "
       "application (setup, assembly, solve, I/O) in "
       "PetscLogStagePush/Pop so the per-event table is broken down by "
       "phase. Without stages, one-time setup costs blend into the solve "
       "numbers and mislead scaling studies."},
      {},
      {"PetscLogStagePush", "PetscFinalize"},
      0.21,
  });

  add(ApiSpec{
      "PetscLogStagePush",
      ApiKind::Function,
      ApiLevel::Intermediate,
      "Enters a registered logging stage (paired with PetscLogStagePop).",
      "PetscErrorCode PetscLogStagePush(PetscLogStage stage);",
      {"Events recorded while a stage is active are attributed to it in "
       "the -log_view summary. Stages nest; the innermost active stage "
       "receives the attribution."},
      {},
      {"PetscLogStageRegister", "PetscFinalize"},
      0.17,
  });

  add(ApiSpec{
      "PetscPrintf",
      ApiKind::Function,
      ApiLevel::Beginner,
      "Prints formatted output from the first process of a communicator.",
      "PetscErrorCode PetscPrintf(MPI_Comm comm, const char format[], ...);",
      {"Avoids the interleaved-output chaos of every rank printing: only "
       "rank 0 of the communicator prints. For synchronized per-rank "
       "output use PetscSynchronizedPrintf followed by "
       "PetscSynchronizedFlush."},
      {},
      {"PetscInitialize"},
      0.53,
  });

  add(ApiSpec{
      "PetscMalloc1",
      ApiKind::Function,
      ApiLevel::Beginner,
      "Allocates memory with PETSc's tracked allocator.",
      "PetscErrorCode PetscMalloc1(size_t m, Type **result);",
      {"PETSc-tracked allocation participates in -malloc_view reporting "
       "and leak detection at PetscFinalize. Pair with PetscFree. In "
       "debug builds, memory is poisoned and guarded to catch overwrite "
       "bugs."},
      {},
      {"PetscFinalize"},
      0.29,
  });

  // -------------------------------------------------- extra PC/KSP pages
  add(ApiSpec{
      "PCEISENSTAT",
      ApiKind::PcType,
      ApiLevel::Advanced,
      "SSOR preconditioning with the Eisenstat trick, halving the work of "
      "the preconditioned iteration.",
      "PCSetType(pc, PCEISENSTAT);",
      {"Eisenstat's trick rewrites the SSOR-preconditioned iteration so "
       "each step costs about one multiplication with the triangular "
       "parts instead of two. It only pays off with methods and norms "
       "that tolerate the transformed system."},
      {"-pc_eisenstat_omega <omega> : relaxation factor"},
      {"PCSOR", "KSPCG"},
      0.08,
  });

  add(ApiSpec{
      "PCGASM",
      ApiKind::PcType,
      ApiLevel::Advanced,
      "Generalized additive Schwarz: user-defined subdomains that may "
      "span processes.",
      "PCSetType(pc, PCGASM);",
      {"Where PCASM ties subdomains to processes, PCGASM decouples the "
       "subdomain decomposition from the parallel distribution, allowing "
       "subdomains larger than a rank's ownership. Configuration and "
       "inner-solver options mirror PCASM."},
      {"-pc_gasm_overlap <n>"},
      {"PCASM", "PCBJACOBI"},
      0.07,
  });

  add(ApiSpec{
      "PCCOMPOSITE",
      ApiKind::PcType,
      ApiLevel::Advanced,
      "Composes several preconditioners additively or multiplicatively.",
      "PCSetType(pc, PCCOMPOSITE);",
      {"PCCOMPOSITE chains sub-preconditioners (-pc_composite_pcs "
       "ilu,gamg) combined additively or multiplicatively "
       "(-pc_composite_type). Useful for pairing a cheap smoother with a "
       "coarse corrector outside of a formal multigrid."},
      {"-pc_composite_type <additive,multiplicative>",
       "-pc_composite_pcs <list>"},
      {"PCMG", "PCFIELDSPLIT"},
      0.09,
  });

  add(ApiSpec{
      "KSPIBCGS",
      ApiKind::SolverType,
      ApiLevel::Advanced,
      "Improved stabilized BiCG: a reformulated BiCGStab with a single "
      "reduction phase per iteration.",
      "KSPSetType(ksp, KSPIBCGS);",
      {"The improved variant fuses the inner products of BiCGStab into "
       "one reduction, helping strong scaling. Numerically it can "
       "be slightly less robust than plain BiCGStab; it requires an "
       "extra initial matrix product."},
      {"-ksp_type ibcgs"},
      {"KSPBCGS", "KSPBCGSL"},
      0.06,
  });

  add(ApiSpec{
      "KSPFBCGS",
      ApiKind::SolverType,
      ApiLevel::Advanced,
      "Flexible BiCGStab, tolerating a variable preconditioner.",
      "KSPSetType(ksp, KSPFBCGS);",
      {"The flexible variant of BiCGStab permits the preconditioner to "
       "change between iterations, like FGMRES but with short "
       "recurrences. Robustness under strongly varying preconditioners "
       "is weaker than FGMRES's."},
      {"-ksp_type fbcgs"},
      {"KSPBCGS", "KSPFGMRES"},
      0.05,
  });

  add(ApiSpec{
      "KSPHPDDM",
      ApiKind::SolverType,
      ApiLevel::Developer,
      "Interface to the HPDDM library of advanced Krylov methods, "
      "including block and recycling variants (GCRODR).",
      "KSPSetType(ksp, KSPHPDDM);",
      {"HPDDM provides block GMRES/CG (solving several right-hand sides "
       "simultaneously with shared Krylov information — the natural "
       "engine under KSPMatSolve) and recycling methods (GCRODR) that "
       "retain deflation spaces across consecutive solves. Requires "
       "PETSc configured with --download-hpddm."},
      {"-ksp_hpddm_type <gmres,bgmres,cg,bcg,gcrodr>"},
      {"KSPMatSolve", "KSPDGMRES"},
      0.05,
  });

  add(ApiSpec{
      "KSPView",
      ApiKind::Function,
      ApiLevel::Beginner,
      "Prints the configuration of a KSP object to a viewer.",
      "PetscErrorCode KSPView(KSP ksp, PetscViewer viewer);",
      {"The programmatic form of -ksp_view: shows the Krylov method, "
       "tolerances, norm type, preconditioning side, and recursively the "
       "PC and its sub-solvers. Essential when debugging which options "
       "actually took effect."},
      {"-ksp_view : view after setup from the options database"},
      {"KSPSolve", "PCView"},
      0.39,
  });

  add(ApiSpec{
      "KSPGMRESSetRestart",
      ApiKind::Function,
      ApiLevel::Intermediate,
      "Sets the GMRES restart length from code.",
      "PetscErrorCode KSPGMRESSetRestart(KSP ksp, PetscInt restart);",
      {"The programmatic form of -ksp_gmres_restart. The default restart "
       "is 30. Applies to GMRES, FGMRES, and LGMRES. Larger restarts "
       "improve convergence at higher memory and orthogonalization "
       "cost."},
      {"-ksp_gmres_restart <n>"},
      {"KSPGMRES", "KSPFGMRES"},
      0.26,
  });

  add(ApiSpec{
      "MatNullSpaceCreate",
      ApiKind::Function,
      ApiLevel::Advanced,
      "Creates a null space object describing the kernel of a singular "
      "operator.",
      "PetscErrorCode MatNullSpaceCreate(MPI_Comm comm, PetscBool "
      "has_cnst, PetscInt n, const Vec vecs[], MatNullSpace *sp);",
      {"Pass has_cnst = PETSC_TRUE for the constant null space (pure "
       "Neumann problems); supply basis vectors for richer kernels. "
       "Attach to the matrix with MatSetNullSpace so the Krylov solver "
       "projects it out of the residual at each iteration, keeping the "
       "iterates in the space where the singular system has a unique "
       "solution."},
      {},
      {"MatSetNullSpace", "MatNullSpaceCreateRigidBody"},
      0.19,
  });

  return specs;
}

}  // namespace pkb::corpus::detail
