#pragma once
// Internal: the spec table is assembled from per-category builders so each
// translation unit stays reviewable. Not part of the public API.

#include <vector>

#include "corpus/api_spec.h"

namespace pkb::corpus::detail {

[[nodiscard]] std::vector<ApiSpec> ksp_type_specs();
[[nodiscard]] std::vector<ApiSpec> pc_type_specs();
[[nodiscard]] std::vector<ApiSpec> function_specs();
[[nodiscard]] std::vector<ApiSpec> option_specs();
[[nodiscard]] std::vector<ApiSpec> concept_specs();
/// The wider library surface (SNES, TS, DM, more Mat/Vec/Sys): the paper's
/// corpus is the whole PETSc documentation, of which Krylov solvers are one
/// subtopic — these pages are the realistic retrieval competition.
[[nodiscard]] std::vector<ApiSpec> outer_library_specs();

}  // namespace pkb::corpus::detail
