// Runtime option and concept-page specifications.
#include "corpus/api_table_detail.h"

namespace pkb::corpus::detail {

std::vector<ApiSpec> option_specs() {
  std::vector<ApiSpec> specs;
  auto add = [&specs](ApiSpec spec) { specs.push_back(std::move(spec)); };

  add(ApiSpec{
      "-ksp_type",
      ApiKind::Option,
      ApiLevel::Beginner,
      "Selects the Krylov method at runtime (gmres, cg, bcgs, minres, "
      "lsqr, preonly, ...).",
      "mpiexec -n 4 ./app -ksp_type gmres",
      {"The option is consumed by KSPSetFromOptions, so the application "
       "must call it. Combined with -pc_type this allows complete solver "
       "experimentation from the command line without recompiling — the "
       "central design philosophy of the PETSc solvers: composability at "
       "runtime. Example: -ksp_type bcgs -pc_type asm -sub_pc_type ilu."},
      {},
      {"KSPSetType", "KSPSetFromOptions", "-pc_type"},
      0.80,
  });

  add(ApiSpec{
      "-pc_type",
      ApiKind::Option,
      ApiLevel::Beginner,
      "Selects the preconditioner at runtime (jacobi, bjacobi, ilu, lu, "
      "sor, asm, gamg, hypre, fieldsplit, none, ...).",
      "mpiexec -n 4 ./app -pc_type gamg",
      {"Consumed by PCSetFromOptions (usually reached through "
       "KSPSetFromOptions). The preconditioner choice typically matters "
       "far more than the Krylov method choice for hard problems. The "
       "defaults are ilu sequentially and bjacobi (with ILU(0) blocks) in "
       "parallel."},
      {},
      {"PCSetType", "-ksp_type", "-sub_pc_type"},
      0.78,
  });

  add(ApiSpec{
      "-ksp_monitor",
      ApiKind::Option,
      ApiLevel::Beginner,
      "Prints the (preconditioned) residual norm at every KSP iteration.",
      "./app -ksp_monitor",
      {"Each line shows the iteration number and the residual norm the "
       "method tracks — by default the preconditioned residual norm for "
       "left-preconditioned methods. To see the true residual ||b - Ax|| "
       "as well, use -ksp_monitor_true_residual. Output can be redirected "
       "with a viewer specification, e.g. "
       "-ksp_monitor ascii:residuals.txt."},
      {},
      {"-ksp_monitor_true_residual", "KSPMonitorSet", "-ksp_view"},
      0.64,
  });

  add(ApiSpec{
      "-ksp_monitor_true_residual",
      ApiKind::Option,
      ApiLevel::Intermediate,
      "Prints both the preconditioned and the true (unpreconditioned) "
      "residual norms at every iteration.",
      "./app -ksp_monitor_true_residual",
      {"The true residual norm ||b - Ax||_2 is computed explicitly each "
       "iteration, adding the cost of one matrix-vector product per "
       "iteration — use it for diagnosis, not production. A large gap "
       "between the preconditioned and true residual norms signals an "
       "ill-conditioned preconditioner: the preconditioned norm can look "
       "converged while the true error is still large, which is exactly "
       "the situation where trusting -ksp_monitor alone misleads."},
      {},
      {"-ksp_monitor", "KSPSetNormType", "KSPSetPCSide"},
      0.41,
  });

  add(ApiSpec{
      "-ksp_view",
      ApiKind::Option,
      ApiLevel::Beginner,
      "Prints the complete configuration of the solver actually used "
      "(KSP type, tolerances, PC type, sub-solvers, matrix info).",
      "./app -ksp_view",
      {"Printed once per solve after setup, -ksp_view is the ground truth "
       "for 'what solver did I actually run?' — indispensable when "
       "options interact or defaults kick in. It recursively shows inner "
       "solvers (e.g. each block of PCBJACOBI and its ILU configuration). "
       "Compare -ksp_view_pre to see the configuration before the solve."},
      {},
      {"-ksp_monitor", "-ksp_converged_reason", "KSPView"},
      0.59,
  });

  add(ApiSpec{
      "-ksp_converged_reason",
      ApiKind::Option,
      ApiLevel::Beginner,
      "Prints why each linear solve terminated (which convergence or "
      "divergence criterion fired) and the iteration count.",
      "./app -ksp_converged_reason",
      {"Typical outputs: 'Linear solve converged due to CONVERGED_RTOL "
       "iterations 14' or 'Linear solve did not converge due to "
       "DIVERGED_ITS iterations 10000'. The first stop for any 'my solver "
       "is not converging' question: it distinguishes slow convergence "
       "(DIVERGED_ITS) from blow-up (DIVERGED_DTOL) from preconditioner "
       "failure (DIVERGED_PC_FAILED)."},
      {},
      {"KSPGetConvergedReason", "-ksp_monitor", "-ksp_view"},
      0.55,
  });

  add(ApiSpec{
      "-info",
      ApiKind::Option,
      ApiLevel::Intermediate,
      "Prints verbose informational messages from PETSc internals, "
      "including the success of matrix preallocation during assembly.",
      "./app -info | grep malloc",
      {"As described in the users manual, the option -info will print "
       "information about the success of preallocation during matrix "
       "assembly: lines such as 'MatAssemblyEnd_SeqAIJ(): Number of "
       "mallocs during MatSetValues() is 0' confirm the preallocation was "
       "sufficient, while a large malloc count pinpoints the classic "
       "cause of slow assembly. Output can be filtered by class with "
       "-info :mat,vec or redirected to a file with -info filename.",
       "The volume is large; pipe through grep. PetscInfo is the "
       "underlying logging routine, and it is deactivated entirely in "
       "optimized builds configured with --with-debugging=0 unless "
       "--with-info=1 is given."},
      {},
      {"MatSetValues", "MatAssemblyEnd", "-log_view"},
      0.25,
  });

  add(ApiSpec{
      "-log_view",
      ApiKind::Option,
      ApiLevel::Beginner,
      "Prints the performance summary at PetscFinalize: time, flops, "
      "messages, and reductions per event and per stage.",
      "./app -log_view",
      {"The -log_view table is the canonical PETSc performance tool: for "
       "each event (MatMult, KSPSolve, PCApply, VecNorm, ...) it reports "
       "count, time, flop rate, MPI message volume, and the fraction of "
       "total runtime, split by logging stage. Always attach it when "
       "asking performance questions on the mailing list. It replaced the "
       "older -log_summary option.",
       "Granular variants: -log_view :perf.txt writes to a file and "
       "-log_view ::ascii_flamegraph emits flame-graph format."},
      {},
      {"PetscFinalize", "PetscLogStageRegister", "-info"},
      0.49,
  });

  add(ApiSpec{
      "-options_left",
      ApiKind::Option,
      ApiLevel::Beginner,
      "At exit, lists options that were set but never used — the standard "
      "way to catch misspelled option names.",
      "./app -options_left",
      {"Because unknown options are silently ignored (they might belong "
       "to another library or a later object), a typo like -ksp_tpye "
       "gmres simply does nothing. -options_left reports every option "
       "that no object consumed, turning silent misconfiguration into a "
       "visible warning at PetscFinalize."},
      {},
      {"PetscFinalize", "PetscInitialize", "-help"},
      0.37,
  });

  add(ApiSpec{
      "-ksp_gmres_restart",
      ApiKind::Option,
      ApiLevel::Intermediate,
      "Sets the GMRES restart length (default 30).",
      "./app -ksp_type gmres -ksp_gmres_restart 100",
      {"Larger restart lengths reduce the risk of stagnation and usually "
       "reduce iteration counts, but memory and orthogonalization cost "
       "grow linearly and quadratically respectively with the restart. "
       "The option applies to KSPGMRES, KSPFGMRES, and KSPLGMRES. From "
       "code use KSPGMRESSetRestart."},
      {},
      {"KSPGMRES", "KSPGMRESSetRestart", "KSPLGMRES"},
      0.43,
  });

  add(ApiSpec{
      "-ksp_rtol",
      ApiKind::Option,
      ApiLevel::Beginner,
      "Sets the relative convergence tolerance: stop when the residual "
      "norm drops below rtol times the initial norm (default 1e-5).",
      "./app -ksp_rtol 1e-8",
      {"One of the four stopping parameters (with -ksp_atol, -ksp_divtol, "
       "-ksp_max_it) applied by the default convergence test. Tightening "
       "rtol beyond the discretization error wastes iterations; inside "
       "Newton methods, inexact-Newton theory (Eisenstat-Walker) argues "
       "for loose linear tolerances early in the nonlinear iteration."},
      {},
      {"KSPSetTolerances", "-ksp_atol", "-ksp_max_it"},
      0.51,
  });

  add(ApiSpec{
      "-ksp_max_it",
      ApiKind::Option,
      ApiLevel::Beginner,
      "Caps the number of Krylov iterations (default 10000).",
      "./app -ksp_max_it 500",
      {"When the cap is reached before the tolerances are met, the solve "
       "stops with KSP_DIVERGED_ITS (reported by -ksp_converged_reason). "
       "Set it from code with the maxits argument of KSPSetTolerances. "
       "For smoother-style fixed-iteration solves, combine a small "
       "-ksp_max_it with -ksp_norm_type none and "
       "KSPConvergedSkip."},
      {},
      {"KSPSetTolerances", "KSPGetConvergedReason", "-ksp_rtol"},
      0.46,
  });

  add(ApiSpec{
      "-ksp_initial_guess_nonzero",
      ApiKind::Option,
      ApiLevel::Intermediate,
      "Uses the incoming contents of the solution vector as the initial "
      "guess instead of zeroing it.",
      "./app -ksp_initial_guess_nonzero true",
      {"Runtime form of KSPSetInitialGuessNonzero. Essential in "
       "time-stepping loops where the previous step's solution is a good "
       "starting point; note that with a nonzero guess the reported "
       "relative convergence is measured against the right-hand side "
       "norm, not the initial residual, under the default test."},
      {},
      {"KSPSetInitialGuessNonzero", "KSPSolve"},
      0.29,
  });

  add(ApiSpec{
      "-ksp_norm_type",
      ApiKind::Option,
      ApiLevel::Advanced,
      "Chooses the norm used by the convergence test: preconditioned, "
      "unpreconditioned, natural, or none.",
      "./app -ksp_norm_type unpreconditioned",
      {"With 'unpreconditioned' the stopping test uses the true residual "
       "||b - Ax|| even under left preconditioning, at the cost of extra "
       "work per iteration. 'none' skips the norm (and the associated "
       "global reduction) entirely so the method runs a fixed number of "
       "iterations — standard for multigrid smoothers. Runtime form of "
       "KSPSetNormType."},
      {},
      {"KSPSetNormType", "KSPSetPCSide", "-ksp_monitor_true_residual"},
      0.19,
  });

  add(ApiSpec{
      "-ksp_pc_side",
      ApiKind::Option,
      ApiLevel::Intermediate,
      "Chooses left, right, or symmetric preconditioning at runtime.",
      "./app -ksp_pc_side right",
      {"Runtime form of KSPSetPCSide. Right preconditioning makes the "
       "monitored norm the true residual norm and is required by FGMRES "
       "and GCR; left preconditioning (GMRES's default) monitors the "
       "preconditioned norm. Symmetric preconditioning is available for "
       "methods and preconditioners that support it (e.g. with PCSOR's "
       "symmetric variant)."},
      {},
      {"KSPSetPCSide", "-ksp_norm_type"},
      0.21,
  });

  return specs;
}

std::vector<ApiSpec> concept_specs() {
  std::vector<ApiSpec> specs;
  auto add = [&specs](ApiSpec spec) { specs.push_back(std::move(spec)); };

  add(ApiSpec{
      "KSP",
      ApiKind::Concept,
      ApiLevel::Beginner,
      "The abstraction for Krylov subspace iterative methods and (with "
      "KSPPREONLY) direct solvers; manages the method, the preconditioner, "
      "and the convergence testing.",
      "",
      {"KSP objects solve linear systems A x = b. The KSP design couples a "
       "Krylov method (KSPType) with a preconditioner (PC) and exposes "
       "every algorithmic choice through the options database. The default "
       "solver configuration is GMRES(30) preconditioned with ILU(0) on "
       "one process and block Jacobi/ILU(0) in parallel.",
       "Most KSP methods require a square matrix; KSP can also be used to "
       "solve least squares problems with rectangular matrices, using, for "
       "example, KSPLSQR, which handles overdetermined and underdetermined "
       "systems. The matrix need not be explicitly assembled — matrix-free "
       "MATSHELL operators work with any KSP, though most preconditioners "
       "need an assembled Pmat.",
       "Typical usage: KSPCreate, KSPSetOperators, KSPSetFromOptions, "
       "KSPSolve, KSPDestroy. Solver composition (fieldsplit blocks, "
       "multigrid levels, Schwarz subdomains, inner-outer iterations) is "
       "configured entirely through prefixed options."},
      {"-ksp_type", "-ksp_rtol", "-ksp_monitor", "-ksp_view"},
      {"KSPCreate", "KSPSolve", "KSPLSQR", "PCSetType"},
      0.89,
  });

  add(ApiSpec{
      "PC",
      ApiKind::Concept,
      ApiLevel::Beginner,
      "The preconditioner abstraction: an operator B approximating the "
      "inverse action of the matrix, applied every Krylov iteration.",
      "",
      {"Preconditioning transforms A x = b into an equivalent system with "
       "more favorable spectral properties; virtually all practical Krylov "
       "convergence comes from the preconditioner. PC types range from "
       "trivially parallel point methods (PCJACOBI, PCSOR) through "
       "incomplete factorizations (PCILU, PCICC) and domain decomposition "
       "(PCBJACOBI, PCASM) to optimal multilevel methods (PCMG, PCGAMG, "
       "PCHYPRE) and composition frameworks (PCFIELDSPLIT, PCCOMPOSITE).",
       "A preconditioner can be applied on the left, the right, or "
       "symmetrically (KSPSetPCSide); this changes which residual norm "
       "the method monitors."},
      {"-pc_type"},
      {"PCSetType", "KSPGetPC", "KSPSetPCSide"},
      0.77,
  });

  add(ApiSpec{
      "KSPConvergedReason",
      ApiKind::Concept,
      ApiLevel::Intermediate,
      "The enumeration of reasons a KSP iteration stops: positive values "
      "mean converged, negative values mean diverged.",
      "",
      {"Common values: KSP_CONVERGED_RTOL (relative tolerance met — the "
       "usual success), KSP_CONVERGED_ATOL, KSP_CONVERGED_ITS (fixed "
       "iteration methods like preonly), KSP_DIVERGED_ITS (iteration cap "
       "hit first — strengthen the preconditioner or raise -ksp_max_it), "
       "KSP_DIVERGED_DTOL (residual grew by the divergence factor), "
       "KSP_DIVERGED_BREAKDOWN (Krylov recurrence broke down — try "
       "another method), KSP_DIVERGED_PC_FAILED (preconditioner setup or "
       "apply failed, e.g. a zero pivot during factorization).",
       "Query from code with KSPGetConvergedReason or print with "
       "-ksp_converged_reason."},
      {"-ksp_converged_reason"},
      {"KSPGetConvergedReason", "KSPSetTolerances"},
      0.34,
  });

  add(ApiSpec{
      "MATSHELL",
      ApiKind::Concept,
      ApiLevel::Advanced,
      "Matrix-free matrix type whose operations are user callbacks; lets "
      "Krylov methods run without an assembled matrix.",
      "",
      {"A MATSHELL stores only a user context and callbacks "
       "(MatShellSetOperation), most importantly MATOP_MULT for y = A x. "
       "Since Krylov methods need only the operator action, a shell "
       "matrix suffices for the Amat of KSPSetOperators; supply an "
       "assembled approximation as Pmat for the preconditioner, or use "
       "preconditioners that need no entries (PCNONE, PCSHELL, or a "
       "user-provided PCMG hierarchy)."},
      {},
      {"MatMult", "KSPSetOperators", "PCSHELL"},
      0.31,
  });

  return specs;
}

}  // namespace pkb::corpus::detail
