#pragma once
// Generates the PETSc-like documentation tree (the "official knowledge
// base" of the paper) as an in-memory Markdown file tree.
//
// Pages produced:
//  * one manual page per ApiSpec (manualpages/...), in the structure of real
//    PETSc manual pages: Summary / Synopsis / Options Database Keys / Notes /
//    Level / See Also,
//  * user-manual chapters (docs/manual/ksp.md, docs/manual/pc.md,
//    docs/manual/mat.md, docs/manual/profiling.md) — long-form prose that
//    holds the cross-cutting facts the paper's case studies hinge on,
//  * an FAQ (docs/faq.md),
//  * a short tutorial (docs/tutorials/ksp_tutorial.md).
//
// The generator is deterministic: same options, same bytes.

#include <string>

#include "corpus/api_spec.h"
#include "text/document.h"

namespace pkb::corpus {

/// Corpus generation options.
struct CorpusOptions {
  bool include_manual_pages = true;
  bool include_user_manual = true;
  bool include_faq = true;
  bool include_tutorial = true;
  /// Include the synthetic petsc-users archive (the paper's future work —
  /// off by default to match the paper's evaluated configuration, which
  /// "didn't touch its archives for RAG").
  bool include_mailing_list_archive = false;
  /// Threads generated when the archive is included.
  std::size_t archive_threads = 60;
};

/// Render the complete documentation tree.
[[nodiscard]] text::VirtualDir generate_corpus(const CorpusOptions& opts = {});

/// Render one spec as a Markdown manual page (public so tests and the doc
/// assistant example can regenerate individual pages).
[[nodiscard]] std::string render_manual_page(const ApiSpec& spec);

/// The user-manual KSP chapter (contains the least-squares/KSPLSQR paragraph
/// used by case study 1).
[[nodiscard]] std::string render_ksp_chapter();

/// The user-manual Mat chapter (contains the -info preallocation paragraph
/// used by case study 2).
[[nodiscard]] std::string render_mat_chapter();

}  // namespace pkb::corpus
