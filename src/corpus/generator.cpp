#include "corpus/generator.h"

#include "corpus/mailing_list.h"

#include "util/strings.h"

namespace pkb::corpus {

namespace {

void append_para(std::string& md, std::string_view text) {
  md.append(text);
  md += "\n\n";
}

std::string faq_markdown() {
  std::string md = "# PETSc Frequently Asked Questions\n\n";
  append_para(md,
              "## Why is my iterative solver not converging?\n\n"
              "First run with -ksp_converged_reason to learn which criterion "
              "fired. DIVERGED_ITS means the iteration cap was reached: the "
              "preconditioner is too weak, the tolerances too tight, or the "
              "problem genuinely hard — try a stronger preconditioner "
              "(-pc_type gamg or a direct solve -ksp_type preonly -pc_type "
              "lu as a sanity check). DIVERGED_DTOL means blow-up, often an "
              "indefinite matrix handed to a method that requires positive "
              "definiteness (use KSPMINRES instead of KSPCG), or a wrong "
              "matrix assembly. DIVERGED_PC_FAILED points at the "
              "preconditioner itself, commonly a zero pivot in ILU — try "
              "-pc_factor_shift_type nonzero.");
  append_para(md,
              "## Why is assembling my matrix so slow?\n\n"
              "Almost always insufficient preallocation. Every time "
              "MatSetValues outgrows the preallocated nonzeros, PETSc "
              "reallocates and copies the whole storage. Run with -info and "
              "grep for 'malloc' to see how many such reallocations occurred "
              "during assembly; the goal is zero mallocs. Fix the "
              "preallocation with MatXAIJSetPreallocation or assemble via "
              "MatPreallocator.");
  append_para(md,
              "## What solver and preconditioner does PETSc use if I choose "
              "nothing?\n\n"
              "The default Krylov method is restarted GMRES with restart "
              "length 30. The default preconditioner is ILU(0) when running "
              "on one process, and block Jacobi with ILU(0) on each "
              "process's block in parallel. Confirm what your run actually "
              "used with -ksp_view.");
  append_para(md,
              "## How do I choose between GMRES and BiCGStab?\n\n"
              "Restarted GMRES (the default, restart 30) is the most robust "
              "general-purpose nonsymmetric method but its memory grows with "
              "the restart length. BiCGStab (-ksp_type bcgs) uses constant "
              "memory and often converges comparably, at the price of a more "
              "erratic residual history and possible breakdowns; KSPBCGSL "
              "adds robustness. When the preconditioned residual behaves "
              "erratically, KSPTFQMR offers smoother convergence.");
  append_para(md,
              "## My matrix is symmetric positive definite. What should I "
              "use?\n\n"
              "Use -ksp_type cg with a symmetric preconditioner: -pc_type "
              "icc sequentially, -pc_type gamg or -pc_type hypre for large "
              "problems. Do not use the default GMRES/ILU — CG is cheaper "
              "per iteration (short recurrences) and exploits symmetry.");
  append_para(md,
              "## How can I check which options my program actually "
              "used?\n\n"
              "-ksp_view prints the exact solver configuration; "
              "-options_left reports options that were set but never "
              "consumed, catching typos like -ksp_tpye; -help lists the "
              "options each object understands as it is created.");
  append_para(md,
              "## Can PETSc solve singular systems?\n\n"
              "Yes, if the system is consistent: attach the null space with "
              "MatSetNullSpace (MatNullSpaceCreate with has_cnst for the "
              "constant null space of pure Neumann problems). Krylov "
              "methods then project the null space out each iteration. "
              "Direct factorizations still fail on singular matrices.");
  return md;
}

std::string tutorial_markdown() {
  std::string md = "# KSP Tutorial: Solving Your First Linear System\n\n";
  append_para(md,
              "This tutorial walks through the canonical PETSc linear solve. "
              "The KSP object couples a Krylov method with a preconditioner "
              "and is configured at runtime from the options database.");
  md +=
      "```c\n"
      "#include <petscksp.h>\n"
      "int main(int argc, char **argv)\n"
      "{\n"
      "  Mat A; Vec x, b; KSP ksp;\n"
      "  PetscCall(PetscInitialize(&argc, &argv, NULL, NULL));\n"
      "  /* ... create and assemble A and b ... */\n"
      "  PetscCall(KSPCreate(PETSC_COMM_WORLD, &ksp));\n"
      "  PetscCall(KSPSetOperators(ksp, A, A));\n"
      "  PetscCall(KSPSetFromOptions(ksp));\n"
      "  PetscCall(KSPSolve(ksp, b, x));\n"
      "  PetscCall(KSPDestroy(&ksp));\n"
      "  PetscCall(PetscFinalize());\n"
      "  return 0;\n"
      "}\n"
      "```\n\n";
  append_para(md,
              "Run it with different solvers without recompiling:\n\n"
              "- `./tutorial -ksp_type cg -pc_type icc` for SPD systems\n"
              "- `./tutorial -ksp_type gmres -ksp_gmres_restart 60 -pc_type "
              "asm` for nonsymmetric systems\n"
              "- `./tutorial -ksp_type preonly -pc_type lu` for a direct "
              "solve\n"
              "- add `-ksp_monitor -ksp_converged_reason -ksp_view` to see "
              "what happens");
  append_para(md,
              "Diagnosing convergence: -ksp_monitor prints the "
              "preconditioned residual norm each iteration; "
              "-ksp_monitor_true_residual also prints the true residual, "
              "which is what you actually care about under left "
              "preconditioning. After the solve, -ksp_converged_reason "
              "tells you which stopping criterion fired, and "
              "KSPGetIterationNumber returns the iteration count in code.");
  return md;
}

std::string pc_chapter_markdown() {
  std::string md = "# Preconditioners (PC)\n\n";
  append_para(md,
              "The preconditioner is the decisive ingredient of an "
              "iterative solve: the Krylov method merely extracts the best "
              "answer from the subspace the preconditioned operator "
              "generates. PETSc preconditioners are runtime-composable "
              "objects selected with -pc_type.");
  append_para(md,
              "## Default preconditioners\n\n"
              "On a single process the default preconditioner is ILU(0); in "
              "parallel it is block Jacobi with ILU(0) applied on each "
              "process's diagonal block, paired with the default Krylov "
              "method, restarted GMRES(30). These defaults favor robustness "
              "over speed for easy problems; for large or hard problems "
              "switch to multigrid (-pc_type gamg) or domain decomposition "
              "with overlap (-pc_type asm).");
  append_para(md,
              "## Composing solvers\n\n"
              "Inner solvers are configured through option prefixes: each "
              "block of PCBJACOBI or PCASM is a full KSP reachable with "
              "-sub_ksp_type/-sub_pc_type; each multigrid level smoother "
              "uses -mg_levels_*; each field of PCFIELDSPLIT uses "
              "-fieldsplit_<name>_*. This composition is how complex "
              "physics-based preconditioners are assembled without code.");
  append_para(md,
              "## Symmetry considerations\n\n"
              "KSPCG requires a symmetric positive definite preconditioner: "
              "PCJACOBI, PCICC, symmetric PCSOR (-pc_sor_symmetric), or "
              "multigrid with symmetric smoothers qualify; ILU does not in "
              "general. For symmetric indefinite systems pair KSPMINRES "
              "with an SPD preconditioner such as a block-diagonal "
              "approximation.");
  return md;
}

std::string profiling_chapter_markdown() {
  std::string md = "# Profiling and Performance Diagnostics\n\n";
  append_para(md,
              "PETSc has built-in instrumentation for time, flops, memory, "
              "and MPI traffic. The single most useful tool is -log_view, "
              "printed at PetscFinalize: a table of every registered event "
              "(MatMult, PCApply, KSPSolve, VecNorm, ...) with counts, "
              "times, flop rates, and message volumes, broken down by "
              "stage.");
  append_para(md,
              "When reporting performance problems to the PETSc team, "
              "always attach the full -log_view output of an optimized "
              "(--with-debugging=0) build. Debug builds can be an order of "
              "magnitude slower and their profiles are not meaningful.");
  append_para(md,
              "The -info option prints internal diagnostics from every "
              "object — matrix preallocation success, communication "
              "pattern setup, convergence internals. Filter by class "
              "(-info :mat) or pipe through grep. For iteration-level "
              "solver behavior use -ksp_monitor and friends rather than "
              "-info.");
  append_para(md,
              "Common performance pitfalls: insufficient matrix "
              "preallocation (check with -info | grep malloc — the malloc "
              "count during MatSetValues should be zero); tolerances far "
              "tighter than the discretization error; monitors like "
              "-ksp_monitor_true_residual left enabled in production runs "
              "(they add a matrix-vector product per iteration); and "
              "oversubscribed nodes hiding in MPI wait time.");
  return md;
}

}  // namespace

std::string render_manual_page(const ApiSpec& spec) {
  std::string md;
  md += "# " + spec.name + "\n\n";
  append_para(md, spec.summary);
  if (!spec.synopsis.empty()) {
    md += "## Synopsis\n\n```c\n" + spec.synopsis + "\n```\n\n";
  }
  if (!spec.options.empty()) {
    md += "## Options Database Keys\n\n";
    for (const std::string& opt : spec.options) {
      md += "- `" + opt + "`\n";
    }
    md += "\n";
  }
  if (!spec.notes.empty()) {
    md += "## Notes\n\n";
    for (const std::string& note : spec.notes) append_para(md, note);
  }
  md += "## Level\n\n";
  append_para(md, to_string(spec.level));
  if (!spec.see_also.empty()) {
    md += "## See Also\n\n";
    std::vector<std::string> links;
    links.reserve(spec.see_also.size());
    for (const std::string& ref : spec.see_also) {
      links.push_back("`" + ref + "`");
    }
    append_para(md, pkb::util::join(links, ", "));
  }
  return md;
}

std::string render_ksp_chapter() {
  std::string md = "# KSP: Linear System Solvers\n\n";
  append_para(md,
              "The KSP component provides a unified, runtime-composable "
              "interface to Krylov subspace iterative methods and, through "
              "KSPPREONLY with factorization preconditioners, to direct "
              "solvers. A KSP object combines the Krylov method (KSPType), "
              "the preconditioner (PC), the convergence test, and "
              "monitoring.");
  append_para(md,
              "## Choosing a method\n\n"
              "Most applications should call KSPSetFromOptions and select "
              "the method at runtime with -ksp_type. For square "
              "nonsymmetric matrices the default GMRES(30) is a robust "
              "starting point; BiCGStab (-ksp_type bcgs) trades robustness "
              "for constant memory. For symmetric positive definite "
              "matrices use CG (-ksp_type cg); for symmetric indefinite "
              "matrices use MINRES. When the preconditioner varies between "
              "iterations — an inner iterative solve, an adaptive multigrid "
              "cycle — a flexible method is mandatory: FGMRES (-ksp_type "
              "fgmres) or GCR.");
  append_para(md,
              "## Square and rectangular systems\n\n"
              "The standard Krylov methods assume a square, nonsingular "
              "operator. KSP can also be used to solve least squares "
              "problems, using, for example, KSPLSQR, which applies the "
              "LSQR bidiagonalization algorithm to rectangular "
              "(overdetermined or underdetermined) systems and to square "
              "systems that are singular or rank deficient, converging to "
              "the minimum-norm least squares solution. The matrix need "
              "not be invertible; what matters is consistency of the "
              "system, or acceptance of a least squares residual.");
  append_para(md,
              "For singular but consistent square systems (for example the "
              "pure Neumann pressure Poisson problem, whose null space is "
              "the constant vector), attach the null space with "
              "MatSetNullSpace; the Krylov iteration then projects it out "
              "at every step and converges to the solution orthogonal to "
              "the null space.");
  append_para(md,
              "## Convergence testing\n\n"
              "The default test stops when the residual norm falls below "
              "max(rtol*||b||, abstol), with rtol = 1e-5, abstol = 1e-50, "
              "and declares divergence beyond dtol = 1e5 times the initial "
              "residual or after maxits = 10000 iterations "
              "(KSPSetTolerances / -ksp_rtol -ksp_atol -ksp_divtol "
              "-ksp_max_it). Replace the rule entirely with "
              "KSPSetConvergenceTest. Which norm is tested depends on the "
              "preconditioning side: left preconditioning monitors the "
              "preconditioned residual norm, right preconditioning the "
              "true residual norm (KSPSetPCSide, KSPSetNormType).");
  append_para(md,
              "## Monitoring and diagnosis\n\n"
              "-ksp_monitor prints the tracked residual norm per "
              "iteration; -ksp_monitor_true_residual additionally computes "
              "and prints the true residual ||b - Ax||. After the solve, "
              "-ksp_converged_reason reports which criterion fired, and "
              "-ksp_view prints the complete solver configuration, "
              "including every nested sub-solver. KSPGetConvergedReason, "
              "KSPGetIterationNumber, and KSPGetResidualNorm expose the "
              "same data programmatically.");
  append_para(md,
              "## Initial guesses and repeated solves\n\n"
              "KSPSolve starts from a zero initial guess by default; call "
              "KSPSetInitialGuessNonzero (or -ksp_initial_guess_nonzero) "
              "to start from the incoming solution vector — standard "
              "practice in time-stepping. Repeated solves with the same "
              "matrix reuse the preconditioner automatically; when the "
              "matrix changes but slowly, KSPSetReusePreconditioner skips "
              "the rebuild at the cost of extra iterations. Many "
              "right-hand sides at once are best handled by KSPMatSolve, "
              "which solves A X = B column-block-wise and amortizes setup.");
  return md;
}

std::string render_mat_chapter() {
  std::string md = "# Mat: Matrices\n\n";
  append_para(md,
              "PETSc matrices (Mat) support many storage formats — the "
              "default MATAIJ compressed sparse row format, blocked "
              "MATBAIJ, symmetric MATSBAIJ, dense, and matrix-free "
              "MATSHELL. All formats share the assembly interface: "
              "MatSetValues to insert logically dense blocks, then "
              "MatAssemblyBegin/MatAssemblyEnd to finalize.");
  append_para(md,
              "## Preallocation\n\n"
              "For AIJ-family formats, performance of assembly depends "
              "critically on preallocating the nonzero storage. If "
              "insertions exceed the preallocation, PETSc must allocate a "
              "larger array and copy — potentially at every row — which "
              "can make assembly hundreds of times slower. Preallocate "
              "with MatXAIJSetPreallocation (or the format-specific "
              "routines), or let MatPreallocator compute the pattern in a "
              "dry run.");
  append_para(md,
              "As described above, the option -info will print information "
              "about the success of preallocation during matrix assembly: "
              "look for lines like 'MatAssemblyEnd_SeqAIJ(): Number of "
              "mallocs during MatSetValues() is 0'; a nonzero malloc count "
              "means the preallocation was insufficient and assembly paid "
              "for reallocation copies. There is no dedicated option for "
              "preallocation reporting — -info is the mechanism.");
  append_para(md,
              "## Assembly and communication\n\n"
              "Values may be set on any process; assembly migrates them to "
              "their owners. Between INSERT_VALUES and ADD_VALUES phases an "
              "intermediate MAT_FLUSH_ASSEMBLY is required. The "
              "begin/end split exists so applications can overlap "
              "computation with the assembly communication.");
  append_para(md,
              "## Matrix-free operators\n\n"
              "MATSHELL wraps user callbacks as a matrix; Krylov methods "
              "need only MatMult, so shell matrices plug directly into "
              "KSP. Most preconditioners, however, need matrix entries — "
              "supply an assembled Pmat to KSPSetOperators or use "
              "entry-free preconditioning (PCNONE, PCSHELL, user "
              "multigrid).");
  return md;
}

text::VirtualDir generate_corpus(const CorpusOptions& opts) {
  text::VirtualDir tree;
  if (opts.include_manual_pages) {
    for (const ApiSpec& spec : api_table()) {
      tree.push_back(
          text::VirtualFile{manual_page_path(spec), render_manual_page(spec)});
    }
  }
  if (opts.include_user_manual) {
    tree.push_back(text::VirtualFile{"docs/manual/ksp.md", render_ksp_chapter()});
    tree.push_back(text::VirtualFile{"docs/manual/pc.md", pc_chapter_markdown()});
    tree.push_back(text::VirtualFile{"docs/manual/mat.md", render_mat_chapter()});
    tree.push_back(text::VirtualFile{"docs/manual/profiling.md",
                                     profiling_chapter_markdown()});
  }
  if (opts.include_faq) {
    tree.push_back(text::VirtualFile{"docs/faq.md", faq_markdown()});
  }
  if (opts.include_tutorial) {
    tree.push_back(
        text::VirtualFile{"docs/tutorials/ksp_tutorial.md", tutorial_markdown()});
  }
  if (opts.include_mailing_list_archive) {
    ArchiveOptions archive_opts;
    archive_opts.threads = opts.archive_threads;
    for (auto& file : generate_mailing_list_archive(archive_opts)) {
      tree.push_back(std::move(file));
    }
  }
  return tree;
}

}  // namespace pkb::corpus
