// Core KSP/Mat/Vec/Petsc function specifications.
#include "corpus/api_table_detail.h"

namespace pkb::corpus::detail {

std::vector<ApiSpec> function_specs() {
  std::vector<ApiSpec> specs;
  auto add = [&specs](ApiSpec spec) { specs.push_back(std::move(spec)); };

  add(ApiSpec{
      "KSPCreate",
      ApiKind::Function,
      ApiLevel::Beginner,
      "Creates a KSP context, the PETSc abstraction for a Krylov linear "
      "solver plus its preconditioner.",
      "PetscErrorCode KSPCreate(MPI_Comm comm, KSP *ksp);",
      {"KSPCreate allocates the solver object on a communicator. The usual "
       "lifecycle is KSPCreate, KSPSetOperators, KSPSetFromOptions, "
       "KSPSolve, KSPDestroy. The KSP object contains a PC (preconditioner) "
       "context retrievable with KSPGetPC."},
      {},
      {"KSPSetOperators", "KSPSolve", "KSPDestroy", "KSPGetPC"},
      0.90,
  });

  add(ApiSpec{
      "KSPSolve",
      ApiKind::Function,
      ApiLevel::Beginner,
      "Solves the linear system A x = b with the configured Krylov method "
      "and preconditioner.",
      "PetscErrorCode KSPSolve(KSP ksp, Vec b, Vec x);",
      {"KSPSolve runs the configured iterative (or direct, via KSPPREONLY) "
       "solve. By default the initial guess is zero and x is overwritten "
       "with the solution; call KSPSetInitialGuessNonzero to start from the "
       "incoming contents of x. After the solve, interrogate the outcome "
       "with KSPGetConvergedReason, the iteration count with "
       "KSPGetIterationNumber, and the residual with KSPGetResidualNorm.",
       "KSPSolve may be called repeatedly with different right-hand sides; "
       "the preconditioner is rebuilt only when the operators change (see "
       "KSPSetReusePreconditioner). For many simultaneous right-hand sides "
       "use KSPMatSolve instead.",
       "If the solve diverges, KSPSolve does not error by default; it "
       "records a negative converged reason. Use "
       "KSPSetErrorIfNotConverged or check the reason explicitly."},
      {"-ksp_view : print the solver configuration used",
       "-ksp_converged_reason : print why the solve stopped"},
      {"KSPCreate", "KSPSetOperators", "KSPGetConvergedReason",
       "KSPGetIterationNumber", "KSPMatSolve"},
      0.92,
  });

  add(ApiSpec{
      "KSPSetType",
      ApiKind::Function,
      ApiLevel::Beginner,
      "Sets the Krylov method (KSPType) to be used, e.g. KSPGMRES or "
      "KSPCG.",
      "PetscErrorCode KSPSetType(KSP ksp, KSPType type);",
      {"KSPSetType chooses the algorithm. Calling it in code fixes the "
       "type; most applications instead call KSPSetFromOptions and select "
       "the method at runtime with -ksp_type gmres|cg|bcgs|..., which "
       "keeps the choice flexible without recompiling. The type may be "
       "changed between solves; data structures are rebuilt lazily."},
      {"-ksp_type <type> : set the Krylov method from the options database"},
      {"KSPSetFromOptions", "KSPGetType", "KSPSetPCSide"},
      0.88,
  });

  add(ApiSpec{
      "KSPSetOperators",
      ApiKind::Function,
      ApiLevel::Beginner,
      "Sets the matrix that defines the linear system (Amat) and the matrix "
      "from which the preconditioner is built (Pmat).",
      "PetscErrorCode KSPSetOperators(KSP ksp, Mat Amat, Mat Pmat);",
      {"Amat defines the operator applied in the Krylov iteration; Pmat is "
       "the matrix the preconditioner is constructed from. They are often "
       "the same matrix, but passing a different Pmat lets you build the "
       "preconditioner from a simplified or lower-order discretization "
       "while iterating with the true operator — a standard trick for "
       "matrix-free Amat (MATSHELL) with an assembled Pmat.",
       "Calling KSPSetOperators again with a modified matrix triggers a "
       "preconditioner rebuild on the next solve unless "
       "KSPSetReusePreconditioner was set."},
      {},
      {"KSPSolve", "KSPSetReusePreconditioner", "MATSHELL", "PCSetOperators"},
      0.80,
  });

  add(ApiSpec{
      "KSPSetFromOptions",
      ApiKind::Function,
      ApiLevel::Beginner,
      "Configures the KSP (type, tolerances, monitors, PC, ...) from the "
      "runtime options database.",
      "PetscErrorCode KSPSetFromOptions(KSP ksp);",
      {"KSPSetFromOptions reads the options database — populated from the "
       "command line, environment, and option files — and applies every "
       "-ksp_* and (through the attached PC) -pc_* setting. Call it once "
       "after KSPSetOperators and before KSPSolve. This is the idiomatic "
       "way to make solver choice, tolerances, and monitoring runtime-"
       "configurable: -ksp_type, -ksp_rtol, -ksp_max_it, -ksp_monitor, "
       "-pc_type, and hundreds more.",
       "Options not consumed by any object are reported at exit when "
       "-options_left is given, which catches misspelled options."},
      {"-ksp_type <type>", "-ksp_rtol <rtol>", "-ksp_monitor",
       "-pc_type <type>"},
      {"KSPSetType", "KSPSetTolerances", "PetscOptionsSetValue"},
      0.86,
  });

  add(ApiSpec{
      "KSPSetTolerances",
      ApiKind::Function,
      ApiLevel::Beginner,
      "Sets the relative, absolute, and divergence tolerances and the "
      "maximum iteration count used by the default convergence test.",
      "PetscErrorCode KSPSetTolerances(KSP ksp, PetscReal rtol, PetscReal "
      "abstol, PetscReal dtol, PetscInt maxits);",
      {"The defaults are rtol = 1e-5, abstol = 1e-50, dtol = 1e5, and "
       "maxits = 10000. The default test declares convergence when the "
       "(by default preconditioned) residual norm falls below "
       "max(rtol * ||b||, abstol) and divergence when it exceeds dtol "
       "times the initial residual. Pass PETSC_DEFAULT (PETSC_CURRENT) for "
       "any parameter you do not want to change.",
       "The same values are set at runtime with -ksp_rtol, -ksp_atol, "
       "-ksp_divtol, and -ksp_max_it. For a custom stopping rule replace "
       "the test with KSPSetConvergenceTest."},
      {"-ksp_rtol <rtol> : relative decrease (default 1e-5)",
       "-ksp_atol <abstol> : absolute residual norm (default 1e-50)",
       "-ksp_divtol <dtol> : divergence threshold (default 1e5)",
       "-ksp_max_it <maxits> : maximum iterations (default 10000)"},
      {"KSPSetConvergenceTest", "KSPGetConvergedReason", "KSPSetNormType"},
      0.82,
  });

  add(ApiSpec{
      "KSPGetConvergedReason",
      ApiKind::Function,
      ApiLevel::Beginner,
      "Returns the KSPConvergedReason explaining why the iteration stopped "
      "(converged, diverged, or still iterating).",
      "PetscErrorCode KSPGetConvergedReason(KSP ksp, KSPConvergedReason "
      "*reason);",
      {"Positive reasons mean convergence (KSP_CONVERGED_RTOL when the "
       "relative tolerance was met, KSP_CONVERGED_ATOL for the absolute "
       "tolerance, KSP_CONVERGED_ITS for KSPPREONLY's single application); "
       "negative reasons mean failure: KSP_DIVERGED_ITS when the maximum "
       "iterations were exhausted before the tolerance was met, "
       "KSP_DIVERGED_DTOL when the residual grew by the divergence factor, "
       "KSP_DIVERGED_PC_FAILED when the preconditioner setup broke down "
       "(for example a zero pivot in ILU), and "
       "KSP_DIVERGED_BREAKDOWN for a Krylov breakdown.",
       "The quickest diagnostic is the runtime option "
       "-ksp_converged_reason, which prints the reason (and with "
       "::failed, only failures) after each solve. KSP_DIVERGED_ITS "
       "usually indicates a preconditioner too weak for the problem or a "
       "max iteration count set too low."},
      {"-ksp_converged_reason : print the reason each solve stops"},
      {"KSPSolve", "KSPSetTolerances", "KSPConvergedReasonView"},
      0.66,
  });

  add(ApiSpec{
      "KSPGetIterationNumber",
      ApiKind::Function,
      ApiLevel::Beginner,
      "Returns the number of iterations the most recent KSPSolve used (or "
      "the current count during a solve).",
      "PetscErrorCode KSPGetIterationNumber(KSP ksp, PetscInt *its);",
      {"After KSPSolve completes, KSPGetIterationNumber reports how many "
       "iterations were taken; during a solve (e.g. inside a monitor or "
       "convergence test callback) it reports the current iteration. The "
       "count is also printed by -ksp_converged_reason and by the "
       "monitors."},
      {},
      {"KSPGetResidualNorm", "KSPGetConvergedReason", "KSPMonitorSet"},
      0.58,
  });

  add(ApiSpec{
      "KSPGetResidualNorm",
      ApiKind::Function,
      ApiLevel::Intermediate,
      "Returns the last computed residual norm of the iteration.",
      "PetscErrorCode KSPGetResidualNorm(KSP ksp, PetscReal *rnorm);",
      {"The value is the norm the method itself tracks — by default the "
       "preconditioned residual norm for left-preconditioned methods like "
       "GMRES, and the true residual norm for right preconditioning. To "
       "compare solvers on equal footing, monitor the true residual with "
       "-ksp_monitor_true_residual or change the norm with "
       "KSPSetNormType."},
      {},
      {"KSPGetIterationNumber", "KSPSetNormType", "KSPMonitorSet"},
      0.45,
  });

  add(ApiSpec{
      "KSPMonitorSet",
      ApiKind::Function,
      ApiLevel::Intermediate,
      "Attaches a user callback invoked at every iteration with the current "
      "iteration number and residual norm.",
      "PetscErrorCode KSPMonitorSet(KSP ksp, PetscErrorCode (*monitor)(KSP, "
      "PetscInt, PetscReal, void*), void *ctx, PetscErrorCode "
      "(*destroy)(void**));",
      {"Monitors observe the iteration: the callback receives the KSP, the "
       "iteration number, and the residual norm tracked by the method. "
       "Multiple monitors may be attached; they run in the order set. The "
       "built-in monitors are available without code through the options "
       "database: -ksp_monitor (preconditioned norm), "
       "-ksp_monitor_true_residual (both preconditioned and true norms), "
       "and -ksp_monitor_singular_value.",
       "A monitor must not modify the solve state; to implement a custom "
       "stopping rule use KSPSetConvergenceTest instead."},
      {"-ksp_monitor : print the residual norm each iteration",
       "-ksp_monitor_true_residual : also print the true (unpreconditioned) "
       "residual norm",
       "-ksp_monitor_cancel : remove all hardwired monitors"},
      {"KSPSetConvergenceTest", "KSPGetResidualNorm"},
      0.52,
  });

  add(ApiSpec{
      "KSPSetConvergenceTest",
      ApiKind::Function,
      ApiLevel::Advanced,
      "Replaces the default convergence test with a user-defined stopping "
      "criterion.",
      "PetscErrorCode KSPSetConvergenceTest(KSP ksp, PetscErrorCode "
      "(*converge)(KSP, PetscInt, PetscReal, KSPConvergedReason*, void*), "
      "void *ctx, PetscErrorCode (*destroy)(void**));",
      {"The callback is invoked each iteration with the iteration number "
       "and residual norm and sets a KSPConvergedReason: zero to continue, "
       "positive to declare convergence, negative to abort as diverged. "
       "This is the supported way to stop the solve early on a custom "
       "criterion (e.g. an application energy norm or a wall-clock "
       "budget). The default test is KSPConvergedDefault, which applies "
       "the rtol/abstol/dtol logic of KSPSetTolerances.",
       "Monitors (KSPMonitorSet) observe but cannot stop the iteration; "
       "convergence tests decide."},
      {},
      {"KSPSetTolerances", "KSPMonitorSet", "KSPGetConvergedReason"},
      0.24,
  });

  add(ApiSpec{
      "KSPSetInitialGuessNonzero",
      ApiKind::Function,
      ApiLevel::Beginner,
      "Tells the solver to use the entries of the solution vector as the "
      "initial guess instead of zero.",
      "PetscErrorCode KSPSetInitialGuessNonzero(KSP ksp, PetscBool flg);",
      {"By default KSPSolve zeroes the solution vector and starts from "
       "x0 = 0. With KSPSetInitialGuessNonzero(ksp, PETSC_TRUE) — or "
       "-ksp_initial_guess_nonzero at runtime — the incoming contents of "
       "x are used as the starting point, which is valuable in "
       "time-stepping and nonlinear iterations where the previous solution "
       "is an excellent guess.",
       "KSPPREONLY ignores the initial guess entirely (it requires a zero "
       "guess)."},
      {"-ksp_initial_guess_nonzero <true,false> : use x's contents as the "
       "start"},
      {"KSPSolve", "KSPSetReusePreconditioner"},
      0.47,
  });

  add(ApiSpec{
      "KSPSetReusePreconditioner",
      ApiKind::Function,
      ApiLevel::Intermediate,
      "Keeps using the existing preconditioner even when the matrix "
      "changes.",
      "PetscErrorCode KSPSetReusePreconditioner(KSP ksp, PetscBool flag);",
      {"Normally a change to the operators triggers a preconditioner "
       "rebuild at the next KSPSolve. With reuse enabled (also "
       "-ksp_reuse_preconditioner) the old preconditioner is kept — a "
       "large saving when the matrix changes slowly (e.g. lagged Jacobians "
       "in Newton or quasi-static time stepping) and the stale "
       "preconditioner is still effective. Expect more Krylov iterations "
       "in exchange for skipping the setup cost.",
       "Re-enable rebuilding by calling the function with PETSC_FALSE."},
      {"-ksp_reuse_preconditioner <true,false>"},
      {"KSPSetOperators", "KSPSolve", "PCSetReusePreconditioner"},
      0.26,
  });

  add(ApiSpec{
      "KSPSetPCSide",
      ApiKind::Function,
      ApiLevel::Intermediate,
      "Chooses left, right, or symmetric application of the preconditioner.",
      "PetscErrorCode KSPSetPCSide(KSP ksp, PCSide side);",
      {"With left preconditioning the method iterates on B A x = B b and "
       "its residual norm is the preconditioned one; with right "
       "preconditioning it iterates on A B y = b (x = B y) and the norm "
       "is the true residual. GMRES defaults to left; FGMRES and GCR "
       "require right. Set at runtime with -ksp_pc_side left|right|"
       "symmetric. Right preconditioning is preferred when the stopping "
       "criterion should reflect the true residual.",
       "Not every combination is supported: each KSP type advertises the "
       "sides it implements."},
      {"-ksp_pc_side <left,right,symmetric>"},
      {"KSPSetNormType", "KSPGMRES", "KSPFGMRES"},
      0.30,
  });

  add(ApiSpec{
      "KSPSetNormType",
      ApiKind::Function,
      ApiLevel::Advanced,
      "Selects which norm the convergence test monitors: preconditioned, "
      "unpreconditioned, natural, or none.",
      "PetscErrorCode KSPSetNormType(KSP ksp, KSPNormType normtype);",
      {"KSP_NORM_PRECONDITIONED (GMRES's default with left "
       "preconditioning) tests ||B(b - Ax)||; KSP_NORM_UNPRECONDITIONED "
       "(-ksp_norm_type unpreconditioned) tests the true residual "
       "||b - Ax||; KSP_NORM_NATURAL applies to CG-like methods; "
       "KSP_NORM_NONE skips norm computation entirely, saving a reduction "
       "per iteration — useful for fixed-iteration smoothers.",
       "Changing the norm type can change which side of preconditioning "
       "is usable; the two settings interact (see KSPSetPCSide)."},
      {"-ksp_norm_type <preconditioned,unpreconditioned,natural,none>"},
      {"KSPSetPCSide", "KSPSetTolerances", "KSPMonitorSet"},
      0.22,
  });

  add(ApiSpec{
      "KSPGetPC",
      ApiKind::Function,
      ApiLevel::Beginner,
      "Returns the preconditioner (PC) context attached to a KSP.",
      "PetscErrorCode KSPGetPC(KSP ksp, PC *pc);",
      {"Every KSP owns a PC. KSPGetPC retrieves it so the application can "
       "call PCSetType and other PC routines directly: KSPGetPC(ksp,&pc); "
       "PCSetType(pc,PCJACOBI);. The PC is configured from the options "
       "database by the -pc_* options when KSPSetFromOptions runs."},
      {},
      {"PCSetType", "KSPSetFromOptions"},
      0.68,
  });

  add(ApiSpec{
      "PCSetType",
      ApiKind::Function,
      ApiLevel::Beginner,
      "Sets the preconditioner method (PCType), e.g. PCJACOBI or PCILU.",
      "PetscErrorCode PCSetType(PC pc, PCType type);",
      {"PCSetType chooses the preconditioning algorithm. As with the KSP "
       "type, the runtime route is more common: -pc_type jacobi|ilu|lu|"
       "gamg|... applied by KSPSetFromOptions / PCSetFromOptions. The "
       "default PC is PCILU for one process and PCBJACOBI (with ILU(0) "
       "inside each block) for parallel runs."},
      {"-pc_type <type> : set the preconditioner from the options database"},
      {"KSPGetPC", "PCJACOBI", "PCILU", "PCBJACOBI"},
      0.84,
  });

  add(ApiSpec{
      "MatSetNullSpace",
      ApiKind::Function,
      ApiLevel::Advanced,
      "Attaches the null space of a singular matrix so Krylov methods can "
      "solve the consistent singular system.",
      "PetscErrorCode MatSetNullSpace(Mat mat, MatNullSpace nullsp);",
      {"Singular but consistent systems — the pressure Poisson equation "
       "with pure Neumann boundary conditions is the canonical example, "
       "whose null space is the constant vector — are handled by creating "
       "a MatNullSpace (MatNullSpaceCreate, often with the has_cnst flag) "
       "and attaching it with MatSetNullSpace. The KSP then projects the "
       "null space out of the residual each iteration, keeping the "
       "iterates in the orthogonal complement where the solution is "
       "unique.",
       "Direct factorizations (PCLU) will still fail on a singular "
       "matrix; use an iterative method, or pin a degree of freedom. Use "
       "MatSetTransposeNullSpace when the right-hand side must be "
       "projected for consistency."},
      {},
      {"MatNullSpaceCreate", "KSPSolve", "PCGAMG"},
      0.20,
  });

  add(ApiSpec{
      "MatSetNearNullSpace",
      ApiKind::Function,
      ApiLevel::Advanced,
      "Attaches the near-null space (e.g. rigid body modes) used by "
      "algebraic multigrid to build good coarse spaces.",
      "PetscErrorCode MatSetNearNullSpace(Mat mat, MatNullSpace nullsp);",
      {"Algebraic multigrid (PCGAMG) interpolates well only if the coarse "
       "spaces capture the low-energy modes of the operator. For "
       "elasticity these are the rigid body modes; construct them with "
       "MatNullSpaceCreateRigidBody from the nodal coordinates and attach "
       "with MatSetNearNullSpace before PCSetUp."},
      {},
      {"PCGAMG", "MatSetNullSpace", "MatNullSpaceCreateRigidBody"},
      0.12,
  });

  add(ApiSpec{
      "MatCreate",
      ApiKind::Function,
      ApiLevel::Beginner,
      "Creates an empty matrix object whose type and sizes are set later.",
      "PetscErrorCode MatCreate(MPI_Comm comm, Mat *A);",
      {"MatCreate is the generic constructor: follow with MatSetSizes, "
       "MatSetType (or MatSetFromOptions), preallocation, MatSetValues "
       "calls, and the MatAssemblyBegin/MatAssemblyEnd pair. The default "
       "type is MATAIJ (compressed sparse row), sequential or MPI "
       "depending on the communicator size."},
      {},
      {"MatSetValues", "MatAssemblyBegin", "MatAssemblyEnd", "MATAIJ"},
      0.83,
  });

  add(ApiSpec{
      "MatSetValues",
      ApiKind::Function,
      ApiLevel::Beginner,
      "Inserts or adds a logically dense block of values into a matrix.",
      "PetscErrorCode MatSetValues(Mat mat, PetscInt m, const PetscInt "
      "idxm[], PetscInt n, const PetscInt idxn[], const PetscScalar v[], "
      "InsertMode addv);",
      {"Values are cached and become usable only after the matrix is "
       "assembled with MatAssemblyBegin/MatAssemblyEnd. INSERT_VALUES and "
       "ADD_VALUES modes cannot be mixed without an intervening assembly. "
       "Performance depends critically on correct preallocation: without "
       "it every insertion that outgrows the allocated nonzeros triggers "
       "an expensive reallocation and copy.",
       "Check preallocation success at runtime with the -info option, "
       "which reports how many mallocs occurred during assembly; the goal "
       "is zero."},
      {"-info : print informative output including preallocation "
       "diagnostics",
       "-mat_view ::ascii_info : summary of matrix data"},
      {"MatAssemblyBegin", "MatAssemblyEnd", "MatXAIJSetPreallocation"},
      0.76,
  });

  add(ApiSpec{
      "MatAssemblyBegin",
      ApiKind::Function,
      ApiLevel::Beginner,
      "Begins assembling the matrix; with MatAssemblyEnd it migrates and "
      "finalizes all cached MatSetValues entries.",
      "PetscErrorCode MatAssemblyBegin(Mat mat, MatAssemblyType type);",
      {"Assembly moves off-process values to their owners and builds the "
       "final storage. Use MAT_FINAL_ASSEMBLY before using the matrix and "
       "MAT_FLUSH_ASSEMBLY between switching insert/add modes. The "
       "begin/end split lets applications overlap computation with the "
       "communication."},
      {},
      {"MatAssemblyEnd", "MatSetValues"},
      0.62,
  });

  add(ApiSpec{
      "MatMult",
      ApiKind::Function,
      ApiLevel::Beginner,
      "Computes the matrix-vector product y = A x.",
      "PetscErrorCode MatMult(Mat mat, Vec x, Vec y);",
      {"The workhorse of every Krylov iteration. x and y must be distinct "
       "vectors. For matrix-free operators, provide a MATSHELL whose "
       "MatMult callback applies the action of the operator; every KSP "
       "only ever needs the action, never the entries — though most "
       "preconditioners do need entries (see KSPSetOperators's Amat/Pmat "
       "distinction)."},
      {},
      {"MatMultTranspose", "MATSHELL", "KSPSetOperators"},
      0.74,
  });

  add(ApiSpec{
      "VecCreate",
      ApiKind::Function,
      ApiLevel::Beginner,
      "Creates an empty vector object whose type and size are set later.",
      "PetscErrorCode VecCreate(MPI_Comm comm, Vec *vec);",
      {"Follow with VecSetSizes and VecSetType (or VecSetFromOptions); or "
       "use the convenience creators VecCreateSeq / VecCreateMPI. Vectors "
       "obtained from a matrix with MatCreateVecs are guaranteed layout-"
       "compatible with that matrix — the recommended way to get solution "
       "and right-hand-side vectors for KSPSolve."},
      {},
      {"VecSet", "VecAXPY", "MatCreateVecs"},
      0.79,
  });

  add(ApiSpec{
      "VecSet",
      ApiKind::Function,
      ApiLevel::Beginner,
      "Sets every entry of a vector to a single scalar value.",
      "PetscErrorCode VecSet(Vec x, PetscScalar alpha);",
      {"VecSet(x, 0.0) is the idiomatic zeroing call. It may not be used "
       "on a vector that has unassembled VecSetValues insertions "
       "pending."},
      {},
      {"VecSetValues", "VecAXPY"},
      0.61,
  });

  add(ApiSpec{
      "VecAXPY",
      ApiKind::Function,
      ApiLevel::Beginner,
      "Computes y = alpha x + y.",
      "PetscErrorCode VecAXPY(Vec y, PetscScalar alpha, Vec x);",
      {"The BLAS-1 update at the heart of Krylov recurrences. The vectors "
       "must have identical layouts; x and y must differ. Related "
       "variants: VecAYPX (y = x + alpha y), VecWAXPY (w = alpha x + y), "
       "and VecMAXPY for multiple simultaneous updates."},
      {},
      {"VecAYPX", "VecWAXPY", "VecNorm"},
      0.57,
  });

  add(ApiSpec{
      "VecNorm",
      ApiKind::Function,
      ApiLevel::Beginner,
      "Computes a vector norm (NORM_2, NORM_1, or NORM_INFINITY).",
      "PetscErrorCode VecNorm(Vec x, NormType type, PetscReal *val);",
      {"In parallel, VecNorm requires a global reduction "
       "(MPI_Allreduce), which is why norm and inner-product counts are "
       "the communication bottleneck of Krylov methods at scale — the "
       "motivation for pipelined variants like KSPPIPECG and for "
       "KSP_NORM_NONE smoothers."},
      {},
      {"VecDot", "KSPSetNormType"},
      0.54,
  });

  add(ApiSpec{
      "PetscInitialize",
      ApiKind::Function,
      ApiLevel::Beginner,
      "Initializes PETSc, MPI (if not already initialized), and the options "
      "database; must be the first PETSc call.",
      "PetscErrorCode PetscInitialize(int *argc, char ***args, const char "
      "file[], const char help[]);",
      {"PetscInitialize parses the command line into the options database "
       "(making every -ksp_*, -pc_*, -info, -log_view option available), "
       "optionally reads an options file, and sets up error handling. "
       "Pair with PetscFinalize, after which no PETSc routine may be "
       "called. Programs that already initialized MPI keep ownership of "
       "it."},
      {"-options_file <file> : read options from a file",
       "-help : list available options for each object as it is configured"},
      {"PetscFinalize", "KSPSetFromOptions"},
      0.81,
  });

  add(ApiSpec{
      "PetscFinalize",
      ApiKind::Function,
      ApiLevel::Beginner,
      "Finalizes PETSc: frees internal state, prints requested summaries, "
      "and finalizes MPI if PETSc initialized it.",
      "PetscErrorCode PetscFinalize(void);",
      {"PetscFinalize emits the outputs requested by options such as "
       "-log_view (performance summary) and -options_left (options that "
       "were set but never queried — the standard way to catch misspelled "
       "option names). Destroy all PETSc objects before calling it, or "
       "enable -objects_dump to list leaked objects."},
      {"-options_left : warn about unused options at exit",
       "-log_view : print the performance log at exit"},
      {"PetscInitialize"},
      0.73,
  });

  return specs;
}

}  // namespace pkb::corpus::detail
