#pragma once
// Structured specifications of PETSc APIs, solver types, and runtime options.
//
// This table is the ground truth behind the whole reproduction:
//  * the corpus generator renders each spec into a Markdown manual page
//    (the "official knowledge base" of the paper),
//  * the simulated LLM's parametric memory is a popularity-weighted, noisy
//    subset of these specs (what a general-purpose model would have absorbed
//    from public PETSc material during pretraining),
//  * the keyword-search augmentation (§III-C) maps query symbols to these
//    manual pages,
//  * the evaluation rubric checks answers against spec facts.
//
// The content is real public PETSc knowledge (solver semantics, defaults,
// option names), curated by hand; see DESIGN.md §1 for the substitution
// rationale.

#include <string>
#include <string_view>
#include <vector>

namespace pkb::corpus {

/// What kind of entity a spec describes.
enum class ApiKind {
  SolverType,  ///< a KSPType like KSPGMRES
  PcType,      ///< a PCType like PCJACOBI
  Function,    ///< a C API function like KSPSolve
  Option,      ///< a runtime option like -ksp_monitor
  Concept,     ///< a manual concept page (norm types, preconditioning sides)
};

/// Documentation maturity level used by real PETSc manual pages.
enum class ApiLevel { Beginner, Intermediate, Advanced, Developer };

/// One knowledge-base entity.
struct ApiSpec {
  std::string name;      ///< canonical symbol, e.g. "KSPLSQR"
  ApiKind kind = ApiKind::Function;
  ApiLevel level = ApiLevel::Beginner;
  std::string summary;   ///< one-line description (manual page "brief")
  std::string synopsis;  ///< C prototype or usage line; may be empty
  /// Body paragraphs of the manual page ("Notes" section). The first
  /// paragraph carries the decisive facts for evaluation.
  std::vector<std::string> notes;
  /// Related runtime options ("Options Database Keys" section).
  std::vector<std::string> options;
  /// Cross references ("See Also" section).
  std::vector<std::string> see_also;
  /// Pretraining-exposure proxy in [0,1]: how much public discussion of this
  /// entity a mainstream LLM plausibly saw. Drives the baseline arm's
  /// parametric-memory fidelity.
  double popularity = 0.5;
};

/// The full built-in spec table (stable order). Built once, immutable.
[[nodiscard]] const std::vector<ApiSpec>& api_table();

/// Look up a spec by exact symbol name; nullptr when unknown.
[[nodiscard]] const ApiSpec* find_spec(std::string_view name);

/// Case-insensitive / fuzzy lookup (edit distance <= 2 on lowercase forms),
/// used to resolve user typos like "KSPGmres"; nullptr when nothing close.
[[nodiscard]] const ApiSpec* find_spec_fuzzy(std::string_view name);

/// True if `symbol` names a real entity: a spec, a see-also/option reference,
/// or any API-shaped symbol that occurs anywhere in the generated knowledge
/// base (the ground-truth universe). The rubric scorer uses this to detect
/// hallucinated symbols (e.g. "KSPBurb"): a symbol the knowledge base has
/// never seen is, by construction, invented.
[[nodiscard]] bool is_known_symbol(std::string_view symbol);

/// Manual-page path for a spec, e.g. "manualpages/KSP/KSPLSQR.md".
[[nodiscard]] std::string manual_page_path(const ApiSpec& spec);

/// Human-readable names for enums (used in rendered pages and logs).
[[nodiscard]] std::string_view to_string(ApiKind kind);
[[nodiscard]] std::string_view to_string(ApiLevel level);

}  // namespace pkb::corpus
