#include "corpus/questions.h"

namespace pkb::corpus {

namespace {

std::vector<BenchmarkQuestion> build_benchmark() {
  std::vector<BenchmarkQuestion> qs;
  auto add = [&qs](BenchmarkQuestion q) {
    q.id = static_cast<int>(qs.size()) + 1;
    qs.push_back(std::move(q));
  };

  add({0,
       "Which Krylov method should I use when my matrix is symmetric "
       "positive definite?",
       {"KSPCG"},
       {"symmetric positive definite", "short recurrences"},
       "KSPCG",
       0.90});

  add({0,
       "Can I use KSP to solve a system where the matrix is not square, "
       "only rectangular? Must it be invertible too or does that depend on "
       "how you're using KSP?",
       {"KSPLSQR"},
       {"least squares", "rectangular"},
       "KSPLSQR",
       0.18});

  add({0,
       "Is there a runtime option that reports whether my matrix "
       "preallocation was sufficient during assembly?",
       {"-info"},
       {"malloc", "preallocation"},
       "-info",
       0.22});

  add({0,
       "What is the default restart length of GMRES in PETSc and why does "
       "restarting matter?",
       {"30"},
       {"-ksp_gmres_restart", "memory"},
       "KSPGMRES",
       0.88});

  add({0,
       "How do I change the GMRES restart parameter?",
       {"-ksp_gmres_restart"},
       {"KSPGMRESSetRestart"},
       "-ksp_gmres_restart",
       0.60});

  add({0,
       "How do I set the relative convergence tolerance of the linear "
       "solve, and what is its default value?",
       {"KSPSetTolerances|-ksp_rtol"},
       {"1e-5"},
       "KSPSetTolerances",
       0.72});

  add({0,
       "My linear solve stops after thousands of iterations without "
       "converging. How do I find out why the iteration stopped?",
       {"converged_reason"},
       {"KSP_DIVERGED_ITS|DIVERGED_ITS"},
       "KSPGetConvergedReason",
       0.55});

  add({0,
       "How can I print the residual norm at every iteration of the "
       "solver?",
       {"-ksp_monitor"},
       {"preconditioned"},
       "-ksp_monitor",
       0.68});

  add({0,
       "What is the difference between -ksp_monitor and "
       "-ksp_monitor_true_residual, and which one should I trust?",
       {"true residual"},
       {"matrix-vector product|extra cost|adding the cost"},
       "-ksp_monitor_true_residual",
       0.35});

  add({0,
       "My matrix is symmetric but it has both positive and negative "
       "eigenvalues. CG blows up. What solver is appropriate?",
       {"KSPMINRES"},
       {"indefinite", "positive definite"},
       "KSPMINRES",
       0.25});

  add({0,
       "I am solving a large nonsymmetric system and restarted GMRES uses "
       "too much memory. What is a good alternative with constant memory "
       "per iteration?",
       {"KSPBCGS|BiCGStab"},
       {"short recurrences|constant memory|does not grow"},
       "KSPBCGS",
       0.55});

  add({0,
       "My preconditioner is itself an iterative solve, so its action "
       "changes every outer iteration. Which Krylov methods tolerate "
       "that?",
       {"KSPFGMRES"},
       {"right preconditioning", "KSPGCR"},
       "KSPFGMRES",
       0.35});

  add({0,
       "How do I use PETSc's KSP interface to do a direct solve with LU "
       "factorization instead of iterating?",
       {"preonly"},
       {"-pc_type lu|PCLU"},
       "KSPPREONLY",
       0.58});

  add({0,
       "In my time-stepping code the previous solution is a great starting "
       "point. How do I make KSPSolve use it instead of starting from "
       "zero?",
       {"KSPSetInitialGuessNonzero|initial_guess_nonzero"},
       {"starts from|zeroes|zero initial guess"},
       "KSPSetInitialGuessNonzero",
       0.42});

  add({0,
       "After KSPSolve finishes, how do I find out how many iterations it "
       "took?",
       {"KSPGetIterationNumber"},
       {"-ksp_converged_reason|monitor"},
       "KSPGetIterationNumber",
       0.52});

  add({0,
       "How can I switch between different Krylov solvers from the command "
       "line without recompiling my application?",
       {"-ksp_type"},
       {"KSPSetFromOptions"},
       "-ksp_type",
       0.75});

  add({0,
       "KSPSetOperators takes two matrices, Amat and Pmat. What is the "
       "difference and when would I pass different matrices?",
       {"preconditioner"},
       {"MATSHELL|matrix-free"},
       "KSPSetOperators",
       0.40});

  add({0,
       "How do I see exactly which solver, tolerances, and preconditioner "
       "my run actually used, including the inner sub-solvers?",
       {"-ksp_view"},
       {"sub-solver|nested|inner"},
       "-ksp_view",
       0.50});

  add({0,
       "What is the difference between left and right preconditioning in "
       "KSP and how do I switch sides?",
       {"pc_side"},
       {"true residual", "preconditioned"},
       "KSPSetPCSide",
       0.32});

  add({0,
       "Which residual norm does GMRES minimize and report by default — "
       "the true one or something else?",
       {"preconditioned residual"},
       {"left", "KSPSetNormType|-ksp_norm_type|-ksp_pc_side right"},
       "KSPGMRES",
       0.30});

  add({0,
       "I need to solve the same linear system with two hundred different "
       "right-hand sides. Solving them one by one is slow. Is there a "
       "better way?",
       {"KSPMatSolve"},
       {"columns", "reuse"},
       "KSPMatSolve",
       0.12});

  add({0,
       "My matrix changes only slightly at each Newton step. Can I keep "
       "the old preconditioner instead of rebuilding it every solve?",
       {"KSPSetReusePreconditioner|reuse_preconditioner"},
       {"iterations|rebuild"},
       "KSPSetReusePreconditioner",
       0.20});

  add({0,
       "What damping factor does the Richardson iteration use by default "
       "in PETSc, and how do I change it?",
       {"1.0"},
       {"-ksp_richardson_scale|KSPRichardsonSetScale"},
       "KSPRICHARDSON",
       0.35});

  add({0,
       "When is the Chebyshev method a good choice, and what extra "
       "information does it need from me?",
       {"eigenvalue"},
       {"smoother", "multigrid|reduction-free|no inner products"},
       "KSPCHEBYSHEV",
       0.28});

  add({0,
       "Is there a KSP that applies conjugate gradient to the normal "
       "equations, and what is the catch?",
       {"KSPCGNE"},
       {"condition number", "KSPLSQR"},
       "KSPCGNE",
       0.10});

  add({0,
       "If I don't choose anything, which Krylov method and which "
       "preconditioner does PETSc use by default?",
       {"GMRES", "ILU"},
       {"block Jacobi|PCBJACOBI|bjacobi"},
       "KSP",
       0.70});

  add({0,
       "I want to stop the linear solve early based on my own error "
       "estimator rather than the residual norm. What is the supported "
       "way?",
       {"KSPSetConvergenceTest"},
       {"KSPConvergedReason|reason"},
       "KSPSetConvergenceTest",
       0.18});

  add({0,
       "How do I attach my own callback that gets called with the residual "
       "norm at every iteration from code, not the command line?",
       {"KSPMonitorSet"},
       {"iteration number|residual norm"},
       "KSPMonitorSet",
       0.33});

  add({0,
       "Can I use KSPCG when my matrix is nonsymmetric or only "
       "approximately symmetric?",
       {"KSPGMRES|KSPBCGS"},
       {"requires a symmetric|requires symmetric|break down"},
       "KSPCG",
       0.48});

  add({0,
       "What does -ksp_norm_type unpreconditioned actually change about "
       "the solve?",
       {"true residual"},
       {"KSPSetNormType", "extra|cost"},
       "-ksp_norm_type",
       0.15});

  add({0,
       "I think I misspelled one of my solver options and it silently did "
       "nothing. How do I detect that?",
       {"-options_left"},
       {"PetscFinalize|exit"},
       "-options_left",
       0.38});

  add({0,
       "What does the ell parameter of BiCGStab(ell) control and what is "
       "its default?",
       {"2"},
       {"-ksp_bcgsl_ell|KSPBCGSLSetEll", "robust"},
       "KSPBCGSL",
       0.10});

  add({0,
       "I am solving a pure Neumann pressure Poisson problem, so my matrix "
       "is singular with the constant null space. How do I make the Krylov "
       "solver handle this?",
       {"MatSetNullSpace"},
       {"MatNullSpaceCreate|constant", "project"},
       "MatSetNullSpace",
       0.24});

  add({0,
       "How do I get a performance summary showing where the time goes in "
       "my run — per event, matrix products, preconditioner applications, "
       "reductions?",
       {"-log_view"},
       {"PetscFinalize|event|stage"},
       "-log_view",
       0.45});

  add({0,
       "BiCGStab's residual history is very erratic on my problem. Is "
       "there a transpose-free method with smoother convergence?",
       {"KSPTFQMR"},
       {"quasi-minimiz|smoother"},
       "KSPTFQMR",
       0.14});

  add({0,
       "Both GCR and FGMRES are described as flexible methods. How do I "
       "choose between them?",
       {"right preconditioning|variable preconditioning|flexible"},
       {"solution and residual|every iteration"},
       "KSPGCR",
       0.12});

  add({0,
       "How do I put a hard cap on the number of Krylov iterations, and "
       "what happens when the cap is hit?",
       {"-ksp_max_it|KSPSetTolerances"},
       {"KSP_DIVERGED_ITS|DIVERGED_ITS", "10000"},
       "-ksp_max_it",
       0.50});

  return qs;
}

}  // namespace

const std::vector<BenchmarkQuestion>& krylov_benchmark() {
  static const std::vector<BenchmarkQuestion> qs = build_benchmark();
  return qs;
}

const BenchmarkQuestion& kspburb_question() {
  static const BenchmarkQuestion q = {
      100,
      "What does KSPBurb do?",
      {"no PETSc function|no such|not a PETSc|does not exist|there is no"},
      {"KSP"},
      "KSPBurb",
      0.0};
  return q;
}

}  // namespace pkb::corpus
