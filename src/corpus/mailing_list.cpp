#include "corpus/mailing_list.h"

#include <array>

#include "corpus/api_spec.h"
#include "util/rng.h"
#include "util/strings.h"

namespace pkb::corpus {

namespace {

using pkb::util::Rng;

constexpr std::array<std::string_view, 6> kUserNames = {
    "grad.student@univ.edu",   "postdoc@lab.gov",
    "engineer@company.com",    "researcher@institute.org",
    "phd.candidate@tech.edu",  "scientist@center.ac.uk",
};

constexpr std::array<std::string_view, 5> kDevNames = {
    "barry@petsc.dev", "jed@petsc.dev", "hong@petsc.dev",
    "lois@petsc.dev", "satish@petsc.dev",
};

constexpr std::array<std::string_view, 5> kAskTemplates = {
    "Hi all, I am struggling with %s in my application. The documentation "
    "mentions it but I am not sure when it applies. Any advice?",
    "Hello PETSc team, quick question about %s - is this the right tool "
    "for my problem, and what are the pitfalls?",
    "Dear list, my solver behaves strangely and a colleague suggested "
    "looking at %s. Could someone explain what it actually does?",
    "Hi, newcomer here. I read about %s but the terminology is unfamiliar "
    "to me (my background is in engineering, not numerical analysis).",
    "Hello, does anyone have experience with %s on large problems? I am "
    "seeing behavior I do not understand.",
};

constexpr std::array<std::string_view, 4> kFollowUpTemplates = {
    "Thanks! That helps. One follow-up: how does this interact with the "
    "preconditioner choice?",
    "Appreciated. Is there a runtime option so I can experiment without "
    "recompiling?",
    "Thank you. What should I look at if it still does not converge after "
    "this change?",
    "Great, that worked. For the archives: the key insight for me was the "
    "default behavior described below.",
};

std::string render_thread(const ApiSpec& spec, std::size_t index, Rng& rng) {
  const std::string_view user = kUserNames[rng.below(kUserNames.size())];
  const std::string_view dev = kDevNames[rng.below(kDevNames.size())];

  std::string subject =
      "[petsc-users] " +
      std::string(rng.chance(0.5) ? "question about " : "help with ") +
      spec.name;

  std::string md = "# " + subject + "\n\n";
  md += "Thread " + std::to_string(index) + " from the petsc-users archive.\n\n";

  // User question.
  const std::string ask = pkb::util::replace_all(
      std::string(kAskTemplates[rng.below(kAskTemplates.size())]), "%s",
      spec.name);
  md += "## From: " + std::string(user) + "\n\n" + ask + "\n\n";

  // Developer answer: summary + one or two notes, informally framed.
  md += "## From: " + std::string(dev) + "\n\n";
  md += spec.summary;
  md += " ";
  if (!spec.notes.empty()) {
    md += spec.notes[rng.below(std::min<std::size_t>(spec.notes.size(), 2))];
  }
  if (!spec.options.empty() && rng.chance(0.7)) {
    md += " From the command line: " + spec.options.front() + ".";
  }
  md += "\n\n";

  // Optional follow-up round.
  if (rng.chance(0.5)) {
    md += "## From: " + std::string(user) + "\n\n" +
          std::string(kFollowUpTemplates[rng.below(kFollowUpTemplates.size())]) +
          "\n\n";
    md += "## From: " + std::string(dev) + "\n\n";
    if (spec.notes.size() > 1) {
      md += spec.notes.back();
    } else if (!spec.see_also.empty()) {
      md += "See also " + spec.see_also.front() +
            ", which is usually the next thing to look at.";
    } else {
      md += "Run with -ksp_view and -ksp_converged_reason and post the "
            "output if it still misbehaves.";
    }
    md += "\n\n";
  }
  return md;
}

}  // namespace

text::VirtualDir generate_mailing_list_archive(const ArchiveOptions& opts) {
  text::VirtualDir tree;
  const auto& table = api_table();
  Rng rng(opts.seed);
  // Popular entities draw more list traffic, mirroring the real archive.
  std::vector<std::size_t> weighted;
  for (std::size_t i = 0; i < table.size(); ++i) {
    const auto copies =
        static_cast<std::size_t>(1.0 + table[i].popularity * 4.0);
    for (std::size_t c = 0; c < copies; ++c) weighted.push_back(i);
  }
  for (std::size_t t = 0; t < opts.threads; ++t) {
    const ApiSpec& spec =
        table[weighted[rng.below(weighted.size())]];
    tree.push_back(text::VirtualFile{
        "archives/petsc-users/thread-" + std::to_string(t) + ".md",
        render_thread(spec, t, rng)});
  }
  return tree;
}

}  // namespace pkb::corpus
