// KSP (Krylov subspace solver) type specifications.
//
// Content reflects real public PETSc semantics: algorithm family, matrix
// requirements, defaults, and characteristic options. The first note
// paragraph of each spec carries the decisive facts used by the evaluation
// rubric.
#include "corpus/api_table_detail.h"

namespace pkb::corpus::detail {

std::vector<ApiSpec> ksp_type_specs() {
  std::vector<ApiSpec> specs;
  auto add = [&specs](ApiSpec spec) { specs.push_back(std::move(spec)); };

  add(ApiSpec{
      "KSPGMRES",
      ApiKind::SolverType,
      ApiLevel::Beginner,
      "Implements the Generalized Minimal RESidual (GMRES) method for "
      "solving linear systems with a square, possibly nonsymmetric matrix.",
      "KSPSetType(ksp, KSPGMRES);",
      {"GMRES builds an orthogonal basis of the Krylov subspace using "
       "modified Gram-Schmidt orthogonalization and minimizes the "
       "preconditioned residual norm over that subspace. It is the default "
       "KSP type in PETSc. The method restarts every 30 iterations by "
       "default to bound memory; the restart length can be changed with "
       "-ksp_gmres_restart or KSPGMRESSetRestart().",
       "Each iteration stores one additional basis vector, so memory grows "
       "linearly with the restart length. A restart that is too small can "
       "stagnate convergence; a restart that is too large costs memory and "
       "orthogonalization time.",
       "GMRES works for any nonsingular square matrix and is the most robust "
       "general-purpose choice when the matrix is nonsymmetric. By default "
       "it uses left preconditioning and minimizes the preconditioned "
       "residual norm; use KSPSetPCSide() or -ksp_pc_side right for right "
       "preconditioning, which minimizes the true residual norm."},
      {"-ksp_gmres_restart <n> : restart length (default 30)",
       "-ksp_gmres_cgs_refinement_type <never,ifneeded,always> : classical "
       "Gram-Schmidt refinement",
       "-ksp_gmres_preallocate : preallocate all Krylov vectors up front"},
      {"KSPFGMRES", "KSPLGMRES", "KSPBCGS", "KSPSetPCSide",
       "KSPGMRESSetRestart"},
      0.95,
  });

  add(ApiSpec{
      "KSPCG",
      ApiKind::SolverType,
      ApiLevel::Beginner,
      "Implements the Preconditioned Conjugate Gradient (PCG) method, the "
      "Krylov method of choice for symmetric positive definite (SPD) "
      "matrices.",
      "KSPSetType(ksp, KSPCG);",
      {"The conjugate gradient method requires a symmetric (Hermitian in the "
       "complex case) positive definite matrix and a symmetric positive "
       "definite preconditioner. For symmetric positive definite systems it "
       "converges in exact arithmetic in at most n steps and uses only "
       "short recurrences, so memory per iteration is constant.",
       "If the matrix is only symmetric but indefinite, CG can break down; "
       "use KSPMINRES or KSPSYMMLQ instead. If the matrix is nonsymmetric, "
       "use KSPGMRES or KSPBCGS.",
       "Use KSPCGSetType(ksp, KSP_CG_SYMMETRIC) (the default) for symmetric "
       "matrices and KSP_CG_HERMITIAN for complex Hermitian matrices. The "
       "option -ksp_cg_single_reduction merges the two inner products per "
       "iteration into one reduction to reduce communication latency."},
      {"-ksp_cg_type <symmetric,hermitian> : matrix symmetry variant",
       "-ksp_cg_single_reduction : combine the two inner products into one "
       "MPI reduction"},
      {"KSPMINRES", "KSPSYMMLQ", "KSPPIPECG", "KSPCGNE"},
      0.93,
  });

  add(ApiSpec{
      "KSPLSQR",
      ApiKind::SolverType,
      ApiLevel::Intermediate,
      "Implements the LSQR method for solving least squares problems; the "
      "pivotal KSP solver for rectangular (non-square) matrices.",
      "KSPSetType(ksp, KSPLSQR);",
      {"KSPLSQR does not require the matrix to be square: the matrix may be "
       "rectangular, arising from overdetermined or underdetermined least "
       "squares problems min ||b - A x||_2. It is algebraically equivalent "
       "to applying conjugate gradient to the normal equations A^T A x = "
       "A^T b, but is numerically more stable because it never forms A^T A "
       "explicitly.",
       "The preconditioner must be designed for the normal-equations "
       "operator; by default the preconditioner is applied to A^T A "
       "implicitly. With no preconditioner (-pc_type none) LSQR reduces to "
       "the classical Golub-Kahan bidiagonalization algorithm.",
       "The matrix need not be invertible in the usual sense: for "
       "rank-deficient problems LSQR converges to the minimum-norm least "
       "squares solution. Monitor the normal-equation residual with "
       "-ksp_lsqr_monitor."},
      {"-ksp_lsqr_set_standard_error : compute standard error estimates",
       "-ksp_lsqr_monitor : monitor the residual of the normal equations",
       "-ksp_lsqr_exact_mat_norm : use the exact matrix norm in stopping "
       "tests"},
      {"KSPCGNE", "KSPCGLS", "MatCreateNormal", "KSPSolve"},
      0.22,
  });

  add(ApiSpec{
      "KSPFGMRES",
      ApiKind::SolverType,
      ApiLevel::Intermediate,
      "Implements Flexible GMRES (FGMRES), which tolerates a preconditioner "
      "that changes from iteration to iteration.",
      "KSPSetType(ksp, KSPFGMRES);",
      {"FGMRES allows the preconditioner to vary at each iteration, for "
       "example when the preconditioner is itself an iterative solve (an "
       "inner KSP inside PCKSP, or a multigrid cycle whose smoothers adapt). "
       "It always uses right preconditioning and therefore minimizes the "
       "true residual norm.",
       "FGMRES stores two sets of basis vectors, so it needs twice the "
       "memory of GMRES for the same restart length (default restart 30).",
       "If the preconditioner is a fixed linear operator, plain KSPGMRES is "
       "cheaper. KSPGCR is an alternative flexible method that also permits "
       "variable preconditioning with right preconditioning."},
      {"-ksp_gmres_restart <n> : restart length (shared with GMRES, default "
       "30)"},
      {"KSPGMRES", "KSPGCR", "PCKSP"},
      0.45,
  });

  add(ApiSpec{
      "KSPBCGS",
      ApiKind::SolverType,
      ApiLevel::Beginner,
      "Implements the stabilized BiConjugate Gradient (BiCGStab) method for "
      "nonsymmetric systems with constant memory per iteration.",
      "KSPSetType(ksp, KSPBCGS);",
      {"BiCGStab uses short recurrences, so unlike restarted GMRES its "
       "memory use does not grow with the iteration count — a good choice "
       "for nonsymmetric systems when memory is limited. Convergence can be "
       "more erratic than GMRES and the method can break down, in which "
       "case KSPBCGSL (with its ell parameter) adds robustness.",
       "Each iteration requires two matrix-vector products and two "
       "preconditioner applications, versus one of each for GMRES, so "
       "per-iteration cost is roughly double.",
       "Variants include KSPIBCGS (improved stabilized version with fewer "
       "synchronizations) and KSPFBCGS (flexible variant)."},
      {"-ksp_type bcgs : select this solver at runtime"},
      {"KSPBCGSL", "KSPIBCGS", "KSPFBCGS", "KSPCGS", "KSPTFQMR"},
      0.72,
  });

  add(ApiSpec{
      "KSPBCGSL",
      ApiKind::SolverType,
      ApiLevel::Advanced,
      "Implements BiCGStab(ell), a variant of BiCGStab with an ell-"
      "dimensional minimization step for improved robustness.",
      "KSPSetType(ksp, KSPBCGSL);",
      {"BiCGStab(ell) generalizes BiCGStab by performing a minimal residual "
       "step over an ell-dimensional subspace every cycle; the default ell "
       "is 2 and it can be changed with -ksp_bcgsl_ell or KSPBCGSLSetEll(). "
       "Larger ell improves robustness on matrices with complex eigenvalue "
       "spectra at the cost of more work per cycle.",
       "BiCGStab(1) is equivalent to ordinary BiCGStab. Values of ell above "
       "4 rarely pay off."},
      {"-ksp_bcgsl_ell <ell> : subspace dimension (default 2)",
       "-ksp_bcgsl_cxpoly : use enhanced polynomial convergence"},
      {"KSPBCGS", "KSPIBCGS"},
      0.18,
  });

  add(ApiSpec{
      "KSPRICHARDSON",
      ApiKind::SolverType,
      ApiLevel::Beginner,
      "Implements the preconditioned Richardson iteration x^{k+1} = x^k + "
      "scale * B (b - A x^k).",
      "KSPSetType(ksp, KSPRICHARDSON);",
      {"Richardson is the simplest iteration: apply the preconditioner to "
       "the residual and add a damped correction. The damping factor "
       "(scale) defaults to 1.0 and is set with KSPRichardsonSetScale() or "
       "-ksp_richardson_scale. With -ksp_richardson_self_scale the scale is "
       "computed automatically each iteration.",
       "Richardson with a strong preconditioner (for example multigrid) is "
       "a common outer iteration; with scale 1.0 and one iteration it "
       "reduces to applying the preconditioner once. It is also the "
       "standard smoother wrapper inside PCMG."},
      {"-ksp_richardson_scale <scale> : damping factor (default 1.0)",
       "-ksp_richardson_self_scale : dynamically compute the optimal scale"},
      {"KSPCHEBYSHEV", "KSPPREONLY", "PCMG"},
      0.40,
  });

  add(ApiSpec{
      "KSPCHEBYSHEV",
      ApiKind::SolverType,
      ApiLevel::Intermediate,
      "Implements the Chebyshev semi-iterative method, which needs estimates "
      "of the extreme eigenvalues of the preconditioned operator.",
      "KSPSetType(ksp, KSPCHEBYSHEV);",
      {"Chebyshev iteration requires bounds on the spectrum of the "
       "preconditioned matrix, supplied with KSPChebyshevSetEigenvalues() "
       "or estimated automatically via -ksp_chebyshev_esteig, which runs a "
       "few GMRES iterations to estimate the extreme eigenvalues. Because "
       "it uses no inner products, every iteration is reduction-free, which "
       "is why it is the preferred smoother inside multigrid (PCMG, PCGAMG) "
       "on parallel machines.",
       "With poor eigenvalue estimates Chebyshev can diverge; it is not a "
       "general-purpose black-box solver. It assumes the preconditioned "
       "operator has a real positive spectrum."},
      {"-ksp_chebyshev_eigenvalues <emin,emax> : spectrum bounds",
       "-ksp_chebyshev_esteig <a,b,c,d> : automatic eigenvalue estimation "
       "transform"},
      {"KSPRICHARDSON", "PCMG", "PCGAMG"},
      0.35,
  });

  add(ApiSpec{
      "KSPPREONLY",
      ApiKind::SolverType,
      ApiLevel::Beginner,
      "Applies ONLY the preconditioner exactly once; no Krylov iteration is "
      "performed. Used to run direct solvers under the KSP interface.",
      "KSPSetType(ksp, KSPPREONLY);",
      {"KSPPREONLY applies the preconditioner a single time and returns. "
       "Combined with PCLU or PCCHOLESKY it turns the KSP into a direct "
       "solver: -ksp_type preonly -pc_type lu. It is also the default KSP "
       "on the coarse grid of multigrid hierarchies and inside block "
       "preconditioners such as PCBJACOBI subdomain solves.",
       "The initial guess must be zero for KSPPREONLY (it does not compute "
       "a residual); the alias KSPNONE refers to the same method. No "
       "convergence test is applied."},
      {"-ksp_type preonly : select; commonly paired with -pc_type lu"},
      {"PCLU", "PCCHOLESKY", "KSPRICHARDSON"},
      0.60,
  });

  add(ApiSpec{
      "KSPMINRES",
      ApiKind::SolverType,
      ApiLevel::Intermediate,
      "Implements the MINRES method for symmetric (possibly indefinite) "
      "matrices.",
      "KSPSetType(ksp, KSPMINRES);",
      {"MINRES solves symmetric indefinite systems — where CG is not "
       "applicable because it requires positive definiteness — by "
       "minimizing the residual norm over the Krylov subspace with short "
       "recurrences. The preconditioner must be symmetric positive "
       "definite even though the matrix may be indefinite.",
       "For symmetric indefinite saddle-point systems (for example Stokes "
       "problems), MINRES with a block-diagonal SPD preconditioner is the "
       "standard choice. KSPSYMMLQ solves the same class of problems but "
       "minimizes a different error quantity and is typically less used."},
      {"-ksp_type minres : select this solver at runtime"},
      {"KSPCG", "KSPSYMMLQ", "PCFIELDSPLIT"},
      0.33,
  });

  add(ApiSpec{
      "KSPSYMMLQ",
      ApiKind::SolverType,
      ApiLevel::Advanced,
      "Implements SYMMLQ for symmetric (possibly indefinite) matrices.",
      "KSPSetType(ksp, KSPSYMMLQ);",
      {"SYMMLQ, like MINRES, handles symmetric indefinite matrices with a "
       "symmetric positive definite preconditioner. It minimizes the error "
       "in a norm associated with the LQ factorization rather than the "
       "residual norm; MINRES is usually preferred when a residual-based "
       "stopping criterion is wanted."},
      {"-ksp_type symmlq : select this solver at runtime"},
      {"KSPMINRES", "KSPCG"},
      0.15,
  });

  add(ApiSpec{
      "KSPTFQMR",
      ApiKind::SolverType,
      ApiLevel::Intermediate,
      "Implements the Transpose-Free Quasi-Minimal Residual (TFQMR) method "
      "for nonsymmetric systems.",
      "KSPSetType(ksp, KSPTFQMR);",
      {"TFQMR is a transpose-free method derived from CGS that "
       "quasi-minimizes the residual, producing much smoother convergence "
       "curves than BiCGStab or CGS while using short recurrences and no "
       "multiplication with the transpose of the matrix. It is preferred "
       "over KSPBCGS when BiCGStab's erratic residual history causes "
       "premature stagnation or misleading monitors.",
       "Like all short-recurrence nonsymmetric methods it can break down; "
       "GMRES remains the most robust (but memory-hungry) fallback."},
      {"-ksp_type tfqmr : select this solver at runtime"},
      {"KSPCGS", "KSPBCGS", "KSPGMRES"},
      0.20,
  });

  add(ApiSpec{
      "KSPCGS",
      ApiKind::SolverType,
      ApiLevel::Advanced,
      "Implements the Conjugate Gradient Squared method.",
      "KSPSetType(ksp, KSPCGS);",
      {"CGS squares the CG polynomial of BiCG, which can double the "
       "convergence rate but also amplifies irregular convergence and "
       "rounding errors. TFQMR and BiCGStab were designed as smoother "
       "alternatives; CGS is rarely the best choice today."},
      {"-ksp_type cgs : select this solver at runtime"},
      {"KSPTFQMR", "KSPBCGS", "KSPBICG"},
      0.14,
  });

  add(ApiSpec{
      "KSPBICG",
      ApiKind::SolverType,
      ApiLevel::Advanced,
      "Implements the BiConjugate Gradient method, which requires "
      "multiplication with both the matrix and its transpose.",
      "KSPSetType(ksp, KSPBICG);",
      {"BiCG extends CG to nonsymmetric matrices using a two-sided Lanczos "
       "process. Each iteration applies both A and A^T (via MatMultTranspose)"
       ", so the matrix type must support transpose products; matrix-free "
       "operators often do not. Transpose-free descendants (CGS, BiCGStab, "
       "TFQMR) avoid this requirement and are usually preferred."},
      {"-ksp_type bicg : select this solver at runtime"},
      {"KSPBCGS", "KSPCGS", "MatMultTranspose"},
      0.17,
  });

  add(ApiSpec{
      "KSPCGNE",
      ApiKind::SolverType,
      ApiLevel::Advanced,
      "Applies the conjugate gradient method to the normal equations "
      "A^T A x = A^T b without explicitly forming A^T A.",
      "KSPSetType(ksp, KSPCGNE);",
      {"KSPCGNE runs CG on the normal equations, squaring the condition "
       "number of the original matrix — convergence can therefore be very "
       "slow and the attainable accuracy is limited. For least squares "
       "problems KSPLSQR is the numerically preferred method; KSPCGNE is "
       "mainly useful when A is square and nonsymmetric but a CG-style "
       "short recurrence is required.",
       "The matrix must support MatMultTranspose. The preconditioner acts "
       "on the normal-equations operator."},
      {"-ksp_type cgne : select this solver at runtime"},
      {"KSPLSQR", "KSPCG", "MatCreateNormal"},
      0.12,
  });

  add(ApiSpec{
      "KSPGCR",
      ApiKind::SolverType,
      ApiLevel::Advanced,
      "Implements the preconditioned Generalized Conjugate Residual method "
      "with support for variable (flexible) preconditioning.",
      "KSPSetType(ksp, KSPGCR);",
      {"GCR minimizes the true residual like GMRES with right "
       "preconditioning, and — like FGMRES — tolerates a preconditioner "
       "that changes every iteration. Unlike FGMRES, the solution and "
       "residual are available at every iteration without extra work, which "
       "makes user-defined stopping tests cheap. Memory grows with the "
       "restart length (-ksp_gcr_restart, default 30).",
       "GCR only supports right preconditioning. When the preconditioner "
       "is fixed, GMRES is slightly cheaper per iteration."},
      {"-ksp_gcr_restart <n> : restart length (default 30)"},
      {"KSPFGMRES", "KSPGMRES"},
      0.16,
  });

  add(ApiSpec{
      "KSPLGMRES",
      ApiKind::SolverType,
      ApiLevel::Advanced,
      "Implements LGMRES, which augments the restarted GMRES subspace with "
      "approximations to the error from previous restart cycles.",
      "KSPSetType(ksp, KSPLGMRES);",
      {"LGMRES ('loose' GMRES) mitigates the convergence stagnation caused "
       "by restarting: it carries a handful of error-approximation vectors "
       "(default 2, option -ksp_lgmres_augment) across restart boundaries. "
       "It often converges in noticeably fewer iterations than plain "
       "restarted GMRES at nearly the same cost."},
      {"-ksp_lgmres_augment <k> : number of augmentation vectors (default 2)"},
      {"KSPGMRES", "KSPDGMRES"},
      0.13,
  });

  add(ApiSpec{
      "KSPDGMRES",
      ApiKind::SolverType,
      ApiLevel::Advanced,
      "Implements deflated GMRES, which adaptively removes the smallest "
      "eigenvalues from the spectrum to accelerate restarted GMRES.",
      "KSPSetType(ksp, KSPDGMRES);",
      {"DGMRES computes approximate eigenvectors associated with the "
       "smallest eigenvalues during the Arnoldi process and deflates them, "
       "which can dramatically help matrices whose convergence is limited "
       "by a few small eigenvalues. Controlled by -ksp_dgmres_eigen and "
       "-ksp_dgmres_max_eigen."},
      {"-ksp_dgmres_eigen <k> : number of eigenvalues to deflate per restart"},
      {"KSPGMRES", "KSPLGMRES"},
      0.10,
  });

  add(ApiSpec{
      "KSPPIPECG",
      ApiKind::SolverType,
      ApiLevel::Advanced,
      "Implements pipelined conjugate gradient, overlapping the global "
      "reduction with the matrix-vector product.",
      "KSPSetType(ksp, KSPPIPECG);",
      {"Pipelined CG rearranges the classical CG recurrences so that the "
       "single global reduction per iteration can be overlapped with the "
       "matrix-vector product and preconditioner application, hiding "
       "communication latency on large parallel machines. It requires "
       "MPI-3 nonblocking collectives (MPI_Iallreduce) to show benefit and "
       "is slightly less numerically stable than plain CG.",
       "Related latency-hiding variants include KSPGROPPCG and "
       "KSPPIPECR."},
      {"-ksp_type pipecg : select this solver at runtime"},
      {"KSPCG", "KSPGROPPCG", "KSPPIPECR"},
      0.12,
  });

  add(ApiSpec{
      "KSPGROPPCG",
      ApiKind::SolverType,
      ApiLevel::Developer,
      "Implements Gropp's asynchronous variant of conjugate gradient with "
      "two overlappable reductions.",
      "KSPSetType(ksp, KSPGROPPCG);",
      {"Gropp's CG variant splits the two inner products of classical CG "
       "so each can overlap with other work. Like KSPPIPECG it targets "
       "strong-scaling regimes where the allreduce latency dominates."},
      {"-ksp_type groppcg : select this solver at runtime"},
      {"KSPCG", "KSPPIPECG"},
      0.06,
  });

  add(ApiSpec{
      "KSPCR",
      ApiKind::SolverType,
      ApiLevel::Advanced,
      "Implements the (preconditioned) Conjugate Residual method for "
      "symmetric matrices.",
      "KSPSetType(ksp, KSPCR);",
      {"The conjugate residual method is closely related to MINRES — it "
       "minimizes the residual norm for symmetric problems — but uses a "
       "slightly different recurrence that requires the preconditioned "
       "operator to be positive semidefinite on the Krylov subspace."},
      {"-ksp_type cr : select this solver at runtime"},
      {"KSPMINRES", "KSPCG"},
      0.08,
  });

  add(ApiSpec{
      "KSPCGLS",
      ApiKind::SolverType,
      ApiLevel::Advanced,
      "Implements the CGLS method for least squares problems, a numerically "
      "careful formulation of CG on the normal equations.",
      "KSPSetType(ksp, KSPCGLS);",
      {"CGLS, like KSPLSQR, solves min ||b - A x||_2 for rectangular "
       "matrices without forming the normal equations explicitly. LSQR and "
       "CGLS are mathematically equivalent in exact arithmetic; LSQR has "
       "somewhat better numerical properties on ill-conditioned problems "
       "and is the commonly recommended choice."},
      {"-ksp_type cgls : select this solver at runtime"},
      {"KSPLSQR", "KSPCGNE"},
      0.07,
  });

  add(ApiSpec{
      "KSPQCG",
      ApiKind::SolverType,
      ApiLevel::Developer,
      "Implements conjugate gradient constrained to a trust region, for use "
      "inside optimization algorithms.",
      "KSPSetType(ksp, KSPQCG);",
      {"QCG minimizes a quadratic model subject to a trust-region "
       "constraint ||x|| <= delta; it is used by trust-region Newton "
       "optimization methods (see also KSPNASH, KSPSTCG, KSPGLTR from the "
       "same family). The preconditioner must be symmetric positive "
       "definite."},
      {"-ksp_qcg_trustregionradius <delta> : trust region radius"},
      {"KSPNASH", "KSPSTCG", "KSPGLTR"},
      0.05,
  });

  add(ApiSpec{
      "KSPMatSolve",
      ApiKind::Function,
      ApiLevel::Intermediate,
      "Solves a linear system with multiple right-hand sides stored as the "
      "columns of a dense matrix, amortizing setup and communication.",
      "PetscErrorCode KSPMatSolve(KSP ksp, Mat B, Mat X);",
      {"KSPMatSolve solves A X = B where the right-hand sides are the "
       "columns of B. Block methods such as KSPHPDDM can share Krylov "
       "information between the right-hand sides; for other KSP types the "
       "columns are solved sequentially but still reuse the preconditioner "
       "setup, which is usually the dominant cost. This is far more "
       "efficient than calling KSPSolve in a loop when the matrix does not "
       "change between solves.",
       "The preconditioner is built once and reused for every column. See "
       "also KSPSetReusePreconditioner for reuse across separate KSPSolve "
       "calls."},
      {"-ksp_matsolve_batch_size <n> : split the right-hand sides into "
       "batches"},
      {"KSPSolve", "KSPSetReusePreconditioner", "KSPHPDDM"},
      0.10,
  });

  return specs;
}

}  // namespace pkb::corpus::detail
