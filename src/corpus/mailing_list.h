#pragma once
// Synthetic petsc-users mailing-list archive — the paper's stated future
// work ("we targeted petsc-users but didn't touch its archives for RAG";
// "We also want to incorporate additional information as part of
// PETSc-specific RAG").
//
// Threads are generated deterministically from the spec table: a user asks
// about an entity using imprecise wording, a developer answers with the
// entity's facts, sometimes with a follow-up round. This is the "unofficial
// knowledge base" of Fig 1 — informal, redundant with the manual in
// content, but phrased the way users phrase things, which is precisely why
// the paper wants it in RAG.

#include <cstdint>

#include "text/document.h"

namespace pkb::corpus {

/// Archive generation options.
struct ArchiveOptions {
  /// Number of threads to synthesize.
  std::size_t threads = 60;
  /// RNG seed (threads, wording, and follow-ups are all derived from it).
  std::uint64_t seed = 2025;
};

/// Generate the archive as Markdown files under
/// "archives/petsc-users/thread-<n>.md" (one file per thread, ready for the
/// same loader/splitter pipeline as the documentation).
[[nodiscard]] text::VirtualDir generate_mailing_list_archive(
    const ArchiveOptions& opts = {});

}  // namespace pkb::corpus
