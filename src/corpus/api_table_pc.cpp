// PC (preconditioner) type specifications.
#include "corpus/api_table_detail.h"

namespace pkb::corpus::detail {

std::vector<ApiSpec> pc_type_specs() {
  std::vector<ApiSpec> specs;
  auto add = [&specs](ApiSpec spec) { specs.push_back(std::move(spec)); };

  add(ApiSpec{
      "PCJACOBI",
      ApiKind::PcType,
      ApiLevel::Beginner,
      "Jacobi (diagonal scaling) preconditioning: the preconditioner is the "
      "inverse of the matrix diagonal.",
      "PCSetType(pc, PCJACOBI);",
      {"Jacobi preconditioning divides each residual entry by the "
       "corresponding diagonal entry of the matrix. It is embarrassingly "
       "parallel, needs no setup communication, and preserves symmetry, so "
       "it composes with KSPCG on SPD systems. It is weak: expect many "
       "iterations on stiff problems.",
       "Variants selected with -pc_jacobi_type use the row sums or row "
       "maxima instead of the diagonal. PCPBJACOBI applies point-block "
       "Jacobi for matrices with small dense blocks."},
      {"-pc_jacobi_type <diagonal,rowmax,rowsum> : what to use as the "
       "diagonal",
       "-pc_jacobi_abs : take absolute values of the diagonal entries"},
      {"PCBJACOBI", "PCSOR", "PCNONE"},
      0.85,
  });

  add(ApiSpec{
      "PCBJACOBI",
      ApiKind::PcType,
      ApiLevel::Beginner,
      "Block Jacobi preconditioning: one block per MPI process by default, "
      "each solved with its own inner KSP/PC (ILU(0) by default).",
      "PCSetType(pc, PCBJACOBI);",
      {"Block Jacobi partitions the matrix into diagonal blocks — by "
       "default one per MPI rank — and applies an independent subdomain "
       "solve to each block. The default inner configuration on each block "
       "is KSPPREONLY with PCILU, which is why the PETSc parallel default "
       "preconditioner is described as 'block Jacobi with ILU(0) on each "
       "block'. Configure the inner solvers with the -sub_ prefix, for "
       "example -sub_pc_type lu or -sub_ksp_type gmres.",
       "Use PCBJacobiGetSubKSP() to access the inner KSP objects from "
       "code. More overlap-capable domain decomposition is provided by "
       "PCASM."},
      {"-pc_bjacobi_blocks <n> : total number of blocks",
       "-sub_pc_type <type> : preconditioner used on each block",
       "-sub_ksp_type <type> : Krylov method used on each block"},
      {"PCASM", "PCILU", "PCJACOBI", "PCBJacobiGetSubKSP"},
      0.70,
  });

  add(ApiSpec{
      "PCILU",
      ApiKind::PcType,
      ApiLevel::Beginner,
      "Incomplete LU factorization preconditioner (ILU(k), default level 0).",
      "PCSetType(pc, PCILU);",
      {"ILU computes a sparse approximate LU factorization, dropping fill "
       "outside a level-of-fill pattern; the default is ILU(0), which "
       "allows no fill beyond the sparsity pattern of the matrix. Increase "
       "fill with -pc_factor_levels. ILU runs only on a single process — "
       "in parallel it appears as the subdomain solver inside PCBJACOBI or "
       "PCASM. It is the default preconditioner for sequential runs in "
       "PETSc.",
       "ILU can fail with zero pivots on indefinite matrices; "
       "-pc_factor_shift_type nonzero or positive_definite adds a "
       "stabilizing shift. For symmetric positive definite systems use "
       "PCICC (incomplete Cholesky) instead."},
      {"-pc_factor_levels <k> : levels of fill (default 0)",
       "-pc_factor_shift_type <none,nonzero,positive_definite,inblocks> : "
       "pivot shifting strategy",
       "-pc_factor_reuse_ordering : reuse the previous ordering"},
      {"PCLU", "PCICC", "PCBJACOBI"},
      0.75,
  });

  add(ApiSpec{
      "PCLU",
      ApiKind::PcType,
      ApiLevel::Beginner,
      "Direct solver (full LU factorization) presented as a preconditioner.",
      "PCSetType(pc, PCLU);",
      {"PCLU factors the matrix exactly, so combined with KSPPREONLY the "
       "'iterative' solve is a direct solve: -ksp_type preonly -pc_type lu. "
       "For parallel runs an external package is required "
       "(-pc_factor_mat_solver_type mumps, superlu_dist, or umfpack for "
       "sequential); native PETSc LU is sequential only.",
       "Direct solves are robust for ill-conditioned systems but memory "
       "and factorization time grow superlinearly; for 3D PDE problems "
       "beyond a few hundred thousand unknowns, multigrid or domain "
       "decomposition usually scales better."},
      {"-pc_factor_mat_solver_type <petsc,mumps,superlu_dist,umfpack> : "
       "factorization package",
       "-pc_factor_mat_ordering_type <nd,rcm,qmd,natural> : fill-reducing "
       "ordering"},
      {"PCCHOLESKY", "PCILU", "KSPPREONLY"},
      0.78,
  });

  add(ApiSpec{
      "PCCHOLESKY",
      ApiKind::PcType,
      ApiLevel::Beginner,
      "Direct Cholesky factorization preconditioner for symmetric positive "
      "definite matrices.",
      "PCSetType(pc, PCCHOLESKY);",
      {"Cholesky factorization exploits symmetry to halve the work and "
       "memory of LU. The matrix must be symmetric (use MATSBAIJ or set "
       "the symmetry option on MATAIJ); pair with -ksp_type preonly for a "
       "direct solve of SPD systems."},
      {"-pc_factor_mat_solver_type <petsc,mumps,cholmod> : factorization "
       "package"},
      {"PCLU", "PCICC", "KSPCG"},
      0.40,
  });

  add(ApiSpec{
      "PCICC",
      ApiKind::PcType,
      ApiLevel::Intermediate,
      "Incomplete Cholesky factorization preconditioner for symmetric "
      "positive definite matrices.",
      "PCSetType(pc, PCICC);",
      {"ICC is the symmetric analogue of ILU: an incomplete Cholesky "
       "factorization with level-of-fill control. It preserves symmetry, "
       "so it is the natural sequential companion to KSPCG on SPD "
       "systems. Like ILU it is sequential and appears inside block "
       "preconditioners for parallel runs."},
      {"-pc_factor_levels <k> : levels of fill (default 0)"},
      {"PCILU", "PCCHOLESKY", "KSPCG"},
      0.30,
  });

  add(ApiSpec{
      "PCSOR",
      ApiKind::PcType,
      ApiLevel::Beginner,
      "(Symmetric) successive over-relaxation preconditioning.",
      "PCSetType(pc, PCSOR);",
      {"SOR sweeps through the matrix applying Gauss-Seidel-style updates "
       "with relaxation factor omega (default 1.0, i.e. Gauss-Seidel); "
       "-pc_sor_symmetric applies forward and backward sweeps, which "
       "preserves symmetry for use with KSPCG. In parallel, PETSc applies "
       "SOR locally on each process with Jacobi coupling across process "
       "boundaries."},
      {"-pc_sor_omega <omega> : relaxation factor (default 1.0)",
       "-pc_sor_symmetric : use symmetric SOR (SSOR)",
       "-pc_sor_its <its> : inner sweep count"},
      {"PCJACOBI", "PCEISENSTAT"},
      0.35,
  });

  add(ApiSpec{
      "PCASM",
      ApiKind::PcType,
      ApiLevel::Intermediate,
      "Additive Schwarz domain-decomposition preconditioner with "
      "configurable overlap.",
      "PCSetType(pc, PCASM);",
      {"The additive Schwarz method generalizes block Jacobi by letting "
       "the subdomain blocks overlap (default overlap 1, set with "
       "-pc_asm_overlap). Each subdomain is solved with its own inner "
       "KSP/PC configured via the -sub_ prefix. Overlap improves "
       "convergence at the cost of more communication and duplicated "
       "work.",
       "Restricted additive Schwarz (-pc_asm_type restrict, the default) "
       "skips the interpolation of overlapped values, which both reduces "
       "communication and — counterintuitively — often converges faster."},
      {"-pc_asm_overlap <n> : amount of subdomain overlap (default 1)",
       "-pc_asm_type <basic,restrict,interpolate,none> : Schwarz variant",
       "-sub_pc_type <type> : subdomain preconditioner"},
      {"PCBJACOBI", "PCGASM", "PCHPDDM"},
      0.42,
  });

  add(ApiSpec{
      "PCGAMG",
      ApiKind::PcType,
      ApiLevel::Intermediate,
      "Native algebraic multigrid (smoothed aggregation) preconditioner.",
      "PCSetType(pc, PCGAMG);",
      {"GAMG builds a multigrid hierarchy algebraically from the matrix "
       "using smoothed aggregation, requiring no mesh information. For "
       "elasticity and other vector PDEs, supply the near-nullspace (rigid "
       "body modes) with MatSetNearNullSpace to get good coarse spaces. "
       "The default smoother on each level is Chebyshev with Jacobi "
       "preconditioning, which avoids reductions.",
       "Key tuning options: -pc_gamg_threshold for dropping weak matrix "
       "entries during coarsening, and -pc_gamg_aggressive_coarsening for "
       "faster level reduction. External AMG alternatives include "
       "PCHYPRE (BoomerAMG) and PCML."},
      {"-pc_gamg_threshold <t> : drop tolerance for graph coarsening",
       "-pc_gamg_type <agg,classical,geo> : multigrid flavor",
       "-pc_mg_levels <n> : maximum number of levels"},
      {"PCMG", "PCHYPRE", "MatSetNearNullSpace", "KSPCHEBYSHEV"},
      0.48,
  });

  add(ApiSpec{
      "PCMG",
      ApiKind::PcType,
      ApiLevel::Advanced,
      "Geometric multigrid preconditioner framework with user-supplied "
      "grid hierarchy and transfer operators.",
      "PCSetType(pc, PCMG);",
      {"PCMG implements V-, W-, and full-multigrid cycles over a hierarchy "
       "the user provides (commonly via DMDA/DMPlex refinement). Each "
       "level has a smoother (default: Chebyshev/Jacobi) configured with "
       "the -mg_levels_ prefix and the coarse grid is solved directly "
       "(-mg_coarse_ prefix, default preonly+LU). Multigrid is the only "
       "class of preconditioners with mesh-independent convergence for "
       "elliptic problems.",
       "Set the number of levels with PCMGSetLevels; choose the cycle "
       "with -pc_mg_cycle_type v or w."},
      {"-pc_mg_levels <n> : number of levels",
       "-pc_mg_cycle_type <v,w> : cycle shape",
       "-mg_levels_ksp_type <type> : smoother Krylov method",
       "-mg_coarse_pc_type <type> : coarse-grid solver"},
      {"PCGAMG", "KSPRICHARDSON", "KSPCHEBYSHEV"},
      0.38,
  });

  add(ApiSpec{
      "PCFIELDSPLIT",
      ApiKind::PcType,
      ApiLevel::Advanced,
      "Block preconditioner that splits the system by physical fields "
      "(e.g. velocity/pressure) with additive, multiplicative, or Schur "
      "complement coupling.",
      "PCSetType(pc, PCFIELDSPLIT);",
      {"FieldSplit is the workhorse for multiphysics saddle-point systems: "
       "it partitions unknowns into named fields (via index sets or "
       "DM-provided splits) and composes per-field solvers. The coupling "
       "is chosen with -pc_fieldsplit_type additive|multiplicative|"
       "symmetric_multiplicative|schur; the Schur variant exposes "
       "-pc_fieldsplit_schur_fact_type and preconditioners for the Schur "
       "complement such as selfp or a user matrix.",
       "For Stokes problems the canonical configuration is Schur "
       "factorization with a pressure-mass-matrix preconditioner on the "
       "Schur block; each split is configured with the "
       "-fieldsplit_<name>_ prefix."},
      {"-pc_fieldsplit_type <additive,multiplicative,schur> : coupling",
       "-pc_fieldsplit_schur_fact_type <diag,lower,upper,full> : Schur "
       "factorization form",
       "-pc_fieldsplit_detect_saddle_point : infer the zero-diagonal block"},
      {"KSPMINRES", "PCSHELL", "MatSchurComplement"},
      0.36,
  });

  add(ApiSpec{
      "PCHYPRE",
      ApiKind::PcType,
      ApiLevel::Intermediate,
      "Interface to the hypre preconditioner suite, most notably the "
      "BoomerAMG algebraic multigrid.",
      "PCSetType(pc, PCHYPRE);",
      {"PCHYPRE wraps the hypre library; -pc_hypre_type boomeramg selects "
       "the widely used BoomerAMG algebraic multigrid, with euclid, "
       "parasails, and pilut as other options. BoomerAMG is a strong "
       "black-box preconditioner for scalar elliptic problems; its many "
       "parameters are exposed under the -pc_hypre_boomeramg_ prefix.",
       "PETSc must be configured with --download-hypre to use it. For a "
       "native alternative without the external dependency, use PCGAMG."},
      {"-pc_hypre_type <boomeramg,euclid,parasails,pilut> : hypre method",
       "-pc_hypre_boomeramg_strong_threshold <t> : AMG coarsening "
       "threshold (0.25 for 2D, 0.5 recommended for 3D)"},
      {"PCGAMG", "PCML"},
      0.44,
  });

  add(ApiSpec{
      "PCSHELL",
      ApiKind::PcType,
      ApiLevel::Intermediate,
      "User-defined preconditioner supplied as application callbacks.",
      "PCSetType(pc, PCSHELL);",
      {"PCSHELL lets the application provide the preconditioner apply "
       "routine with PCShellSetApply (and optionally setup, destroy, and "
       "transpose-apply callbacks). Attach application state with "
       "PCShellSetContext / PCShellGetContext. This is the standard hook "
       "for physics-based or legacy preconditioners; if the shell "
       "preconditioner changes between iterations, pair it with a "
       "flexible method such as KSPFGMRES."},
      {"-pc_type shell : select (callbacks must be set in code)"},
      {"PCKSP", "KSPFGMRES", "MATSHELL"},
      0.28,
  });

  add(ApiSpec{
      "PCNONE",
      ApiKind::PcType,
      ApiLevel::Beginner,
      "No preconditioning: the identity preconditioner.",
      "PCSetType(pc, PCNONE);",
      {"PCNONE applies the identity, so the Krylov method sees the raw "
       "operator. Useful for measuring how much a preconditioner helps, "
       "for debugging, and for well-conditioned systems where "
       "preconditioning overhead is not repaid. With -pc_type none the "
       "preconditioned and unpreconditioned residual norms coincide."},
      {"-pc_type none : disable preconditioning"},
      {"PCJACOBI", "KSPSetNormType"},
      0.55,
  });

  add(ApiSpec{
      "PCKSP",
      ApiKind::PcType,
      ApiLevel::Advanced,
      "Uses a full inner KSP solve as the preconditioner for an outer "
      "iteration.",
      "PCSetType(pc, PCKSP);",
      {"PCKSP wraps an entire inner Krylov solve (configured under the "
       "-ksp_ksp_ / -ksp_pc_ prefixes) as the preconditioner application. "
       "Because the inner solve's effect changes with its convergence "
       "each outer iteration, the outer method must be flexible: use "
       "KSPFGMRES or KSPGCR for the outer loop. Inner-outer schemes can "
       "pay off when a cheap approximate solve captures most of the "
       "physics."},
      {"-pc_ksp_ksp_type <type> : inner Krylov method (inner prefix)"},
      {"KSPFGMRES", "KSPGCR", "PCSHELL"},
      0.14,
  });

  return specs;
}

}  // namespace pkb::corpus::detail
