#pragma once
// Code-block verification (§III-E: "we automatically detect blocks of code
// and can pass them to a compiler to verify that they work").
//
// We have no PETSc headers or compiler in the loop, so the "compiler" is a
// static verifier for C-like snippets: delimiter balance, statement
// termination heuristics, and — the PETSc-specific part — verification that
// every PETSc-shaped identifier in the snippet names a real API entity
// (catching LLM-invented functions before a user copy-pastes them).

#include <string>
#include <string_view>
#include <vector>

namespace pkb::post {

/// One extracted code block.
struct CodeBlock {
  std::string language;  ///< fence info string ("c", "console", ...)
  std::string code;
};

/// One verification finding.
struct CodeDiagnostic {
  enum class Severity { Error, Warning };
  Severity severity = Severity::Error;
  std::string message;
};

/// Verification outcome for one block.
struct CodeCheckReport {
  bool ok = true;  ///< no Error-severity diagnostics
  std::vector<CodeDiagnostic> diagnostics;
};

/// All fenced code blocks in a Markdown text.
[[nodiscard]] std::vector<CodeBlock> extract_code_blocks(std::string_view md);

/// Verify one code block. Console/shell blocks only get option-name
/// verification; C-like blocks get the full delimiter + symbol checks.
[[nodiscard]] CodeCheckReport check_code(const CodeBlock& block);

/// Verify every code block in a Markdown text (report per block).
[[nodiscard]] std::vector<CodeCheckReport> check_all_code(std::string_view md);

}  // namespace pkb::post
