#include "post/markdown_html.h"

#include "text/markdown.h"
#include "util/strings.h"

namespace pkb::post {

std::string html_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 16);
  for (char c : s) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string inline_to_html(std::string_view line) {
  std::string out;
  std::size_t i = 0;
  auto emit_escaped = [&out](std::string_view piece) {
    out += html_escape(piece);
  };
  while (i < line.size()) {
    const char c = line[i];
    if (c == '`') {
      const std::size_t close = line.find('`', i + 1);
      if (close != std::string_view::npos) {
        out += "<code>";
        emit_escaped(line.substr(i + 1, close - i - 1));
        out += "</code>";
        i = close + 1;
        continue;
      }
    }
    if (c == '[') {
      const std::size_t close_bracket = line.find(']', i + 1);
      if (close_bracket != std::string_view::npos &&
          close_bracket + 1 < line.size() && line[close_bracket + 1] == '(') {
        const std::size_t close_paren = line.find(')', close_bracket + 2);
        if (close_paren != std::string_view::npos) {
          out += "<a href=\"" +
                 html_escape(line.substr(close_bracket + 2,
                                         close_paren - close_bracket - 2)) +
                 "\">";
          emit_escaped(line.substr(i + 1, close_bracket - i - 1));
          out += "</a>";
          i = close_paren + 1;
          continue;
        }
      }
    }
    if (c == '*') {
      const bool strong = i + 1 < line.size() && line[i + 1] == '*';
      const std::string_view marker = strong ? "**" : "*";
      const std::size_t start = i + marker.size();
      const std::size_t close = line.find(marker, start);
      if (close != std::string_view::npos && close > start) {
        out += strong ? "<strong>" : "<em>";
        out += inline_to_html(line.substr(start, close - start));
        out += strong ? "</strong>" : "</em>";
        i = close + marker.size();
        continue;
      }
    }
    emit_escaped(line.substr(i, 1));
    ++i;
  }
  return out;
}

std::string markdown_to_html(std::string_view md) {
  std::string html;
  for (const text::MdBlock& block : text::parse_markdown(md)) {
    switch (block.type) {
      case text::MdBlock::Type::Heading: {
        const std::string tag = "h" + std::to_string(block.level);
        html += "<" + tag + ">" + inline_to_html(block.text) + "</" + tag +
                ">\n";
        break;
      }
      case text::MdBlock::Type::Paragraph:
        html += "<p>" + inline_to_html(block.text) + "</p>\n";
        break;
      case text::MdBlock::Type::CodeFence:
        html += "<pre><code";
        if (!block.language.empty()) {
          html += " class=\"language-" + html_escape(block.language) + "\"";
        }
        html += ">" + html_escape(block.text) + "</code></pre>\n";
        break;
      case text::MdBlock::Type::List: {
        const std::string tag = block.ordered ? "ol" : "ul";
        html += "<" + tag + ">\n";
        for (const std::string& item : block.items) {
          html += "  <li>" + inline_to_html(item) + "</li>\n";
        }
        html += "</" + tag + ">\n";
        break;
      }
      case text::MdBlock::Type::Table: {
        html += "<table>\n";
        for (std::size_t r = 0; r < block.rows.size(); ++r) {
          const std::string cell_tag = r == 0 ? "th" : "td";
          html += "  <tr>";
          for (const std::string& cell : block.rows[r]) {
            html += "<" + cell_tag + ">" + inline_to_html(cell) + "</" +
                    cell_tag + ">";
          }
          html += "</tr>\n";
        }
        html += "</table>\n";
        break;
      }
      case text::MdBlock::Type::BlockQuote:
        html += "<blockquote>" +
                inline_to_html(pkb::util::replace_all(block.text, "\n", " ")) +
                "</blockquote>\n";
        break;
      case text::MdBlock::Type::HorizontalRule:
        html += "<hr/>\n";
        break;
    }
  }
  return html;
}

}  // namespace pkb::post
