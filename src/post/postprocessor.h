#pragma once
// Box 4 of Fig 3: postprocess raw LLM output before it reaches a user.
//
// Handles both output shapes the paper discusses: raw Markdown (parsed,
// itemized lists detected, code verified, converted to HTML) and JSON-mode
// output ("LLMs are now making it possible to return their output in JSON,
// making postprocessing easier since we do not have to 'reverse engineer'
// the LLM output").

#include <string>
#include <string_view>
#include <vector>

#include "post/code_check.h"

namespace pkb::post {

/// The structured result of postprocessing one LLM response.
struct ProcessedOutput {
  /// Plain-text answer (markup stripped) for terminal display / email.
  std::string plain_text;
  /// HTML rendering for web display.
  std::string html;
  /// Items of every itemized list found, flattened in order.
  std::vector<std::string> list_items;
  /// Verification report per code block found.
  std::vector<CodeCheckReport> code_reports;
  /// True when every code block verified cleanly.
  bool all_code_ok = true;
  /// Context ids cited by the model (JSON mode only).
  std::vector<std::string> sources;
  /// True when the input was JSON-mode output.
  bool was_json = false;
};

/// Postprocess an LLM response. When `response` parses as a JSON object with
/// an "answer" member, JSON mode is used (answer extracted, sources read);
/// otherwise the whole response is treated as Markdown.
[[nodiscard]] ProcessedOutput postprocess_llm_output(std::string_view response);

}  // namespace pkb::post
