#pragma once
// Markdown -> HTML conversion for displaying LLM output on a webpage
// (§III-E: "We provide tools that postprocess the Markdown before displaying
// it to users, such as converting it to HTML").

#include <string>
#include <string_view>

namespace pkb::post {

/// Escape &, <, >, " for safe HTML embedding.
[[nodiscard]] std::string html_escape(std::string_view s);

/// Convert Markdown to HTML. Supports the block set of text::parse_markdown
/// (headings, paragraphs, fenced code, lists, tables, quotes, rules) and
/// inline code/emphasis/links.
[[nodiscard]] std::string markdown_to_html(std::string_view md);

/// Inline-only conversion: `code` -> <code>, **b** -> <strong>, *i* -> <em>,
/// [t](u) -> <a>. Input is escaped first.
[[nodiscard]] std::string inline_to_html(std::string_view line);

}  // namespace pkb::post
