#include "post/postprocessor.h"

#include "post/markdown_html.h"
#include "text/markdown.h"
#include "util/json.h"
#include "util/strings.h"

namespace pkb::post {

ProcessedOutput postprocess_llm_output(std::string_view response) {
  ProcessedOutput out;

  std::string markdown(response);
  const std::string_view trimmed = pkb::util::trim(response);
  if (!trimmed.empty() && trimmed.front() == '{') {
    try {
      const pkb::util::Json obj = pkb::util::Json::parse(trimmed);
      if (obj.is_object() && obj.find("answer") != nullptr) {
        out.was_json = true;
        markdown = obj.get_string("answer");
        if (const pkb::util::Json* sources = obj.find("sources");
            sources != nullptr && sources->is_array()) {
          for (const pkb::util::Json& s : sources->as_array()) {
            if (s.is_string()) out.sources.push_back(s.as_string());
          }
        }
      }
    } catch (const pkb::util::JsonError&) {
      // Not JSON after all: treat as Markdown.
    }
  }

  out.plain_text = text::strip_markdown(markdown);
  out.html = markdown_to_html(markdown);
  for (const text::MdBlock& block : text::parse_markdown(markdown)) {
    if (block.type == text::MdBlock::Type::List) {
      for (const std::string& item : block.items) {
        out.list_items.push_back(text::strip_inline(item));
      }
    }
  }
  out.code_reports = check_all_code(markdown);
  for (const CodeCheckReport& report : out.code_reports) {
    if (!report.ok) out.all_code_ok = false;
  }
  return out;
}

}  // namespace pkb::post
