#include "post/code_check.h"

#include <stack>

#include "corpus/api_spec.h"
#include "text/markdown.h"
#include "text/tokenizer.h"
#include "util/strings.h"

namespace pkb::post {

namespace {

bool is_petsc_shaped(std::string_view ident) {
  using pkb::util::starts_with;
  return starts_with(ident, "KSP") || starts_with(ident, "PC") ||
         starts_with(ident, "Mat") || starts_with(ident, "Vec") ||
         starts_with(ident, "Petsc") || starts_with(ident, "SNES") ||
         starts_with(ident, "TS") || starts_with(ident, "DM");
}

void check_balance(std::string_view code, CodeCheckReport& report) {
  std::stack<char> stack;
  bool in_string = false;
  bool in_char = false;
  bool in_line_comment = false;
  bool in_block_comment = false;
  char prev = '\0';
  for (std::size_t i = 0; i < code.size(); ++i) {
    const char c = code[i];
    if (in_line_comment) {
      if (c == '\n') in_line_comment = false;
    } else if (in_block_comment) {
      if (prev == '*' && c == '/') in_block_comment = false;
    } else if (in_string) {
      if (c == '"' && prev != '\\') in_string = false;
    } else if (in_char) {
      if (c == '\'' && prev != '\\') in_char = false;
    } else {
      switch (c) {
        case '"':
          in_string = true;
          break;
        case '\'':
          in_char = true;
          break;
        case '/':
          if (i + 1 < code.size() && code[i + 1] == '/') in_line_comment = true;
          if (i + 1 < code.size() && code[i + 1] == '*') in_block_comment = true;
          break;
        case '(':
        case '[':
        case '{':
          stack.push(c);
          break;
        case ')':
        case ']':
        case '}': {
          const char open = c == ')' ? '(' : (c == ']' ? '[' : '{');
          if (stack.empty() || stack.top() != open) {
            report.diagnostics.push_back(
                {CodeDiagnostic::Severity::Error,
                 std::string("unbalanced '") + c + "' at offset " +
                     std::to_string(i)});
            report.ok = false;
            return;
          }
          stack.pop();
          break;
        }
        default:
          break;
      }
    }
    prev = c;
  }
  if (!stack.empty()) {
    report.diagnostics.push_back(
        {CodeDiagnostic::Severity::Error,
         std::string("unclosed '") + stack.top() + "'"});
    report.ok = false;
  }
  if (in_string) {
    report.diagnostics.push_back(
        {CodeDiagnostic::Severity::Error, "unterminated string literal"});
    report.ok = false;
  }
  if (in_block_comment) {
    report.diagnostics.push_back(
        {CodeDiagnostic::Severity::Warning, "unterminated block comment"});
  }
}

void check_symbols(std::string_view code, CodeCheckReport& report) {
  const text::TokenizedText tt = text::tokenize(code);
  for (const std::string& symbol : tt.symbols) {
    if (symbol[0] == '-') {
      // Runtime option: verify against the known-option universe.
      if (!corpus::is_known_symbol(symbol)) {
        report.diagnostics.push_back(
            {CodeDiagnostic::Severity::Warning,
             "unknown runtime option: " + symbol});
      }
      continue;
    }
    if (!is_petsc_shaped(symbol)) continue;
    if (corpus::is_known_symbol(symbol)) continue;
    // Well-known identifiers without manual pages in the generated corpus
    // (error-handling macros, communicators) are allowed.
    static constexpr std::string_view kAllowlist[] = {
        "PetscCall",       "PetscCallVoid",  "PetscFunctionBegin",
        "PetscFunctionReturn", "PETSC_COMM_WORLD", "PETSC_COMM_SELF",
        "PetscErrorCode",  "PetscInt",       "PetscReal",
        "PetscScalar",     "PetscBool",      "PETSC_TRUE",
        "PETSC_FALSE",     "PETSC_DEFAULT",  "PETSC_CURRENT",
        "KSPDestroy",      "MatDestroy",     "VecDestroy",
    };
    bool allowed = false;
    for (std::string_view ok : kAllowlist) {
      if (symbol == ok) {
        allowed = true;
        break;
      }
    }
    if (!allowed) {
      report.diagnostics.push_back(
          {CodeDiagnostic::Severity::Error,
           "unknown PETSc symbol (possible hallucination): " + symbol});
      report.ok = false;
    }
  }
}

}  // namespace

std::vector<CodeBlock> extract_code_blocks(std::string_view md) {
  std::vector<CodeBlock> blocks;
  for (const text::MdBlock& block : text::parse_markdown(md)) {
    if (block.type == text::MdBlock::Type::CodeFence) {
      blocks.push_back(CodeBlock{block.language, block.text});
    }
  }
  return blocks;
}

CodeCheckReport check_code(const CodeBlock& block) {
  CodeCheckReport report;
  const bool console = block.language == "console" ||
                       block.language == "sh" || block.language == "bash" ||
                       block.language == "shell";
  if (!console) check_balance(block.code, report);
  check_symbols(block.code, report);
  return report;
}

std::vector<CodeCheckReport> check_all_code(std::string_view md) {
  std::vector<CodeCheckReport> reports;
  for (const CodeBlock& block : extract_code_blocks(md)) {
    reports.push_back(check_code(block));
  }
  return reports;
}

}  // namespace pkb::post
