#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "corpus/generator.h"
#include "corpus/questions.h"
#include "rag/database.h"
#include "rag/workflow.h"
#include "serve/bounded_queue.h"
#include "serve/lru_cache.h"
#include "serve/server.h"

namespace pkb::serve {
namespace {

// --- BoundedQueue ---------------------------------------------------------

TEST(BoundedQueue, FifoOrderAndCapacity) {
  BoundedQueue<int> q(3);
  EXPECT_EQ(q.capacity(), 3u);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_TRUE(q.try_push(3));
  EXPECT_FALSE(q.try_push(4));  // full
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_EQ(q.pop().value(), 3);
}

TEST(BoundedQueue, ZeroCapacityIsClampedToOne) {
  BoundedQueue<int> q(0);
  EXPECT_EQ(q.capacity(), 1u);
  EXPECT_TRUE(q.try_push(7));
  EXPECT_FALSE(q.try_push(8));
}

TEST(BoundedQueue, CloseDrainsPendingThenSignalsShutdown) {
  BoundedQueue<int> q(4);
  ASSERT_TRUE(q.push(1));
  ASSERT_TRUE(q.push(2));
  q.close();
  EXPECT_TRUE(q.closed());
  EXPECT_FALSE(q.push(3));      // no new items after close
  EXPECT_FALSE(q.try_push(3));
  EXPECT_EQ(q.pop().value(), 1);  // pending items still drain
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_FALSE(q.pop().has_value());  // drained + closed -> shutdown
}

TEST(BoundedQueue, PushBlocksUntilRoomAndPopBlocksUntilItem) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.push(1));

  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    ASSERT_TRUE(q.push(2));  // blocks: queue is full
    pushed = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());  // still blocked on the full queue
  EXPECT_EQ(q.pop().value(), 1);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(q.pop().value(), 2);

  std::atomic<bool> popped{false};
  std::thread consumer([&] {
    EXPECT_EQ(q.pop().value(), 3);  // blocks: queue is empty
    popped = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(popped.load());
  ASSERT_TRUE(q.push(3));
  consumer.join();
  EXPECT_TRUE(popped.load());
}

TEST(BoundedQueue, CloseWakesBlockedProducer) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.push(1));
  std::thread producer([&] { EXPECT_FALSE(q.push(2)); });  // blocks: full
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.close();
  producer.join();
  EXPECT_EQ(q.pop().value(), 1);  // the pre-close item still drains
  EXPECT_FALSE(q.pop().has_value());
}

TEST(BoundedQueue, CloseWakesBlockedConsumer) {
  BoundedQueue<int> q(1);
  std::thread consumer([&] { EXPECT_FALSE(q.pop().has_value()); });  // empty
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.close();
  consumer.join();
}

// --- ShardedLruCache ------------------------------------------------------

TEST(ShardedLruCache, EvictsLeastRecentlyUsedInOrder) {
  LruCacheOptions opts;
  opts.capacity = 3;
  opts.shards = 1;  // single shard -> strict global LRU order
  ShardedLruCache<std::string, int> cache(opts);
  EXPECT_EQ(cache.put("a", 1), 0u);
  EXPECT_EQ(cache.put("b", 2), 0u);
  EXPECT_EQ(cache.put("c", 3), 0u);
  EXPECT_EQ(cache.get("a").value(), 1);  // refresh a: b is now LRU
  EXPECT_EQ(cache.put("d", 4), 1u);      // evicts b
  EXPECT_FALSE(cache.get("b").has_value());
  EXPECT_TRUE(cache.get("a").has_value());
  EXPECT_TRUE(cache.get("c").has_value());
  EXPECT_TRUE(cache.get("d").has_value());
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(ShardedLruCache, PutOverwritesWithoutEviction) {
  LruCacheOptions opts;
  opts.capacity = 2;
  opts.shards = 1;
  ShardedLruCache<std::string, int> cache(opts);
  cache.put("a", 1);
  EXPECT_EQ(cache.put("a", 10), 0u);  // overwrite, no eviction
  EXPECT_EQ(cache.get("a").value(), 10);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ShardedLruCache, TtlExpiresEntriesLazily) {
  double fake_now = 0.0;
  LruCacheOptions opts;
  opts.capacity = 8;
  opts.shards = 1;
  opts.ttl_seconds = 10.0;
  opts.clock = [&fake_now] { return fake_now; };
  ShardedLruCache<std::string, int> cache(opts);

  cache.put("a", 1);
  fake_now = 5.0;
  EXPECT_EQ(cache.get("a").value(), 1);  // within TTL
  fake_now = 15.1;                       // 15.1 - 0 > 10 from insertion...
  cache.put("b", 2);                     // b stamped at 15.1
  EXPECT_FALSE(cache.get("a").has_value());  // expired -> miss + eviction
  EXPECT_EQ(cache.get("b").value(), 2);
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 1u);

  // put() refreshes the stamp: a re-inserted entry lives a fresh TTL.
  cache.put("a", 3);
  fake_now = 20.0;
  EXPECT_EQ(cache.get("a").value(), 3);
}

TEST(ShardedLruCache, ZeroCapacityDisablesCaching) {
  LruCacheOptions opts;
  opts.capacity = 0;
  ShardedLruCache<std::string, int> cache(opts);
  EXPECT_FALSE(cache.enabled());
  EXPECT_EQ(cache.put("a", 1), 0u);
  EXPECT_FALSE(cache.get("a").has_value());
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ShardedLruCache, ShardedCapacityAndStatsAggregation) {
  LruCacheOptions opts;
  opts.capacity = 16;
  opts.shards = 4;
  ShardedLruCache<std::string, int> cache(opts);
  EXPECT_EQ(cache.shard_count(), 4u);
  EXPECT_EQ(cache.shard_capacity(0), 4u);
  EXPECT_EQ(cache.total_capacity(), 16u);
  for (int i = 0; i < 100; ++i) {
    cache.put("key-" + std::to_string(i), i);
  }
  // No shard exceeds its capacity.
  EXPECT_LE(cache.size(), 16u);
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, cache.size());
  EXPECT_GE(stats.evictions, 100u - 16u);
}

// Regression: capacity / shards used to truncate (100/8 -> 12 per shard ->
// 96 total), silently shrinking the cache. Capacities must now sum to
// exactly the configured capacity, never exceeding max(capacity, shards).
TEST(ShardedLruCache, CapacityDistributionIsExact) {
  LruCacheOptions opts;
  opts.capacity = 100;
  opts.shards = 8;
  ShardedLruCache<std::string, int> cache(opts);
  EXPECT_EQ(cache.shard_count(), 8u);
  EXPECT_EQ(cache.total_capacity(), 100u);
  std::size_t sum = 0;
  for (std::size_t i = 0; i < cache.shard_count(); ++i) {
    EXPECT_GE(cache.shard_capacity(i), 12u);
    EXPECT_LE(cache.shard_capacity(i), 13u);
    sum += cache.shard_capacity(i);
  }
  EXPECT_EQ(sum, 100u);
  EXPECT_LE(sum, std::max<std::size_t>(opts.capacity, opts.shards));
}

// Regression: capacity < shards used to over-provision to one entry per
// shard (capacity 3, shards 8 -> up to 8 resident entries). The shard count
// now shrinks so every shard holds >= 1 entry and the total stays exact.
TEST(ShardedLruCache, CapacitySmallerThanShardsDoesNotOverProvision) {
  LruCacheOptions opts;
  opts.capacity = 3;
  opts.shards = 8;
  ShardedLruCache<std::string, int> cache(opts);
  EXPECT_EQ(cache.shard_count(), 3u);
  EXPECT_EQ(cache.total_capacity(), 3u);
  for (std::size_t i = 0; i < cache.shard_count(); ++i) {
    EXPECT_EQ(cache.shard_capacity(i), 1u);
  }
  for (int i = 0; i < 64; ++i) {
    cache.put("key-" + std::to_string(i), i);
  }
  EXPECT_LE(cache.size(), 3u);
  EXPECT_LE(cache.size(),
            std::max<std::size_t>(opts.capacity, opts.shards));
}

// The resident-entry invariant holds across a sweep of shapes: fill well
// past capacity and assert the cache never holds more than configured (and
// can actually reach it when keys spread across shards).
TEST(ShardedLruCache, ResidentEntriesNeverExceedConfiguredCapacity) {
  for (const auto& [capacity, shards] :
       std::vector<std::pair<std::size_t, std::size_t>>{
           {1, 1}, {1, 8}, {5, 8}, {8, 2}, {17, 4}, {100, 8}, {64, 64}}) {
    LruCacheOptions opts;
    opts.capacity = capacity;
    opts.shards = shards;
    ShardedLruCache<std::string, int> cache(opts);
    EXPECT_EQ(cache.total_capacity(), capacity)
        << "capacity=" << capacity << " shards=" << shards;
    for (int i = 0; i < 500; ++i) {
      cache.put("key-" + std::to_string(i), i);
    }
    EXPECT_LE(cache.size(), capacity)
        << "capacity=" << capacity << " shards=" << shards;
    EXPECT_LE(cache.size(), std::max(capacity, shards));
  }
}

// --- Server ---------------------------------------------------------------

// The database build is the expensive part; share one across the suite.
class ServeServerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const auto tree = pkb::corpus::generate_corpus();
    db_ = new rag::RagDatabase(rag::RagDatabase::build(tree));
    workflow_ = new rag::AugmentedWorkflow(*db_, rag::PipelineArm::RagRerank,
                                           llm::model_config("sim-gpt-4o"));
  }
  static std::vector<std::string> questions(std::size_t n) {
    std::vector<std::string> qs;
    const auto& bench = pkb::corpus::krylov_benchmark();
    for (std::size_t i = 0; i < n; ++i) {
      qs.push_back(bench[i % bench.size()].question);
    }
    return qs;
  }
  static void expect_same_content(const rag::WorkflowOutcome& a,
                                  const rag::WorkflowOutcome& b,
                                  const std::string& what) {
    EXPECT_EQ(a.response.text, b.response.text) << what;
    EXPECT_EQ(a.prompt, b.prompt) << what;
    EXPECT_EQ(a.processed.html, b.processed.html) << what;
    ASSERT_EQ(a.retrieval.contexts.size(), b.retrieval.contexts.size())
        << what;
    for (std::size_t i = 0; i < a.retrieval.contexts.size(); ++i) {
      EXPECT_EQ(a.retrieval.contexts[i].doc->id,
                b.retrieval.contexts[i].doc->id)
          << what << " context " << i;
    }
  }
  static rag::RagDatabase* db_;
  static rag::AugmentedWorkflow* workflow_;
};

rag::RagDatabase* ServeServerTest::db_ = nullptr;
rag::AugmentedWorkflow* ServeServerTest::workflow_ = nullptr;

TEST_F(ServeServerTest, SingleAskMatchesSerialWorkflow) {
  ServerOptions opts;
  opts.workers = 2;
  Server server(*workflow_, opts);
  const std::string q = questions(1)[0];
  const rag::WorkflowOutcome serial = workflow_->ask(q);
  const rag::WorkflowOutcome served = server.ask(q);
  expect_same_content(serial, served, "single ask");
}

TEST_F(ServeServerTest, CachedAnswerIsIdenticalAndSkipsPipeline) {
  ServerOptions opts;
  opts.workers = 2;
  Server server(*workflow_, opts);
  const std::string q = questions(1)[0];
  const rag::WorkflowOutcome first = server.ask(q);
  const rag::WorkflowOutcome second = server.ask(q);
  expect_same_content(first, second, "cache hit");
  const Server::Stats stats = server.stats();
  EXPECT_EQ(stats.computed, 1u);  // second answer came from the cache
  EXPECT_GE(stats.answer_cache.hits, 1u);
}

TEST_F(ServeServerTest, ConcurrentClientsMatchSerialContent) {
  constexpr std::size_t kClients = 4;
  constexpr std::size_t kQuestions = 10;  // repeats hit the answer cache
  const std::vector<std::string> qs = questions(kQuestions);
  std::vector<rag::WorkflowOutcome> serial;
  serial.reserve(qs.size());
  for (const std::string& q : qs) serial.push_back(workflow_->ask(q));

  ServerOptions opts;
  opts.workers = 4;
  opts.queue_capacity = 8;  // smaller than the offered load: backpressure
  Server server(*workflow_, opts);

  std::vector<std::vector<rag::WorkflowOutcome>> got(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&server, &got, &qs, c] {
      // Each client walks the questions from a different offset so the
      // same question is in flight from several clients at once.
      for (std::size_t i = 0; i < qs.size(); ++i) {
        got[c].push_back(server.ask(qs[(i + c) % qs.size()]));
      }
    });
  }
  for (std::thread& t : clients) t.join();

  for (std::size_t c = 0; c < kClients; ++c) {
    for (std::size_t i = 0; i < qs.size(); ++i) {
      expect_same_content(serial[(i + c) % qs.size()], got[c][i],
                          "client " + std::to_string(c) + " q" +
                              std::to_string(i));
    }
  }
  const Server::Stats stats = server.stats();
  EXPECT_EQ(stats.submitted, kClients * kQuestions);
  EXPECT_EQ(stats.rejected, 0u);
  // At most one computation per unique question... plus any duplicates that
  // raced past the submit-side cache check before the first answer landed.
  EXPECT_GE(stats.computed, kQuestions / 2);
  EXPECT_GE(stats.answer_cache.hits + stats.answer_cache.misses,
            kClients * kQuestions - kQuestions);
}

TEST_F(ServeServerTest, AskBatchMatchesSerialAndDeduplicates) {
  const std::vector<std::string> unique = questions(6);
  std::vector<std::string> batch = unique;
  batch.push_back(unique[0]);  // duplicates inside the batch
  batch.push_back(unique[3]);

  std::vector<rag::WorkflowOutcome> serial;
  serial.reserve(unique.size());
  for (const std::string& q : unique) serial.push_back(workflow_->ask(q));

  ServerOptions opts;
  opts.workers = 3;
  Server server(*workflow_, opts);
  const std::vector<rag::WorkflowOutcome> got = server.ask_batch(batch);
  ASSERT_EQ(got.size(), batch.size());
  for (std::size_t i = 0; i < unique.size(); ++i) {
    expect_same_content(serial[i], got[i], "batch slot " + std::to_string(i));
  }
  expect_same_content(serial[0], got[6], "duplicate of slot 0");
  expect_same_content(serial[3], got[7], "duplicate of slot 3");
  // 8 submitted, 6 computed (2 duplicates answered once).
  const Server::Stats stats = server.stats();
  EXPECT_EQ(stats.submitted, batch.size());
  EXPECT_EQ(stats.computed, unique.size());
}

TEST_F(ServeServerTest, BatchAfterWarmupServesFromCache) {
  const std::vector<std::string> qs = questions(5);
  ServerOptions opts;
  opts.workers = 2;
  Server server(*workflow_, opts);
  const std::vector<rag::WorkflowOutcome> cold = server.ask_batch(qs);
  const std::uint64_t computed_after_cold = server.stats().computed;
  const std::vector<rag::WorkflowOutcome> warm = server.ask_batch(qs);
  EXPECT_EQ(server.stats().computed, computed_after_cold);  // all cached
  for (std::size_t i = 0; i < qs.size(); ++i) {
    expect_same_content(cold[i], warm[i], "warm slot " + std::to_string(i));
  }
}

TEST_F(ServeServerTest, TtlExpiryForcesRecomputeWithSameContent) {
  double fake_now = 0.0;
  ServerOptions opts;
  opts.workers = 1;
  opts.answer_ttl_seconds = 30.0;
  opts.cache_clock = [&fake_now] { return fake_now; };
  Server server(*workflow_, opts);
  const std::string q = questions(1)[0];
  const rag::WorkflowOutcome first = server.ask(q);
  fake_now = 60.0;  // beyond the TTL
  const rag::WorkflowOutcome second = server.ask(q);
  expect_same_content(first, second, "post-TTL recompute");
  EXPECT_EQ(server.stats().computed, 2u);
  // The embedding memo has no TTL: the recompute reused the embedding.
  EXPECT_GE(server.stats().embedding_cache.hits, 1u);
}

TEST_F(ServeServerTest, StopDrainsThenRejectsLateSubmissions) {
  ServerOptions opts;
  opts.workers = 2;
  Server server(*workflow_, opts);
  const std::vector<std::string> qs = questions(4);
  std::vector<std::future<rag::WorkflowOutcome>> futures;
  futures.reserve(qs.size());
  for (const std::string& q : qs) futures.push_back(server.submit(q));
  server.stop();
  for (auto& f : futures) {
    EXPECT_FALSE(f.get().response.text.empty());  // accepted work completed
  }
  auto late = server.submit("too late?");
  EXPECT_THROW((void)late.get(), std::runtime_error);
  // A batch of *uncached* questions must be rejected too (a batch of cached
  // ones would legitimately be served from the cache without the queue).
  EXPECT_THROW((void)server.ask_batch({"never seen A?", "never seen B?"}),
               std::runtime_error);
  EXPECT_GE(server.stats().rejected, 1u);
  server.stop();  // idempotent
}

// Regression: a queue closed mid-batch used to throw out of the push loop,
// abandoning the promises of batch slots and bumping `submitted` by the
// whole batch size up front. Every rejected slot must now fail with the
// clean runtime_error (never std::future_error/broken_promise), and only
// actually-accepted requests may count as submitted.
TEST_F(ServeServerTest, BatchOnStoppedServerFailsCleanlyAndCountsExactly) {
  ServerOptions opts;
  opts.workers = 2;
  Server server(*workflow_, opts);
  server.stop();
  const std::vector<std::string> batch = {"never seen A?", "never seen B?",
                                          "never seen C?"};
  try {
    (void)server.ask_batch(batch);
    FAIL() << "expected std::runtime_error from the rejected batch";
  } catch (const std::future_error& err) {
    FAIL() << "broken promise leaked out of ask_batch: " << err.what();
  } catch (const std::runtime_error& err) {
    EXPECT_STREQ(err.what(), "serve::Server is stopped");
  }
  const Server::Stats stats = server.stats();
  EXPECT_EQ(stats.submitted, 0u);  // nothing was accepted
  EXPECT_EQ(stats.rejected, batch.size());
  EXPECT_EQ(stats.computed, 0u);
}

// A stop() racing a batch must leave every slot either answered or failed
// with the clean runtime_error, and the accounting exact: each unique slot
// counts as submitted xor rejected.
TEST_F(ServeServerTest, StopRacingBatchNeverBreaksPromises) {
  for (int round = 0; round < 4; ++round) {
    ServerOptions opts;
    opts.workers = 2;
    opts.answer_cache_capacity = 0;  // force every slot through the queue
    Server server(*workflow_, opts);
    std::vector<std::string> batch;
    for (int i = 0; i < 8; ++i) {
      batch.push_back("stop-race question " + std::to_string(round) + "-" +
                      std::to_string(i) + "?");
    }
    std::thread stopper([&server, round] {
      std::this_thread::sleep_for(std::chrono::milliseconds(round * 2));
      server.stop();
    });
    bool broken_promise = false;
    try {
      (void)server.ask_batch(batch);
    } catch (const std::future_error&) {
      broken_promise = true;
    } catch (const std::runtime_error&) {
      // Expected when stop() wins the race for some slot.
    }
    stopper.join();
    EXPECT_FALSE(broken_promise) << "round " << round;
    const Server::Stats stats = server.stats();
    EXPECT_EQ(stats.submitted + stats.rejected, batch.size())
        << "round " << round;
  }
}

TEST_F(ServeServerTest, QuestionServiceInterfaceServesAnswers) {
  ServerOptions opts;
  opts.workers = 1;
  Server server(*workflow_, opts);
  const rag::QuestionService& service = server;
  const std::string q = questions(1)[0];
  expect_same_content(workflow_->ask(q), service.answer(q),
                      "QuestionService::answer");
}

TEST_F(ServeServerTest, LlmLatencyScaleRealizesStallOnlyOnMisses) {
  ServerOptions opts;
  opts.workers = 1;
  opts.llm_latency_scale = 0.002;  // ~10-30 ms per uncached answer
  Server server(*workflow_, opts);
  const std::string q = questions(1)[0];

  const auto t0 = std::chrono::steady_clock::now();
  const rag::WorkflowOutcome first = server.ask(q);
  const auto miss_elapsed = std::chrono::steady_clock::now() - t0;

  const auto t1 = std::chrono::steady_clock::now();
  (void)server.ask(q);
  const auto hit_elapsed = std::chrono::steady_clock::now() - t1;

  const auto scaled = std::chrono::duration<double>(
      first.response.latency_seconds * opts.llm_latency_scale);
  EXPECT_GE(miss_elapsed, scaled);  // the stall really happened
  EXPECT_LT(hit_elapsed, scaled);   // the cache hit skipped it
}

}  // namespace
}  // namespace pkb::serve
