// Stage-graph refactor tests: the parity contract (the decomposed pipeline
// reproduces the monolithic ask() content-identically on every path), the
// budget charged-exactly-once and generation stamped-in-one-place
// guarantees, and the shared-history recall ordering contract. Suite names
// (StageGraph*/StageParity*) are part of the scripts/run_tsan.sh filter.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "corpus/generator.h"
#include "history/store.h"
#include "llm/model_config.h"
#include "rag/history_retriever.h"
#include "rag/prompts.h"
#include "rag/stage_graph.h"
#include "rag/stages.h"
#include "rag/workflow.h"
#include "resilience/fault_plan.h"
#include "resilience/resilience.h"
#include "util/clock.h"

namespace {

using namespace pkb;
namespace res = pkb::resilience;

const std::vector<std::string> kQuestions = {
    "Which Krylov method should I use for a symmetric positive definite "
    "matrix?",
    "How do I monitor the true residual norm of my linear solve?",
    "What does the -ksp_view option print?",
};

class StageParityTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    kb_ = new rag::KnowledgeBase(
        rag::KnowledgeBase::build(corpus::generate_corpus()));
  }
  static std::unique_ptr<rag::AugmentedWorkflow> make_workflow(
      rag::PipelineArm arm = rag::PipelineArm::RagRerank) {
    return std::make_unique<rag::AugmentedWorkflow>(
        *kb_, arm, llm::model_config("sim-gpt-4o"));
  }
  static std::vector<std::string> context_ids(
      const rag::WorkflowOutcome& out) {
    std::vector<std::string> ids;
    for (const auto& ctx : out.retrieval.contexts) {
      ids.push_back(ctx.doc->id);
    }
    return ids;
  }
  static rag::KnowledgeBase* kb_;
};

rag::KnowledgeBase* StageParityTest::kb_ = nullptr;

// ask() and ask_with_retrieval(retrieve(q)) must produce identical content
// on every arm — the two entries run the same stage graph.
TEST_F(StageParityTest, AskEqualsAskWithPrecomputedRetrieval) {
  for (const rag::PipelineArm arm :
       {rag::PipelineArm::Rag, rag::PipelineArm::RagRerank}) {
    auto workflow = make_workflow(arm);
    for (const std::string& q : kQuestions) {
      const rag::WorkflowOutcome direct = workflow->ask(q);
      const rag::WorkflowOutcome precomputed = workflow->ask_with_retrieval(
          q, workflow->retriever()->retrieve(q));
      EXPECT_EQ(direct.response.text, precomputed.response.text) << q;
      EXPECT_EQ(direct.response.mode, precomputed.response.mode) << q;
      EXPECT_EQ(direct.prompt, precomputed.prompt) << q;
      EXPECT_EQ(direct.generation, precomputed.generation) << q;
      EXPECT_EQ(direct.degradation, precomputed.degradation) << q;
      EXPECT_EQ(context_ids(direct), context_ids(precomputed)) << q;
    }
  }
}

// Chaos determinism across >= 3 fault-plan seeds: the same seed and the
// same request stream produce bit-identical answers, degradation levels,
// and budget spend on two independent runs.
TEST_F(StageParityTest, ChaosDeterminismAcrossSeeds) {
  for (const std::uint64_t seed : {1ull, 7ull, 23ull}) {
    res::FaultPlanOptions plan_opts;
    plan_opts.seed = seed;
    plan_opts.vector_search.transient_rate = 0.2;
    plan_opts.rerank.timeout_rate = 0.3;
    plan_opts.llm.transient_rate = 0.3;

    std::vector<std::string> answers[2];
    std::vector<std::string> levels[2];
    std::vector<double> spent[2];
    for (int run = 0; run < 2; ++run) {
      res::FaultPlan plan(plan_opts);
      auto workflow = make_workflow();
      workflow->set_fault_plan(&plan);
      res::Resilience engine;
      for (const std::string& q : kQuestions) {
        res::RequestContext ctx = engine.make_context();
        const rag::WorkflowOutcome out = workflow->ask(q, &ctx);
        answers[run].push_back(out.response.text);
        levels[run].push_back(std::string(res::to_string(out.degradation)));
        spent[run].push_back(ctx.budget.spent_seconds());
      }
    }
    EXPECT_EQ(answers[0], answers[1]) << "seed " << seed;
    EXPECT_EQ(levels[0], levels[1]) << "seed " << seed;
    // Budget charges mix simulated latencies with real measured embed time,
    // so the totals carry sub-millisecond wall-clock jitter between runs.
    ASSERT_EQ(spent[0].size(), spent[1].size()) << "seed " << seed;
    // down to the simulated second; a double charge would differ by whole
    // seconds, so 0.5 s of slack never masks one (ASan/TSan runs stretch
    // the real component by ~100x).
    for (std::size_t i = 0; i < spent[0].size(); ++i) {
      EXPECT_NEAR(spent[0][i], spent[1][i], 0.5) << "seed " << seed;
    }
  }
}

// The history record is identical content on the direct and precomputed
// paths (ids/timestamps aside): same question, response, prompt, contexts.
TEST_F(StageParityTest, HistoryRecordParityAcrossPaths) {
  const std::string q = kQuestions.front();

  history::HistoryStore direct_store;
  pkb::util::SimClock direct_clock;
  auto direct_wf = make_workflow();
  direct_wf->attach_history(&direct_store, &direct_clock);
  const rag::WorkflowOutcome direct = direct_wf->ask(q);

  history::HistoryStore pre_store;
  pkb::util::SimClock pre_clock;
  auto pre_wf = make_workflow();
  pre_wf->attach_history(&pre_store, &pre_clock);
  const rag::WorkflowOutcome pre =
      pre_wf->ask_with_retrieval(q, pre_wf->retriever()->retrieve(q));

  ASSERT_EQ(direct_store.size(), 1u);
  ASSERT_EQ(pre_store.size(), 1u);
  const history::InteractionRecord* a = direct_store.get(direct.history_id);
  const history::InteractionRecord* b = pre_store.get(pre.history_id);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a->question, b->question);
  EXPECT_EQ(a->response, b->response);
  EXPECT_EQ(a->prompt, b->prompt);
  EXPECT_EQ(a->context_ids, b->context_ids);
  EXPECT_EQ(a->model, b->model);
  EXPECT_EQ(a->reranker, b->reranker);
  // Latency includes real measured embed time on top of the simulated
  // seconds; sanitizer builds stretch the real component, so allow slack
  // well below one simulated latency (a path bug would differ by seconds).
  EXPECT_NEAR(a->latency_seconds, b->latency_seconds, 0.5);
}

// --- satellite: budget charged exactly once -------------------------------

// A context without an engine still gets retrieval wall time charged; the
// charge equals rag_seconds exactly (one charge, nothing else).
TEST_F(StageParityTest, BudgetChargeEqualsRagSecondsWithoutEngine) {
  auto workflow = make_workflow();
  res::RequestContext ctx;  // no engine: GenerateStage runs the plain LLM
  ctx.budget = res::DeadlineBudget(1e9);
  const rag::WorkflowOutcome out = workflow->ask(kQuestions.front(), &ctx);
  EXPECT_GT(out.retrieval.rag_seconds(), 0.0);
  EXPECT_DOUBLE_EQ(ctx.budget.spent_seconds(), out.retrieval.rag_seconds());
  EXPECT_TRUE(out.retrieval.budget_charged);
}

// A RetrievalResult whose budget_charged flag is already set (batch paths
// pre-charge) must not be charged again by PromptStage.
TEST_F(StageParityTest, PrechargedRetrievalIsNotDoubleCharged) {
  auto workflow = make_workflow();
  rag::RetrievalResult retrieval =
      workflow->retriever()->retrieve(kQuestions.front());
  ASSERT_GT(retrieval.rag_seconds(), 0.0);
  retrieval.budget_charged = true;  // caller says: already on the budget

  res::RequestContext ctx;
  ctx.budget = res::DeadlineBudget(1e9);
  const rag::WorkflowOutcome out = workflow->ask_with_retrieval(
      kQuestions.front(), std::move(retrieval), &ctx);
  EXPECT_DOUBLE_EQ(ctx.budget.spent_seconds(), 0.0);
  EXPECT_TRUE(out.retrieval.budget_charged);
}

// Passing the same retrieval through the workflow twice charges once: the
// flag travels with the result.
TEST_F(StageParityTest, SameRetrievalTwiceChargesOnce) {
  auto workflow = make_workflow();
  const rag::RetrievalResult retrieval =
      workflow->retriever()->retrieve(kQuestions.front());

  res::RequestContext ctx;
  ctx.budget = res::DeadlineBudget(1e9);
  rag::WorkflowOutcome first = workflow->ask_with_retrieval(
      kQuestions.front(), retrieval, &ctx);
  EXPECT_DOUBLE_EQ(ctx.budget.spent_seconds(), retrieval.rag_seconds());
  // Feed the charged result back through: no second charge.
  (void)workflow->ask_with_retrieval(kQuestions.front(),
                                     std::move(first.retrieval), &ctx);
  EXPECT_DOUBLE_EQ(ctx.budget.spent_seconds(), retrieval.rag_seconds());
}

// --- satellite: generation stamped in one place ---------------------------

// The precomputed-retrieval path stamps the generation of the *pinned*
// snapshot the retrieval ran against — not the live generation, which may
// have moved on between retrieve() and ask_with_retrieval().
TEST_F(StageParityTest, GenerationStampedFromPinnedSnapshot) {
  rag::KnowledgeBase kb(rag::KnowledgeBase::build(corpus::generate_corpus()));
  const rag::AugmentedWorkflow workflow(kb, rag::PipelineArm::RagRerank,
                                        llm::model_config("sim-gpt-4o"));
  rag::RetrievalResult retrieval =
      workflow.retriever()->retrieve(kQuestions.front());
  const std::uint64_t pinned = retrieval.generation();
  ASSERT_GT(pinned, 0u);

  // The KB publishes a newer generation while the retrieval is in hand.
  auto next = std::make_shared<rag::Snapshot>(*kb.snapshot());
  next->generation = pinned + 1;
  kb.publish(next);
  ASSERT_EQ(kb.generation(), pinned + 1);

  const rag::WorkflowOutcome out =
      workflow.ask_with_retrieval(kQuestions.front(), std::move(retrieval));
  EXPECT_EQ(out.generation, pinned);
  EXPECT_EQ(out.generation, out.retrieval.generation());
}

// Baseline outcomes read no corpus: generation stays 0 on both paths.
TEST_F(StageParityTest, BaselineGenerationIsZero) {
  auto workflow = make_workflow(rag::PipelineArm::Baseline);
  EXPECT_EQ(workflow->ask(kQuestions.front()).generation, 0u);
  EXPECT_EQ(workflow
                ->ask_with_retrieval(kQuestions.front(),
                                     rag::RetrievalResult{})
                .generation,
            0u);
}

// --- satellite: shared-history recall ordering ----------------------------

// History contexts are appended AFTER the document contexts: they compete
// for the tail of the attention window, never displace a document.
TEST_F(StageParityTest, HistoryContextsAppendAfterDocumentContexts) {
  const std::string q = kQuestions.front();

  history::HistoryStore store;
  history::InteractionRecord vetted;
  vetted.question = q;
  vetted.response =
      "Use KSPCG: the conjugate gradient method is the standard choice for "
      "symmetric positive definite systems.";
  store.record_score(store.add(std::move(vetted)),
                     {.scorer = "expert", .score = 4});
  rag::HistoryRetriever history_retriever(&store);
  history_retriever.refresh();
  ASSERT_EQ(history_retriever.indexed(), 1u);

  auto workflow = make_workflow();
  workflow->attach_history_retrieval(&history_retriever);
  rag::StageTrace trace;
  const rag::WorkflowOutcome out = workflow->ask(q, nullptr, &trace);
  ASSERT_FALSE(out.retrieval.contexts.empty());

  const std::vector<llm::ContextDoc>& contexts = trace.prompt.contexts;
  ASSERT_GT(contexts.size(), out.retrieval.contexts.size())
      << "history recall added nothing";
  bool seen_history = false;
  for (std::size_t i = 0; i < contexts.size(); ++i) {
    const bool is_history = contexts[i].id.rfind("history#", 0) == 0;
    if (is_history) seen_history = true;
    if (seen_history) {
      EXPECT_TRUE(is_history)
          << "document context " << contexts[i].id
          << " appears after a history context (position " << i << ")";
    }
    if (i < out.retrieval.contexts.size()) {
      EXPECT_EQ(contexts[i].id, out.retrieval.contexts[i].doc->id)
          << "document contexts must lead, in retrieval order";
    }
  }
  EXPECT_TRUE(seen_history);
}

// The promotion branch: a request that gains its FIRST contexts from
// history recall (baseline arm — empty system prompt, no documents) is
// promoted to the QA system prompt.
TEST_F(StageParityTest, EmptySystemPromptPromotedOnHistoryRecall) {
  history::HistoryStore store;
  history::InteractionRecord vetted;
  vetted.question = "How do I monitor the true residual norm?";
  vetted.response = "Use -ksp_monitor_true_residual on the command line.";
  store.record_score(store.add(std::move(vetted)),
                     {.scorer = "expert", .score = 4});
  rag::HistoryRetriever retriever(&store);
  retriever.refresh();
  ASSERT_EQ(retriever.indexed(), 1u);

  llm::LlmRequest request;  // no contexts, empty system prompt
  rag::recall_history_contexts(
      retriever, "How do I monitor the true residual norm?", request);
  ASSERT_FALSE(request.contexts.empty());
  EXPECT_EQ(request.system, rag::PromptLibrary::qa_system_prompt());

  // No recall hit -> no promotion: the system prompt stays empty.
  llm::LlmRequest miss;
  rag::recall_history_contexts(
      retriever, "completely unrelated quantum chromodynamics", miss);
  EXPECT_TRUE(miss.contexts.empty());
  EXPECT_TRUE(miss.system.empty());
}

// --- the stage graph itself -----------------------------------------------

TEST(StageGraphTest, StageNamesRoundTrip) {
  for (int i = 0; i < rag::kStageCount; ++i) {
    const auto kind = static_cast<rag::StageKind>(i);
    const auto parsed = rag::stage_from_name(rag::to_string(kind));
    ASSERT_TRUE(parsed.has_value()) << i;
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(rag::stage_from_name("no-such-stage").has_value());
  EXPECT_FALSE(rag::stage_from_name("").has_value());
}

TEST(StageGraphTest, GlobalGraphExposesAllStagesInOrder) {
  const rag::StageGraph& graph = rag::global_stage_graph();
  for (int i = 0; i < rag::kStageCount; ++i) {
    const auto kind = static_cast<rag::StageKind>(i);
    EXPECT_EQ(graph.stage(kind).kind(), kind);
  }
}

// A captured trace mirrors the outcome it was captured from.
TEST_F(StageParityTest, TraceMirrorsOutcome) {
  auto workflow = make_workflow();
  rag::StageTrace trace;
  const rag::WorkflowOutcome out =
      workflow->ask(kQuestions.front(), nullptr, &trace);

  EXPECT_EQ(trace.question, kQuestions.front());
  EXPECT_EQ(trace.arm, "rag+rerank");
  EXPECT_EQ(trace.model, "sim-gpt-4o");
  EXPECT_EQ(trace.reranker, "sim-flashrank");
  EXPECT_EQ(trace.first_pass_k, 8u);
  EXPECT_EQ(trace.final_l, 4u);
  EXPECT_EQ(trace.generation, out.generation);
  EXPECT_EQ(trace.prompt.prompt, out.prompt);
  EXPECT_EQ(trace.generate.response.text, out.response.text);
  EXPECT_EQ(trace.generate.response.mode, out.response.mode);
  EXPECT_EQ(trace.post.plain_text, out.processed.plain_text);
  EXPECT_EQ(trace.rerank.contexts.size(), out.retrieval.contexts.size());
  for (std::size_t i = 0; i < trace.rerank.contexts.size(); ++i) {
    EXPECT_EQ(trace.rerank.contexts[i].id,
              out.retrieval.contexts[i].doc->id);
  }
  EXPECT_FALSE(trace.embed.query_vec.empty());
  EXPECT_EQ(trace.retrieve.candidates.size(),
            out.retrieval.first_pass.size());
}

}  // namespace
