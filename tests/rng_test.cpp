#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace pkb::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, ZeroSeedProducesNonDegenerateStream) {
  Rng r(0);
  std::set<std::uint64_t> values;
  for (int i = 0; i < 32; ++i) values.insert(r());
  EXPECT_GT(values.size(), 30u);
}

TEST(Rng, BelowStaysInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.below(10), 10u);
    EXPECT_EQ(r.below(1), 0u);
  }
}

TEST(Rng, BelowCoversAllResidues) {
  Rng r(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(r.below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, RangeInclusiveBounds) {
  Rng r(3);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIsInHalfOpenUnitInterval) {
  Rng r(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng r(9);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, NormalMomentsRoughlyStandard) {
  Rng r(13);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.08);
}

TEST(Rng, NormalScaled) {
  Rng r(17);
  double sum = 0.0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) sum += r.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.2);
}

TEST(Rng, ChanceExtremes) {
  Rng r(21);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng r(23);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  r.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Rng, ShuffleChangesOrderForLongVectors) {
  Rng r(29);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<std::size_t>(i)] = i;
  const std::vector<int> orig = v;
  r.shuffle(v);
  EXPECT_NE(v, orig);
}

TEST(Rng, PickReturnsMember) {
  Rng r(31);
  const std::vector<std::string> v = {"a", "b", "c"};
  for (int i = 0; i < 50; ++i) {
    const std::string& p = r.pick(v);
    EXPECT_TRUE(p == "a" || p == "b" || p == "c");
  }
}

TEST(Rng, ForkDecorrelates) {
  Rng parent(37);
  Rng child = parent.fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent() == child()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Fnv1a, StableKnownValues) {
  // FNV-1a 64 reference values.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
}

TEST(Fnv1a, DistinctStringsDistinctHashes) {
  EXPECT_NE(fnv1a64("KSPGMRES"), fnv1a64("KSPCG"));
}

TEST(SeedFrom, LabelAndSaltBothMatter) {
  EXPECT_NE(seed_from("a", 0), seed_from("b", 0));
  EXPECT_NE(seed_from("a", 0), seed_from("a", 1));
  EXPECT_EQ(seed_from("a", 1), seed_from("a", 1));
}

}  // namespace
}  // namespace pkb::util
