#include <gtest/gtest.h>

#include "corpus/api_spec.h"
#include "llm/hallucination.h"
#include "llm/model_config.h"
#include "llm/parametric.h"
#include "llm/sim_llm.h"
#include "util/json.h"
#include "util/strings.h"

namespace pkb::llm {
namespace {

LlmRequest grounded_request(std::string question,
                            std::vector<ContextDoc> contexts) {
  LlmRequest req;
  req.question = std::move(question);
  req.contexts = std::move(contexts);
  return req;
}

TEST(ModelConfig, RegistryResolvesAndUnknownThrows) {
  for (const std::string& name : model_registry()) {
    const LlmConfig cfg = model_config(name);
    EXPECT_EQ(cfg.name, name);
    EXPECT_GT(cfg.quality, 0.0);
    EXPECT_LE(cfg.quality, 1.0);
  }
  EXPECT_THROW((void)model_config("sim-gpt-5"), std::invalid_argument);
}

TEST(ModelConfig, StrongerModelsHaveMoreKnowledge) {
  EXPECT_GT(model_config("sim-gpt-4o").knowledge,
            model_config("sim-llama3-8b").knowledge);
}

TEST(Parametric, ResolvesExactSymbol) {
  const TopicMatch match =
      ParametricMemory::instance().resolve("What does KSPSolve return?");
  ASSERT_NE(match.spec, nullptr);
  EXPECT_EQ(match.spec->name, "KSPSolve");
  EXPECT_EQ(match.how, "symbol");
}

TEST(Parametric, ResolvesBareAlgorithmName) {
  const TopicMatch match = ParametricMemory::instance().resolve(
      "How do I change the GMRES restart parameter?");
  ASSERT_NE(match.spec, nullptr);
  EXPECT_EQ(match.spec->name, "KSPGMRES");
}

TEST(Parametric, ResolvesByContentWithoutSymbols) {
  const TopicMatch match = ParametricMemory::instance().resolve(
      "my matrix assembly is slow because of preallocation mallocs");
  ASSERT_NE(match.spec, nullptr);
  EXPECT_EQ(match.how, "keyword");
}

TEST(Parametric, UnknownSymbolReportsMiss) {
  const TopicMatch match =
      ParametricMemory::instance().resolve("What does KSPBurb do?");
  EXPECT_EQ(match.spec, nullptr);
  EXPECT_EQ(match.query_symbol, "KSPBurb");
}

TEST(Hallucination, MintedSymbolsAreNeverReal) {
  pkb::util::Rng rng(1);
  for (int i = 0; i < 20; ++i) {
    const std::string fake = mint_fake_symbol("KSPSolve", rng);
    EXPECT_FALSE(corpus::is_known_symbol(fake)) << fake;
  }
}

TEST(Hallucination, FabricationMentionsTheSymbolAndSoundsConfident) {
  pkb::util::Rng rng(2);
  const std::string text = fabricate_symbol_answer("KSPBurb", rng);
  EXPECT_NE(text.find("KSPBurb"), std::string::npos);
  EXPECT_NE(text.find("Krylov subspace method"), std::string::npos);
  // No hedging language.
  EXPECT_EQ(pkb::util::to_lower(text).find("i am not sure"),
            std::string::npos);
}

TEST(SimLlm, ParametricAnswersPopularTopicWell) {
  const SimLlm llm = SimLlm::from_name("sim-gpt-4o");
  LlmRequest req;
  req.question = "What is the default restart length of GMRES?";
  const LlmResponse resp = llm.complete(req);
  EXPECT_TRUE(resp.mode == "parametric" || resp.mode == "parametric-partial");
  EXPECT_NE(resp.text.find("KSPGMRES"), std::string::npos);
}

TEST(SimLlm, ParametricHallucinatesOnUnknownSymbol) {
  const SimLlm llm = SimLlm::from_name("sim-gpt-4o");
  LlmRequest req;
  req.question = "What does KSPBurb do?";
  const LlmResponse resp = llm.complete(req);
  EXPECT_EQ(resp.mode, "hallucination");
  EXPECT_NE(resp.text.find("KSPBurb"), std::string::npos);
}

TEST(SimLlm, GroundedUsesContextSentences) {
  const SimLlm llm = SimLlm::from_name("sim-gpt-4o");
  const LlmRequest req = grounded_request(
      "What solver handles rectangular matrices?",
      {{"doc1", "KSPLSQR",
        "KSPLSQR handles rectangular matrices via least squares. It is the "
        "pivotal solver for non-square systems.",
        0.9}});
  const LlmResponse resp = llm.complete(req);
  EXPECT_EQ(resp.mode, "grounded");
  EXPECT_NE(resp.text.find("KSPLSQR"), std::string::npos);
  EXPECT_NE(resp.text.find("rectangular"), std::string::npos);
  ASSERT_FALSE(resp.used_context_ids.empty());
  EXPECT_EQ(resp.used_context_ids[0], "doc1");
}

TEST(SimLlm, GroundedCaveatsOnSymbolAbsentFromContext) {
  const SimLlm llm = SimLlm::from_name("sim-gpt-4o");
  const LlmRequest req = grounded_request(
      "What does KSPBurb do?",
      {{"doc1", "KSP",
        "KSP solves linear systems with Krylov methods such as GMRES and "
        "CG.",
        0.5}});
  const LlmResponse resp = llm.complete(req);
  EXPECT_EQ(resp.mode, "grounded-caveat");
  EXPECT_NE(resp.text.find("no PETSc function or object named KSPBurb"),
            std::string::npos);
}

TEST(SimLlm, AttentionWindowLimitsContexts) {
  const SimLlm llm = SimLlm::from_name("sim-gpt-4o");
  std::vector<ContextDoc> contexts;
  for (int i = 0; i < 8; ++i) {
    contexts.push_back({"doc" + std::to_string(i), "",
                        "filler content about unrelated topics", 0.5});
  }
  // The decisive content sits at position 5 — beyond the window of 4.
  contexts[5].text =
      "KSPLSQR handles rectangular matrices via least squares.";
  LlmRequest req = grounded_request(
      "What solver handles rectangular least squares matrices?", contexts);
  req.max_attended_contexts = 4;
  const LlmResponse resp = llm.complete(req);
  EXPECT_EQ(resp.text.find("KSPLSQR"), std::string::npos)
      << "the model must not see past its attention window";
  // Moving it into the window changes the answer.
  std::swap(req.contexts[0], req.contexts[5]);
  const LlmResponse resp2 = llm.complete(req);
  EXPECT_NE(resp2.text.find("KSPLSQR"), std::string::npos);
}

TEST(SimLlm, DeterministicAcrossCalls) {
  const SimLlm llm = SimLlm::from_name("sim-gpt-4o");
  LlmRequest req;
  req.question = "How do I monitor the residual norm?";
  const LlmResponse a = llm.complete(req);
  const LlmResponse b = llm.complete(req);
  EXPECT_EQ(a.text, b.text);
  EXPECT_DOUBLE_EQ(a.latency_seconds, b.latency_seconds);
}

TEST(SimLlm, DifferentModelsDiverge) {
  LlmRequest req;
  req.question = "What does the ell parameter of BiCGStab(ell) control?";
  const LlmResponse a = SimLlm::from_name("sim-gpt-4o").complete(req);
  const LlmResponse b = SimLlm::from_name("sim-llama3-8b").complete(req);
  // Weaker model: lower knowledge; responses generally differ.
  EXPECT_NE(a.text, b.text);
}

TEST(SimLlm, LatencyModelScalesWithOutput) {
  const SimLlm llm = SimLlm::from_name("sim-gpt-4o");
  LlmRequest req;
  req.question = "What is the default restart length of GMRES?";
  const LlmResponse resp = llm.complete(req);
  EXPECT_GT(resp.latency_seconds, 0.5);
  EXPECT_LT(resp.latency_seconds, 60.0);
  EXPECT_GT(resp.completion_tokens, 0u);
  EXPECT_GT(resp.prompt_tokens, 0u);
}

TEST(SimLlm, JsonOutputModeParses) {
  const SimLlm llm = SimLlm::from_name("sim-gpt-4o");
  LlmRequest req = grounded_request(
      "What solver handles rectangular matrices?",
      {{"doc1", "KSPLSQR",
        "KSPLSQR handles rectangular matrices via least squares.", 0.9}});
  req.json_output = true;
  const LlmResponse resp = llm.complete(req);
  const pkb::util::Json obj = pkb::util::Json::parse(resp.text);
  EXPECT_TRUE(obj.is_object());
  EXPECT_NE(obj.get_string("answer").find("KSPLSQR"), std::string::npos);
  EXPECT_EQ(obj.get_string("model"), "sim-gpt-4o");
  EXPECT_TRUE(obj.at("sources").is_array());
}

}  // namespace
}  // namespace pkb::llm
