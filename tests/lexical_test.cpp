#include <gtest/gtest.h>

#include "corpus/generator.h"
#include "lexical/bm25.h"
#include "lexical/keyword_search.h"
#include "text/loader.h"
#include "text/splitter.h"

namespace pkb::lexical {
namespace {

std::vector<text::Document> docs() {
  return {
      {"cg", "conjugate gradient requires symmetric positive definite "
             "matrices", {}},
      {"gmres", "gmres handles nonsymmetric matrices with restarts gmres "
                "gmres", {}},
      {"lsqr", "lsqr solves rectangular least squares problems", {}},
      {"long", "a much longer document about matrices matrices matrices and "
               "other things that mention many words to make the document "
               "long and diluted for length normalization purposes", {}},
  };
}

TEST(Bm25, SearchRanksExactTopicFirst) {
  Bm25Index index;
  index.build(docs());
  const auto hits = index.search("rectangular least squares", 4);
  ASSERT_FALSE(hits.empty());
  EXPECT_EQ(hits[0].doc->id, "lsqr");
}

TEST(Bm25, NoOverlapMeansNoResults) {
  Bm25Index index;
  index.build(docs());
  EXPECT_TRUE(index.search("zzz qqq", 4).empty());
  EXPECT_TRUE(index.search("anything", 0).empty());
}

TEST(Bm25, IdfOrdering) {
  Bm25Index index;
  index.build(docs());
  // "matrices" appears in 3 docs, "rectangular" in 1.
  EXPECT_GT(index.idf("rectangular"), index.idf("matrices"));
  EXPECT_DOUBLE_EQ(index.idf("nonexistent"), 0.0);
}

TEST(Bm25, TermFrequencySaturates) {
  // Two docs of identical length in the SAME index, tf 1 vs tf 4: the
  // contribution must grow sublinearly.
  Bm25Index index;
  index.build({{"once", "gmres aaa bbb ccc ddd eee fff ggg", {}},
               {"many", "gmres gmres gmres gmres eee fff ggg hhh", {}},
               {"other", "unrelated words entirely different content", {}}});
  const double once = index.score_one("gmres", 0);
  const double many = index.score_one("gmres", 1);
  EXPECT_GT(once, 0.0);
  EXPECT_GT(many, once);
  EXPECT_LT(many / once, 4.0);  // saturation: 4x tf gives < 4x score
}

TEST(Bm25, LengthNormalizationPenalizesLongDocs) {
  // Same tf (1) in a short and a very long doc: the short doc must win.
  std::string filler;
  for (int i = 0; i < 60; ++i) filler += " filler" + std::to_string(i);
  Bm25Index index;
  index.build({{"short", "matrices in a compact statement", {}},
               {"long", "matrices appear here" + filler, {}}});
  const auto hits = index.search("matrices", 2);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].doc->id, "short");
}

TEST(Bm25, ScoreOneMatchesSearchScores) {
  Bm25Index index;
  index.build(docs());
  const auto hits = index.search("conjugate gradient", 1);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_NEAR(hits[0].score, index.score_one("conjugate gradient", hits[0].index),
              1e-12);
}

class SymbolIndexTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const auto tree = pkb::corpus::generate_corpus();
    const text::MarkdownLoader loader(text::MarkdownMode::Single, true);
    const text::RecursiveCharacterTextSplitter splitter;
    chunks_ = new std::vector<text::Document>(
        splitter.split_documents(loader.load(tree)));
    index_ = new SymbolIndex(*chunks_);
  }
  static std::vector<text::Document>* chunks_;
  static SymbolIndex* index_;
};

std::vector<text::Document>* SymbolIndexTest::chunks_ = nullptr;
SymbolIndex* SymbolIndexTest::index_ = nullptr;

TEST_F(SymbolIndexTest, CoversTheSpecTable) {
  EXPECT_GE(index_->symbol_count(), 90u);
  EXPECT_FALSE(index_->chunks_of("KSPGMRES").empty());
  EXPECT_FALSE(index_->chunks_of("-info").empty());
  EXPECT_TRUE(index_->chunks_of("KSPBurb").empty());
}

TEST_F(SymbolIndexTest, LookupResolvesExactSymbols) {
  const auto hits = index_->lookup("How do I call KSPSolve with a guess?");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].symbol, "KSPSolve");
  EXPECT_EQ(hits[0].resolved, "KSPSolve");
  EXPECT_EQ(hits[0].page, "manualpages/KSP/KSPSolve.md");
  EXPECT_FALSE(hits[0].chunks.empty());
  for (std::size_t chunk : hits[0].chunks) {
    EXPECT_EQ((*chunks_)[chunk].meta("source"), "manualpages/KSP/KSPSolve.md");
  }
}

TEST_F(SymbolIndexTest, LookupResolvesTyposWhenFuzzy) {
  const auto hits = index_->lookup("what does KSPSovle do", true);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].resolved, "KSPSolve");
  const auto strict = index_->lookup("what does KSPSovle do", false);
  ASSERT_EQ(strict.size(), 1u);
  EXPECT_TRUE(strict[0].resolved.empty());
}

TEST_F(SymbolIndexTest, UnknownSymbolsReportedWithoutPage) {
  const auto hits = index_->lookup("What does KSPBurb do?");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].symbol, "KSPBurb");
  EXPECT_TRUE(hits[0].resolved.empty());
  EXPECT_TRUE(hits[0].chunks.empty());
}

TEST_F(SymbolIndexTest, MultipleSymbolsAllReported) {
  const auto hits =
      index_->lookup("difference between -ksp_monitor and KSPMonitorSet");
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].resolved, "-ksp_monitor");
  EXPECT_EQ(hits[1].resolved, "KSPMonitorSet");
}

TEST_F(SymbolIndexTest, ProseWordsAreNotSymbols) {
  EXPECT_TRUE(index_->lookup("how do I solve a linear system fast").empty());
}

}  // namespace
}  // namespace pkb::lexical
